// Fooddelivery: couriers picking up meals from a handful of restaurant
// clusters under tight delivery deadlines — the shared-mobility setting
// from the paper's introduction where requests are small (one meal), the
// courier box is the capacity, and deadlines are much tighter than in
// ride-sharing.
//
// The example shows how the URPSM formulation adapts with nothing but
// parameters: tight e_r (12 minutes), K_r = 1 meal, high penalties (a
// missed meal hurts more than a long detour).
//
//	go run ./examples/fooddelivery
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// Compact downtown: restaurants cluster demand into 4 hotspots.
	params := workload.ChengduLike(0.05)
	params.Name = "FoodCity"
	params.NumWorkers = 30
	params.NumRequests = 800
	params.DurationSec = 2 * 3600
	params.DeadlineSec = 12 * 60 // meals go cold
	params.PenaltyFactor = 25    // missed meals are expensive
	params.CapacityMean = 4      // courier box: 4 meals
	params.Hotspots = 4          // restaurant rows
	params.HotspotSigma = 300
	params.HotspotWeight = 0.95 // origins are almost always restaurants

	g, err := roadnet.Generate(params.Net)
	if err != nil {
		log.Fatal(err)
	}
	hub := shortest.BuildHubLabels(g)
	counter := shortest.NewCounting(hub)
	cached := shortest.NewCached(counter, 1<<18)

	inst, err := workload.BuildOn(params, g, cached.Dist)
	if err != nil {
		log.Fatal(err)
	}
	// Food orders are always a single meal.
	for _, r := range inst.Requests {
		r.Capacity = 1
	}

	fleet, err := core.NewFleet(g, cached.Dist, inst.Workers, 1000)
	if err != nil {
		log.Fatal(err)
	}
	planner := core.NewPruneGreedyDP(fleet, 1)
	eng := sim.NewEngine(fleet, planner, shortest.NewBiDijkstra(g), 1)
	eng.Queries = counter

	m, err := eng.Run(inst.Requests)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.FastForward(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("food delivery over %d orders, %d couriers (box capacity ~%d meals)\n",
		m.Requests, params.NumWorkers, int(params.CapacityMean))
	fmt.Printf("  delivered: %d (%.1f%%)\n", m.Served, 100*m.ServedRate)
	fmt.Printf("  unified cost: %.0f (travel %.0f + penalties %.0f)\n",
		m.UnifiedCost, m.TotalDistance, m.PenaltySum)
	fmt.Printf("  mean decision latency: %.3f ms, %d distance queries\n",
		m.AvgResponseMs, m.DistQueries)

	// How busy were the couriers?
	var dists []float64
	for _, w := range fleet.Workers {
		dists = append(dists, w.Traveled)
	}
	sort.Float64s(dists)
	fmt.Printf("  courier driving time: median %.0fs, busiest %.0fs\n",
		dists[len(dists)/2], dists[len(dists)-1])

	fmt.Println("\ntightening deadlines to 6 minutes (same orders):")
	params2 := params
	params2.DeadlineSec = 6 * 60
	inst2, err := workload.BuildOn(params2, g, cached.Dist)
	if err != nil {
		log.Fatal(err)
	}
	fleet2, err := core.NewFleet(g, cached.Dist, inst2.Workers, 1000)
	if err != nil {
		log.Fatal(err)
	}
	eng2 := sim.NewEngine(fleet2, core.NewPruneGreedyDP(fleet2, 1), shortest.NewBiDijkstra(g), 1)
	m2, err := eng2.Run(inst2.Requests)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  delivered: %d (%.1f%%) — tighter deadlines reject more orders,\n",
		m2.Served, 100*m2.ServedRate)
	fmt.Println("  exactly the paper's Fig. 6 shape.")
}
