// Parceldelivery: crowdsourced parcel delivery from a depot — the third
// shared-mobility application from the paper's introduction. All parcels
// originate at a single depot, couriers have larger boxes, deadlines are
// loose (hours), and the platform cares mostly about travel cost, so the
// example also demonstrates the revenue objective (Eq. 2–4): maximizing
// platform revenue is minimizing the unified cost with α = c_w and
// p_r = c_r · dis(o_r, d_r).
//
//	go run ./examples/parceldelivery
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	params := workload.ChengduLike(0.05)
	params.Name = "ParcelCity"
	params.NumWorkers = 12
	params.NumRequests = 500
	params.DurationSec = 4 * 3600
	params.DeadlineSec = 2 * 3600 // same-afternoon delivery
	params.CapacityMean = 8       // parcel vans

	const (
		cr = 12.0 // fare per second of parcel trip distance
		cw = 1.0  // wage per second of van travel
	)
	params.PenaltyFactor = cr // p_r = c_r · dis(o_r, d_r)

	g, err := roadnet.Generate(params.Net)
	if err != nil {
		log.Fatal(err)
	}
	hub := shortest.BuildHubLabels(g)
	cached := shortest.NewCached(shortest.NewCounting(hub), 1<<18)

	inst, err := workload.BuildOn(params, g, cached.Dist)
	if err != nil {
		log.Fatal(err)
	}
	// All parcels ship from the depot at the city center; parcels weigh
	// 1-2 box units.
	depot := g.NearestVertex(g.Bounds().Center())
	rng := rand.New(rand.NewSource(99))
	reqs := inst.Requests[:0]
	for _, r := range inst.Requests {
		if r.Dest == depot {
			continue
		}
		r.Origin = depot
		r.Capacity = 1 + rng.Intn(2)
		r.Penalty = cr * cached.Dist(r.Origin, r.Dest)
		reqs = append(reqs, r)
	}
	// Vans start at the depot too.
	for _, w := range inst.Workers {
		w.Route.Loc = depot
	}

	fleet, err := core.NewFleet(g, cached.Dist, inst.Workers, 1500)
	if err != nil {
		log.Fatal(err)
	}
	// α = c_w: the revenue special case of URPSM.
	planner := core.NewPruneGreedyDP(fleet, cw)
	eng := sim.NewEngine(fleet, planner, shortest.NewBiDijkstra(g), cw)

	m, err := eng.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.FastForward(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("depot parcel delivery: %d parcels, %d vans (capacity ~%d)\n",
		m.Requests, params.NumWorkers, int(params.CapacityMean))
	fmt.Printf("  delivered: %d (%.1f%%)\n", m.Served, 100*m.ServedRate)
	fmt.Printf("  unified cost (α=c_w): %.0f\n", m.UnifiedCost)

	// Revenue identity (Eq. 4): revenue = c_r·Σ_R dis(o,d) − UC.
	revenue := core.Revenue(cr, cw, fleet, eng.Served())
	sumAll := 0.0
	for _, r := range reqs {
		sumAll += cr * cached.Dist(r.Origin, r.Dest)
	}
	fmt.Printf("  platform revenue: %.0f (identity check: c_r·Σdis − UC = %.0f)\n",
		revenue, sumAll-m.UnifiedCost)
	fmt.Println("\nminimizing the unified cost with α=c_w, p_r=c_r·dis maximizes revenue —")
	fmt.Println("the paper's Eq. 2–4 reduction, verified live above.")
}
