// Quickstart: the smallest end-to-end tour of the library.
//
// It builds a toy road network, spins up one worker, and walks three
// requests through the paper's pipeline by hand: the one-query decision
// lower bound (Lemma 7), the O(n) linear DP insertion (Algorithm 3), and
// the route update (Lemma 9). Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

func main() {
	// A 6x6 synthetic city block grid, ~150 m blocks.
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 6, Cols: 6, Spacing: 150, Jitter: 0.1,
		ArterialEvery: 3, DetourMin: 1.05, DetourMax: 1.2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("road network: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// The distance oracle: hub labels (exact travel times in seconds).
	oracle := shortest.BuildHubLabels(g)
	dist := core.DistFunc(oracle.Dist)

	// One taxi with capacity 4 parked at vertex 0 at time 0.
	taxi := &core.Worker{ID: 0, Capacity: 4, Route: core.Route{Loc: 0, Now: 0}}

	requests := []*core.Request{
		{ID: 1, Origin: 7, Dest: 28, Release: 0, Deadline: 600, Penalty: 500, Capacity: 1},
		{ID: 2, Origin: 9, Dest: 30, Release: 30, Deadline: 700, Penalty: 400, Capacity: 2},
		{ID: 3, Origin: 14, Dest: 35, Release: 60, Deadline: 620, Penalty: 300, Capacity: 1},
	}

	for _, req := range requests {
		// One real shortest-distance query per request (decision phase).
		L := dist(req.Origin, req.Dest)

		// Zero-query Euclidean lower bound on the insertion cost.
		lb := core.LowerBoundInsertion(&taxi.Route, taxi.Capacity, req, g, L)
		fmt.Printf("request %d: trip %.0fs, insertion lower bound %.0fs\n", req.ID, L, lb)

		// Exact linear DP insertion (Algorithm 3).
		ins := core.LinearDPInsertion(&taxi.Route, taxi.Capacity, req, L, dist)
		if !ins.OK {
			fmt.Printf("request %d: infeasible, rejected (penalty %.0f)\n", req.ID, req.Penalty)
			continue
		}
		fmt.Printf("request %d: insert pickup after position %d, drop-off after %d, Δ=%.0fs\n",
			req.ID, ins.I, ins.J, ins.Delta)
		if err := core.Apply(&taxi.Route, taxi.Capacity, req, ins, L, dist); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nfinal route:")
	for i, s := range taxi.Route.Stops {
		fmt.Printf("  %d. %s of request %d at vertex %d (arrive %.0fs, deadline %.0fs)\n",
			i+1, s.Kind, s.Req, s.Vertex, taxi.Route.Arr[i], s.DDL)
	}
	fmt.Printf("planned travel time: %.0fs\n", taxi.Route.RemainingDist())

	// The route must satisfy every URPSM constraint.
	if err := taxi.Route.Validate(taxi.Capacity, dist); err != nil {
		log.Fatal("route invalid: ", err)
	}
	fmt.Println("route validated: precedence, deadlines and capacity all hold")
}
