// Ridesharing: a city-scale dynamic ride-sharing day, the paper's
// headline scenario. It simulates a Chengdu-like morning over all five
// algorithms and prints the §6 metrics side by side, showing the
// pruneGreedyDP result the paper reports: lowest unified cost, highest
// served rate, near-tshare response times.
//
//	go run ./examples/ridesharing
package main

import (
	"fmt"
	"log"

	"repro/internal/expt"
	"repro/internal/workload"
)

func main() {
	// A small slice of the Chengdu-like preset: ~1.4k intersections,
	// ~1200 requests over a simulated morning, 40 taxis.
	params := workload.ChengduLike(0.08)
	params.NumWorkers = 40
	params.NumRequests = 1200
	params.DurationSec = 3 * 3600

	fmt.Println("generating road network and hub labeling ...")
	runner, err := expt.NewRunner(params, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d vertices, %d edges; %d taxis, %d ride requests\n\n",
		runner.G.NumVertices(), runner.G.NumEdges(), params.NumWorkers, params.NumRequests)

	fmt.Printf("%-14s %12s %10s %12s %14s\n",
		"algorithm", "unified cost", "served", "response", "dist queries")
	for _, algo := range expt.Algorithms {
		m, err := runner.RunOne(params, algo)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.0f %9.1f%% %10.3fms %14d\n",
			algo, m.UnifiedCost, 100*m.ServedRate, m.AvgResponseMs, m.DistQueries)
	}

	fmt.Println("\nexpected shape (paper §6.2): pruneGreedyDP lowest cost and highest served")
	fmt.Println("rate; tshare fastest but lowest served rate; GreedyDP equals pruneGreedyDP's")
	fmt.Println("quality with more distance queries (Lemma 8 pruning is lossless).")
}
