package repro

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target); targets are checked
// below when they point into the repository.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// stripCodeFences removes ``` fenced blocks — link syntax inside quoted
// code is not a document link.
func stripCodeFences(s string) string {
	var out []string
	inFence := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMarkdownLinks walks every *.md file in the repository and verifies
// that relative links resolve to existing files. External (http/mailto)
// links are skipped — CI has no network and their liveness is not this
// repository's contract. The CI docs job runs this test by name.
func TestMarkdownLinks(t *testing.T) {
	var mdFiles []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) == 0 {
		t.Fatal("no markdown files found")
	}
	// Retrieval artifacts quote external documents whose links are not this
	// repository's to fix.
	generated := map[string]bool{"PAPER.md": true, "PAPERS.md": true, "SNIPPETS.md": true}
	for _, md := range mdFiles {
		if generated[filepath.Base(md)] {
			continue
		}
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(stripCodeFences(string(data)), -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			// Strip an intra-document anchor; a bare anchor targets this file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", md, m[1], resolved)
			}
		}
	}
}
