GO ?= go

.PHONY: all build vet test race bench-smoke bench check golden fuzz

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Quick benchmark pass: compiles every benchmark and runs one iteration.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Full benchmark suite (regenerates the paper's tables and figures).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate golden files after a deliberate formatter change.
golden:
	$(GO) test ./internal/expt -run Golden -update

# Short fuzz pass over the untrusted-input parsers (roadnet text, DIMACS,
# workload stream, trip CSV). `go test` alone replays only the seed corpus.
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 10s ./internal/roadnet
	$(GO) test -fuzz FuzzLoadDIMACS -fuzztime 10s ./internal/roadnet
	$(GO) test -fuzz FuzzReadStream -fuzztime 10s ./internal/workload
	$(GO) test -fuzz FuzzReadTripCSV -fuzztime 10s ./internal/workload

check: build vet test race
