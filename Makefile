GO ?= go

.PHONY: all build vet test race bench-smoke bench check golden

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Quick benchmark pass: compiles every benchmark and runs one iteration.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Full benchmark suite (regenerates the paper's tables and figures).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate golden files after a deliberate formatter change.
golden:
	$(GO) test ./internal/expt -run Golden -update

check: build vet test race
