GO ?= go

.PHONY: all build vet test race bench-smoke bench bench-json bench-gate check golden fuzz serve-smoke crash-smoke crash-chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Quick benchmark pass: compiles every benchmark and runs one iteration.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Full benchmark suite (regenerates the paper's tables and figures).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Headline benchmarks -> JSON trajectory artifact (BENCH_PR10.json).
# Override: make bench-json BENCHTIME=1x BENCHOUT=/tmp/bench.json
BENCHTIME ?= 100x
BENCHOUT ?= BENCH_PR10.json
bench-json:
	./scripts/bench-json.sh -t $(BENCHTIME) -o $(BENCHOUT)

# Perf regression gate: rerun the headline benchmarks and fail if any
# shared benchmark is >25% slower than the newest checked-in
# BENCH_PR*.json run (skipped with a warning on a different CPU model).
# Override: make bench-gate BENCHTIME=1x GATEBASE=BENCH_PR9.json
GATEBASE ?=
bench-gate:
	./scripts/bench-gate.sh -t $(BENCHTIME) $(if $(GATEBASE),-f $(GATEBASE))

# Regenerate golden files after a deliberate formatter change.
golden:
	$(GO) test ./internal/expt -run Golden -update

# Short fuzz pass over the untrusted-input parsers (roadnet text, DIMACS,
# traffic profiles, workload stream, trip CSV, serve snapshot + request
# bodies) and the CCH customization equivalence invariant. `go test` alone
# replays only the seed corpus.
fuzz:
	$(GO) test -fuzz FuzzRead$$ -fuzztime 10s ./internal/roadnet
	$(GO) test -fuzz FuzzLoadDIMACS -fuzztime 10s ./internal/roadnet
	$(GO) test -fuzz FuzzReadTrafficProfile -fuzztime 10s ./internal/roadnet
	$(GO) test -fuzz FuzzReadStream -fuzztime 10s ./internal/workload
	$(GO) test -fuzz FuzzReadTripCSV -fuzztime 10s ./internal/workload
	$(GO) test -run xxx -fuzz FuzzReadSnapshot -fuzztime 10s ./internal/serve
	$(GO) test -run xxx -fuzz FuzzRequestBody -fuzztime 10s ./internal/serve
	$(GO) test -run xxx -fuzz FuzzCCHCustomize -fuzztime 10s ./internal/shortest
	$(GO) test -run xxx -fuzz FuzzReadWAL -fuzztime 10s ./internal/wal

# End-to-end check of the online dispatch service: start urpsm-serve on a
# fixture network, lockstep-replay 1500 requests (bit-identical to the
# offline engine), graceful shutdown, snapshot warm restart.
serve-smoke:
	./scripts/serve-smoke.sh

# Crash-recovery equivalence: SIGKILL the real daemon at seeded points of
# a 1500-request lockstep replay, restart on the same WAL dir, and require
# the decision stream to be byte-identical to an uninterrupted run (which
# itself must match the offline engine bit-exactly). Fixed seed for CI;
# crash-chaos re-rolls the kill schedule every invocation.
crash-smoke:
	./scripts/crash-smoke.sh

crash-chaos:
	./scripts/crash-smoke.sh -s $$(date +%s) -k 8

check: build vet test race
