package shortest

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/roadnet"
)

// approxEq absorbs the last-ULP differences between oracles: the cache
// key is symmetric ((u,v) ≡ (v,u)) while Dijkstra accumulates each
// direction separately, so exact equality is too strict.
func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

func concurrencyGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 12, Cols: 12, Spacing: 140, Jitter: 0.2,
		ArterialEvery: 4, DetourMin: 1.05, DetourMax: 1.3, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestShardedCachedMatchesInner verifies the sharded cache is a pure
// memoization layer: every answer equals the inner oracle's.
func TestShardedCachedMatchesInner(t *testing.T) {
	g := concurrencyGraph(t)
	m := NewMatrix(g)
	c := NewShardedCached(m, 1<<10, 8)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		u := roadnet.VertexID(rng.Intn(n))
		v := roadnet.VertexID(rng.Intn(n))
		if got, want := c.Dist(u, v), m.Dist(u, v); !approxEq(got, want) {
			t.Fatalf("dist(%d,%d) = %v, want %v", u, v, got, want)
		}
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got %d/%d", hits, misses)
	}
	if c.Len() == 0 {
		t.Fatal("cache stored nothing")
	}
}

// TestShardedCachedConcurrent hammers one cache from many goroutines over
// a small key space (maximizing shard contention and eviction) and checks
// every returned value; run under -race this is the cache's safety proof.
func TestShardedCachedConcurrent(t *testing.T) {
	g := concurrencyGraph(t)
	m := NewMatrix(g)
	// Tiny capacity forces constant eviction churn.
	c := NewShardedCached(m, 64, 4)
	n := g.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				u := roadnet.VertexID(rng.Intn(n / 4)) // small key space
				v := roadnet.VertexID(rng.Intn(n / 4))
				if got, want := c.Dist(u, v), m.Dist(u, v); !approxEq(got, want) {
					t.Errorf("dist(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
			}
		}(int64(w) * 7919)
	}
	wg.Wait()
}

// TestAtomicCountingConcurrent checks the atomic counter under concurrent
// queries: the total must be exact, not approximate.
func TestAtomicCountingConcurrent(t *testing.T) {
	g := concurrencyGraph(t)
	m := NewMatrix(g)
	c := NewAtomicCounting(m)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := g.NumVertices()
			for i := 0; i < per; i++ {
				c.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
			}
		}(int64(w))
	}
	wg.Wait()
	if got := c.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	c.Reset()
	if got := c.Count(); got != 0 {
		t.Fatalf("count after reset = %d", got)
	}
}

// TestLockedBiDijkstra verifies the mutex wrapper makes the stateful
// bidirectional Dijkstra safe (and still exact) under concurrent callers.
func TestLockedBiDijkstra(t *testing.T) {
	g := concurrencyGraph(t)
	m := NewMatrix(g)
	l := NewLocked(NewBiDijkstra(g))
	n := g.NumVertices()
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u := roadnet.VertexID(rng.Intn(n))
				v := roadnet.VertexID(rng.Intn(n))
				if got, want := l.Dist(u, v), m.Dist(u, v); !approxEq(got, want) {
					t.Errorf("dist(%d,%d) = %v, want %v", u, v, got, want)
					return
				}
			}
		}(int64(w) * 13)
	}
	wg.Wait()
}

// TestShardedCachedShardRounding covers the shard-count normalization:
// non-power-of-two and degenerate inputs must still produce a working
// cache.
func TestShardedCachedShardRounding(t *testing.T) {
	g := concurrencyGraph(t)
	m := NewMatrix(g)
	for _, shards := range []int{0, 1, 3, 7, 64} {
		c := NewShardedCached(m, 8, shards)
		for v := 1; v < 5; v++ {
			u, w := roadnet.VertexID(0), roadnet.VertexID(v)
			if got, want := c.Dist(u, w), m.Dist(u, w); !approxEq(got, want) {
				t.Fatalf("shards=%d: dist = %v, want %v", shards, got, want)
			}
		}
	}
}
