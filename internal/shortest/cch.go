package shortest

// Customizable contraction hierarchies (CCH), after Dibbelt, Strasser and
// Wagner's Customizable Route Planning line of work: split CH
// preprocessing into a metric-INDEPENDENT contraction done once per
// topology and a cheap metric customization re-run per weight epoch.
//
// The classic CH (ch.go) entangles the two: witness searches consult the
// current edge weights to suppress unnecessary shortcuts, so a traffic
// update invalidates the whole hierarchy and PR 5's epoch front paid a
// full BuildCH per update, serving ~55x-slower live-Dijkstra queries
// meanwhile. Here the contraction order and the shortcut skeleton are
// functions of the topology alone — contracting a vertex adds a shortcut
// between EVERY pair of its uncontracted neighbors (no witness search),
// yielding the chordal supergraph of the contraction order. A weight
// change then only re-derives the shortcut weights over that fixed
// skeleton: a bottom-up sweep over precomputed lower triangles, a few
// milliseconds where BuildCH took tens to hundreds (see
// BenchmarkDistUnderRebuild advance=customize-cch vs advance=rebuild-ch).
//
// Determinism is load-bearing (DESIGN.md §12): the skeleton is built in a
// canonical order (sorted adjacency, vertex-ID tie-breaks), every
// customization seeds and relaxes arcs in the same fixed order, and a
// query composes a shortest-path sum over the same arcs every epoch — so
// two processes that built the skeleton independently return bit-identical
// distances, which is what lets the customize fast path preserve the
// repo's replay-equivalence guarantee across traffic epochs.

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/roadnet"
)

// CCHSkeleton is the metric-independent artifact: the canonical
// contraction order, the upward chordal arcs in CSR form (each tagged
// with the vertex whose contraction created it and with the base-graph
// arc it descends from, if any), and the flattened lower-triangle list a
// customization sweeps. Build once per topology with BuildCCHSkeleton;
// it is immutable afterwards and safe to share across any number of
// concurrent Customize calls.
type CCHSkeleton struct {
	n        int
	baseArcs int // len of the base graph's CSR arc arrays, for validation

	rank  []int32            // vertex -> contraction rank
	order []roadnet.VertexID // rank -> vertex

	// Upward chordal arcs: for each vertex, arcs to higher-ranked
	// neighbors sorted by rank. upVia is the vertex whose contraction
	// created the arc (-1 for original edges); upBase indexes the base
	// graph's arc arrays (-1 for shortcut-only arcs).
	upStart []int32
	upTo    []roadnet.VertexID
	upVia   []roadnet.VertexID
	upBase  []int32

	// tri is the lower-triangle enumeration: flat (c, a, b) arc-index
	// triples, meaning weight[c] may be improved to weight[a]+weight[b].
	// Triples are grouped by (apex contraction level, arc shard c mod
	// cchCustomizeShards) with group boundaries in triOff — the layout
	// that lets Customize sweep the levels in parallel (see
	// sweepParallel) — and within a group they keep bottom-up apex-rank
	// order. Sweeping the whole array front to back is still a complete,
	// canonical basic customization: all of a level-ℓ apex's out-arcs are
	// finalized by the levels before ℓ.
	tri []int32
	// triOff[lvl*cchCustomizeShards+s] is the first triple (in triangle
	// units; multiply by 3 to index tri) of level lvl's shard s;
	// len(triOff) == numLevels*cchCustomizeShards + 1.
	triOff    []int32
	numLevels int

	shortcutArcs int
}

// cchCustomizeShards is the per-level write-partition width: triangle
// (c,a,b) lands in shard c mod cchCustomizeShards, so every write to an
// arc weight within one level happens on a single shard — the invariant
// that makes the parallel sweep race-free and bit-deterministic.
const cchCustomizeShards = 32

// cchParallelMinTriples is the skeleton size (in tri elements, i.e.
// 3·triangles) below which Customize always sweeps serially: goroutine
// and barrier overhead beats the arithmetic on small hierarchies.
const cchParallelMinTriples = 3 * 65536

// cchParallelMinLevel is the per-level element count below which one
// level is swept inline by the coordinating goroutine instead of being
// fanned out.
const cchParallelMinLevel = 3 * 4096

// cchUpArc is an upward arc recorded at contraction time.
type cchUpArc struct {
	to  roadnet.VertexID
	via roadnet.VertexID
}

// BuildCCHSkeleton contracts g's topology in a canonical
// minimum-fill-in-style order (lazy edge-difference heuristic,
// deterministic vertex-ID tie-breaks) and precomputes the triangle
// enumeration. No edge weight is ever consulted: the result depends only
// on the adjacency structure, so every traffic snapshot of the same base
// graph shares it.
func BuildCCHSkeleton(g *roadnet.Graph) *CCHSkeleton {
	n := g.NumVertices()
	// Topology-only working graph: neighbor -> vertex whose contraction
	// created the edge (-1 for original edges).
	adj := make([]map[roadnet.VertexID]roadnet.VertexID, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[roadnet.VertexID]roadnet.VertexID, g.Degree(roadnet.VertexID(v))+2)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = -1
		adj[e.V][e.U] = -1
	}

	sk := &CCHSkeleton{
		n:        n,
		baseArcs: len(g.ArcCosts()),
		rank:     make([]int32, n),
		order:    make([]roadnet.VertexID, n),
	}
	contracted := make([]bool, n)
	neighborsContracted := make([]int32, n)
	upNbrs := make([][]cchUpArc, n)

	var nbBuf []roadnet.VertexID
	// fillIn counts the shortcut edges contracting v would add right now:
	// pairs of uncontracted neighbors not yet adjacent. A pure count, so
	// map iteration order cannot leak into the priority.
	fillIn := func(v roadnet.VertexID) int {
		nbBuf = nbBuf[:0]
		for u := range adj[v] {
			nbBuf = append(nbBuf, u)
		}
		cnt := 0
		for i, u := range nbBuf {
			for _, x := range nbBuf[i+1:] {
				if _, ok := adj[u][x]; !ok {
					cnt++
				}
			}
		}
		return cnt
	}

	pq := make(chPrioQueue, 0, n)
	for v := 0; v < n; v++ {
		prio := float64(fillIn(roadnet.VertexID(v)) - len(adj[v]))
		pq = append(pq, chPrioItem{v: roadnet.VertexID(v), prio: prio})
	}
	heap.Init(&pq)

	nextRank := int32(0)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(chPrioItem)
		v := it.v
		if contracted[v] {
			continue
		}
		// Lazy update, same discipline as BuildCH.
		prio := float64(fillIn(v)-len(adj[v])) + 2*float64(neighborsContracted[v])
		if pq.Len() > 0 && prio > pq[0].prio+1e-9 {
			heap.Push(&pq, chPrioItem{v: v, prio: prio})
			continue
		}
		sk.rank[v] = nextRank
		sk.order[nextRank] = v
		nextRank++
		// Snapshot v's neighbors in sorted order; all of them outrank v
		// (they contract later), so they become v's upward arcs.
		nbBuf = nbBuf[:0]
		for u := range adj[v] {
			nbBuf = append(nbBuf, u)
		}
		sort.Slice(nbBuf, func(i, j int) bool { return nbBuf[i] < nbBuf[j] })
		for _, u := range nbBuf {
			upNbrs[v] = append(upNbrs[v], cchUpArc{to: u, via: adj[v][u]})
		}
		// Chordal completion: every pair of neighbors becomes adjacent.
		for i, u := range nbBuf {
			for _, x := range nbBuf[i+1:] {
				if _, ok := adj[u][x]; !ok {
					adj[u][x] = v
					adj[x][u] = v
					sk.shortcutArcs++
				}
			}
		}
		contracted[v] = true
		for _, u := range nbBuf {
			delete(adj[u], v)
			neighborsContracted[u]++
		}
		adj[v] = nil
	}

	// Freeze the upward arcs into CSR, sorted by target rank so the
	// triangle precompute below can pair arcs (i, j) with i < j and know
	// upTo[i] is the lower-ranked corner.
	total := 0
	for _, l := range upNbrs {
		total += len(l)
	}
	sk.upStart = make([]int32, n+1)
	sk.upTo = make([]roadnet.VertexID, total)
	sk.upVia = make([]roadnet.VertexID, total)
	sk.upBase = make([]int32, total)
	pos := int32(0)
	for v := 0; v < n; v++ {
		sk.upStart[v] = pos
		l := upNbrs[v]
		sort.Slice(l, func(i, j int) bool { return sk.rank[l[i].to] < sk.rank[l[j].to] })
		for _, a := range l {
			sk.upTo[pos] = a.to
			sk.upVia[pos] = a.via
			sk.upBase[pos] = g.ArcIndex(roadnet.VertexID(v), a.to)
			pos++
		}
		upNbrs[v] = nil
	}
	sk.upStart[n] = pos

	// Contraction levels over the chordal graph: level(v) = 1 + max level
	// of v's lower upward-neighbors (0 for leaves of the hierarchy). A
	// rank-order pass finalizes each vertex before its upward arcs are
	// walked. Levels drive the parallel customization: every out-arc of a
	// level-ℓ vertex is written only by triangles whose apex sits at a
	// level < ℓ, so a sweep that barriers between levels reads only
	// finalized weights.
	level := make([]int32, n)
	maxLevel := int32(0)
	for r := 0; r < n; r++ {
		v := sk.order[r]
		lv := level[v] + 1
		for i := sk.upStart[v]; i < sk.upStart[v+1]; i++ {
			if x := sk.upTo[i]; level[x] < lv {
				level[x] = lv
			}
		}
		if level[v] > maxLevel {
			maxLevel = level[v]
		}
	}
	sk.numLevels = int(maxLevel) + 1

	// Lower-triangle enumeration in bottom-up apex order: when the sweep
	// reaches apex w, every arc leaving a vertex ranked below w is final,
	// so relaxing (upTo[i], upTo[j]) via w is sound.
	var keys []int32
	for r := 0; r < n; r++ {
		w := sk.order[r]
		for i := sk.upStart[w]; i < sk.upStart[w+1]; i++ {
			for j := i + 1; j < sk.upStart[w+1]; j++ {
				c := sk.arcBetween(sk.upTo[i], sk.upTo[j])
				if c < 0 {
					// Impossible by chordal completion; fail loudly rather
					// than silently customizing a broken skeleton.
					panic(fmt.Sprintf("shortest: CCH skeleton missing chordal arc (%d,%d)", sk.upTo[i], sk.upTo[j]))
				}
				sk.tri = append(sk.tri, c, i, j)
				keys = append(keys, level[w]*cchCustomizeShards+c%cchCustomizeShards)
			}
		}
	}

	// Stable counting sort of the triples into (level, shard) groups.
	// Within a group the apex-rank order above is preserved, so the
	// layout — and therefore every sweep over it — stays canonical.
	ngroups := sk.numLevels * cchCustomizeShards
	sk.triOff = make([]int32, ngroups+1)
	for _, k := range keys {
		sk.triOff[k+1]++
	}
	for i := 1; i <= ngroups; i++ {
		sk.triOff[i] += sk.triOff[i-1]
	}
	sorted := make([]int32, len(sk.tri))
	cursor := make([]int32, ngroups)
	copy(cursor, sk.triOff[:ngroups])
	for t, k := range keys {
		p := cursor[k]
		cursor[k] = p + 1
		copy(sorted[p*3:p*3+3], sk.tri[t*3:t*3+3])
	}
	sk.tri = sorted
	return sk
}

// arcBetween returns the index of the upward arc from the lower-ranked of
// u, x to the higher-ranked, or -1 if absent.
func (sk *CCHSkeleton) arcBetween(u, x roadnet.VertexID) int32 {
	lo, hi := u, x
	if sk.rank[lo] > sk.rank[hi] {
		lo, hi = hi, lo
	}
	for i := sk.upStart[lo]; i < sk.upStart[lo+1]; i++ {
		if sk.upTo[i] == hi {
			return i
		}
	}
	return -1
}

// NumVertices returns |V| of the topology the skeleton was built on.
func (sk *CCHSkeleton) NumVertices() int { return sk.n }

// Shortcuts is the number of shortcut edges in the chordal supergraph.
func (sk *CCHSkeleton) Shortcuts() int { return sk.shortcutArcs }

// Triangles is the number of lower triangles one customization sweeps.
func (sk *CCHSkeleton) Triangles() int { return len(sk.tri) / 3 }

// MemoryBytes reports the skeleton's storage footprint.
func (sk *CCHSkeleton) MemoryBytes() int64 {
	return int64(len(sk.upTo))*4 + int64(len(sk.upVia))*4 + int64(len(sk.upBase))*4 +
		int64(len(sk.upStart))*4 + int64(len(sk.tri))*4 + int64(len(sk.triOff))*4 +
		int64(sk.n)*8
}

// Levels is the number of contraction levels the customization sweeps
// (the critical-path length of the parallel sweep).
func (sk *CCHSkeleton) Levels() int { return sk.numLevels }

// Customize derives the epoch's shortcut weights over the fixed skeleton:
// original arcs are seeded from costs (the graph's CSR arc-cost array,
// see roadnet.Graph.ArcCosts), shortcut arcs start at +Inf, and one
// in-order sweep of the precomputed lower triangles settles every weight.
// Because the skeleton, the seeding order and the sweep order are all
// fixed, the same costs always produce bit-identical weights — and
// therefore bit-identical query results — no matter when or where the
// customization ran.
//
// Customize is safe to call concurrently on a shared skeleton; each call
// returns an independent CCH whose query state is its own (wrap in Locked
// to share one instance across goroutines, as Versioned does).
//
// Large skeletons sweep their triangle levels in parallel across
// GOMAXPROCS workers; the result is bit-identical to the serial sweep
// (see sweepParallel), so callers cannot observe which path ran except
// through latency. CustomizeParallel pins the worker count explicitly.
func (sk *CCHSkeleton) Customize(costs []float64) *CCH {
	return sk.CustomizeParallel(costs, runtime.GOMAXPROCS(0))
}

// CustomizeParallel is Customize with an explicit worker count (≤1 forces
// the serial sweep). Any worker count produces bit-identical weights; the
// knob exists for the equivalence tests and the customize benchmarks.
func (sk *CCHSkeleton) CustomizeParallel(costs []float64, workers int) *CCH {
	if len(costs) != sk.baseArcs {
		panic(fmt.Sprintf("shortest: Customize got %d arc costs, skeleton topology has %d arcs",
			len(costs), sk.baseArcs))
	}
	w := make([]float64, len(sk.upTo))
	for i := range w {
		if b := sk.upBase[i]; b >= 0 {
			w[i] = costs[b]
		} else {
			w[i] = math.Inf(1)
		}
	}
	if workers > cchCustomizeShards {
		workers = cchCustomizeShards
	}
	if workers <= 1 || len(sk.tri) < cchParallelMinTriples {
		sk.sweepSerial(w)
	} else {
		sk.sweepParallel(w, workers)
	}
	return &CCH{
		skel: sk,
		upW:  w,
		fwd:  newCHSearch(sk.n),
		bwd:  newCHSearch(sk.n),
	}
}

// sweepSerial is the reference basic customization: one in-order pass
// over the grouped triangle list.
func (sk *CCHSkeleton) sweepSerial(w []float64) {
	tri := sk.tri
	for t := 0; t+3 <= len(tri); t += 3 {
		c, a, b := tri[t], tri[t+1], tri[t+2]
		if s := w[a] + w[b]; s < w[c] {
			w[c] = s
		}
	}
}

// sweepRange relaxes the triangles in triple-index range [lo, hi).
func (sk *CCHSkeleton) sweepRange(w []float64, lo, hi int32) {
	tri := sk.tri
	for t := int(lo) * 3; t < int(hi)*3; t += 3 {
		c, a, b := tri[t], tri[t+1], tri[t+2]
		if s := w[a] + w[b]; s < w[c] {
			w[c] = s
		}
	}
}

// sweepParallel runs the customization level by level with a barrier
// between levels, fanning each level's shards across the workers.
//
// Determinism argument (this must stay bit-identical to sweepSerial, or
// replay equivalence would depend on GOMAXPROCS): a level-ℓ triangle
// reads the two arcs leaving its apex (level ℓ) and writes the arc
// between its corners, which leaves a vertex of level > ℓ. So within a
// level, reads touch only arcs finalized by earlier levels (the barrier)
// and writes touch only arcs no triangle of this level reads. Two
// triangles of one level CAN write the same arc — but they share the
// shard c mod cchCustomizeShards by construction, and a shard is swept
// by exactly one worker, in canonical order. Every arc therefore ends at
// min(seed, min over its triangles of w[a]+w[b] with a, b final) — each
// candidate a single rounded float add of scheduling-independent
// operands, and a float min is order-independent — which is precisely
// the serial sweep's result, bit for bit.
func (sk *CCHSkeleton) sweepParallel(w []float64, workers int) {
	var wg sync.WaitGroup
	for lvl := 0; lvl < sk.numLevels; lvl++ {
		base := lvl * cchCustomizeShards
		lo := sk.triOff[base]
		hi := sk.triOff[base+cchCustomizeShards]
		if (hi-lo)*3 < cchParallelMinLevel {
			sk.sweepRange(w, lo, hi)
			continue
		}
		wg.Add(workers)
		for wk := 0; wk < workers; wk++ {
			go func(wk int) {
				defer wg.Done()
				for s := wk; s < cchCustomizeShards; s += workers {
					sk.sweepRange(w, sk.triOff[base+s], sk.triOff[base+s+1])
				}
			}(wk)
		}
		wg.Wait()
	}
}

// CCH is a customized contraction hierarchy: one epoch's metric laid over
// a shared CCHSkeleton. Queries run the same bidirectional upward search
// as CH. Like CH it reuses per-instance search state, so a shared
// instance needs Locked; the skeleton underneath is immutable and free to
// share.
type CCH struct {
	skel *CCHSkeleton
	upW  []float64

	fwd, bwd chSearch
}

// BuildCCH builds the skeleton for g and customizes it with g's current
// costs — the one-stop constructor Auto and the CLIs use. Keep the
// skeleton (Skeleton) to recustomize later epochs in milliseconds.
func BuildCCH(g *roadnet.Graph) *CCH {
	return BuildCCHSkeleton(g).Customize(g.ArcCosts())
}

// Skeleton returns the metric-independent artifact this CCH customizes,
// shared and immutable.
func (c *CCH) Skeleton() *CCHSkeleton { return c.skel }

// Dist implements Oracle: exact shortest travel time on the customized
// metric via bidirectional upward search.
func (c *CCH) Dist(s, t roadnet.VertexID) float64 {
	return upwardDist(&c.fwd, &c.bwd, c.skel.upStart, c.skel.upTo, c.upW, s, t)
}

// MemoryBytes reports the customized hierarchy's footprint including its
// share of the skeleton.
func (c *CCH) MemoryBytes() int64 {
	return c.skel.MemoryBytes() + int64(len(c.upW))*8
}

// AvgUpDegree is the mean number of upward arcs per vertex.
func (c *CCH) AvgUpDegree() float64 {
	return float64(len(c.skel.upTo)) / float64(c.skel.n)
}
