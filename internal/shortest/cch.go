package shortest

// Customizable contraction hierarchies (CCH), after Dibbelt, Strasser and
// Wagner's Customizable Route Planning line of work: split CH
// preprocessing into a metric-INDEPENDENT contraction done once per
// topology and a cheap metric customization re-run per weight epoch.
//
// The classic CH (ch.go) entangles the two: witness searches consult the
// current edge weights to suppress unnecessary shortcuts, so a traffic
// update invalidates the whole hierarchy and PR 5's epoch front paid a
// full BuildCH per update, serving ~55x-slower live-Dijkstra queries
// meanwhile. Here the contraction order and the shortcut skeleton are
// functions of the topology alone — contracting a vertex adds a shortcut
// between EVERY pair of its uncontracted neighbors (no witness search),
// yielding the chordal supergraph of the contraction order. A weight
// change then only re-derives the shortcut weights over that fixed
// skeleton: a bottom-up sweep over precomputed lower triangles, a few
// milliseconds where BuildCH took tens to hundreds (see
// BenchmarkDistUnderRebuild advance=customize-cch vs advance=rebuild-ch).
//
// Determinism is load-bearing (DESIGN.md §12): the skeleton is built in a
// canonical order (sorted adjacency, vertex-ID tie-breaks), every
// customization seeds and relaxes arcs in the same fixed order, and a
// query composes a shortest-path sum over the same arcs every epoch — so
// two processes that built the skeleton independently return bit-identical
// distances, which is what lets the customize fast path preserve the
// repo's replay-equivalence guarantee across traffic epochs.

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/roadnet"
)

// CCHSkeleton is the metric-independent artifact: the canonical
// contraction order, the upward chordal arcs in CSR form (each tagged
// with the vertex whose contraction created it and with the base-graph
// arc it descends from, if any), and the flattened lower-triangle list a
// customization sweeps. Build once per topology with BuildCCHSkeleton;
// it is immutable afterwards and safe to share across any number of
// concurrent Customize calls.
type CCHSkeleton struct {
	n        int
	baseArcs int // len of the base graph's CSR arc arrays, for validation

	rank  []int32            // vertex -> contraction rank
	order []roadnet.VertexID // rank -> vertex

	// Upward chordal arcs: for each vertex, arcs to higher-ranked
	// neighbors sorted by rank. upVia is the vertex whose contraction
	// created the arc (-1 for original edges); upBase indexes the base
	// graph's arc arrays (-1 for shortcut-only arcs).
	upStart []int32
	upTo    []roadnet.VertexID
	upVia   []roadnet.VertexID
	upBase  []int32

	// tri is the lower-triangle enumeration: flat (c, a, b) arc-index
	// triples in bottom-up apex-rank order, meaning weight[c] may be
	// improved to weight[a]+weight[b]. Sweeping it once in order is a
	// complete basic customization.
	tri []int32

	shortcutArcs int
}

// cchUpArc is an upward arc recorded at contraction time.
type cchUpArc struct {
	to  roadnet.VertexID
	via roadnet.VertexID
}

// BuildCCHSkeleton contracts g's topology in a canonical
// minimum-fill-in-style order (lazy edge-difference heuristic,
// deterministic vertex-ID tie-breaks) and precomputes the triangle
// enumeration. No edge weight is ever consulted: the result depends only
// on the adjacency structure, so every traffic snapshot of the same base
// graph shares it.
func BuildCCHSkeleton(g *roadnet.Graph) *CCHSkeleton {
	n := g.NumVertices()
	// Topology-only working graph: neighbor -> vertex whose contraction
	// created the edge (-1 for original edges).
	adj := make([]map[roadnet.VertexID]roadnet.VertexID, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[roadnet.VertexID]roadnet.VertexID, g.Degree(roadnet.VertexID(v))+2)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = -1
		adj[e.V][e.U] = -1
	}

	sk := &CCHSkeleton{
		n:        n,
		baseArcs: len(g.ArcCosts()),
		rank:     make([]int32, n),
		order:    make([]roadnet.VertexID, n),
	}
	contracted := make([]bool, n)
	neighborsContracted := make([]int32, n)
	upNbrs := make([][]cchUpArc, n)

	var nbBuf []roadnet.VertexID
	// fillIn counts the shortcut edges contracting v would add right now:
	// pairs of uncontracted neighbors not yet adjacent. A pure count, so
	// map iteration order cannot leak into the priority.
	fillIn := func(v roadnet.VertexID) int {
		nbBuf = nbBuf[:0]
		for u := range adj[v] {
			nbBuf = append(nbBuf, u)
		}
		cnt := 0
		for i, u := range nbBuf {
			for _, x := range nbBuf[i+1:] {
				if _, ok := adj[u][x]; !ok {
					cnt++
				}
			}
		}
		return cnt
	}

	pq := make(chPrioQueue, 0, n)
	for v := 0; v < n; v++ {
		prio := float64(fillIn(roadnet.VertexID(v)) - len(adj[v]))
		pq = append(pq, chPrioItem{v: roadnet.VertexID(v), prio: prio})
	}
	heap.Init(&pq)

	nextRank := int32(0)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(chPrioItem)
		v := it.v
		if contracted[v] {
			continue
		}
		// Lazy update, same discipline as BuildCH.
		prio := float64(fillIn(v)-len(adj[v])) + 2*float64(neighborsContracted[v])
		if pq.Len() > 0 && prio > pq[0].prio+1e-9 {
			heap.Push(&pq, chPrioItem{v: v, prio: prio})
			continue
		}
		sk.rank[v] = nextRank
		sk.order[nextRank] = v
		nextRank++
		// Snapshot v's neighbors in sorted order; all of them outrank v
		// (they contract later), so they become v's upward arcs.
		nbBuf = nbBuf[:0]
		for u := range adj[v] {
			nbBuf = append(nbBuf, u)
		}
		sort.Slice(nbBuf, func(i, j int) bool { return nbBuf[i] < nbBuf[j] })
		for _, u := range nbBuf {
			upNbrs[v] = append(upNbrs[v], cchUpArc{to: u, via: adj[v][u]})
		}
		// Chordal completion: every pair of neighbors becomes adjacent.
		for i, u := range nbBuf {
			for _, x := range nbBuf[i+1:] {
				if _, ok := adj[u][x]; !ok {
					adj[u][x] = v
					adj[x][u] = v
					sk.shortcutArcs++
				}
			}
		}
		contracted[v] = true
		for _, u := range nbBuf {
			delete(adj[u], v)
			neighborsContracted[u]++
		}
		adj[v] = nil
	}

	// Freeze the upward arcs into CSR, sorted by target rank so the
	// triangle precompute below can pair arcs (i, j) with i < j and know
	// upTo[i] is the lower-ranked corner.
	total := 0
	for _, l := range upNbrs {
		total += len(l)
	}
	sk.upStart = make([]int32, n+1)
	sk.upTo = make([]roadnet.VertexID, total)
	sk.upVia = make([]roadnet.VertexID, total)
	sk.upBase = make([]int32, total)
	pos := int32(0)
	for v := 0; v < n; v++ {
		sk.upStart[v] = pos
		l := upNbrs[v]
		sort.Slice(l, func(i, j int) bool { return sk.rank[l[i].to] < sk.rank[l[j].to] })
		for _, a := range l {
			sk.upTo[pos] = a.to
			sk.upVia[pos] = a.via
			sk.upBase[pos] = g.ArcIndex(roadnet.VertexID(v), a.to)
			pos++
		}
		upNbrs[v] = nil
	}
	sk.upStart[n] = pos

	// Lower-triangle enumeration in bottom-up apex order: when the sweep
	// reaches apex w, every arc leaving a vertex ranked below w is final,
	// so relaxing (upTo[i], upTo[j]) via w is sound.
	for r := 0; r < n; r++ {
		w := sk.order[r]
		for i := sk.upStart[w]; i < sk.upStart[w+1]; i++ {
			for j := i + 1; j < sk.upStart[w+1]; j++ {
				c := sk.arcBetween(sk.upTo[i], sk.upTo[j])
				if c < 0 {
					// Impossible by chordal completion; fail loudly rather
					// than silently customizing a broken skeleton.
					panic(fmt.Sprintf("shortest: CCH skeleton missing chordal arc (%d,%d)", sk.upTo[i], sk.upTo[j]))
				}
				sk.tri = append(sk.tri, c, i, j)
			}
		}
	}
	return sk
}

// arcBetween returns the index of the upward arc from the lower-ranked of
// u, x to the higher-ranked, or -1 if absent.
func (sk *CCHSkeleton) arcBetween(u, x roadnet.VertexID) int32 {
	lo, hi := u, x
	if sk.rank[lo] > sk.rank[hi] {
		lo, hi = hi, lo
	}
	for i := sk.upStart[lo]; i < sk.upStart[lo+1]; i++ {
		if sk.upTo[i] == hi {
			return i
		}
	}
	return -1
}

// NumVertices returns |V| of the topology the skeleton was built on.
func (sk *CCHSkeleton) NumVertices() int { return sk.n }

// Shortcuts is the number of shortcut edges in the chordal supergraph.
func (sk *CCHSkeleton) Shortcuts() int { return sk.shortcutArcs }

// Triangles is the number of lower triangles one customization sweeps.
func (sk *CCHSkeleton) Triangles() int { return len(sk.tri) / 3 }

// MemoryBytes reports the skeleton's storage footprint.
func (sk *CCHSkeleton) MemoryBytes() int64 {
	return int64(len(sk.upTo))*4 + int64(len(sk.upVia))*4 + int64(len(sk.upBase))*4 +
		int64(len(sk.upStart))*4 + int64(len(sk.tri))*4 + int64(sk.n)*8
}

// Customize derives the epoch's shortcut weights over the fixed skeleton:
// original arcs are seeded from costs (the graph's CSR arc-cost array,
// see roadnet.Graph.ArcCosts), shortcut arcs start at +Inf, and one
// in-order sweep of the precomputed lower triangles settles every weight.
// Because the skeleton, the seeding order and the sweep order are all
// fixed, the same costs always produce bit-identical weights — and
// therefore bit-identical query results — no matter when or where the
// customization ran.
//
// Customize is safe to call concurrently on a shared skeleton; each call
// returns an independent CCH whose query state is its own (wrap in Locked
// to share one instance across goroutines, as Versioned does).
func (sk *CCHSkeleton) Customize(costs []float64) *CCH {
	if len(costs) != sk.baseArcs {
		panic(fmt.Sprintf("shortest: Customize got %d arc costs, skeleton topology has %d arcs",
			len(costs), sk.baseArcs))
	}
	w := make([]float64, len(sk.upTo))
	for i := range w {
		if b := sk.upBase[i]; b >= 0 {
			w[i] = costs[b]
		} else {
			w[i] = math.Inf(1)
		}
	}
	for t := 0; t+3 <= len(sk.tri); t += 3 {
		c, a, b := sk.tri[t], sk.tri[t+1], sk.tri[t+2]
		if s := w[a] + w[b]; s < w[c] {
			w[c] = s
		}
	}
	return &CCH{
		skel: sk,
		upW:  w,
		fwd:  newCHSearch(sk.n),
		bwd:  newCHSearch(sk.n),
	}
}

// CCH is a customized contraction hierarchy: one epoch's metric laid over
// a shared CCHSkeleton. Queries run the same bidirectional upward search
// as CH. Like CH it reuses per-instance search state, so a shared
// instance needs Locked; the skeleton underneath is immutable and free to
// share.
type CCH struct {
	skel *CCHSkeleton
	upW  []float64

	fwd, bwd chSearch
}

// BuildCCH builds the skeleton for g and customizes it with g's current
// costs — the one-stop constructor Auto and the CLIs use. Keep the
// skeleton (Skeleton) to recustomize later epochs in milliseconds.
func BuildCCH(g *roadnet.Graph) *CCH {
	return BuildCCHSkeleton(g).Customize(g.ArcCosts())
}

// Skeleton returns the metric-independent artifact this CCH customizes,
// shared and immutable.
func (c *CCH) Skeleton() *CCHSkeleton { return c.skel }

// Dist implements Oracle: exact shortest travel time on the customized
// metric via bidirectional upward search.
func (c *CCH) Dist(s, t roadnet.VertexID) float64 {
	return upwardDist(&c.fwd, &c.bwd, c.skel.upStart, c.skel.upTo, c.upW, s, t)
}

// MemoryBytes reports the customized hierarchy's footprint including its
// share of the skeleton.
func (c *CCH) MemoryBytes() int64 {
	return c.skel.MemoryBytes() + int64(len(c.upW))*8
}

// AvgUpDegree is the mean number of upward arcs per vertex.
func (c *CCH) AvgUpDegree() float64 {
	return float64(len(c.skel.upTo)) / float64(c.skel.n)
}
