package shortest

import (
	"sort"

	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// HubLabels is a 2-hop labeling distance oracle built with pruned landmark
// labeling. It plays the role of the "hub-based labeling algorithm ...
// for road networks" ([9], Abraham et al.) that the paper uses for its
// shortest-distance queries: after an offline construction, a query is a
// merge-intersection of two sorted label lists — effectively the O(1)-ish
// oracle the paper's complexity analysis assumes.
//
// Construction runs one pruned Dijkstra per vertex in "importance" order;
// for grid-like city networks we order vertices by closeness to the map
// center (central vertices hit the most shortest paths), tie-broken by
// degree. Labels are exact: Query(u,v) equals the true shortest distance.
type HubLabels struct {
	n int
	// Per-vertex labels, hubs strictly increasing by rank.
	hubRank [][]int32
	hubDist [][]float64
}

// BuildHubLabels constructs the labeling. It is deterministic.
func BuildHubLabels(g *roadnet.Graph) *HubLabels {
	n := g.NumVertices()
	order := hubOrder(g)
	rankOf := make([]int32, n)
	for r, v := range order {
		rankOf[v] = int32(r)
	}

	h := &HubLabels{
		n:       n,
		hubRank: make([][]int32, n),
		hubDist: make([][]float64, n),
	}

	dist := make([]float64, n)
	version := make([]uint32, n)
	var cur uint32
	heap := pqueue.New(n)

	// tmp arrays for O(1) partial query during pruning: distances from the
	// current root's labels, indexed by hub rank.
	rootLabel := make([]float64, n)
	for i := range rootLabel {
		rootLabel[i] = -1
	}

	for rank, root := range order {
		// Load root's labels into rootLabel for O(1) lookups.
		for i, hr := range h.hubRank[root] {
			rootLabel[hr] = h.hubDist[root][i]
		}
		cur++
		heap.Reset()
		version[root] = cur
		dist[root] = 0
		heap.Push(root, 0)
		for heap.Len() > 0 {
			v, dv := heap.Pop()
			// Prune: if some earlier hub already certifies a distance
			// ≤ dv between root and v, v (and everything behind it)
			// doesn't need root as a hub.
			pruned := false
			hr := h.hubRank[v]
			hd := h.hubDist[v]
			for i, r := range hr {
				if d := rootLabel[r]; d >= 0 && d+hd[i] <= dv {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			h.hubRank[v] = append(h.hubRank[v], int32(rank))
			h.hubDist[v] = append(h.hubDist[v], dv)
			to, cost := g.Arcs(v)
			for i, u := range to {
				du := dv + cost[i]
				if version[u] != cur || du < dist[u] {
					version[u] = cur
					dist[u] = du
					heap.Push(u, du)
				}
			}
		}
		// Unload root labels.
		for _, hr := range h.hubRank[root] {
			rootLabel[hr] = -1
		}
	}
	return h
}

// hubOrder returns vertices sorted by decreasing expected "hub usefulness":
// closeness to the network center first, then degree.
func hubOrder(g *roadnet.Graph) []roadnet.VertexID {
	n := g.NumVertices()
	center := g.Bounds().Center()
	order := make([]roadnet.VertexID, n)
	for i := range order {
		order[i] = roadnet.VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di := g.Point(order[i]).DistSq(center)
		dj := g.Point(order[j]).DistSq(center)
		if di != dj {
			return di < dj
		}
		gi, gj := g.Degree(order[i]), g.Degree(order[j])
		if gi != gj {
			return gi > gj
		}
		return order[i] < order[j]
	})
	return order
}

// Dist implements Oracle: exact shortest travel time, +Inf if disconnected.
func (h *HubLabels) Dist(s, t roadnet.VertexID) float64 {
	if s == t {
		return 0
	}
	ra, da := h.hubRank[s], h.hubDist[s]
	rb, db := h.hubRank[t], h.hubDist[t]
	best := Inf
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] < rb[j]:
			i++
		case ra[i] > rb[j]:
			j++
		default:
			if d := da[i] + db[j]; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// AvgLabelSize returns the mean number of hubs per vertex, a standard
// quality measure for labelings.
func (h *HubLabels) AvgLabelSize() float64 {
	total := 0
	for _, l := range h.hubRank {
		total += len(l)
	}
	return float64(total) / float64(h.n)
}

// MemoryBytes approximates the labeling's memory footprint.
func (h *HubLabels) MemoryBytes() int64 {
	total := int64(0)
	for i := range h.hubRank {
		total += int64(len(h.hubRank[i]))*4 + int64(len(h.hubDist[i]))*8
	}
	return total
}
