package shortest

import (
	"slices"

	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// HubLabels is a 2-hop labeling distance oracle built with pruned landmark
// labeling. It plays the role of the "hub-based labeling algorithm ...
// for road networks" ([9], Abraham et al.) that the paper uses for its
// shortest-distance queries: after an offline construction, a query is a
// merge-intersection of two sorted label lists — effectively the O(1)-ish
// oracle the paper's complexity analysis assumes.
//
// Construction runs one pruned Dijkstra per vertex in "importance" order;
// for grid-like city networks we order vertices by closeness to the map
// center (central vertices hit the most shortest paths), tie-broken by
// degree. Labels are exact: Query(u,v) equals the true shortest distance.
//
// Labels are stored in CSR (compressed sparse row) form: vertex v's label
// occupies hubs[offsets[v]:offsets[v+1]] (hub ranks, strictly increasing)
// and dists[offsets[v]:offsets[v+1]] in parallel. The flat layout makes
// Dist — the innermost operation of every planner, called millions of
// times per sweep — a merge over two contiguous spans with no per-vertex
// pointer chasing, and it allocates nothing.
type HubLabels struct {
	n       int
	offsets []int32
	hubs    []int32
	dists   []float64
}

// nestedLabels is the construction-time layout: per-vertex slices that can
// grow independently while the pruned Dijkstras append labels. It is kept
// as a separate type (rather than flattening on the fly) so the CSR
// flattening can be equivalence-tested against it.
type nestedLabels struct {
	hubRank [][]int32
	hubDist [][]float64
}

// BuildHubLabels constructs the labeling. It is deterministic.
func BuildHubLabels(g *roadnet.Graph) *HubLabels {
	return buildNestedLabels(g).flatten()
}

// buildNestedLabels runs the pruned landmark labeling into the nested
// construction layout.
func buildNestedLabels(g *roadnet.Graph) *nestedLabels {
	n := g.NumVertices()
	order := hubOrder(g)

	nl := &nestedLabels{
		hubRank: make([][]int32, n),
		hubDist: make([][]float64, n),
	}

	dist := make([]float64, n)
	version := make([]uint32, n)
	var cur uint32
	heap := pqueue.New(n)

	// tmp arrays for O(1) partial query during pruning: distances from the
	// current root's labels, indexed by hub rank.
	rootLabel := make([]float64, n)
	for i := range rootLabel {
		rootLabel[i] = -1
	}

	for rank, root := range order {
		// Load root's labels into rootLabel for O(1) lookups.
		for i, hr := range nl.hubRank[root] {
			rootLabel[hr] = nl.hubDist[root][i]
		}
		cur++
		heap.Reset()
		version[root] = cur
		dist[root] = 0
		heap.Push(root, 0)
		for heap.Len() > 0 {
			v, dv := heap.Pop()
			// Prune: if some earlier hub already certifies a distance
			// ≤ dv between root and v, v (and everything behind it)
			// doesn't need root as a hub.
			pruned := false
			hr := nl.hubRank[v]
			hd := nl.hubDist[v]
			for i, r := range hr {
				if d := rootLabel[r]; d >= 0 && d+hd[i] <= dv {
					pruned = true
					break
				}
			}
			if pruned {
				continue
			}
			nl.hubRank[v] = append(nl.hubRank[v], int32(rank))
			nl.hubDist[v] = append(nl.hubDist[v], dv)
			to, cost := g.Arcs(v)
			for i, u := range to {
				du := dv + cost[i]
				if version[u] != cur || du < dist[u] {
					version[u] = cur
					dist[u] = du
					heap.Push(u, du)
				}
			}
		}
		// Unload root labels.
		for _, hr := range nl.hubRank[root] {
			rootLabel[hr] = -1
		}
	}
	return nl
}

// flatten packs the nested labels into the contiguous CSR arrays. Label
// order within a vertex is preserved (strictly increasing hub rank), so
// flat and nested queries merge identical sequences.
func (nl *nestedLabels) flatten() *HubLabels {
	n := len(nl.hubRank)
	total := 0
	for _, l := range nl.hubRank {
		total += len(l)
	}
	h := &HubLabels{
		n:       n,
		offsets: make([]int32, n+1),
		hubs:    make([]int32, 0, total),
		dists:   make([]float64, 0, total),
	}
	for v := 0; v < n; v++ {
		h.offsets[v] = int32(len(h.hubs))
		h.hubs = append(h.hubs, nl.hubRank[v]...)
		h.dists = append(h.dists, nl.hubDist[v]...)
	}
	h.offsets[n] = int32(len(h.hubs))
	return h
}

// dist is the reference nested-layout query the CSR layout is
// equivalence-tested against (same merge, pointer-chased storage).
func (nl *nestedLabels) dist(s, t roadnet.VertexID) float64 {
	if s == t {
		return 0
	}
	ra, da := nl.hubRank[s], nl.hubDist[s]
	rb, db := nl.hubRank[t], nl.hubDist[t]
	best := Inf
	i, j := 0, 0
	for i < len(ra) && j < len(rb) {
		switch {
		case ra[i] < rb[j]:
			i++
		case ra[i] > rb[j]:
			j++
		default:
			if d := da[i] + db[j]; d < best {
				best = d
			}
			i++
			j++
		}
	}
	return best
}

// hubOrder returns vertices sorted by decreasing expected "hub usefulness":
// closeness to the network center first, then degree. The comparator is a
// total order (vertex ID breaks all ties), so the result is unique no
// matter which sort algorithm produces it.
func hubOrder(g *roadnet.Graph) []roadnet.VertexID {
	n := g.NumVertices()
	center := g.Bounds().Center()
	order := make([]roadnet.VertexID, n)
	for i := range order {
		order[i] = roadnet.VertexID(i)
	}
	slices.SortFunc(order, func(a, b roadnet.VertexID) int {
		da := g.Point(a).DistSq(center)
		db := g.Point(b).DistSq(center)
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		}
		ga, gb := g.Degree(a), g.Degree(b)
		switch {
		case ga > gb:
			return -1
		case ga < gb:
			return 1
		}
		return int(a - b)
	})
	return order
}

// Dist implements Oracle: exact shortest travel time, +Inf if disconnected.
// It is a branch-light merge over two contiguous CSR spans and performs no
// allocations; being read-only after construction it is safe for any
// number of concurrent callers.
func (h *HubLabels) Dist(s, t roadnet.VertexID) float64 {
	if s == t {
		return 0
	}
	i, ie := h.offsets[s], h.offsets[s+1]
	j, je := h.offsets[t], h.offsets[t+1]
	best := Inf
	for i < ie && j < je {
		a, b := h.hubs[i], h.hubs[j]
		if a == b {
			if d := h.dists[i] + h.dists[j]; d < best {
				best = d
			}
			i++
			j++
		} else if a < b {
			i++
		} else {
			j++
		}
	}
	return best
}

// AvgLabelSize returns the mean number of hubs per vertex, a standard
// quality measure for labelings.
func (h *HubLabels) AvgLabelSize() float64 {
	return float64(len(h.hubs)) / float64(h.n)
}

// MemoryBytes approximates the labeling's memory footprint.
func (h *HubLabels) MemoryBytes() int64 {
	return int64(len(h.offsets))*4 + int64(len(h.hubs))*4 + int64(len(h.dists))*8
}
