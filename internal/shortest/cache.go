package shortest

import "repro/internal/roadnet"

// lruEntry is a node of the intrusive doubly-linked LRU list.
type lruEntry struct {
	key        uint64
	val        float64
	prev, next int32
}

// LRU is a fixed-capacity least-recently-used cache from (u,v) vertex pairs
// to distances. The paper's experiments maintain "an LRU cache ... for
// shortest distance and path queries ... used by all the algorithms"; this
// is that cache. Keys are symmetric ((u,v) ≡ (v,u)) because the road
// network is undirected.
//
// Entries live in a flat slice and the list uses int32 indices, keeping the
// cache allocation-free after construction. Not safe for concurrent use.
type LRU struct {
	capacity int
	entries  []lruEntry
	index    map[uint64]int32
	head     int32 // most recently used
	tail     int32 // least recently used
	Hits     uint64
	Misses   uint64
}

// NewLRU returns a cache holding up to capacity entries (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU{
		capacity: capacity,
		entries:  make([]lruEntry, 0, capacity),
		index:    make(map[uint64]int32, capacity),
		head:     -1,
		tail:     -1,
	}
}

func pairKey(u, v roadnet.VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Len returns the number of cached entries.
func (c *LRU) Len() int { return len(c.entries) }

// Flush drops every entry, keeping the backing storage and the cumulative
// hit/miss counters. Epoch-aware wrappers call it when the weight epoch
// advances: a distance cached under old weights must never answer a query
// under new ones.
func (c *LRU) Flush() {
	c.entries = c.entries[:0]
	clear(c.index)
	c.head, c.tail = -1, -1
}

// Get looks up the cached distance for (u,v).
func (c *LRU) Get(u, v roadnet.VertexID) (float64, bool) {
	i, ok := c.index[pairKey(u, v)]
	if !ok {
		c.Misses++
		return 0, false
	}
	c.Hits++
	c.moveToFront(i)
	return c.entries[i].val, true
}

// Put stores the distance for (u,v), evicting the least recently used
// entry when full.
func (c *LRU) Put(u, v roadnet.VertexID, d float64) {
	key := pairKey(u, v)
	if i, ok := c.index[key]; ok {
		c.entries[i].val = d
		c.moveToFront(i)
		return
	}
	var i int32
	if len(c.entries) < c.capacity {
		c.entries = append(c.entries, lruEntry{key: key, val: d, prev: -1, next: -1})
		i = int32(len(c.entries) - 1)
	} else {
		i = c.tail
		c.detach(i)
		delete(c.index, c.entries[i].key)
		c.entries[i] = lruEntry{key: key, val: d, prev: -1, next: -1}
	}
	c.index[key] = i
	c.pushFront(i)
}

func (c *LRU) detach(i int32) {
	e := &c.entries[i]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (c *LRU) pushFront(i int32) {
	e := &c.entries[i]
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

func (c *LRU) moveToFront(i int32) {
	if c.head == i {
		return
	}
	c.detach(i)
	c.pushFront(i)
}

// Cached wraps an Oracle with an LRU cache. It also counts the queries that
// reached the inner oracle (cache misses) separately from total queries,
// which is what the "saved distance queries" experiment reports.
//
// When the inner chain contains an epoch-aware oracle (Versioned), the
// cache watches its epoch and flushes itself on advance; a static chain
// resolves no source at construction and pays nothing per query.
type Cached struct {
	inner Oracle
	cache *LRU
	src   EpochSource
	epoch uint64
}

// NewCached wraps inner with a cache of the given capacity.
func NewCached(inner Oracle, capacity int) *Cached {
	c := &Cached{inner: inner, cache: NewLRU(capacity)}
	if c.src = epochSourceOf(inner); c.src != nil {
		c.epoch = c.src.Epoch()
	}
	return c
}

// Dist implements Oracle.
func (c *Cached) Dist(u, v roadnet.VertexID) float64 {
	if c.src != nil {
		if e := c.src.Epoch(); e != c.epoch {
			c.cache.Flush()
			c.epoch = e
		}
	}
	if u == v {
		return 0
	}
	if d, ok := c.cache.Get(u, v); ok {
		return d
	}
	d := c.inner.Dist(u, v)
	c.cache.Put(u, v, d)
	return d
}

// Stats returns (hits, misses) of the underlying cache.
func (c *Cached) Stats() (hits, misses uint64) { return c.cache.Hits, c.cache.Misses }
