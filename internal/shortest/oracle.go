// Package shortest provides the shortest-path machinery the paper assumes
// as a substrate: exact point-to-point travel-time queries via Dijkstra,
// bidirectional Dijkstra, A*, and a hub-labeling oracle (pruned landmark
// labeling, standing in for the hub-based labeling of Abraham et al., the
// paper's reference [9]), plus the LRU query cache and query counters used
// in the paper's experimental setup.
//
// All distances are travel times in seconds over roadnet.Graph edges.
package shortest

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// Oracle answers point-to-point shortest travel-time queries.
// Dist returns +Inf when t is unreachable from s.
type Oracle interface {
	Dist(s, t roadnet.VertexID) float64
}

// PathOracle additionally reconstructs a shortest path as a vertex
// sequence including both endpoints. A nil slice means unreachable.
type PathOracle interface {
	Oracle
	Path(s, t roadnet.VertexID) []roadnet.VertexID
}

// Counting wraps an Oracle and counts queries. The paper's §6 reports
// "saved shortest distance queries" between pruneGreedyDP and GreedyDP;
// this wrapper is how the harness measures them. It is not safe for
// concurrent use, matching the single-threaded simulator.
type Counting struct {
	Inner   Oracle
	Queries uint64
}

// NewCounting wraps inner with a query counter.
func NewCounting(inner Oracle) *Counting { return &Counting{Inner: inner} }

// Dist implements Oracle, incrementing the query counter.
func (c *Counting) Dist(s, t roadnet.VertexID) float64 {
	c.Queries++
	return c.Inner.Dist(s, t)
}

// Reset zeroes the counter.
func (c *Counting) Reset() { c.Queries = 0 }

// Count implements QueryCounter.
func (c *Counting) Count() uint64 { return c.Queries }

// Matrix is a precomputed all-pairs oracle. It is O(V²) memory and is only
// intended for small graphs (tests, the hardness constructions, and the
// insertion microbenchmarks where O(1) queries isolate operator cost).
type Matrix struct {
	n    int
	dist []float64
}

// maxMatrixVertices caps NewMatrix at a ~4 GiB table. A dense matrix on a
// real road network (DIMACS USA is 24M vertices — petabytes) is always a
// caller bug, and without the guard the symptom is an OOM kill mid-make
// rather than a diagnosis.
const maxMatrixVertices = 23170

// matrixOverheadBytes is the fixed footprint beyond the cell payload: the
// slice header (24 bytes) plus the n field (8).
const matrixOverheadBytes = 32

// NewMatrix runs one full Dijkstra per vertex and stores the results. It
// panics with a sizing diagnosis on graphs beyond maxMatrixVertices, where
// the quadratic table could not be allocated anyway.
func NewMatrix(g *roadnet.Graph) *Matrix {
	n := g.NumVertices()
	if n > maxMatrixVertices {
		panic(fmt.Sprintf("shortest: NewMatrix on %d vertices needs %.1f GiB for the dense table (limit %d vertices); use a preprocessed tier (hub labels, CH, CCH) instead",
			n, float64(n)*float64(n)*8/(1<<30), maxMatrixVertices))
	}
	m := &Matrix{n: n, dist: make([]float64, n*n)}
	d := NewDijkstra(g)
	for s := 0; s < n; s++ {
		d.RunAll(roadnet.VertexID(s))
		row := m.dist[s*n : (s+1)*n]
		for v := 0; v < n; v++ {
			row[v] = d.DistTo(roadnet.VertexID(v))
		}
	}
	return m
}

// Dist implements Oracle in O(1).
func (m *Matrix) Dist(s, t roadnet.VertexID) float64 {
	return m.dist[int(s)*m.n+int(t)]
}

// MemoryBytes reports the size of the matrix including the struct and
// slice-header overhead (it used to count the cell payload alone, which
// understated every small-matrix footprint the experiment tables report).
func (m *Matrix) MemoryBytes() int64 {
	return int64(len(m.dist))*8 + matrixOverheadBytes
}

// Inf is the distance reported for unreachable pairs.
var Inf = math.Inf(1)
