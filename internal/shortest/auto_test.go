package shortest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

func TestAutoBudgetChoose(t *testing.T) {
	b := AutoBudget{MaxHubVertices: 100, MaxCCHVertices: 500, MaxCHVertices: 1000}
	cases := []struct {
		n    int
		want AutoKind
	}{
		{1, AutoHub}, {100, AutoHub},
		{101, AutoCCH}, {500, AutoCCH},
		{501, AutoCH}, {1000, AutoCH},
		{1001, AutoBiDijkstra}, {1 << 30, AutoBiDijkstra},
	}
	for _, tc := range cases {
		if got := b.Choose(tc.n); got != tc.want {
			t.Errorf("Choose(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
	// A zero MaxCCHVertices (every pre-CCH budget literal) never selects
	// the CCH tier, preserving old budgets' behavior.
	legacy := AutoBudget{MaxHubVertices: 100, MaxCHVertices: 1000}
	if got := legacy.Choose(500); got != AutoCH {
		t.Errorf("legacy budget Choose(500) = %q, want %q", got, AutoCH)
	}
}

// TestAutoMatchesDijkstra forces each tier in turn via the budget and
// asserts its distances equal plain Dijkstra's on sampled pairs — the
// equivalence contract that makes the tier choice a pure performance
// decision.
func TestAutoMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 16, 16, 42)
	n := g.NumVertices()
	budgets := map[AutoKind]AutoBudget{
		AutoHub:        {MaxHubVertices: n, MaxCHVertices: n},
		AutoCCH:        {MaxHubVertices: 0, MaxCCHVertices: n, MaxCHVertices: n},
		AutoCH:         {MaxHubVertices: 0, MaxCHVertices: n},
		AutoBiDijkstra: {MaxHubVertices: 0, MaxCHVertices: 0},
	}
	ref := NewDijkstra(g)
	for want, budget := range budgets {
		t.Run(string(want), func(t *testing.T) {
			oracle, kind := Auto(g, budget)
			if kind != want {
				t.Fatalf("Auto chose %q, want %q", kind, want)
			}
			rng := rand.New(rand.NewSource(7))
			for q := 0; q < 300; q++ {
				s := roadnet.VertexID(rng.Intn(n))
				d := roadnet.VertexID(rng.Intn(n))
				if got, exp := oracle.Dist(s, d), ref.Dist(s, d); math.Abs(got-exp) > 1e-6 {
					t.Fatalf("%s: Dist(%d,%d) = %v, want %v", kind, s, d, got, exp)
				}
			}
		})
	}
}

func TestAutoDefaultBudgetOrdering(t *testing.T) {
	b := DefaultAutoBudget()
	if b.MaxHubVertices <= 0 || b.MaxCHVertices <= b.MaxHubVertices {
		t.Fatalf("default budget not ordered: %+v", b)
	}
	// The default makes CCH the whole mid tier (its epoch advances cost
	// milliseconds, classic CH's cost a full rebuild).
	if b.MaxCCHVertices < b.MaxCHVertices {
		t.Fatalf("default budget leaves a CH band above CCH: %+v", b)
	}
}

// BenchmarkOracleTiers backs the Auto thresholds with numbers: per-tier
// preprocessing cost and query latency on one mid-size synthetic city.
// Run with: go test ./internal/shortest -bench OracleTiers -benchtime 10x
func BenchmarkOracleTiers(b *testing.B) {
	g := testGraph(b, 45, 45, 3)
	n := g.NumVertices()
	build := map[AutoKind]func() Oracle{
		AutoHub:        func() Oracle { return BuildHubLabels(g) },
		AutoCCH:        func() Oracle { return BuildCCH(g) },
		AutoCH:         func() Oracle { return BuildCH(g) },
		AutoBiDijkstra: func() Oracle { return NewBiDijkstra(g) },
	}
	for _, kind := range []AutoKind{AutoHub, AutoCCH, AutoCH, AutoBiDijkstra} {
		b.Run(fmt.Sprintf("build/%s", kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				build[kind]()
			}
		})
		oracle := build[kind]()
		b.Run(fmt.Sprintf("query/%s", kind), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < b.N; i++ {
				oracle.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
			}
		})
	}
}
