package shortest

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func testGraph(t testing.TB, rows, cols int, seed int64) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: rows, Cols: cols, Spacing: 140, Jitter: 0.3, ArterialEvery: 6,
		MotorwayRing: true, RemoveFrac: 0.12, DetourMin: 1.02, DetourMax: 1.4,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraLine(t *testing.T) {
	g, err := roadnet.LineGraph(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g)
	if got := d.Dist(0, 4); math.Abs(got-8) > 1e-9 {
		t.Fatalf("Dist(0,4)=%v want 8", got)
	}
	if got := d.Dist(3, 1); math.Abs(got-4) > 1e-9 {
		t.Fatalf("Dist(3,1)=%v want 4", got)
	}
	if got := d.Dist(2, 2); got != 0 {
		t.Fatalf("Dist(2,2)=%v want 0", got)
	}
	path := d.Path(0, 3)
	want := []roadnet.VertexID{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path=%v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path=%v want %v", path, want)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := roadnet.NewBuilder(3, 1)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{X: 10})
	b.AddVertex(geo.Point{X: 100})
	b.AddEdge(0, 1, 10, geo.Residential)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g)
	if got := d.Dist(0, 2); !math.IsInf(got, 1) {
		t.Fatalf("unreachable Dist=%v", got)
	}
	if p := d.Path(0, 2); p != nil {
		t.Fatalf("unreachable Path=%v", p)
	}
}

func TestRunWithinRadius(t *testing.T) {
	g, err := roadnet.LineGraph(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDijkstra(g)
	d.RunWithin(0, 7) // reaches vertices 0,1,2 (cost 0,3,6); vertex 3 at 9 is out
	if !d.Reached(2) {
		t.Fatal("vertex 2 should be reached within radius 7")
	}
	if d.Reached(4) {
		t.Fatal("vertex 4 should not be reached within radius 7")
	}
}

// TestEnginesAgree cross-validates Dijkstra, A*, bidirectional Dijkstra and
// hub labels on random queries over a synthetic city.
func TestEnginesAgree(t *testing.T) {
	g := testGraph(t, 18, 22, 4)
	dij := NewDijkstra(g)
	ast := NewAStar(g)
	bi := NewBiDijkstra(g)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(11))
	n := g.NumVertices()
	for q := 0; q < 400; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		want := dij.Dist(s, tt)
		if got := ast.Dist(s, tt); math.Abs(got-want) > 1e-6 {
			t.Fatalf("A* (%d,%d)=%v want %v", s, tt, got, want)
		}
		if got := bi.Dist(s, tt); math.Abs(got-want) > 1e-6 {
			t.Fatalf("BiDijkstra (%d,%d)=%v want %v", s, tt, got, want)
		}
		if got := hub.Dist(s, tt); math.Abs(got-want) > 1e-6 {
			t.Fatalf("HubLabels (%d,%d)=%v want %v", s, tt, got, want)
		}
	}
}

// pathCost sums edge costs along a path, failing if an edge is missing.
func pathCost(t *testing.T, g *roadnet.Graph, path []roadnet.VertexID) float64 {
	t.Helper()
	total := 0.0
	for i := 0; i+1 < len(path); i++ {
		c, ok := g.EdgeCost(path[i], path[i+1])
		if !ok {
			t.Fatalf("path uses non-edge (%d,%d)", path[i], path[i+1])
		}
		total += c
	}
	return total
}

func TestPathsAreValidAndOptimal(t *testing.T) {
	g := testGraph(t, 14, 14, 8)
	dij := NewDijkstra(g)
	ast := NewAStar(g)
	bi := NewBiDijkstra(g)
	rng := rand.New(rand.NewSource(2))
	n := g.NumVertices()
	for q := 0; q < 150; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		want := dij.Dist(s, tt)
		for name, path := range map[string][]roadnet.VertexID{
			"dijkstra": dij.Path(s, tt),
			"astar":    ast.Path(s, tt),
			"bi":       bi.Path(s, tt),
		} {
			if len(path) == 0 || path[0] != s || path[len(path)-1] != tt {
				t.Fatalf("%s path endpoints wrong: %v (s=%d t=%d)", name, path, s, tt)
			}
			if got := pathCost(t, g, path); math.Abs(got-want) > 1e-6 {
				t.Fatalf("%s path cost=%v want %v", name, got, want)
			}
		}
	}
}

func TestBiDijkstraTrivial(t *testing.T) {
	g := testGraph(t, 6, 6, 1)
	bi := NewBiDijkstra(g)
	if d := bi.Dist(3, 3); d != 0 {
		t.Fatalf("self distance=%v", d)
	}
	p := bi.Path(3, 3)
	if len(p) != 1 || p[0] != 3 {
		t.Fatalf("self path=%v", p)
	}
}

func TestHubLabelsSymmetric(t *testing.T) {
	g := testGraph(t, 10, 10, 3)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(9))
	n := g.NumVertices()
	for q := 0; q < 200; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		a, b := hub.Dist(s, tt), hub.Dist(tt, s)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("asymmetric hub distance (%d,%d): %v vs %v", s, tt, a, b)
		}
	}
	if hub.AvgLabelSize() <= 0 {
		t.Fatal("labels empty")
	}
	if hub.MemoryBytes() <= 0 {
		t.Fatal("memory not reported")
	}
}

func TestHubLabelsTriangleInequality(t *testing.T) {
	g := testGraph(t, 9, 9, 6)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(13))
	n := g.NumVertices()
	for q := 0; q < 500; q++ {
		a := roadnet.VertexID(rng.Intn(n))
		b := roadnet.VertexID(rng.Intn(n))
		c := roadnet.VertexID(rng.Intn(n))
		if hub.Dist(a, c) > hub.Dist(a, b)+hub.Dist(b, c)+1e-6 {
			t.Fatalf("triangle inequality violated at (%d,%d,%d)", a, b, c)
		}
	}
}

func TestEuclidTimeLowerBoundsNetworkDistance(t *testing.T) {
	g := testGraph(t, 12, 12, 7)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(21))
	n := g.NumVertices()
	for q := 0; q < 500; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		if lb := g.EuclidTime(s, tt); lb > hub.Dist(s, tt)+1e-6 {
			t.Fatalf("euclid lower bound %v exceeds network distance %v for (%d,%d)",
				lb, hub.Dist(s, tt), s, tt)
		}
	}
}

func TestMatrixOracle(t *testing.T) {
	g := testGraph(t, 7, 7, 2)
	m := NewMatrix(g)
	d := NewDijkstra(g)
	rng := rand.New(rand.NewSource(17))
	n := g.NumVertices()
	for q := 0; q < 200; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		if math.Abs(m.Dist(s, tt)-d.Dist(s, tt)) > 1e-6 {
			t.Fatalf("matrix mismatch at (%d,%d)", s, tt)
		}
	}
	if m.MemoryBytes() <= int64(n)*int64(n)*8 {
		t.Fatal("matrix memory must include header overhead beyond the cell payload")
	}
	if m.MemoryBytes() != int64(n)*int64(n)*8+32 {
		t.Fatalf("matrix memory = %d, want payload+32", m.MemoryBytes())
	}
}

func TestNewMatrixGuard(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewMatrix on an oversized graph must panic with a sizing diagnosis")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "GiB") {
			t.Fatalf("panic %v does not diagnose the allocation size", r)
		}
	}()
	// A graph just over the cap; only NumVertices matters before the guard.
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 153, Cols: 152, Spacing: 100, DetourMin: 1, DetourMax: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() <= maxMatrixVertices {
		t.Skipf("generated only %d vertices", g.NumVertices())
	}
	NewMatrix(g)
}

func TestCountingOracle(t *testing.T) {
	g := testGraph(t, 5, 5, 1)
	c := NewCounting(NewDijkstra(g))
	c.Dist(0, 1)
	c.Dist(1, 2)
	if c.Queries != 2 {
		t.Fatalf("queries=%d want 2", c.Queries)
	}
	c.Reset()
	if c.Queries != 0 {
		t.Fatal("reset failed")
	}
}

func TestLRUBasic(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, 2, 10)
	c.Put(3, 4, 20)
	if d, ok := c.Get(1, 2); !ok || d != 10 {
		t.Fatalf("get=%v,%v", d, ok)
	}
	// Symmetric key.
	if d, ok := c.Get(2, 1); !ok || d != 10 {
		t.Fatalf("symmetric get=%v,%v", d, ok)
	}
	// Insert third entry; LRU (3,4) must be evicted since (1,2) was touched.
	c.Put(5, 6, 30)
	if _, ok := c.Get(3, 4); ok {
		t.Fatal("(3,4) should have been evicted")
	}
	if d, ok := c.Get(1, 2); !ok || d != 10 {
		t.Fatalf("(1,2) evicted wrongly: %v %v", d, ok)
	}
	if d, ok := c.Get(5, 6); !ok || d != 30 {
		t.Fatalf("(5,6) missing: %v %v", d, ok)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, 2, 10)
	c.Put(1, 2, 99)
	if c.Len() != 1 {
		t.Fatalf("len=%d", c.Len())
	}
	if d, _ := c.Get(1, 2); d != 99 {
		t.Fatalf("update failed: %v", d)
	}
}

func TestLRUStressAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	c := NewLRU(64)
	type key struct{ u, v roadnet.VertexID }
	ref := map[key]float64{}
	norm := func(u, v roadnet.VertexID) key {
		if u > v {
			u, v = v, u
		}
		return key{u, v}
	}
	for i := 0; i < 20000; i++ {
		u := roadnet.VertexID(rng.Intn(40))
		v := roadnet.VertexID(rng.Intn(40))
		if rng.Intn(2) == 0 {
			d := rng.Float64()
			c.Put(u, v, d)
			ref[norm(u, v)] = d
		} else if d, ok := c.Get(u, v); ok {
			if want := ref[norm(u, v)]; want != d {
				t.Fatalf("cache returned stale value %v want %v", d, want)
			}
		}
		if c.Len() > 64 {
			t.Fatalf("cache overflow: %d", c.Len())
		}
	}
	if c.Hits == 0 || c.Misses == 0 {
		t.Fatalf("stats not tracked: hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCachedOracleCorrectAndCounts(t *testing.T) {
	g := testGraph(t, 8, 8, 5)
	counter := NewCounting(NewDijkstra(g))
	cached := NewCached(counter, 128)
	ref := NewDijkstra(g)
	rng := rand.New(rand.NewSource(12))
	n := g.NumVertices()
	for q := 0; q < 500; q++ {
		s := roadnet.VertexID(rng.Intn(n / 3)) // small ID range forces cache hits
		tt := roadnet.VertexID(rng.Intn(n / 3))
		if got, want := cached.Dist(s, tt), ref.Dist(s, tt); math.Abs(got-want) > 1e-9 {
			t.Fatalf("cached dist (%d,%d)=%v want %v", s, tt, got, want)
		}
	}
	hits, misses := cached.Stats()
	if hits == 0 {
		t.Fatal("expected cache hits")
	}
	if counter.Queries != misses {
		t.Fatalf("inner queries %d != misses %d", counter.Queries, misses)
	}
	if counter.Queries >= 500 {
		t.Fatal("cache never avoided an inner query")
	}
}

func BenchmarkDijkstraQuery(b *testing.B) {
	g := testGraph(b, 40, 40, 1)
	d := NewDijkstra(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
	}
}

func BenchmarkBiDijkstraQuery(b *testing.B) {
	g := testGraph(b, 40, 40, 1)
	d := NewBiDijkstra(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
	}
}

func BenchmarkHubLabelQuery(b *testing.B) {
	g := testGraph(b, 40, 40, 1)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
	}
}

func BenchmarkHubLabelBuild(b *testing.B) {
	g := testGraph(b, 25, 25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildHubLabels(g)
	}
}
