package shortest

import (
	"math"

	"repro/internal/geo"
	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// Dijkstra is a reusable single-source shortest-path engine. Distance and
// parent arrays are version-stamped so consecutive queries cost O(settled)
// rather than O(V) to reset. Not safe for concurrent use.
type Dijkstra struct {
	g       *roadnet.Graph
	dist    []float64
	parent  []roadnet.VertexID
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
	// Settled counts vertices settled by the most recent query; exposed for
	// complexity experiments.
	Settled int
}

// NewDijkstra returns an engine bound to g.
func NewDijkstra(g *roadnet.Graph) *Dijkstra {
	n := g.NumVertices()
	return &Dijkstra{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]roadnet.VertexID, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

func (d *Dijkstra) reset() {
	d.cur++
	if d.cur == 0 { // version counter wrapped: hard reset
		for i := range d.version {
			d.version[i] = 0
		}
		d.cur = 1
	}
	d.heap.Reset()
	d.Settled = 0
}

func (d *Dijkstra) seen(v roadnet.VertexID) bool { return d.version[v] == d.cur }

func (d *Dijkstra) relax(v roadnet.VertexID, dv float64, from roadnet.VertexID) {
	if !d.seen(v) || dv < d.dist[v] {
		d.version[v] = d.cur
		d.dist[v] = dv
		d.parent[v] = from
		d.heap.Push(v, dv)
	}
}

// Dist returns the shortest travel time from s to t, stopping as soon as t
// is settled.
func (d *Dijkstra) Dist(s, t roadnet.VertexID) float64 {
	d.runUntil(s, t, math.Inf(1))
	if !d.seen(t) {
		return Inf
	}
	return d.dist[t]
}

// RunAll computes shortest distances from s to every vertex; read them with
// DistTo / ParentOf until the next query.
func (d *Dijkstra) RunAll(s roadnet.VertexID) {
	d.runUntil(s, -1, math.Inf(1))
}

// RunWithin computes distances from s to all vertices within the given
// radius (seconds). Vertices beyond the radius are left unsettled.
func (d *Dijkstra) RunWithin(s roadnet.VertexID, radius float64) {
	d.runUntil(s, -1, radius)
}

func (d *Dijkstra) runUntil(s, t roadnet.VertexID, radius float64) {
	d.reset()
	d.relax(s, 0, -1)
	for d.heap.Len() > 0 {
		v, dv := d.heap.Pop()
		if dv > radius {
			return
		}
		d.Settled++
		if v == t {
			return
		}
		to, cost := d.g.Arcs(v)
		for i, u := range to {
			d.relax(u, dv+cost[i], v)
		}
	}
}

// DistTo returns the distance computed by the last RunAll/RunWithin/Dist
// call, or +Inf if v was not settled/reached.
func (d *Dijkstra) DistTo(v roadnet.VertexID) float64 {
	if !d.seen(v) {
		return Inf
	}
	return d.dist[v]
}

// Reached reports whether v was reached by the last run.
func (d *Dijkstra) Reached(v roadnet.VertexID) bool { return d.seen(v) }

// Path returns a shortest s→t vertex path (inclusive), or nil if t is
// unreachable.
func (d *Dijkstra) Path(s, t roadnet.VertexID) []roadnet.VertexID {
	if d.Dist(s, t) == Inf {
		return nil
	}
	return d.extractPath(s, t)
}

func (d *Dijkstra) extractPath(s, t roadnet.VertexID) []roadnet.VertexID {
	var rev []roadnet.VertexID
	for v := t; ; v = d.parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AStar is a goal-directed point-to-point engine using the Euclidean
// travel-time lower bound as its heuristic. The bound is admissible and
// consistent because every edge satisfies cost ≥ euclid/maxSpeed by
// construction of the road network.
type AStar struct {
	g       *roadnet.Graph
	dist    []float64
	parent  []roadnet.VertexID
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
	Settled int
}

// NewAStar returns an engine bound to g.
func NewAStar(g *roadnet.Graph) *AStar {
	n := g.NumVertices()
	return &AStar{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]roadnet.VertexID, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

// Dist returns the shortest travel time from s to t.
func (a *AStar) Dist(s, t roadnet.VertexID) float64 {
	a.run(s, t)
	if a.version[t] != a.cur {
		return Inf
	}
	return a.dist[t]
}

// Path returns a shortest s→t vertex path, or nil if unreachable.
func (a *AStar) Path(s, t roadnet.VertexID) []roadnet.VertexID {
	a.run(s, t)
	if a.version[t] != a.cur {
		return nil
	}
	var rev []roadnet.VertexID
	for v := t; ; v = a.parent[v] {
		rev = append(rev, v)
		if v == s {
			break
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (a *AStar) run(s, t roadnet.VertexID) {
	a.cur++
	if a.cur == 0 {
		for i := range a.version {
			a.version[i] = 0
		}
		a.cur = 1
	}
	a.heap.Reset()
	a.Settled = 0
	maxSpeed := geo.MaxSpeed()
	tp := a.g.Point(t)
	h := func(v roadnet.VertexID) float64 {
		return a.g.Point(v).Dist(tp) / maxSpeed
	}
	a.version[s] = a.cur
	a.dist[s] = 0
	a.parent[s] = -1
	a.heap.Push(s, h(s))
	// The heuristic is consistent, so each vertex is settled at most once
	// and the indexed heap's decrease-key keeps one entry per vertex; no
	// closed set is needed.
	for a.heap.Len() > 0 {
		v, _ := a.heap.Pop()
		a.Settled++
		if v == t {
			return
		}
		dv := a.dist[v]
		to, cost := a.g.Arcs(v)
		for i, u := range to {
			du := dv + cost[i]
			if a.version[u] != a.cur || du < a.dist[u] {
				a.version[u] = a.cur
				a.dist[u] = du
				a.parent[u] = v
				a.heap.Push(u, du+h(u))
			}
		}
	}
}

// BiDijkstra is a bidirectional Dijkstra engine; roughly half the search
// space of plain Dijkstra on road networks. It is the path engine the
// simulator uses for route legs.
type BiDijkstra struct {
	fwd, bwd *Dijkstra
	Settled  int
}

// NewBiDijkstra returns an engine bound to g. The graph is undirected so
// both directions search the same adjacency.
func NewBiDijkstra(g *roadnet.Graph) *BiDijkstra {
	return &BiDijkstra{fwd: NewDijkstra(g), bwd: NewDijkstra(g)}
}

// Dist returns the shortest travel time from s to t.
func (b *BiDijkstra) Dist(s, t roadnet.VertexID) float64 {
	d, _ := b.search(s, t)
	return d
}

// Path returns a shortest s→t vertex path, or nil if unreachable.
func (b *BiDijkstra) Path(s, t roadnet.VertexID) []roadnet.VertexID {
	d, meet := b.search(s, t)
	if d == Inf {
		return nil
	}
	fwdPath := b.fwd.extractPath(s, meet)
	bwdPath := b.bwd.extractPath(t, meet) // t .. meet
	// Append reversed bwdPath minus the duplicated meeting vertex.
	for i := len(bwdPath) - 2; i >= 0; i-- {
		fwdPath = append(fwdPath, bwdPath[i])
	}
	return fwdPath
}

func (b *BiDijkstra) search(s, t roadnet.VertexID) (float64, roadnet.VertexID) {
	if s == t {
		// Prime the engines so extractPath works for the trivial case.
		b.fwd.reset()
		b.fwd.relax(s, 0, -1)
		b.bwd.reset()
		b.bwd.relax(t, 0, -1)
		return 0, s
	}
	f, w := b.fwd, b.bwd
	f.reset()
	w.reset()
	f.relax(s, 0, -1)
	w.relax(t, 0, -1)
	best := math.Inf(1)
	meet := roadnet.VertexID(-1)
	b.Settled = 0
	expand := func(d, other *Dijkstra) bool {
		if d.heap.Len() == 0 {
			return false
		}
		v, dv := d.heap.Pop()
		b.Settled++
		if other.seen(v) {
			if total := dv + other.dist[v]; total < best {
				best = total
				meet = v
			}
		}
		to, cost := d.g.Arcs(v)
		for i, u := range to {
			du := dv + cost[i]
			d.relax(u, du, v)
			if other.seen(u) {
				if total := du + other.dist[u]; total < best {
					best = total
					meet = u
				}
			}
		}
		return true
	}
	for {
		fTop := math.Inf(1)
		if f.heap.Len() > 0 {
			_, fTop = f.heap.Min()
		}
		wTop := math.Inf(1)
		if w.heap.Len() > 0 {
			_, wTop = w.heap.Min()
		}
		if fTop+wTop >= best {
			break
		}
		if fTop <= wTop {
			if !expand(f, w) {
				break
			}
		} else {
			if !expand(w, f) {
				break
			}
		}
	}
	if math.IsInf(best, 1) {
		return Inf, -1
	}
	return best, meet
}
