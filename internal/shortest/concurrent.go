package shortest

import (
	"sync"
	"sync/atomic"

	"repro/internal/roadnet"
)

// This file holds the concurrency-safe counterparts of the single-threaded
// query machinery (Counting, Cached): the parallel dispatcher fans exact
// insertions out across goroutines, and every one of them issues distance
// queries through the same oracle chain. The wrappers here keep that chain
// safe without slowing the serial planners down (they keep using the plain
// Counting/Cached types).

// QueryCounter is the read side of a query counter; both Counting and
// AtomicCounting implement it, so the simulator can report query totals
// regardless of which planner (serial or parallel) ran.
type QueryCounter interface {
	Count() uint64
}

// AtomicCounting wraps an Oracle and counts queries with an atomic
// counter; safe for concurrent use provided the inner oracle is.
type AtomicCounting struct {
	Inner   Oracle
	queries atomic.Uint64
}

// NewAtomicCounting wraps inner with a concurrent query counter.
func NewAtomicCounting(inner Oracle) *AtomicCounting {
	return &AtomicCounting{Inner: inner}
}

// Dist implements Oracle, incrementing the query counter.
func (c *AtomicCounting) Dist(s, t roadnet.VertexID) float64 {
	c.queries.Add(1)
	return c.Inner.Dist(s, t)
}

// Count implements QueryCounter.
func (c *AtomicCounting) Count() uint64 { return c.queries.Load() }

// Reset zeroes the counter.
func (c *AtomicCounting) Reset() { c.queries.Store(0) }

// Locked serializes access to a non-thread-safe Oracle (BiDijkstra and CH
// reuse per-instance search state across queries). It is the correctness
// fallback for oracle kinds without a concurrent implementation; hub
// labels and distance matrices are read-only and do not need it.
type Locked struct {
	mu    sync.Mutex
	inner Oracle
}

// NewLocked wraps inner with a mutex.
func NewLocked(inner Oracle) *Locked { return &Locked{inner: inner} }

// Dist implements Oracle under the lock.
func (l *Locked) Dist(s, t roadnet.VertexID) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.Dist(s, t)
}

// ShardedCached is the concurrent counterpart of Cached: the key space is
// hashed across independently locked LRU shards, so concurrent readers on
// different shards never contend and readers of the same (u,v) pair
// serialize only briefly. The inner oracle must itself be safe for
// concurrent use (wrap it in Locked otherwise).
type ShardedCached struct {
	inner  Oracle
	shards []cacheShard
	mask   uint64
	// src, when the inner chain is epoch-aware, drives per-shard lazy
	// flushing: each shard compares its stamped epoch against the source
	// under its own lock, so invalidation needs no global barrier.
	src EpochSource
}

type cacheShard struct {
	mu    sync.Mutex
	cache *LRU
	epoch uint64
	_     [40]byte // mutex (8) + pointer (8) + epoch (8) + 40 = one 64-byte cache line
}

// NewShardedCached wraps inner with a sharded LRU of totalCapacity entries
// split across shards (rounded up to a power of two, minimum 1).
func NewShardedCached(inner Oracle, totalCapacity, shards int) *ShardedCached {
	n := 1
	for n < shards {
		n <<= 1
	}
	per := totalCapacity / n
	if per < 1 {
		per = 1
	}
	c := &ShardedCached{inner: inner, shards: make([]cacheShard, n), mask: uint64(n - 1)}
	epoch := uint64(0)
	if c.src = epochSourceOf(inner); c.src != nil {
		epoch = c.src.Epoch()
	}
	for i := range c.shards {
		c.shards[i].cache = NewLRU(per)
		c.shards[i].epoch = epoch
	}
	return c
}

// shardOf picks the shard for a symmetric (u,v) key with a Fibonacci hash
// so that consecutive vertex IDs spread across shards.
func (c *ShardedCached) shardOf(key uint64) *cacheShard {
	return &c.shards[(key*0x9E3779B97F4A7C15)>>32&c.mask]
}

// Dist implements Oracle; it is safe for any number of concurrent callers.
func (c *ShardedCached) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	key := pairKey(u, v)
	s := c.shardOf(key)
	epoch := uint64(0)
	if c.src != nil {
		epoch = c.src.Epoch()
	}
	s.mu.Lock()
	// Epochs are monotone: only a NEWER epoch flushes. A caller whose
	// pre-lock epoch read is stale (< s.epoch) must not wipe valid
	// current-epoch entries back to its older stamp.
	if s.epoch < epoch {
		s.cache.Flush()
		s.epoch = epoch
	}
	if d, ok := s.cache.Get(u, v); ok {
		s.mu.Unlock()
		return d
	}
	s.mu.Unlock()
	// Compute outside the shard lock: misses on one shard must not block
	// hits on it, and the inner oracle manages its own safety.
	d := c.inner.Dist(u, v)
	if c.src != nil && c.src.Epoch() != epoch {
		return d // weights advanced mid-flight; don't cache the result
	}
	s.mu.Lock()
	if s.epoch == epoch { // don't poison a shard that advanced meanwhile
		s.cache.Put(u, v, d)
	}
	s.mu.Unlock()
	return d
}

// Stats returns the aggregate (hits, misses) over all shards.
func (c *ShardedCached) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.cache.Hits
		misses += s.cache.Misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Len returns the total number of cached entries across shards.
func (c *ShardedCached) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.cache.Len()
		s.mu.Unlock()
	}
	return n
}
