package shortest

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func TestCHMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 16, 20, 15)
	ch := BuildCH(g)
	dij := NewDijkstra(g)
	rng := rand.New(rand.NewSource(42))
	n := g.NumVertices()
	for q := 0; q < 500; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		want := dij.Dist(s, tt)
		got := ch.Dist(s, tt)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("CH (%d,%d)=%v want %v", s, tt, got, want)
		}
	}
}

func TestCHSelfDistance(t *testing.T) {
	g := testGraph(t, 6, 6, 3)
	ch := BuildCH(g)
	for v := 0; v < g.NumVertices(); v += 5 {
		if d := ch.Dist(roadnet.VertexID(v), roadnet.VertexID(v)); d != 0 {
			t.Fatalf("self distance %v", d)
		}
	}
}

func TestCHDisconnected(t *testing.T) {
	b := roadnet.NewBuilder(4, 2)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{X: 10})
	b.AddVertex(geo.Point{X: 1000})
	b.AddVertex(geo.Point{X: 1010})
	b.AddEdge(0, 1, 10, geo.Residential)
	b.AddEdge(2, 3, 10, geo.Residential)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ch := BuildCH(g)
	if d := ch.Dist(0, 2); !math.IsInf(d, 1) {
		t.Fatalf("disconnected pair distance %v", d)
	}
	if d := ch.Dist(0, 1); math.Abs(d-geo.Residential.TravelTime(10)) > 1e-9 {
		t.Fatalf("edge distance %v", d)
	}
}

func TestCHLineAndCycle(t *testing.T) {
	line, err := roadnet.LineGraph(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := BuildCH(line)
	if d := ch.Dist(0, 29); math.Abs(d-58) > 1e-9 {
		t.Fatalf("line end-to-end %v want 58", d)
	}
	cyc, err := roadnet.CycleGraph(16)
	if err != nil {
		t.Fatal(err)
	}
	ch2 := BuildCH(cyc)
	dij := NewDijkstra(cyc)
	for s := 0; s < 16; s++ {
		for tt := 0; tt < 16; tt++ {
			want := dij.Dist(roadnet.VertexID(s), roadnet.VertexID(tt))
			if got := ch2.Dist(roadnet.VertexID(s), roadnet.VertexID(tt)); math.Abs(got-want) > 1e-9 {
				t.Fatalf("cycle (%d,%d)=%v want %v", s, tt, got, want)
			}
		}
	}
}

func TestCHStatsSane(t *testing.T) {
	g := testGraph(t, 12, 12, 8)
	ch := BuildCH(g)
	if ch.AvgUpDegree() <= 0 {
		t.Fatal("no upward arcs")
	}
	// Every vertex has at most n-1 upward arcs; the average for a sparse
	// planar-ish graph should stay modest.
	if ch.AvgUpDegree() > 32 {
		t.Fatalf("suspiciously dense hierarchy: %v", ch.AvgUpDegree())
	}
	if ch.MemoryBytes() <= 0 {
		t.Fatal("memory not reported")
	}
	if ch.Shortcuts < 0 {
		t.Fatal("negative shortcuts")
	}
}

// TestCHAgainstHubLabels cross-validates the two preprocessing-based
// oracles against each other on a fresh random city.
func TestCHAgainstHubLabels(t *testing.T) {
	g := testGraph(t, 14, 14, 77)
	ch := BuildCH(g)
	hub := BuildHubLabels(g)
	rng := rand.New(rand.NewSource(5))
	n := g.NumVertices()
	for q := 0; q < 400; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		a, b := ch.Dist(s, tt), hub.Dist(s, tt)
		if math.Abs(a-b) > 1e-6*(1+b) {
			t.Fatalf("CH %v != hub %v for (%d,%d)", a, b, s, tt)
		}
	}
}

// TestBuildCHDeterministic pins the canonical construction order: Go map
// iteration is randomized, so before the sorted-adjacency fix two builds
// of the same graph could contract in different orders and disagree in
// the last float bits of a distance. Byte-identical hierarchy arrays are
// the strongest observable guarantee that can never happen again.
func TestBuildCHDeterministic(t *testing.T) {
	g := testGraph(t, 14, 14, 99)
	a := BuildCH(g)
	b := BuildCH(g)
	if !reflect.DeepEqual(a.rank, b.rank) {
		t.Fatal("contraction ranks differ between builds")
	}
	if !reflect.DeepEqual(a.upStart, b.upStart) || !reflect.DeepEqual(a.upTo, b.upTo) {
		t.Fatal("upward arc topology differs between builds")
	}
	if !reflect.DeepEqual(a.upW, b.upW) {
		t.Fatal("upward arc weights differ between builds")
	}
	if a.Shortcuts != b.Shortcuts {
		t.Fatalf("shortcut counts differ: %d vs %d", a.Shortcuts, b.Shortcuts)
	}
}

func BenchmarkCHQuery(b *testing.B) {
	g := testGraph(b, 40, 40, 1)
	ch := BuildCH(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
	}
}

func BenchmarkCHBuild(b *testing.B) {
	g := testGraph(b, 25, 25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCH(g)
	}
}
