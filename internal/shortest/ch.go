package shortest

import (
	"container/heap"
	"math"

	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// CH is a contraction-hierarchies distance oracle: vertices are contracted
// in importance order, shortcut edges preserve shortest distances among
// the remaining vertices, and queries run a bidirectional upward Dijkstra
// over the hierarchy. It is the classic preprocessing-based road-network
// oracle family the paper's reference [9] belongs to; this repository
// offers it alongside hub labels so the oracle choice can be ablated
// (hub labels: faster queries, heavier preprocessing; CH: lighter
// preprocessing, microsecond queries).
//
// The implementation is distance-only (the simulator reconstructs leg
// paths with bidirectional Dijkstra, which it needs only once per leg).
type CH struct {
	n    int
	rank []int32
	// Upward adjacency: for each vertex, arcs to higher-ranked vertices.
	upStart []int32
	upTo    []roadnet.VertexID
	upW     []float64

	// Query state (reused; not safe for concurrent use).
	fwd, bwd chSearch
	// Shortcuts is the number of shortcut edges added during preprocessing.
	Shortcuts int
}

type chSearch struct {
	dist    []float64
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
}

// chPrioItem is a lazy priority-queue entry used during preprocessing.
type chPrioItem struct {
	v    roadnet.VertexID
	prio float64
}

type chPrioQueue []chPrioItem

func (q chPrioQueue) Len() int            { return len(q) }
func (q chPrioQueue) Less(i, j int) bool  { return q[i].prio < q[j].prio }
func (q chPrioQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *chPrioQueue) Push(x interface{}) { *q = append(*q, x.(chPrioItem)) }
func (q *chPrioQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// chArc is a working-graph arc during contraction.
type chArc struct {
	to roadnet.VertexID
	w  float64
}

// BuildCH preprocesses g into a contraction hierarchy. Deterministic.
func BuildCH(g *roadnet.Graph) *CH {
	n := g.NumVertices()
	// Working graph: adjacency among not-yet-contracted vertices,
	// including shortcuts. Parallel arcs are collapsed to the minimum.
	adj := make([]map[roadnet.VertexID]float64, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[roadnet.VertexID]float64, g.Degree(roadnet.VertexID(v))+2)
	}
	for _, e := range g.Edges() {
		// e.Cost, not Class.TravelTime(Meters): under a traffic overlay the
		// two differ and the hierarchy must preserve the overlay's weights.
		addMinArc(adj, e.U, e.V, e.Cost)
		addMinArc(adj, e.V, e.U, e.Cost)
	}

	ch := &CH{n: n, rank: make([]int32, n)}
	contracted := make([]bool, n)
	neighborsContracted := make([]int32, n)

	// Upward edges are accumulated per vertex as it is contracted: all of
	// its current working-graph arcs point to later-contracted (higher
	// rank) vertices by construction.
	upAdj := make([][]chArc, n)

	wit := newWitnessSearch(n)

	simulate := func(v roadnet.VertexID) (shortcuts int) {
		return ch.contract(adj, wit, v, contracted, nil)
	}

	pq := make(chPrioQueue, 0, n)
	for v := 0; v < n; v++ {
		s := simulate(roadnet.VertexID(v))
		prio := float64(s - len(adj[v])) // edge difference
		pq = append(pq, chPrioItem{v: roadnet.VertexID(v), prio: prio})
	}
	heap.Init(&pq)

	nextRank := int32(0)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(chPrioItem)
		v := it.v
		if contracted[v] {
			continue
		}
		// Lazy update: recompute the priority; if it is no longer the
		// minimum, requeue.
		s := simulate(v)
		prio := float64(s-len(adj[v])) + 2*float64(neighborsContracted[v])
		if pq.Len() > 0 && prio > pq[0].prio+1e-9 {
			heap.Push(&pq, chPrioItem{v: v, prio: prio})
			continue
		}
		// Contract v for real: record its upward arcs, add shortcuts.
		ch.rank[v] = nextRank
		nextRank++
		for to, w := range adj[v] {
			upAdj[v] = append(upAdj[v], chArc{to: to, w: w})
		}
		added := make([][3]float64, 0, 8)
		ch.contract(adj, wit, v, contracted, &added)
		ch.Shortcuts += len(added)
		contracted[v] = true
		for to := range adj[v] {
			delete(adj[to], v)
			neighborsContracted[to]++
		}
		adj[v] = nil
	}

	// Freeze the upward adjacency into CSR.
	total := 0
	for _, l := range upAdj {
		total += len(l)
	}
	ch.upStart = make([]int32, n+1)
	ch.upTo = make([]roadnet.VertexID, total)
	ch.upW = make([]float64, total)
	pos := int32(0)
	for v := 0; v < n; v++ {
		ch.upStart[v] = pos
		for _, a := range upAdj[v] {
			ch.upTo[pos] = a.to
			ch.upW[pos] = a.w
			pos++
		}
	}
	ch.upStart[n] = pos

	ch.fwd = newCHSearch(n)
	ch.bwd = newCHSearch(n)
	return ch
}

func addMinArc(adj []map[roadnet.VertexID]float64, u, v roadnet.VertexID, w float64) {
	if old, ok := adj[u][v]; !ok || w < old {
		adj[u][v] = w
	}
}

// contract either simulates (added == nil: returns the number of
// shortcuts contraction of v would add) or performs (added != nil: the
// shortcuts are inserted into adj and appended to *added) the contraction
// of v.
func (ch *CH) contract(adj []map[roadnet.VertexID]float64, wit *witnessSearch,
	v roadnet.VertexID, contracted []bool, added *[][3]float64) int {
	neighbors := make([]chArc, 0, len(adj[v]))
	maxOut := 0.0
	for to, w := range adj[v] {
		if contracted[to] {
			continue
		}
		neighbors = append(neighbors, chArc{to: to, w: w})
		if w > maxOut {
			maxOut = w
		}
	}
	count := 0
	for i, u := range neighbors {
		// Witness search from u avoiding v, bounded by the largest
		// possible via-v distance.
		limit := u.w + maxOut
		wit.run(adj, contracted, u.to, v, limit)
		for j, x := range neighbors {
			if i == j {
				continue
			}
			viaV := u.w + x.w
			if wd := wit.distTo(x.to); wd <= viaV+1e-12 {
				continue // witness path exists; no shortcut needed
			}
			if cur, ok := adj[u.to][x.to]; ok && cur <= viaV {
				continue // existing (shortcut) edge already covers it
			}
			count++
			if added != nil {
				addMinArc(adj, u.to, x.to, viaV)
				addMinArc(adj, x.to, u.to, viaV)
				*added = append(*added, [3]float64{float64(u.to), float64(x.to), viaV})
			}
		}
	}
	return count
}

// witnessSearch is a bounded Dijkstra over the working graph that avoids
// one vertex; hop- and node-limited for preprocessing speed (a missed
// witness only adds a redundant shortcut, never breaks correctness).
type witnessSearch struct {
	dist    []float64
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
}

func newWitnessSearch(n int) *witnessSearch {
	return &witnessSearch{
		dist:    make([]float64, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

const witnessNodeLimit = 64

func (ws *witnessSearch) run(adj []map[roadnet.VertexID]float64, contracted []bool,
	source, avoid roadnet.VertexID, limit float64) {
	ws.cur++
	if ws.cur == 0 {
		for i := range ws.version {
			ws.version[i] = 0
		}
		ws.cur = 1
	}
	ws.heap.Reset()
	ws.version[source] = ws.cur
	ws.dist[source] = 0
	ws.heap.Push(source, 0)
	settled := 0
	for ws.heap.Len() > 0 && settled < witnessNodeLimit {
		v, dv := ws.heap.Pop()
		if dv > limit {
			return
		}
		settled++
		for to, w := range adj[v] {
			if to == avoid || contracted[to] {
				continue
			}
			du := dv + w
			if ws.version[to] != ws.cur || du < ws.dist[to] {
				ws.version[to] = ws.cur
				ws.dist[to] = du
				ws.heap.Push(to, du)
			}
		}
	}
}

func (ws *witnessSearch) distTo(v roadnet.VertexID) float64 {
	if ws.version[v] != ws.cur {
		return math.Inf(1)
	}
	return ws.dist[v]
}

func newCHSearch(n int) chSearch {
	return chSearch{
		dist:    make([]float64, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

func (s *chSearch) reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.version {
			s.version[i] = 0
		}
		s.cur = 1
	}
	s.heap.Reset()
}

func (s *chSearch) relax(v roadnet.VertexID, d float64) {
	if s.version[v] != s.cur || d < s.dist[v] {
		s.version[v] = s.cur
		s.dist[v] = d
		s.heap.Push(v, d)
	}
}

// Dist implements Oracle: exact shortest travel time via bidirectional
// upward search.
func (ch *CH) Dist(s, t roadnet.VertexID) float64 {
	if s == t {
		return 0
	}
	f, b := &ch.fwd, &ch.bwd
	f.reset()
	b.reset()
	f.relax(s, 0)
	b.relax(t, 0)
	best := math.Inf(1)
	for f.heap.Len() > 0 || b.heap.Len() > 0 {
		// Alternate; prune a side once its minimum exceeds best.
		for _, side := range [2]*chSearch{f, b} {
			if side.heap.Len() == 0 {
				continue
			}
			if _, top := side.heap.Min(); top >= best {
				side.heap.Reset()
				continue
			}
			v, dv := side.heap.Pop()
			other := b
			if side == b {
				other = f
			}
			if other.version[v] == other.cur {
				if total := dv + other.dist[v]; total < best {
					best = total
				}
			}
			for i := ch.upStart[v]; i < ch.upStart[v+1]; i++ {
				side.relax(ch.upTo[i], dv+ch.upW[i])
			}
		}
	}
	if math.IsInf(best, 1) {
		return Inf
	}
	return best
}

// MemoryBytes reports the hierarchy's storage footprint.
func (ch *CH) MemoryBytes() int64 {
	return int64(len(ch.upTo))*4 + int64(len(ch.upW))*8 + int64(len(ch.upStart))*4 + int64(ch.n)*4
}

// AvgUpDegree is the mean number of upward arcs per vertex, the standard
// CH quality measure.
func (ch *CH) AvgUpDegree() float64 {
	return float64(len(ch.upTo)) / float64(ch.n)
}
