package shortest

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// CH is a contraction-hierarchies distance oracle: vertices are contracted
// in importance order, shortcut edges preserve shortest distances among
// the remaining vertices, and queries run a bidirectional upward Dijkstra
// over the hierarchy. It is the classic preprocessing-based road-network
// oracle family the paper's reference [9] belongs to; this repository
// offers it alongside hub labels so the oracle choice can be ablated
// (hub labels: faster queries, heavier preprocessing; CH: lighter
// preprocessing, microsecond queries).
//
// The implementation is distance-only (the simulator reconstructs leg
// paths with bidirectional Dijkstra, which it needs only once per leg).
type CH struct {
	n    int
	rank []int32
	// Upward adjacency: for each vertex, arcs to higher-ranked vertices.
	upStart []int32
	upTo    []roadnet.VertexID
	upW     []float64

	// Query state (reused; not safe for concurrent use).
	fwd, bwd chSearch
	// Shortcuts is the number of shortcut edges added during preprocessing.
	Shortcuts int
}

type chSearch struct {
	dist    []float64
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
}

// chPrioItem is a lazy priority-queue entry used during preprocessing.
type chPrioItem struct {
	v    roadnet.VertexID
	prio float64
}

type chPrioQueue []chPrioItem

func (q chPrioQueue) Len() int { return len(q) }

// Less tie-breaks equal priorities on vertex ID so vertices with the same
// edge difference contract in a canonical order — part of the BuildCH /
// BuildCCHSkeleton determinism contract (two builds of the same graph
// must produce byte-identical hierarchies).
func (q chPrioQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].v < q[j].v
}
func (q chPrioQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *chPrioQueue) Push(x interface{}) { *q = append(*q, x.(chPrioItem)) }
func (q *chPrioQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// chArc is a working-graph arc during contraction.
type chArc struct {
	to roadnet.VertexID
	w  float64
}

// sortedArcs copies v's working-graph arcs into buf sorted by target
// vertex. Map iteration order is randomized per run, so every loop whose
// side effects depend on visit order (upward-arc layout, witness-search
// relaxations, shortcut insertion) must go through this instead of
// ranging the map directly — that is what makes BuildCH deterministic.
func sortedArcs(m map[roadnet.VertexID]float64, buf []chArc) []chArc {
	buf = buf[:0]
	for to, w := range m {
		buf = append(buf, chArc{to: to, w: w})
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].to < buf[j].to })
	return buf
}

// BuildCH preprocesses g into a contraction hierarchy. Deterministic:
// adjacency is always visited in sorted vertex order and equal contraction
// priorities tie-break on vertex ID, so two builds of the same graph
// produce byte-identical rank/upStart/upTo/upW arrays (pinned by
// TestBuildCHDeterministic) — which is what makes replay and snapshot
// restores independent of when the hierarchy was (re)built.
func BuildCH(g *roadnet.Graph) *CH {
	n := g.NumVertices()
	// Working graph: adjacency among not-yet-contracted vertices,
	// including shortcuts. Parallel arcs are collapsed to the minimum.
	adj := make([]map[roadnet.VertexID]float64, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[roadnet.VertexID]float64, g.Degree(roadnet.VertexID(v))+2)
	}
	for _, e := range g.Edges() {
		// e.Cost, not Class.TravelTime(Meters): under a traffic overlay the
		// two differ and the hierarchy must preserve the overlay's weights.
		addMinArc(adj, e.U, e.V, e.Cost)
		addMinArc(adj, e.V, e.U, e.Cost)
	}

	ch := &CH{n: n, rank: make([]int32, n)}
	contracted := make([]bool, n)
	neighborsContracted := make([]int32, n)

	// Upward edges are accumulated per vertex as it is contracted: all of
	// its current working-graph arcs point to later-contracted (higher
	// rank) vertices by construction.
	upAdj := make([][]chArc, n)

	wit := newWitnessSearch(n)

	simulate := func(v roadnet.VertexID) (shortcuts int) {
		return ch.contract(adj, wit, v, contracted, nil)
	}

	arcBuf := make([]chArc, 0, 16)
	pq := make(chPrioQueue, 0, n)
	for v := 0; v < n; v++ {
		s := simulate(roadnet.VertexID(v))
		prio := float64(s - len(adj[v])) // edge difference
		pq = append(pq, chPrioItem{v: roadnet.VertexID(v), prio: prio})
	}
	heap.Init(&pq)

	nextRank := int32(0)
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(chPrioItem)
		v := it.v
		if contracted[v] {
			continue
		}
		// Lazy update: recompute the priority; if it is no longer the
		// minimum, requeue.
		s := simulate(v)
		prio := float64(s-len(adj[v])) + 2*float64(neighborsContracted[v])
		if pq.Len() > 0 && prio > pq[0].prio+1e-9 {
			heap.Push(&pq, chPrioItem{v: v, prio: prio})
			continue
		}
		// Contract v for real: record its upward arcs, add shortcuts.
		// (Shortcuts never touch adj[v] itself, so one sorted snapshot
		// serves both the upward-arc recording and the neighbor cleanup.)
		ch.rank[v] = nextRank
		nextRank++
		arcs := sortedArcs(adj[v], arcBuf)
		upAdj[v] = append(upAdj[v], arcs...)
		added := make([][3]float64, 0, 8)
		ch.contract(adj, wit, v, contracted, &added)
		ch.Shortcuts += len(added)
		contracted[v] = true
		for _, a := range arcs {
			delete(adj[a.to], v)
			neighborsContracted[a.to]++
		}
		arcBuf = arcs
		adj[v] = nil
	}

	// Freeze the upward adjacency into CSR.
	total := 0
	for _, l := range upAdj {
		total += len(l)
	}
	ch.upStart = make([]int32, n+1)
	ch.upTo = make([]roadnet.VertexID, total)
	ch.upW = make([]float64, total)
	pos := int32(0)
	for v := 0; v < n; v++ {
		ch.upStart[v] = pos
		for _, a := range upAdj[v] {
			ch.upTo[pos] = a.to
			ch.upW[pos] = a.w
			pos++
		}
	}
	ch.upStart[n] = pos

	ch.fwd = newCHSearch(n)
	ch.bwd = newCHSearch(n)
	return ch
}

func addMinArc(adj []map[roadnet.VertexID]float64, u, v roadnet.VertexID, w float64) {
	if old, ok := adj[u][v]; !ok || w < old {
		adj[u][v] = w
	}
}

// contract either simulates (added == nil: returns the number of
// shortcuts contraction of v would add) or performs (added != nil: the
// shortcuts are inserted into adj and appended to *added) the contraction
// of v.
func (ch *CH) contract(adj []map[roadnet.VertexID]float64, wit *witnessSearch,
	v roadnet.VertexID, contracted []bool, added *[][3]float64) int {
	neighbors := sortedArcs(adj[v], make([]chArc, 0, len(adj[v])))
	maxOut := 0.0
	for i := 0; i < len(neighbors); {
		a := neighbors[i]
		if contracted[a.to] {
			neighbors = append(neighbors[:i], neighbors[i+1:]...)
			continue
		}
		if a.w > maxOut {
			maxOut = a.w
		}
		i++
	}
	count := 0
	for i, u := range neighbors {
		// Witness search from u avoiding v, bounded by the largest
		// possible via-v distance.
		limit := u.w + maxOut
		wit.run(adj, contracted, u.to, v, limit)
		for j, x := range neighbors {
			if i == j {
				continue
			}
			viaV := u.w + x.w
			if wd := wit.distTo(x.to); wd <= viaV+1e-12 {
				continue // witness path exists; no shortcut needed
			}
			if cur, ok := adj[u.to][x.to]; ok && cur <= viaV {
				continue // existing (shortcut) edge already covers it
			}
			count++
			if added != nil {
				addMinArc(adj, u.to, x.to, viaV)
				addMinArc(adj, x.to, u.to, viaV)
				*added = append(*added, [3]float64{float64(u.to), float64(x.to), viaV})
			}
		}
	}
	return count
}

// witnessSearch is a bounded Dijkstra over the working graph that avoids
// one vertex; hop- and node-limited for preprocessing speed (a missed
// witness only adds a redundant shortcut, never breaks correctness).
type witnessSearch struct {
	dist    []float64
	version []uint32
	cur     uint32
	heap    *pqueue.Heap
	arcBuf  []chArc // scratch for sorted adjacency iteration
}

func newWitnessSearch(n int) *witnessSearch {
	return &witnessSearch{
		dist:    make([]float64, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

const witnessNodeLimit = 64

func (ws *witnessSearch) run(adj []map[roadnet.VertexID]float64, contracted []bool,
	source, avoid roadnet.VertexID, limit float64) {
	ws.cur++
	if ws.cur == 0 {
		for i := range ws.version {
			ws.version[i] = 0
		}
		ws.cur = 1
	}
	ws.heap.Reset()
	ws.version[source] = ws.cur
	ws.dist[source] = 0
	ws.heap.Push(source, 0)
	settled := 0
	for ws.heap.Len() > 0 && settled < witnessNodeLimit {
		v, dv := ws.heap.Pop()
		if dv > limit {
			return
		}
		settled++
		// Sorted iteration keeps heap tie-breaking — and therefore which
		// vertices settle within the node limit — canonical across runs.
		ws.arcBuf = sortedArcs(adj[v], ws.arcBuf)
		for _, a := range ws.arcBuf {
			if a.to == avoid || contracted[a.to] {
				continue
			}
			du := dv + a.w
			if ws.version[a.to] != ws.cur || du < ws.dist[a.to] {
				ws.version[a.to] = ws.cur
				ws.dist[a.to] = du
				ws.heap.Push(a.to, du)
			}
		}
	}
}

func (ws *witnessSearch) distTo(v roadnet.VertexID) float64 {
	if ws.version[v] != ws.cur {
		return math.Inf(1)
	}
	return ws.dist[v]
}

func newCHSearch(n int) chSearch {
	return chSearch{
		dist:    make([]float64, n),
		version: make([]uint32, n),
		heap:    pqueue.New(n),
	}
}

func (s *chSearch) reset() {
	s.cur++
	if s.cur == 0 {
		for i := range s.version {
			s.version[i] = 0
		}
		s.cur = 1
	}
	s.heap.Reset()
}

func (s *chSearch) relax(v roadnet.VertexID, d float64) {
	if s.version[v] != s.cur || d < s.dist[v] {
		s.version[v] = s.cur
		s.dist[v] = d
		s.heap.Push(v, d)
	}
}

// Dist implements Oracle: exact shortest travel time via bidirectional
// upward search.
func (ch *CH) Dist(s, t roadnet.VertexID) float64 {
	return upwardDist(&ch.fwd, &ch.bwd, ch.upStart, ch.upTo, ch.upW, s, t)
}

// upwardDist is the bidirectional upward search shared by the CH and CCH
// tiers: both store a hierarchy as upward CSR arrays, differing only in
// how the arc weights were derived (witness-limited contraction vs.
// per-epoch customization of a fixed skeleton).
func upwardDist(f, b *chSearch, upStart []int32, upTo []roadnet.VertexID, upW []float64,
	s, t roadnet.VertexID) float64 {
	if s == t {
		return 0
	}
	f.reset()
	b.reset()
	f.relax(s, 0)
	b.relax(t, 0)
	best := math.Inf(1)
	for f.heap.Len() > 0 || b.heap.Len() > 0 {
		// Alternate; prune a side once its minimum exceeds best.
		for _, side := range [2]*chSearch{f, b} {
			if side.heap.Len() == 0 {
				continue
			}
			if _, top := side.heap.Min(); top >= best {
				side.heap.Reset()
				continue
			}
			v, dv := side.heap.Pop()
			other := b
			if side == b {
				other = f
			}
			if other.version[v] == other.cur {
				if total := dv + other.dist[v]; total < best {
					best = total
				}
			}
			for i := upStart[v]; i < upStart[v+1]; i++ {
				side.relax(upTo[i], dv+upW[i])
			}
		}
	}
	if math.IsInf(best, 1) {
		return Inf
	}
	return best
}

// MemoryBytes reports the hierarchy's storage footprint.
func (ch *CH) MemoryBytes() int64 {
	return int64(len(ch.upTo))*4 + int64(len(ch.upW))*8 + int64(len(ch.upStart))*4 + int64(ch.n)*4
}

// AvgUpDegree is the mean number of upward arcs per vertex, the standard
// CH quality measure.
func (ch *CH) AvgUpDegree() float64 {
	return float64(len(ch.upTo)) / float64(ch.n)
}
