package shortest

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
)

func TestCCHMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 16, 20, 15)
	cch := BuildCCH(g)
	dij := NewDijkstra(g)
	rng := rand.New(rand.NewSource(42))
	n := g.NumVertices()
	for q := 0; q < 500; q++ {
		s := roadnet.VertexID(rng.Intn(n))
		tt := roadnet.VertexID(rng.Intn(n))
		want := dij.Dist(s, tt)
		got := cch.Dist(s, tt)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("CCH (%d,%d)=%v want %v", s, tt, got, want)
		}
	}
}

func TestCCHSelfAndDisconnected(t *testing.T) {
	g := testGraph(t, 6, 6, 3)
	cch := BuildCCH(g)
	for v := 0; v < g.NumVertices(); v += 5 {
		if d := cch.Dist(roadnet.VertexID(v), roadnet.VertexID(v)); d != 0 {
			t.Fatalf("self distance %v", d)
		}
	}
	b := roadnet.NewBuilder(4, 2)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{X: 10})
	b.AddVertex(geo.Point{X: 1000})
	b.AddVertex(geo.Point{X: 1010})
	b.AddEdge(0, 1, 10, geo.Residential)
	b.AddEdge(2, 3, 10, geo.Residential)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cch2 := BuildCCH(g2)
	if d := cch2.Dist(0, 2); !math.IsInf(d, 1) {
		t.Fatalf("disconnected pair distance %v", d)
	}
	if d := cch2.Dist(0, 1); math.Abs(d-geo.Residential.TravelTime(10)) > 1e-9 {
		t.Fatalf("edge distance %v", d)
	}
}

// TestCCHSkeletonDeterministic pins the canonical contraction order: two
// independent builds over the same topology must produce byte-identical
// artifacts. Distances across epochs (and across processes) are only
// bit-reproducible because this holds.
func TestCCHSkeletonDeterministic(t *testing.T) {
	g := testGraph(t, 14, 14, 99)
	a := BuildCCHSkeleton(g)
	b := BuildCCHSkeleton(g)
	if !reflect.DeepEqual(a.rank, b.rank) || !reflect.DeepEqual(a.order, b.order) {
		t.Fatal("contraction order differs between builds")
	}
	if !reflect.DeepEqual(a.upStart, b.upStart) || !reflect.DeepEqual(a.upTo, b.upTo) ||
		!reflect.DeepEqual(a.upVia, b.upVia) || !reflect.DeepEqual(a.upBase, b.upBase) {
		t.Fatal("upward arc arrays differ between builds")
	}
	if !reflect.DeepEqual(a.tri, b.tri) {
		t.Fatal("triangle enumeration differs between builds")
	}
}

// TestCCHCustomizeMatchesFreshBuild is the fast path's equivalence
// contract: customizing a skeleton with a later epoch's costs must be
// bit-identical — weights and distances — to contracting that epoch's
// snapshot from scratch. This is what lets Versioned swap a multi-second
// rebuild for a millisecond customization without perturbing replays.
func TestCCHCustomizeMatchesFreshBuild(t *testing.T) {
	g := testGraph(t, 12, 12, 7)
	skel := BuildCCHSkeleton(g)
	overlay := roadnet.NewOverlay(g)
	rng := rand.New(rand.NewSource(3))
	for epoch := 0; epoch < 4; epoch++ {
		cur := overlay.Graph()
		if epoch > 0 {
			var err error
			cur, _, _, err = overlay.Apply(randomUpdates(rng, g))
			if err != nil {
				t.Fatal(err)
			}
		}
		fast := skel.Customize(cur.ArcCosts())
		fresh := BuildCCH(cur)
		if !reflect.DeepEqual(fast.upW, fresh.upW) {
			t.Fatalf("epoch %d: customized weights differ from fresh build", epoch)
		}
		n := g.NumVertices()
		for q := 0; q < 200; q++ {
			s := roadnet.VertexID(rng.Intn(n))
			d := roadnet.VertexID(rng.Intn(n))
			if a, b := fast.Dist(s, d), fresh.Dist(s, d); a != b {
				t.Fatalf("epoch %d: Dist(%d,%d) customize %v != fresh %v", epoch, s, d, a, b)
			}
		}
	}
}

// TestCCHAcrossEpochsMatchesDijkstra recustomizes one skeleton through a
// sequence of randomized traffic epochs and checks exactness at each.
func TestCCHAcrossEpochsMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 13, 13, 31)
	skel := BuildCCHSkeleton(g)
	overlay := roadnet.NewOverlay(g)
	rng := rand.New(rand.NewSource(17))
	for epoch := 0; epoch < 6; epoch++ {
		cur := overlay.Graph()
		if epoch > 0 {
			var err error
			cur, _, _, err = overlay.Apply(randomUpdates(rng, g))
			if err != nil {
				t.Fatal(err)
			}
		}
		cch := skel.Customize(cur.ArcCosts())
		checkAgainstDijkstra(t, cch, cur, rng, 80, "cch")
	}
}

func TestCCHStatsSane(t *testing.T) {
	g := testGraph(t, 12, 12, 8)
	cch := BuildCCH(g)
	sk := cch.Skeleton()
	if sk.NumVertices() != g.NumVertices() {
		t.Fatalf("skeleton has %d vertices, graph %d", sk.NumVertices(), g.NumVertices())
	}
	if cch.AvgUpDegree() <= 0 {
		t.Fatal("no upward arcs")
	}
	// Without witness pruning the chordal skeleton is denser than classic
	// CH, but on a planar-ish grid it must stay modest.
	if cch.AvgUpDegree() > 48 {
		t.Fatalf("suspiciously dense skeleton: %v", cch.AvgUpDegree())
	}
	if sk.Shortcuts() <= 0 {
		t.Fatal("grid contraction added no shortcuts")
	}
	if sk.Triangles() <= 0 {
		t.Fatal("no lower triangles enumerated")
	}
	if cch.MemoryBytes() <= sk.MemoryBytes() {
		t.Fatal("customized memory must exceed the bare skeleton's")
	}
}

// TestVersionedCustomizeFastPath pins the epoch front's behavior when the
// built tier is a CCH: every Advance customizes (counted separately from
// full rebuilds) instead of contracting from scratch, and stays exact.
func TestVersionedCustomizeFastPath(t *testing.T) {
	g := testGraph(t, 12, 12, 21)
	n := g.NumVertices()
	budget := AutoBudget{MaxHubVertices: 0, MaxCCHVertices: n, MaxCHVertices: n}
	overlay := roadnet.NewOverlay(g)
	v := NewVersioned(g, budget, false)
	if v.ResolvedKind() != AutoCCH {
		t.Fatalf("epoch 0 kind %s, want cch", v.ResolvedKind())
	}
	rng := rand.New(rand.NewSource(23))
	const epochs = 4
	for e := 1; e <= epochs; e++ {
		cur, epoch, _, err := overlay.Apply(randomUpdates(rng, g))
		if err != nil {
			t.Fatal(err)
		}
		v.Advance(cur, epoch)
		if v.ResolvedKind() != AutoCCH {
			t.Fatalf("epoch %d kind %s, want cch", e, v.ResolvedKind())
		}
		checkAgainstDijkstra(t, v, cur, rng, 60, "versioned-cch")
	}
	if v.Rebuilds() != epochs || v.Customizations() != epochs {
		t.Fatalf("rebuilds=%d customizations=%d, want %d of each (fast path not taken?)",
			v.Rebuilds(), v.Customizations(), epochs)
	}
	if v.LastRebuild() <= 0 {
		t.Fatalf("last rebuild duration %v", v.LastRebuild())
	}
}

// TestVersionedConcurrentDistDuringCustomize is the -race check for the
// customize fast path: queries hammer the front from several goroutines
// while epochs advance with asynchronous customization over the shared
// skeleton, and every observed distance must belong to SOME applied epoch.
func TestVersionedConcurrentDistDuringCustomize(t *testing.T) {
	g := testGraph(t, 10, 10, 5)
	n := g.NumVertices()
	budget := AutoBudget{MaxHubVertices: 0, MaxCCHVertices: n, MaxCHVertices: n}
	overlay := roadnet.NewOverlay(g)
	v := NewVersioned(g, budget, true)
	sharded := NewShardedCached(NewAtomicCounting(v), 1<<10, 8)

	const epochs = 4
	const pairs = 32
	rng := rand.New(rand.NewSource(29))
	ss := make([]roadnet.VertexID, pairs)
	ts := make([]roadnet.VertexID, pairs)
	for i := range ss {
		ss[i] = roadnet.VertexID(rng.Intn(n))
		ts[i] = roadnet.VertexID(rng.Intn(n))
	}
	factors := []float64{1, 1.5, 2, 2.5, 3}
	want := make([][]float64, epochs+1)
	graphs := make([]*roadnet.Graph, epochs+1)
	graphs[0] = g
	pre := roadnet.NewOverlay(g)
	for e := 1; e <= epochs; e++ {
		cur, _, _, err := pre.Apply([]roadnet.TrafficUpdate{{Factor: factors[e]}})
		if err != nil {
			t.Fatal(err)
		}
		graphs[e] = cur
	}
	for e := 0; e <= epochs; e++ {
		ref := NewDijkstra(graphs[e])
		want[e] = make([]float64, pairs)
		for i := range ss {
			want[e][i] = ref.Dist(ss[i], ts[i])
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := Oracle(v)
			if w%2 == 1 {
				o = sharded
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % pairs
				got := o.Dist(ss[k], ts[k])
				ok := false
				for e := 0; e <= epochs; e++ {
					if math.Abs(got-want[e][k]) <= 1e-6*(1+got) {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("worker %d: Dist(%d,%d)=%v matches no epoch", w, ss[k], ts[k], got)
					return
				}
			}
		}(w)
	}
	for e := 1; e <= epochs; e++ {
		cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: factors[e]}})
		if err != nil {
			t.Fatal(err)
		}
		v.Advance(cur, epoch)
	}
	v.WaitRebuild()
	close(stop)
	wg.Wait()

	if v.Customizations() == 0 {
		t.Fatal("no Advance took the customize fast path")
	}
	for i := range ss {
		if got := sharded.Dist(ss[i], ts[i]); math.Abs(got-want[epochs][i]) > 1e-6*(1+got) {
			t.Fatalf("final epoch: Dist(%d,%d)=%v want %v", ss[i], ts[i], got, want[epochs][i])
		}
	}
}

// FuzzCCHCustomize drives randomized traffic factors through a shared
// skeleton and cross-checks customized distances against fresh Dijkstra.
func FuzzCCHCustomize(f *testing.F) {
	f.Add(int64(1), 1.5)
	f.Add(int64(7), 3.0)
	f.Add(int64(42), 1.0)
	g := testGraph(f, 8, 8, 11)
	skel := BuildCCHSkeleton(g)
	f.Fuzz(func(t *testing.T, seed int64, factor float64) {
		if math.IsNaN(factor) || factor < 1 || factor > 10 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		overlay := roadnet.NewOverlay(g)
		ups := randomUpdates(rng, g)
		ups = append(ups, roadnet.TrafficUpdate{Factor: factor})
		cur, _, _, err := overlay.Apply(ups)
		if err != nil {
			t.Skip()
		}
		cch := skel.Customize(cur.ArcCosts())
		ref := NewDijkstra(cur)
		n := g.NumVertices()
		for q := 0; q < 20; q++ {
			s := roadnet.VertexID(rng.Intn(n))
			d := roadnet.VertexID(rng.Intn(n))
			want := ref.Dist(s, d)
			if got := cch.Dist(s, d); math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("Dist(%d,%d)=%v want %v", s, d, got, want)
			}
		}
	})
}

func BenchmarkCCHQuery(b *testing.B) {
	g := testGraph(b, 40, 40, 1)
	cch := BuildCCH(g)
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cch.Dist(roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)))
	}
}

// BenchmarkCCHCustomize is the headline number: recustomizing the shared
// skeleton per traffic epoch versus contracting a hierarchy from scratch
// (compare BenchmarkCHBuild and the skeleton build below).
func BenchmarkCCHCustomize(b *testing.B) {
	g := testGraph(b, 25, 25, 1)
	skel := BuildCCHSkeleton(g)
	costs := g.ArcCosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skel.Customize(costs)
	}
}

func BenchmarkCCHSkeletonBuild(b *testing.B) {
	g := testGraph(b, 25, 25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildCCHSkeleton(g)
	}
}
