package shortest

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// csrTestGraph generates a random road network for the CSR equivalence
// tests; parameters vary with the seed so layouts, degrees and label
// lengths differ across trials.
func csrTestGraph(t testing.TB, seed int64) *roadnet.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows:          4 + rng.Intn(10),
		Cols:          4 + rng.Intn(10),
		Spacing:       120 + rng.Float64()*200,
		Jitter:        rng.Float64() * 0.4,
		ArterialEvery: 3 + rng.Intn(4),
		MotorwayRing:  rng.Intn(2) == 0,
		RemoveFrac:    rng.Float64() * 0.15,
		DetourMin:     1.01,
		DetourMax:     1.1 + rng.Float64()*0.5,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestHubLabelsCSRMatchesNested is the fuzz-style layout-equivalence
// check: on random graphs, the flattened CSR labels must return
// byte-identical distances (same float64 bits, including +Inf) to the
// nested construction layout for every vertex pair.
func TestHubLabelsCSRMatchesNested(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := csrTestGraph(t, seed*911)
		nl := buildNestedLabels(g)
		h := nl.flatten()
		n := g.NumVertices()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				flat := h.Dist(roadnet.VertexID(u), roadnet.VertexID(v))
				nested := nl.dist(roadnet.VertexID(u), roadnet.VertexID(v))
				if math.Float64bits(flat) != math.Float64bits(nested) {
					t.Fatalf("seed %d: Dist(%d,%d): CSR %v != nested %v", seed, u, v, flat, nested)
				}
			}
		}
	}
}

// TestHubLabelsCSRMatchesDijkstra re-checks exactness end to end on the
// flat layout (the nested layout had the same test; keep it pinned on the
// layout actually served).
func TestHubLabelsCSRMatchesDijkstra(t *testing.T) {
	g := csrTestGraph(t, 77)
	h := BuildHubLabels(g)
	d := NewDijkstra(g)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		u := roadnet.VertexID(rng.Intn(n))
		d.RunAll(u)
		v := roadnet.VertexID(rng.Intn(n))
		want := d.DistTo(v)
		got := h.Dist(u, v)
		if math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("Dist(%d,%d) = %v, Dijkstra %v", u, v, got, want)
		}
	}
}

// TestHubLabelsDistZeroAllocs is the tentpole's oracle-side regression
// test: the innermost operation of the whole system must never allocate.
func TestHubLabelsDistZeroAllocs(t *testing.T) {
	g := csrTestGraph(t, 13)
	h := BuildHubLabels(g)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(3))
	pairs := make([][2]roadnet.VertexID, 64)
	for i := range pairs {
		pairs[i] = [2]roadnet.VertexID{
			roadnet.VertexID(rng.Intn(n)), roadnet.VertexID(rng.Intn(n)),
		}
	}
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		p := pairs[i%len(pairs)]
		h.Dist(p[0], p[1])
		i++
	}); allocs != 0 {
		t.Fatalf("HubLabels.Dist allocates %v per op, want 0", allocs)
	}
}
