package shortest

// Epoch-aware distance oracles. A roadnet.Overlay produces a new immutable
// weight snapshot per traffic update; this file makes the oracle stack
// follow it:
//
//   - Versioned fronts the preprocessed tier families (Auto): it serves
//     queries from the strongest built tier while that tier's epoch is
//     current, and from a live bidirectional-Dijkstra tier on the new
//     snapshot the moment an epoch advances — so a query NEVER sees stale
//     weights, even while an asynchronous rebuild of the preprocessed
//     tier is still running. Every tier is exact, so which tier answers
//     is unobservable in the results; only latency differs. That is what
//     keeps replay equivalence independent of rebuild timing.
//
//   - Cached/ShardedCached watch an EpochSource discovered in their inner
//     chain and flush themselves when the epoch advances, so no cached
//     distance from an earlier epoch can leak into a plan.
//
// The single-epoch (static) case is the existing behavior: the epoch
// never advances, the watch branch never fires, the built tier always
// answers — decisions are bit-identical to the pre-epoch stack.

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/roadnet"
)

// EpochSource reports the weight epoch an oracle currently answers for.
// roadnet.Overlay and Versioned implement it.
type EpochSource interface {
	Epoch() uint64
}

// Versioned is the epoch-aware oracle front. Dist is safe for any number
// of concurrent callers (the preprocessed tier is wrapped in Locked when
// it is stateful); Advance may run concurrently with queries.
type Versioned struct {
	budget AutoBudget
	async  bool

	epoch atomic.Uint64 // current weight epoch (lock-free for cache watchers)

	mu         sync.RWMutex
	g          *roadnet.Graph // current snapshot
	live       Oracle         // Locked BiDijkstra over g; always current
	built      Oracle         // preprocessed tier (concurrency-safe)
	builtKind  AutoKind
	builtOK    bool // built answers for the current epoch
	gen        uint64
	rebuilding sync.WaitGroup
	// cchSkel is the metric-independent CCH skeleton captured when the
	// built tier is a CCH. Epoch advances then take the customize fast
	// path: re-derive shortcut weights over this fixed skeleton instead of
	// contracting from scratch. Snapshots share the base topology, so one
	// skeleton serves every epoch. Guarded by mu.
	cchSkel *CCHSkeleton

	rebuilds       atomic.Uint64
	customizations atomic.Uint64
	lastRebuildNs  atomic.Int64
}

// NewVersioned builds the strongest tier for g under budget (synchronously,
// like Auto) and returns the epoch-0 front. With async true, later epoch
// advances rebuild the preprocessed tier in a background goroutine while
// the live tier serves; with async false, Advance blocks until the new
// tier is ready (the deterministic choice for offline experiments, where
// rebuild cost should be attributed to the run that caused it).
func NewVersioned(g *roadnet.Graph, budget AutoBudget, async bool) *Versioned {
	base, kind := Auto(g, budget)
	return AdoptVersioned(g, base, kind, budget, async)
}

// AdoptVersioned wraps an already-built tier (e.g. from cliutil.BuildOracle)
// as the epoch-0 preprocessed tier, avoiding a duplicate preprocessing
// pass at startup. kind must name base's tier so Versioned knows whether
// it needs a lock.
func AdoptVersioned(g *roadnet.Graph, base Oracle, kind AutoKind, budget AutoBudget, async bool) *Versioned {
	v := &Versioned{budget: budget, async: async}
	v.g = g
	v.live = NewLocked(NewBiDijkstra(g))
	v.built = lockIfStateful(base, kind)
	v.builtKind = kind
	v.builtOK = true
	if c, ok := base.(*CCH); ok {
		v.cchSkel = c.Skeleton()
	}
	v.epoch.Store(g.WeightEpoch())
	return v
}

// lockIfStateful wraps non-hub tiers in a mutex: hub labels are immutable
// after construction, the other tiers reuse per-instance search state.
func lockIfStateful(o Oracle, kind AutoKind) Oracle {
	if kind == AutoHub {
		return o
	}
	if _, ok := o.(*Locked); ok {
		return o
	}
	return NewLocked(o)
}

// Epoch implements EpochSource.
func (v *Versioned) Epoch() uint64 { return v.epoch.Load() }

// Rebuilds returns how many preprocessed-tier rebuilds have completed.
func (v *Versioned) Rebuilds() uint64 { return v.rebuilds.Load() }

// Customizations returns how many of those rebuilds took the CCH
// customize fast path (re-deriving shortcut weights over the fixed
// skeleton) rather than preprocessing from scratch.
func (v *Versioned) Customizations() uint64 { return v.customizations.Load() }

// LastRebuild returns the duration of the most recent completed rebuild
// (0 before the first).
func (v *Versioned) LastRebuild() time.Duration {
	return time.Duration(v.lastRebuildNs.Load())
}

// ResolvedKind names the tier currently answering queries: the built tier
// when it is current, otherwise the live bidirectional-Dijkstra tier.
func (v *Versioned) ResolvedKind() AutoKind {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.builtOK {
		return v.builtKind
	}
	return AutoBiDijkstra
}

// Graph returns the snapshot queries currently run against.
func (v *Versioned) Graph() *roadnet.Graph {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.g
}

// CurrentTier returns the preprocessed tier currently answering queries,
// unwrapped from its concurrency shim, or ok=false while a rebuild is in
// flight (the live fallback tier is stateful and has no bit-identical
// batched form, so batch fillers skip those windows). The returned tier
// object is immutable once built — callers may hand it to ManyToManyFor
// and fill tables from it concurrently with Dist traffic — but it answers
// for the epoch current at call time; callers that must pin an epoch
// (serve's flush does) hold their own serialization against Advance.
func (v *Versioned) CurrentTier() (Oracle, AutoKind, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if !v.builtOK {
		return nil, AutoBiDijkstra, false
	}
	o := v.built
	if l, ok := o.(*Locked); ok {
		o = l.inner
	}
	return o, v.builtKind, true
}

// Dist implements Oracle on the current epoch's weights. The lock is held
// across the inner query so a concurrent Advance can never hand the call
// a tier from a superseded epoch; it allocates nothing.
func (v *Versioned) Dist(s, t roadnet.VertexID) float64 {
	v.mu.RLock()
	o := v.live
	if v.builtOK {
		o = v.built
	}
	d := o.Dist(s, t)
	v.mu.RUnlock()
	return d
}

// Advance switches the front to a new weight snapshot. Queries arriving
// after Advance returns are answered on the new weights: immediately by
// the live tier, and by the rebuilt preprocessed tier once construction
// completes (synchronously here unless async). A stale in-flight rebuild
// whose epoch was superseded is discarded on arrival.
func (v *Versioned) Advance(g *roadnet.Graph, epoch uint64) {
	v.mu.Lock()
	v.g = g
	v.gen++
	gen := v.gen
	v.live = NewLocked(NewBiDijkstra(g))
	v.builtOK = false
	v.epoch.Store(epoch)
	if v.async {
		// Registered while still holding the lock: a WaitRebuild issued
		// after Advance returns must observe this rebuild, and Add must
		// not race a concurrent Wait that has already drained to zero.
		v.rebuilding.Add(1)
	}
	v.mu.Unlock()

	if v.async {
		go func() {
			defer v.rebuilding.Done()
			v.rebuild(g, gen)
		}()
		return
	}
	v.rebuild(g, gen)
}

// rebuild re-derives the preprocessed tier for g and installs it if its
// generation is still current. When the built tier is a CCH it takes the
// customize fast path: snapshots from one Overlay share topology (and so
// arc indexing), so re-deriving shortcut weights over the fixed skeleton
// replaces a from-scratch contraction — milliseconds instead of seconds,
// which is the point of the CCH tier (DESIGN.md §12).
func (v *Versioned) rebuild(g *roadnet.Graph, gen uint64) {
	start := time.Now()
	v.mu.RLock()
	skel := v.cchSkel
	v.mu.RUnlock()

	var (
		base Oracle
		kind AutoKind
	)
	customized := false
	if skel != nil && skel.NumVertices() == g.NumVertices() {
		base, kind = skel.Customize(g.ArcCosts()), AutoCCH
		customized = true
	} else {
		base, kind = Auto(g, v.budget)
	}
	o := lockIfStateful(base, kind)
	v.mu.Lock()
	if v.gen == gen {
		v.built = o
		v.builtKind = kind
		v.builtOK = true
		if c, ok := base.(*CCH); ok {
			v.cchSkel = c.Skeleton()
		}
		v.lastRebuildNs.Store(time.Since(start).Nanoseconds())
		v.rebuilds.Add(1)
		if customized {
			v.customizations.Add(1)
		}
	}
	v.mu.Unlock()
}

// WaitRebuild blocks until no asynchronous rebuild is in flight; tests
// and benchmarks use it to pin which tier answers.
func (v *Versioned) WaitRebuild() { v.rebuilding.Wait() }

// epochSourceOf walks a query chain to the epoch-bearing oracle, if any.
// Resolution happens once, at cache construction, so static chains pay
// nothing per query.
func epochSourceOf(o Oracle) EpochSource {
	for {
		switch x := o.(type) {
		case *Versioned:
			return x
		case *Counting:
			o = x.Inner
		case *AtomicCounting:
			o = x.Inner
		case *Locked:
			o = x.inner
		default:
			return nil
		}
	}
}
