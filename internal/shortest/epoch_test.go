package shortest

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/roadnet"
)

// randomUpdates returns a small batch of valid traffic updates drawn from
// every selector family.
func randomUpdates(rng *rand.Rand, g *roadnet.Graph) []roadnet.TrafficUpdate {
	classes := []string{"", "motorway", "arterial", "collector", "residential"}
	n := 1 + rng.Intn(3)
	ups := make([]roadnet.TrafficUpdate, 0, n)
	for i := 0; i < n; i++ {
		u := roadnet.TrafficUpdate{Factor: 1 + rng.Float64()*3}
		switch rng.Intn(3) {
		case 0:
			u.Class = classes[rng.Intn(len(classes))]
		case 1:
			b := g.Bounds()
			x0 := b.Min.X + rng.Float64()*b.Width()
			y0 := b.Min.Y + rng.Float64()*b.Height()
			u.BBox = []float64{x0, y0, x0 + rng.Float64()*b.Width(), y0 + rng.Float64()*b.Height()}
		case 2:
			es := g.Edges()
			e := es[rng.Intn(len(es))]
			u.Edges = [][2]int64{{int64(e.U), int64(e.V)}}
		}
		ups = append(ups, u)
	}
	return ups
}

// checkAgainstDijkstra compares o against a fresh Dijkstra on g over
// random pairs.
func checkAgainstDijkstra(t *testing.T, o Oracle, g *roadnet.Graph, rng *rand.Rand, pairs int, label string) {
	t.Helper()
	ref := NewDijkstra(g)
	n := g.NumVertices()
	for i := 0; i < pairs; i++ {
		s := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		want := ref.Dist(s, d)
		got := o.Dist(s, d)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("%s: Dist(%d,%d)=%v want %v (epoch %d)", label, s, d, got, want, g.WeightEpoch())
		}
	}
}

// TestVersionedMatchesDijkstraAcrossEpochs is the tentpole's equivalence
// criterion: after any sequence of traffic updates, every tier — and the
// cached chains above it — answers exactly like a fresh Dijkstra on the
// current weights.
func TestVersionedMatchesDijkstraAcrossEpochs(t *testing.T) {
	g := testGraph(t, 13, 13, 21)
	n := g.NumVertices()
	budgets := map[string]AutoBudget{
		"hub":        {MaxHubVertices: n, MaxCHVertices: n},
		"cch":        {MaxHubVertices: 0, MaxCCHVertices: n, MaxCHVertices: n},
		"ch":         {MaxHubVertices: 0, MaxCHVertices: n},
		"bidijkstra": {MaxHubVertices: 0, MaxCHVertices: 0},
	}
	for name, budget := range budgets {
		t.Run(name, func(t *testing.T) {
			if got := budget.Choose(n); string(got) != name {
				t.Fatalf("budget resolves to %s, want %s", got, name)
			}
			overlay := roadnet.NewOverlay(g)
			v := NewVersioned(g, budget, false)
			cached := NewCached(NewCounting(v), 1<<12)
			sharded := NewShardedCached(NewAtomicCounting(v), 1<<12, 8)
			rng := rand.New(rand.NewSource(7))
			for epoch := 0; epoch < 5; epoch++ {
				if epoch > 0 {
					cur, e, _, err := overlay.Apply(randomUpdates(rng, g))
					if err != nil {
						t.Fatal(err)
					}
					v.Advance(cur, e)
				}
				if v.Epoch() != overlay.Epoch() {
					t.Fatalf("versioned epoch %d != overlay %d", v.Epoch(), overlay.Epoch())
				}
				cur := overlay.Graph()
				checkAgainstDijkstra(t, v, cur, rng, 80, "versioned")
				checkAgainstDijkstra(t, cached, cur, rng, 80, "cached")
				checkAgainstDijkstra(t, sharded, cur, rng, 80, "sharded")
			}
		})
	}
}

// TestVersionedNeverServesStaleTier pins the re-tiering contract: the
// moment Advance returns, queries reflect the new weights — first through
// the live tier while the preprocessed rebuild is still in flight, then
// through the rebuilt tier — and the resolved kind transitions
// hub → bidijkstra (live) → hub without ever answering from the stale
// hub labels.
func TestVersionedNeverServesStaleTier(t *testing.T) {
	g := testGraph(t, 12, 12, 3)
	budget := AutoBudget{MaxHubVertices: g.NumVertices(), MaxCHVertices: g.NumVertices()}
	overlay := roadnet.NewOverlay(g)
	v := NewVersioned(g, budget, true)
	if v.ResolvedKind() != AutoHub {
		t.Fatalf("epoch 0 kind %s", v.ResolvedKind())
	}

	cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	v.Advance(cur, epoch)
	// Immediately after Advance (rebuild may still be running) every
	// answer must already be a new-weight distance.
	rng := rand.New(rand.NewSource(11))
	checkAgainstDijkstra(t, v, cur, rng, 60, "during rebuild")

	v.WaitRebuild()
	if v.ResolvedKind() != AutoHub {
		t.Fatalf("kind after rebuild %s, want hub", v.ResolvedKind())
	}
	if v.Rebuilds() != 1 || v.LastRebuild() <= 0 {
		t.Fatalf("rebuilds=%d last=%v", v.Rebuilds(), v.LastRebuild())
	}
	checkAgainstDijkstra(t, v, cur, rng, 60, "after rebuild")
}

// TestVersionedConcurrentDistDuringRebuild hammers Dist from many
// goroutines while epochs advance with asynchronous rebuilds; run under
// -race it is the data-race check, and every observed value must be the
// exact distance of SOME applied epoch for that pair (queries may
// linearize on either side of an in-flight Advance, but never off-epoch).
func TestVersionedConcurrentDistDuringRebuild(t *testing.T) {
	g := testGraph(t, 10, 10, 5)
	n := g.NumVertices()
	budget := AutoBudget{MaxHubVertices: n, MaxCHVertices: n}
	overlay := roadnet.NewOverlay(g)
	v := NewVersioned(g, budget, true)
	sharded := NewShardedCached(NewAtomicCounting(v), 1<<10, 8)

	const epochs = 4
	const pairs = 32
	rng := rand.New(rand.NewSource(13))
	ss := make([]roadnet.VertexID, pairs)
	ts := make([]roadnet.VertexID, pairs)
	for i := range ss {
		ss[i] = roadnet.VertexID(rng.Intn(n))
		ts[i] = roadnet.VertexID(rng.Intn(n))
	}
	// Precompute the admissible per-epoch answers.
	factors := []float64{1, 1.5, 2, 2.5, 3}
	want := make([][]float64, epochs+1)
	graphs := make([]*roadnet.Graph, epochs+1)
	graphs[0] = g
	pre := roadnet.NewOverlay(g)
	for e := 1; e <= epochs; e++ {
		cur, _, _, err := pre.Apply([]roadnet.TrafficUpdate{{Factor: factors[e]}})
		if err != nil {
			t.Fatal(err)
		}
		graphs[e] = cur
	}
	for e := 0; e <= epochs; e++ {
		ref := NewDijkstra(graphs[e])
		want[e] = make([]float64, pairs)
		for i := range ss {
			want[e][i] = ref.Dist(ss[i], ts[i])
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := Oracle(v)
			if w%2 == 1 {
				o = sharded
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % pairs
				got := o.Dist(ss[k], ts[k])
				ok := false
				for e := 0; e <= epochs; e++ {
					if math.Abs(got-want[e][k]) <= 1e-6*(1+got) {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("worker %d: Dist(%d,%d)=%v matches no epoch", w, ss[k], ts[k], got)
					return
				}
			}
		}(w)
	}
	for e := 1; e <= epochs; e++ {
		cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: factors[e]}})
		if err != nil {
			t.Fatal(err)
		}
		v.Advance(cur, epoch)
	}
	v.WaitRebuild()
	close(stop)
	wg.Wait()

	// After the dust settles, only the final epoch may answer.
	for i := range ss {
		if got := sharded.Dist(ss[i], ts[i]); math.Abs(got-want[epochs][i]) > 1e-6*(1+got) {
			t.Fatalf("final epoch: Dist(%d,%d)=%v want %v", ss[i], ts[i], got, want[epochs][i])
		}
	}
}

// TestCachedFlushOnEpochAdvance pins the cache-invalidation mechanics
// directly: a hit cached under epoch 0 must not survive an advance.
func TestCachedFlushOnEpochAdvance(t *testing.T) {
	g := testGraph(t, 8, 8, 9)
	overlay := roadnet.NewOverlay(g)
	v := NewVersioned(g, AutoBudget{MaxHubVertices: g.NumVertices(), MaxCHVertices: g.NumVertices()}, false)
	c := NewCached(v, 1<<10)
	s, d := roadnet.VertexID(1), roadnet.VertexID(g.NumVertices()-2)
	before := c.Dist(s, d)
	if again := c.Dist(s, d); again != before {
		t.Fatal("cache not answering")
	}
	cur, epoch, _, err := overlay.Apply([]roadnet.TrafficUpdate{{Factor: 3}})
	if err != nil {
		t.Fatal(err)
	}
	v.Advance(cur, epoch)
	after := c.Dist(s, d)
	wantAfter := NewDijkstra(cur).Dist(s, d)
	if math.Abs(after-wantAfter) > 1e-9 {
		t.Fatalf("cached answer %v after advance, want %v (stale cache?)", after, wantAfter)
	}
	if after == before {
		t.Fatalf("slowdown did not change the distance (%v); test graph too small", after)
	}
}
