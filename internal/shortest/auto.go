package shortest

import "repro/internal/roadnet"

// This file implements scale-aware oracle selection. The repository's
// point-to-point oracle families trade preprocessing for query speed:
//
//	hub labels   — O(µs) queries, but label construction runs one pruned
//	               Dijkstra per vertex (superlinear in practice) and label
//	               memory grows with graph diameter; affordable up to a few
//	               tens of thousands of vertices.
//	CCH          — CH-class queries over a metric-independent skeleton;
//	               contraction runs once per topology and a traffic epoch
//	               re-derives shortcut weights in milliseconds (cch.go),
//	               so it is the preferred mid tier under live weights.
//	CH           — ~10µs queries after a witness-limited contraction pass
//	               (near-linear on road networks); slightly sparser than
//	               CCH but every weight change costs a full rebuild.
//	bidirectional
//	Dijkstra     — zero preprocessing, per-query cost grows with the search
//	               space; the only choice at DIMACS scale when preprocessing
//	               time is not budgeted.
//
// The paper's experiments assume a preprocessed hub-label oracle ([9]), but
// its datasets reach 807k vertices — far beyond what hub labeling can
// preprocess in an interactive run. Auto picks the strongest tier whose
// preprocessing fits a vertex-count budget, so the same code path serves a
// 2k-vertex synthetic city and a million-vertex DIMACS import. See
// DESIGN.md §8.3 for the tier-threshold rationale and the benchmark that
// backs it (BenchmarkOracleTiers).

// AutoKind names the oracle tier Auto selected.
type AutoKind string

// The tiers Auto chooses between, strongest first.
const (
	// AutoHub is the hub-labeling oracle (BuildHubLabels).
	AutoHub AutoKind = "hub"
	// AutoCCH is the customizable contraction hierarchy (BuildCCH):
	// CH-class query latency, and under a traffic overlay a weight epoch
	// recustomizes the fixed skeleton in milliseconds instead of
	// contracting from scratch (see cch.go, DESIGN.md §12).
	AutoCCH AutoKind = "cch"
	// AutoCH is the classic witness-search contraction hierarchy
	// (BuildCH): a slightly sparser hierarchy than CCH, but every weight
	// change costs a full rebuild.
	AutoCH AutoKind = "ch"
	// AutoBiDijkstra is plain bidirectional Dijkstra (no preprocessing).
	AutoBiDijkstra AutoKind = "bidijkstra"
)

// AutoBudget bounds the preprocessing Auto may spend, expressed as the
// largest vertex count each preprocessed tier is allowed at. Vertex count
// is the right proxy here: on road networks (near-constant average degree)
// both hub-label and CH construction costs are functions of |V|, and a
// count threshold keeps the choice deterministic and instantly explainable,
// unlike a wall-clock budget.
type AutoBudget struct {
	// MaxHubVertices is the largest graph that gets hub labels.
	MaxHubVertices int
	// MaxCCHVertices is the largest graph that gets a customizable
	// contraction hierarchy. The default budget makes CCH the mid tier:
	// queries cost about the same as classic CH, and a traffic epoch
	// recustomizes in milliseconds instead of rebuilding (cch.go).
	MaxCCHVertices int
	// MaxCHVertices is the largest graph that gets a classic contraction
	// hierarchy; beyond it Auto falls back to bidirectional Dijkstra.
	// It only selects CH when MaxCCHVertices < n ≤ MaxCHVertices, so the
	// default budget (equal thresholds) never picks it — set
	// MaxCCHVertices lower to prefer the sparser witness-search hierarchy
	// on static workloads.
	MaxCHVertices int
}

// DefaultAutoBudget returns the thresholds used by the CLIs: hub labels up
// to 50k vertices (seconds of preprocessing), CCH up to 400k (tens of
// seconds to contract, milliseconds per traffic epoch afterwards),
// bidirectional Dijkstra beyond. Both are sized for interactive use;
// raise them for offline preprocessing runs.
func DefaultAutoBudget() AutoBudget {
	return AutoBudget{MaxHubVertices: 50_000, MaxCCHVertices: 400_000, MaxCHVertices: 400_000}
}

// Choose returns the tier Auto would pick for an n-vertex graph, without
// building anything.
func (b AutoBudget) Choose(n int) AutoKind {
	switch {
	case n <= b.MaxHubVertices:
		return AutoHub
	case n <= b.MaxCCHVertices:
		return AutoCCH
	case n <= b.MaxCHVertices:
		return AutoCH
	default:
		return AutoBiDijkstra
	}
}

// Auto builds the strongest distance oracle whose preprocessing fits the
// budget and reports which tier it chose. All tiers are exact: they return
// identical distances (see TestAutoMatchesDijkstra), differing only in
// preprocessing and per-query cost.
//
// Concurrency: the hub tier is immutable and safe for concurrent readers;
// the CH and bidirectional-Dijkstra tiers reuse per-instance search state
// and must be wrapped in Locked (or given one instance per goroutine) when
// shared — exactly as expt.Runner does for its parallel dispatcher.
func Auto(g *roadnet.Graph, b AutoBudget) (Oracle, AutoKind) {
	kind := b.Choose(g.NumVertices())
	switch kind {
	case AutoHub:
		return BuildHubLabels(g), kind
	case AutoCCH:
		return BuildCCH(g), kind
	case AutoCH:
		return BuildCH(g), kind
	default:
		return NewBiDijkstra(g), kind
	}
}
