package shortest

// Batched many-to-many distance tables. The planner's hot loop (Algorithm
// 5 candidate evaluation) asks for dist(worker stop, request endpoint)
// across a whole admission batch — O(workers × requests × stops) point
// queries that each re-run a bidirectional upward search from scratch.
// The bucket technique from the CH literature (Knopp et al., "Computing
// Many-to-Many Shortest Paths Using Highway Hierarchies") computes the
// same table with |sources| forward upward sweeps and |targets| backward
// upward sweeps: each forward sweep deposits (source, dist) entries into
// per-vertex buckets, each backward sweep scans the buckets it meets, and
// every table cell is the min over meeting vertices of the two one-sided
// distances. The searches are shared across ALL pairs instead of being
// re-run per pair — one sweep per batch endpoint, not per cell.
//
// Bit-exactness with the point queries is load-bearing (the serve layer
// prefetches a table per admission batch and replay equivalence must not
// notice): see the proof sketch on BucketMtM.Table. Every implementation
// here is equivalence-tested cell-for-cell against its point oracle in
// manytomany_test.go.

import (
	"math"

	"repro/internal/pqueue"
	"repro/internal/roadnet"
)

// ManyToMany fills a dense row-major |sources| × |targets| travel-time
// table: cell i*len(targets)+j holds dist(sources[i], targets[j]), +Inf
// for unreachable pairs. The returned slice is owned by the arena and
// valid until its next Table call. Duplicate vertices in either list are
// allowed (they just repeat work); every implementation returns cells
// bit-identical to its corresponding point oracle's Dist.
type ManyToMany interface {
	Table(a *TableArena, sources, targets []roadnet.VertexID) []float64
}

// TableArena owns every byte a Table fill touches: the output cells, the
// upward-search state, the per-vertex bucket storage, and the hub-label
// scatter array. Callers allocate one arena per concurrent filler and
// reuse it across batches; steady-state fills allocate nothing. The
// zero-capacity arena from NewTableArena grows on first use.
type TableArena struct {
	cells []float64

	// Upward-search state (bucket tiers), version-stamped so consecutive
	// sweeps cost O(settled) to reset, exactly like chSearch.
	n    int
	dist []float64
	ver  []uint32
	cur  uint32
	heap *pqueue.Heap

	// Deposits are appended in sweep order, then counting-sorted into a
	// bucket CSR keyed by touched vertex. bVer stamps first touches so the
	// whole structure resets in O(1).
	depV, depS []int32
	depD       []float64
	touched    []roadnet.VertexID
	bCnt       []int32
	bStart     []int32
	bVer       []uint32
	bCur       uint32
	bktS       []int32
	bktD       []float64

	// Hub-label scatter: one target label spread over hub ranks.
	rankDist []float64
	rankVer  []uint32
	rankCur  uint32
}

// NewTableArena returns an empty arena; it sizes itself lazily to the
// hierarchy it first serves.
func NewTableArena() *TableArena { return &TableArena{} }

// grabCells returns the arena's cell buffer resized to size, reallocating
// only on growth.
func (a *TableArena) grabCells(size int) []float64 {
	if cap(a.cells) < size {
		a.cells = make([]float64, size)
	}
	a.cells = a.cells[:size]
	return a.cells
}

// ensureSearch sizes the upward-search and bucket state for an n-vertex
// hierarchy.
func (a *TableArena) ensureSearch(n int) {
	if a.n >= n && a.dist != nil {
		return
	}
	a.n = n
	a.dist = make([]float64, n)
	a.ver = make([]uint32, n)
	a.cur = 0
	a.heap = pqueue.New(n)
	a.bCnt = make([]int32, n)
	a.bStart = make([]int32, n)
	a.bVer = make([]uint32, n)
	a.bCur = 0
}

// ensureRank sizes the hub-label scatter array for ranks < n.
func (a *TableArena) ensureRank(n int) {
	if len(a.rankDist) >= n {
		return
	}
	a.rankDist = make([]float64, n)
	a.rankVer = make([]uint32, n)
	a.rankCur = 0
}

func (a *TableArena) beginSweep(s roadnet.VertexID) {
	a.cur++
	if a.cur == 0 {
		for i := range a.ver {
			a.ver[i] = 0
		}
		a.cur = 1
	}
	a.heap.Reset()
	a.ver[s] = a.cur
	a.dist[s] = 0
	a.heap.Push(s, 0)
}

func (a *TableArena) relax(v roadnet.VertexID, d float64) {
	if a.ver[v] != a.cur || d < a.dist[v] {
		a.ver[v] = a.cur
		a.dist[v] = d
		a.heap.Push(v, d)
	}
}

// BucketMtM is the bucket-based many-to-many filler over a CH or CCH
// upward hierarchy. It reads only the immutable CSR arrays (never the
// tier's per-instance query state), so any number of concurrent fills may
// share one hierarchy as long as each brings its own arena.
//
// Bit-exactness with upwardDist: (1) with strictly positive edge weights a
// Dijkstra's final distances are a scheduling-independent function of the
// graph — the value settled at v is the float min over in-arcs (u,v) of
// fl(final(u)+w), so the full forward/backward sweeps here reproduce
// exactly the distances the point query's two sides would settle. (2)
// every candidate the point query evaluates is fl(pop-final + other-side
// value) with the other side's value ≥ its final, and float addition of
// non-negative operands is monotone, so every point candidate ≥ the
// corresponding full-sweep cell candidate. (3) at the cell's arg-min meet
// vertex, whichever point-query side pops it second evaluates exactly
// fl(final+final) — and if that side was pruned (top ≥ best) or exhausted
// first, the Dijkstra invariant puts its final at ≥ best, so the sweep min
// cannot beat the point result either. Min over a candidate set is
// order-independent for floats, hence cell == point bitwise, including
// the s == t diagonal (both sides settle the vertex at 0) and +Inf for
// unreachable pairs.
type BucketMtM struct {
	n       int
	upStart []int32
	upTo    []roadnet.VertexID
	upW     []float64
}

// Table implements ManyToMany with one bucket sweep: |sources| forward
// upward Dijkstras deposit, |targets| backward upward Dijkstras scan.
func (m *BucketMtM) Table(a *TableArena, sources, targets []roadnet.VertexID) []float64 {
	ns, nt := len(sources), len(targets)
	cells := a.grabCells(ns * nt)
	for i := range cells {
		cells[i] = math.Inf(1)
	}
	if ns == 0 || nt == 0 {
		return cells
	}
	a.ensureSearch(m.n)

	// Reset bucket storage: one version bump invalidates every bucket.
	a.depV = a.depV[:0]
	a.depS = a.depS[:0]
	a.depD = a.depD[:0]
	a.touched = a.touched[:0]
	a.bCur++
	if a.bCur == 0 {
		for i := range a.bVer {
			a.bVer[i] = 0
		}
		a.bCur = 1
	}

	// Phase 1: full (unpruned) forward upward sweeps deposit one
	// (source index, final distance) entry per settled vertex.
	for si, s := range sources {
		a.beginSweep(s)
		for a.heap.Len() > 0 {
			v, dv := a.heap.Pop()
			if a.bVer[v] != a.bCur {
				a.bVer[v] = a.bCur
				a.bCnt[v] = 0
				a.touched = append(a.touched, v)
			}
			a.bCnt[v]++
			a.depV = append(a.depV, int32(v))
			a.depS = append(a.depS, int32(si))
			a.depD = append(a.depD, dv)
			for i := m.upStart[v]; i < m.upStart[v+1]; i++ {
				a.relax(m.upTo[i], dv+m.upW[i])
			}
		}
	}

	// Counting-sort the deposits into a bucket CSR keyed by vertex so the
	// backward phase scans each vertex's entries contiguously. After the
	// scatter bStart[v] sits at the END of v's bucket; the scan recovers
	// the start as bStart[v]-bCnt[v].
	off := int32(0)
	for _, v := range a.touched {
		a.bStart[v] = off
		off += a.bCnt[v]
	}
	if cap(a.bktS) < len(a.depV) {
		a.bktS = make([]int32, len(a.depV))
		a.bktD = make([]float64, len(a.depV))
	}
	a.bktS = a.bktS[:len(a.depV)]
	a.bktD = a.bktD[:len(a.depV)]
	for k, v := range a.depV {
		p := a.bStart[v]
		a.bStart[v] = p + 1
		a.bktS[p] = a.depS[k]
		a.bktD[p] = a.depD[k]
	}

	// Phase 2: full backward upward sweeps; every settled vertex that
	// carries a bucket contributes min(fdist+bdist) to its sources' cells.
	// (The graph is undirected, so both directions search the same upward
	// CSR — exactly like upwardDist's two sides.)
	for tj, t := range targets {
		a.beginSweep(t)
		for a.heap.Len() > 0 {
			v, dv := a.heap.Pop()
			if a.bVer[v] == a.bCur {
				end := a.bStart[v]
				for k := end - a.bCnt[v]; k < end; k++ {
					cell := int(a.bktS[k])*nt + tj
					if d := a.bktD[k] + dv; d < cells[cell] {
						cells[cell] = d
					}
				}
			}
			for i := m.upStart[v]; i < m.upStart[v+1]; i++ {
				a.relax(m.upTo[i], dv+m.upW[i])
			}
		}
	}
	return cells
}

// HubMtM is the hub-label many-to-many filler: per target it scatters the
// target's CSR label over hub ranks once, then streams each source's span
// against the scatter — the per-cell work drops from a two-pointer merge
// to a single span scan with O(1) hub lookups. Candidates are the same
// fl(d_s + d_t) sums the point merge evaluates and min is
// order-independent, so cells are bit-identical to HubLabels.Dist.
// Read-only over the labeling; safe for concurrent fills with separate
// arenas.
type HubMtM struct {
	h *HubLabels
}

// Table implements ManyToMany by target-label scatter + source-span scan.
func (m *HubMtM) Table(a *TableArena, sources, targets []roadnet.VertexID) []float64 {
	h := m.h
	ns, nt := len(sources), len(targets)
	cells := a.grabCells(ns * nt)
	if ns == 0 || nt == 0 {
		return cells
	}
	a.ensureRank(h.n)
	for tj, t := range targets {
		a.rankCur++
		if a.rankCur == 0 {
			for i := range a.rankVer {
				a.rankVer[i] = 0
			}
			a.rankCur = 1
		}
		for k := h.offsets[t]; k < h.offsets[t+1]; k++ {
			r := h.hubs[k]
			a.rankVer[r] = a.rankCur
			a.rankDist[r] = h.dists[k]
		}
		for si, s := range sources {
			if s == t {
				cells[si*nt+tj] = 0
				continue
			}
			best := Inf
			for k := h.offsets[s]; k < h.offsets[s+1]; k++ {
				r := h.hubs[k]
				if a.rankVer[r] == a.rankCur {
					if d := h.dists[k] + a.rankDist[r]; d < best {
						best = d
					}
				}
			}
			cells[si*nt+tj] = best
		}
	}
	return cells
}

// DijkstraMtM is the preprocessing-free fallback: one full forward
// Dijkstra per source, shared across every target column — already a
// |targets|-fold sharing win over per-pair point queries. Cells are
// bit-identical to forward Dijkstra.Dist (NOT to BiDijkstra.Dist, whose
// meet-in-the-middle sum rounds differently — which is why ManyToManyFor
// declines the bidijkstra tier). Owns a search engine; not safe for
// concurrent use.
type DijkstraMtM struct {
	d *Dijkstra
}

// NewDijkstraMtM returns a fallback filler bound to g.
func NewDijkstraMtM(g *roadnet.Graph) *DijkstraMtM {
	return &DijkstraMtM{d: NewDijkstra(g)}
}

// Table implements ManyToMany with one single-source run per source row.
func (m *DijkstraMtM) Table(a *TableArena, sources, targets []roadnet.VertexID) []float64 {
	nt := len(targets)
	cells := a.grabCells(len(sources) * nt)
	for si, s := range sources {
		m.d.RunAll(s)
		row := cells[si*nt : (si+1)*nt]
		for tj, t := range targets {
			row[tj] = m.d.DistTo(t)
		}
	}
	return cells
}

// ManyToManyFor returns the batched filler matching o's tier, unwrapping
// counting/locking/caching shims to reach it: bucket sweep for CH and
// CCH, label scatter for hub labels, nil for tiers with no bit-identical
// batched form (BiDijkstra's meet-sum rounds differently than a one-sided
// sweep, so a prefetched table would perturb replay equivalence there).
// The returned filler reads only the tier's immutable arrays and may run
// concurrently with point queries against the same tier.
func ManyToManyFor(o Oracle) ManyToMany {
	for {
		switch x := o.(type) {
		case *Counting:
			o = x.Inner
		case *AtomicCounting:
			o = x.Inner
		case *Locked:
			o = x.inner
		case *Cached:
			o = x.inner
		case *ShardedCached:
			o = x.inner
		case *HubLabels:
			return &HubMtM{h: x}
		case *CH:
			return &BucketMtM{n: x.n, upStart: x.upStart, upTo: x.upTo, upW: x.upW}
		case *CCH:
			return &BucketMtM{n: x.skel.n, upStart: x.skel.upStart, upTo: x.skel.upTo, upW: x.upW}
		default:
			return nil
		}
	}
}
