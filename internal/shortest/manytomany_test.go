package shortest

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/roadnet"
)

// pickBatch draws a batch of vertices with deliberate duplicates and
// shared entries so the diagonal (s == t) and repeated-vertex paths are
// exercised.
func pickBatch(rng *rand.Rand, n, size int) []roadnet.VertexID {
	out := make([]roadnet.VertexID, size)
	for i := range out {
		out[i] = roadnet.VertexID(rng.Intn(n))
	}
	if size >= 2 {
		out[size-1] = out[0] // guaranteed duplicate
	}
	return out
}

// requireBitIdentical compares every table cell against the point oracle
// bit-for-bit: the serve layer swaps table cells in for point queries
// mid-replay, so "close" is not good enough.
func requireBitIdentical(t *testing.T, tag string, cells []float64,
	sources, targets []roadnet.VertexID, point Oracle) {
	t.Helper()
	nt := len(targets)
	for i, s := range sources {
		for j, tt := range targets {
			got := cells[i*nt+j]
			want := point.Dist(s, tt)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: cell(%d,%d)=dist(%d,%d): table %v point %v (bits %x vs %x)",
					tag, i, j, s, tt, got, want,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestManyToManyMatchesPointDist is the tentpole equivalence suite: for
// every preprocessed tier, on several randomized graphs, a batched table
// fill must reproduce the point oracle bit-for-bit — including the
// diagonal, duplicates, and arena reuse across consecutive batches.
func TestManyToManyMatchesPointDist(t *testing.T) {
	tiers := []struct {
		name  string
		build func(g *roadnet.Graph) Oracle
	}{
		{"hub", func(g *roadnet.Graph) Oracle { return BuildHubLabels(g) }},
		{"ch", func(g *roadnet.Graph) Oracle { return BuildCH(g) }},
		{"cch", func(g *roadnet.Graph) Oracle { return BuildCCH(g) }},
	}
	for _, tier := range tiers {
		t.Run(tier.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				g := testGraph(t, 11+int(seed), 13, seed)
				o := tier.build(g)
				mtm := ManyToManyFor(o)
				if mtm == nil {
					t.Fatalf("ManyToManyFor(%T) = nil", o)
				}
				rng := rand.New(rand.NewSource(seed * 77))
				a := NewTableArena()
				n := g.NumVertices()
				// Several batches through ONE arena: reuse must not leak
				// state between fills.
				for batch := 0; batch < 4; batch++ {
					sources := pickBatch(rng, n, 1+rng.Intn(9))
					targets := pickBatch(rng, n, 1+rng.Intn(9))
					if batch == 2 {
						targets[0] = sources[0] // force a diagonal cell
					}
					cells := mtm.Table(a, sources, targets)
					requireBitIdentical(t, tier.name, cells, sources, targets, o)
				}
				// Empty batches return empty tables without touching state.
				if got := mtm.Table(a, nil, nil); len(got) != 0 {
					t.Fatalf("empty batch returned %d cells", len(got))
				}
			}
		})
	}
}

// TestManyToManyAcrossEpochs re-customizes a CCH skeleton with perturbed
// arc costs (a traffic epoch) and requires the bucket table to track the
// point queries bit-for-bit on every epoch's weights.
func TestManyToManyAcrossEpochs(t *testing.T) {
	g := testGraph(t, 12, 12, 9)
	sk := BuildCCHSkeleton(g)
	base := g.ArcCosts()
	rng := rand.New(rand.NewSource(42))
	a := NewTableArena()
	n := g.NumVertices()
	costs := make([]float64, len(base))
	for epoch := 0; epoch < 4; epoch++ {
		copy(costs, base)
		for i := range costs {
			if rng.Intn(4) == 0 {
				costs[i] *= 1 + 3*rng.Float64() // congestion on a quarter of arcs
			}
		}
		c := sk.Customize(costs)
		mtm := ManyToManyFor(c)
		sources := pickBatch(rng, n, 7)
		targets := pickBatch(rng, n, 6)
		cells := mtm.Table(a, sources, targets)
		requireBitIdentical(t, "cch-epoch", cells, sources, targets, c)
	}
}

// TestDijkstraMtMMatchesDijkstra pins the fallback filler to forward
// Dijkstra point queries (its bit-reference; BiDijkstra's meet sums round
// differently, which is why the bidijkstra tier gets no batched form).
func TestDijkstraMtMMatchesDijkstra(t *testing.T) {
	g := testGraph(t, 10, 14, 5)
	mtm := NewDijkstraMtM(g)
	point := NewDijkstra(g)
	rng := rand.New(rand.NewSource(5))
	a := NewTableArena()
	n := g.NumVertices()
	for batch := 0; batch < 3; batch++ {
		sources := pickBatch(rng, n, 5)
		targets := pickBatch(rng, n, 8)
		cells := mtm.Table(a, sources, targets)
		requireBitIdentical(t, "dijkstra", cells, sources, targets, point)
	}
}

// TestManyToManyForUnwraps checks the shim-unwrapping: counting, locking
// and caching layers must not hide a batched-capable tier, and tiers
// without a bit-identical batched form must yield nil.
func TestManyToManyForUnwraps(t *testing.T) {
	g := testGraph(t, 8, 8, 3)
	ch := BuildCH(g)
	wrapped := NewCounting(NewLocked(NewAtomicCounting(ch)))
	mtm := ManyToManyFor(wrapped)
	if mtm == nil {
		t.Fatal("ManyToManyFor failed to unwrap the shim chain")
	}
	if _, ok := mtm.(*BucketMtM); !ok {
		t.Fatalf("unwrapped to %T, want *BucketMtM", mtm)
	}
	if got := ManyToManyFor(NewShardedCached(BuildHubLabels(g), 64, 4)); got == nil {
		t.Fatal("ManyToManyFor missed hub labels under ShardedCached")
	}
	if got := ManyToManyFor(NewBiDijkstra(g)); got != nil {
		t.Fatalf("ManyToManyFor(BiDijkstra) = %T, want nil (no bit-identical batched form)", got)
	}
}

// TestCurrentTier checks the Versioned accessor batch prefetchers use:
// it must expose the unwrapped built tier while current and decline
// while a rebuild is pending.
func TestCurrentTier(t *testing.T) {
	g := testGraph(t, 9, 9, 2)
	v := NewVersioned(g, DefaultAutoBudget(), false)
	tier, kind, ok := v.CurrentTier()
	if !ok || tier == nil {
		t.Fatal("CurrentTier not available after synchronous construction")
	}
	if kind != v.ResolvedKind() {
		t.Fatalf("kind %v != resolved %v", kind, v.ResolvedKind())
	}
	if _, locked := tier.(*Locked); locked {
		t.Fatal("CurrentTier returned a Locked shim; batch fillers need the raw tier")
	}
	if ManyToManyFor(tier) == nil {
		t.Fatalf("no batched filler for current tier %T", tier)
	}
	// The table a filler produces from the unwrapped tier must match the
	// Versioned front's own answers bit-for-bit.
	rng := rand.New(rand.NewSource(8))
	a := NewTableArena()
	n := g.NumVertices()
	sources := pickBatch(rng, n, 6)
	targets := pickBatch(rng, n, 6)
	cells := ManyToManyFor(tier).Table(a, sources, targets)
	requireBitIdentical(t, "versioned", cells, sources, targets, v)
}

// TestCustomizeParallelBitExact pins the parallel triangle sweep to the
// serial one: identical shortcut-weight arrays for every worker count,
// on base and perturbed (traffic-epoch) metrics.
func TestCustomizeParallelBitExact(t *testing.T) {
	g := testGraph(t, 14, 14, 7)
	sk := BuildCCHSkeleton(g)
	base := g.ArcCosts()
	rng := rand.New(rand.NewSource(11))
	costs := make([]float64, len(base))
	for epoch := 0; epoch < 3; epoch++ {
		copy(costs, base)
		if epoch > 0 {
			for i := range costs {
				if rng.Intn(3) == 0 {
					costs[i] *= 1 + 2*rng.Float64()
				}
			}
		}
		ref := sk.CustomizeParallel(costs, 1)
		for _, workers := range []int{2, 3, 8, 32, 64} {
			got := sk.CustomizeParallel(costs, workers)
			if !slices.Equal(ref.upW, got.upW) {
				t.Fatalf("epoch %d: CustomizeParallel(workers=%d) diverges from serial sweep",
					epoch, workers)
			}
		}
	}
}

// TestCustomizeParallelLargeSkeleton forces the parallel path (the small
// fixtures above stay under cchParallelMinTriples) and re-checks
// bit-exactness where the fan-out actually runs.
func TestCustomizeParallelLargeSkeleton(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 40x40 skeleton")
	}
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: 40, Cols: 40, Spacing: 150, Jitter: 0.2, ArterialEvery: 5,
		MotorwayRing: true, RemoveFrac: 0.08, DetourMin: 1.05, DetourMax: 1.3, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sk := BuildCCHSkeleton(g)
	if len(sk.tri) < cchParallelMinTriples {
		t.Skipf("skeleton too small to trigger the parallel path: %d elements", len(sk.tri))
	}
	ref := sk.CustomizeParallel(g.ArcCosts(), 1)
	for _, workers := range []int{2, 4, 32} {
		got := sk.CustomizeParallel(g.ArcCosts(), workers)
		if !slices.Equal(ref.upW, got.upW) {
			t.Fatalf("workers=%d diverges from serial on the large skeleton", workers)
		}
	}
}
