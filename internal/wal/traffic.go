package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// Traffic is the TypeTraffic body: one applied epoch advance. At is the
// effective event time (already resolved through the max(clock, at)
// rule), Epoch the epoch the advance produced, and Updates the batch in
// the same JSON encoding POST /v1/traffic and the snapshot history use
// (FORMATS.md §6), so one decoder serves all three surfaces.
type Traffic struct {
	At      float64
	Epoch   uint64
	Updates []roadnet.TrafficUpdate
}

// AppendTraffic appends a traffic body to dst: at bits, epoch, then the
// JSON update batch.
func AppendTraffic(dst []byte, t Traffic) ([]byte, error) {
	js, err := json.Marshal(t.Updates)
	if err != nil {
		return dst, err
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(t.At))
	dst = binary.LittleEndian.AppendUint64(dst, t.Epoch)
	return append(dst, js...), nil
}

// DecodeTraffic parses a traffic body. Structural checks only — the
// updates are validated against the graph when replayed.
func DecodeTraffic(body []byte) (Traffic, error) {
	if len(body) < 16 {
		return Traffic{}, fmt.Errorf("wal: traffic body is %d bytes (want >= 16)", len(body))
	}
	t := Traffic{
		At:    math.Float64frombits(binary.LittleEndian.Uint64(body[0:])),
		Epoch: binary.LittleEndian.Uint64(body[8:]),
	}
	if math.IsNaN(t.At) || math.IsInf(t.At, 0) {
		return Traffic{}, fmt.Errorf("wal: non-finite traffic time")
	}
	if err := json.Unmarshal(body[16:], &t.Updates); err != nil {
		return Traffic{}, fmt.Errorf("wal: bad traffic updates: %w", err)
	}
	if len(t.Updates) == 0 {
		return Traffic{}, fmt.Errorf("wal: empty traffic update batch")
	}
	return t, nil
}
