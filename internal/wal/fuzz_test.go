package wal

import (
	"bytes"
	"testing"
)

// FuzzReadWAL throws arbitrary bytes at the segment decoder. The
// contract: never panic, never read past the buffer, and whatever
// decodes is a faithful complete prefix — re-encoding the decoded
// records reproduces data[:clean] byte-for-byte.
func FuzzReadWAL(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("URPSMWAL"))
	f.Add(AppendHeader(nil, 0))
	f.Add(AppendRecord(AppendHeader(nil, 0), 0, TypeCheckpoint, nil))
	full := AppendHeader(nil, 7)
	full = AppendRecord(full, 7, TypeBatch, AppendBatch(nil, 1, 0))
	full = AppendRecord(full, 8, TypeAdmission, AppendAdmission(nil, Admission{ID: 1, Origin: 2, Dest: 3, Release: 4, Deadline: 500, Penalty: 6, Capacity: 1}))
	full = AppendRecord(full, 9, TypeDecision, AppendDecision(nil, Decision{ID: 1, Accepted: true, Worker: 0, Delta: 1.5, SimTime: 4}))
	tb, _ := AppendTraffic(nil, Traffic{At: 10, Epoch: 1, Updates: nil})
	full = AppendRecord(full, 10, TypeTraffic, tb)
	f.Add(full)
	f.Add(full[:len(full)-3]) // torn tail
	corrupt := append([]byte(nil), full...)
	corrupt[HeaderSize+5] ^= 0x40
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		start, recs, clean, err := DecodeSegment(data)
		if err != nil {
			return // unreadable header: nothing decoded, nothing to check
		}
		if clean < HeaderSize || clean > len(data) {
			t.Fatalf("clean offset %d outside [%d,%d]", clean, HeaderSize, len(data))
		}
		// Prefix-of-valid-log property: the decoded records re-encode to
		// exactly the clean prefix, so recovery after truncating there
		// starts from a log that is valid by construction.
		re := AppendHeader(nil, start)
		for _, r := range recs {
			if r.Type == 0 {
				t.Fatal("reserved record type decoded")
			}
			re = AppendRecord(re, r.LSN, r.Type, r.Body)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("re-encoding %d records != clean prefix (%d vs %d bytes)", len(recs), len(re), clean)
		}
		// Typed bodies must decode or error — never panic.
		for _, r := range recs {
			switch r.Type {
			case TypeBatch:
				_, _, _ = DecodeBatch(r.Body)
			case TypeShed:
				_, _ = DecodeShed(r.Body)
			case TypeAdmission:
				_, _ = DecodeAdmission(r.Body)
			case TypeDecision:
				_, _ = DecodeDecision(r.Body)
			case TypeTraffic:
				_, _ = DecodeTraffic(r.Body)
			}
		}
	})
}
