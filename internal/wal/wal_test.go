package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/roadnet"
)

// buildSegment encodes a header plus records into one byte slice, the
// way a synced Log would lay them out.
func buildSegment(startLSN uint64, recs []Record) []byte {
	data := AppendHeader(nil, startLSN)
	for _, r := range recs {
		data = AppendRecord(data, r.LSN, r.Type, r.Body)
	}
	return data
}

func sampleRecords(t *testing.T) []Record {
	t.Helper()
	adm := AppendAdmission(nil, Admission{ID: 7, Origin: 42, Dest: 9, Release: 100.5, Deadline: 700, Penalty: 320.25, Capacity: 2})
	dec := AppendDecision(nil, Decision{ID: 7, Accepted: true, Worker: 3, Delta: 182.125, SimTime: 100.5})
	tr, err := AppendTraffic(nil, Traffic{At: 300, Epoch: 1, Updates: []roadnet.TrafficUpdate{{Factor: 1.5, Class: "motorway"}}})
	if err != nil {
		t.Fatal(err)
	}
	return []Record{
		{LSN: 5, Type: TypeBatch, Body: AppendBatch(nil, 1, 0)},
		{LSN: 6, Type: TypeAdmission, Body: adm},
		{LSN: 7, Type: TypeDecision, Body: dec},
		{LSN: 8, Type: TypeTraffic, Body: tr},
		{LSN: 9, Type: TypeCheckpoint, Body: nil},
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	want := sampleRecords(t)
	data := buildSegment(5, want)
	start, got, clean, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if start != 5 {
		t.Fatalf("start LSN %d, want 5", start)
	}
	if clean != len(data) {
		t.Fatalf("clean offset %d, want %d", clean, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type || !bytes.Equal(got[i].Body, want[i].Body) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestBytePrefixProperty is the torn-write property at the framing
// level: for EVERY byte-prefix of a valid segment, decoding recovers
// exactly the records whose frames are complete — never a partial
// record, never a panic, and the clean offset is exactly the end of the
// last complete frame.
func TestBytePrefixProperty(t *testing.T) {
	recs := sampleRecords(t)
	data := buildSegment(5, recs)

	// Frame end offsets, computed independently by re-encoding.
	ends := []int{HeaderSize}
	acc := AppendHeader(nil, 5)
	for _, r := range recs {
		acc = AppendRecord(acc, r.LSN, r.Type, r.Body)
		ends = append(ends, len(acc))
	}

	for cut := 0; cut <= len(data); cut++ {
		prefix := data[:cut]
		if cut < HeaderSize {
			if _, _, _, err := DecodeSegment(prefix); err == nil {
				t.Fatalf("cut %d: short header decoded without error", cut)
			}
			continue
		}
		_, got, clean, err := DecodeSegment(prefix)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantN := 0
		for wantN+1 < len(ends) && ends[wantN+1] <= cut {
			wantN++
		}
		if len(got) != wantN {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(got), wantN)
		}
		if clean != ends[wantN] {
			t.Fatalf("cut %d: clean offset %d, want %d", cut, clean, ends[wantN])
		}
	}
}

// TestCorruptionStopsScan flips single bytes and checks the scan stops
// at (or before) the corrupted frame instead of decoding garbage.
func TestCorruptionStopsScan(t *testing.T) {
	recs := sampleRecords(t)
	data := buildSegment(5, recs)
	for pos := HeaderSize; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0xff
		_, got, _, err := DecodeSegment(mut)
		if err != nil {
			t.Fatalf("pos %d: header error on body corruption: %v", pos, err)
		}
		// The corrupted byte lives in frame k; everything before k must
		// still decode, frame k and beyond must not.
		frame := 0
		acc := HeaderSize
		for i := range recs {
			next := len(AppendRecord(nil, recs[i].LSN, recs[i].Type, recs[i].Body))
			if pos < acc+next {
				frame = i
				break
			}
			acc += next
		}
		if len(got) > frame {
			t.Fatalf("pos %d: decoded %d records past corrupted frame %d", pos, len(got), frame)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, _, _, err := DecodeSegment([]byte("URPSMWA")); err == nil {
		t.Fatal("short header accepted")
	}
	if _, _, _, err := DecodeSegment(buildSegment(0, nil)[:HeaderSize]); err != nil {
		t.Fatalf("valid empty segment rejected: %v", err)
	}
	bad := buildSegment(0, nil)
	bad[0] = 'X'
	if _, _, _, err := DecodeSegment(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	badv := buildSegment(0, nil)
	badv[8] = 99
	if _, _, _, err := DecodeSegment(badv); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestNonConsecutiveLSNStopsScan(t *testing.T) {
	data := AppendHeader(nil, 5)
	data = AppendRecord(data, 5, TypeCheckpoint, nil)
	data = AppendRecord(data, 9, TypeCheckpoint, nil) // gap
	_, got, _, err := DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d records across an LSN gap, want 1", len(got))
	}
}

func TestLogAppendSyncRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SegmentName)
	l, err := Create(path, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lsn := l.Append(TypeBatch, AppendBatch(nil, 1, 0)); lsn != 10 {
		t.Fatalf("first LSN %d, want 10", lsn)
	}
	l.Append(TypeAdmission, AppendAdmission(nil, Admission{ID: 1, Capacity: 1}))
	// Not yet synced: the file on disk holds only the header.
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != HeaderSize {
		t.Fatalf("unsynced records reached disk: %d bytes", len(onDisk))
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	onDisk, _ = os.ReadFile(path)
	if int64(len(onDisk)) != l.Size() {
		t.Fatalf("disk size %d != log size %d", len(onDisk), l.Size())
	}
	start, recs, clean, err := DecodeSegment(onDisk)
	if err != nil || start != 10 || len(recs) != 2 || clean != len(onDisk) {
		t.Fatalf("synced segment: start=%d recs=%d clean=%d err=%v", start, len(recs), clean, err)
	}

	// Rotate: fresh segment, old records gone, LSNs continue.
	if err := l.Rotate(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if l.Size() != HeaderSize {
		t.Fatalf("rotated size %d, want %d", l.Size(), HeaderSize)
	}
	if lsn := l.Append(TypeCheckpoint, nil); lsn != 12 {
		t.Fatalf("post-rotate LSN %d, want 12", lsn)
	}
	if err := l.Close(); err != nil { // Close syncs the buffered record
		t.Fatal(err)
	}
	onDisk, _ = os.ReadFile(path)
	start, recs, _, err = DecodeSegment(onDisk)
	if err != nil || start != 12 || len(recs) != 1 {
		t.Fatalf("rotated segment: start=%d recs=%d err=%v", start, len(recs), err)
	}
	records, bytesN, syncs := l.Stats()
	if records != 3 || syncs != 2 || bytesN == 0 {
		t.Fatalf("stats records=%d bytes=%d syncs=%d", records, bytesN, syncs)
	}
}

func TestRotateRefusesUnsyncedBuffer(t *testing.T) {
	l, err := Create(filepath.Join(t.TempDir(), SegmentName), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(TypeCheckpoint, nil)
	if err := l.Rotate(1); err == nil {
		t.Fatal("Rotate succeeded with unsynced records")
	}
}

func TestAbortDropsBufferedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), SegmentName)
	l, err := Create(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(TypeCheckpoint, nil)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Append(TypeCheckpoint, nil) // never synced
	l.Abort()
	data, _ := os.ReadFile(path)
	_, recs, _, err := DecodeSegment(data)
	if err != nil || len(recs) != 1 {
		t.Fatalf("aborted segment holds %d records (err=%v), want the 1 synced", len(recs), err)
	}
}

func TestBodyCodecs(t *testing.T) {
	a := Admission{ID: 3, Origin: 11, Dest: 12, Release: 5.25, Deadline: 600, Penalty: 80, Capacity: 4}
	ra, err := DecodeAdmission(AppendAdmission(nil, a))
	if err != nil || ra != a {
		t.Fatalf("admission round trip: %+v err=%v", ra, err)
	}
	if _, err := DecodeAdmission([]byte{1, 2, 3}); err == nil {
		t.Fatal("short admission accepted")
	}

	d := Decision{ID: 3, Accepted: false, Worker: -1, Delta: 0, SimTime: 5.25}
	rd, err := DecodeDecision(AppendDecision(nil, d))
	if err != nil || rd != d {
		t.Fatalf("decision round trip: %+v err=%v", rd, err)
	}
	if _, err := DecodeDecision(append(AppendDecision(nil, d)[:4], 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0)); err == nil {
		t.Fatal("decision with accepted byte 2 accepted")
	}

	tr := Traffic{At: 300, Epoch: 2, Updates: []roadnet.TrafficUpdate{{Factor: 2, BBox: []float64{0, 0, 1, 1}}}}
	body, err := AppendTraffic(nil, tr)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeTraffic(body)
	if err != nil || rt.At != tr.At || rt.Epoch != tr.Epoch || len(rt.Updates) != 1 || rt.Updates[0].Factor != 2 {
		t.Fatalf("traffic round trip: %+v err=%v", rt, err)
	}
	if _, err := DecodeTraffic(body[:8]); err == nil {
		t.Fatal("short traffic accepted")
	}
	nanAt := append([]byte(nil), body...)
	for i := 0; i < 8; i++ {
		nanAt[i] = 0xff
	}
	if _, err := DecodeTraffic(nanAt); err == nil {
		t.Fatal("NaN traffic time accepted")
	}
	empty, _ := AppendTraffic(nil, Traffic{At: 1, Epoch: 1})
	if _, err := DecodeTraffic(empty); err == nil {
		t.Fatal("empty traffic batch accepted")
	}

	if c, sh, err := DecodeBatch(AppendBatch(nil, 17, 0)); err != nil || c != 17 || sh != 0 {
		t.Fatalf("batch round trip: pairs=%d sheds=%d err=%v", c, sh, err)
	}
	if b := AppendBatch(nil, 17, 0); len(b) != 4 {
		t.Fatalf("shed-free batch body is %d bytes, want the legacy 4", len(b))
	}
	if c, sh, err := DecodeBatch(AppendBatch(nil, 5, 3)); err != nil || c != 5 || sh != 3 {
		t.Fatalf("batch+shed round trip: pairs=%d sheds=%d err=%v", c, sh, err)
	}
	if c, sh, err := DecodeBatch(AppendBatch(nil, 0, 2)); err != nil || c != 0 || sh != 2 {
		t.Fatalf("shed-only batch round trip: pairs=%d sheds=%d err=%v", c, sh, err)
	}
	if _, _, err := DecodeBatch(AppendBatch(nil, 0, 0)); err == nil {
		t.Fatal("zero batch count accepted")
	}

	sh := Shed{ID: 9, Penalty: 41.5, SimTime: 120.25}
	rsh, err := DecodeShed(AppendShed(nil, sh))
	if err != nil || rsh != sh {
		t.Fatalf("shed round trip: %+v err=%v", rsh, err)
	}
	if _, err := DecodeShed([]byte{1, 2, 3}); err == nil {
		t.Fatal("short shed accepted")
	}
}

func TestFloatBitExactness(t *testing.T) {
	// Delta equality across recovery is bit-level; the codec must not
	// disturb a single mantissa bit.
	v := math.Nextafter(182.5, 200)
	d := Decision{ID: 1, Accepted: true, Worker: 2, Delta: v, SimTime: v}
	rd, err := DecodeDecision(AppendDecision(nil, d))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(rd.Delta) != math.Float64bits(v) || math.Float64bits(rd.SimTime) != math.Float64bits(v) {
		t.Fatal("float bits disturbed by codec")
	}
}
