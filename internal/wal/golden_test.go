package wal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/roadnet"
)

var update = flag.Bool("update", false, "rewrite the golden WAL fixture")

// goldenRecords is a fixed event sequence covering every record type:
// one checkpointed segment tail with a two-request commit group and a
// traffic epoch advance. The encoding is pinned byte-stable by
// testdata/golden.wal (FORMATS.md §8); regenerate after a deliberate
// format change with:
//
//	go test ./internal/wal -run Golden -update
func goldenRecords(t *testing.T) []Record {
	t.Helper()
	tr, err := AppendTraffic(nil, Traffic{
		At:    300,
		Epoch: 1,
		Updates: []roadnet.TrafficUpdate{
			{Factor: 1.5},
			{Factor: 2.5, Class: "motorway", BBox: []float64{0, 0, 4000, 4000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return []Record{
		{LSN: 3, Type: TypeBatch, Body: AppendBatch(nil, 2, 0)},
		{LSN: 4, Type: TypeAdmission, Body: AppendAdmission(nil, Admission{
			ID: 7, Origin: 42, Dest: 9, Release: 120.5, Deadline: 700, Penalty: 320.25, Capacity: 2})},
		{LSN: 5, Type: TypeDecision, Body: AppendDecision(nil, Decision{
			ID: 7, Accepted: true, Worker: 3, Delta: 182.125, SimTime: 120.5})},
		{LSN: 6, Type: TypeAdmission, Body: AppendAdmission(nil, Admission{
			ID: 8, Origin: 9, Dest: 42, Release: 120.5, Deadline: 400, Penalty: 95, Capacity: 1})},
		{LSN: 7, Type: TypeDecision, Body: AppendDecision(nil, Decision{
			ID: 8, Accepted: false, Worker: -1, Delta: 0, SimTime: 120.5})},
		{LSN: 8, Type: TypeTraffic, Body: tr},
		// An overloaded commit group: one shed (applied on recovery) ahead
		// of one admission/decision pair, under the 8-byte batch header.
		{LSN: 9, Type: TypeBatch, Body: AppendBatch(nil, 1, 1)},
		{LSN: 10, Type: TypeShed, Body: AppendShed(nil, Shed{
			ID: 9, Penalty: 41.5, SimTime: 120.5})},
		{LSN: 11, Type: TypeAdmission, Body: AppendAdmission(nil, Admission{
			ID: 10, Origin: 42, Dest: 9, Release: 121, Deadline: 800, Penalty: 200, Capacity: 1})},
		{LSN: 12, Type: TypeDecision, Body: AppendDecision(nil, Decision{
			ID: 10, Accepted: true, Worker: 1, Delta: 96.5, SimTime: 121})},
		{LSN: 13, Type: TypeCheckpoint, Body: nil},
	}
}

func TestGoldenSegment(t *testing.T) {
	want := buildSegment(3, goldenRecords(t))
	path := filepath.Join("testdata", "golden.wal")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden WAL fixture drifted: encoding %d bytes != fixture %d bytes; "+
			"if the format change is deliberate, regenerate with -update and document it in FORMATS.md §8",
			len(want), len(got))
	}
	start, recs, clean, err := DecodeSegment(got)
	if err != nil {
		t.Fatal(err)
	}
	if start != 3 || clean != len(got) || len(recs) != 11 {
		t.Fatalf("golden decode: start=%d clean=%d recs=%d", start, clean, len(recs))
	}
	if d, err := DecodeDecision(recs[2].Body); err != nil || d.Delta != 182.125 {
		t.Fatalf("golden decision: %+v err=%v", d, err)
	}
	if tr, err := DecodeTraffic(recs[5].Body); err != nil || tr.Epoch != 1 || len(tr.Updates) != 2 {
		t.Fatalf("golden traffic: %+v err=%v", tr, err)
	}
	if p, sh, err := DecodeBatch(recs[6].Body); err != nil || p != 1 || sh != 1 {
		t.Fatalf("golden overload batch: pairs=%d sheds=%d err=%v", p, sh, err)
	}
	if sh, err := DecodeShed(recs[7].Body); err != nil || sh.ID != 9 || sh.Penalty != 41.5 {
		t.Fatalf("golden shed: %+v err=%v", sh, err)
	}
}
