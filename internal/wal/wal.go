// Package wal is the write-ahead log of the online dispatch service: an
// append-only, length-prefixed, CRC-framed record of every externally
// visible event the server consumes — admission batches, per-request
// admissions and decisions, traffic updates and snapshot checkpoints
// (FORMATS.md §8). The serve layer appends events as it processes them
// and fsyncs once per admission batch (group commit), so recovery can
// reconstruct the exact serving state by replaying the tail through the
// same event-loop code path as live traffic (DESIGN.md §13).
//
// # Framing
//
// A segment file starts with a fixed header:
//
//	magic    [8]byte  "URPSMWAL"
//	version  uint32   1
//	startLSN uint64   LSN of the first record in this segment
//
// followed by records, each framed as:
//
//	length  uint32  byte length of the payload (9 + len(body))
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload         lsn uint64 | type byte | body
//
// All integers are little-endian. LSNs are assigned consecutively: the
// i-th record of a segment has LSN startLSN+i, and the reader rejects
// anything else. A torn or truncated tail — short frame, bad CRC, bad
// length, non-consecutive LSN — is not an error: the reader stops at the
// last complete record and reports the clean byte offset, so recovery can
// discard the tail and truncate there. Only a mangled segment header is a
// hard error, because then nothing about the file can be trusted.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Record type bytes. The zero type is reserved as invalid so an
// all-zeroes torn region can never frame-check.
const (
	// TypeBatch opens a commit group of Count admission/decision pairs;
	// the group is the atomic unit of recovery (an incomplete trailing
	// group is discarded whole, since its decisions can never have been
	// acknowledged — the ack happens only after the group's fsync).
	TypeBatch byte = 1
	// TypeAdmission is one request as it entered planning (release
	// already resolved against the event clock's "now" default).
	TypeAdmission byte = 2
	// TypeDecision is the planner's verdict for the immediately
	// preceding admission; recovery regenerates it by replay and treats
	// any mismatch as corruption.
	TypeDecision byte = 3
	// TypeTraffic is one applied traffic epoch advance: effective time,
	// resulting epoch, and the update batch in the PR 5 JSON encoding.
	TypeTraffic byte = 4
	// TypeCheckpoint marks that a durable snapshot checkpoint covers
	// every record up to and including this one; it closes a segment.
	TypeCheckpoint byte = 5
	// TypeShed is one request rejected by the overload shed policy
	// before planning (HTTP 429). Shed records belong to the commit group
	// opened by the preceding TypeBatch and are *applied* on recovery,
	// not re-derived: the queue occupancy that forced the shed is timing
	// state the log deliberately does not capture, so the log is the only
	// authority on which requests were shed.
	TypeShed byte = 6
)

const (
	magic = "URPSMWAL"
	// SegmentVersion is the current on-disk segment format version.
	SegmentVersion = 1
	// HeaderSize is the byte length of the segment header.
	HeaderSize = 8 + 4 + 8
	// frameOverhead is the length+crc prefix of each record frame.
	frameOverhead = 8
	// payloadPrefix is the lsn+type prefix of each record payload.
	payloadPrefix = 9
	// MaxBodyBytes bounds one record body; a frame declaring more is
	// treated as torn garbage rather than allocated.
	MaxBodyBytes = 1 << 26
)

// castagnoli is the CRC-32C table (the polynomial used by ext4, iSCSI
// and most storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one decoded WAL record. Body aliases the scanned buffer; it
// is valid as long as the buffer is.
type Record struct {
	LSN  uint64
	Type byte
	Body []byte
}

// AppendHeader appends a segment header to dst.
func AppendHeader(dst []byte, startLSN uint64) []byte {
	dst = append(dst, magic...)
	dst = binary.LittleEndian.AppendUint32(dst, SegmentVersion)
	dst = binary.LittleEndian.AppendUint64(dst, startLSN)
	return dst
}

// DecodeHeader checks the magic and version of a segment and returns its
// start LSN.
func DecodeHeader(data []byte) (startLSN uint64, err error) {
	if len(data) < HeaderSize {
		return 0, fmt.Errorf("wal: short segment header (%d bytes)", len(data))
	}
	if string(data[:8]) != magic {
		return 0, fmt.Errorf("wal: bad magic %q", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != SegmentVersion {
		return 0, fmt.Errorf("wal: unsupported segment version %d (want %d)", v, SegmentVersion)
	}
	return binary.LittleEndian.Uint64(data[12:20]), nil
}

// AppendRecord appends one framed record to dst.
func AppendRecord(dst []byte, lsn uint64, typ byte, body []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadPrefix+len(body)))
	crcAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // crc placeholder
	payloadAt := len(dst)
	dst = binary.LittleEndian.AppendUint64(dst, lsn)
	dst = append(dst, typ)
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[payloadAt:], castagnoli)
	binary.LittleEndian.PutUint32(dst[crcAt:], crc)
	return dst
}

// Scanner iterates the records of a segment, stopping cleanly at the
// first torn or invalid frame.
type Scanner struct {
	data  []byte
	off   int    // offset just past the last complete record
	next  uint64 // expected LSN of the next record
	start uint64
	rec   Record
}

// NewScanner validates the segment header of data and returns a scanner
// positioned at the first record.
func NewScanner(data []byte) (*Scanner, error) {
	start, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	return &Scanner{data: data, off: HeaderSize, next: start, start: start}, nil
}

// StartLSN returns the segment's first LSN (from the header).
func (s *Scanner) StartLSN() uint64 { return s.start }

// Offset returns the byte offset just past the last complete record —
// the length recovery should truncate a torn segment to.
func (s *Scanner) Offset() int { return s.off }

// Next decodes the next record. It returns false at the end of the
// complete prefix: clean EOF, short frame, bad length, bad CRC,
// non-consecutive LSN or reserved type — all are treated as the torn
// tail, never as a panic.
func (s *Scanner) Next() bool {
	rest := s.data[s.off:]
	if len(rest) < frameOverhead {
		return false
	}
	n := binary.LittleEndian.Uint32(rest[:4])
	if n < payloadPrefix || n > payloadPrefix+MaxBodyBytes {
		return false
	}
	if uint32(len(rest)-frameOverhead) < n {
		return false
	}
	payload := rest[frameOverhead : frameOverhead+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
		return false
	}
	lsn := binary.LittleEndian.Uint64(payload[:8])
	typ := payload[8]
	if lsn != s.next || typ == 0 {
		return false
	}
	s.rec = Record{LSN: lsn, Type: typ, Body: payload[payloadPrefix:]}
	s.off += frameOverhead + int(n)
	s.next++
	return true
}

// Record returns the record decoded by the last successful Next.
func (s *Scanner) Record() Record { return s.rec }

// DecodeSegment decodes a whole segment: its start LSN, every complete
// record, and the clean byte offset (len(data) when nothing is torn).
// Arbitrary bytes never panic; only an invalid header errors.
func DecodeSegment(data []byte) (startLSN uint64, recs []Record, clean int, err error) {
	s, err := NewScanner(data)
	if err != nil {
		return 0, nil, 0, err
	}
	for s.Next() {
		recs = append(recs, s.Record())
	}
	return s.start, recs, s.Offset(), nil
}

// SegmentName is the live segment's file name inside a WAL directory.
const SegmentName = "wal.log"

// CheckpointName is the durable snapshot checkpoint's file name inside a
// WAL directory (a serve snapshot, FORMATS.md §5, carrying wal_lsn).
const CheckpointName = "checkpoint.json"

// Log is the live WAL segment writer. Append buffers records in memory;
// Sync writes and fsyncs them in one batch (group commit). The steady
// state appends reuse one grown-never-shrunk buffer, so logging adds no
// per-request allocations to the planning path.
type Log struct {
	path    string
	f       *os.File
	buf     []byte // framed records not yet written to the file
	next    uint64 // LSN of the next record
	size    int64  // segment bytes including buffered records
	records uint64
	bytes   uint64
	syncs   uint64
}

// Create atomically creates a fresh segment at path (temp + fsync +
// rename + parent-dir fsync) whose first record will carry startLSN, and
// returns it open for appending.
func Create(path string, startLSN uint64) (*Log, error) {
	f, err := createSegmentFile(path, startLSN)
	if err != nil {
		return nil, err
	}
	return &Log{path: path, f: f, next: startLSN, size: HeaderSize}, nil
}

func createSegmentFile(path string, startLSN uint64) (*os.File, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	hdr := AppendHeader(make([]byte, 0, HeaderSize), startLSN)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	// The fd still refers to the renamed file; fsync the directory so the
	// rename itself survives power loss.
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// SyncDir fsyncs a directory, making renames and creates inside it
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Append buffers one record and returns its LSN. The record is not
// durable (or even written) until the next Sync.
func (l *Log) Append(typ byte, body []byte) uint64 {
	lsn := l.next
	before := len(l.buf)
	l.buf = AppendRecord(l.buf, lsn, typ, body)
	n := len(l.buf) - before
	l.next++
	l.size += int64(n)
	l.records++
	l.bytes += uint64(n)
	return lsn
}

// Sync writes every buffered record and fsyncs the segment — one group
// commit. A no-op when nothing is buffered.
func (l *Log) Sync() error {
	if len(l.buf) == 0 {
		return nil
	}
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.buf = l.buf[:0]
	l.syncs++
	return nil
}

// Rotate replaces the segment with a fresh one starting at startLSN,
// atomically (the old segment stays intact until the new one is durably
// in place). Buffered records must have been synced first.
func (l *Log) Rotate(startLSN uint64) error {
	if len(l.buf) != 0 {
		return fmt.Errorf("wal: rotate with %d unsynced bytes", len(l.buf))
	}
	f, err := createSegmentFile(l.path, startLSN)
	if err != nil {
		return err
	}
	l.f.Close()
	l.f = f
	l.next = startLSN
	l.size = HeaderSize
	return nil
}

// NextLSN returns the LSN the next Append will get.
func (l *Log) NextLSN() uint64 { return l.next }

// Size returns the segment length in bytes, buffered records included.
func (l *Log) Size() int64 { return l.size }

// Stats returns lifetime counters: records appended, record bytes
// appended, and syncs performed (across rotations).
func (l *Log) Stats() (records, bytes, syncs uint64) {
	return l.records, l.bytes, l.syncs
}

// Close syncs any buffered records and closes the segment.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Abort closes the segment WITHOUT syncing buffered records — the
// in-process equivalent of kill -9, used by crash tests.
func (l *Log) Abort() { l.f.Close() }

// Admission is the TypeAdmission body: one request as admitted, release
// already resolved. The fixed 48-byte layout is id, origin, dest,
// release, deadline, penalty, capacity.
type Admission struct {
	ID       int32
	Origin   int64
	Dest     int64
	Release  float64
	Deadline float64
	Penalty  float64
	Capacity int32
}

const admissionLen = 4 + 8 + 8 + 8 + 8 + 8 + 4

// AppendAdmission appends an admission body to dst.
func AppendAdmission(dst []byte, a Admission) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.ID))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Origin))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Dest))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Release))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Deadline))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.Penalty))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(a.Capacity))
	return dst
}

// DecodeAdmission parses an admission body.
func DecodeAdmission(body []byte) (Admission, error) {
	if len(body) != admissionLen {
		return Admission{}, fmt.Errorf("wal: admission body is %d bytes (want %d)", len(body), admissionLen)
	}
	return Admission{
		ID:       int32(binary.LittleEndian.Uint32(body[0:])),
		Origin:   int64(binary.LittleEndian.Uint64(body[4:])),
		Dest:     int64(binary.LittleEndian.Uint64(body[12:])),
		Release:  math.Float64frombits(binary.LittleEndian.Uint64(body[20:])),
		Deadline: math.Float64frombits(binary.LittleEndian.Uint64(body[28:])),
		Penalty:  math.Float64frombits(binary.LittleEndian.Uint64(body[36:])),
		Capacity: int32(binary.LittleEndian.Uint32(body[44:])),
	}, nil
}

// Decision is the TypeDecision body: the planner's verdict for the
// preceding admission. The fixed 25-byte layout is id, accepted, worker,
// delta, simtime (float bits, so equality is bit-exact).
type Decision struct {
	ID       int32
	Accepted bool
	Worker   int32
	Delta    float64
	SimTime  float64
}

const decisionLen = 4 + 1 + 4 + 8 + 8

// AppendDecision appends a decision body to dst.
func AppendDecision(dst []byte, d Decision) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.ID))
	acc := byte(0)
	if d.Accepted {
		acc = 1
	}
	dst = append(dst, acc)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Worker))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.Delta))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.SimTime))
	return dst
}

// DecodeDecision parses a decision body.
func DecodeDecision(body []byte) (Decision, error) {
	if len(body) != decisionLen {
		return Decision{}, fmt.Errorf("wal: decision body is %d bytes (want %d)", len(body), decisionLen)
	}
	if body[4] > 1 {
		return Decision{}, fmt.Errorf("wal: decision accepted byte %d", body[4])
	}
	return Decision{
		ID:       int32(binary.LittleEndian.Uint32(body[0:])),
		Accepted: body[4] == 1,
		Worker:   int32(binary.LittleEndian.Uint32(body[5:])),
		Delta:    math.Float64frombits(binary.LittleEndian.Uint64(body[9:])),
		SimTime:  math.Float64frombits(binary.LittleEndian.Uint64(body[17:])),
	}, nil
}

// AppendBatch appends a TypeBatch body: the commit group's
// admission/decision pair count, plus its shed count. A group without
// sheds keeps the original 4-byte encoding, so segments written before
// shedding existed and segments written by a server that never sheds are
// byte-identical to the v1 format; a group with sheds appends a second
// uint32.
func AppendBatch(dst []byte, pairs, sheds int) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(pairs))
	if sheds > 0 {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(sheds))
	}
	return dst
}

// DecodeBatch parses a batch body, accepting both the 4-byte pair-only
// form and the 8-byte pairs+sheds form.
func DecodeBatch(body []byte) (pairs, sheds int, err error) {
	switch len(body) {
	case 4:
	case 8:
		n := binary.LittleEndian.Uint32(body[4:])
		if n == 0 || n > 1<<24 {
			return 0, 0, fmt.Errorf("wal: batch shed count %d out of range", n)
		}
		sheds = int(n)
	default:
		return 0, 0, fmt.Errorf("wal: batch body is %d bytes (want 4 or 8)", len(body))
	}
	n := binary.LittleEndian.Uint32(body)
	if n > 1<<24 || (n == 0 && sheds == 0) {
		return 0, 0, fmt.Errorf("wal: batch pair count %d out of range", n)
	}
	return int(n), sheds, nil
}

// Shed is the TypeShed body: one request rejected by the overload
// policy. The fixed 20-byte layout is id, penalty, simtime (float bits,
// so the Eq. 2 penalty the platform paid and the event-clock stamp are
// bit-exact across recovery).
type Shed struct {
	ID      int32
	Penalty float64
	SimTime float64
}

const shedLen = 4 + 8 + 8

// AppendShed appends a shed body to dst.
func AppendShed(dst []byte, sh Shed) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(sh.ID))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(sh.Penalty))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(sh.SimTime))
	return dst
}

// DecodeShed parses a shed body.
func DecodeShed(body []byte) (Shed, error) {
	if len(body) != shedLen {
		return Shed{}, fmt.Errorf("wal: shed body is %d bytes (want %d)", len(body), shedLen)
	}
	return Shed{
		ID:      int32(binary.LittleEndian.Uint32(body[0:])),
		Penalty: math.Float64frombits(binary.LittleEndian.Uint64(body[4:])),
		SimTime: math.Float64frombits(binary.LittleEndian.Uint64(body[12:])),
	}, nil
}
