package geo

import (
	"math"
	"math/rand"
	"testing"
)

// TestProjectionRoundTrip checks forward→inverse round trips at city
// scale: the equirectangular projection is linear, so recovered
// coordinates must match to well under a micrometer's worth of degrees.
func TestProjectionRoundTrip(t *testing.T) {
	centers := []struct{ lat0, lon0 float64 }{
		{30.66, 104.06},  // Chengdu
		{40.73, -73.94},  // NYC
		{-33.87, 151.21}, // Sydney (southern hemisphere)
		{64.15, -21.94},  // Reykjavik (high latitude)
		{0, 0},           // equator/prime meridian
	}
	rng := rand.New(rand.NewSource(42))
	const degTol = 1e-9 // ~0.1 mm of latitude
	for _, c := range centers {
		p := NewProjection(c.lat0, c.lon0)
		for i := 0; i < 200; i++ {
			// Points within ~±0.3° of the center, a metro-area extent.
			lat := c.lat0 + (rng.Float64()-0.5)*0.6
			lon := c.lon0 + (rng.Float64()-0.5)*0.6
			pt := p.Point(lat, lon)
			gotLat, gotLon := p.LatLon(pt)
			if math.Abs(gotLat-lat) > degTol || math.Abs(gotLon-lon) > degTol {
				t.Fatalf("center (%v,%v): round trip (%v,%v) -> (%v,%v), error (%g,%g) deg",
					c.lat0, c.lon0, lat, lon, gotLat, gotLon,
					gotLat-lat, gotLon-lon)
			}
		}
	}
}

// TestProjectionForwardError bounds the projection's metric distortion
// against the haversine ground truth: under 1% at city scale (≤ ~40 km),
// which is the accuracy contract the import pipeline relies on for its
// Euclidean lower bounds.
func TestProjectionForwardError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []struct{ lat0, lon0 float64 }{
		{30.66, 104.06}, {40.73, -73.94}, {-33.87, 151.21},
	} {
		p := NewProjection(c.lat0, c.lon0)
		for i := 0; i < 500; i++ {
			lat1 := c.lat0 + (rng.Float64()-0.5)*0.3
			lon1 := c.lon0 + (rng.Float64()-0.5)*0.3
			lat2 := c.lat0 + (rng.Float64()-0.5)*0.3
			lon2 := c.lon0 + (rng.Float64()-0.5)*0.3
			planar := p.Point(lat1, lon1).Dist(p.Point(lat2, lon2))
			truth := Haversine(lat1, lon1, lat2, lon2)
			if truth < 100 {
				continue // relative error is meaningless at sub-block range
			}
			if rel := math.Abs(planar-truth) / truth; rel > 0.01 {
				t.Fatalf("center (%v,%v): distance (%v,%v)-(%v,%v): planar %.1fm vs haversine %.1fm (%.3f%% error)",
					c.lat0, c.lon0, lat1, lon1, lat2, lon2, planar, truth, 100*rel)
			}
		}
	}
}

// TestPlanarProjectionPassthrough checks the identity mode both ways.
func TestPlanarProjectionPassthrough(t *testing.T) {
	p := PlanarProjection()
	pt := p.Point(1234.5, -678.25) // (y, x) argument order
	if pt.X != -678.25 || pt.Y != 1234.5 {
		t.Fatalf("planar forward changed values: %+v", pt)
	}
	y, x := p.LatLon(pt)
	if y != 1234.5 || x != -678.25 {
		t.Fatalf("planar inverse changed values: (%v,%v)", y, x)
	}
}

// TestInverseLatLonMatchesMethod pins the free function and the method to
// each other.
func TestInverseLatLonMatchesMethod(t *testing.T) {
	p := NewProjection(30.66, 104.06)
	pt := p.Point(30.7, 104.1)
	mLat, mLon := p.LatLon(pt)
	fLat, fLon := InverseLatLon(pt, 30.66, 104.06)
	if mLat != fLat || mLon != fLon {
		t.Fatalf("method (%v,%v) != function (%v,%v)", mLat, mLon, fLat, fLon)
	}
}
