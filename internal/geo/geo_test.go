package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDistBasic(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 0}, Point{0, 2}, 2.5},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Dist(%v,%v)=%v want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.Abs(ax) > 1e9 || math.Abs(ay) > 1e9 || math.Abs(bx) > 1e9 || math.Abs(by) > 1e9 {
			return true // beyond planetary scale; irrelevant and overflow-prone
		}
		p, q := Point{ax, ay}, Point{bx, by}
		return almostEq(p.Dist(q), q.Dist(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a := Point{rng.Float64() * 1e4, rng.Float64() * 1e4}
		b := Point{rng.Float64() * 1e4, rng.Float64() * 1e4}
		c := Point{rng.Float64() * 1e4, rng.Float64() * 1e4}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

func TestDistSqMatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.Abs(ax) > 1e6 || math.Abs(ay) > 1e6 || math.Abs(bx) > 1e6 || math.Abs(by) > 1e6 {
			return true // avoid overflow-scale inputs irrelevant at city scale
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d := p.Dist(q)
		return almostEq(d*d, p.DistSq(q), 1e-6*(1+d*d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add=%v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub=%v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale=%v", got)
	}
}

func TestLerp(t *testing.T) {
	p := Point{0, 0}
	q := Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0)=%v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1)=%v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp(0.5)=%v", got)
	}
}

func TestBBox(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	b := NewBBox(pts)
	if b.Min != (Point{-2, -1}) || b.Max != (Point{4, 5}) {
		t.Fatalf("bbox=%+v", b)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bbox should contain %v", p)
		}
	}
	if b.Contains(Point{10, 0}) {
		t.Error("bbox should not contain (10,0)")
	}
	if !almostEq(b.Width(), 6, 1e-12) || !almostEq(b.Height(), 6, 1e-12) {
		t.Errorf("width=%v height=%v", b.Width(), b.Height())
	}
	if c := b.Center(); !almostEq(c.X, 1, 1e-12) || !almostEq(c.Y, 2, 1e-12) {
		t.Errorf("center=%v", c)
	}
}

func TestBBoxEmpty(t *testing.T) {
	b := NewBBox(nil)
	if b != (BBox{}) {
		t.Errorf("empty bbox=%+v", b)
	}
}

func TestBBoxExtendIsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := BBox{Min: Point{0, 0}, Max: Point{0, 0}}
	for i := 0; i < 500; i++ {
		p := Point{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		nb := b.Extend(p)
		if !nb.Contains(p) {
			t.Fatalf("extended bbox misses its own point %v", p)
		}
		if nb.Width() < b.Width() || nb.Height() < b.Height() {
			t.Fatalf("Extend shrank bbox")
		}
		b = nb
	}
}

func TestHaversineKnown(t *testing.T) {
	// London to Paris, roughly 343 km.
	d := Haversine(51.5074, -0.1278, 48.8566, 2.3522)
	if d < 330e3 || d > 350e3 {
		t.Errorf("London-Paris haversine=%v", d)
	}
	// Zero distance.
	if d := Haversine(40, -70, 40, -70); d != 0 {
		t.Errorf("self distance=%v", d)
	}
}

func TestHaversineSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		la1 := rng.Float64()*160 - 80
		lo1 := rng.Float64()*360 - 180
		la2 := rng.Float64()*160 - 80
		lo2 := rng.Float64()*360 - 180
		a := Haversine(la1, lo1, la2, lo2)
		b := Haversine(la2, lo2, la1, lo1)
		if !almostEq(a, b, 1e-6*(1+a)) {
			t.Fatalf("asymmetric haversine: %v vs %v", a, b)
		}
	}
}

func TestProjectLatLonLocalAccuracy(t *testing.T) {
	// Near the projection center, planar distance should match haversine
	// closely (sub-1% at ~10 km scale).
	lat0, lon0 := 40.75, -73.99 // Manhattan-ish
	a := ProjectLatLon(40.76, -74.00, lat0, lon0)
	b := ProjectLatLon(40.70, -73.95, lat0, lon0)
	planar := a.Dist(b)
	sphere := Haversine(40.76, -74.00, 40.70, -73.95)
	if math.Abs(planar-sphere)/sphere > 0.01 {
		t.Errorf("projection error too large: planar=%v sphere=%v", planar, sphere)
	}
}

func TestRoadClassSpeeds(t *testing.T) {
	if Motorway.Speed() <= Arterial.Speed() || Arterial.Speed() <= Collector.Speed() ||
		Collector.Speed() <= Residential.Speed() {
		t.Error("road class speeds must be strictly decreasing")
	}
	// Paper quotes ~23 m/s motorway and ~6 m/s residential.
	if s := Motorway.Speed(); s < 20 || s > 25 {
		t.Errorf("motorway speed=%v", s)
	}
	if s := Residential.Speed(); s < 5 || s > 8 {
		t.Errorf("residential speed=%v", s)
	}
	if MaxSpeed() != Motorway.Speed() {
		t.Error("MaxSpeed should be motorway speed")
	}
	// Out-of-range class falls back to the slowest class.
	if RoadClass(250).Speed() != Residential.Speed() {
		t.Error("unknown class should use residential speed")
	}
}

func TestTravelTime(t *testing.T) {
	// 1000 m on a residential road at 30 km/h * 0.8 ≈ 6.67 m/s → 150 s.
	tt := Residential.TravelTime(1000)
	if !almostEq(tt, 150, 1e-9) {
		t.Errorf("travel time=%v want 150", tt)
	}
	for c := RoadClass(0); c < NumRoadClasses; c++ {
		if got := c.TravelTime(c.Speed()); !almostEq(got, 1, 1e-9) {
			t.Errorf("%v: time for one speed-length=%v want 1", c, got)
		}
	}
}

func TestRoadClassString(t *testing.T) {
	want := map[RoadClass]string{
		Motorway: "motorway", Arterial: "arterial",
		Collector: "collector", Residential: "residential",
		RoadClass(99): "unknown",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("String(%d)=%q want %q", c, c.String(), s)
		}
	}
}

func TestParseRoadClassRoundTrip(t *testing.T) {
	for c := RoadClass(0); c < NumRoadClasses; c++ {
		got, err := ParseRoadClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseRoadClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	for _, bad := range []string{"", "cowpath", "Motorway", "unknown"} {
		if _, err := ParseRoadClass(bad); err == nil {
			t.Errorf("ParseRoadClass(%q) accepted", bad)
		}
	}
}
