package geo

// Projection maps source coordinates into the local planar frame shared by
// the road network and the spatial indexes. Imported datasets come in two
// flavors: geographic (latitude/longitude in degrees, e.g. DIMACS road
// networks and trip records) and already-planar (our own DIMACS exports,
// which store centimeters). Carrying the projection alongside an imported
// graph lets the trip-record adapter place pickup/drop-off coordinates in
// exactly the frame the graph's vertices live in.
type Projection struct {
	// Lat0, Lon0 is the projection center in degrees (geographic mode).
	Lat0, Lon0 float64
	// Planar marks a source whose coordinates are already planar meters;
	// Point then passes them through unchanged.
	Planar bool
}

// PlanarProjection returns the identity projection for sources that are
// already expressed in planar meters.
func PlanarProjection() Projection { return Projection{Planar: true} }

// NewProjection returns an equirectangular projection centered at
// (lat0, lon0) degrees.
func NewProjection(lat0, lon0 float64) Projection {
	return Projection{Lat0: lat0, Lon0: lon0}
}

// Point maps a coordinate pair to the planar frame. In geographic mode the
// arguments are (latitude, longitude) in degrees; in planar mode they are
// (y, x) in meters, mirroring the lat-first argument order so callers can
// treat both modes uniformly.
func (p Projection) Point(lat, lon float64) Point {
	if p.Planar {
		return Point{X: lon, Y: lat}
	}
	return ProjectLatLon(lat, lon, p.Lat0, p.Lon0)
}

// LatLon inverts Point, mapping a planar point back to the source frame:
// (latitude, longitude) degrees in geographic mode, (y, x) meters in
// planar mode. The equirectangular projection is linear, so the inverse
// is exact up to float rounding — except within a whisker of the poles,
// where the cos(lat0) scale factor degenerates (no road network lives
// there).
func (p Projection) LatLon(pt Point) (lat, lon float64) {
	if p.Planar {
		return pt.Y, pt.X
	}
	return InverseLatLon(pt, p.Lat0, p.Lon0)
}
