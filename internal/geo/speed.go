package geo

import "fmt"

// RoadClass categorizes an edge of the road network. Classes determine the
// travel speed used to convert edge length (meters) into travel time
// (seconds), following the paper's setup of assigning each road type 80 %
// of its maximum legal speed.
type RoadClass uint8

const (
	// Motorway is a limited-access highway.
	Motorway RoadClass = iota
	// Arterial is a primary urban through-road.
	Arterial
	// Collector distributes traffic between arterials and local streets.
	Collector
	// Residential is a local street.
	Residential

	// NumRoadClasses is the number of distinct road classes.
	NumRoadClasses = 4
)

// String returns a human-readable class name.
func (c RoadClass) String() string {
	switch c {
	case Motorway:
		return "motorway"
	case Arterial:
		return "arterial"
	case Collector:
		return "collector"
	case Residential:
		return "residential"
	default:
		return "unknown"
	}
}

// ParseRoadClass is the inverse of RoadClass.String. It is how the
// traffic-profile parser and the /v1/traffic endpoint resolve the class
// selector of a slowdown rule.
func ParseRoadClass(s string) (RoadClass, error) {
	for c := RoadClass(0); c < NumRoadClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("geo: unknown road class %q", s)
}

// classSpeeds holds the travel speed in m/s for each road class: 80 % of
// typical legal limits (motorway 100 km/h, arterial 60, collector 50,
// residential 30), mirroring the paper's "80 % of the maximum legal speed
// limit" rule. The resulting motorway speed (~22.2 m/s) matches the
// paper's quoted "23 m/s in motorways"; residential (~6.7 m/s) matches its
// "6 m/s in residential streets".
var classSpeeds = [NumRoadClasses]float64{
	Motorway:    100.0 / 3.6 * 0.8,
	Arterial:    60.0 / 3.6 * 0.8,
	Collector:   50.0 / 3.6 * 0.8,
	Residential: 30.0 / 3.6 * 0.8,
}

// Speed returns the travel speed of class c in meters per second.
func (c RoadClass) Speed() float64 {
	if int(c) >= NumRoadClasses {
		return classSpeeds[Residential]
	}
	return classSpeeds[c]
}

// MaxSpeed is the fastest speed any road class allows, in m/s. Euclidean
// travel-time lower bounds divide straight-line distance by MaxSpeed, which
// guarantees euc(u,v)/MaxSpeed ≤ dis(u,v) when dis is a shortest travel
// time, as required by the decision phase (paper §5.1).
func MaxSpeed() float64 {
	max := classSpeeds[0]
	for _, s := range classSpeeds[1:] {
		if s > max {
			max = s
		}
	}
	return max
}

// TravelTime converts a length in meters on a road of class c into seconds.
func (c RoadClass) TravelTime(meters float64) float64 {
	return meters / c.Speed()
}
