// Package geo provides the planar geometry primitives shared by the road
// network, the spatial index and the Euclidean lower bounds of the decision
// phase.
//
// All coordinates are planar and expressed in meters. Synthetic city
// generation places vertices directly in a local metric plane, which keeps
// Euclidean distances exact lower bounds of network distances without
// geodesic corrections. A small haversine helper is provided for importing
// latitude/longitude data.
package geo

import "math"

// Point is a location in a local planar coordinate system, in meters.
type Point struct {
	X float64 // easting, meters
	Y float64 // northing, meters
}

// Dist returns the Euclidean distance between p and q in meters.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only callers such as nearest-neighbor
// searches.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Lerp linearly interpolates between p and q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max Point
}

// NewBBox returns the smallest bounding box containing all pts. The zero
// BBox is returned for an empty slice.
func NewBBox(pts []Point) BBox {
	if len(pts) == 0 {
		return BBox{}
	}
	b := BBox{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns b grown to contain p.
func (b BBox) Extend(p Point) BBox {
	if p.X < b.Min.X {
		b.Min.X = p.X
	}
	if p.Y < b.Min.Y {
		b.Min.Y = p.Y
	}
	if p.X > b.Max.X {
		b.Max.X = p.X
	}
	if p.Y > b.Max.Y {
		b.Max.Y = p.Y
	}
	return b
}

// Contains reports whether p lies inside b (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X && p.Y >= b.Min.Y && p.Y <= b.Max.Y
}

// Width returns the horizontal extent of b in meters.
func (b BBox) Width() float64 { return b.Max.X - b.Min.X }

// Height returns the vertical extent of b in meters.
func (b BBox) Height() float64 { return b.Max.Y - b.Min.Y }

// Center returns the center point of b.
func (b BBox) Center() Point {
	return Point{(b.Min.X + b.Max.X) / 2, (b.Min.Y + b.Max.Y) / 2}
}

const earthRadiusMeters = 6371008.8

// Haversine returns the great-circle distance in meters between two
// (latitude, longitude) pairs given in degrees. It is used when importing
// geographic data into the local planar frame.
func Haversine(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	phi1, phi2 := lat1*deg, lat2*deg
	dPhi := (lat2 - lat1) * deg
	dLam := (lon2 - lon1) * deg
	s1 := math.Sin(dPhi / 2)
	s2 := math.Sin(dLam / 2)
	a := s1*s1 + math.Cos(phi1)*math.Cos(phi2)*s2*s2
	return 2 * earthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(a)))
}

// ProjectLatLon converts a (lat, lon) pair in degrees to a local planar
// Point using an equirectangular projection centered at (lat0, lon0). Good
// to well under 1 % error at city scale, which is all the synthetic
// pipeline needs when replaying imported coordinates.
func ProjectLatLon(lat, lon, lat0, lon0 float64) Point {
	const deg = math.Pi / 180
	x := (lon - lon0) * deg * earthRadiusMeters * math.Cos(lat0*deg)
	y := (lat - lat0) * deg * earthRadiusMeters
	return Point{X: x, Y: y}
}

// InverseLatLon inverts ProjectLatLon for the same projection center,
// recovering the (lat, lon) degrees a planar point came from.
func InverseLatLon(p Point, lat0, lon0 float64) (lat, lon float64) {
	const deg = math.Pi / 180
	lat = lat0 + p.Y/(deg*earthRadiusMeters)
	lon = lon0 + p.X/(deg*earthRadiusMeters*math.Cos(lat0*deg))
	return lat, lon
}
