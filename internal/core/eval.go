package core

import (
	"math"
	"slices"
	"sync/atomic"
)

// This file factors the planning-phase scan of Algorithm 5 out of Greedy
// so the parallel dispatcher (internal/dispatch) can run the identical
// scan concurrently: candidates are yielded by a cursor (a plain counter
// serially, a shared atomic counter in parallel) and the Lemma 8 prune
// reads a bound that concurrent scans shrink cooperatively. The scan is
// written so that its outcome — after the (Δ*, WorkerID) merge — is
// bit-identical no matter how candidates are interleaved across scans.

// AtomicBound is a monotonically non-increasing shared float64: the best
// exact Δ* found so far across all scans of one planning phase. It starts
// at +Inf and only ever shrinks, so a reader can safely use a stale value
// — staleness makes pruning less aggressive, never incorrect.
type AtomicBound struct{ bits atomic.Uint64 }

// NewAtomicBound returns a bound initialized to +Inf.
func NewAtomicBound() *AtomicBound {
	b := &AtomicBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound.
func (b *AtomicBound) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Reset re-arms the bound to +Inf so it can be reused across planning
// phases without reallocating. Not safe to call while scans are running.
func (b *AtomicBound) Reset() { b.bits.Store(math.Float64bits(math.Inf(1))) }

// Shrink lowers the bound to v when v is smaller; safe for any number of
// concurrent callers.
func (b *AtomicBound) Shrink(v float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SortWorkerBounds orders lbs by (LBΔ*, WorkerID) ascending — the
// pruneGreedyDP scan order. The worker-ID tie-break makes the order a
// total one, so the sorted result is unique: serial and parallel planners
// (and any sorting algorithm) produce the identical permutation. The
// generic slices.SortFunc avoids sort.Slice's reflection and its per-call
// closure allocation on the hot path.
func SortWorkerBounds(lbs []WorkerBound) {
	slices.SortFunc(lbs, func(a, b WorkerBound) int {
		switch {
		case a.LB < b.LB:
			return -1
		case a.LB > b.LB:
			return 1
		}
		return int(a.Worker.ID - b.Worker.ID)
	})
}

// BetterCandidate reports whether candidate (w2, ins2) beats (w1, ins1)
// under the planner's deterministic (Δ*, WorkerID) tie-break. A nil w1
// always loses, a nil w2 never wins.
func BetterCandidate(w1 *Worker, ins1 Insertion, w2 *Worker, ins2 Insertion) bool {
	if w2 == nil {
		return false
	}
	if w1 == nil {
		return true
	}
	if ins2.Delta != ins1.Delta {
		return ins2.Delta < ins1.Delta
	}
	return w2.ID < w1.ID
}

// EvalCandidatesSerial is the serial planning-phase scan of Algorithm 5:
// the same loop as EvalCandidates without the shared-cursor/atomic
// machinery, so the serial planner's hot path — the paper's measured
// response time — pays no allocations or CAS operations. The two must
// stay in lockstep; the equivalence suite in internal/dispatch
// machine-checks that they select identical winners.
//
// sc is the scan's insertion arena; it must be exclusive to this call
// (Scratch asserts that), because the operator's auxiliary arrays live in
// it for the duration of each candidate evaluation.
//
// st, when non-nil, accumulates the scan's work counters (exact
// evaluations, feasible insertions, DP cells) for the observer hook; it
// never influences the scan itself.
func EvalCandidatesSerial(sc *Scratch, insert InsertionFunc, prune bool, lbs []WorkerBound,
	req *Request, L float64, dist DistFunc, st *PlanStats) (*Worker, Insertion) {
	var bestW *Worker
	bestIns := Infeasible
	for _, wb := range lbs {
		// Strictly-less break keeps the scan order-independent: every
		// worker whose exact Δ could tie the winner has LB ≤ Δ and is
		// therefore still scanned (Lemma 8).
		if prune && bestW != nil && bestIns.Delta < wb.LB {
			break
		}
		w := wb.Worker
		ins := insert(sc, &w.Route, w.Capacity, req, L, dist)
		if st != nil {
			st.observe(&w.Route, ins)
		}
		if !ins.OK {
			continue
		}
		if BetterCandidate(bestW, bestIns, w, ins) {
			bestW = w
			bestIns = ins
		}
	}
	return bestW, bestIns
}

// EvalCandidates evaluates exact insertions for the candidates of lbs
// yielded by next — a cursor returning successive indices (out-of-range
// ends the scan) — and returns the scan's local best under the
// (Δ*, WorkerID) tie-break. Every feasible Δ* found shrinks bound; with
// prune enabled the scan stops at the first candidate whose lower bound
// strictly exceeds the bound (Lemma 8), which requires lbs sorted by
// SortWorkerBounds and indices yielded in ascending order.
//
// The strictly-less stop keeps the scan order-independent: a candidate is
// skipped only when bound < LB ≤ Δ, and since the bound never goes below
// the final best Δ*, the skipped worker's exact Δ is strictly worse than
// the final winner's — it could not even tie. Concurrent scans sharing
// one bound and one cursor therefore select, after merging local bests
// with BetterCandidate, exactly the worker the serial scan selects.
//
// sc must be exclusive to this scan: concurrent scans of one planning
// phase share lbs, bound and next, but NEVER a Scratch — the insertion
// operator's auxiliary arrays live in it while a candidate is evaluated,
// and sharing would corrupt them mid-computation (Scratch panics on such
// use; internal/dispatch's race suite exercises the contract).
//
// st, when non-nil, accumulates this scan's work counters; like sc it
// must be exclusive to the scan (the dispatcher sums per-goroutine stats
// after the merge). It never influences the scan itself.
func EvalCandidates(sc *Scratch, insert InsertionFunc, prune bool, lbs []WorkerBound,
	req *Request, L float64, dist DistFunc, bound *AtomicBound, next func() int, st *PlanStats) (*Worker, Insertion) {
	var bestW *Worker
	bestIns := Infeasible
	for {
		i := next()
		if i < 0 || i >= len(lbs) {
			return bestW, bestIns
		}
		wb := lbs[i]
		if prune && bound.Load() < wb.LB {
			// Ascending LBs: every candidate after i is prunable too.
			return bestW, bestIns
		}
		w := wb.Worker
		ins := insert(sc, &w.Route, w.Capacity, req, L, dist)
		if st != nil {
			st.observe(&w.Route, ins)
		}
		if !ins.OK {
			continue
		}
		if BetterCandidate(bestW, bestIns, w, ins) {
			bestW = w
			bestIns = ins
		}
		bound.Shrink(ins.Delta)
	}
}
