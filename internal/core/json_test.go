package core

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/roadnet"
)

func sampleWorker() *Worker {
	return &Worker{
		ID:       3,
		Capacity: 4,
		Traveled: 120.5,
		Route: Route{
			Loc:     7,
			Now:     100,
			Onboard: 1,
			Stops: []Stop{
				{Vertex: 9, Kind: Pickup, Req: 11, Cap: 2, DDL: 400},
				{Vertex: 2, Kind: Dropoff, Req: 11, Cap: 2, DDL: 700},
				{Vertex: 5, Kind: Dropoff, Req: 8, Cap: 1, DDL: 900},
			},
			Arr: []float64{150, 300, 450},
		},
	}
}

func TestWorkerStateRoundTrip(t *testing.T) {
	w := sampleWorker()
	st := NewWorkerState(w)
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back WorkerState
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Worker(16)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != w.ID || got.Capacity != w.Capacity || got.Traveled != w.Traveled {
		t.Fatalf("worker fields changed: %+v vs %+v", got, w)
	}
	rt, want := got.Route, w.Route
	if rt.Loc != want.Loc || rt.Now != want.Now || rt.Onboard != want.Onboard {
		t.Fatalf("route head changed: %+v vs %+v", rt, want)
	}
	if len(rt.Stops) != len(want.Stops) {
		t.Fatalf("stop count %d vs %d", len(rt.Stops), len(want.Stops))
	}
	for i := range rt.Stops {
		if rt.Stops[i] != want.Stops[i] {
			t.Fatalf("stop %d changed: %+v vs %+v", i, rt.Stops[i], want.Stops[i])
		}
		if rt.Arr[i] != want.Arr[i] {
			t.Fatalf("arr %d changed: %v vs %v", i, rt.Arr[i], want.Arr[i])
		}
	}
}

func TestRouteStateEmptyRoute(t *testing.T) {
	rt, err := NewRouteState(&Route{Loc: 3, Now: 50}).Route(4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Loc != 3 || rt.Now != 50 || len(rt.Stops) != 0 || len(rt.Arr) != 0 {
		t.Fatalf("empty route changed: %+v", rt)
	}
}

func TestRouteStateRejectsBadInput(t *testing.T) {
	base := func() RouteState { return NewRouteState(&sampleWorker().Route) }
	cases := []struct {
		name   string
		mutate func(*RouteState)
	}{
		{"loc out of range", func(s *RouteState) { s.Loc = 99 }},
		{"negative loc", func(s *RouteState) { s.Loc = -1 }},
		{"nan now", func(s *RouteState) { s.Now = math.NaN() }},
		{"arr length mismatch", func(s *RouteState) { s.Arr = s.Arr[:1] }},
		{"negative onboard", func(s *RouteState) { s.Onboard = -1 }},
		{"unknown kind", func(s *RouteState) { s.Stops[0].Kind = "teleport" }},
		{"stop vertex out of range", func(s *RouteState) { s.Stops[1].Vertex = 1 << 30 }},
		{"zero stop cap", func(s *RouteState) { s.Stops[0].Cap = 0 }},
		{"inf ddl", func(s *RouteState) { s.Stops[0].DDL = math.Inf(1) }},
		{"decreasing arrivals", func(s *RouteState) { s.Arr[1] = s.Arr[0] - 1 }},
		{"negative load", func(s *RouteState) {
			// Dropping 2 from onboard 1 with no prior pickup goes negative.
			s.Onboard = 1
			s.Stops[0] = StopState{Vertex: 1, Kind: "dropoff", Req: 99, Cap: 2, DDL: 500}
		}},
	}
	for _, tc := range cases {
		s := base()
		tc.mutate(&s)
		if _, err := s.Route(16); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestWorkerStateRejectsBadInput(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*WorkerState)
	}{
		{"zero capacity", func(s *WorkerState) { s.Capacity = 0 }},
		{"negative traveled", func(s *WorkerState) { s.Traveled = -1 }},
		{"nan traveled", func(s *WorkerState) { s.Traveled = math.NaN() }},
		{"onboard over capacity", func(s *WorkerState) { s.Route.Onboard = 9 }},
		{"load over capacity", func(s *WorkerState) { s.Capacity = 2; s.Route.Onboard = 2 }},
	}
	for _, tc := range cases {
		s := NewWorkerState(sampleWorker())
		tc.mutate(&s)
		if _, err := s.Worker(16); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestRouteStateAcceptsOnboardDropoff checks the tail of a mid-flight
// route: a drop-off whose pickup already happened decodes fine.
func TestRouteStateAcceptsOnboardDropoff(t *testing.T) {
	rt := Route{
		Loc: 0, Now: 10, Onboard: 2,
		Stops: []Stop{{Vertex: 1, Kind: Dropoff, Req: 5, Cap: 2, DDL: 600}},
		Arr:   []float64{60},
	}
	got, err := NewRouteState(&rt).Route(4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stops[0].Vertex != roadnet.VertexID(1) || got.Onboard != 2 {
		t.Fatalf("onboard drop-off changed: %+v", got)
	}
}
