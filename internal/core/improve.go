package core

// This file implements a route-improvement extension beyond the paper's
// Algorithm 5. Insertion is order-preserving, so early commitments can
// become suboptimal as later requests arrive; the classic remedy —
// and the direction the paper's conclusion points to — is local search:
// repeatedly remove one request from a route and re-insert it optimally
// with the same linear DP operator. Every accepted move strictly reduces
// D(S_w) while preserving all URPSM constraints, so the unified cost can
// only improve. The ablation "pruneGreedyDP+improve" quantifies the gain.

// RemoveRequest deletes request id's pickup and drop-off from the route
// and rebuilds the arrival cache (O(n) distance queries). It returns a
// reconstruction of the removed request (penalty/release are not stored
// in routes and are zeroed) and false when the request is not fully
// on the route (e.g. the passenger is already on board: such requests
// cannot be re-planned because their pickup already happened).
func RemoveRequest(rt *Route, id RequestID, dist DistFunc) (Request, bool) {
	pickupIdx, dropIdx := -1, -1
	for i, s := range rt.Stops {
		if s.Req != id {
			continue
		}
		if s.Kind == Pickup {
			pickupIdx = i
		} else {
			dropIdx = i
		}
	}
	if pickupIdx < 0 || dropIdx < 0 {
		return Request{}, false
	}
	req := Request{
		ID:       id,
		Origin:   rt.Stops[pickupIdx].Vertex,
		Dest:     rt.Stops[dropIdx].Vertex,
		Deadline: rt.Stops[dropIdx].DDL,
		Capacity: rt.Stops[dropIdx].Cap,
	}
	kept := rt.Stops[:0]
	for _, s := range rt.Stops {
		if s.Req != id {
			kept = append(kept, s)
		}
	}
	rt.Stops = kept
	rt.Recompute(dist)
	return req, true
}

// ImproveRoute runs remove-and-reinsert local search on one route:
// up to maxRounds passes over all re-plannable requests, re-inserting
// each at its current optimum. It returns the total travel-time saving
// (≥ 0). The route remains feasible after every accepted move.
func ImproveRoute(rt *Route, kw int, dist DistFunc, maxRounds int) float64 {
	if maxRounds < 1 || rt.Len() < 4 {
		return 0 // fewer than two requests: nothing to reorder
	}
	totalSaved := 0.0
	for round := 0; round < maxRounds; round++ {
		improvedThisRound := false
		for _, id := range replannableRequests(rt) {
			before := rt.RemainingDist()
			trial := rt.Clone()
			req, ok := RemoveRequest(&trial, id, dist)
			if !ok {
				continue
			}
			L := dist(req.Origin, req.Dest)
			ins := LinearDPInsertion(&trial, kw, &req, L, dist)
			if !ins.OK {
				continue // should not happen (its old slots still exist)
			}
			if err := Apply(&trial, kw, &req, ins, L, dist); err != nil {
				continue
			}
			if after := trial.RemainingDist(); after < before-feasEps {
				totalSaved += before - after
				*rt = trial
				improvedThisRound = true
			}
		}
		if !improvedThisRound {
			break
		}
	}
	return totalSaved
}

// replannableRequests lists requests whose pickup and drop-off are both
// still pending on the route.
func replannableRequests(rt *Route) []RequestID {
	pick := map[RequestID]bool{}
	var order []RequestID
	for _, s := range rt.Stops {
		if s.Kind == Pickup {
			pick[s.Req] = true
		}
	}
	seen := map[RequestID]bool{}
	for _, s := range rt.Stops {
		if s.Kind == Dropoff && pick[s.Req] && !seen[s.Req] {
			seen[s.Req] = true
			order = append(order, s.Req)
		}
	}
	return order
}

// ImprovingGreedy wraps a Greedy planner with a post-insertion
// improvement pass on the worker that received the request.
type ImprovingGreedy struct {
	*Greedy
	// Rounds bounds the local-search passes per assignment.
	Rounds int
	// Saved accumulates the total travel time removed by improvement.
	Saved float64
}

// NewImprovingGreedy returns pruneGreedyDP plus local search.
func NewImprovingGreedy(fleet *Fleet, alpha float64, rounds int) *ImprovingGreedy {
	return &ImprovingGreedy{
		Greedy: NewGreedy(fleet, Config{Alpha: alpha, Prune: true, PostCheck: true}, "pruneGreedyDP+improve"),
		Rounds: rounds,
	}
}

// OnRequest plans like pruneGreedyDP, then improves the chosen route.
func (p *ImprovingGreedy) OnRequest(now float64, req *Request) Result {
	res := p.Greedy.OnRequest(now, req)
	if res.Served {
		w := p.fleet.Worker(res.Worker)
		p.Saved += ImproveRoute(&w.Route, w.Capacity, p.fleet.Dist, p.Rounds)
	}
	return res
}
