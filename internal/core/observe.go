package core

// Planner introspection: the observer hook the flight recorder
// (internal/trace) attaches to. The contract that makes observation safe
// on this codebase's two load-bearing invariants:
//
//   - Zero-alloc: the planner owns one PlanTrace per arena (Greedy's
//     scratch, dispatch's pooled planArena) and passes a pointer to it, so
//     installing an observer adds no per-request heap allocation. A nil
//     observer costs one predictable branch per Plan call.
//
//   - Determinism: observation is strictly read-only — the observer sees
//     counters and the already-selected winner, after every decision-
//     affecting float operation has happened. Tracing on versus off
//     cannot change a decision, an assignment or a Δ* bit
//     (TestLockstepEquivalenceTracing pins this through the serve tier).
//
// The PlanStats counters (Evaluated, DPCells) describe work, not results:
// under the parallel dispatcher they may vary run to run with goroutine
// timing, because Lemma 8 prunes whatever the cooperative bound has not
// yet excluded. Decisions stay bit-identical regardless (DESIGN.md §7).

// PlanStats counts the planning-phase work of one request: how many exact
// insertions ran, how many produced a feasible candidate, and how many DP
// cells the insertion operator touched (one cell per route position, so
// stops+1 per LinearDP evaluation — the paper's O(n) row).
type PlanStats struct {
	Evaluated   int32
	FeasibleIns int32
	DPCells     int64
}

// Add accumulates o into st; the parallel dispatcher uses it to sum
// per-goroutine scan counters after the merge.
func (st *PlanStats) Add(o PlanStats) {
	st.Evaluated += o.Evaluated
	st.FeasibleIns += o.FeasibleIns
	st.DPCells += o.DPCells
}

// observe charges one exact insertion evaluation to the stats.
func (st *PlanStats) observe(rt *Route, ins Insertion) {
	st.Evaluated++
	st.DPCells += int64(rt.Len()) + 1
	if ins.OK {
		st.FeasibleIns++
	}
}

// RejectReason explains why a request was (or was not) rejected; it is
// the "why" behind a Decision and the explain endpoint's reason field.
type RejectReason uint8

const (
	// ReasonServed — not rejected: the request was planned onto Chosen.
	ReasonServed RejectReason = iota
	// ReasonNoCandidates — the spatial grid yielded no candidate worker
	// (nobody close enough to matter under the Euclidean bound).
	ReasonNoCandidates
	// ReasonDecisionBound — Algorithm 4 line 5: even the optimistic cost
	// α·min LBΔ* exceeds the penalty p_r, or no candidate has a finite
	// lower bound.
	ReasonDecisionBound
	// ReasonNoFeasibleInsertion — every exact insertion violated a
	// deadline or capacity constraint.
	ReasonNoFeasibleInsertion
	// ReasonPostCheck — the strengthened decision rule (DESIGN.md §6):
	// the best exact α·Δ* still exceeds the penalty.
	ReasonPostCheck
)

// String returns the stable wire name used by the explain endpoint and
// the trace dump (FORMATS.md §9).
func (r RejectReason) String() string {
	switch r {
	case ReasonServed:
		return "served"
	case ReasonNoCandidates:
		return "no_candidates"
	case ReasonDecisionBound:
		return "decision_lower_bound"
	case ReasonNoFeasibleInsertion:
		return "no_feasible_insertion"
	case ReasonPostCheck:
		return "post_check"
	}
	return "unknown"
}

// PlanTrace is the full introspection record of one Plan call, populated
// in place on the planner's arena. It is valid only for the duration of
// the PlanDone callback: LBs aliases the planner's scratch and is
// overwritten by the next request, so observers must copy what they keep.
type PlanTrace struct {
	// Req is the planned request; Now the event time Plan ran at.
	Req *Request
	Now float64
	// L is the decision phase's one exact query, dis(o_r, d_r) — the
	// direct travel time and the basis of the Eq. 2 marginal revenue.
	L float64
	// Candidates counts the grid-filtered candidate workers; Feasible how
	// many of them survived the decision phase with a finite LBΔ*.
	Candidates int
	Feasible   int
	// MinLB is the smallest decision-phase lower bound (+Inf when none).
	MinLB float64
	// Stats is the planning-phase work; Pruned the candidates Lemma 8
	// skipped (Feasible − Stats.Evaluated).
	Stats  PlanStats
	Pruned int
	// LBs is the candidate set in scan order (sorted by (LBΔ*, WorkerID)
	// when pruning). It aliases planner scratch — copy, don't retain.
	LBs []WorkerBound
	// Chosen is the selected worker (-1 when rejected), Ins its winning
	// insertion (pickup after position I, drop-off after position J) and
	// Reason the outcome classification.
	Chosen WorkerID
	Ins    Insertion
	Reason RejectReason
	// PlanNs is the wall time Plan took, both phases included.
	PlanNs int64
	// Parallel reports whether the dispatcher fanned this request out.
	Parallel bool
}

// PlanObserver receives planner introspection callbacks. Implementations
// must be safe for concurrent use when attached to dispatch.ParallelGreedy
// (concurrent read-only Plan calls are part of its contract) and must not
// allocate on the PlanStart/PlanDone path if the zero-alloc plan-path
// guarantee is to survive observation (internal/trace.Recorder is the
// reference implementation; TestGreedyPlanZeroAllocs enforces it).
type PlanObserver interface {
	// PlanStart fires before the decision phase's first distance query.
	PlanStart(now float64, req *Request)
	// PlanDone fires after the outcome is fixed but before any route is
	// mutated; tr is valid only until the callback returns.
	PlanDone(tr *PlanTrace)
}

// Observable is implemented by planners that accept a PlanObserver
// (core.Greedy, dispatch.ParallelGreedy). SetObserver(nil) detaches.
type Observable interface {
	SetObserver(PlanObserver)
}
