// Package core implements the paper's primary contribution: the URPSM
// problem formulation (Definitions 1–5), the three insertion operators of
// §4 (basic O(n³), naive DP O(n²), linear DP O(n)), the Euclidean
// lower-bound decision phase of §5.1, and the pruneGreedyDP / GreedyDP
// planners of §5.2–5.3.
//
// Distances are travel times in seconds over a roadnet.Graph; "distance"
// and "travel time" are interchangeable exactly as in the paper (§3.1).
package core

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// RequestID identifies a request.
type RequestID int32

// WorkerID identifies a worker; it doubles as the spatial-index item ID.
type WorkerID int32

// Request is Definition 3: r = <o_r, d_r, t_r, e_r, p_r, K_r>.
type Request struct {
	ID       RequestID
	Origin   roadnet.VertexID // o_r: pickup vertex
	Dest     roadnet.VertexID // d_r: drop-off vertex
	Release  float64          // t_r: seconds since simulation start
	Deadline float64          // e_r: latest drop-off time (absolute seconds)
	Penalty  float64          // p_r: cost of rejecting the request
	Capacity int              // K_r: passengers/items in this request
}

// Validate reports the first structural problem with r. Non-finite times
// and penalties are rejected here — not only at the HTTP decode layer —
// so no ingestion path (file, API, programmatic) can feed the planners a
// NaN that would make every feasibility comparison silently false or an
// Inf that disables the deadline machinery.
func (r *Request) Validate() error {
	switch {
	case r.Capacity < 1:
		return fmt.Errorf("core: request %d has capacity %d < 1", r.ID, r.Capacity)
	case !finiteFloat(r.Release):
		return fmt.Errorf("core: request %d has non-finite release %v", r.ID, r.Release)
	case !finiteFloat(r.Deadline):
		return fmt.Errorf("core: request %d has non-finite deadline %v", r.ID, r.Deadline)
	case !finiteFloat(r.Penalty):
		return fmt.Errorf("core: request %d has non-finite penalty %v", r.ID, r.Penalty)
	case r.Deadline < r.Release:
		return fmt.Errorf("core: request %d deadline %v before release %v", r.ID, r.Deadline, r.Release)
	case r.Penalty < 0:
		return fmt.Errorf("core: request %d has negative penalty %v", r.ID, r.Penalty)
	}
	return nil
}

// StopKind distinguishes pickups from drop-offs.
type StopKind uint8

const (
	// Pickup is the origin o_r of a request.
	Pickup StopKind = iota
	// Dropoff is the destination d_r of a request.
	Dropoff
)

// String returns "pickup" or "dropoff".
func (k StopKind) String() string {
	if k == Pickup {
		return "pickup"
	}
	return "dropoff"
}

// Stop is one element of a route: a pickup or drop-off location of a
// request, carrying the precomputed per-stop deadline (Eq. 6: e_r − L for
// the pickup, e_r for the drop-off) and the request's capacity.
type Stop struct {
	Vertex roadnet.VertexID
	Kind   StopKind
	Req    RequestID
	Cap    int     // K_r of the request this stop belongs to
	DDL    float64 // latest feasible arrival at this stop (Eq. 6)
}

// loadDelta is the change in onboard load after visiting the stop.
func (s Stop) loadDelta() int {
	if s.Kind == Pickup {
		return s.Cap
	}
	return -s.Cap
}

// Route is Definition 4 plus the cached arrival times the paper maintains
// as the auxiliary array arr[·] (§5.2.2, Lemma 9). The worker is at vertex
// Loc at absolute time Now with Onboard passengers already picked up;
// Stops is the ordered tail of the route and Arr the planned arrival time
// at each stop (len(Arr) == len(Stops)).
type Route struct {
	Loc     roadnet.VertexID
	Now     float64
	Onboard int
	Stops   []Stop
	Arr     []float64
}

// Len returns the number of remaining stops n.
func (rt *Route) Len() int { return len(rt.Stops) }

// vertexAt maps position k ∈ [0, n] to a vertex: k = 0 is the current
// location l₀, k ≥ 1 is stop k−1 (the paper's l_k).
func (rt *Route) vertexAt(k int) roadnet.VertexID {
	if k == 0 {
		return rt.Loc
	}
	return rt.Stops[k-1].Vertex
}

// arrAt returns arr[k]: Now for k = 0, planned arrival otherwise.
func (rt *Route) arrAt(k int) float64 {
	if k == 0 {
		return rt.Now
	}
	return rt.Arr[k-1]
}

// ddlAt returns ddl[k]: +Inf for k = 0 (the worker is already there),
// the stop's deadline otherwise.
func (rt *Route) ddlAt(k int) float64 {
	if k == 0 {
		return math.Inf(1)
	}
	return rt.Stops[k-1].DDL
}

// legDist returns dis(l_{k-1}, l_k) for k ∈ [1, n], recovered from arrival
// times without a shortest-distance query (Lemma 7's "auxiliary array"
// trick).
func (rt *Route) legDist(k int) float64 {
	return rt.arrAt(k) - rt.arrAt(k-1)
}

// RemainingDist is the planned travel time from Now to the end of the
// route, in seconds.
func (rt *Route) RemainingDist() float64 {
	if len(rt.Stops) == 0 {
		return 0
	}
	return rt.Arr[len(rt.Arr)-1] - rt.Now
}

// PlannedEnd is the absolute time the route completes.
func (rt *Route) PlannedEnd() float64 {
	if len(rt.Stops) == 0 {
		return rt.Now
	}
	return rt.Arr[len(rt.Arr)-1]
}

// Recompute rebuilds Arr from scratch with n distance queries. The
// planners never need it (they maintain Arr incrementally); it exists for
// construction, repair and tests.
func (rt *Route) Recompute(oracle DistFunc) {
	if cap(rt.Arr) < len(rt.Stops) {
		rt.Arr = make([]float64, len(rt.Stops))
	}
	rt.Arr = rt.Arr[:len(rt.Stops)]
	t := rt.Now
	prev := rt.Loc
	for i, s := range rt.Stops {
		t += oracle(prev, s.Vertex)
		rt.Arr[i] = t
		prev = s.Vertex
	}
}

// Clone deep-copies the route.
func (rt *Route) Clone() Route {
	return Route{
		Loc:     rt.Loc,
		Now:     rt.Now,
		Onboard: rt.Onboard,
		Stops:   append([]Stop(nil), rt.Stops...),
		Arr:     append([]float64(nil), rt.Arr...),
	}
}

// Validate walks the route checking Definition 4's feasibility conditions:
// arrival times consistent with the oracle, every arrival within its stop
// deadline, the onboard load never exceeding kw, precedence (each pickup
// before its drop-off, with both present for any request appearing), and
// non-negative onboard load. feasEps absorbs floating-point noise.
func (rt *Route) Validate(kw int, oracle DistFunc) error {
	if rt.Onboard < 0 {
		return fmt.Errorf("core: negative onboard load %d", rt.Onboard)
	}
	if len(rt.Arr) != len(rt.Stops) {
		return fmt.Errorf("core: Arr length %d != Stops length %d", len(rt.Arr), len(rt.Stops))
	}
	t := rt.Now
	prev := rt.Loc
	load := rt.Onboard
	pickedAt := map[RequestID]bool{}
	dropped := map[RequestID]bool{}
	for i, s := range rt.Stops {
		t += oracle(prev, s.Vertex)
		if math.Abs(t-rt.Arr[i]) > feasEps*(1+math.Abs(t)) {
			return fmt.Errorf("core: stop %d arrival cache %v != recomputed %v", i, rt.Arr[i], t)
		}
		if t > s.DDL+feasEps {
			return fmt.Errorf("core: stop %d (%v of request %d) arrives %v after deadline %v",
				i, s.Kind, s.Req, t, s.DDL)
		}
		load += s.loadDelta()
		if load > kw {
			return fmt.Errorf("core: load %d exceeds capacity %d after stop %d", load, kw, i)
		}
		if load < 0 {
			return fmt.Errorf("core: negative load %d after stop %d", load, i)
		}
		switch s.Kind {
		case Pickup:
			if pickedAt[s.Req] {
				return fmt.Errorf("core: request %d picked up twice", s.Req)
			}
			pickedAt[s.Req] = true
		case Dropoff:
			if dropped[s.Req] {
				return fmt.Errorf("core: request %d dropped twice", s.Req)
			}
			dropped[s.Req] = true
		}
		prev = s.Vertex
	}
	for req := range dropped {
		// A drop-off without a pickup in the tail belongs to an onboard
		// passenger; that is legal. A pickup without a drop-off is not.
		_ = req
	}
	for req := range pickedAt {
		if !dropped[req] {
			return fmt.Errorf("core: request %d picked up but never dropped", req)
		}
	}
	return nil
}

// Worker is Definition 2: w = <o_w, K_w>, plus its evolving route and the
// travel it has already completed (maintained by the simulator).
type Worker struct {
	ID       WorkerID
	Capacity int
	Route    Route
	Traveled float64 // completed driving time in seconds
}

// TotalDistance is D(S_w) over the whole simulation: completed travel plus
// the planned remainder.
func (w *Worker) TotalDistance() float64 {
	return w.Traveled + w.Route.RemainingDist()
}

// DistFunc is the shortest travel-time oracle signature used throughout
// core; it matches shortest.Oracle.Dist.
type DistFunc func(u, v roadnet.VertexID) float64

// feasEps absorbs floating-point error in feasibility comparisons. Route
// times are O(10⁴) seconds, so 1e-6 is ~10 significant digits of headroom.
const feasEps = 1e-6
