package core

import (
	"math"

	"repro/internal/roadnet"
)

// LowerBoundInsertion computes LBΔ* (Lemma 7, Eq. 15–17): a lower bound on
// the minimal increased distance of inserting req into rt, using Euclidean
// travel-time lower bounds for every distance involving o_r or d_r and the
// cached arrival times for consecutive-stop distances. It performs zero
// shortest-distance queries; the caller supplies the single query the
// decision phase needs, L = dis(o_r, d_r).
//
// The bound is obtained by running the same linear DP as the exact
// operator on optimistic distances: every really-feasible insertion stays
// feasible under the relaxation and every candidate value can only shrink,
// so the minimum is a valid lower bound. +Inf means no insertion can be
// feasible even optimistically.
func LowerBoundInsertion(rt *Route, kw int, req *Request, g *roadnet.Graph, L float64) float64 {
	c := newInsCtx(rt, kw, req, L)
	c.fillEuclid(g)
	ins := linearDP(c)
	if !ins.OK {
		return math.Inf(1)
	}
	// Euclidean "detours" can be negative; the true Δ* is never below 0.
	return math.Max(0, ins.Delta)
}

// WorkerBound pairs a worker with its decision-phase lower bound.
type WorkerBound struct {
	LB     float64
	Worker *Worker
}

// Decide is Algorithm 4: compute LBΔ* for every candidate worker and
// report whether the request should be rejected outright because even the
// optimistic cost α·min LB exceeds the penalty. The returned slice feeds
// the planning phase (it is not yet sorted; pruneGreedyDP sorts it,
// GreedyDP does not need to).
func Decide(alpha float64, cands []*Worker, req *Request, g *roadnet.Graph, L float64) (lbs []WorkerBound, reject bool) {
	lbs = make([]WorkerBound, 0, len(cands))
	minLB := math.Inf(1)
	for _, w := range cands {
		lb := LowerBoundInsertion(&w.Route, w.Capacity, req, g, L)
		if math.IsInf(lb, 1) {
			continue // provably infeasible for this worker
		}
		lbs = append(lbs, WorkerBound{LB: lb, Worker: w})
		if lb < minLB {
			minLB = lb
		}
	}
	if len(lbs) == 0 {
		return nil, true
	}
	// Reject when p_r < α·min LB (Algorithm 4 line 5): serving would
	// increase the unified cost more than rejecting.
	return lbs, req.Penalty < alpha*minLB
}
