package core

import (
	"repro/internal/roadnet"
)

// LowerBoundInsertion computes LBΔ* (Lemma 7, Eq. 15–17): a lower bound on
// the minimal increased distance of inserting req into rt, using Euclidean
// travel-time lower bounds for every distance involving o_r or d_r and the
// cached arrival times for consecutive-stop distances. It performs zero
// shortest-distance queries; the caller supplies the single query the
// decision phase needs, L = dis(o_r, d_r).
//
// The bound is obtained by running the same linear DP as the exact
// operator on optimistic distances: every really-feasible insertion stays
// feasible under the relaxation and every candidate value can only shrink,
// so the minimum is a valid lower bound. +Inf means no insertion can be
// feasible even optimistically.
//
// This convenience form allocates a fresh context per call; planners use
// Scratch.LowerBound, which reuses one arena across requests.
func LowerBoundInsertion(rt *Route, kw int, req *Request, g *roadnet.Graph, L float64) float64 {
	var sc Scratch
	return sc.LowerBound(rt, kw, req, g, L)
}

// WorkerBound pairs a worker with its decision-phase lower bound.
type WorkerBound struct {
	LB     float64
	Worker *Worker
}

// Decide is Algorithm 4 in its allocating convenience form; planners use
// Scratch.Decide, which reuses one arena across requests and computes the
// identical result.
func Decide(alpha float64, cands []*Worker, req *Request, g *roadnet.Graph, L float64) (lbs []WorkerBound, reject bool) {
	var sc Scratch
	lbs, reject = sc.Decide(alpha, cands, req, g, L)
	return lbs, reject
}
