package core

import (
	"math/rand"
	"strings"
	"testing"
)

// TestScratchOpsMatchConvenienceForms pins the contract that the
// scratch-arena operators compute bit-identical results to the allocating
// convenience functions, including when the scratch is reused across
// routes of varying length (the buffers shrink and grow logically while
// the backing arrays only grow).
func TestScratchOpsMatchConvenienceForms(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 7)
	rng := rand.New(rand.NewSource(42))
	var sc Scratch
	for trial := 0; trial < 200; trial++ {
		kw := 4
		rt, _ := tw.randomRoute(rng, kw, 1+rng.Intn(6), float64(rng.Intn(100)))
		req := tw.randomRequest(rng, RequestID(trial), rt.Now)
		L := tw.dist(req.Origin, req.Dest)

		if got, want := sc.LinearDP(&rt, kw, req, L, tw.dist), LinearDPInsertion(&rt, kw, req, L, tw.dist); got != want {
			t.Fatalf("trial %d: Scratch.LinearDP %+v != LinearDPInsertion %+v", trial, got, want)
		}
		if got, want := sc.NaiveDP(&rt, kw, req, L, tw.dist), NaiveDPInsertion(&rt, kw, req, L, tw.dist); got != want {
			t.Fatalf("trial %d: Scratch.NaiveDP %+v != NaiveDPInsertion %+v", trial, got, want)
		}
		if got, want := sc.Basic(&rt, kw, req, tw.dist), BasicInsertion(&rt, kw, req, tw.dist); got != want {
			t.Fatalf("trial %d: Scratch.Basic %+v != BasicInsertion %+v", trial, got, want)
		}
		if got, want := sc.LowerBound(&rt, kw, req, tw.g, L), LowerBoundInsertion(&rt, kw, req, tw.g, L); got != want {
			t.Fatalf("trial %d: Scratch.LowerBound %v != LowerBoundInsertion %v", trial, got, want)
		}
	}
}

// TestScratchGuardPanicsOnConcurrentUse pins the ownership assertion: a
// scratch already held by one scan must refuse a second entry instead of
// silently corrupting the auxiliary arrays.
func TestScratchGuardPanicsOnConcurrentUse(t *testing.T) {
	tw := newTestWorld(t, 6, 6, 3)
	rng := rand.New(rand.NewSource(1))
	kw := 4
	rt, _ := tw.randomRoute(rng, kw, 3, 0)
	req := tw.randomRequest(rng, 1, rt.Now)
	L := tw.dist(req.Origin, req.Dest)

	var sc Scratch
	sc.acquire() // simulate another goroutine mid-scan
	defer sc.release()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on concurrent Scratch use")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Scratch") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	sc.LinearDP(&rt, kw, req, L, tw.dist)
}

// TestGreedyPlanZeroAllocs is the tentpole's regression test: once the
// planner's scratch has warmed up, steady-state Plan calls — rejected
// requests as well as accepted-but-not-applied plans — perform zero heap
// allocations end to end (candidate retrieval, decision phase, sort,
// planning scan).
func TestGreedyPlanZeroAllocs(t *testing.T) {
	tw := newTestWorld(t, 12, 12, 9)
	rng := rand.New(rand.NewSource(5))
	f := tw.newTestFleet(t, rng, 40, 4)
	p := NewPruneGreedyDP(f, 1)

	// Warm up: drive real traffic through the planner so routes are
	// loaded and every scratch buffer has grown to its steady-state size.
	reqs := makeStream(tw, rng, 300)
	for _, r := range reqs {
		p.OnRequest(r.Release, r)
	}

	// Probe requests: one that plans successfully and one that is
	// rejected outright (impossible deadline exercises the empty-
	// candidates path; an uneconomic one exercises the decision phase).
	var planned, rejected *Request
	for trial := 0; trial < 2000 && (planned == nil || rejected == nil); trial++ {
		r := tw.randomRequest(rng, RequestID(10000+trial), 0)
		if w, _, _ := p.Plan(0, r); w != nil && planned == nil {
			planned = r
		}
		if rejected == nil {
			// A free-to-reject request is dropped by the decision phase
			// whenever its optimistic cost is nonzero.
			zp := *r
			zp.Penalty = 0
			if w, _, _ := p.Plan(0, &zp); w == nil {
				rejected = &zp
			}
		}
	}
	if planned == nil || rejected == nil {
		t.Fatalf("probe search failed: planned=%v rejected=%v", planned, rejected)
	}

	for name, r := range map[string]*Request{"planned": planned, "rejected": rejected} {
		r := r
		if allocs := testing.AllocsPerRun(100, func() {
			p.Plan(0, r)
		}); allocs != 0 {
			t.Errorf("%s probe: Plan allocates %v per op, want 0", name, allocs)
		}
	}

	// The acceptance criterion of the observer hook: an ATTACHED observer
	// must not cost the plan path its zero-alloc property. The planner
	// passes a pointer to its arena-resident PlanTrace, so the callback
	// itself introduces no escapes; countingObserver checks the payload
	// arrives while AllocsPerRun checks nothing leaked to the heap.
	// (internal/trace runs the same assertion against the real Recorder;
	// this in-package fake exists because trace imports core.)
	obs := &countingObserver{}
	p.SetObserver(obs)
	defer p.SetObserver(nil)
	for name, r := range map[string]*Request{"planned": planned, "rejected": rejected} {
		r := r
		if allocs := testing.AllocsPerRun(100, func() {
			p.Plan(0, r)
		}); allocs != 0 {
			t.Errorf("%s probe: observed Plan allocates %v per op, want 0", name, allocs)
		}
	}
	if obs.starts != obs.dones || obs.starts == 0 {
		t.Fatalf("observer saw %d starts / %d dones", obs.starts, obs.dones)
	}
	if obs.served == 0 || obs.rejected == 0 {
		t.Fatalf("observer saw served=%d rejected=%d, want both nonzero", obs.served, obs.rejected)
	}
}

// countingObserver is a minimal allocation-free PlanObserver.
type countingObserver struct {
	starts, dones    int
	served, rejected int
	lastEvaluated    int32
}

func (o *countingObserver) PlanStart(now float64, req *Request) { o.starts++ }

func (o *countingObserver) PlanDone(tr *PlanTrace) {
	o.dones++
	if tr.Chosen >= 0 {
		o.served++
	} else {
		o.rejected++
	}
	o.lastEvaluated = tr.Stats.Evaluated
}
