package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// hubWorld is a testWorld over a hub-label oracle — the bitwise-symmetric
// tier the DistTable's reversed-orientation lookup is specified against.
func hubWorld(t testing.TB, rows, cols int, seed int64) (*testWorld, *shortest.HubLabels) {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: rows, Cols: cols, Spacing: 180, Jitter: 0.3, ArterialEvery: 5,
		MotorwayRing: true, RemoveFrac: 0.1, DetourMin: 1.02, DetourMax: 1.4,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := shortest.BuildHubLabels(g)
	return &testWorld{g: g, dist: hub.Dist}, hub
}

// fillTable runs the batched sweep over the table's registered endpoints
// and installs the result.
func fillTable(tb *DistTable, mtm shortest.ManyToMany, a *shortest.TableArena) {
	tb.Install(mtm.Table(a, tb.Rows(), tb.Cols()))
}

func TestDistTableHitMissSymmetry(t *testing.T) {
	tw, hub := hubWorld(t, 9, 9, 3)
	n := tw.g.NumVertices()
	fallbacks := 0
	tb := NewDistTable(n, func(u, v roadnet.VertexID) float64 {
		fallbacks++
		return tw.dist(u, v)
	})
	mtm := shortest.ManyToManyFor(hub)
	arena := shortest.NewTableArena()

	tb.Reset()
	rows := []roadnet.VertexID{3, 17, 42, 3} // duplicate must dedupe
	cols := []roadnet.VertexID{5, 42, 60}
	for _, v := range rows {
		tb.AddRow(v)
	}
	for _, v := range cols {
		tb.AddCol(v)
	}
	if got := tb.CellCount(); got != 9 {
		t.Fatalf("CellCount=%d want 9 (3 deduped rows x 3 cols)", got)
	}
	fillTable(tb, mtm, arena)

	for _, u := range rows {
		for _, v := range cols {
			if got, want := tb.Dist(u, v), tw.dist(u, v); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("hit (%d,%d): table %v oracle %v", u, v, got, want)
			}
			// Reversed orientation must resolve through the same cells.
			if got, want := tb.Dist(v, u), tw.dist(v, u); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("reversed (%d,%d): table %v oracle %v", v, u, got, want)
			}
		}
	}
	if fallbacks != 0 {
		t.Fatalf("covered pairs fell back %d times", fallbacks)
	}
	hits, misses := tb.Stats()
	if hits == 0 || misses != 0 {
		t.Fatalf("stats hits=%d misses=%d after all-hit traffic", hits, misses)
	}

	if got, want := tb.Dist(7, 8), tw.dist(7, 8); got != want || fallbacks != 1 {
		t.Fatalf("uncovered pair: got %v want %v (fallbacks=%d)", got, want, fallbacks)
	}
	if tb.Dist(13, 13) != 0 {
		t.Fatal("diagonal must be 0")
	}

	// Reset deactivates: every pair falls back, no stale cells.
	tb.Reset()
	before := fallbacks
	if got, want := tb.Dist(3, 5), tw.dist(3, 5); got != want || fallbacks != before+1 {
		t.Fatalf("post-Reset query did not fall back (got %v want %v)", got, want)
	}
}

// TestGreedyPlanTableEquivalence is the wiring half of the tentpole's
// equivalence claim: a Greedy planner whose fleet DistFunc is swapped to
// a prefetched DistTable must produce bit-identical decisions AND routes
// to one running pure point queries, across a stream of admission
// batches with real route mutations in between.
func TestGreedyPlanTableEquivalence(t *testing.T) {
	tw, hub := hubWorld(t, 11, 11, 7)
	mtm := shortest.ManyToManyFor(hub)
	arena := shortest.NewTableArena()

	rngA := rand.New(rand.NewSource(4))
	rngB := rand.New(rand.NewSource(4))
	fleetA := tw.newTestFleet(t, rngA, 20, 4)
	fleetB := tw.newTestFleet(t, rngB, 20, 4)
	pointDist := fleetB.Dist
	tb := NewDistTable(tw.g.NumVertices(), pointDist)
	pa := NewPruneGreedyDP(fleetA, 1)
	pb := NewPruneGreedyDP(fleetB, 1)

	reqs := makeStream(tw, rand.New(rand.NewSource(9)), 240)
	var cands []*Worker
	for start := 0; start < len(reqs); start += 8 {
		batch := reqs[start:min(start+8, len(reqs))]
		now := batch[0].Release

		// Point-query fleet decides the batch.
		var want []Result
		for _, r := range batch {
			want = append(want, pa.OnRequest(r.Release, r))
		}

		// Table-backed fleet: prefetch one table for the batch (request
		// endpoints as cols+origin rows, candidate-superset route vertices
		// as rows), swap it in, decide, swap back.
		tb.Reset()
		cands = cands[:0]
		for _, r := range batch {
			tb.AddRequest(r)
			cands = fleetB.CandidatesAppend(cands, r, now, 0)
		}
		for _, w := range cands {
			tb.AddWorker(w)
		}
		fillTable(tb, mtm, arena)
		fleetB.Dist = tb.Dist
		for i, r := range batch {
			rCopy := *r
			got := pb.OnRequest(r.Release, &rCopy)
			if got.Served != want[i].Served || got.Worker != want[i].Worker ||
				math.Float64bits(got.Delta) != math.Float64bits(want[i].Delta) {
				t.Fatalf("request %d: table-backed %+v point %+v", r.ID, got, want[i])
			}
		}
		fleetB.Dist = pointDist
	}
	hits, _ := tb.Stats()
	if hits == 0 {
		t.Fatal("table never hit; the prefetch wiring is dead")
	}

	// The mutated fleets must agree exactly, route for route.
	for i := range fleetA.Workers {
		ra, rb := &fleetA.Workers[i].Route, &fleetB.Workers[i].Route
		if len(ra.Stops) != len(rb.Stops) {
			t.Fatalf("worker %d: route lengths diverge (%d vs %d)", i, len(ra.Stops), len(rb.Stops))
		}
		for k := range ra.Stops {
			if ra.Stops[k] != rb.Stops[k] ||
				math.Float64bits(ra.Arr[k]) != math.Float64bits(rb.Arr[k]) {
				t.Fatalf("worker %d stop %d diverges", i, k)
			}
		}
	}
}

// TestBatchPlanZeroAllocs pins the table-backed planning path to zero
// steady-state heap allocations: the table swap must not cost the PR 4
// allocation-free planner its property.
func TestBatchPlanZeroAllocs(t *testing.T) {
	tw, hub := hubWorld(t, 10, 10, 5)
	mtm := shortest.ManyToManyFor(hub)
	arena := shortest.NewTableArena()
	rng := rand.New(rand.NewSource(6))
	fleet := tw.newTestFleet(t, rng, 15, 4)
	pointDist := fleet.Dist
	tb := NewDistTable(tw.g.NumVertices(), pointDist)
	p := NewPruneGreedyDP(fleet, 1)

	// Seed some routes so the DP has work, then freeze the fleet.
	seeded := 0
	for trial := 0; trial < 400 && seeded < 10; trial++ {
		if res := p.OnRequest(0, tw.randomRequest(rng, RequestID(trial), 0)); res.Served {
			seeded++
		}
	}

	req := tw.randomRequest(rng, 9999, 0)
	tb.Reset()
	tb.AddRequest(req)
	var cands []*Worker
	for _, w := range fleet.CandidatesAppend(cands, req, 0, 0) {
		tb.AddWorker(w)
	}
	fillTable(tb, mtm, arena)
	fleet.Dist = tb.Dist
	defer func() { fleet.Dist = pointDist }()

	if allocs := testing.AllocsPerRun(100, func() {
		p.Plan(0, req)
	}); allocs != 0 {
		t.Errorf("table-backed Plan allocates %v per op, want 0", allocs)
	}
	hits, _ := tb.Stats()
	if hits == 0 {
		t.Fatal("plan path never read a table cell")
	}
}

// TestTravelTimeLBIsLowerBound pins the prefetch superset argument: the
// Euclidean travel-time bound never exceeds the oracle distance, so a
// candidate radius computed from it is never too small.
func TestTravelTimeLBIsLowerBound(t *testing.T) {
	tw, _ := hubWorld(t, 9, 9, 7)
	rng := rand.New(rand.NewSource(7))
	fleet := tw.newTestFleet(t, rng, 10, 4)
	n := tw.g.NumVertices()
	for i := 0; i < 2000; i++ {
		u := roadnet.VertexID(rng.Intn(n))
		v := roadnet.VertexID(rng.Intn(n))
		if lb, d := fleet.TravelTimeLB(u, v), tw.dist(u, v); lb > d+1e-9 {
			t.Fatalf("TravelTimeLB(%d,%d)=%g exceeds Dist=%g", u, v, lb, d)
		}
	}
}
