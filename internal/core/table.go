package core

import (
	"sync/atomic"

	"repro/internal/roadnet"
)

// DistTable is a batch-scoped dense distance table standing in front of
// the point-query oracle chain. The admission loop (serve.Server.flush,
// or a batching experiment) registers the batch's endpoints — worker
// route vertices as rows, request origins/destinations as columns —
// fills the cells with ONE shortest.ManyToMany sweep, and swaps
// (*DistTable).Dist in as the fleet's DistFunc for the duration of the
// batch. Because every cell is bit-identical to the point query it
// replaces (the ManyToMany contract) and every pair outside the table
// falls back to the untouched point chain, planners cannot observe the
// swap in their decisions — only in how few point queries remain.
//
// The symmetric lookup (u,v) → cell(v,u) relies on the oracle being
// bitwise symmetric, which holds for the batched tiers (hub labels, CH,
// CCH: a query is a float min over fl(a+b) meet candidates and float
// addition is commutative) but NOT for forward Dijkstra — another reason
// ManyToManyFor declines the unpreprocessed tiers.
//
// Registration and Install must happen on one goroutine (the event
// loop); after Install the table is immutable, so Dist may be called
// from any number of planner goroutines concurrently (the hit/miss
// tallies are atomic).
type DistTable struct {
	n    int
	ver  uint32
	rIdx []int32
	rVer []uint32
	cIdx []int32
	cVer []uint32

	rows []roadnet.VertexID
	cols []roadnet.VertexID

	cells     []float64
	ncols     int
	installed bool

	// Fallback answers pairs the table does not cover; it is the point
	// chain the table fronts, so misses keep the exact same bits (and the
	// same query accounting) the batch would have seen without a table.
	Fallback DistFunc

	hits, misses atomic.Uint64
}

// NewDistTable returns a table for an n-vertex graph whose uncovered
// pairs are answered by fallback.
func NewDistTable(n int, fallback DistFunc) *DistTable {
	return &DistTable{
		n:        n,
		rIdx:     make([]int32, n),
		rVer:     make([]uint32, n),
		cIdx:     make([]int32, n),
		cVer:     make([]uint32, n),
		Fallback: fallback,
	}
}

// Reset clears the endpoint registration and deactivates the table; one
// version bump invalidates every row/col index in O(1).
func (t *DistTable) Reset() {
	t.rows = t.rows[:0]
	t.cols = t.cols[:0]
	t.installed = false
	t.ver++
	if t.ver == 0 {
		for i := range t.rVer {
			t.rVer[i] = 0
			t.cVer[i] = 0
		}
		t.ver = 1
	}
}

// AddRow registers v as a table row (deduplicated).
func (t *DistTable) AddRow(v roadnet.VertexID) {
	if t.rVer[v] == t.ver {
		return
	}
	t.rVer[v] = t.ver
	t.rIdx[v] = int32(len(t.rows))
	t.rows = append(t.rows, v)
}

// AddCol registers v as a table column (deduplicated).
func (t *DistTable) AddCol(v roadnet.VertexID) {
	if t.cVer[v] == t.ver {
		return
	}
	t.cVer[v] = t.ver
	t.cIdx[v] = int32(len(t.cols))
	t.cols = append(t.cols, v)
}

// AddWorker registers every vertex of w's committed route — current
// location plus all remaining stops — as rows.
func (t *DistTable) AddWorker(w *Worker) {
	t.AddRow(w.Route.Loc)
	for i := range w.Route.Stops {
		t.AddRow(w.Route.Stops[i].Vertex)
	}
}

// AddRequest registers r's endpoints: origin and destination as columns
// (the planner queries dist(route vertex, endpoint) throughout the DP)
// and the origin as a row too, covering the decision phase's
// dist(origin, dest) and Apply's dist(origin, next stop) via symmetry.
func (t *DistTable) AddRequest(r *Request) {
	t.AddCol(r.Origin)
	t.AddCol(r.Dest)
	t.AddRow(r.Origin)
}

// Rows returns the registered row vertices (aliased, valid until Reset).
func (t *DistTable) Rows() []roadnet.VertexID { return t.rows }

// Cols returns the registered column vertices (aliased, valid until Reset).
func (t *DistTable) Cols() []roadnet.VertexID { return t.cols }

// CellCount is the dense table size the current registration implies;
// callers bound it before paying for a fill.
func (t *DistTable) CellCount() int { return len(t.rows) * len(t.cols) }

// Install activates the table over cells, a row-major len(rows) ×
// len(cols) array as produced by ManyToMany.Table on (Rows(), Cols()).
// The slice is aliased, not copied: the filling arena must stay untouched
// until the next Reset.
func (t *DistTable) Install(cells []float64) {
	if len(cells) != t.CellCount() {
		panic("core: DistTable.Install cell count does not match registration")
	}
	t.cells = cells
	t.ncols = len(t.cols)
	t.installed = true
}

// Installed reports whether the table is active.
func (t *DistTable) Installed() bool { return t.installed }

// Dist is the DistFunc planners call during a table-backed batch: a cell
// hit in either orientation, else the exact point fallback. Safe for
// concurrent callers once installed.
func (t *DistTable) Dist(u, v roadnet.VertexID) float64 {
	if u == v {
		return 0
	}
	if t.installed {
		if t.rVer[u] == t.ver && t.cVer[v] == t.ver {
			t.hits.Add(1)
			return t.cells[int(t.rIdx[u])*t.ncols+int(t.cIdx[v])]
		}
		if t.rVer[v] == t.ver && t.cVer[u] == t.ver {
			t.hits.Add(1)
			return t.cells[int(t.rIdx[v])*t.ncols+int(t.cIdx[u])]
		}
	}
	t.misses.Add(1)
	return t.Fallback(u, v)
}

// Stats returns the cumulative (hits, misses) across batches.
func (t *DistTable) Stats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}
