package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/roadnet"
)

// instanceGen drives testing/quick with structured random URPSM
// instances: a seed expands into a random route plus request over the
// shared test world, so quick's shrinking/iteration machinery explores
// the space while generation stays domain-valid.
type instanceGen struct {
	Seed     int64
	Kw       uint8
	Stops    uint8
	Tightens bool
}

// Generate implements quick.Generator.
func (instanceGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(instanceGen{
		Seed:     r.Int63(),
		Kw:       uint8(2 + r.Intn(5)),
		Stops:    uint8(r.Intn(6)),
		Tightens: r.Intn(3) == 0,
	})
}

var quickWorld *testWorld

func quickTW(t *testing.T) *testWorld {
	t.Helper()
	if quickWorld == nil {
		quickWorld = newTestWorld(t, 9, 9, 12345)
	}
	return quickWorld
}

func (g instanceGen) materialize(tw *testWorld) (Route, *Request, int) {
	rng := rand.New(rand.NewSource(g.Seed))
	kw := int(g.Kw)
	rt, _ := tw.randomRoute(rng, kw, int(g.Stops), rng.Float64()*500)
	req := tw.randomRequest(rng, 7777, rt.Now)
	if g.Tightens {
		req.Deadline = rt.Now + tw.dist(req.Origin, req.Dest)*(1+rng.Float64()*0.2)
	}
	return rt, req, kw
}

// TestQuickOperatorsAgree is the quick-driven twin of TestOperatorsAgree.
func TestQuickOperatorsAgree(t *testing.T) {
	tw := quickTW(t)
	prop := func(g instanceGen) bool {
		rt, req, kw := g.materialize(tw)
		L := tw.dist(req.Origin, req.Dest)
		basic := BasicInsertion(&rt, kw, req, tw.dist)
		linear := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		naive := NaiveDPInsertion(&rt, kw, req, L, tw.dist)
		if basic.OK != linear.OK || basic.OK != naive.OK {
			return false
		}
		if !basic.OK {
			return true
		}
		tol := 1e-5 * (1 + basic.Delta)
		return math.Abs(basic.Delta-linear.Delta) <= tol &&
			math.Abs(basic.Delta-naive.Delta) <= tol
	}
	cfg := &quick.Config{MaxCount: 400}
	if testing.Short() {
		cfg.MaxCount = 80
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickLowerBoundSound: LBΔ* ≤ Δ* under quick generation.
func TestQuickLowerBoundSound(t *testing.T) {
	tw := quickTW(t)
	prop := func(g instanceGen) bool {
		rt, req, kw := g.materialize(tw)
		L := tw.dist(req.Origin, req.Dest)
		lb := LowerBoundInsertion(&rt, kw, req, tw.g, L)
		exact := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		if math.IsInf(lb, 1) {
			return !exact.OK
		}
		if !exact.OK {
			return true // a finite optimistic bound with no exact solution is fine
		}
		return lb <= exact.Delta+1e-5*(1+exact.Delta) && lb >= 0
	}
	cfg := &quick.Config{MaxCount: 400}
	if testing.Short() {
		cfg.MaxCount = 80
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickApplyValidates: applying any feasible insertion yields a
// Validate-clean route whose distance grew by exactly Delta.
func TestQuickApplyValidates(t *testing.T) {
	tw := quickTW(t)
	prop := func(g instanceGen) bool {
		rt, req, kw := g.materialize(tw)
		L := tw.dist(req.Origin, req.Dest)
		ins := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		if !ins.OK {
			return true
		}
		before := rt.RemainingDist()
		if err := Apply(&rt, kw, req, ins, L, tw.dist); err != nil {
			return false
		}
		if err := rt.Validate(kw, tw.dist); err != nil {
			return false
		}
		return math.Abs((rt.RemainingDist()-before)-ins.Delta) <= 1e-5*(1+ins.Delta)
	}
	cfg := &quick.Config{MaxCount: 300}
	if testing.Short() {
		cfg.MaxCount = 60
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickCloneIndependence: mutating a clone never touches the original.
func TestQuickCloneIndependence(t *testing.T) {
	tw := quickTW(t)
	prop := func(g instanceGen) bool {
		rt, _, _ := g.materialize(tw)
		if rt.Len() == 0 {
			return true
		}
		cl := rt.Clone()
		cl.Stops[0].Vertex++
		cl.Arr[0] += 42
		cl.Onboard++
		return cl.Stops[0].Vertex != rt.Stops[0].Vertex &&
			cl.Arr[0] != rt.Arr[0] && cl.Onboard != rt.Onboard
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestZeroLengthTrip: a request with origin == destination (L = 0) is
// legal (e.g. the hardness constructions) and must insert cleanly.
func TestZeroLengthTrip(t *testing.T) {
	tw := quickTW(t)
	rt := Route{Loc: 3, Now: 10}
	req := &Request{ID: 1, Origin: 8, Dest: 8, Release: 10, Deadline: 5000, Penalty: 1, Capacity: 1}
	L := tw.dist(req.Origin, req.Dest)
	if L != 0 {
		t.Fatalf("self distance %v", L)
	}
	for name, ins := range map[string]Insertion{
		"basic":  BasicInsertion(&rt, 4, req, tw.dist),
		"naive":  NaiveDPInsertion(&rt, 4, req, L, tw.dist),
		"linear": LinearDPInsertion(&rt, 4, req, L, tw.dist),
	} {
		if !ins.OK {
			t.Fatalf("%s rejected a zero-length trip", name)
		}
		want := tw.dist(3, 8)
		if math.Abs(ins.Delta-want) > 1e-9 {
			t.Fatalf("%s delta %v want %v", name, ins.Delta, want)
		}
	}
	ins := LinearDPInsertion(&rt, 4, req, L, tw.dist)
	if err := Apply(&rt, 4, req, ins, L, tw.dist); err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(4, tw.dist); err != nil {
		t.Fatal(err)
	}
}

// TestCapacityOneWorker: K_w = 1 forbids any pooling — every insertion
// must produce non-overlapping pickup/drop-off pairs.
func TestCapacityOneWorker(t *testing.T) {
	tw := quickTW(t)
	rng := rand.New(rand.NewSource(55))
	rt := Route{Loc: 0, Now: 0}
	served := 0
	for i := 0; i < 30; i++ {
		req := tw.randomRequest(rng, RequestID(i), 0)
		req.Capacity = 1
		L := tw.dist(req.Origin, req.Dest)
		ins := LinearDPInsertion(&rt, 1, req, L, tw.dist)
		if !ins.OK {
			continue
		}
		served++
		if err := Apply(&rt, 1, req, ins, L, tw.dist); err != nil {
			t.Fatal(err)
		}
		if err := rt.Validate(1, tw.dist); err != nil {
			t.Fatal(err)
		}
	}
	if served == 0 {
		t.Fatal("capacity-1 worker served nothing")
	}
	// No pooling: every pickup must be immediately followed by its own
	// drop-off.
	for i := 0; i+1 < len(rt.Stops); i += 2 {
		if rt.Stops[i].Kind != Pickup || rt.Stops[i+1].Kind != Dropoff ||
			rt.Stops[i].Req != rt.Stops[i+1].Req {
			t.Fatalf("pooling with capacity 1 at stops %d,%d", i, i+1)
		}
	}
}

// TestRequestLargerThanAnyWorker is the degenerate rejection path.
func TestRequestLargerThanAnyWorker(t *testing.T) {
	tw := quickTW(t)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 1, Dest: 2, Deadline: 1e9, Penalty: 1, Capacity: 99}
	L := tw.dist(roadnet.VertexID(1), roadnet.VertexID(2))
	if LinearDPInsertion(&rt, 4, req, L, tw.dist).OK {
		t.Fatal("oversized request accepted")
	}
	if lb := LowerBoundInsertion(&rt, 4, req, tw.g, L); !math.IsInf(lb, 1) {
		t.Fatalf("oversized request got finite bound %v", lb)
	}
}
