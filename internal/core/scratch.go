package core

import (
	"math"
	"sync/atomic"

	"repro/internal/roadnet"
)

// Scratch is the reusable planning arena of one planner (or of one
// planning goroutine in the parallel dispatcher): every buffer the
// steady-state Plan path needs, grown on demand and never shrunk, so that
// after a short warm-up the whole decision + planning pipeline — the
// paper's measured response time — runs without a single heap allocation.
//
// Ownership rule: a Scratch belongs to exactly one goroutine at a time.
// The insertion-context buffers inside it are live for the duration of
// one operator call (LinearDP, NaiveDP, Basic, LowerBound), and the
// candidate/bound slices returned by Decide alias the scratch until its
// next use. Sharing one Scratch across concurrent scans therefore
// corrupts the §4.3 auxiliary arrays mid-computation; every entry point
// asserts single ownership with an atomic guard and panics on concurrent
// use (see also the race suite in internal/dispatch). The zero value is
// ready to use.
type Scratch struct {
	busy  atomic.Bool
	ctx   insCtx
	lbs   []WorkerBound
	cands []*Worker
	seq   []visit // BasicInsertion's candidate-route walk buffer
}

// acquire asserts exclusive ownership for the duration of one operator
// call. It is deliberately kept on the hot path: two atomic operations per
// candidate are noise next to an O(n) insertion, and they turn the
// worst kind of concurrency bug — silently corrupted auxiliary arrays
// producing plausible wrong plans — into an immediate panic.
func (sc *Scratch) acquire() {
	if !sc.busy.CompareAndSwap(false, true) {
		panic("core: Scratch used by concurrent scans; give each goroutine its own")
	}
}

func (sc *Scratch) release() { sc.busy.Store(false) }

// grown returns s with length n, reusing capacity and over-allocating on
// growth so steady-state route lengths stop triggering reallocation.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, n+n/2+8)
	}
	return s[:n]
}

// LinearDP is Algorithm 3 (the paper's O(n) insertion) on this scratch's
// buffers: zero allocations once the arena has grown to the route length.
// It computes exactly LinearDPInsertion.
func (sc *Scratch) LinearDP(rt *Route, kw int, req *Request, L float64, dist DistFunc) Insertion {
	sc.acquire()
	defer sc.release()
	c := &sc.ctx
	c.reset(rt, kw, req, L)
	c.fillExact(dist)
	return linearDP(c)
}

// NaiveDP is Algorithm 2 (O(n²) insertion) on this scratch's buffers; it
// computes exactly NaiveDPInsertion.
func (sc *Scratch) NaiveDP(rt *Route, kw int, req *Request, L float64, dist DistFunc) Insertion {
	sc.acquire()
	defer sc.release()
	c := &sc.ctx
	c.reset(rt, kw, req, L)
	c.fillExact(dist)
	return naiveDP(c)
}

// Basic is Algorithm 1 (O(n³) insertion) on this scratch's buffers; it
// computes exactly BasicInsertion. The candidate-route walk reuses one
// visit buffer instead of allocating per position pair.
func (sc *Scratch) Basic(rt *Route, kw int, req *Request, dist DistFunc) Insertion {
	sc.acquire()
	defer sc.release()
	best := Infeasible
	n := rt.Len()
	for i := 0; i <= n; i++ {
		for j := i; j <= n; j++ {
			var delta float64
			var ok bool
			sc.seq, delta, ok = simulateCandidate(sc.seq, rt, kw, req, i, j, dist)
			if ok {
				best.update(delta, i, j)
			}
		}
	}
	return best.clampNonNegative()
}

// LowerBound computes LBΔ* (Lemma 7) on this scratch's buffers; it
// computes exactly LowerBoundInsertion.
func (sc *Scratch) LowerBound(rt *Route, kw int, req *Request, g *roadnet.Graph, L float64) float64 {
	sc.acquire()
	defer sc.release()
	return sc.lowerBound(rt, kw, req, g, L)
}

// lowerBound is LowerBound without the ownership guard, for callers that
// already hold the scratch (Decide's candidate loop).
func (sc *Scratch) lowerBound(rt *Route, kw int, req *Request, g *roadnet.Graph, L float64) float64 {
	c := &sc.ctx
	c.reset(rt, kw, req, L)
	c.fillEuclid(g)
	ins := linearDP(c)
	if !ins.OK {
		return math.Inf(1)
	}
	// Euclidean "detours" can be negative; the true Δ* is never below 0.
	return math.Max(0, ins.Delta)
}

// Decide is Algorithm 4 on this scratch: compute LBΔ* for every candidate
// worker and report whether the request should be rejected outright
// because even the optimistic cost α·min LB exceeds the penalty. The
// returned slice feeds the planning phase (it is not yet sorted;
// pruneGreedyDP sorts it, GreedyDP does not need to) and aliases the
// scratch — it is valid until the scratch's next Decide call.
func (sc *Scratch) Decide(alpha float64, cands []*Worker, req *Request, g *roadnet.Graph, L float64) (lbs []WorkerBound, reject bool) {
	sc.acquire()
	defer sc.release()
	lbs = sc.lbs[:0]
	minLB := math.Inf(1)
	for _, w := range cands {
		lb := sc.lowerBound(&w.Route, w.Capacity, req, g, L)
		if math.IsInf(lb, 1) {
			continue // provably infeasible for this worker
		}
		lbs = append(lbs, WorkerBound{LB: lb, Worker: w})
		if lb < minLB {
			minLB = lb
		}
	}
	sc.lbs = lbs // retain growth across requests
	if len(lbs) == 0 {
		return nil, true
	}
	// Reject when p_r < α·min LB (Algorithm 4 line 5): serving would
	// increase the unified cost more than rejecting.
	return lbs, req.Penalty < alpha*minLB
}

// Candidates retrieves the request's grid-filtered candidate workers into
// this scratch's reusable buffer (valid until the next Candidates call).
func (sc *Scratch) Candidates(f *Fleet, req *Request, now, L float64) []*Worker {
	sc.acquire()
	defer sc.release()
	sc.cands = f.CandidatesAppend(sc.cands[:0], req, now, L)
	return sc.cands
}
