package core

// JSON state encoding of routes and workers, shared by the online dispatch
// service's /v1 API and its snapshot files (FORMATS.md §5). The wire types
// are deliberately separate from the in-memory ones: field names are part
// of a persisted format, stop kinds travel as strings, and decoding
// validates everything it can without an oracle (vertex ranges, array
// lengths, kinds, load accounting). Arrival times are stored rather than
// recomputed so a snapshot round trip is bit-exact.

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// StopState is the wire form of a Stop.
type StopState struct {
	Vertex int64   `json:"vertex"`
	Kind   string  `json:"kind"` // "pickup" | "dropoff"
	Req    int32   `json:"req"`
	Cap    int     `json:"cap"`
	DDL    float64 `json:"ddl"`
}

// RouteState is the wire form of a Route.
type RouteState struct {
	Loc     int64       `json:"loc"`
	Now     float64     `json:"now"`
	Onboard int         `json:"onboard"`
	Stops   []StopState `json:"stops"`
	Arr     []float64   `json:"arr"`
}

// WorkerState is the wire form of a Worker.
type WorkerState struct {
	ID       int32      `json:"id"`
	Capacity int        `json:"capacity"`
	Traveled float64    `json:"traveled"`
	Route    RouteState `json:"route"`
}

// NewRouteState captures rt for the wire.
func NewRouteState(rt *Route) RouteState {
	out := RouteState{
		Loc:     int64(rt.Loc),
		Now:     rt.Now,
		Onboard: rt.Onboard,
		Stops:   make([]StopState, len(rt.Stops)),
		Arr:     append([]float64(nil), rt.Arr...),
	}
	for i, s := range rt.Stops {
		out.Stops[i] = StopState{
			Vertex: int64(s.Vertex),
			Kind:   s.Kind.String(),
			Req:    int32(s.Req),
			Cap:    s.Cap,
			DDL:    s.DDL,
		}
	}
	return out
}

// NewWorkerState captures w for the wire.
func NewWorkerState(w *Worker) WorkerState {
	return WorkerState{
		ID:       int32(w.ID),
		Capacity: w.Capacity,
		Traveled: w.Traveled,
		Route:    NewRouteState(&w.Route),
	}
}

// finite rejects the NaN/Inf values a hand-edited or fuzzed snapshot could
// smuggle into arrival times and deadlines.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Route reconstructs the in-memory route, validating structure against a
// graph with numVertices vertices: vertex ranges, Arr length, stop kinds,
// finite and non-decreasing arrival times, and non-negative running load.
// Deadline feasibility is not checked here — it needs a distance oracle;
// callers that want it run Route.Validate afterwards.
func (s RouteState) Route(numVertices int) (Route, error) {
	nv := int64(numVertices)
	if s.Loc < 0 || s.Loc >= nv {
		return Route{}, fmt.Errorf("core: route location %d out of range [0,%d)", s.Loc, nv)
	}
	if !finite(s.Now) {
		return Route{}, fmt.Errorf("core: route time %v not finite", s.Now)
	}
	if len(s.Arr) != len(s.Stops) {
		return Route{}, fmt.Errorf("core: %d arrival times for %d stops", len(s.Arr), len(s.Stops))
	}
	if s.Onboard < 0 {
		return Route{}, fmt.Errorf("core: negative onboard load %d", s.Onboard)
	}
	rt := Route{
		Loc:     roadnet.VertexID(s.Loc),
		Now:     s.Now,
		Onboard: s.Onboard,
	}
	if len(s.Stops) == 0 {
		return rt, nil
	}
	rt.Stops = make([]Stop, len(s.Stops))
	rt.Arr = append([]float64(nil), s.Arr...)
	load := s.Onboard
	prevArr := s.Now
	for i, st := range s.Stops {
		var kind StopKind
		switch st.Kind {
		case "pickup":
			kind = Pickup
		case "dropoff":
			kind = Dropoff
		default:
			return Route{}, fmt.Errorf("core: stop %d has unknown kind %q", i, st.Kind)
		}
		if st.Vertex < 0 || st.Vertex >= nv {
			return Route{}, fmt.Errorf("core: stop %d vertex %d out of range [0,%d)", i, st.Vertex, nv)
		}
		if st.Cap < 1 {
			return Route{}, fmt.Errorf("core: stop %d has capacity %d < 1", i, st.Cap)
		}
		if !finite(st.DDL) || !finite(s.Arr[i]) {
			return Route{}, fmt.Errorf("core: stop %d has non-finite time", i)
		}
		if s.Arr[i] < prevArr {
			return Route{}, fmt.Errorf("core: stop %d arrival %v before previous %v", i, s.Arr[i], prevArr)
		}
		prevArr = s.Arr[i]
		rt.Stops[i] = Stop{
			Vertex: roadnet.VertexID(st.Vertex),
			Kind:   kind,
			Req:    RequestID(st.Req),
			Cap:    st.Cap,
			DDL:    st.DDL,
		}
		load += rt.Stops[i].loadDelta()
		if load < 0 {
			return Route{}, fmt.Errorf("core: negative load %d after stop %d", load, i)
		}
	}
	return rt, nil
}

// Worker reconstructs the in-memory worker, validating the route against a
// graph with numVertices vertices and the load against the capacity.
func (s WorkerState) Worker(numVertices int) (*Worker, error) {
	if s.Capacity < 1 {
		return nil, fmt.Errorf("core: worker %d has capacity %d < 1", s.ID, s.Capacity)
	}
	if s.Traveled < 0 || !finite(s.Traveled) {
		return nil, fmt.Errorf("core: worker %d has bad traveled %v", s.ID, s.Traveled)
	}
	rt, err := s.Route.Route(numVertices)
	if err != nil {
		return nil, fmt.Errorf("core: worker %d: %w", s.ID, err)
	}
	load := rt.Onboard
	if load > s.Capacity {
		return nil, fmt.Errorf("core: worker %d onboard %d exceeds capacity %d", s.ID, load, s.Capacity)
	}
	for i, st := range rt.Stops {
		load += st.loadDelta()
		if load > s.Capacity {
			return nil, fmt.Errorf("core: worker %d load %d exceeds capacity %d after stop %d",
				s.ID, load, s.Capacity, i)
		}
	}
	return &Worker{
		ID:       WorkerID(s.ID),
		Capacity: s.Capacity,
		Traveled: s.Traveled,
		Route:    rt,
	}, nil
}
