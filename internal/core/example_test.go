package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// Example walks the full single-worker pipeline on a hand-checkable line
// graph: 6 vertices spaced 10 seconds apart.
func Example() {
	g, err := roadnet.LineGraph(6, 10)
	if err != nil {
		log.Fatal(err)
	}
	oracle := shortest.BuildHubLabels(g)
	dist := core.DistFunc(oracle.Dist)

	taxi := &core.Worker{ID: 0, Capacity: 4, Route: core.Route{Loc: 0, Now: 0}}

	// Ride from vertex 1 to vertex 4: 30 s of driving after a 10 s
	// approach, so any deadline ≥ 40 is feasible.
	req := &core.Request{ID: 1, Origin: 1, Dest: 4, Release: 0, Deadline: 100, Penalty: 500, Capacity: 1}
	L := dist(req.Origin, req.Dest)
	ins := core.LinearDPInsertion(&taxi.Route, taxi.Capacity, req, L, dist)
	fmt.Printf("feasible=%v delta=%.0fs positions=(%d,%d)\n", ins.OK, ins.Delta, ins.I, ins.J)

	if err := core.Apply(&taxi.Route, taxi.Capacity, req, ins, L, dist); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stops=%d planned=%.0fs\n", taxi.Route.Len(), taxi.Route.RemainingDist())
	// Output:
	// feasible=true delta=40s positions=(0,0)
	// stops=2 planned=40s
}

// ExampleLowerBoundInsertion shows the decision phase's zero-query bound:
// it never exceeds the exact insertion cost.
func ExampleLowerBoundInsertion() {
	g, err := roadnet.LineGraph(6, 10)
	if err != nil {
		log.Fatal(err)
	}
	oracle := shortest.BuildHubLabels(g)
	dist := core.DistFunc(oracle.Dist)

	rt := core.Route{Loc: 0, Now: 0}
	req := &core.Request{ID: 1, Origin: 2, Dest: 5, Release: 0, Deadline: 500, Penalty: 100, Capacity: 1}
	L := dist(req.Origin, req.Dest)

	lb := core.LowerBoundInsertion(&rt, 4, req, g, L)
	exact := core.LinearDPInsertion(&rt, 4, req, L, dist)
	fmt.Printf("bound<=exact: %v\n", lb <= exact.Delta)
	// Output:
	// bound<=exact: true
}

// ExampleUnifiedCost evaluates Eq. 1 directly.
func ExampleUnifiedCost() {
	g, err := roadnet.LineGraph(4, 10)
	if err != nil {
		log.Fatal(err)
	}
	oracle := shortest.BuildHubLabels(g)
	workers := []*core.Worker{
		{ID: 0, Capacity: 4, Route: core.Route{Loc: 0}, Traveled: 100},
	}
	fleet, err := core.NewFleet(g, oracle.Dist, workers, 1000)
	if err != nil {
		log.Fatal(err)
	}
	rejected := []*core.Request{{ID: 7, Penalty: 25}}
	// UC = α·ΣD(S_w) + Σ penalties = 1·100 + 25.
	fmt.Printf("UC=%.0f\n", core.UnifiedCost(1, fleet, rejected))
	// Output:
	// UC=125
}
