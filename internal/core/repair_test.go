package core

import (
	"math"
	"testing"

	"repro/internal/roadnet"
)

// scaledDist returns a DistFunc over g's shortest paths multiplied by f —
// a stand-in for a traffic slowdown without dragging the overlay into
// core's tests.
func scaledDist(base DistFunc, f float64) DistFunc {
	return func(u, v roadnet.VertexID) float64 { return base(u, v) * f }
}

func repairFixture(t *testing.T) (*roadnet.Graph, DistFunc) {
	t.Helper()
	g, err := roadnet.LineGraph(8, 2) // 8 vertices in a line, 2s per edge
	if err != nil {
		t.Fatal(err)
	}
	dist := func(u, v roadnet.VertexID) float64 {
		d := float64(u - v)
		return math.Abs(d) * 2
	}
	return g, dist
}

func TestRepairRoutesRecomputesArrivalsAndDeadlines(t *testing.T) {
	g, base := repairFixture(t)
	req := &Request{ID: 9, Origin: 2, Dest: 6, Release: 0, Deadline: 100, Penalty: 10, Capacity: 1}
	w := &Worker{ID: 0, Capacity: 4, Route: Route{Loc: 0, Now: 0}}
	ins := LinearDPInsertion(&w.Route, w.Capacity, req, base(req.Origin, req.Dest), base)
	if !ins.OK {
		t.Fatal("insertion infeasible")
	}
	if err := Apply(&w.Route, w.Capacity, req, ins, base(req.Origin, req.Dest), base); err != nil {
		t.Fatal(err)
	}
	if err := w.Route.Validate(w.Capacity, base); err != nil {
		t.Fatal(err)
	}
	oldPickDDL := w.Route.Stops[0].DDL // 100 - 8
	oldArr := append([]float64(nil), w.Route.Arr...)

	fleet, err := NewFleet(g, base, []*Worker{w}, 500)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic doubles every travel time: arrivals double, the pickup
	// deadline tightens to e_r − 2·dis, the drop-off deadline stays e_r.
	slow := scaledDist(base, 2)
	fleet.Dist = slow
	st := fleet.RepairRoutes(slow)
	if st.RoutesRepaired != 1 || st.StopsRepaired != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.InfeasibleStops != 0 {
		t.Fatalf("deadline 100 is generous; nothing should be infeasible: %+v", st)
	}
	for i, a := range w.Route.Arr {
		if math.Abs(a-2*oldArr[i]) > 1e-9 {
			t.Fatalf("arr[%d]=%v want %v", i, a, 2*oldArr[i])
		}
	}
	wantPickDDL := 100.0 - 2*8
	if got := w.Route.Stops[0].DDL; math.Abs(got-wantPickDDL) > 1e-9 {
		t.Fatalf("pickup DDL %v want %v (old %v)", got, wantPickDDL, oldPickDDL)
	}
	if got := w.Route.Stops[1].DDL; got != 100 {
		t.Fatalf("drop-off DDL moved to %v", got)
	}
	// The repaired route validates under the new oracle.
	if err := w.Route.Validate(w.Capacity, slow); err != nil {
		t.Fatal(err)
	}
}

func TestRepairRoutesFlagsInfeasibleStops(t *testing.T) {
	g, base := repairFixture(t)
	// Deadline 14: pickup at 4 (ddl 14-8=6), drop-off at 12 — tight but
	// feasible at base speed.
	req := &Request{ID: 1, Origin: 2, Dest: 6, Release: 0, Deadline: 14, Penalty: 10, Capacity: 1}
	w := &Worker{ID: 0, Capacity: 4, Route: Route{Loc: 0, Now: 0}}
	L := base(req.Origin, req.Dest)
	ins := LinearDPInsertion(&w.Route, w.Capacity, req, L, base)
	if !ins.OK {
		t.Fatal("insertion infeasible at base speed")
	}
	if err := Apply(&w.Route, w.Capacity, req, ins, L, base); err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(g, base, []*Worker{w}, 500)
	if err != nil {
		t.Fatal(err)
	}
	slow := scaledDist(base, 3) // drop-off now at 36 > 14
	fleet.Dist = slow
	st := fleet.RepairRoutes(slow)
	if st.InfeasibleStops != 2 || st.RoutesWithInfeasible != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MaxOverrunSec < 36-14-1e-9 {
		t.Fatalf("max overrun %v want ≥ %v", st.MaxOverrunSec, 36.0-14)
	}
	// Accumulation across epochs.
	var total RepairStats
	total.Add(st)
	total.Add(st)
	if total.InfeasibleStops != 4 || total.MaxOverrunSec != st.MaxOverrunSec {
		t.Fatalf("accumulated: %+v", total)
	}
}

func TestRepairRoutesSkipsIdleAndPairsDuplicateIDs(t *testing.T) {
	g, base := repairFixture(t)
	idle := &Worker{ID: 0, Capacity: 2, Route: Route{Loc: 3, Now: 10}}
	// A route carrying two requests under one reused ID: pickups at 1 and
	// 3, drop-offs at 5 and 7. Pairing must claim each drop-off once.
	dup := &Worker{ID: 1, Capacity: 4, Route: Route{
		Loc: 0, Now: 0,
		Stops: []Stop{
			{Vertex: 1, Kind: Pickup, Req: 5, Cap: 1, DDL: 50},
			{Vertex: 3, Kind: Pickup, Req: 5, Cap: 1, DDL: 60},
			{Vertex: 5, Kind: Dropoff, Req: 5, Cap: 1, DDL: 70},
			{Vertex: 7, Kind: Dropoff, Req: 5, Cap: 1, DDL: 80},
		},
		Arr: []float64{2, 6, 10, 14},
	}}
	fleet, err := NewFleet(g, base, []*Worker{idle, dup}, 500)
	if err != nil {
		t.Fatal(err)
	}
	st := fleet.RepairRoutes(base)
	if st.RoutesRepaired != 1 || st.StopsRepaired != 4 {
		t.Fatalf("stats: %+v", st)
	}
	// First pickup pairs with the FIRST drop-off (vertex 5, ddl 70):
	// ddl = 70 − dis(1,5) = 70 − 8; second with vertex 7: 80 − dis(3,7).
	if got, want := dup.Route.Stops[0].DDL, 70.0-8; math.Abs(got-want) > 1e-9 {
		t.Fatalf("pickup 0 DDL %v want %v", got, want)
	}
	if got, want := dup.Route.Stops[1].DDL, 80.0-8; math.Abs(got-want) > 1e-9 {
		t.Fatalf("pickup 1 DDL %v want %v", got, want)
	}
}

func TestRequestValidateRejectsNonFinite(t *testing.T) {
	ok := Request{ID: 1, Origin: 0, Dest: 1, Release: 5, Deadline: 50, Penalty: 3, Capacity: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	nan := math.NaN()
	cases := map[string]Request{
		"nan release":   {ID: 1, Release: nan, Deadline: 50, Penalty: 3, Capacity: 1},
		"nan deadline":  {ID: 1, Release: 5, Deadline: nan, Penalty: 3, Capacity: 1},
		"nan penalty":   {ID: 1, Release: 5, Deadline: 50, Penalty: nan, Capacity: 1},
		"inf release":   {ID: 1, Release: math.Inf(1), Deadline: math.Inf(1), Penalty: 3, Capacity: 1},
		"inf deadline":  {ID: 1, Release: 5, Deadline: math.Inf(1), Penalty: 3, Capacity: 1},
		"-inf deadline": {ID: 1, Release: 5, Deadline: math.Inf(-1), Penalty: 3, Capacity: 1},
		"inf penalty":   {ID: 1, Release: 5, Deadline: 50, Penalty: math.Inf(1), Capacity: 1},
	}
	for name, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	// NaN deadline is the dangerous one: every comparison against it is
	// false, so without the explicit check it sails past Deadline<Release.
	bad := Request{ID: 1, Release: 5, Deadline: nan, Penalty: 3, Capacity: 1}
	if bad.Deadline < bad.Release {
		t.Fatal("sanity: NaN comparison should be false")
	}
}
