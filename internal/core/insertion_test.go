package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// testWorld bundles a small synthetic city with an exact matrix oracle so
// insertion tests get O(1) exact distances.
type testWorld struct {
	g    *roadnet.Graph
	dist DistFunc
}

func newTestWorld(t testing.TB, rows, cols int, seed int64) *testWorld {
	t.Helper()
	g, err := roadnet.Generate(roadnet.GenConfig{
		Rows: rows, Cols: cols, Spacing: 180, Jitter: 0.3, ArterialEvery: 5,
		MotorwayRing: true, RemoveFrac: 0.1, DetourMin: 1.02, DetourMax: 1.4,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := shortest.NewMatrix(g)
	return &testWorld{g: g, dist: m.Dist}
}

// randomRoute builds a feasible random route for a worker by repeatedly
// applying feasible insertions of random requests, which guarantees the
// route respects all invariants by construction.
func (tw *testWorld) randomRoute(rng *rand.Rand, kw, wantRequests int, now float64) (Route, []*Request) {
	n := tw.g.NumVertices()
	rt := Route{
		Loc: roadnet.VertexID(rng.Intn(n)),
		Now: now,
	}
	var reqs []*Request
	for tries := 0; len(reqs) < wantRequests && tries < wantRequests*12; tries++ {
		req := tw.randomRequest(rng, RequestID(len(reqs)), now)
		L := tw.dist(req.Origin, req.Dest)
		ins := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		if !ins.OK {
			continue
		}
		if err := Apply(&rt, kw, req, ins, L, tw.dist); err != nil {
			panic(err)
		}
		reqs = append(reqs, req)
	}
	return rt, reqs
}

func (tw *testWorld) randomRequest(rng *rand.Rand, id RequestID, now float64) *Request {
	n := tw.g.NumVertices()
	o := roadnet.VertexID(rng.Intn(n))
	d := roadnet.VertexID(rng.Intn(n))
	for d == o {
		d = roadnet.VertexID(rng.Intn(n))
	}
	L := tw.dist(o, d)
	// Deadline between "tight" and "loose": L + U(2, 20) minutes of slack.
	ddl := now + L + 120 + rng.Float64()*1080
	return &Request{
		ID: id, Origin: o, Dest: d,
		Release: now, Deadline: ddl,
		Penalty:  10 * L,
		Capacity: 1 + rng.Intn(3),
	}
}

func TestBasicInsertionEmptyRoute(t *testing.T) {
	tw := newTestWorld(t, 8, 8, 1)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 5, Dest: 20, Release: 0, Deadline: 4000, Penalty: 1, Capacity: 1}
	ins := BasicInsertion(&rt, 4, req, tw.dist)
	if !ins.OK {
		t.Fatal("insertion into empty route must be feasible with a loose deadline")
	}
	want := tw.dist(0, 5) + tw.dist(5, 20)
	if math.Abs(ins.Delta-want) > 1e-6 {
		t.Fatalf("delta=%v want %v", ins.Delta, want)
	}
	if ins.I != 0 || ins.J != 0 {
		t.Fatalf("positions=(%d,%d) want (0,0)", ins.I, ins.J)
	}
}

func TestInsertionRespectsDeadline(t *testing.T) {
	tw := newTestWorld(t, 8, 8, 2)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 5, Dest: 20, Release: 0, Deadline: 1, Penalty: 1, Capacity: 1}
	if ins := BasicInsertion(&rt, 4, req, tw.dist); ins.OK {
		t.Fatal("impossible deadline accepted by basic")
	}
	L := tw.dist(roadnet.VertexID(5), roadnet.VertexID(20))
	if ins := LinearDPInsertion(&rt, 4, req, L, tw.dist); ins.OK {
		t.Fatal("impossible deadline accepted by linear DP")
	}
}

func TestInsertionRespectsCapacity(t *testing.T) {
	tw := newTestWorld(t, 8, 8, 3)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 5, Dest: 20, Release: 0, Deadline: 1e6, Penalty: 1, Capacity: 5}
	if ins := BasicInsertion(&rt, 4, req, tw.dist); ins.OK {
		t.Fatal("request larger than worker capacity accepted")
	}
	L := tw.dist(roadnet.VertexID(5), roadnet.VertexID(20))
	if ins := LinearDPInsertion(&rt, 4, req, L, tw.dist); ins.OK {
		t.Fatal("request larger than worker capacity accepted by linear DP")
	}
	if ins := NaiveDPInsertion(&rt, 4, req, L, tw.dist); ins.OK {
		t.Fatal("request larger than worker capacity accepted by naive DP")
	}
}

func TestInsertionOnboardCapacity(t *testing.T) {
	// Worker already carrying Onboard=3 of capacity 4: a capacity-2
	// request must wait for the onboard drop-off or be rejected.
	tw := newTestWorld(t, 8, 8, 4)
	dropV := roadnet.VertexID(30)
	rt := Route{
		Loc: 0, Now: 0, Onboard: 3,
		Stops: []Stop{{Vertex: dropV, Kind: Dropoff, Req: 99, Cap: 3, DDL: 1e6}},
	}
	rt.Recompute(tw.dist)
	req := &Request{ID: 1, Origin: 5, Dest: 20, Release: 0, Deadline: 1e6, Penalty: 1, Capacity: 2}
	ins := BasicInsertion(&rt, 4, req, tw.dist)
	if !ins.OK {
		t.Fatal("should be feasible after the onboard drop-off")
	}
	if ins.I < 1 {
		t.Fatalf("pickup must come after the drop-off, got I=%d", ins.I)
	}
}

// TestOperatorsAgree is the central cross-validation property test: on
// thousands of random (route, request) instances, the O(n³) basic
// insertion, the O(n²) naive DP and the O(n) linear DP must agree on
// feasibility and on the minimal increased distance.
func TestOperatorsAgree(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 7)
	rng := rand.New(rand.NewSource(99))
	trials := 1500
	if testing.Short() {
		trials = 300
	}
	feasible := 0
	for trial := 0; trial < trials; trial++ {
		kw := 2 + rng.Intn(5)
		now := rng.Float64() * 1000
		rt, _ := tw.randomRoute(rng, kw, rng.Intn(5), now)
		req := tw.randomRequest(rng, 1000, now)
		if rng.Intn(4) == 0 {
			// A share of tight deadlines exercises the infeasible paths.
			req.Deadline = now + tw.dist(req.Origin, req.Dest)*(1+rng.Float64()*0.1)
		}
		L := tw.dist(req.Origin, req.Dest)

		basic := BasicInsertion(&rt, kw, req, tw.dist)
		naive := NaiveDPInsertion(&rt, kw, req, L, tw.dist)
		linear := LinearDPInsertion(&rt, kw, req, L, tw.dist)

		if basic.OK != naive.OK || basic.OK != linear.OK {
			t.Fatalf("trial %d: feasibility disagrees: basic=%v naive=%v linear=%v (route %d stops, kw=%d)",
				trial, basic.OK, naive.OK, linear.OK, rt.Len(), kw)
		}
		if !basic.OK {
			continue
		}
		feasible++
		if math.Abs(basic.Delta-naive.Delta) > 1e-5*(1+basic.Delta) {
			t.Fatalf("trial %d: naive delta %v != basic %v", trial, naive.Delta, basic.Delta)
		}
		if math.Abs(basic.Delta-linear.Delta) > 1e-5*(1+basic.Delta) {
			t.Fatalf("trial %d: linear delta %v != basic %v", trial, linear.Delta, basic.Delta)
		}
		// The positions chosen by each operator must themselves be
		// feasible and achieve the reported delta.
		for name, ins := range map[string]Insertion{"naive": naive, "linear": linear} {
			_, d, ok := simulateCandidate(nil, &rt, kw, req, ins.I, ins.J, tw.dist)
			if !ok {
				t.Fatalf("trial %d: %s chose infeasible positions (%d,%d)", trial, name, ins.I, ins.J)
			}
			if math.Abs(d-ins.Delta) > 1e-5*(1+d) {
				t.Fatalf("trial %d: %s positions give delta %v, reported %v", trial, name, d, ins.Delta)
			}
		}
	}
	if feasible < trials/4 {
		t.Fatalf("only %d/%d trials feasible; generator too hostile to be meaningful", feasible, trials)
	}
}

// TestApplyPreservesInvariants checks that applying a chosen insertion
// yields a route that passes full validation, with correct incremental
// arrival times, on many random instances.
func TestApplyPreservesInvariants(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 13)
	rng := rand.New(rand.NewSource(5))
	trials := 800
	if testing.Short() {
		trials = 150
	}
	for trial := 0; trial < trials; trial++ {
		kw := 2 + rng.Intn(5)
		now := rng.Float64() * 500
		rt, _ := tw.randomRoute(rng, kw, rng.Intn(6), now)
		req := tw.randomRequest(rng, 2000, now)
		L := tw.dist(req.Origin, req.Dest)
		ins := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		if !ins.OK {
			continue
		}
		before := rt.RemainingDist()
		if err := Apply(&rt, kw, req, ins, L, tw.dist); err != nil {
			t.Fatalf("trial %d: apply failed: %v", trial, err)
		}
		if err := rt.Validate(kw, tw.dist); err != nil {
			t.Fatalf("trial %d: route invalid after apply: %v", trial, err)
		}
		after := rt.RemainingDist()
		if math.Abs((after-before)-ins.Delta) > 1e-5*(1+after) {
			t.Fatalf("trial %d: distance grew by %v, insertion promised %v", trial, after-before, ins.Delta)
		}
	}
}

// TestLowerBoundSound checks LBΔ* ≤ Δ* on random instances and that an
// LB of +Inf implies real infeasibility.
func TestLowerBoundSound(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 17)
	rng := rand.New(rand.NewSource(8))
	trials := 1200
	if testing.Short() {
		trials = 250
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		kw := 2 + rng.Intn(5)
		now := rng.Float64() * 500
		rt, _ := tw.randomRoute(rng, kw, rng.Intn(6), now)
		req := tw.randomRequest(rng, 3000, now)
		if rng.Intn(3) == 0 {
			req.Deadline = now + tw.dist(req.Origin, req.Dest)*(1+rng.Float64()*0.2)
		}
		L := tw.dist(req.Origin, req.Dest)
		lb := LowerBoundInsertion(&rt, kw, req, tw.g, L)
		exact := LinearDPInsertion(&rt, kw, req, L, tw.dist)
		if math.IsInf(lb, 1) {
			if exact.OK {
				t.Fatalf("trial %d: LB says infeasible but exact found delta %v", trial, exact.Delta)
			}
			continue
		}
		if exact.OK {
			checked++
			if lb > exact.Delta+1e-5*(1+exact.Delta) {
				t.Fatalf("trial %d: LB %v exceeds exact delta %v", trial, lb, exact.Delta)
			}
		}
	}
	if checked < trials/5 {
		t.Fatalf("only %d/%d trials checked the bound", checked, trials)
	}
}

func TestApplyRejectsBadInsertion(t *testing.T) {
	tw := newTestWorld(t, 6, 6, 1)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 3, Dest: 7, Deadline: 1e6, Capacity: 1}
	L := tw.dist(roadnet.VertexID(3), roadnet.VertexID(7))
	if err := Apply(&rt, 4, req, Infeasible, L, tw.dist); err == nil {
		t.Fatal("infeasible insertion applied")
	}
	if err := Apply(&rt, 4, req, Insertion{OK: true, I: 2, J: 5, Delta: 1}, L, tw.dist); err == nil {
		t.Fatal("out-of-range insertion applied")
	}
}

func TestRouteValidateCatchesCorruption(t *testing.T) {
	tw := newTestWorld(t, 6, 6, 2)
	rt := Route{Loc: 0, Now: 0}
	req := &Request{ID: 1, Origin: 3, Dest: 7, Deadline: 1e6, Capacity: 1}
	L := tw.dist(roadnet.VertexID(3), roadnet.VertexID(7))
	ins := LinearDPInsertion(&rt, 4, req, L, tw.dist)
	if !ins.OK {
		t.Fatal("setup insertion failed")
	}
	if err := Apply(&rt, 4, req, ins, L, tw.dist); err != nil {
		t.Fatal(err)
	}
	if err := rt.Validate(4, tw.dist); err != nil {
		t.Fatalf("valid route rejected: %v", err)
	}
	// Corrupt the arrival cache.
	bad := rt.Clone()
	bad.Arr[0] += 100
	if err := bad.Validate(4, tw.dist); err == nil {
		t.Fatal("corrupted Arr not caught")
	}
	// Swap pickup and drop-off (precedence violation shows as pickup
	// without matching drop... the swapped route drops before picking).
	bad2 := rt.Clone()
	bad2.Stops[0], bad2.Stops[1] = bad2.Stops[1], bad2.Stops[0]
	if err := bad2.Validate(4, tw.dist); err == nil {
		t.Fatal("precedence violation not caught")
	}
	// Capacity violation.
	bad3 := rt.Clone()
	bad3.Onboard = 4
	if err := bad3.Validate(4, tw.dist); err == nil {
		t.Fatal("capacity violation not caught")
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{ID: 1, Deadline: 10, Release: 0, Capacity: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Request{
		{ID: 1, Deadline: 10, Capacity: 0},
		{ID: 1, Deadline: -1, Release: 0, Capacity: 1},
		{ID: 1, Deadline: 10, Capacity: 1, Penalty: -2},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestStopKindString(t *testing.T) {
	if Pickup.String() != "pickup" || Dropoff.String() != "dropoff" {
		t.Fatal("StopKind strings wrong")
	}
}

// TestLinearDPQueryCount verifies Lemma 9: the linear DP needs exactly
// 2(n+1) distance queries given L (the paper counts 2n+1 with l₀ among
// its n vertices).
func TestLinearDPQueryCount(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 23)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		rt, _ := tw.randomRoute(rng, 4, 3, 0)
		req := tw.randomRequest(rng, 500, 0)
		L := tw.dist(req.Origin, req.Dest)
		queries := 0
		counting := func(u, v roadnet.VertexID) float64 {
			queries++
			return tw.dist(u, v)
		}
		LinearDPInsertion(&rt, 4, req, L, counting)
		want := 2 * (rt.Len() + 1)
		if queries != want {
			t.Fatalf("trial %d: %d queries, want %d (n=%d)", trial, queries, want, rt.Len())
		}
	}
}

// TestLowerBoundZeroQueries verifies the decision phase's zero-query
// property (Lemma 7): LBΔ* must not touch the distance oracle at all.
func TestLowerBoundZeroQueries(t *testing.T) {
	tw := newTestWorld(t, 8, 8, 29)
	rng := rand.New(rand.NewSource(4))
	rt, _ := tw.randomRoute(rng, 4, 4, 0)
	req := tw.randomRequest(rng, 600, 0)
	L := tw.dist(req.Origin, req.Dest)
	LowerBoundInsertion(&rt, 4, req, tw.g, L) // must not panic or query
	// The signature takes no oracle; compile-time enforcement is the test,
	// plus it must return a finite bound here.
	if lb := LowerBoundInsertion(&rt, 4, req, tw.g, L); math.IsInf(lb, 1) {
		t.Fatal("expected feasible lower bound")
	}
}
