package core

import (
	"math"
	"time"
)

// Result records the outcome of handling one request.
type Result struct {
	Served bool
	Worker WorkerID // valid when Served
	Delta  float64  // increased travel time when Served
	// Deferred marks a decision postponed by a batching planner; the
	// simulator collects the eventual outcome via the Deferring interface.
	Deferred bool
}

// Planner handles dynamically arriving requests against a fleet. Planners
// mutate worker routes when they serve a request; the simulator owns
// worker movement and metrics.
type Planner interface {
	Name() string
	// OnRequest decides and, if serving, plans request req arriving at
	// absolute time now. Implementations may defer the decision
	// (batching); such planners return Result{Deferred: true} and also
	// implement Deferring.
	OnRequest(now float64, req *Request) Result
}

// Deferring is implemented by planners that postpone decisions (batch).
type Deferring interface {
	// TakeDecided returns and clears the results decided since the last
	// call (e.g. by an internal window flush during OnRequest).
	TakeDecided() []DeferredResult
	// FlushAll decides everything still pending; the simulator calls it
	// once after the last request.
	FlushAll(now float64)
}

// DeferredResult pairs a deferred request with its eventual outcome.
type DeferredResult struct {
	Req    *Request
	Result Result
}

// InsertionFunc is the pluggable insertion operator of a greedy planner;
// (*Scratch).LinearDP is the paper's choice, the others enable ablations.
// The operator runs on the caller-owned scratch arena so the planning
// path stays allocation-free; method expressions on *Scratch have exactly
// this signature.
type InsertionFunc func(sc *Scratch, rt *Route, kw int, req *Request, L float64, dist DistFunc) Insertion

// Config parameterizes the greedy planners.
type Config struct {
	// Alpha is the weight α of total travel distance in the unified cost.
	Alpha float64
	// Prune enables the Lemma 8 pre-ordered pruning (pruneGreedyDP);
	// disabled it yields the GreedyDP ablation.
	Prune bool
	// PostCheck rejects a request after planning when α·Δ* > p_r, i.e.
	// when serving it would raise the unified cost more than its penalty.
	// The paper's Algorithm 5 stops at the decision-phase lower-bound
	// check; PostCheck is the natural strengthening and is on by default
	// (see DESIGN.md §6). Set it false for strictly-paper behavior.
	PostCheck bool
	// Insertion is the insertion operator; nil means (*Scratch).LinearDP.
	Insertion InsertionFunc
}

// Greedy is the two-phase solution of §5: a decision phase driven by
// Euclidean lower bounds and a planning phase that inserts the request
// into the best worker. With Prune on it is pruneGreedyDP (Algorithm 5);
// off it is the GreedyDP ablation.
//
// Each planner owns one Scratch arena, reused across requests: after a
// short warm-up, steady-state Plan calls perform zero heap allocations.
// Consequently a Greedy instance is NOT safe for concurrent use — not
// even for the otherwise read-only Plan (the scratch guard panics if two
// goroutines try). Use internal/dispatch's ParallelGreedy, which draws
// scratches from a pool, when Plan must be called concurrently.
type Greedy struct {
	fleet *Fleet
	cfg   Config
	name  string
	sc    Scratch
	// obs and tr are the introspection hook: tr is the planner-owned
	// arena record (reused across requests, so observation allocates
	// nothing), populated and handed to obs only when obs is non-nil.
	obs PlanObserver
	tr  PlanTrace
}

// NewPruneGreedyDP returns the paper's pruneGreedyDP planner.
func NewPruneGreedyDP(fleet *Fleet, alpha float64) *Greedy {
	return NewGreedy(fleet, Config{Alpha: alpha, Prune: true, PostCheck: true}, "pruneGreedyDP")
}

// NewGreedyDP returns the GreedyDP ablation (no Lemma 8 pruning).
func NewGreedyDP(fleet *Fleet, alpha float64) *Greedy {
	return NewGreedy(fleet, Config{Alpha: alpha, Prune: false, PostCheck: true}, "GreedyDP")
}

// NewGreedy returns a greedy planner with full configuration control.
func NewGreedy(fleet *Fleet, cfg Config, name string) *Greedy {
	if cfg.Insertion == nil {
		cfg.Insertion = (*Scratch).LinearDP
	}
	return &Greedy{fleet: fleet, cfg: cfg, name: name}
}

// Name implements Planner.
func (p *Greedy) Name() string { return p.name }

// SetObserver implements Observable: attach (or with nil, detach) a plan
// observer. Like Plan itself, it must not race with a Plan call.
func (p *Greedy) SetObserver(o PlanObserver) { p.obs = o }

// OnRequest implements Algorithm 5 for a single request.
func (p *Greedy) OnRequest(now float64, req *Request) Result {
	bestW, bestIns, L := p.Plan(now, req)
	if bestW == nil {
		return Result{}
	}
	if err := Apply(&bestW.Route, bestW.Capacity, req, bestIns, L, p.fleet.Dist); err != nil {
		// An insertion reported feasible must apply cleanly; failure here
		// is a programming error, not a runtime condition.
		panic(err)
	}
	return Result{Served: true, Worker: bestW.ID, Delta: bestIns.Delta}
}

// Plan runs both phases of Algorithm 5 without mutating any route,
// returning the chosen worker and insertion (nil when the request is
// rejected). Exposed so ablations can compare planning decisions on
// identical fleet state. With an observer attached it additionally emits
// the PlanStart/PlanDone introspection callbacks — on the planner-owned
// trace arena, so observation stays allocation-free, and strictly after
// every decision-affecting operation, so it cannot change the outcome.
func (p *Greedy) Plan(now float64, req *Request) (*Worker, Insertion, float64) {
	if p.obs == nil {
		return p.plan(now, req, nil)
	}
	p.obs.PlanStart(now, req)
	start := time.Now()
	tr := &p.tr
	*tr = PlanTrace{Req: req, Now: now, Chosen: -1, MinLB: math.Inf(1)}
	w, ins, L := p.plan(now, req, tr)
	tr.L = L
	if w != nil {
		tr.Ins = ins
		tr.Chosen = w.ID
		tr.Reason = ReasonServed
	}
	tr.Pruned = tr.Feasible - int(tr.Stats.Evaluated)
	tr.PlanNs = time.Since(start).Nanoseconds()
	p.obs.PlanDone(tr)
	return w, ins, L
}

// plan is Plan's uninstrumented body; tr is nil when no observer is
// attached (the steady-state hot path) and collects phase facts otherwise.
func (p *Greedy) plan(now float64, req *Request, tr *PlanTrace) (*Worker, Insertion, float64) {
	f := p.fleet
	L := f.Dist(req.Origin, req.Dest) // the decision phase's one query

	cands := p.sc.Candidates(f, req, now, L)
	if tr != nil {
		tr.Candidates = len(cands)
	}
	if len(cands) == 0 {
		if tr != nil {
			tr.Reason = ReasonNoCandidates
		}
		return nil, Infeasible, L
	}

	// Phase 1: decision (Algorithm 4).
	lbs, reject := p.sc.Decide(p.cfg.Alpha, cands, req, f.Graph, L)
	if tr != nil {
		tr.Feasible = len(lbs)
		for _, wb := range lbs {
			if wb.LB < tr.MinLB {
				tr.MinLB = wb.LB
			}
		}
	}
	if reject {
		if tr != nil {
			tr.LBs = lbs
			tr.Reason = ReasonDecisionBound
		}
		return nil, Infeasible, L
	}

	// Phase 2: planning. With pruning, scan workers in ascending LBΔ*
	// order and stop once the best exact Δ* undercuts the next lower
	// bound (Lemma 8). The scan lives in EvalCandidatesSerial; the
	// parallel dispatcher runs the concurrent twin (EvalCandidates) with
	// a shared cursor and bound, provably selecting the same winner.
	if p.cfg.Prune {
		SortWorkerBounds(lbs)
	}
	var st *PlanStats
	if tr != nil {
		tr.LBs = lbs
		st = &tr.Stats
	}
	bestW, bestIns := EvalCandidatesSerial(&p.sc, p.cfg.Insertion, p.cfg.Prune, lbs, req, L, f.Dist, st)
	if bestW == nil {
		if tr != nil {
			tr.Reason = ReasonNoFeasibleInsertion
		}
		return nil, Infeasible, L
	}
	if p.cfg.PostCheck && p.cfg.Alpha*bestIns.Delta > req.Penalty {
		if tr != nil {
			tr.Reason = ReasonPostCheck
			tr.Ins = bestIns // the infeasible-by-economics plan, for the record
		}
		return nil, Infeasible, L
	}
	return bestW, bestIns, L
}

// UnifiedCost is Eq. 1: UC(W,R) = α·Σ_w D(S_w) + Σ_{r∈R⁻} p_r.
func UnifiedCost(alpha float64, fleet *Fleet, rejected []*Request) float64 {
	cost := alpha * fleet.TotalDistance()
	for _, r := range rejected {
		cost += r.Penalty
	}
	return cost
}

// Revenue is Eq. 2: the platform revenue c_r·Σ_{r∈R⁺} dis(o_r,d_r) −
// c_w·Σ_w D(S_w). The paper shows maximizing it is equivalent to
// minimizing UnifiedCost with α = c_w and p_r = c_r·dis(o_r,d_r).
func Revenue(cr, cw float64, fleet *Fleet, served []*Request) float64 {
	income := 0.0
	for _, r := range served {
		income += cr * fleet.Dist(r.Origin, r.Dest)
	}
	return income - cw*fleet.TotalDistance()
}

// ServedRate is |R⁺| / |R|.
func ServedRate(served, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}
