package core

import (
	"fmt"
	"math"

	"repro/internal/roadnet"
)

// Insertion is the outcome of an insertion operator (Definition 6): insert
// o_r after position I and d_r after position J of the route (positions
// count vertices l₀..l_n, so 0 means "right after the current location" and
// n means "append at the end"; I ≤ J). Delta is the increased travel time.
type Insertion struct {
	OK    bool
	I, J  int
	Delta float64
}

// Infeasible is the result reported when no feasible insertion exists.
var Infeasible = Insertion{OK: false, Delta: math.Inf(1)}

// better reports whether (delta, i, j) improves on ins, breaking ties by
// earliest positions to keep all operators deterministic and comparable.
func (ins *Insertion) better(delta float64, i, j int) bool {
	if !ins.OK {
		return true
	}
	if delta < ins.Delta-feasEps {
		return true
	}
	if delta > ins.Delta+feasEps {
		return false
	}
	if i != ins.I {
		return i < ins.I
	}
	return j < ins.J
}

func (ins *Insertion) update(delta float64, i, j int) {
	if ins.better(delta, i, j) {
		ins.OK = true
		ins.Delta = delta
		ins.I = i
		ins.J = j
	}
}

// clampNonNegative snaps floating-point noise out of the result: a true
// insertion can never shorten a route (triangle inequality), but detour
// arithmetic can produce deltas like −1e-12, which would break the
// Δ* ≥ LBΔ* ≥ 0 invariant the Lemma 8 pruning relies on.
func (ins *Insertion) clampNonNegative() Insertion {
	if ins.OK && ins.Delta < 0 {
		ins.Delta = 0
	}
	return *ins
}

// insCtx carries the auxiliary arrays of §4.3 (Eq. 6–9) plus the per-stop
// distances to the new request's origin and destination. Building it from
// the cached route arrivals costs no distance queries for ddl/arr/slack/
// picked; distO/distD cost 2(n+1) queries when exact (Lemma 9) or zero
// when filled with Euclidean lower bounds (decision phase, Lemma 7).
//
// The arrays are owned by the enclosing Scratch and reused across
// requests (grown, never shrunk), which is what makes the steady-state
// planning path allocation-free.
type insCtx struct {
	rt     *Route
	kw     int
	req    *Request
	L      float64 // dis(o_r, d_r)
	n      int     // number of stops
	distO  []float64
	distD  []float64
	slack  []float64
	picked []int
}

// reset re-points the context at (rt, kw, req) and rebuilds the slack and
// picked arrays in the reused buffers; distO/distD still need fillExact or
// fillEuclid.
func (c *insCtx) reset(rt *Route, kw int, req *Request, L float64) {
	n := rt.Len()
	c.rt, c.kw, c.req, c.L, c.n = rt, kw, req, L, n
	c.distO = grown(c.distO, n+1)
	c.distD = grown(c.distD, n+1)
	c.slack = grown(c.slack, n+1)
	c.picked = grown(c.picked, n+1)
	// slack[k] = min_{k'>k} (ddl[k'] − arr[k']); slack[n] = +Inf (Eq. 8).
	c.slack[n] = math.Inf(1)
	for k := n - 1; k >= 0; k-- {
		gap := rt.ddlAt(k+1) - rt.arrAt(k+1)
		c.slack[k] = math.Min(c.slack[k+1], gap)
	}
	// picked[k]: onboard load after leaving vertex k (Eq. 9).
	c.picked[0] = rt.Onboard
	for k := 1; k <= n; k++ {
		c.picked[k] = c.picked[k-1] + rt.Stops[k-1].loadDelta()
	}
}

// fillExact populates distO/distD with exact oracle distances: 2(n+1)
// queries. With the one L query this is the 2n+1 (paper counts l₀ among
// the n route vertices) of Lemma 9.
func (c *insCtx) fillExact(dist DistFunc) {
	for k := 0; k <= c.n; k++ {
		v := c.rt.vertexAt(k)
		c.distO[k] = dist(v, c.req.Origin)
		c.distD[k] = dist(v, c.req.Dest)
	}
}

// fillEuclid populates distO/distD with Euclidean travel-time lower bounds:
// zero distance queries (Lemma 7).
func (c *insCtx) fillEuclid(g *roadnet.Graph) {
	for k := 0; k <= c.n; k++ {
		v := c.rt.vertexAt(k)
		c.distO[k] = g.EuclidTime(v, c.req.Origin)
		c.distD[k] = g.EuclidTime(v, c.req.Dest)
	}
}

// det1 is det(l_i, o_r, l_{i+1}) for i < n (Fig. 2c's pickup detour).
func (c *insCtx) det1(i int) float64 {
	return c.distO[i] + c.distO[i+1] - c.rt.legDist(i+1)
}

// det2 is det(l_j, d_r, l_{j+1}); for j = n it degenerates to dis(l_n, d_r).
func (c *insCtx) det2(j int) float64 {
	if j == c.n {
		return c.distD[c.n]
	}
	return c.distD[j] + c.distD[j+1] - c.rt.legDist(j+1)
}

// deltaEqual is Δ_{i,i} (Eq. 5's first two cases).
func (c *insCtx) deltaEqual(i int) float64 {
	if i == c.n {
		return c.distO[c.n] + c.L
	}
	return c.distO[i] + c.L + c.distD[i+1] - c.rt.legDist(i+1)
}

// feasibleEqual checks the i = j case at position k: capacity (Lemma 5(1)),
// the request's own deadline (Lemma 4(3)) and the shift of later stops
// (Lemma 4(4)); delta must be deltaEqual(k).
func (c *insCtx) feasibleEqual(k int, delta float64) bool {
	if c.picked[k] > c.kw-c.req.Capacity {
		return false
	}
	if c.rt.arrAt(k)+c.distO[k]+c.L > c.req.Deadline+feasEps {
		return false
	}
	return delta <= c.slack[k]+feasEps
}

// LinearDPInsertion is Algorithm 3: the paper's O(n) insertion. It scans
// delivery positions j once, maintaining Dio[j] = min_{i<j} det(l_i, o_r,
// l_{i+1}) and its argmin Plc[j] via the DP of Eq. 11–12, and handles the
// i = j special cases directly. L must be dis(o_r, d_r).
//
// This convenience form allocates a fresh context per call; planners use
// Scratch.LinearDP, which reuses one arena across requests.
func LinearDPInsertion(rt *Route, kw int, req *Request, L float64, dist DistFunc) Insertion {
	var sc Scratch
	return sc.LinearDP(rt, kw, req, L, dist)
}

// linearDP runs Algorithm 3 on a prepared context (exact or lower-bound
// distances; with lower bounds the result value is LBΔ*, Eq. 17).
func linearDP(c *insCtx) Insertion {
	best := Infeasible
	dio := math.Inf(1) // Dio[j]: min detour for inserting o_r among i < j
	plc := -1          // Plc[j]
	kwFree := c.kw - c.req.Capacity
	for j := 0; j <= c.n; j++ {
		// i = j special cases (Fig. 2a, 2b).
		if d := c.deltaEqual(j); c.feasibleEqual(j, d) {
			best.update(d, j, j)
		}
		// General case i < j (Fig. 2c), via Corollary 1.
		if j > 0 && plc >= 0 {
			if c.picked[j] <= kwFree &&
				c.rt.arrAt(j)+dio+c.distD[j] <= c.req.Deadline+feasEps {
				if d := dio + c.det2(j); d <= c.slack[j]+feasEps {
					best.update(d, plc, j)
				}
			}
		}
		// Prune: arrivals are non-decreasing, so once arr[j] exceeds e_r no
		// later pickup or delivery can meet the request's deadline
		// (Algorithm 3 line 8).
		if c.rt.arrAt(j) > c.req.Deadline+feasEps {
			break
		}
		// DP transition to j+1 (Eq. 11–12): candidate i = j joins.
		if j < c.n {
			if c.picked[j] > kwFree {
				// Capacity reset: no pickup at or before j can carry the
				// request past vertex j (Lemma 5).
				dio = math.Inf(1)
				plc = -1
			} else if d := c.det1(j); d <= c.slack[j]+feasEps && d < dio {
				dio = d
				plc = j
			}
		}
	}
	return best.clampNonNegative()
}

// NaiveDPInsertion is Algorithm 2: enumerate all O(n²) position pairs but
// check feasibility and compute Δ in O(1) via the auxiliary arrays. Like
// LinearDPInsertion, this convenience form allocates; see Scratch.NaiveDP.
func NaiveDPInsertion(rt *Route, kw int, req *Request, L float64, dist DistFunc) Insertion {
	var sc Scratch
	return sc.NaiveDP(rt, kw, req, L, dist)
}

// naiveDP runs Algorithm 2 on a prepared context.
func naiveDP(c *insCtx) Insertion {
	best := Infeasible
	kwFree := c.kw - c.req.Capacity
	for i := 0; i <= c.n; i++ {
		// Lemma 4(1)-style prune: by the triangle inequality
		// arr[i'] + dis(l_i', o_r) is non-decreasing in i', so once the
		// pickup cannot meet e_r − L no later i can (Algorithm 2 line 4).
		if c.rt.arrAt(i)+c.distO[i]+c.L > c.req.Deadline+feasEps {
			break
		}
		if c.picked[i] > kwFree { // Lemma 5(1) (Algorithm 2 line 5)
			continue
		}
		if d := c.deltaEqual(i); d <= c.slack[i]+feasEps {
			best.update(d, i, i)
		}
		if i == c.n {
			continue
		}
		d1 := c.det1(i)
		if d1 > c.slack[i]+feasEps { // Lemma 4(2) (Algorithm 2 line 6)
			continue
		}
		for j := i + 1; j <= c.n; j++ {
			if c.picked[j] > kwFree { // Lemma 5(2) (Algorithm 2 line 8)
				break
			}
			// Lemma 4(3): arrival at d_r. By the triangle inequality
			// arr[j] + dis(l_j, d_r) is non-decreasing in j, so break.
			if c.rt.arrAt(j)+d1+c.distD[j] > c.req.Deadline+feasEps {
				break
			}
			delta := d1 + c.det2(j)
			if delta <= c.slack[j]+feasEps { // Lemma 4(4)
				best.update(delta, i, j)
			}
		}
	}
	return best.clampNonNegative()
}

// BasicInsertion is Algorithm 1: enumerate all O(n²) position pairs and
// check each candidate route from scratch in O(n) time and O(n) distance
// queries, for O(n³) total work. It is also the reference implementation
// the DP variants are validated against. See Scratch.Basic for the
// buffer-reusing form the baselines run.
func BasicInsertion(rt *Route, kw int, req *Request, dist DistFunc) Insertion {
	var sc Scratch
	return sc.Basic(rt, kw, req, dist)
}

// visit is one stop of a candidate route walked by simulateCandidate.
type visit struct {
	vertex roadnet.VertexID
	ddl    float64
	load   int
}

// simulateCandidate walks the route that results from inserting o_r after
// position i and d_r after position j, recomputing every arrival time with
// fresh distance queries and checking every deadline and capacity
// constraint. It returns the increased travel time. The visit sequence is
// built in buf (reused across calls, returned for reuse).
func simulateCandidate(buf []visit, rt *Route, kw int, req *Request, i, j int, dist DistFunc) ([]visit, float64, bool) {
	n := rt.Len()
	if i < 0 || j < i || j > n {
		return buf, 0, false
	}
	if req.Capacity > kw {
		return buf, 0, false
	}
	seq := buf[:0]
	pickupDDL := req.Deadline - dist(req.Origin, req.Dest)
	for k := 0; k < n; k++ {
		if k == i {
			seq = append(seq, visit{req.Origin, pickupDDL, req.Capacity})
		}
		if k == j && i < j {
			seq = append(seq, visit{req.Dest, req.Deadline, -req.Capacity})
		}
		if k == i && i == j {
			seq = append(seq, visit{req.Dest, req.Deadline, -req.Capacity})
		}
		s := rt.Stops[k]
		seq = append(seq, visit{s.Vertex, s.DDL, s.loadDelta()})
	}
	if i == n {
		seq = append(seq, visit{req.Origin, pickupDDL, req.Capacity})
	}
	if j == n {
		seq = append(seq, visit{req.Dest, req.Deadline, -req.Capacity})
	}

	t := rt.Now
	prev := rt.Loc
	load := rt.Onboard
	for _, v := range seq {
		t += dist(prev, v.vertex)
		if t > v.ddl+feasEps {
			return seq, 0, false
		}
		load += v.load
		if load > kw {
			return seq, 0, false
		}
		prev = v.vertex
	}
	oldEnd := rt.PlannedEnd()
	return seq, (t - rt.Now) - (oldEnd - rt.Now), true
}

// Apply splices the chosen insertion into the route and updates the cached
// arrival times incrementally with at most three extra distance queries
// (plus the L the caller already has), per Lemma 9 / §5.3: dis(l_I, o_r),
// dis(o_r, l_{I+1}) and dis(l_J, d_r) as needed.
//
// The splice is performed in place: the route's Stops/Arr arrays grow by
// two and the tail is shifted, so a route allocates only when it outgrows
// its backing arrays — never per accepted request in steady state. Routes
// therefore own their backing arrays exclusively; holders of aliases into
// rt.Stops/rt.Arr (none exist in this codebase — the simulator re-slices
// forward, snapshots copy) must Clone first.
func Apply(rt *Route, kw int, req *Request, ins Insertion, L float64, dist DistFunc) error {
	if !ins.OK {
		return fmt.Errorf("core: applying infeasible insertion")
	}
	n := rt.Len()
	if ins.I < 0 || ins.J < ins.I || ins.J > n {
		return fmt.Errorf("core: insertion positions (%d,%d) out of range n=%d", ins.I, ins.J, n)
	}
	pickup := Stop{Vertex: req.Origin, Kind: Pickup, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline - L}
	dropoff := Stop{Vertex: req.Dest, Kind: Dropoff, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline}

	distLiOr := dist(rt.vertexAt(ins.I), req.Origin)
	pickArr := rt.arrAt(ins.I) + distLiOr

	if ins.I == ins.J {
		rt.Stops = append(rt.Stops, Stop{}, Stop{})
		rt.Arr = append(rt.Arr, 0, 0)
		stops, arr := rt.Stops, rt.Arr
		// stops [0, I) unchanged; pickup; dropoff; stops [I, n) shifted Δ.
		for k := n - 1; k >= ins.I; k-- {
			stops[k+2] = stops[k]
			arr[k+2] = arr[k] + ins.Delta
		}
		stops[ins.I], stops[ins.I+1] = pickup, dropoff
		arr[ins.I], arr[ins.I+1] = pickArr, pickArr+L
	} else {
		// Both detour legs read pre-splice state; compute before shifting.
		d1 := distLiOr + dist(req.Origin, rt.vertexAt(ins.I+1)) - rt.legDist(ins.I+1)
		dropArr := rt.arrAt(ins.J) + d1 + dist(rt.vertexAt(ins.J), req.Dest)
		rt.Stops = append(rt.Stops, Stop{}, Stop{})
		rt.Arr = append(rt.Arr, 0, 0)
		stops, arr := rt.Stops, rt.Arr
		for k := n - 1; k >= ins.J; k-- { // shifted by the full Δ
			stops[k+2] = stops[k]
			arr[k+2] = arr[k] + ins.Delta
		}
		stops[ins.J+1] = dropoff
		arr[ins.J+1] = dropArr
		for k := ins.J - 1; k >= ins.I; k-- { // shifted by the pickup detour
			stops[k+1] = stops[k]
			arr[k+1] = arr[k] + d1
		}
		stops[ins.I] = pickup
		arr[ins.I] = pickArr
	}
	return nil
}
