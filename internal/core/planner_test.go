package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
)

// newTestFleet builds a fleet of k workers at random vertices.
func (tw *testWorld) newTestFleet(t testing.TB, rng *rand.Rand, k, kw int) *Fleet {
	t.Helper()
	n := tw.g.NumVertices()
	workers := make([]*Worker, k)
	for i := range workers {
		workers[i] = &Worker{
			ID:       WorkerID(i),
			Capacity: kw,
			Route:    Route{Loc: roadnet.VertexID(rng.Intn(n))},
		}
	}
	f, err := NewFleet(tw.g, tw.dist, workers, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCandidatesConservative(t *testing.T) {
	tw := newTestWorld(t, 12, 12, 31)
	rng := rand.New(rand.NewSource(1))
	f := tw.newTestFleet(t, rng, 30, 4)
	for trial := 0; trial < 100; trial++ {
		req := tw.randomRequest(rng, RequestID(trial), 0)
		L := tw.dist(req.Origin, req.Dest)
		cands := f.Candidates(req, 0, L)
		inSet := map[WorkerID]bool{}
		for _, w := range cands {
			inSet[w.ID] = true
		}
		// Any worker excluded by the filter must be truly unable to make
		// the pickup deadline.
		for _, w := range f.Workers {
			if inSet[w.ID] {
				continue
			}
			reach := w.Route.Now + tw.dist(w.Route.Loc, req.Origin)
			if reach <= req.Deadline-L {
				t.Fatalf("trial %d: worker %d filtered out but could reach pickup at %v (deadline %v)",
					trial, w.ID, reach, req.Deadline-L)
			}
		}
	}
}

func TestCandidatesImpossibleDeadline(t *testing.T) {
	tw := newTestWorld(t, 8, 8, 37)
	rng := rand.New(rand.NewSource(2))
	f := tw.newTestFleet(t, rng, 10, 4)
	req := tw.randomRequest(rng, 1, 0)
	L := tw.dist(req.Origin, req.Dest)
	req.Deadline = L - 1 // cannot even drive o→d in time
	if cands := f.Candidates(req, 0, L); cands != nil {
		t.Fatalf("expected no candidates, got %d", len(cands))
	}
}

func TestFleetRejectsMisnumberedWorkers(t *testing.T) {
	tw := newTestWorld(t, 6, 6, 1)
	workers := []*Worker{{ID: 5, Capacity: 4}}
	if _, err := NewFleet(tw.g, tw.dist, workers, 1000); err == nil {
		t.Fatal("misnumbered worker accepted")
	}
}

// playStream runs a planner over a request stream without worker movement
// (all requests at time 0..T but workers stay parked, which is a valid
// degenerate simulation for planner-level properties).
func playStream(t *testing.T, p Planner, reqs []*Request) (served, rejected []*Request, results []Result) {
	t.Helper()
	for _, r := range reqs {
		res := p.OnRequest(r.Release, r)
		results = append(results, res)
		if res.Served {
			served = append(served, r)
		} else {
			rejected = append(rejected, r)
		}
	}
	return served, rejected, results
}

func makeStream(tw *testWorld, rng *rand.Rand, n int) []*Request {
	reqs := make([]*Request, n)
	tnow := 0.0
	for i := range reqs {
		tnow += rng.Float64() * 20
		reqs[i] = tw.randomRequest(rng, RequestID(i), tnow)
	}
	return reqs
}

// TestPruneEqualsNoPrune is the key Lemma 8 property: pruneGreedyDP and
// GreedyDP must make identical decisions and produce identical routes —
// the pruning is lossless.
func TestPruneEqualsNoPrune(t *testing.T) {
	tw := newTestWorld(t, 12, 12, 41)
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	fleetA := tw.newTestFleet(t, rngA, 25, 4)
	fleetB := tw.newTestFleet(t, rngB, 25, 4)
	pa := NewPruneGreedyDP(fleetA, 1)
	pb := NewGreedyDP(fleetB, 1)

	reqs := makeStream(tw, rand.New(rand.NewSource(3)), 300)
	for i, r := range reqs {
		ra := pa.OnRequest(r.Release, r)
		rCopy := *r
		rb := pb.OnRequest(r.Release, &rCopy)
		if ra.Served != rb.Served {
			t.Fatalf("req %d: served disagrees: prune=%v noprune=%v", i, ra.Served, rb.Served)
		}
		if ra.Served {
			if math.Abs(ra.Delta-rb.Delta) > 1e-6*(1+ra.Delta) {
				t.Fatalf("req %d: delta disagrees: %v vs %v", i, ra.Delta, rb.Delta)
			}
		}
	}
	// Total planned distance must agree too.
	if da, db := fleetA.TotalDistance(), fleetB.TotalDistance(); math.Abs(da-db) > 1e-4*(1+da) {
		t.Fatalf("total distance disagrees: %v vs %v", da, db)
	}
}

// TestPlannerRoutesStayValid runs a long stream and validates every
// worker's route after every assignment.
func TestPlannerRoutesStayValid(t *testing.T) {
	tw := newTestWorld(t, 12, 12, 43)
	rng := rand.New(rand.NewSource(11))
	fleet := tw.newTestFleet(t, rng, 15, 4)
	p := NewPruneGreedyDP(fleet, 1)
	reqs := makeStream(tw, rng, 250)
	servedCount := 0
	for _, r := range reqs {
		res := p.OnRequest(r.Release, r)
		if res.Served {
			servedCount++
			w := fleet.Worker(res.Worker)
			if err := w.Route.Validate(w.Capacity, tw.dist); err != nil {
				t.Fatalf("route of worker %d invalid: %v", w.ID, err)
			}
		}
	}
	if servedCount == 0 {
		t.Fatal("planner served nothing; test vacuous")
	}
}

// TestDecisionPhaseRejectsUneconomicRequests: with a huge alpha any
// nonzero insertion cost outweighs the penalty, so almost everything is
// rejected; with alpha=0 nothing is rejected by the decision phase.
func TestDecisionPhaseRejectsUneconomicRequests(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 47)
	rng := rand.New(rand.NewSource(13))
	fleet := tw.newTestFleet(t, rng, 10, 4)
	pExpensive := NewGreedy(fleet, Config{Alpha: 1e9, Prune: true, PostCheck: true}, "expensive")
	reqs := makeStream(tw, rand.New(rand.NewSource(17)), 100)
	served, _, _ := playStream(t, pExpensive, reqs)
	if len(served) > 2 {
		// A request whose pickup is exactly at a worker location with LB=0
		// can still be served; more than a couple is wrong.
		t.Fatalf("alpha=1e9 served %d requests", len(served))
	}

	fleet2 := tw.newTestFleet(t, rand.New(rand.NewSource(13)), 10, 4)
	pFree := NewGreedy(fleet2, Config{Alpha: 0, Prune: true, PostCheck: true}, "free")
	served2, _, _ := playStream(t, pFree, reqs)
	if len(served2) < len(reqs)/2 {
		t.Fatalf("alpha=0 served only %d/%d", len(served2), len(reqs))
	}
}

func TestUnifiedCostAndServedRate(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 53)
	rng := rand.New(rand.NewSource(19))
	fleet := tw.newTestFleet(t, rng, 12, 4)
	p := NewPruneGreedyDP(fleet, 1)
	reqs := makeStream(tw, rng, 150)
	served, rejected, _ := playStream(t, p, reqs)
	uc := UnifiedCost(1, fleet, rejected)
	wantPenalty := 0.0
	for _, r := range rejected {
		wantPenalty += r.Penalty
	}
	if math.Abs(uc-(fleet.TotalDistance()+wantPenalty)) > 1e-6*(1+uc) {
		t.Fatalf("unified cost=%v", uc)
	}
	if got := ServedRate(len(served), len(reqs)); got < 0 || got > 1 {
		t.Fatalf("served rate=%v", got)
	}
	if ServedRate(3, 0) != 0 {
		t.Fatal("served rate with zero total")
	}
	// Revenue equivalence (Eq. 4): revenue = c_r·Σ_R dis(o,d) − UC with
	// α=c_w, p_r=c_r·dis(o,d). Here c_r implied by Penalty=10·L, c_w=α=1.
	rev := Revenue(10, 1, fleet, served)
	sumAll := 0.0
	for _, r := range reqs {
		sumAll += 10 * tw.dist(r.Origin, r.Dest)
	}
	if math.Abs(rev-(sumAll-uc)) > 1e-4*(1+math.Abs(rev)) {
		t.Fatalf("revenue identity broken: rev=%v sumAll-UC=%v", rev, sumAll-uc)
	}
}

// TestPostCheckReducesCost: with PostCheck on, the unified cost is never
// higher than with it off on the same stream.
func TestPostCheckReducesCost(t *testing.T) {
	tw := newTestWorld(t, 10, 10, 59)
	mk := func(postCheck bool) float64 {
		rng := rand.New(rand.NewSource(23))
		fleet := tw.newTestFleet(t, rng, 8, 4)
		p := NewGreedy(fleet, Config{Alpha: 1, Prune: true, PostCheck: postCheck}, "x")
		reqs := makeStream(tw, rand.New(rand.NewSource(29)), 200)
		var rejected []*Request
		for _, r := range reqs {
			// Make some penalties tiny so serving is often uneconomic.
			r.Penalty = tw.dist(r.Origin, r.Dest) * 0.2
			if !p.OnRequest(r.Release, r).Served {
				rejected = append(rejected, r)
			}
		}
		return UnifiedCost(1, fleet, rejected)
	}
	with := mk(true)
	without := mk(false)
	if with > without+1e-6 {
		t.Fatalf("PostCheck increased cost: %v > %v", with, without)
	}
}

func TestPlannerName(t *testing.T) {
	tw := newTestWorld(t, 6, 6, 61)
	fleet := tw.newTestFleet(t, rand.New(rand.NewSource(1)), 2, 4)
	if NewPruneGreedyDP(fleet, 1).Name() != "pruneGreedyDP" {
		t.Fatal("name")
	}
	if NewGreedyDP(fleet, 1).Name() != "GreedyDP" {
		t.Fatal("name")
	}
}
