package core

import (
	"math"
	"math/rand"
	"testing"
)

func TestRemoveRequest(t *testing.T) {
	tw := quickTW(t)
	rng := rand.New(rand.NewSource(81))
	rt, reqs := tw.randomRoute(rng, 4, 3, 0)
	if len(reqs) < 2 {
		t.Skip("generator produced too few requests")
	}
	target := reqs[0]
	before := rt.Len()
	got, ok := RemoveRequest(&rt, target.ID, tw.dist)
	if !ok {
		t.Fatal("removal failed")
	}
	if got.Origin != target.Origin || got.Dest != target.Dest ||
		math.Abs(got.Deadline-target.Deadline) > 1e-9 || got.Capacity != target.Capacity {
		t.Fatalf("reconstructed request differs: %+v vs %+v", got, target)
	}
	if rt.Len() != before-2 {
		t.Fatalf("stops %d want %d", rt.Len(), before-2)
	}
	if err := rt.Validate(4, tw.dist); err != nil {
		t.Fatalf("route invalid after removal: %v", err)
	}
	// Removing again fails cleanly.
	if _, ok := RemoveRequest(&rt, target.ID, tw.dist); ok {
		t.Fatal("double removal succeeded")
	}
}

func TestRemoveOnboardRequestRefused(t *testing.T) {
	tw := quickTW(t)
	rt := Route{
		Loc: 0, Now: 0, Onboard: 1,
		Stops: []Stop{{Vertex: 5, Kind: Dropoff, Req: 9, Cap: 1, DDL: 1e9}},
	}
	rt.Recompute(tw.dist)
	if _, ok := RemoveRequest(&rt, 9, tw.dist); ok {
		t.Fatal("onboard request (drop-off only) must not be removable")
	}
}

// TestImproveNeverHurts: on many random routes, improvement never
// increases distance, never breaks validity, and reports exactly the
// distance it removed.
func TestImproveNeverHurts(t *testing.T) {
	tw := quickTW(t)
	rng := rand.New(rand.NewSource(83))
	improvedCount := 0
	trials := 300
	if testing.Short() {
		trials = 60
	}
	for trial := 0; trial < trials; trial++ {
		kw := 2 + rng.Intn(4)
		rt, _ := tw.randomRoute(rng, kw, 2+rng.Intn(5), rng.Float64()*200)
		before := rt.RemainingDist()
		saved := ImproveRoute(&rt, kw, tw.dist, 3)
		after := rt.RemainingDist()
		if saved < 0 {
			t.Fatalf("trial %d: negative saving %v", trial, saved)
		}
		if after > before+feasEps {
			t.Fatalf("trial %d: improvement increased distance %v -> %v", trial, before, after)
		}
		if math.Abs((before-after)-saved) > 1e-5*(1+before) {
			t.Fatalf("trial %d: reported saving %v but distance fell by %v", trial, saved, before-after)
		}
		if err := rt.Validate(kw, tw.dist); err != nil {
			t.Fatalf("trial %d: invalid after improvement: %v", trial, err)
		}
		if saved > feasEps {
			improvedCount++
		}
	}
	if improvedCount == 0 {
		t.Log("note: no random route improved; greedy insertion already optimal on this world")
	}
}

// TestImproveFindsKnownImprovement constructs a route where greedy
// insertion order is provably suboptimal and checks local search fixes it.
func TestImproveFindsKnownImprovement(t *testing.T) {
	tw := quickTW(t)
	rng := rand.New(rand.NewSource(87))
	// Build a long suboptimal route: insert requests in an adversarial
	// order by forcing each insertion at the end (append-only), then let
	// ImproveRoute re-place them.
	rt := Route{Loc: 0, Now: 0}
	n := tw.g.NumVertices()
	added := 0
	for added < 4 {
		o := int32(rng.Intn(n))
		d := int32(rng.Intn(n))
		if o == d {
			continue
		}
		L := tw.dist(o, d)
		req := &Request{ID: RequestID(added), Origin: o, Dest: d,
			Deadline: 1e7, Penalty: 1, Capacity: 1}
		ins := Insertion{OK: true, I: rt.Len(), J: rt.Len(),
			Delta: tw.dist(rt.vertexAt(rt.Len()), o) + L}
		if err := Apply(&rt, 8, req, ins, L, tw.dist); err != nil {
			t.Fatal(err)
		}
		added++
	}
	before := rt.RemainingDist()
	// The appended-only route almost surely admits an improving re-insert.
	optimal := true
	for _, id := range replannableRequests(&rt) {
		trial := rt.Clone()
		req, _ := RemoveRequest(&trial, id, tw.dist)
		L := tw.dist(req.Origin, req.Dest)
		ins := LinearDPInsertion(&trial, 8, &req, L, tw.dist)
		if ins.OK {
			Apply(&trial, 8, &req, ins, L, tw.dist)
			if trial.RemainingDist() < before-1e-6 {
				optimal = false
				break
			}
		}
	}
	saved := ImproveRoute(&rt, 8, tw.dist, 5)
	if !optimal && saved <= feasEps {
		t.Fatalf("an improving move exists but ImproveRoute saved %v", saved)
	}
	if err := rt.Validate(8, tw.dist); err != nil {
		t.Fatal(err)
	}
}

// TestImprovingGreedyRuns: the improving planner is exercised on a full
// stream. Local search guarantees each *route* only shrinks at the moment
// of improvement; it does NOT dominate plain pruneGreedyDP globally
// (different routes change future candidate dynamics), so this test
// asserts only the real invariants: non-negative savings, valid routes,
// and a served count in the same regime.
func TestImprovingGreedyRuns(t *testing.T) {
	tw := quickTW(t)
	run := func(improve bool) (float64, int, float64) {
		rng := rand.New(rand.NewSource(91))
		fleet := tw.newTestFleet(t, rng, 6, 6)
		var p Planner
		var ig *ImprovingGreedy
		if improve {
			ig = NewImprovingGreedy(fleet, 1, 2)
			p = ig
		} else {
			p = NewPruneGreedyDP(fleet, 1)
		}
		reqs := makeStream(tw, rand.New(rand.NewSource(93)), 200)
		served := 0
		for _, r := range reqs {
			if p.OnRequest(r.Release, r).Served {
				served++
			}
		}
		saved := 0.0
		if ig != nil {
			saved = ig.Saved
		}
		return fleet.TotalDistance(), served, saved
	}
	base, servedBase, _ := run(false)
	improved, servedImp, saved := run(true)
	if saved < 0 {
		t.Fatalf("negative accumulated saving %v", saved)
	}
	// Same regime: within 10% served of the non-improving planner.
	lo, hi := servedBase*9/10, servedBase*11/10
	if servedImp < lo || servedImp > hi {
		t.Fatalf("served count diverged: %d vs %d", servedImp, servedBase)
	}
	t.Logf("distance %v -> %v, saved %v, served %d -> %d", base, improved, saved, servedBase, servedImp)
}
