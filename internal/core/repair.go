package core

// Route re-validation under a changed cost model. When a traffic epoch
// advances, every cached arrival time (Route.Arr, maintained incrementally
// by the planners under Lemma 9) and every pickup deadline (Eq. 6:
// e_r − dis(o_r, d_r), whose dis term is epoch-dependent) is stale.
// RepairRoutes recomputes both from each worker's committed position and
// flags the stops that the new weights make infeasible.
//
// Infeasible stops are flagged, not dropped: an accepted request is a
// promise, and the paper's model has no un-accept. A flagged drop-off
// completes late and is counted by the simulator's late-arrival metric
// (which stays a correctness alarm only in single-epoch runs — see
// DESIGN.md §11). Future insertions are unaffected by the lateness of
// existing stops beyond what the recomputed ddl/arr arrays already
// express: the insertion lemmas keep rejecting anything that would make
// matters worse.

import "math"

// RepairStats summarizes one RepairRoutes pass.
type RepairStats struct {
	// RoutesRepaired counts workers whose route had at least one stop.
	RoutesRepaired int
	// StopsRepaired counts re-timed stops.
	StopsRepaired int
	// InfeasibleStops counts stops whose recomputed arrival exceeds their
	// (recomputed) deadline — promises the new weights break.
	InfeasibleStops int
	// RoutesWithInfeasible counts routes carrying ≥ 1 infeasible stop.
	RoutesWithInfeasible int
	// MaxOverrunSec is the largest arrival-past-deadline among infeasible
	// stops, in seconds.
	MaxOverrunSec float64
}

// Add accumulates other into s; the sim layer keeps a running total over
// a traffic timeline.
func (s *RepairStats) Add(other RepairStats) {
	s.RoutesRepaired += other.RoutesRepaired
	s.StopsRepaired += other.StopsRepaired
	s.InfeasibleStops += other.InfeasibleStops
	s.RoutesWithInfeasible += other.RoutesWithInfeasible
	if other.MaxOverrunSec > s.MaxOverrunSec {
		s.MaxOverrunSec = other.MaxOverrunSec
	}
}

// RepairRoutes re-times every worker's remaining route under dist — the
// fleet's current oracle chain, which after a traffic update answers on
// the new weights — and recomputes the Eq. 6 pickup deadlines. It returns
// what the new weights broke. Callers (sim.Traffic, serve) invoke it
// exactly once per epoch advance, between planning decisions, so no
// planner ever sees a half-repaired fleet.
func (f *Fleet) RepairRoutes(dist DistFunc) RepairStats {
	var st RepairStats
	for _, w := range f.Workers {
		rt := &w.Route
		if len(rt.Stops) == 0 {
			continue
		}
		st.RoutesRepaired++
		st.StopsRepaired += len(rt.Stops)
		repairDeadlines(rt, dist)
		rt.Recompute(dist)
		late := false
		for i := range rt.Stops {
			if over := rt.Arr[i] - rt.Stops[i].DDL; over > feasEps {
				st.InfeasibleStops++
				late = true
				if over > st.MaxOverrunSec {
					st.MaxOverrunSec = over
				}
			}
		}
		if late {
			st.RoutesWithInfeasible++
		}
	}
	return st
}

// repairDeadlines recomputes the pickup deadlines of rt under dist. A
// pickup's deadline is its request's drop-off deadline minus the CURRENT
// dis(o_r, d_r) (Eq. 6), so that meeting the pickup deadline still
// guarantees the drop-off can be met; drop-off deadlines are e_r itself
// and never move. Pickups are paired with the first unclaimed later
// drop-off of the same request, mirroring the pairing the simulator uses
// for occupancy accounting (clients own the ID namespace and may reuse
// IDs).
func repairDeadlines(rt *Route, dist DistFunc) {
	n := len(rt.Stops)
	claimed := make([]bool, n)
	for i := 0; i < n; i++ {
		p := &rt.Stops[i]
		if p.Kind != Pickup {
			continue
		}
		for j := i + 1; j < n; j++ {
			d := &rt.Stops[j]
			if d.Kind != Dropoff || d.Req != p.Req || claimed[j] {
				continue
			}
			p.DDL = d.DDL - dist(p.Vertex, d.Vertex)
			claimed[j] = true
			break
		}
	}
}

// finiteFloat reports whether v is neither NaN nor ±Inf; Request.Validate
// uses it to keep non-finite times and penalties out of the planners.
func finiteFloat(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
