package core

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/spatial"
)

// Fleet is the shared state every planner operates on: the road network,
// the distance oracle, the workers and the spatial grid index over worker
// positions. The simulator keeps the grid in sync as workers move.
type Fleet struct {
	Graph   *roadnet.Graph
	Dist    DistFunc
	Workers []*Worker
	Grid    *spatial.Grid

	maxEdgeMeters float64
}

// NewFleet indexes the workers (whose IDs must equal their slice position)
// on a grid with the given cell size in meters.
func NewFleet(g *roadnet.Graph, dist DistFunc, workers []*Worker, cellMeters float64) (*Fleet, error) {
	grid, err := spatial.NewGrid(g.Bounds(), cellMeters)
	if err != nil {
		return nil, err
	}
	maxEdge := 0.0
	for _, e := range g.Edges() {
		if e.Meters > maxEdge {
			maxEdge = e.Meters
		}
	}
	f := &Fleet{Graph: g, Dist: dist, Workers: workers, Grid: grid, maxEdgeMeters: maxEdge}
	for i, w := range workers {
		if int(w.ID) != i {
			return nil, fmt.Errorf("core: worker at index %d has ID %d", i, w.ID)
		}
		f.UpdateWorkerPosition(w)
	}
	return f, nil
}

// SetGraph swaps in a reweighted snapshot of the same road network (a
// traffic-epoch advance). Topology, coordinates and the grid geometry are
// shared between snapshots, so positions, maxEdgeMeters and the Euclidean
// machinery all remain valid; only EdgeCost readers see the new weights.
// Callers must not be mid-plan (the traffic controller applies updates
// between decisions).
func (f *Fleet) SetGraph(g *roadnet.Graph) { f.Graph = g }

// UpdateWorkerPosition refreshes w's entry in the grid index; the
// simulator calls it whenever a worker's committed location changes.
func (f *Fleet) UpdateWorkerPosition(w *Worker) {
	f.Grid.Insert(spatial.ItemID(w.ID), f.Graph.Point(w.Route.Loc))
}

// Worker returns the worker with the given ID.
func (f *Fleet) Worker(id WorkerID) *Worker { return f.Workers[id] }

// Candidates filters workers through the grid index and the deadline
// (Algorithm 5 line 3): only workers whose committed position could
// physically reach o_r before the pickup deadline e_r − L at the maximum
// road speed can serve the request. The radius is padded by the longest
// edge because a moving worker's committed vertex may lie up to one edge
// ahead of its physical position.
func (f *Fleet) Candidates(req *Request, now, L float64) []*Worker {
	return f.CandidatesAppend(nil, req, now, L)
}

// CandidatesAppend is Candidates into a caller-owned buffer: matching
// workers are appended to dst (which may be nil or a recycled slice with
// its length reset) and the extended slice is returned. Planners route
// this through their Scratch so the steady-state candidate retrieval
// allocates nothing.
func (f *Fleet) CandidatesAppend(dst []*Worker, req *Request, now, L float64) []*Worker {
	budget := req.Deadline - L - now // seconds available to reach the pickup
	if budget < 0 {
		return dst
	}
	radius := budget*geo.MaxSpeed() + f.maxEdgeMeters
	f.Grid.Within(f.Graph.Point(req.Origin), radius, func(id spatial.ItemID, _ geo.Point) bool {
		dst = append(dst, f.Workers[id])
		return true
	})
	return dst
}

// TravelTimeLB is a free lower bound on Dist(u, v): the straight-line
// separation covered at the network's maximum road speed. Road distance
// is at least the Euclidean distance and no edge is faster than
// MaxSpeed, so TravelTimeLB(u, v) ≤ Dist(u, v) for every metric the
// graph can carry. The batch prefetch (DESIGN.md §16) passes it as L so
// the candidate radius tightens without paying an oracle query while
// the candidate set stays a superset of every plan-time search.
func (f *Fleet) TravelTimeLB(u, v roadnet.VertexID) float64 {
	return f.Graph.Point(u).Dist(f.Graph.Point(v)) / geo.MaxSpeed()
}

// TotalDistance sums D(S_w) over the fleet.
func (f *Fleet) TotalDistance() float64 {
	total := 0.0
	for _, w := range f.Workers {
		total += w.TotalDistance()
	}
	return total
}
