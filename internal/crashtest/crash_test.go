// Package crashtest kills the real urpsm-serve daemon with SIGKILL at
// random points of a lockstep replay and proves that recovery is
// invisible: the concatenated decision stream across every crash is
// byte-identical to an uninterrupted run, which in turn matches the
// offline reference engine. kill -9 becomes just another replay.
//
// The harness execs the actual binary (built from this repo) rather than
// an in-process server, so the fsync/rename/replay path is exercised
// across real process boundaries. Knobs, for the CI smoke and the chaos
// variant (scripts/crash-smoke.sh, make crash-chaos):
//
//	CRASH_SEED   kill-schedule seed (default 1)
//	CRASH_SCALE  workload scale, 0.1 = 1500 requests (default 0.02)
//	CRASH_KILLS  mid-request kills; one traffic-concurrent kill is
//	             always added on top (default 3)
package crashtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/shortest"
	"repro/internal/wal"
	"repro/internal/workload"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func envFloat(name string, def float64) float64 {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

// fixture is the generated city + workload shared by both runs, written
// to disk in the daemon's file formats.
type fixture struct {
	g       *roadnet.Graph
	inst    *workload.Instance
	reqs    []*core.Request // release-sorted
	events  []roadnet.TrafficEvent
	netF    string
	loadF   string
	binPath string
}

func buildFixture(t *testing.T, scale float64) *fixture {
	t.Helper()
	dir := t.TempDir()

	p := workload.ChengduLike(scale)
	gen, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	built, err := workload.BuildOn(p, gen, shortest.NewBiDijkstra(gen).Dist)
	if err != nil {
		t.Fatalf("build workload: %v", err)
	}
	netF := filepath.Join(dir, "city.net")
	nf, err := os.Create(netF)
	if err != nil {
		t.Fatal(err)
	}
	if err := roadnet.Write(nf, gen); err != nil {
		t.Fatalf("write net: %v", err)
	}
	nf.Close()
	loadF := filepath.Join(dir, "city.load")
	lf, err := os.Create(loadF)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteStream(lf, built); err != nil {
		t.Fatalf("write load: %v", err)
	}
	lf.Close()

	// Re-read the graph and instance through the on-disk formats: their
	// coordinates and costs round to %.3f, and bit-exact equivalence
	// requires the daemon (which reads these files), the lockstep client
	// and the offline reference to share the exact same floats.
	nr, err := os.Open(netF)
	if err != nil {
		t.Fatal(err)
	}
	g, err := roadnet.Read(nr)
	nr.Close()
	if err != nil {
		t.Fatalf("re-read net: %v", err)
	}
	lr, err := os.Open(loadF)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.ReadStream(lr, g)
	lr.Close()
	if err != nil {
		t.Fatalf("re-read load: %v", err)
	}
	reqs := append([]*core.Request(nil), inst.Requests...)
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].Release != reqs[j].Release {
			return reqs[i].Release < reqs[j].Release
		}
		return reqs[i].ID < reqs[j].ID
	})
	if len(reqs) < 20 {
		t.Fatalf("workload too small: %d requests", len(reqs))
	}

	// Two congestion waves at ~30% and ~60% of the trace, the second on a
	// later release so event times stay strictly increasing.
	e1At := reqs[len(reqs)*3/10].Release
	j := len(reqs) * 6 / 10
	for j < len(reqs) && reqs[j].Release <= e1At {
		j++
	}
	events := []roadnet.TrafficEvent{
		{At: e1At, Updates: []roadnet.TrafficUpdate{{Factor: 1.7}}},
	}
	if j < len(reqs) {
		events = append(events, roadnet.TrafficEvent{
			At: reqs[j].Release,
			Updates: []roadnet.TrafficUpdate{
				{Factor: 2.2, Class: "motorway"},
				{Factor: 1.3},
			},
		})
	}

	bin := filepath.Join(dir, "urpsm-serve")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/urpsm-serve")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build urpsm-serve: %v\n%s", err, out)
	}

	return &fixture{g: g, inst: inst, reqs: reqs, events: events,
		netF: netF, loadF: loadF, binPath: bin}
}

// lockedBuf collects daemon output from the exec-spawned copier
// goroutines and the harness goroutine concurrently.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) WriteString(s string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.WriteString(s)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon manages one urpsm-serve process over its crash/restart cycles.
type daemon struct {
	t      *testing.T
	fix    *fixture
	walDir string
	extra  []string // appended flags; a repeated flag overrides the default
	cmd    *exec.Cmd
	base   string // http://host:port
	out    lockedBuf

	starts    int
	recovered int // cumulative records replayed across restarts
}

// start launches the daemon and blocks until it prints its bound
// address (-addr 127.0.0.1:0 makes the kernel pick a free port).
func (d *daemon) start() {
	d.t.Helper()
	args := []string{
		"-net", d.fix.netF, "-load", d.fix.loadF,
		"-oracle", "hub", "-addr", "127.0.0.1:0",
		"-batch-window", "2ms",
		"-wal", d.walDir, "-wal-checkpoint-bytes", "16384"}
	args = append(args, d.extra...)
	cmd := exec.Command(d.fix.binPath, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		d.t.Fatal(err)
	}
	cmd.Stderr = &d.out
	if err := cmd.Start(); err != nil {
		d.t.Fatalf("start daemon: %v", err)
	}
	d.cmd = cmd
	d.starts++

	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		line := sc.Text()
		d.out.WriteString(line + "\n")
		if strings.HasPrefix(line, "wal ") && strings.Contains(line, "recovered") {
			var n, torn int
			if _, err := fmt.Sscanf(line[strings.Index(line, "recovered"):],
				"recovered %d records (%d torn bytes discarded)", &n, &torn); err == nil {
				d.recovered += n
			}
		}
		if rest, ok := strings.CutPrefix(line, "urpsm-serve on "); ok {
			if i := strings.Index(rest, ": net="); i >= 0 {
				addr = rest[:i]
			}
			break
		}
	}
	if addr == "" {
		cmd.Process.Kill()
		cmd.Wait()
		d.t.Fatalf("daemon never printed its address; output:\n%s", d.out.String())
	}
	d.base = "http://" + addr
	go io.Copy(&d.out, stdout) // keep draining so the daemon never blocks on a full pipe
}

// kill is the crash under test: SIGKILL, no warning, no flush.
func (d *daemon) kill() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// shutdown is the graceful path: SIGTERM must drain, checkpoint and
// exit 0.
func (d *daemon) shutdown() {
	d.t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		d.t.Fatalf("signal: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		d.t.Fatalf("daemon exited non-zero on SIGTERM: %v\noutput:\n%s", err, d.out.String())
	}
}

// runner drives the lockstep replay against a daemon, crashing it at
// the scheduled points and recording the canonical decision stream.
type runner struct {
	t      *testing.T
	d      *daemon
	client *http.Client
	fix    *fixture
	rng    *rand.Rand

	// killAt maps request index -> kill mode.
	killAt      map[int]killMode
	trafficKill bool

	stream bytes.Buffer
	stats  serve.Stats
}

type killMode int

const (
	killNone     killMode = iota
	killMidFlight         // SIGKILL while the request is in flight
	killAfterAck          // SIGKILL right after the decision was acknowledged
)

func (x *runner) run() {
	x.t.Helper()
	x.d.start()
	next := 0
	for i, r := range x.fix.reqs {
		for next < len(x.fix.events) && x.fix.events[next].At <= r.Release {
			x.applyTraffic(next, x.trafficKill && next == 0)
			next++
		}
		d := x.decide(r, x.killAt[i])
		if d.ID != int32(r.ID) {
			x.t.Fatalf("request %d: decision echoes id %d", r.ID, d.ID)
		}
		fmt.Fprintf(&x.stream, "%d %t %d %016x %016x\n",
			d.ID, d.Accepted, d.Worker,
			math.Float64bits(d.Delta), math.Float64bits(d.SimTime))
	}
	x.stats = x.getStats()
	x.d.shutdown()
}

// applyTraffic advances the server to traffic epoch n+1 exactly once,
// surviving a concurrent SIGKILL: updates carry absolute factors and the
// epoch counter tells whether the killed POST landed, so the retry loop
// can never double-apply.
func (x *runner) applyTraffic(n int, kill bool) {
	x.t.Helper()
	e := x.fix.events[n]
	if kill {
		done := make(chan struct{})
		go func() {
			defer close(done)
			x.postTraffic(e) // racing the kill; outcome resolved below
		}()
		time.Sleep(time.Duration(x.rng.Intn(2000)) * time.Microsecond)
		x.d.kill()
		<-done
		x.d.start()
	}
	for tries := 0; x.getStats().TrafficEpoch < uint64(n+1); tries++ {
		if tries > 3 {
			x.t.Fatalf("traffic event %d not applied after %d tries", n, tries)
		}
		if err := x.postTraffic(e); err != nil {
			x.t.Fatalf("traffic event %d: %v", n, err)
		}
	}
}

func (x *runner) decide(r *core.Request, mode killMode) serve.Decision {
	x.t.Helper()
	switch mode {
	case killAfterAck:
		d := x.mustPost(r)
		x.d.kill()
		x.d.start()
		return d
	case killMidFlight:
		type res struct {
			d   serve.Decision
			err error
		}
		c := make(chan res, 1)
		go func() {
			d, err := x.postRequest(r)
			c <- res{d, err}
		}()
		time.Sleep(time.Duration(x.rng.Intn(3000)) * time.Microsecond)
		x.d.kill()
		got := <-c
		x.d.start()
		if got.err == nil {
			// The ack outran the kill; the decision is durable by the
			// sync-before-ack invariant.
			return got.d
		}
		// Crashed-ack ambiguity: the decision may have committed with its
		// ack lost, or never happened. The decisions endpoint resolves it.
		if d, ok := x.storedDecision(int32(r.ID)); ok {
			return d
		}
		return x.mustPost(r) // never durable: resending is safe
	default:
		return x.mustPost(r)
	}
}

func (x *runner) mustPost(r *core.Request) serve.Decision {
	x.t.Helper()
	d, err := x.postRequest(r)
	if err != nil {
		x.t.Fatalf("request %d: %v\ndaemon output:\n%s", r.ID, err, x.d.out.String())
	}
	return d
}

func (x *runner) postRequest(r *core.Request) (serve.Decision, error) {
	id, rel := int32(r.ID), r.Release
	body := serve.Request{
		ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
		Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty,
		Capacity: r.Capacity,
	}
	var d serve.Decision
	if err := x.postJSON("/v1/requests", body, &d); err != nil {
		return serve.Decision{}, err
	}
	return d, nil
}

func (x *runner) postTraffic(e roadnet.TrafficEvent) error {
	at := e.At
	var res serve.TrafficResult
	return x.postJSON("/v1/traffic", serve.TrafficRequest{At: &at, Updates: e.Updates}, &res)
}

func (x *runner) postJSON(path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := x.client.Post(x.d.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return json.Unmarshal(raw, out)
}

func (x *runner) storedDecision(id int32) (serve.Decision, bool) {
	x.t.Helper()
	resp, err := x.client.Get(fmt.Sprintf("%s/v1/decisions/%d", x.d.base, id))
	if err != nil {
		x.t.Fatalf("decisions/%d: %v", id, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var d serve.Decision
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			x.t.Fatalf("decisions/%d: %v", id, err)
		}
		return d, true
	case http.StatusNotFound:
		return serve.Decision{}, false
	default:
		x.t.Fatalf("decisions/%d: unexpected status %d", id, resp.StatusCode)
		return serve.Decision{}, false
	}
}

func (x *runner) getStats() serve.Stats {
	x.t.Helper()
	resp, err := x.client.Get(x.d.base + "/v1/stats")
	if err != nil {
		x.t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		x.t.Fatalf("stats: %v", err)
	}
	return st
}

// TestCrashRecoveryEquivalence is the headline guarantee: SIGKILL the
// daemon at seeded random points of a lockstep replay (mid-request,
// right after an ack, and concurrently with a traffic update), restart
// it on the same WAL directory each time, and the decision stream the
// clients assemble — using only the public recovery protocol
// (GET /v1/decisions/{id} for in-flight requests, the traffic epoch for
// updates) — is byte-identical to an uninterrupted daemon run, which is
// itself bit-identical to the offline reference engine.
func TestCrashRecoveryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness execs the real daemon; skipped in -short")
	}
	seed := int64(envInt("CRASH_SEED", 1))
	scale := envFloat("CRASH_SCALE", 0.02)
	nkills := envInt("CRASH_KILLS", 3)

	fix := buildFixture(t, scale)
	t.Logf("fixture: |V|=%d requests=%d workers=%d traffic-events=%d seed=%d kills=%d+1",
		fix.g.NumVertices(), len(fix.reqs), len(fix.inst.Workers), len(fix.events), seed, nkills)

	// The kill schedule: nkills distinct request indices (mode chosen per
	// kill), plus one kill racing the first traffic POST.
	rng := rand.New(rand.NewSource(seed))
	killAt := make(map[int]killMode, nkills)
	for len(killAt) < nkills && len(killAt) < len(fix.reqs)-1 {
		i := 1 + rng.Intn(len(fix.reqs)-1)
		if _, dup := killAt[i]; dup {
			continue
		}
		if rng.Intn(3) == 0 {
			killAt[i] = killAfterAck
		} else {
			killAt[i] = killMidFlight
		}
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// Reference: one daemon, no crashes.
	ref := &runner{t: t, fix: fix, client: client,
		rng: rand.New(rand.NewSource(seed + 1)),
		d:   &daemon{t: t, fix: fix, walDir: t.TempDir()}}
	ref.run()

	// Crashy: same trace, SIGKILL at every scheduled point.
	crashy := &runner{t: t, fix: fix, client: client,
		rng: rand.New(rand.NewSource(seed + 2)),
		d:   &daemon{t: t, fix: fix, walDir: t.TempDir()},
		killAt: killAt, trafficKill: true}
	crashy.run()

	t.Logf("crashy run: %d starts, %d records replayed across recoveries", crashy.d.starts, crashy.d.recovered)
	if want := nkills + 2; crashy.d.starts != want {
		t.Errorf("crashy run made %d starts, want %d (one per kill plus the first)", crashy.d.starts, want)
	}

	if !bytes.Equal(ref.stream.Bytes(), crashy.stream.Bytes()) {
		t.Fatalf("decision streams diverge:\n--- uninterrupted ---\n%s--- crashed %d times ---\n%s",
			firstDiff(ref.stream.String(), crashy.stream.String()), len(killAt)+1, "")
	}

	// The stats the two daemons report at end of trace must agree on
	// every replay-deterministic field.
	type cmp struct {
		name string
		a, b any
	}
	rs, cs := ref.stats, crashy.stats
	for _, c := range []cmp{
		{"requests", rs.Requests, cs.Requests},
		{"accepted", rs.Accepted, cs.Accepted},
		{"rejected", rs.Rejected, cs.Rejected},
		{"completions", rs.Completions, cs.Completions},
		{"late_arrivals", rs.LateArrivals, cs.LateArrivals},
		{"late_admissions", rs.LateAdmissions, cs.LateAdmissions},
		{"traffic_epoch", rs.TrafficEpoch, cs.TrafficEpoch},
		{"infeasible_stops", rs.InfeasibleStops, cs.InfeasibleStops},
		{"sim_time", math.Float64bits(rs.SimTime), math.Float64bits(cs.SimTime)},
		{"penalty_sum", math.Float64bits(rs.PenaltySum), math.Float64bits(cs.PenaltySum)},
		{"total_distance", math.Float64bits(rs.TotalDistance), math.Float64bits(cs.TotalDistance)},
	} {
		if c.a != c.b {
			t.Errorf("final stats diverge on %s: uninterrupted %v, crashy %v", c.name, c.a, c.b)
		}
	}

	// Graceful shutdown leaves both WAL dirs at rest: state in the
	// checkpoint, log truncated to a bare segment header.
	for _, d := range []*daemon{ref.d, crashy.d} {
		if _, err := os.Stat(filepath.Join(d.walDir, wal.CheckpointName)); err != nil {
			t.Errorf("missing checkpoint after shutdown: %v", err)
		}
		if fi, err := os.Stat(filepath.Join(d.walDir, wal.SegmentName)); err != nil {
			t.Errorf("missing segment after shutdown: %v", err)
		} else if fi.Size() != wal.HeaderSize {
			t.Errorf("segment not truncated after shutdown: %d bytes, want %d", fi.Size(), wal.HeaderSize)
		}
	}

	// Anchor the uninterrupted run to the offline reference engine: the
	// daemon chain ends at the same decisions the paper pipeline makes.
	oracle, kind, err := cliutil.BuildOracle("hub", fix.g)
	if err != nil {
		t.Fatal(err)
	}
	profile := &roadnet.TrafficProfile{Events: fix.events}
	offline, _, err := serve.OfflineDecisions(fix.g, fix.inst, oracle, kind, 1, 1, profile)
	if err != nil {
		t.Fatalf("offline reference: %v", err)
	}
	var offStream bytes.Buffer
	for _, r := range fix.reqs {
		d, ok := offline[int32(r.ID)]
		if !ok {
			t.Fatalf("offline reference has no decision for request %d", r.ID)
		}
		fmt.Fprintf(&offStream, "%d %t %d %016x %016x\n",
			d.ID, d.Accepted, d.Worker,
			math.Float64bits(d.Delta), math.Float64bits(d.SimTime))
	}
	if !bytes.Equal(offStream.Bytes(), ref.stream.Bytes()) {
		t.Fatalf("uninterrupted daemon diverges from offline reference:\n%s",
			firstDiff(offStream.String(), ref.stream.String()))
	}
}

// firstDiff renders the first few lines where two streams disagree.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		av, bv := "", ""
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if av != bv {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, av, bv)
		}
	}
	return "(no line-level difference)"
}
