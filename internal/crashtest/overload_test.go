package crashtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// overloadRunner drives bursts of concurrent requests against a daemon
// whose admission queue is bounded, pinning the arrival order by polling
// the submitted counter after each launch — the only way to make an
// overload workload reproducible across process boundaries.
type overloadRunner struct {
	t      *testing.T
	d      *daemon
	client *http.Client
	window time.Duration // the daemon's batch window
}

func (o *overloadRunner) stats() serve.Stats {
	o.t.Helper()
	resp, err := o.client.Get(o.d.base + "/v1/stats")
	if err != nil {
		o.t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		o.t.Fatalf("stats: %v", err)
	}
	return st
}

// post sends one request and decodes the decision from either a 200 or
// a 429 response.
func (o *overloadRunner) post(r *core.Request) (serve.Decision, error) {
	id, rel := int32(r.ID), r.Release
	body, err := json.Marshal(serve.Request{
		ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
		Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty,
		Capacity: r.Capacity,
	})
	if err != nil {
		return serve.Decision{}, err
	}
	resp, err := o.client.Post(o.d.base+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		return serve.Decision{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.Decision{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
		return serve.Decision{}, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var d serve.Decision
	if err := json.Unmarshal(raw, &d); err != nil {
		return serve.Decision{}, err
	}
	return d, nil
}

// waitSubmitted polls until the daemon has admitted (or shed) n
// requests in total — the arrival-order barrier between launches.
func (o *overloadRunner) waitSubmitted(n int) {
	o.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for o.stats().Submitted < n {
		if time.Now().After(deadline) {
			o.t.Fatalf("daemon never reached %d submissions", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// launch fires the burst's requests concurrently but in a pinned
// arrival order, returning before any verdict is delivered (verdicts
// only come with the next flush).
func (o *overloadRunner) launch(reqs []*core.Request) (*sync.WaitGroup, []serve.Decision, []error) {
	o.t.Helper()
	base := o.stats().Submitted
	ds := make([]serve.Decision, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r *core.Request) {
			defer wg.Done()
			ds[i], errs[i] = o.post(r)
		}(i, r)
		o.waitSubmitted(base + i + 1)
	}
	return &wg, ds, errs
}

// burst launches reqs in pinned order and waits for every verdict.
func (o *overloadRunner) burst(reqs []*core.Request) []serve.Decision {
	o.t.Helper()
	wg, ds, errs := o.launch(reqs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			o.t.Fatalf("request %d: %v\ndaemon output:\n%s", reqs[i].ID, err, o.d.out.String())
		}
	}
	return ds
}

// stored fetches a retained decision, failing the test on 404 — used
// after recovery when the whole burst is known durable.
func (o *overloadRunner) stored(id int32) serve.Decision {
	o.t.Helper()
	resp, err := o.client.Get(fmt.Sprintf("%s/v1/decisions/%d", o.d.base, id))
	if err != nil {
		o.t.Fatalf("decisions/%d: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		o.t.Fatalf("decisions/%d: status %d", id, resp.StatusCode)
	}
	var d serve.Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		o.t.Fatalf("decisions/%d: %v", id, err)
	}
	return d
}

// hasStored reports whether the daemon retained a decision for id.
func (o *overloadRunner) hasStored(id int32) bool {
	o.t.Helper()
	resp, err := o.client.Get(fmt.Sprintf("%s/v1/decisions/%d", o.d.base, id))
	if err != nil {
		o.t.Fatalf("decisions/%d: %v", id, err)
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// appendStream renders decisions (shed verdicts included) in request
// order onto the canonical comparison stream.
func appendStream(buf *bytes.Buffer, ds []serve.Decision) {
	for _, d := range ds {
		fmt.Fprintf(buf, "%d %t %t %d %016x %016x\n",
			d.ID, d.Accepted, d.Shed, d.Worker,
			math.Float64bits(d.Delta), math.Float64bits(d.SimTime))
	}
}

// TestOverloadCrashEquivalence is the overload kill point: a daemon
// running with a bounded queue is driven into shedding, SIGKILLed with
// a full burst in flight (its commit group not yet durable), restarted,
// and re-driven — and the complete verdict stream, sheds included, is
// byte-identical to an uninterrupted daemon's. The recovery protocol
// under overload is the same as under normal load: whatever the WAL
// holds is truth, whatever it doesn't never happened and is resent.
func TestOverloadCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash harness execs the real daemon; skipped in -short")
	}
	fix := buildFixture(t, envFloat("CRASH_SCALE", 0.02))
	const window = 600 * time.Millisecond
	const maxQueue = 3
	const burstN = 8
	if len(fix.reqs) < 3*burstN {
		t.Fatalf("workload too small: %d requests", len(fix.reqs))
	}
	bursts := [][]*core.Request{
		fix.reqs[0*burstN : 1*burstN],
		fix.reqs[1*burstN : 2*burstN],
		fix.reqs[2*burstN : 3*burstN],
	}
	extra := []string{
		"-batch-window", window.String(),
		"-max-queue", fmt.Sprint(maxQueue),
	}
	client := &http.Client{Timeout: 30 * time.Second}

	run := func(walDir string, kill bool) (*bytes.Buffer, serve.Stats, *daemon) {
		d := &daemon{t: t, fix: fix, walDir: walDir, extra: extra}
		o := &overloadRunner{t: t, d: d, client: client, window: window}
		d.start()
		var stream bytes.Buffer

		appendStream(&stream, o.burst(bursts[0]))

		if kill {
			// The overload kill: the burst is fully admitted (queue full,
			// victims parked for the next flush) but the window has not
			// expired — nothing about it is durable yet.
			wg, _, _ := o.launch(bursts[1])
			d.kill()
			wg.Wait() // the in-flight posts fail with the connection
			d.start()
			if o.hasStored(int32(bursts[1][0].ID)) {
				// The flush raced the kill and won: the whole commit group
				// is durable (groups are atomic), so every verdict is
				// resolvable without resending.
				ds := make([]serve.Decision, len(bursts[1]))
				for i, r := range bursts[1] {
					ds[i] = o.stored(int32(r.ID))
				}
				appendStream(&stream, ds)
			} else {
				// Nothing committed: the pre-burst state was recovered
				// exactly, so resending the burst in the same pinned order
				// must reproduce the uninterrupted run's verdicts.
				appendStream(&stream, o.burst(bursts[1]))
			}
		} else {
			appendStream(&stream, o.burst(bursts[1]))
		}

		appendStream(&stream, o.burst(bursts[2]))
		st := o.stats()
		d.shutdown()
		return &stream, st, d
	}

	refStream, refStats, refD := run(t.TempDir(), false)
	killStream, killStats, killD := run(t.TempDir(), true)
	t.Logf("ref: %d starts; kill: %d starts, %d records replayed; shed %d/%d",
		refD.starts, killD.starts, killD.recovered, killStats.Shed, killStats.Submitted)

	if refStats.Shed == 0 {
		t.Fatal("the bounded queue never shed: the harness is not generating overload")
	}
	if killD.starts != 2 {
		t.Errorf("killed run made %d starts, want 2", killD.starts)
	}
	if !bytes.Equal(refStream.Bytes(), killStream.Bytes()) {
		t.Fatalf("verdict streams diverge:\n%s", firstDiff(refStream.String(), killStream.String()))
	}
	type cmp struct {
		name string
		a, b any
	}
	for _, c := range []cmp{
		{"submitted", refStats.Submitted, killStats.Submitted},
		{"shed", refStats.Shed, killStats.Shed},
		{"requests", refStats.Requests, killStats.Requests},
		{"accepted", refStats.Accepted, killStats.Accepted},
		{"rejected", refStats.Rejected, killStats.Rejected},
		{"penalty_sum", math.Float64bits(refStats.PenaltySum), math.Float64bits(killStats.PenaltySum)},
		{"total_distance", math.Float64bits(refStats.TotalDistance), math.Float64bits(killStats.TotalDistance)},
		{"sim_time", math.Float64bits(refStats.SimTime), math.Float64bits(killStats.SimTime)},
	} {
		if c.a != c.b {
			t.Errorf("final stats diverge on %s: uninterrupted %v, killed %v", c.name, c.a, c.b)
		}
	}
}
