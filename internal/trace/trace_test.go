package trace

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

func testFleetAndPlanner(t *testing.T) (*core.Fleet, *core.Greedy, []*core.Request) {
	t.Helper()
	p := workload.ChengduLike(0.01)
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.BuildOn(p, g, shortest.NewBiDijkstra(g).Dist)
	if err != nil {
		t.Fatal(err)
	}
	dist := shortest.NewCached(shortest.NewBiDijkstra(g), 1<<16).Dist
	fleet, err := core.NewFleet(g, dist, inst.Workers, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, core.NewPruneGreedyDP(fleet, 1), inst.Requests
}

// TestRecorderRingSemantics pins the ring contract: sequence numbers are
// dense, the most recent Capacity events survive a wrap in order, and
// FindPlan returns the newest retained plan for a request.
func TestRecorderRingSemantics(t *testing.T) {
	r := New(16)
	if r.Capacity() != 16 {
		t.Fatalf("capacity %d, want 16", r.Capacity())
	}
	for i := 0; i < 40; i++ {
		r.Record(Event{Kind: KindAdmit, Req: int64(i)})
	}
	evs := r.Events(nil)
	if len(evs) != 16 || r.Len() != 16 {
		t.Fatalf("retained %d/%d events, want 16", len(evs), r.Len())
	}
	for i, ev := range evs {
		wantSeq := uint64(40 - 16 + i)
		if ev.Seq != wantSeq || ev.Req != int64(wantSeq) {
			t.Fatalf("event %d: seq=%d req=%d, want %d", i, ev.Seq, ev.Req, wantSeq)
		}
	}

	r.Record(Event{Kind: KindPlan, Req: 7, Worker: 3})
	r.Record(Event{Kind: KindPlan, Req: 7, Worker: 5})
	got, ok := r.FindPlan(7)
	if !ok || got.Worker != 5 {
		t.Fatalf("FindPlan(7) = %+v, %v; want newest plan (worker 5)", got, ok)
	}
	if _, ok := r.FindPlan(424242); ok {
		t.Fatal("FindPlan of an unknown request reported a hit")
	}
}

// TestRecorderObserverPayload drives real plans through an attached
// recorder and checks the flattened plan events carry consistent
// introspection payloads.
func TestRecorderObserverPayload(t *testing.T) {
	_, p, reqs := testFleetAndPlanner(t)
	rec := New(4096)
	p.SetObserver(rec)
	served, rejected := 0, 0
	for _, r := range reqs {
		if res := p.OnRequest(r.Release, r); res.Served {
			served++
		} else {
			rejected++
		}
	}
	if served == 0 || rejected == 0 {
		t.Fatalf("workload too small: served=%d rejected=%d", served, rejected)
	}
	plans := 0
	for _, ev := range rec.Events(nil) {
		if ev.Kind != KindPlan {
			continue
		}
		plans++
		if ev.Reason == "served" != (ev.Worker >= 0) {
			t.Fatalf("reason %q with worker %d", ev.Reason, ev.Worker)
		}
		if ev.Feasible > ev.Candidates {
			t.Fatalf("feasible %d > candidates %d", ev.Feasible, ev.Candidates)
		}
		if ev.Evaluated+ev.Pruned != ev.Feasible {
			t.Fatalf("evaluated %d + pruned %d != feasible %d", ev.Evaluated, ev.Pruned, ev.Feasible)
		}
		if ev.Feasible > 0 && (math.IsInf(ev.MinLB, 1) || ev.MinLB < 0) {
			t.Fatalf("min_lb %v with %d feasible", ev.MinLB, ev.Feasible)
		}
		if int(ev.NTop) > TopK || (ev.Feasible > 0 && ev.NTop == 0) {
			t.Fatalf("ntop %d with feasible %d", ev.NTop, ev.Feasible)
		}
		if ev.DurNs <= 0 {
			t.Fatalf("plan duration %d", ev.DurNs)
		}
	}
	if plans == 0 {
		t.Fatal("no plan events recorded")
	}
	if min := min(len(reqs), rec.Capacity()); plans < min/2 {
		t.Fatalf("only %d plan events for %d requests", plans, len(reqs))
	}
}

// TestRecorderPlanZeroAllocs is the acceptance criterion for the real
// recorder: a warmed planner with an attached Recorder (histogram
// included) still plans with zero heap allocations per op.
func TestRecorderPlanZeroAllocs(t *testing.T) {
	_, p, reqs := testFleetAndPlanner(t)
	rec := New(1024)
	rec.PlanSeconds = NewHistogram(LatencyBuckets())
	p.SetObserver(rec)
	for _, r := range reqs {
		p.OnRequest(r.Release, r)
	}
	probe := *reqs[len(reqs)-1]
	probe.Release = 1e9 // far future: advance-free, steady state
	if allocs := testing.AllocsPerRun(100, func() {
		p.Plan(probe.Release, &probe)
	}); allocs != 0 {
		t.Errorf("Plan with active Recorder allocates %v per op, want 0", allocs)
	}
}

// TestEventJSON pins the dump shape: kinds marshal as wire names and the
// fixed candidate array renders as a variable-length list.
func TestEventJSON(t *testing.T) {
	ev := Event{Kind: KindPlan, Req: 9, Worker: 2, Reason: "served", NTop: 2,
		Top: [TopK]Cand{{Worker: 2, LB: 1.5}, {Worker: 4, LB: 2.5}}}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, want := range []string{`"kind":"plan"`, `"top_candidates":[{"worker":2,"lb":1.5},{"worker":4,"lb":2.5}]`} {
		if !strings.Contains(s, want) {
			t.Fatalf("marshaled event %s missing %s", s, want)
		}
	}
	admit := Event{Kind: KindAdmit, Req: 1, Worker: -1}
	b, err = json.Marshal(admit)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "top_candidates") {
		t.Fatalf("admit event leaked plan payload: %s", b)
	}
}

// TestHistogram pins bucket assignment (le is inclusive), the cumulative
// rendering, and the exposition format output.
func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 18.0; got != want {
		t.Fatalf("sum %v, want %v", got, want)
	}
	cum := h.Cumulative(nil)
	want := []uint64{2, 4, 5, 6} // le=1: {0.5,1}; le=2: +{1.5,2}; le=5: +{3}; +Inf: +{10}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("cumulative %v, want %v", cum, want)
		}
	}
	var sb strings.Builder
	h.WriteProm(&sb, "x_seconds", "test histogram.")
	out := sb.String()
	for _, line := range []string{
		"# HELP x_seconds test histogram.",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="1"} 2`,
		`x_seconds_bucket{le="+Inf"} 6`,
		"x_seconds_sum 18",
		"x_seconds_count 6",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("exposition output missing %q:\n%s", line, out)
		}
	}
}

// TestHistogramObserveZeroAllocs: Observe is on the flush path.
func TestHistogramObserveZeroAllocs(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(0.003) }); allocs != 0 {
		t.Errorf("Observe allocates %v per op, want 0", allocs)
	}
}

// TestLatencyBucketsAscending guards the ladder NewHistogram depends on.
func TestLatencyBucketsAscending(t *testing.T) {
	b := LatencyBuckets()
	if len(b) < 20 {
		t.Fatalf("only %d buckets", len(b))
	}
	NewHistogram(b) // panics if not strictly ascending
}

// TestRecorderConcurrentRecord runs recorders under -race.
func TestRecorderConcurrentRecord(t *testing.T) {
	r := New(64)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: KindAdmit, Req: int64(g*1000 + i)})
				if i%100 == 0 {
					r.Events(nil)
					r.FindPlan(1)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if r.Len() != 64 {
		t.Fatalf("retained %d, want 64", r.Len())
	}
	evs := r.Events(nil)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("non-dense sequence at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
