// Package trace is the flight recorder: a fixed-capacity, allocation-free
// event ring that records the full lifecycle of every request the serving
// stack handles — admit → batch flush → plan start → planning work
// (candidates, Lemma 8 prunes, DP cells) → decision → WAL group sync →
// ack — plus traffic epoch advances and oracle rebuild/customize events.
//
// The design follows the Polynesia lesson the ISSUE cites: the
// observation path must not perturb the transaction path. Concretely:
//
//   - Recording never allocates. The ring's slots are preallocated Event
//     structs; Record builds the event on the caller's stack and copies it
//     into a slot. Event is a flat, comparable struct — no slices, no
//     pointers — so the copy is a fixed-size memmove and two events can
//     be compared with ==.
//
//   - Recording never affects decisions. Recorder implements
//     core.PlanObserver, whose contract is strictly read-only
//     observation after every decision-affecting operation; attaching or
//     detaching a Recorder cannot change an accept/reject, an assignment
//     or a Δ* bit (the serve tier's lockstep-equivalence test pins this).
//
//   - Recording is concurrency-safe. A single mutex orders slot writes
//     (the parallel dispatcher may observe Plans from many goroutines);
//     the hold time is one struct copy, and the uncontended fast path is
//     a few atomic instructions. A pure seqlock would be faster still but
//     is invisible to the race detector — the repo runs its suites under
//     -race, so the recorder stays conventionally synchronized.
//
// The ring overwrites: the most recent Capacity events win, older ones
// are gone. That is the flight-recorder trade — bounded memory forever,
// at the cost of history depth — and why the explain endpoint documents
// "trace evicted" as an expected answer on a busy server.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// Kind classifies a lifecycle event.
type Kind uint8

const (
	// KindAdmit — a request entered the admission queue.
	KindAdmit Kind = iota + 1
	// KindFlush — an admission batch was planned (N requests, DurNs).
	KindFlush
	// KindPlanStart — the planner began a request's decision phase.
	KindPlanStart
	// KindPlan — a plan completed; the full introspection payload
	// (candidates, prunes, DP cells, outcome) is attached.
	KindPlan
	// KindWALSync — a WAL group commit fsynced (N decisions, DurNs).
	KindWALSync
	// KindAck — a decision was delivered to its waiting client
	// (DurNs = admission-to-ack).
	KindAck
	// KindTrafficEpoch — a traffic update advanced the weight epoch
	// (Epoch, N = changed edges).
	KindTrafficEpoch
	// KindOracle — the preprocessed oracle tier rebuilt or customized
	// after an epoch advance (Epoch, N = lifetime rebuilds, DurNs = the
	// rebuild's duration).
	KindOracle
	// KindShed — the overload policy evicted a request from the
	// admission queue (Penalty = the Eq. 2 p_r the platform pays).
	KindShed
	// KindDegrade — the degradation ladder changed stage (N = the new
	// stage 0–3, Reason = "degrade" or "recover").
	KindDegrade
)

var kindNames = [...]string{
	KindAdmit:        "admit",
	KindFlush:        "flush",
	KindPlanStart:    "plan_start",
	KindPlan:         "plan",
	KindWALSync:      "wal_sync",
	KindAck:          "ack",
	KindTrafficEpoch: "traffic_epoch",
	KindOracle:       "oracle",
	KindShed:         "shed",
	KindDegrade:      "degrade",
}

// String returns the stable wire name (FORMATS.md §9).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalText renders the kind as its wire name in JSON dumps.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a wire name back, so dumps round-trip through
// JSON (clients of /debug/trace decode into Event).
func (k *Kind) UnmarshalText(text []byte) error {
	s := string(text)
	for i, name := range kindNames {
		if name == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// TopK is how many leading scan-order candidates a plan event retains
// for the explain endpoint. The slot is a fixed array so Event stays
// comparable and recording stays allocation-free; the leading candidates
// are the interesting ones — they are the scan prefix Lemma 8 actually
// evaluated.
const TopK = 8

// Cand is one retained candidate: a worker and its decision-phase lower
// bound LBΔ*.
type Cand struct {
	Worker int64   `json:"worker"`
	LB     float64 `json:"lb"`
}

// Event is one flight-recorder slot. It is flat and comparable: every
// field is a scalar or fixed array, so slots never allocate and two
// events compare with ==. Fields beyond the common header are
// kind-specific and zero elsewhere (omitempty keeps dumps readable).
type Event struct {
	// Seq is the global event sequence (monotone, never reused); WallNs
	// the wall-clock time in Unix nanoseconds; Now the event-clock time
	// in simulation seconds.
	Seq    uint64  `json:"seq"`
	WallNs int64   `json:"wall_ns"`
	Kind   Kind    `json:"kind"`
	Now    float64 `json:"now"`
	// Req is the request ID for request-scoped events, -1 otherwise.
	Req int64 `json:"req"`
	// DurNs is the event's duration where one applies: plan wall time,
	// flush time, sync time, admission-to-ack time, rebuild time.
	DurNs int64 `json:"dur_ns,omitempty"`
	// N is the kind-specific count: batch size (flush), decisions synced
	// (wal_sync), changed edges (traffic_epoch), lifetime rebuilds
	// (oracle).
	N int64 `json:"n,omitempty"`
	// Epoch is the weight epoch for traffic/oracle events.
	Epoch uint64 `json:"epoch,omitempty"`

	// Plan payload (KindPlan only) — the PlanTrace scalars.
	Candidates  int32   `json:"candidates,omitempty"`
	Feasible    int32   `json:"feasible,omitempty"`
	Evaluated   int32   `json:"evaluated,omitempty"`
	Pruned      int32   `json:"pruned,omitempty"`
	FeasibleIns int32   `json:"feasible_ins,omitempty"`
	DPCells     int64   `json:"dp_cells,omitempty"`
	MinLB       float64 `json:"min_lb,omitempty"`
	L           float64 `json:"l,omitempty"`
	Penalty     float64 `json:"penalty,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	// Worker is the chosen worker, -1 when rejected (and for non-plan
	// events); PickupPos/DropPos the winning insertion positions.
	Worker    int64  `json:"worker"`
	PickupPos int32  `json:"pickup_pos,omitempty"`
	DropPos   int32  `json:"drop_pos,omitempty"`
	Reason    string `json:"reason,omitempty"`
	Parallel  bool   `json:"parallel,omitempty"`
	// NTop and Top retain the leading scan-order candidates; rendered as
	// the top_candidates array in JSON.
	NTop int32      `json:"-"`
	Top  [TopK]Cand `json:"-"`
}

// TopCands returns the valid retained candidates.
func (e *Event) TopCands() []Cand { return e.Top[:e.NTop] }

// MarshalJSON renders the fixed candidate array as a variable-length
// top_candidates list. Marshaling allocates, of course — it runs on the
// dump path (/debug/trace), never on the record path.
func (e Event) MarshalJSON() ([]byte, error) {
	type alias Event // shed the method set to avoid recursion
	return json.Marshal(struct {
		alias
		TopCandidates []Cand `json:"top_candidates,omitempty"`
	}{alias(e), e.Top[:e.NTop]})
}

// Recorder is the flight recorder. It implements core.PlanObserver, so
// attaching one to a planner (core.Greedy.SetObserver,
// dispatch.ParallelGreedy.SetObserver) records every plan; the serving
// tier additionally feeds it the admission/flush/sync/ack events. Safe
// for concurrent use; the zero value is not usable — call New.
type Recorder struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64
	now  func() int64

	// PlanSeconds, when non-nil, observes each plan's wall time (in
	// seconds) — the recorder feeds the urpsm_plan_seconds histogram
	// directly because plan durations are only measured while an
	// observer is attached.
	PlanSeconds *Histogram
}

// New returns a recorder retaining the most recent capacity events
// (minimum 16).
func New(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{
		ring: make([]Event, capacity),
		now:  func() int64 { return time.Now().UnixNano() },
	}
}

// Capacity returns the ring size.
func (r *Recorder) Capacity() int { return len(r.ring) }

// SetNow replaces the wall clock — golden-fixture tests install a
// deterministic one. Not safe to call while events are being recorded.
func (r *Recorder) SetNow(f func() int64) { r.now = f }

// Record stamps ev with the next sequence number and the wall clock and
// stores it in the ring, overwriting the oldest slot when full. It never
// allocates.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	ev.Seq = r.seq
	ev.WallNs = r.now()
	r.ring[r.seq%uint64(len(r.ring))] = ev
	r.seq++
	r.mu.Unlock()
}

// Len returns how many events are retained (≤ Capacity).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq < uint64(len(r.ring)) {
		return int(r.seq)
	}
	return len(r.ring)
}

// Events appends the retained events to dst in oldest→newest order and
// returns the result. The copy is taken under the ring lock, so it is a
// consistent snapshot.
func (r *Recorder) Events(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	lo := uint64(0)
	if r.seq > n {
		lo = r.seq - n
	}
	for s := lo; s < r.seq; s++ {
		dst = append(dst, r.ring[s%n])
	}
	return dst
}

// FindPlan returns the most recent plan event for request req, or false
// when none is retained (never planned, or evicted by ring wrap).
func (r *Recorder) FindPlan(req int64) (Event, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.ring))
	lo := uint64(0)
	if r.seq > n {
		lo = r.seq - n
	}
	for s := r.seq; s > lo; s-- {
		ev := &r.ring[(s-1)%n]
		if ev.Kind == KindPlan && ev.Req == req {
			return *ev, true
		}
	}
	return Event{}, false
}

// PlanStart implements core.PlanObserver.
func (r *Recorder) PlanStart(now float64, req *core.Request) {
	r.Record(Event{Kind: KindPlanStart, Now: now, Req: int64(req.ID), Worker: -1})
}

// PlanDone implements core.PlanObserver: it flattens the trace into a
// plan event (copying the leading candidates out of the scratch-aliasing
// LBs slice) and observes the plan-latency histogram. No allocation, per
// the observer contract.
func (r *Recorder) PlanDone(tr *core.PlanTrace) {
	ev := Event{
		Kind:        KindPlan,
		Now:         tr.Now,
		Req:         int64(tr.Req.ID),
		DurNs:       tr.PlanNs,
		Candidates:  int32(tr.Candidates),
		Feasible:    int32(tr.Feasible),
		Evaluated:   tr.Stats.Evaluated,
		Pruned:      int32(tr.Pruned),
		FeasibleIns: tr.Stats.FeasibleIns,
		DPCells:     tr.Stats.DPCells,
		L:           tr.L,
		Penalty:     tr.Req.Penalty,
		Worker:      int64(tr.Chosen),
		Reason:      tr.Reason.String(),
		Parallel:    tr.Parallel,
	}
	if tr.Feasible > 0 {
		ev.MinLB = tr.MinLB
	}
	if tr.Chosen >= 0 || tr.Reason == core.ReasonPostCheck {
		ev.Delta = tr.Ins.Delta
		ev.PickupPos = int32(tr.Ins.I)
		ev.DropPos = int32(tr.Ins.J)
	}
	k := len(tr.LBs)
	if k > TopK {
		k = TopK
	}
	for i := 0; i < k; i++ {
		ev.Top[i] = Cand{Worker: int64(tr.LBs[i].Worker.ID), LB: tr.LBs[i].LB}
	}
	ev.NTop = int32(k)
	r.Record(ev)
	if r.PlanSeconds != nil {
		r.PlanSeconds.Observe(float64(tr.PlanNs) / 1e9)
	}
}

// Admit records a request entering the admission queue.
func (r *Recorder) Admit(now float64, req int64) {
	r.Record(Event{Kind: KindAdmit, Now: now, Req: req, Worker: -1})
}

// Flush records a planned admission batch of n requests.
func (r *Recorder) Flush(now float64, n int, dur time.Duration) {
	r.Record(Event{Kind: KindFlush, Now: now, Req: -1, Worker: -1, N: int64(n), DurNs: dur.Nanoseconds()})
}

// WALSync records a group commit of n decisions.
func (r *Recorder) WALSync(now float64, n int, dur time.Duration) {
	r.Record(Event{Kind: KindWALSync, Now: now, Req: -1, Worker: -1, N: int64(n), DurNs: dur.Nanoseconds()})
}

// Ack records a decision delivered to its waiting client; dur is the
// admission-to-ack latency.
func (r *Recorder) Ack(now float64, req int64, dur time.Duration) {
	r.Record(Event{Kind: KindAck, Now: now, Req: req, Worker: -1, DurNs: dur.Nanoseconds()})
}

// TrafficEpoch records a weight-epoch advance touching changed edges.
func (r *Recorder) TrafficEpoch(now float64, epoch uint64, changed int) {
	r.Record(Event{Kind: KindTrafficEpoch, Now: now, Req: -1, Worker: -1, Epoch: epoch, N: int64(changed)})
}

// Oracle records a preprocessed-tier rebuild or customization; rebuilds
// is the lifetime count and dur the rebuild's duration.
func (r *Recorder) Oracle(now float64, epoch uint64, rebuilds uint64, dur time.Duration) {
	r.Record(Event{Kind: KindOracle, Now: now, Req: -1, Worker: -1, Epoch: epoch, N: int64(rebuilds), DurNs: dur.Nanoseconds()})
}

// Shed records a request evicted from the admission queue by the
// overload policy; penalty is the Eq. 2 rejection penalty p_r the
// platform pays for it.
func (r *Recorder) Shed(now float64, req int64, penalty float64) {
	r.Record(Event{Kind: KindShed, Now: now, Req: req, Worker: -1, Penalty: penalty, Reason: "shed"})
}

// Degrade records a degradation-ladder transition to stage (0–3); dir is
// "degrade" or "recover".
func (r *Recorder) Degrade(now float64, stage int, dir string) {
	r.Record(Event{Kind: KindDegrade, Now: now, Req: -1, Worker: -1, N: int64(stage), Reason: dir})
}
