package trace

// Hand-rolled fixed-bucket Prometheus histograms. The repo takes no
// dependencies, so the client library is out; the exposition format is
// simple enough to write directly — cumulative _bucket{le="..."}
// samples, then _sum and _count — and a fixed bucket ladder keeps
// Observe allocation-free and lock-free (one atomic add per bucket
// boundary crossed, a CAS loop for the sum).

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent observers.
// Create with NewHistogram; the zero value is not usable.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit). The slice is retained.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("trace: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// LatencyBuckets is a 1–2.5–5 ladder from 1µs to 10s — wide enough to
// hold both a ~12µs plan and a ~10ms fsync with resolution at each end.
func LatencyBuckets() []float64 {
	var b []float64
	for _, decade := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1} {
		b = append(b, decade, 2.5*decade, 5*decade)
	}
	return append(b, 10)
}

// Observe records one value (in the unit the bounds are in — seconds
// for the serve-tier latency histograms). Allocation-free.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Cumulative appends the cumulative per-bucket counts (one per bound,
// plus the +Inf total) to dst and returns it.
func (h *Histogram) Cumulative(dst []uint64) []uint64 {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		dst = append(dst, cum)
	}
	return dst
}

// WriteProm writes the histogram as one Prometheus text-format metric
// family: HELP, TYPE and the cumulative bucket/sum/count samples.
func (h *Histogram) WriteProm(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
