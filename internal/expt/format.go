package expt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// MetricSelector extracts one plotted value from a run's metrics.
type MetricSelector struct {
	Name string
	Get  func(sim.Metrics) float64
}

// PanelSelectors returns the three panels every figure of the paper
// shows — unified cost, served rate, response time — plus the figure's
// extra panels where applicable (grid memory for Fig. 5, distance queries
// for Fig. 6 and the |W| sweep's pruning discussion).
func PanelSelectors(figure string) []MetricSelector {
	panels := []MetricSelector{
		{"Unified Cost", func(m sim.Metrics) float64 { return m.UnifiedCost }},
		{"Served Rate", func(m sim.Metrics) float64 { return m.ServedRate }},
		{"Response Time (ms)", func(m sim.Metrics) float64 { return m.AvgResponseMs }},
	}
	switch figure {
	case "fig5":
		panels = append(panels, MetricSelector{"Grid Memory (KB)",
			func(m sim.Metrics) float64 { return float64(m.GridMemoryBytes) / 1024 }})
	case "fig3", "fig6":
		panels = append(panels, MetricSelector{"Distance Queries",
			func(m sim.Metrics) float64 { return float64(m.DistQueries) }})
	}
	return panels
}

// timer is stubbed in tests.
var now = time.Now

// timeOp measures the mean nanoseconds of fn over reps executions.
func timeOp(reps int, fn func()) float64 {
	if reps < 1 {
		reps = 1
	}
	start := now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return float64(now().Sub(start).Nanoseconds()) / float64(reps)
}

// FormatSeries renders one figure as aligned text tables, one per panel.
func FormatSeries(s Series) string {
	var b strings.Builder
	algos := algosIn(s)
	for _, sel := range PanelSelectors(s.Figure) {
		fmt.Fprintf(&b, "%s / %s — %s\n", s.Figure, s.Dataset, sel.Name)
		fmt.Fprintf(&b, "%-12s", s.ParamName)
		for _, a := range algos {
			fmt.Fprintf(&b, "%16s", a)
		}
		b.WriteByte('\n')
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%-12s", trimFloat(pt.Param))
			for _, a := range algos {
				m, ok := pt.Metrics[a]
				if !ok {
					fmt.Fprintf(&b, "%16s", "-")
					continue
				}
				fmt.Fprintf(&b, "%16s", trimFloat(sel.Get(m)))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatSeriesCSV renders one figure as CSV with one row per
// (param, algorithm) and one column per metric.
func FormatSeriesCSV(s Series) string {
	var b strings.Builder
	b.WriteString("figure,dataset,param,value,algorithm,unified_cost,served_rate,response_ms,dist_queries,grid_memory_bytes,total_distance\n")
	for _, pt := range s.Points {
		for _, a := range algosIn(s) {
			m, ok := pt.Metrics[a]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s,%s,%s,%v,%s,%v,%v,%v,%d,%d,%v\n",
				s.Figure, s.Dataset, s.ParamName, pt.Param, a,
				m.UnifiedCost, m.ServedRate, m.AvgResponseMs, m.DistQueries,
				m.GridMemoryBytes, m.TotalDistance)
		}
	}
	return b.String()
}

func algosIn(s Series) []string {
	seen := map[string]bool{}
	for _, pt := range s.Points {
		for a := range pt.Metrics {
			seen[a] = true
		}
	}
	// Keep the canonical plotting order, then any extras alphabetically.
	var out []string
	for _, a := range Algorithms {
		if seen[a] {
			out = append(out, a)
			delete(seen, a)
		}
	}
	var rest []string
	for a := range seen {
		rest = append(rest, a)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// trimFloat prints a float compactly (integers without decimals).
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	if v != 0 && (v < 0.01 && v > -0.01 || v >= 1e7 || v <= -1e7) {
		return fmt.Sprintf("%.3g", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// FormatTable4 renders the dataset-statistics table.
func FormatTable4(rows []DatasetStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s%14s%14s%14s\n", "Dataset", "#(Requests)", "#(Vertices)", "#(Edges)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s%14d%14d%14d\n", r.Name, r.Requests, r.Vertices, r.Edges)
	}
	return b.String()
}

// FormatHardness renders the empirical hardness table.
func FormatHardness(points []HardnessPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s%8s%10s%14s%14s\n", "variant", "|V|", "trials", "online-served", "ratio-LB")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14s%8d%10d%14d%14s\n",
			p.Variant, p.NVertices, p.Trials, p.OnlineServed, trimFloat(p.RatioLB))
	}
	return b.String()
}

// FormatInsertionScaling renders the §4 operator-complexity ablation.
func FormatInsertionScaling(points []InsertionScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s%16s%16s%16s\n", "n", "basic ns/op", "naiveDP ns/op", "linearDP ns/op")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8d%16s%16s%16s\n", p.N,
			trimFloat(p.BasicNs), trimFloat(p.NaiveNs), trimFloat(p.LinearNs))
	}
	return b.String()
}
