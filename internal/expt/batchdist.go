package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// BatchDistPoint is one admission-batch size of the batched-oracle sweep:
// the same request stream planned by pruneGreedyDP with pure point
// queries and with one many-to-many distance table prefetched per batch
// (DESIGN.md §16). Decisions are bit-identical across the two modes —
// every table cell carries the exact bits of the point query it replaces
// — so the only things that move are the query count and the wall time.
type BatchDistPoint struct {
	BatchSize int
	Served    int
	// PointQueries / BatchedQueries are the oracle-chain dist queries
	// (cache misses) issued by the planning loop in each mode; TableHits
	// is how many planner lookups the batched mode answered from tables.
	PointQueries   uint64
	BatchedQueries uint64
	TableHits      uint64
	QueryReduction float64
	PointPlanMs    float64
	BatchedPlanMs  float64
	Speedup        float64
}

// batchDistMode plans the runner's base workload in admission batches of
// size b, optionally prefetching a distance table per batch, and returns
// per-request results plus the counters.
func (r *Runner) batchDistMode(b int, batched bool) ([]core.Result, *BatchDistPoint, error) {
	base, kind, err := r.oracle()
	if err != nil {
		return nil, nil, err
	}
	mtm := shortest.ManyToManyFor(base)
	if mtm == nil {
		return nil, nil, fmt.Errorf("expt: oracle %q has no bit-identical batched form (use hub, cch or ch)", kind)
	}
	counter := shortest.NewCounting(base)
	dist := shortest.NewCached(counter, 1<<18).Dist
	inst, err := workload.BuildOn(r.Base, r.G, dist)
	if err != nil {
		return nil, nil, err
	}
	fleet, err := core.NewFleet(r.G, dist, inst.Workers, r.CellMeters)
	if err != nil {
		return nil, nil, err
	}
	planner := core.NewPruneGreedyDP(fleet, 1)
	reqs := append([]*core.Request(nil), inst.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Release < reqs[j].Release })

	table := core.NewDistTable(r.G.NumVertices(), dist)
	arena := shortest.NewTableArena()
	var cands []*core.Worker
	results := make([]core.Result, 0, len(reqs))
	served := 0
	before := counter.Count()
	start := time.Now()
	for lo := 0; lo < len(reqs); lo += b {
		batch := reqs[lo:min(lo+b, len(reqs))]
		if batched {
			table.Reset()
			cands = cands[:0]
			for _, req := range batch {
				table.AddRequest(req)
				lb := fleet.TravelTimeLB(req.Origin, req.Dest)
				cands = fleet.CandidatesAppend(cands, req, batch[0].Release, lb)
			}
			for _, w := range cands {
				table.AddWorker(w)
			}
			table.Install(mtm.Table(arena, table.Rows(), table.Cols()))
			fleet.Dist = table.Dist
		}
		for _, req := range batch {
			res := planner.OnRequest(req.Release, req)
			if res.Served {
				served++
			}
			results = append(results, res)
		}
		if batched {
			fleet.Dist = dist
		}
	}
	planMs := float64(time.Since(start).Nanoseconds()) / 1e6
	hits, _ := table.Stats()
	pt := &BatchDistPoint{BatchSize: b, Served: served}
	if batched {
		pt.BatchedQueries = counter.Count() - before
		pt.BatchedPlanMs = planMs
		pt.TableHits = hits
	} else {
		pt.PointQueries = counter.Count() - before
		pt.PointPlanMs = planMs
	}
	return results, pt, nil
}

// BatchDistSweep measures point-query vs batched-table planning across
// admission-batch sizes on the runner's base workload, verifying the two
// modes decide identically at every size.
func (r *Runner) BatchDistSweep(batchSizes []int) ([]BatchDistPoint, error) {
	out := make([]BatchDistPoint, 0, len(batchSizes))
	for _, b := range batchSizes {
		if b < 1 {
			continue
		}
		resPoint, ptPoint, err := r.batchDistMode(b, false)
		if err != nil {
			return nil, err
		}
		resTable, ptTable, err := r.batchDistMode(b, true)
		if err != nil {
			return nil, err
		}
		for i := range resPoint {
			if resPoint[i] != resTable[i] {
				return nil, fmt.Errorf("expt: determinism violation at batch %d, request %d: point %+v batched %+v",
					b, i, resPoint[i], resTable[i])
			}
		}
		pt := *ptTable
		pt.PointQueries = ptPoint.PointQueries
		pt.PointPlanMs = ptPoint.PointPlanMs
		if pt.BatchedQueries > 0 {
			pt.QueryReduction = float64(pt.PointQueries) / float64(pt.BatchedQueries)
		} else if pt.PointQueries > 0 {
			pt.QueryReduction = math.Inf(1) // the table answered everything
		}
		if pt.BatchedPlanMs > 0 {
			pt.Speedup = pt.PointPlanMs / pt.BatchedPlanMs
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatBatchDistSweep renders the point-vs-batched throughput table.
func FormatBatchDistSweep(dataset string, points []BatchDistPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "batched distance oracle / %s — point queries vs one table per batch (identical decisions per row)\n", dataset)
	fmt.Fprintf(&b, "%-7s%8s%14s%14s%12s%12s%13s%13s%9s\n",
		"batch", "served", "queries(pt)", "queries(tab)", "reduction", "tab hits", "plan pt(ms)", "plan tab(ms)", "speedup")
	for _, p := range points {
		red := trimFloat(p.QueryReduction)
		if math.IsInf(p.QueryReduction, 1) {
			red = "inf"
		}
		fmt.Fprintf(&b, "%-7d%8d%14d%14d%11sx%12d%13s%13s%8sx\n",
			p.BatchSize, p.Served, p.PointQueries, p.BatchedQueries,
			red, p.TableHits,
			trimFloat(p.PointPlanMs), trimFloat(p.BatchedPlanMs), trimFloat(p.Speedup))
	}
	return b.String()
}
