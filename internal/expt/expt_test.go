package expt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// tinyRunner builds a runner small enough for unit tests.
func tinyRunner(t testing.TB) *Runner {
	t.Helper()
	p := workload.ChengduLike(0.01)
	p.Net.Rows, p.Net.Cols = 18, 18
	p.NumWorkers = 10
	p.NumRequests = 120
	r, err := NewRunner(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.KineticMaxNodes = 5000
	return r
}

func TestRunOneAllAlgorithms(t *testing.T) {
	r := tinyRunner(t)
	for _, algo := range Algorithms {
		m, err := r.RunOne(r.Base, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if m.Algorithm != algo {
			t.Fatalf("metrics algorithm %q want %q", m.Algorithm, algo)
		}
		if m.Requests == 0 {
			t.Fatalf("%s: no requests simulated", algo)
		}
		if m.LateArrivals != 0 {
			t.Fatalf("%s: %d late arrivals", algo, m.LateArrivals)
		}
		if m.UnifiedCost <= 0 {
			t.Fatalf("%s: unified cost %v", algo, m.UnifiedCost)
		}
	}
	if _, err := r.RunOne(r.Base, "nope"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSweepFig6Shape(t *testing.T) {
	r := tinyRunner(t)
	s, err := r.Fig6([]string{"pruneGreedyDP"})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 5 {
		t.Fatalf("points=%d", len(s.Points))
	}
	// Longer deadlines must not decrease the served rate (weak monotone
	// check with slack for randomness: compare the extremes).
	first := s.Points[0].Metrics["pruneGreedyDP"]
	last := s.Points[len(s.Points)-1].Metrics["pruneGreedyDP"]
	if last.ServedRate+0.05 < first.ServedRate {
		t.Fatalf("served rate fell with looser deadlines: %v -> %v",
			first.ServedRate, last.ServedRate)
	}
	if last.UnifiedCost > first.UnifiedCost*1.1 {
		t.Fatalf("unified cost rose with looser deadlines: %v -> %v",
			first.UnifiedCost, last.UnifiedCost)
	}
}

func TestFig3MoreWorkersServeMore(t *testing.T) {
	r := tinyRunner(t)
	s, err := r.Fig3([]string{"pruneGreedyDP"})
	if err != nil {
		t.Fatal(err)
	}
	first := s.Points[0].Metrics["pruneGreedyDP"]
	last := s.Points[len(s.Points)-1].Metrics["pruneGreedyDP"]
	if last.ServedRate+0.02 < first.ServedRate {
		t.Fatalf("served rate fell with more workers: %v -> %v", first.ServedRate, last.ServedRate)
	}
}

func TestFig5GridMemoryShape(t *testing.T) {
	r := tinyRunner(t)
	s, err := r.Fig5([]string{"tshare", "pruneGreedyDP"})
	if err != nil {
		t.Fatal(err)
	}
	// tshare's sorted-list index dwarfs the plain grid at small g and
	// shrinks steeply as g grows.
	small := s.Points[0].Metrics
	large := s.Points[len(s.Points)-1].Metrics
	if small["tshare"].GridMemoryBytes <= small["pruneGreedyDP"].GridMemoryBytes {
		t.Fatal("tshare grid should out-weigh the plain grid")
	}
	if small["tshare"].GridMemoryBytes <= large["tshare"].GridMemoryBytes {
		t.Fatal("tshare grid memory should shrink with larger cells")
	}
	// CellMeters must be restored after the sweep.
	if r.CellMeters != 2000 {
		t.Fatalf("CellMeters leaked: %v", r.CellMeters)
	}
}

func TestPruneSavesQueries(t *testing.T) {
	r := tinyRunner(t)
	mp, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	mg, err := r.RunOne(r.Base, "GreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if mp.DistQueries >= mg.DistQueries {
		t.Fatalf("pruning saved nothing: %d vs %d", mp.DistQueries, mg.DistQueries)
	}
	// Lemma 8 losslessness, end to end.
	if mp.Served != mg.Served || math.Abs(mp.UnifiedCost-mg.UnifiedCost) > 1e-5*(1+mg.UnifiedCost) {
		t.Fatalf("prune changed outcomes: %+v vs %+v", mp, mg)
	}
}

func TestTable4(t *testing.T) {
	r := tinyRunner(t)
	st, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices != r.G.NumVertices() || st.Edges != r.G.NumEdges() {
		t.Fatal("stats do not match graph")
	}
	if st.Requests == 0 {
		t.Fatal("no requests")
	}
	out := FormatTable4([]DatasetStats{st})
	if !strings.Contains(out, "Chengdu") || !strings.Contains(out, "#(Requests)") {
		t.Fatalf("table formatting: %q", out)
	}
}

func TestHardnessGrowsWithV(t *testing.T) {
	pts, err := Hardness(workload.AdvServedCount, []int{4, 32}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points")
	}
	// With |V|=4 the single worker at v1 is often near the random origin;
	// with |V|=32 almost never: the served count must drop sharply.
	if pts[1].OnlineServed >= pts[0].OnlineServed {
		t.Fatalf("hardness did not bite: served %d (|V|=4) vs %d (|V|=32)",
			pts[0].OnlineServed, pts[1].OnlineServed)
	}
	out := FormatHardness(pts)
	if !strings.Contains(out, "served-count") {
		t.Fatalf("hardness formatting: %q", out)
	}
}

func TestInsertionScalingShape(t *testing.T) {
	pts, err := InsertionScaling([]int{8, 32}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("points")
	}
	// At n=32 basic must cost much more than linear (cubic vs linear).
	if pts[1].BasicNs < pts[1].LinearNs {
		t.Fatalf("basic %v ns cheaper than linear %v ns at n=32", pts[1].BasicNs, pts[1].LinearNs)
	}
	out := FormatInsertionScaling(pts)
	if !strings.Contains(out, "linearDP") {
		t.Fatalf("formatting: %q", out)
	}
}

func TestFormatSeriesAndCSV(t *testing.T) {
	s := Series{
		Figure: "fig5", Dataset: "Chengdu", ParamName: "g(km)",
		Points: []Point{
			{Param: 1, Metrics: map[string]sim.Metrics{
				"tshare":        {Algorithm: "tshare", UnifiedCost: 123.456, ServedRate: 0.5},
				"pruneGreedyDP": {Algorithm: "pruneGreedyDP", UnifiedCost: 100, ServedRate: 0.7},
			}},
		},
	}
	txt := FormatSeries(s)
	for _, want := range []string{"Unified Cost", "Served Rate", "Grid Memory", "tshare", "pruneGreedyDP"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("text output missing %q:\n%s", want, txt)
		}
	}
	csv := FormatSeriesCSV(s)
	if !strings.Contains(csv, "fig5,Chengdu,g(km),1,tshare,123.456,0.5") {
		t.Fatalf("csv output:\n%s", csv)
	}
	// Canonical ordering puts tshare before pruneGreedyDP.
	if strings.Index(csv, "tshare") > strings.Index(csv, "pruneGreedyDP") {
		t.Fatal("algorithm order not canonical")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:           "3",
		3.5:         "3.500",
		0.001:       "0.001",
		1.25e8:      "125000000", // integral values print exactly
		2.5e7 + 0.5: "2.5e+07",   // huge non-integral values go scientific
		-4:          "-4",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v)=%q want %q", in, got, want)
		}
	}
}

func TestPanelSelectors(t *testing.T) {
	if len(PanelSelectors("fig4")) != 3 {
		t.Fatal("fig4 panels")
	}
	if len(PanelSelectors("fig5")) != 4 || len(PanelSelectors("fig6")) != 4 {
		t.Fatal("extra panels missing")
	}
}
