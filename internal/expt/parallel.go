package expt

import (
	"fmt"
	"strings"
)

// ParallelPoint is one pool size of the planning-throughput sweep: the
// same workload planned by pruneGreedyDP serially (Pool == 1) and by the
// parallel dispatcher at growing pool sizes. Decisions are bit-identical
// across rows (the determinism guarantee); only compute time moves.
type ParallelPoint struct {
	Pool           int
	Served         int
	UnifiedCost    float64
	TotalComputeMs float64
	AvgResponseMs  float64
	P95ResponseMs  float64
	// ThroughputRPS is planned requests per second of planner compute.
	ThroughputRPS float64
	// Speedup is serial TotalComputeMs over this row's TotalComputeMs.
	Speedup float64
}

// ParallelSweep measures planning throughput of pruneGreedyDP across
// dispatcher pool sizes on the runner's base workload. Pool size 1 is the
// serial planner and the speedup reference.
func (r *Runner) ParallelSweep(pools []int) ([]ParallelPoint, error) {
	save := r.Parallel
	defer func() { r.Parallel = save }()

	r.Parallel = 0
	serial, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		return nil, err
	}
	toPoint := func(pool int, served int, uc, totalMs, avgMs, p95Ms float64) ParallelPoint {
		pt := ParallelPoint{
			Pool: pool, Served: served, UnifiedCost: uc,
			TotalComputeMs: totalMs, AvgResponseMs: avgMs, P95ResponseMs: p95Ms,
		}
		if totalMs > 0 {
			pt.ThroughputRPS = float64(serial.Requests) / (totalMs / 1000)
			pt.Speedup = serial.TotalComputeMs / totalMs
		}
		return pt
	}
	out := []ParallelPoint{toPoint(1, serial.Served, serial.UnifiedCost,
		serial.TotalComputeMs, serial.AvgResponseMs, serial.P95ResponseMs)}
	for _, pool := range pools {
		if pool <= 1 {
			continue
		}
		r.Parallel = pool
		m, err := r.RunOne(r.Base, "pruneGreedyDP")
		if err != nil {
			return nil, err
		}
		if m.Served != serial.Served || m.UnifiedCost != serial.UnifiedCost {
			return nil, fmt.Errorf("expt: determinism violation at pool %d: served %d/%d, unified cost %v/%v",
				pool, m.Served, serial.Served, m.UnifiedCost, serial.UnifiedCost)
		}
		out = append(out, toPoint(pool, m.Served, m.UnifiedCost,
			m.TotalComputeMs, m.AvgResponseMs, m.P95ResponseMs))
	}
	return out, nil
}

// FormatParallelSweep renders the planning-throughput table.
func FormatParallelSweep(dataset string, points []ParallelPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "parallel dispatch / %s — planning throughput (identical decisions per row)\n", dataset)
	fmt.Fprintf(&b, "%-6s%10s%14s%14s%12s%12s%14s%10s\n",
		"pool", "served", "unified cost", "compute (ms)", "avg (ms)", "p95 (ms)", "req/s", "speedup")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d%10d%14s%14s%12s%12s%14s%9sx\n",
			p.Pool, p.Served, trimFloat(p.UnifiedCost), trimFloat(p.TotalComputeMs),
			trimFloat(p.AvgResponseMs), trimFloat(p.P95ResponseMs),
			trimFloat(p.ThroughputRPS), trimFloat(p.Speedup))
	}
	return b.String()
}
