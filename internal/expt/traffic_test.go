package expt

import (
	"testing"

	"repro/internal/roadnet"
)

// trafficProfileFor returns a trace whose events fall inside the preset's
// one-hour release window.
func trafficProfileFor() *roadnet.TrafficProfile {
	return &roadnet.TrafficProfile{Events: []roadnet.TrafficEvent{
		{At: 600, Updates: []roadnet.TrafficUpdate{{Factor: 1.8}}},
		{At: 1800, Updates: []roadnet.TrafficUpdate{{Factor: 2.5, Class: "motorway"}, {Factor: 1.3}}},
		{At: 2700, Updates: []roadnet.TrafficUpdate{{Factor: 1}}},
	}}
}

// TestRunnerTrafficDeterministicAndEffective runs the same congestion
// trace twice (identical metrics) and against a no-traffic twin (different
// metrics) — the expt-level contract behind urpsm-sim -traffic.
func TestRunnerTrafficDeterministicAndEffective(t *testing.T) {
	r := tinyRunner(t)
	base, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}

	r.Traffic = trafficProfileFor()
	m1, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Served != m2.Served || m1.TotalDistance != m2.TotalDistance || m1.UnifiedCost != m2.UnifiedCost {
		t.Fatalf("traffic runs not deterministic:\n%+v\n%+v", m1, m2)
	}
	if m1.Served == base.Served && m1.TotalDistance == base.TotalDistance {
		t.Fatalf("congestion trace had no effect (served=%d dist=%v)", m1.Served, m1.TotalDistance)
	}

	// An empty profile is the static case: bit-identical to no profile at
	// all, including the query count.
	r.Traffic = &roadnet.TrafficProfile{}
	m3, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if m3.Served != base.Served || m3.TotalDistance != base.TotalDistance ||
		m3.UnifiedCost != base.UnifiedCost || m3.DistQueries != base.DistQueries {
		t.Fatalf("empty profile diverged from no profile:\n%+v\n%+v", m3, base)
	}
}

// TestRunnerTrafficParallelMatchesSerial extends the dispatcher's
// determinism-equivalence guarantee across epochs: the parallel
// dispatcher over the epoch-aware sharded chain decides exactly like the
// serial planner over the epoch-aware serial chain, traffic included.
func TestRunnerTrafficParallelMatchesSerial(t *testing.T) {
	serial := tinyRunner(t)
	serial.Traffic = trafficProfileFor()
	ms, err := serial.RunOne(serial.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}

	par := tinyRunner(t)
	par.Traffic = trafficProfileFor()
	par.Parallel = 3
	mp, err := par.RunOne(par.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if ms.Served != mp.Served || ms.TotalDistance != mp.TotalDistance || ms.UnifiedCost != mp.UnifiedCost ||
		ms.Completions != mp.Completions || ms.LateArrivals != mp.LateArrivals {
		t.Fatalf("parallel traffic run diverged from serial:\nserial:   %+v\nparallel: %+v", ms, mp)
	}
}

// TestRunnerTrafficRetiersAutoOracle pins the Auto/traffic interaction:
// with OracleKind "auto" the resolved tier is adopted at epoch 0 and the
// front re-tiers on every epoch advance without serving stale weights
// (the run would otherwise produce infeasible-looking metrics or diverge
// between repeats).
func TestRunnerTrafficRetiersAutoOracle(t *testing.T) {
	r := tinyRunner(t)
	r.OracleKind = "auto"
	r.Traffic = trafficProfileFor()
	m1, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Served != m2.Served || m1.TotalDistance != m2.TotalDistance {
		t.Fatalf("auto-oracle traffic runs diverged:\n%+v\n%+v", m1, m2)
	}

	// And the tier choice is irrelevant to the outcome: bidijkstra (no
	// preprocessing, trivially epoch-correct) must agree with the
	// preprocessed tiers under the same trace.
	r.OracleKind = "bidijkstra"
	m3, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	if m1.Served != m3.Served || m1.TotalDistance != m3.TotalDistance || m1.UnifiedCost != m3.UnifiedCost {
		t.Fatalf("oracle tiers disagree under traffic:\nauto:       %+v\nbidijkstra: %+v", m1, m3)
	}
}
