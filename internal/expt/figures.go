package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Point is one (parameter value, algorithm) cell of a figure.
type Point struct {
	Param   float64
	Metrics map[string]sim.Metrics // algorithm -> averaged metrics
}

// Series is one reproduced figure for one dataset.
type Series struct {
	Figure    string // e.g. "fig3"
	Dataset   string
	ParamName string // e.g. "|W|"
	Points    []Point
}

// sweep runs all algorithms over the given parameter values.
func (r *Runner) sweep(figure, paramName string, values []float64,
	algos []string, configure func(p *workload.Params, r *Runner, v float64)) (Series, error) {
	s := Series{Figure: figure, Dataset: r.Base.Name, ParamName: paramName}
	for _, v := range values {
		p := r.Base
		cellSave := r.CellMeters
		configure(&p, r, v)
		pt := Point{Param: v, Metrics: map[string]sim.Metrics{}}
		for _, algo := range algos {
			m, err := r.RunOne(p, algo)
			if err != nil {
				r.CellMeters = cellSave
				return Series{}, fmt.Errorf("%s %s=%v %s: %w", figure, paramName, v, algo, err)
			}
			pt.Metrics[algo] = m
		}
		r.CellMeters = cellSave
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// WorkerCounts returns the |W| sweep values of Fig. 3 for the dataset,
// scaled to the runner's base fleet size: the paper sweeps Chengdu over
// 2k–30k and NYC over 10k–50k with defaults 10k/30k; the same ratios are
// applied to the scaled preset.
func (r *Runner) WorkerCounts() []float64 {
	ratios := []float64{0.2, 0.5, 1.0, 2.0, 3.0} // Chengdu: 2k..30k around 10k
	if r.Base.Name == "NYC" {
		ratios = []float64{1.0 / 3, 2.0 / 3, 1.0, 4.0 / 3, 5.0 / 3} // 10k..50k around 30k
	}
	out := make([]float64, len(ratios))
	for i, q := range ratios {
		w := int(float64(r.Base.NumWorkers) * q)
		if w < 1 {
			w = 1
		}
		out[i] = float64(w)
	}
	return out
}

// Fig3 varies the number of workers |W|.
func (r *Runner) Fig3(algos []string) (Series, error) {
	return r.sweep("fig3", "|W|", r.WorkerCounts(), algos,
		func(p *workload.Params, _ *Runner, v float64) { p.NumWorkers = int(v) })
}

// Fig4 varies the worker capacity K_w (3, 4, 6, 10, 20 — Table 5).
func (r *Runner) Fig4(algos []string) (Series, error) {
	return r.sweep("fig4", "Kw", []float64{3, 4, 6, 10, 20}, algos,
		func(p *workload.Params, _ *Runner, v float64) { p.CapacityMean = v })
}

// Fig5 varies the grid cell size g in kilometers (1–5 — Table 5).
func (r *Runner) Fig5(algos []string) (Series, error) {
	return r.sweep("fig5", "g(km)", []float64{1, 2, 3, 4, 5}, algos,
		func(_ *workload.Params, rr *Runner, v float64) { rr.CellMeters = v * 1000 })
}

// Fig6 varies the delivery deadline e_r in minutes (5–25 — Table 5).
func (r *Runner) Fig6(algos []string) (Series, error) {
	return r.sweep("fig6", "er(min)", []float64{5, 10, 15, 20, 25}, algos,
		func(p *workload.Params, _ *Runner, v float64) { p.DeadlineSec = v * 60 })
}

// PenaltyFactors returns the p_r sweep of Fig. 7 (Table 5: Chengdu
// 2–30×, NYC 10–50×).
func (r *Runner) PenaltyFactors() []float64 {
	if r.Base.Name == "NYC" {
		return []float64{10, 20, 30, 40, 50}
	}
	return []float64{2, 5, 10, 20, 30}
}

// Fig7 varies the penalty factor.
func (r *Runner) Fig7(algos []string) (Series, error) {
	return r.sweep("fig7", "pr(x)", r.PenaltyFactors(), algos,
		func(p *workload.Params, _ *Runner, v float64) { p.PenaltyFactor = v })
}

// DatasetStats is one row of Table 4.
type DatasetStats struct {
	Name     string
	Requests int
	Vertices int
	Edges    int
}

// Table4 reports the dataset statistics row for this runner's dataset.
func (r *Runner) Table4() (DatasetStats, error) {
	base, _, err := r.oracle()
	if err != nil {
		return DatasetStats{}, err
	}
	counter := shortest.NewCounting(base)
	inst, err := workload.BuildOn(r.Base, r.G, counter.Dist)
	if err != nil {
		return DatasetStats{}, err
	}
	return DatasetStats{
		Name:     r.Base.Name,
		Requests: len(inst.Requests),
		Vertices: r.G.NumVertices(),
		Edges:    r.G.NumEdges(),
	}, nil
}

// HardnessPoint is one |V| setting of the §3.3 empirical hardness run.
type HardnessPoint struct {
	Variant   workload.AdversaryVariant
	NVertices int
	Trials    int
	// OnlineServed is how often the online greedy served the adversarial
	// request; the offline optimum always serves it.
	OnlineServed int
	// RatioLB is the resulting empirical lower bound on the competitive
	// ratio for the served-count objective: trials/(trials-served) when
	// any request was missed (∞ reported as +Inf).
	RatioLB float64
}

// Hardness replays the Lemma 1–3 constructions: for each cycle size, many
// adversarial draws are played against the online planner; the measured
// miss rate grows with |V| exactly as the proofs predict.
func Hardness(variant workload.AdversaryVariant, sizes []int, trials int) ([]HardnessPoint, error) {
	var out []HardnessPoint
	for _, nv := range sizes {
		served := 0
		for trial := 0; trial < trials; trial++ {
			inst, err := workload.NewAdversarialInstance(variant, nv, int64(trial)*7919+int64(nv))
			if err != nil {
				return nil, err
			}
			m := shortest.NewMatrix(inst.Graph)
			fleet, err := core.NewFleet(inst.Graph, m.Dist, []*core.Worker{inst.Worker}, 1e6)
			if err != nil {
				return nil, err
			}
			// α = 0 for the served-count objective, 1 otherwise.
			alpha := 1.0
			if variant == workload.AdvServedCount {
				alpha = 0
			}
			planner := core.NewPruneGreedyDP(fleet, alpha)
			eng := sim.NewEngine(fleet, planner, shortest.NewBiDijkstra(inst.Graph), alpha)
			metrics, err := eng.Run([]*core.Request{inst.Request})
			if err != nil {
				return nil, err
			}
			served += metrics.Served
		}
		pt := HardnessPoint{Variant: variant, NVertices: nv, Trials: trials, OnlineServed: served}
		if missed := trials - served; missed > 0 {
			pt.RatioLB = float64(trials) / float64(served+1) // +1 smoothing for display
			if served == 0 {
				pt.RatioLB = math.Inf(1)
			}
		} else {
			pt.RatioLB = 1
		}
		out = append(out, pt)
	}
	return out, nil
}

// InsertionScalingPoint records the cost of the three insertion operators
// at one route length n, the §4 complexity ablation.
type InsertionScalingPoint struct {
	N                          int
	BasicNs, NaiveNs, LinearNs float64
}

// InsertionScaling measures the three operators on synthetic routes of
// growing length over a line graph with an O(1) oracle, isolating operator
// complexity exactly as the paper's analysis assumes.
func InsertionScaling(lengths []int, reps int) ([]InsertionScalingPoint, error) {
	maxN := 0
	for _, n := range lengths {
		if n > maxN {
			maxN = n
		}
	}
	g, err := roadnet.LineGraph(2*maxN+10, 1)
	if err != nil {
		return nil, err
	}
	m := shortest.NewMatrix(g)
	var out []InsertionScalingPoint
	var sc core.Scratch // warmed arena: time the operators as the planners run them
	for _, n := range lengths {
		rt, req, err := syntheticLongRoute(m.Dist, n)
		if err != nil {
			return nil, err
		}
		L := m.Dist(req.Origin, req.Dest)
		pt := InsertionScalingPoint{N: n}
		pt.BasicNs = timeOp(reps, func() { sc.Basic(rt, 1<<30, req, m.Dist) })
		pt.NaiveNs = timeOp(reps, func() { sc.NaiveDP(rt, 1<<30, req, L, m.Dist) })
		pt.LinearNs = timeOp(reps, func() { sc.LinearDP(rt, 1<<30, req, L, m.Dist) })
		out = append(out, pt)
	}
	return out, nil
}

// syntheticLongRoute builds a zig-zag route with n stops on a line graph:
// all deadlines loose, capacities tiny, so every position pair is explored.
func syntheticLongRoute(dist core.DistFunc, n int) (*core.Route, *core.Request, error) {
	rt := &core.Route{Loc: 0, Now: 0}
	stops := make([]core.Stop, 0, n)
	for i := 0; i < n/2; i++ {
		v := roadnet.VertexID(2*i + 2)
		stops = append(stops,
			core.Stop{Vertex: v, Kind: core.Pickup, Req: core.RequestID(i), Cap: 1, DDL: 1e15},
			core.Stop{Vertex: v + 1, Kind: core.Dropoff, Req: core.RequestID(i), Cap: 1, DDL: 1e15},
		)
	}
	rt.Stops = stops
	rt.Recompute(dist)
	req := &core.Request{ID: 1 << 20, Origin: 1, Dest: roadnet.VertexID(2*(n/2) + 3), Deadline: 1e15, Capacity: 1}
	return rt, req, nil
}
