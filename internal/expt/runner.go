// Package expt regenerates every table and figure of the paper's
// evaluation (§6): parameter sweeps over number of workers (Fig. 3),
// worker capacity (Fig. 4), grid size (Fig. 5), deadline (Fig. 6) and
// penalty (Fig. 7), for all five compared algorithms, plus the dataset
// statistics of Table 4 and an empirical run of the §3.3 hardness
// constructions. Results come back as Series that cmd/urpsm-bench formats
// into the paper's rows.
package expt

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Algorithms is the paper's comparison set, in its plotting order.
var Algorithms = []string{"tshare", "kinetic", "pruneGreedyDP", "batch", "GreedyDP"}

// AblationAlgorithms are additional planner variants outside the paper's
// comparison: the greedy planner with the legacy insertion operators
// (isolating the §4 contribution inside the full solution) and with the
// paper-strict decision rule (no post-planning rejection).
var AblationAlgorithms = []string{
	"pruneGreedyBasic", "pruneGreedyNaive", "pruneGreedyDP-paper", "pruneGreedyDP+improve",
}

// Runner executes simulations over one dataset preset, sharing the
// expensive pieces (road network, hub labeling) across all runs.
type Runner struct {
	Base   workload.Params
	G      *roadnet.Graph
	Hub    *shortest.HubLabels
	Repeat int
	// CellMeters is the grid cell size g used by every algorithm's index;
	// the grid-size experiment overrides it per run.
	CellMeters float64
	// KineticMaxNodes caps the kinetic baseline's per-request search.
	KineticMaxNodes int
	// OracleKind picks the distance oracle: "hub" (default), "ch"
	// (contraction hierarchies) or "bidijkstra" (no preprocessing) —
	// the oracle ablation.
	OracleKind string
	// Parallel > 1 plans pruneGreedyDP/GreedyDP with the parallel
	// dispatcher (internal/dispatch) using that many goroutines, over a
	// concurrency-safe oracle chain (sharded LRU, atomic query counter,
	// locked oracle where the base oracle is stateful). Decisions,
	// assignments and unified cost are bit-identical to the serial
	// planners; response times differ, and so may DistQueries — it
	// counts cache misses, and the sharded cache's eviction pattern is
	// not the serial LRU's. Other algorithms are unaffected: they keep
	// the serial planner and the serial query chain.
	Parallel int

	ch *shortest.CH // built lazily for OracleKind == "ch"
}

// NewRunner generates the dataset's road network and builds its hub
// labeling once.
func NewRunner(base workload.Params, repeat int) (*Runner, error) {
	if repeat < 1 {
		repeat = 1
	}
	g, err := roadnet.Generate(base.Net)
	if err != nil {
		return nil, err
	}
	return &Runner{
		Base:            base,
		G:               g,
		Hub:             shortest.BuildHubLabels(g),
		Repeat:          repeat,
		CellMeters:      2000,
		KineticMaxNodes: 50000,
	}, nil
}

// RunOne executes Repeat simulations of one algorithm under params p and
// returns the averaged metrics (the paper averages repeated trials).
func (r *Runner) RunOne(p workload.Params, algo string) (sim.Metrics, error) {
	runs := make([]sim.Metrics, 0, r.Repeat)
	for rep := 0; rep < r.Repeat; rep++ {
		pp := p
		pp.Seed = p.Seed + int64(rep)*1009
		m, err := r.runSingle(pp, algo)
		if err != nil {
			return sim.Metrics{}, err
		}
		runs = append(runs, m)
	}
	return sim.Average(runs), nil
}

// oracle returns the configured base distance oracle.
func (r *Runner) oracle() (shortest.Oracle, error) {
	switch r.OracleKind {
	case "", "hub":
		return r.Hub, nil
	case "ch":
		if r.ch == nil {
			r.ch = shortest.BuildCH(r.G)
		}
		return r.ch, nil
	case "bidijkstra":
		return shortest.NewBiDijkstra(r.G), nil
	default:
		return nil, fmt.Errorf("expt: unknown oracle %q", r.OracleKind)
	}
}

func (r *Runner) runSingle(p workload.Params, algo string) (sim.Metrics, error) {
	base, err := r.oracle()
	if err != nil {
		return sim.Metrics{}, err
	}
	// The serial planners keep the paper's single-threaded query chain;
	// parallel dispatch swaps in the concurrency-safe equivalents. The
	// swap is scoped to the algorithms that actually dispatch in
	// parallel so that -parallel cannot perturb any baseline's metrics.
	useParallel := r.Parallel > 1 && (algo == "pruneGreedyDP" || algo == "GreedyDP")
	var (
		dist    core.DistFunc
		queries shortest.QueryCounter
	)
	if useParallel {
		if r.OracleKind == "ch" || r.OracleKind == "bidijkstra" {
			base = shortest.NewLocked(base) // stateful oracles need the mutex
		}
		ac := shortest.NewAtomicCounting(base)
		dist = shortest.NewShardedCached(ac, 1<<18, 64).Dist
		queries = ac
	} else {
		c := shortest.NewCounting(base)
		dist = shortest.NewCached(c, 1<<18).Dist
		queries = c
	}
	inst, err := workload.BuildOn(p, r.G, dist)
	if err != nil {
		return sim.Metrics{}, err
	}
	fleet, err := core.NewFleet(r.G, dist, inst.Workers, r.CellMeters)
	if err != nil {
		return sim.Metrics{}, err
	}
	var planner core.Planner
	gridMem := fleet.Grid.MemoryBytes()
	switch algo {
	case "pruneGreedyDP":
		if useParallel {
			planner = dispatch.NewParallelPruneGreedyDP(fleet, 1, r.Parallel)
		} else {
			planner = core.NewPruneGreedyDP(fleet, 1)
		}
	case "GreedyDP":
		if useParallel {
			planner = dispatch.NewParallelGreedyDP(fleet, 1, r.Parallel)
		} else {
			planner = core.NewGreedyDP(fleet, 1)
		}
	case "pruneGreedyBasic":
		// Ablation: the full two-phase solution but with the O(n³) basic
		// insertion as the planning operator.
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: true,
			Insertion: func(rt *core.Route, kw int, req *core.Request, _ float64, dist core.DistFunc) core.Insertion {
				return core.BasicInsertion(rt, kw, req, dist)
			},
		}, "pruneGreedyBasic")
	case "pruneGreedyNaive":
		// Ablation: the O(n²) naive DP insertion as the planning operator.
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: true,
			Insertion: core.NaiveDPInsertion,
		}, "pruneGreedyNaive")
	case "pruneGreedyDP+improve":
		// Extension: post-insertion remove-and-reinsert local search.
		planner = core.NewImprovingGreedy(fleet, 1, 2)
	case "pruneGreedyDP-paper":
		// Ablation: strictly-paper Algorithm 5 (no post-planning
		// rejection when α·Δ* > p_r).
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: false,
		}, "pruneGreedyDP-paper")
	case "tshare":
		ts, err := baseline.NewTShare(fleet, r.CellMeters, 1)
		if err != nil {
			return sim.Metrics{}, err
		}
		planner = ts
		// tshare's index = its sorted cell lists plus the worker grid it
		// scans; both count toward its footprint.
		gridMem = ts.GridMemoryBytes() + fleet.Grid.MemoryBytes()
	case "kinetic":
		k := baseline.NewKinetic(fleet, 1)
		k.MaxNodes = r.KineticMaxNodes
		planner = k
	case "batch":
		planner = baseline.NewBatch(fleet, 1)
	default:
		return sim.Metrics{}, fmt.Errorf("expt: unknown algorithm %q", algo)
	}
	eng := sim.NewEngine(fleet, planner, shortest.NewBiDijkstra(r.G), 1)
	eng.Queries = queries
	m, err := eng.Run(inst.Requests)
	if err != nil {
		return sim.Metrics{}, err
	}
	if err := eng.FastForward(); err != nil {
		return sim.Metrics{}, fmt.Errorf("expt: %s on %s: %w", algo, p.Name, err)
	}
	m.GridMemoryBytes = gridMem
	return m, nil
}
