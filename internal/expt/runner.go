// Package expt regenerates every table and figure of the paper's
// evaluation (§6): parameter sweeps over number of workers (Fig. 3),
// worker capacity (Fig. 4), grid size (Fig. 5), deadline (Fig. 6) and
// penalty (Fig. 7), for all five compared algorithms, plus the dataset
// statistics of Table 4 and an empirical run of the §3.3 hardness
// constructions. Results come back as Series that cmd/urpsm-bench formats
// into the paper's rows. Runners also execute pre-materialized instances
// (imported road networks and trip streams, cmd/urpsm-import) through
// RunInstance.
package expt

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Algorithms is the paper's comparison set, in its plotting order.
var Algorithms = []string{"tshare", "kinetic", "pruneGreedyDP", "batch", "GreedyDP"}

// AblationAlgorithms are additional planner variants outside the paper's
// comparison: the greedy planner with the legacy insertion operators
// (isolating the §4 contribution inside the full solution) and with the
// paper-strict decision rule (no post-planning rejection).
var AblationAlgorithms = []string{
	"pruneGreedyBasic", "pruneGreedyNaive", "pruneGreedyDP-paper", "pruneGreedyDP+improve",
}

// OracleKinds are the accepted values of Runner.OracleKind (and of the
// CLIs' -oracle flag, whose registration and validation live in
// internal/cliutil). "auto" resolves to one of the other tiers by vertex
// count through shortest.Auto.
var OracleKinds = cliutil.OracleKinds

// Runner executes simulations over one dataset, sharing the expensive
// pieces (road network, preprocessed distance oracles) across all runs.
// All preprocessing is lazy: a runner on a million-vertex import with
// OracleKind "auto" or "bidijkstra" never pays for hub labels.
type Runner struct {
	Base   workload.Params
	G      *roadnet.Graph
	Repeat int
	// CellMeters is the grid cell size g used by every algorithm's index;
	// the grid-size experiment overrides it per run.
	CellMeters float64
	// KineticMaxNodes caps the kinetic baseline's per-request search.
	KineticMaxNodes int
	// OracleKind picks the distance oracle: "hub" (default, the paper's
	// setup), "cch" (customizable contraction hierarchies — cheap traffic
	// epochs, see DESIGN.md §12), "ch" (classic contraction hierarchies),
	// "bidijkstra" (no preprocessing) or "auto" (scale-aware selection via
	// shortest.Auto — see DESIGN.md §8.3).
	OracleKind string
	// AutoBudget bounds preprocessing for OracleKind "auto"; the zero
	// value means shortest.DefaultAutoBudget().
	AutoBudget shortest.AutoBudget
	// Parallel > 1 plans pruneGreedyDP/GreedyDP with the parallel
	// dispatcher (internal/dispatch) using that many goroutines, over a
	// concurrency-safe oracle chain (sharded LRU, atomic query counter,
	// locked oracle where the base oracle is stateful). Decisions,
	// assignments and unified cost are bit-identical to the serial
	// planners; response times differ, and so may DistQueries — it
	// counts cache misses, and the sharded cache's eviction pattern is
	// not the serial LRU's. Other algorithms are unaffected: they keep
	// the serial planner and the serial query chain.
	Parallel int
	// Traffic, when non-nil, replays a congestion trace against each
	// run's event clock (urpsm-sim -traffic): the query chain runs
	// through an epoch-aware oracle front (shortest.Versioned over a
	// per-run roadnet.Overlay) and the engine applies each event before
	// the first request released at or after it. Rebuilds are
	// synchronous, so preprocessing cost is attributed to the run that
	// caused it. With an empty profile every run is bit-identical to
	// Traffic == nil.
	Traffic *roadnet.TrafficProfile
	// Observer, when non-nil, is attached to every run's planner for the
	// run's duration when the planner implements core.Observable (the
	// greedy planners; baselines ignore it) — urpsm-sim's -trace flag
	// passes a trace.Recorder here. Read-only: decisions are unchanged.
	Observer core.PlanObserver

	hub *shortest.HubLabels // built lazily for OracleKind "hub" (or auto→hub)
	cch *shortest.CCH       // built lazily for OracleKind "cch" (or auto→cch)
	ch  *shortest.CH        // built lazily for OracleKind "ch" (or auto→ch)
}

// NewRunner generates the dataset's road network and wraps it in a runner.
func NewRunner(base workload.Params, repeat int) (*Runner, error) {
	g, err := roadnet.Generate(base.Net)
	if err != nil {
		return nil, err
	}
	return NewRunnerOn(g, base, repeat), nil
}

// NewRunnerOn wraps an existing graph — typically an imported real road
// network — in a runner. base supplies the dataset name and the sweep
// defaults; its Net config is ignored.
func NewRunnerOn(g *roadnet.Graph, base workload.Params, repeat int) *Runner {
	if repeat < 1 {
		repeat = 1
	}
	return &Runner{
		Base:            base,
		G:               g,
		Repeat:          repeat,
		CellMeters:      2000,
		KineticMaxNodes: 50000,
	}
}

// HubLabels returns the shared hub labeling, building it on first use.
func (r *Runner) HubLabels() *shortest.HubLabels {
	if r.hub == nil {
		r.hub = shortest.BuildHubLabels(r.G)
	}
	return r.hub
}

// RunOne executes Repeat simulations of one algorithm under params p and
// returns the averaged metrics (the paper averages repeated trials).
func (r *Runner) RunOne(p workload.Params, algo string) (sim.Metrics, error) {
	runs := make([]sim.Metrics, 0, r.Repeat)
	for rep := 0; rep < r.Repeat; rep++ {
		pp := p
		pp.Seed = p.Seed + int64(rep)*1009
		m, err := r.runSingle(pp, algo)
		if err != nil {
			return sim.Metrics{}, err
		}
		runs = append(runs, m)
	}
	return sim.Average(runs), nil
}

// autoBudget returns the effective budget for OracleKind "auto".
func (r *Runner) autoBudget() shortest.AutoBudget {
	if r.AutoBudget == (shortest.AutoBudget{}) {
		return shortest.DefaultAutoBudget()
	}
	return r.AutoBudget
}

// oracle returns the configured base distance oracle together with its
// resolved kind ("auto" comes back as the tier it selected). Auto shares
// the per-kind caches, so switching between "auto" and the explicit tier
// it resolves to (the oracle ablation does) never preprocesses twice.
func (r *Runner) oracle() (shortest.Oracle, string, error) {
	kind := r.OracleKind
	if kind == "auto" {
		kind = string(r.autoBudget().Choose(r.G.NumVertices()))
	}
	switch kind {
	case "", "hub":
		return r.HubLabels(), "hub", nil
	case "cch":
		if r.cch == nil {
			r.cch = shortest.BuildCCH(r.G)
		}
		return r.cch, "cch", nil
	case "ch":
		if r.ch == nil {
			r.ch = shortest.BuildCH(r.G)
		}
		return r.ch, "ch", nil
	case "bidijkstra":
		return shortest.NewBiDijkstra(r.G), "bidijkstra", nil
	default:
		return nil, "", fmt.Errorf("expt: unknown oracle %q", r.OracleKind)
	}
}

// OracleDescription resolves the oracle configuration to a printable
// string, e.g. "hub (avg label 61.2)" or "auto→bidijkstra". It builds the
// oracle if needed.
func (r *Runner) OracleDescription() (string, error) {
	base, kind, err := r.oracle()
	if err != nil {
		return "", err
	}
	desc := kind
	if r.OracleKind == "auto" {
		desc = "auto→" + kind
	}
	if h, ok := base.(*shortest.HubLabels); ok {
		desc = fmt.Sprintf("%s (avg label %.1f)", desc, h.AvgLabelSize())
	}
	return desc, nil
}

// trafficWiring carries the per-run epoch machinery a traffic run wires
// between the query chain and the engine.
type trafficWiring struct {
	overlay   *roadnet.Overlay
	versioned *shortest.Versioned
}

// chain assembles the per-run query chain (cache + counter) over the base
// oracle, concurrency-safe when algo will be dispatched in parallel. With
// a traffic profile the chain runs through a fresh epoch-aware front (the
// overlay mutates during the run, so it can never be shared across runs);
// the cached per-kind base oracle is adopted as its epoch-0 tier.
func (r *Runner) chain(algo string) (core.DistFunc, shortest.QueryCounter, bool, *trafficWiring, error) {
	base, kind, err := r.oracle()
	if err != nil {
		return nil, nil, false, nil, err
	}
	// The serial planners keep the paper's single-threaded query chain;
	// parallel dispatch swaps in the concurrency-safe equivalents. The
	// swap is scoped to the algorithms that actually dispatch in
	// parallel so that -parallel cannot perturb any baseline's metrics.
	useParallel := r.Parallel > 1 && (algo == "pruneGreedyDP" || algo == "GreedyDP")
	var tw *trafficWiring
	if r.Traffic != nil {
		tw = &trafficWiring{
			overlay: roadnet.NewOverlay(r.G),
			versioned: shortest.AdoptVersioned(r.G, base, shortest.AutoKind(kind),
				r.autoBudget(), false),
		}
		base = tw.versioned // Versioned locks stateful tiers itself
	}
	if useParallel {
		if tw == nil && kind != "hub" {
			base = shortest.NewLocked(base) // stateful oracles need the mutex
		}
		ac := shortest.NewAtomicCounting(base)
		return shortest.NewShardedCached(ac, 1<<18, 64).Dist, ac, true, tw, nil
	}
	c := shortest.NewCounting(base)
	return shortest.NewCached(c, 1<<18).Dist, c, false, tw, nil
}

func (r *Runner) runSingle(p workload.Params, algo string) (sim.Metrics, error) {
	dist, queries, useParallel, tw, err := r.chain(algo)
	if err != nil {
		return sim.Metrics{}, err
	}
	inst, err := workload.BuildOn(p, r.G, dist)
	if err != nil {
		return sim.Metrics{}, err
	}
	return r.runWith(inst, algo, dist, queries, useParallel, tw)
}

// RunInstance runs one algorithm over a pre-materialized instance on this
// runner's graph — the entry point for imported workloads (trip streams
// map-matched by cmd/urpsm-import) whose requests and penalties are
// already fixed. The caller's instance is left untouched: the engine
// mutates worker state (positions, routes, travel totals) during a run,
// so the simulation operates on a private copy — repeated RunInstance
// calls on one instance (urpsm-sim -algo all) each start from the same
// fleet placement.
func (r *Runner) RunInstance(inst *workload.Instance, algo string) (sim.Metrics, error) {
	if inst.Graph != r.G {
		return sim.Metrics{}, fmt.Errorf("expt: instance graph differs from runner graph")
	}
	dist, queries, useParallel, tw, err := r.chain(algo)
	if err != nil {
		return sim.Metrics{}, err
	}
	workers := make([]*core.Worker, len(inst.Workers))
	for i, w := range inst.Workers {
		cw := *w
		cw.Route.Stops = append([]core.Stop(nil), w.Route.Stops...)
		cw.Route.Arr = append([]float64(nil), w.Route.Arr...)
		workers[i] = &cw
	}
	private := &workload.Instance{
		Params:   inst.Params,
		Graph:    inst.Graph,
		Requests: append([]*core.Request(nil), inst.Requests...),
		Workers:  workers,
	}
	return r.runWith(private, algo, dist, queries, useParallel, tw)
}

// runWith wires fleet, planner and engine for one simulation run.
func (r *Runner) runWith(inst *workload.Instance, algo string, dist core.DistFunc,
	queries shortest.QueryCounter, useParallel bool, tw *trafficWiring) (sim.Metrics, error) {
	fleet, err := core.NewFleet(r.G, dist, inst.Workers, r.CellMeters)
	if err != nil {
		return sim.Metrics{}, err
	}
	var planner core.Planner
	gridMem := fleet.Grid.MemoryBytes()
	switch algo {
	case "pruneGreedyDP":
		if useParallel {
			planner = dispatch.NewParallelPruneGreedyDP(fleet, 1, r.Parallel)
		} else {
			planner = core.NewPruneGreedyDP(fleet, 1)
		}
	case "GreedyDP":
		if useParallel {
			planner = dispatch.NewParallelGreedyDP(fleet, 1, r.Parallel)
		} else {
			planner = core.NewGreedyDP(fleet, 1)
		}
	case "pruneGreedyBasic":
		// Ablation: the full two-phase solution but with the O(n³) basic
		// insertion as the planning operator.
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: true,
			Insertion: func(sc *core.Scratch, rt *core.Route, kw int, req *core.Request, _ float64, dist core.DistFunc) core.Insertion {
				return sc.Basic(rt, kw, req, dist)
			},
		}, "pruneGreedyBasic")
	case "pruneGreedyNaive":
		// Ablation: the O(n²) naive DP insertion as the planning operator.
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: true,
			Insertion: (*core.Scratch).NaiveDP,
		}, "pruneGreedyNaive")
	case "pruneGreedyDP+improve":
		// Extension: post-insertion remove-and-reinsert local search.
		planner = core.NewImprovingGreedy(fleet, 1, 2)
	case "pruneGreedyDP-paper":
		// Ablation: strictly-paper Algorithm 5 (no post-planning
		// rejection when α·Δ* > p_r).
		planner = core.NewGreedy(fleet, core.Config{
			Alpha: 1, Prune: true, PostCheck: false,
		}, "pruneGreedyDP-paper")
	case "tshare":
		ts, err := baseline.NewTShare(fleet, r.CellMeters, 1)
		if err != nil {
			return sim.Metrics{}, err
		}
		planner = ts
		// tshare's index = its sorted cell lists plus the worker grid it
		// scans; both count toward its footprint.
		gridMem = ts.GridMemoryBytes() + fleet.Grid.MemoryBytes()
	case "kinetic":
		k := baseline.NewKinetic(fleet, 1)
		k.MaxNodes = r.KineticMaxNodes
		planner = k
	case "batch":
		planner = baseline.NewBatch(fleet, 1)
	default:
		return sim.Metrics{}, fmt.Errorf("expt: unknown algorithm %q", algo)
	}
	eng := sim.NewEngine(fleet, planner, shortest.NewBiDijkstra(r.G), 1)
	eng.Queries = queries
	eng.Observer = r.Observer
	trafficRun := false
	if tw != nil {
		tc := sim.NewTraffic(tw.overlay, tw.versioned, fleet, eng.World())
		tc.SetProfile(*r.Traffic)
		eng.Traffic = tc
		trafficRun = len(r.Traffic.Events) > 0
	}
	m, err := eng.Run(inst.Requests)
	if err != nil {
		return sim.Metrics{}, err
	}
	if trafficRun {
		// Slowdowns can legitimately break already-promised deadlines;
		// complete the routes and report LateArrivals instead of treating
		// lateness as an insertion-feasibility bug.
		eng.World().CompleteAll()
		m = eng.Metrics(len(inst.Requests))
	} else if err := eng.FastForward(); err != nil {
		// Imported instances carry zero Params; fall back to the runner's
		// dataset name so the error still says where it happened.
		name := inst.Params.Name
		if name == "" {
			name = r.Base.Name
		}
		return sim.Metrics{}, fmt.Errorf("expt: %s on %s: %w", algo, name, err)
	}
	m.GridMemoryBytes = gridMem
	return m, nil
}
