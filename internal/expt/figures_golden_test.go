package expt

// Golden-file tests for the figure/table formatters: fixed inputs rendered
// and compared byte-for-byte against testdata/*.golden. Regenerate with
//
//	go test ./internal/expt -run Golden -update
//
// and review the diff like any other code change.

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenSeries is a fixed two-point, two-algorithm Fig. 5 series touching
// every panel (including the grid-memory extra panel) and both the
// integer and fractional float formats.
func goldenSeries() Series {
	return Series{
		Figure: "fig5", Dataset: "Chengdu", ParamName: "g(km)",
		Points: []Point{
			{Param: 1, Metrics: map[string]sim.Metrics{
				"pruneGreedyDP": {UnifiedCost: 15000, ServedRate: 0.825, AvgResponseMs: 0.125,
					DistQueries: 1200, GridMemoryBytes: 4096, TotalDistance: 9000},
				"tshare": {UnifiedCost: 21000, ServedRate: 0.675, AvgResponseMs: 1.5,
					DistQueries: 9800, GridMemoryBytes: 1 << 20, TotalDistance: 11000},
			}},
			{Param: 2, Metrics: map[string]sim.Metrics{
				"pruneGreedyDP": {UnifiedCost: 14750.5, ServedRate: 0.85, AvgResponseMs: 0.1,
					DistQueries: 1100, GridMemoryBytes: 2048, TotalDistance: 8750},
				"tshare": {UnifiedCost: 20500, ServedRate: 0.7, AvgResponseMs: 1.25,
					DistQueries: 9000, GridMemoryBytes: 1 << 19, TotalDistance: 10500},
			}},
		},
	}
}

func TestGoldenFormatSeries(t *testing.T) {
	checkGolden(t, "fig5_series.golden", FormatSeries(goldenSeries()))
}

func TestGoldenFormatSeriesCSV(t *testing.T) {
	checkGolden(t, "fig5_series_csv.golden", FormatSeriesCSV(goldenSeries()))
}

func TestGoldenFormatTable4(t *testing.T) {
	rows := []DatasetStats{
		{Name: "Chengdu", Requests: 259423, Vertices: 214440, Edges: 466330},
		{Name: "NYC", Requests: 411955, Vertices: 807211, Edges: 1583240},
	}
	checkGolden(t, "table4.golden", FormatTable4(rows))
}

func TestGoldenFormatHardness(t *testing.T) {
	pts := []HardnessPoint{
		{Variant: workload.AdvServedCount, NVertices: 4, Trials: 200, OnlineServed: 55, RatioLB: 3.571},
		{Variant: workload.AdvServedCount, NVertices: 32, Trials: 200, OnlineServed: 6, RatioLB: 28.571},
		{Variant: workload.AdvServedCount, NVertices: 128, Trials: 200, OnlineServed: 0, RatioLB: math.Inf(1)},
	}
	checkGolden(t, "hardness.golden", FormatHardness(pts))
}

func TestGoldenFormatInsertionScaling(t *testing.T) {
	pts := []InsertionScalingPoint{
		{N: 8, BasicNs: 4250, NaiveNs: 980, LinearNs: 310},
		{N: 64, BasicNs: 1.85e6, NaiveNs: 52000, LinearNs: 2400},
		{N: 256, BasicNs: 1.1e8, NaiveNs: 830000, LinearNs: 9600},
	}
	checkGolden(t, "insertion_scaling.golden", FormatInsertionScaling(pts))
}

func TestGoldenFormatParallelSweep(t *testing.T) {
	pts := []ParallelPoint{
		{Pool: 1, Served: 287, UnifiedCost: 68451.426, TotalComputeMs: 8.1,
			AvgResponseMs: 0.027, P95ResponseMs: 0.055, ThroughputRPS: 37037.037, Speedup: 1},
		{Pool: 8, Served: 287, UnifiedCost: 68451.426, TotalComputeMs: 2.5,
			AvgResponseMs: 0.008, P95ResponseMs: 0.02, ThroughputRPS: 120000, Speedup: 3.24},
	}
	checkGolden(t, "parallel_sweep.golden", FormatParallelSweep("Chengdu", pts))
}

// TestParallelSweepTiny runs the real sweep on a tiny runner: the rows
// must agree on served count and unified cost (the determinism guarantee
// ParallelSweep itself enforces) and carry sane throughput numbers.
func TestParallelSweepTiny(t *testing.T) {
	p := workload.ChengduLike(0.01)
	p.NumRequests = 120
	r, err := NewRunner(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := r.ParallelSweep([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for _, pt := range pts {
		if pt.Served != pts[0].Served || pt.UnifiedCost != pts[0].UnifiedCost {
			t.Fatalf("pool %d diverged: %+v vs %+v", pt.Pool, pt, pts[0])
		}
		if pt.TotalComputeMs <= 0 || pt.ThroughputRPS <= 0 || pt.Speedup <= 0 {
			t.Fatalf("pool %d: non-positive timing fields: %+v", pt.Pool, pt)
		}
	}
	if r.Parallel != 0 {
		t.Fatalf("ParallelSweep leaked Parallel=%d", r.Parallel)
	}
}
