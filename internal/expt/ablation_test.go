package expt

import (
	"math"
	"testing"
)

// TestAblationOperatorsSameQuality: the greedy planner reaches the same
// solution *quality* no matter which of the three insertion operators it
// plans with — each finds a minimal-Δ insertion; only running time
// differs (§4). Outcomes are compared within a small band rather than
// exactly: the operators compute Δ with different floating-point
// expression trees (walk vs detour algebra), and sub-nanosecond ties
// between equally good candidates can break differently, after which the
// greedy streams diverge chaotically while staying statistically
// identical in quality.
func TestAblationOperatorsSameQuality(t *testing.T) {
	r := tinyRunner(t)
	base, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"pruneGreedyBasic", "pruneGreedyNaive"} {
		m, err := r.RunOne(r.Base, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if d := m.Served - base.Served; d < -base.Served/20 || d > base.Served/20 {
			t.Fatalf("%s served %d far from linear DP's %d", algo, m.Served, base.Served)
		}
		if math.Abs(m.UnifiedCost-base.UnifiedCost) > 0.05*(1+base.UnifiedCost) {
			t.Fatalf("%s unified cost %v far from linear DP's %v", algo, m.UnifiedCost, base.UnifiedCost)
		}
	}
}

// TestAblationImprove: the local-search extension runs end to end with
// movement and completes every promised drop-off on time (FastForward
// inside RunOne asserts that), at a unified cost in the same regime.
func TestAblationImprove(t *testing.T) {
	r := tinyRunner(t)
	base, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	imp, err := r.RunOne(r.Base, "pruneGreedyDP+improve")
	if err != nil {
		t.Fatal(err)
	}
	if imp.LateArrivals != 0 {
		t.Fatalf("improvement broke deadlines: %d late", imp.LateArrivals)
	}
	if imp.UnifiedCost > base.UnifiedCost*1.2 {
		t.Fatalf("improve cost %v far above base %v", imp.UnifiedCost, base.UnifiedCost)
	}
}

// TestAblationPaperStrictDecision: disabling the post-planning rejection
// reproduces strictly-paper Algorithm 5; it can only serve more (never
// fewer) requests, at equal or higher unified cost.
func TestAblationPaperStrictDecision(t *testing.T) {
	r := tinyRunner(t)
	base, err := r.RunOne(r.Base, "pruneGreedyDP")
	if err != nil {
		t.Fatal(err)
	}
	paper, err := r.RunOne(r.Base, "pruneGreedyDP-paper")
	if err != nil {
		t.Fatal(err)
	}
	if paper.Served < base.Served {
		t.Fatalf("paper-strict served %d < postcheck %d", paper.Served, base.Served)
	}
	if paper.UnifiedCost < base.UnifiedCost-1e-6*(1+base.UnifiedCost) {
		t.Fatalf("postcheck should never lose: %v vs %v", base.UnifiedCost, paper.UnifiedCost)
	}
}

// TestOracleAblationEquivalentOutcomes: hub labels, contraction
// hierarchies and plain bidirectional Dijkstra are all exact oracles, so
// outcomes must land in the same quality band (exact agreement is not
// guaranteed: the three sum edge weights in different orders, and 1-ulp
// differences can flip near-ties between equally good workers, after
// which the greedy streams diverge without any quality change).
func TestOracleAblationEquivalentOutcomes(t *testing.T) {
	r := tinyRunner(t)
	results := map[string]float64{}
	servedBy := map[string]int{}
	for _, kind := range []string{"hub", "ch", "bidijkstra"} {
		r.OracleKind = kind
		m, err := r.RunOne(r.Base, "pruneGreedyDP")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		results[kind] = m.UnifiedCost
		servedBy[kind] = m.Served
		if m.LateArrivals != 0 {
			t.Fatalf("%s oracle produced %d late arrivals", kind, m.LateArrivals)
		}
	}
	r.OracleKind = ""
	for kind, served := range servedBy {
		if d := served - servedBy["hub"]; d < -servedBy["hub"]/20 || d > servedBy["hub"]/20 {
			t.Fatalf("oracle %s served %d far from hub's %d", kind, served, servedBy["hub"])
		}
	}
	for kind, uc := range results {
		if math.Abs(uc-results["hub"]) > 0.05*(1+results["hub"]) {
			t.Fatalf("oracle %s unified cost %v far from hub's %v", kind, uc, results["hub"])
		}
	}
}

func TestUnknownOracleRejected(t *testing.T) {
	r := tinyRunner(t)
	r.OracleKind = "psychic"
	if _, err := r.RunOne(r.Base, "pruneGreedyDP"); err == nil {
		t.Fatal("unknown oracle accepted")
	}
	r.OracleKind = ""
}
