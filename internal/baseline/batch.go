package baseline

import (
	"sort"

	"repro/internal/core"
)

// Batch reimplements the batch-assignment approach of Alonso-Mora et al.
// as characterized in the paper (§2, §6.1): requests are collected into a
// short time window, grouped by shareability, the groups are sorted, and
// each group is greedily assigned to the worker that can serve the most of
// its requests with the minimal increased distance, via insertion.
//
// Decisions for batched requests are deferred until the window closes, so
// Batch implements core.Flusher; the simulator collects deferred results.
type Batch struct {
	fleet *core.Fleet
	alpha float64
	// WindowSec is the batching window (Alonso-Mora uses ~6 s windows).
	WindowSec float64
	// GroupRadiusMeters bounds the origin spread within a group.
	GroupRadiusMeters float64
	// MaxGroup bounds the group size.
	MaxGroup int

	pending     []*core.Request
	windowStart float64
	results     []core.DeferredResult

	// sc is the planner's insertion arena (single-threaded).
	sc core.Scratch
}

// NewBatch returns the planner with the paper-scale defaults.
func NewBatch(fleet *core.Fleet, alpha float64) *Batch {
	return &Batch{
		fleet:             fleet,
		alpha:             alpha,
		WindowSec:         6,
		GroupRadiusMeters: 800,
		MaxGroup:          3,
	}
}

// Name implements core.Planner.
func (b *Batch) Name() string { return "batch" }

// OnRequest implements core.Planner. Requests are queued; when a request
// arrives past the current window, the window is flushed first. The
// result for a deferred request is reported through Flush, so OnRequest
// returns the queued request's eventual result only when the request
// itself triggered a flush that decided it — otherwise a non-served
// placeholder that the simulator corrects from the deferred results.
func (b *Batch) OnRequest(now float64, req *core.Request) core.Result {
	if len(b.pending) == 0 {
		b.windowStart = now
	} else if now-b.windowStart >= b.WindowSec {
		b.flushWindow(now)
		b.windowStart = now
	}
	b.pending = append(b.pending, req)
	return core.Result{Deferred: true}
}

// TakeDecided implements core.Deferring.
func (b *Batch) TakeDecided() []core.DeferredResult {
	out := b.results
	b.results = nil
	return out
}

// FlushAll implements core.Deferring: decide everything still pending.
func (b *Batch) FlushAll(now float64) {
	b.flushWindow(now)
}

// flushWindow assigns all pending requests.
func (b *Batch) flushWindow(now float64) {
	if len(b.pending) == 0 {
		return
	}
	groups := b.group(b.pending)
	b.pending = nil
	// "sorts the groups": larger groups first, ties by earliest release.
	sort.SliceStable(groups, func(i, j int) bool {
		if len(groups[i]) != len(groups[j]) {
			return len(groups[i]) > len(groups[j])
		}
		return groups[i][0].Release < groups[j][0].Release
	})
	for _, grp := range groups {
		b.assignGroup(now, grp)
	}
}

// group partitions requests into shareable groups: same window, origins
// within GroupRadiusMeters of the group's first origin, at most MaxGroup.
func (b *Batch) group(reqs []*core.Request) [][]*core.Request {
	var groups [][]*core.Request
	g := b.fleet.Graph
	for _, r := range reqs {
		placed := false
		for gi, grp := range groups {
			if len(grp) >= b.MaxGroup {
				continue
			}
			anchor := grp[0]
			if g.Point(anchor.Origin).Dist(g.Point(r.Origin)) <= b.GroupRadiusMeters {
				groups[gi] = append(grp, r)
				placed = true
				break
			}
		}
		if !placed {
			groups = append(groups, []*core.Request{r})
		}
	}
	return groups
}

// assignGroup finds the worker that can serve the most requests of the
// group with the minimal summed increased distance, applies the chosen
// insertions, and records per-request results.
func (b *Batch) assignGroup(now float64, grp []*core.Request) {
	f := b.fleet

	// Candidate workers: union of per-request grid candidates.
	seen := map[core.WorkerID]bool{}
	var cands []*core.Worker
	ls := make([]float64, len(grp))
	for i, r := range grp {
		ls[i] = f.Dist(r.Origin, r.Dest)
		for _, w := range f.Candidates(r, now, ls[i]) {
			if !seen[w.ID] {
				seen[w.ID] = true
				cands = append(cands, w)
			}
		}
	}
	if len(cands) == 0 {
		for _, r := range grp {
			b.results = append(b.results, core.DeferredResult{Req: r, Result: core.Result{}})
		}
		return
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ID < cands[j].ID })

	type plan struct {
		served []bool
		inss   []core.Insertion
		count  int
		delta  float64
	}
	var bestW *core.Worker
	var bestPlan plan
	for _, w := range cands {
		trial := w.Route.Clone()
		p := plan{served: make([]bool, len(grp)), inss: make([]core.Insertion, len(grp))}
		for i, r := range grp {
			ins := b.sc.Basic(&trial, w.Capacity, r, f.Dist)
			if !ins.OK || b.alpha*ins.Delta > r.Penalty {
				continue
			}
			if err := core.Apply(&trial, w.Capacity, r, ins, ls[i], f.Dist); err != nil {
				panic(err)
			}
			p.served[i] = true
			p.inss[i] = ins
			p.count++
			p.delta += ins.Delta
		}
		if p.count == 0 {
			continue
		}
		if bestW == nil || p.count > bestPlan.count ||
			(p.count == bestPlan.count && p.delta < bestPlan.delta) {
			bestW = w
			bestPlan = p
		}
	}
	if bestW == nil {
		for _, r := range grp {
			b.results = append(b.results, core.DeferredResult{Req: r, Result: core.Result{}})
		}
		return
	}
	// Re-apply the winning plan to the real route, in order.
	for i, r := range grp {
		if !bestPlan.served[i] {
			b.results = append(b.results, core.DeferredResult{Req: r, Result: core.Result{}})
			continue
		}
		ins := bestPlan.inss[i]
		if err := core.Apply(&bestW.Route, bestW.Capacity, r, ins, ls[i], f.Dist); err != nil {
			panic(err)
		}
		b.results = append(b.results, core.DeferredResult{
			Req:    r,
			Result: core.Result{Served: true, Worker: bestW.ID, Delta: ins.Delta},
		})
	}
}
