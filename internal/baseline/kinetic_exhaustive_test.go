package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// permuteAll enumerates every ordering of stops, returning the minimal
// total remaining travel time among feasible ones — the brute-force
// ground truth for the kinetic tree's branch-and-bound.
func permuteAll(rt *core.Route, kw int, stops []core.Stop, dist core.DistFunc) (float64, bool) {
	n := len(stops)
	used := make([]bool, n)
	best := math.Inf(1)
	var rec func(loc int32, t float64, load, placed int)
	rec = func(loc int32, t float64, load, placed int) {
		if t-rt.Now >= best {
			return
		}
		if placed == n {
			best = t - rt.Now
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			s := stops[i]
			if s.Kind == core.Dropoff {
				// Precedence: pickup (if present among stops) must be placed.
				pending := false
				for j, p := range stops {
					if p.Req == s.Req && p.Kind == core.Pickup && !used[j] {
						pending = true
						break
					}
				}
				if pending {
					continue
				}
			}
			load2 := load
			if s.Kind == core.Pickup {
				load2 += s.Cap
				if load2 > kw {
					continue
				}
			} else {
				load2 -= s.Cap
			}
			d := dist(loc, s.Vertex)
			if t+d > s.DDL+1e-6 {
				continue
			}
			used[i] = true
			rec(s.Vertex, t+d, load2, placed+1)
			used[i] = false
		}
	}
	rec(rt.Loc, rt.Now, rt.Onboard, 0)
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// TestKineticMatchesExhaustive validates the branch-and-bound against
// full permutation enumeration on hundreds of random small instances.
func TestKineticMatchesExhaustive(t *testing.T) {
	w := newWorld(t, 31, 1, 0, 2000)
	k := NewKinetic(w.fleet, 1)
	rng := rand.New(rand.NewSource(9))
	n := w.g.NumVertices()
	trials := 300
	if testing.Short() {
		trials = 60
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		// Random feasible route with up to 2 pending requests.
		wk := w.fleet.Workers[0]
		wk.Route = core.Route{Loc: int32(rng.Intn(n)), Now: rng.Float64() * 100}
		for added := 0; added < rng.Intn(3); added++ {
			r := randomReq(rng, n, w.dist, wk.Route.Now, core.RequestID(100+added))
			L := w.dist(r.Origin, r.Dest)
			ins := core.LinearDPInsertion(&wk.Route, wk.Capacity, r, L, w.dist)
			if ins.OK {
				if err := core.Apply(&wk.Route, wk.Capacity, r, ins, L, w.dist); err != nil {
					t.Fatal(err)
				}
			}
		}
		req := randomReq(rng, n, w.dist, wk.Route.Now, 999)
		if rng.Intn(3) == 0 {
			req.Deadline = wk.Route.Now + w.dist(req.Origin, req.Dest)*(1+rng.Float64()*0.3)
		}
		L := w.dist(req.Origin, req.Dest)

		order, total, ok := k.bestOrdering(&wk.Route, wk.Capacity, req, L)

		all := append(append([]core.Stop(nil), wk.Route.Stops...),
			core.Stop{Vertex: req.Origin, Kind: core.Pickup, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline - L},
			core.Stop{Vertex: req.Dest, Kind: core.Dropoff, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline},
		)
		want, wantOK := permuteAll(&wk.Route, wk.Capacity, all, w.dist)

		if ok != wantOK {
			t.Fatalf("trial %d: kinetic feasible=%v exhaustive=%v", trial, ok, wantOK)
		}
		if !ok {
			continue
		}
		checked++
		if math.Abs(total-want) > 1e-6*(1+want) {
			t.Fatalf("trial %d: kinetic total %v != exhaustive %v", trial, total, want)
		}
		if len(order) != len(all) {
			t.Fatalf("trial %d: ordering has %d stops want %d", trial, len(order), len(all))
		}
	}
	if checked < trials/3 {
		t.Fatalf("only %d/%d trials feasible", checked, trials)
	}
}

func randomReq(rng *rand.Rand, n int, dist core.DistFunc, now float64, id core.RequestID) *core.Request {
	o := int32(rng.Intn(n))
	d := int32(rng.Intn(n))
	for d == o {
		d = int32(rng.Intn(n))
	}
	L := dist(o, d)
	return &core.Request{
		ID: id, Origin: o, Dest: d,
		Release:  now,
		Deadline: now + L + 120 + rng.Float64()*900,
		Penalty:  10 * L,
		Capacity: 1 + rng.Intn(2),
	}
}
