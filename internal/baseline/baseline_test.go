package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

type world struct {
	g     *roadnet.Graph
	dist  core.DistFunc
	inst  *workload.Instance
	fleet *core.Fleet
}

func newWorld(t testing.TB, seed int64, nWorkers, nRequests int, cellMeters float64) *world {
	t.Helper()
	p := workload.ChengduLike(0.02)
	p.Net.Rows, p.Net.Cols = 22, 22
	p.Net.Seed = seed
	p.Seed = seed*7 + 1
	p.NumWorkers = nWorkers
	p.NumRequests = nRequests
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	m := shortest.NewMatrix(g)
	inst, err := workload.BuildOn(p, g, m.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(g, m.Dist, inst.Workers, cellMeters)
	if err != nil {
		t.Fatal(err)
	}
	return &world{g: g, dist: m.Dist, inst: inst, fleet: fleet}
}

// run feeds all requests (parked-worker degenerate simulation) and
// validates every touched route.
func run(t *testing.T, w *world, p core.Planner) (served, rejected int) {
	t.Helper()
	for _, r := range w.inst.Requests {
		res := p.OnRequest(r.Release, r)
		if res.Deferred {
			continue
		}
		if res.Served {
			served++
			wk := w.fleet.Worker(res.Worker)
			if err := wk.Route.Validate(wk.Capacity, w.dist); err != nil {
				t.Fatalf("%s produced invalid route: %v", p.Name(), err)
			}
		} else {
			rejected++
		}
	}
	if d, ok := p.(core.Deferring); ok {
		last := w.inst.Requests[len(w.inst.Requests)-1].Release
		d.FlushAll(last)
		for _, dr := range d.TakeDecided() {
			if dr.Result.Served {
				served++
				wk := w.fleet.Worker(dr.Result.Worker)
				if err := wk.Route.Validate(wk.Capacity, w.dist); err != nil {
					t.Fatalf("%s produced invalid route: %v", p.Name(), err)
				}
			} else {
				rejected++
			}
		}
	}
	return served, rejected
}

func TestTShareServesAndStaysFeasible(t *testing.T) {
	w := newWorld(t, 5, 15, 250, 1000)
	ts, err := NewTShare(w.fleet, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name() != "tshare" {
		t.Fatal("name")
	}
	served, rejected := run(t, w, ts)
	if served == 0 {
		t.Fatal("tshare served nothing")
	}
	if served+rejected != len(w.inst.Requests) {
		t.Fatalf("accounting: %d+%d != %d", served, rejected, len(w.inst.Requests))
	}
	if ts.GridMemoryBytes() <= 0 {
		t.Fatal("grid memory not reported")
	}
}

func TestKineticServesAndStaysFeasible(t *testing.T) {
	// Parked workers never consume stops, so routes grow far beyond what a
	// live simulation produces; keep the stream short to bound the DFS.
	w := newWorld(t, 7, 12, 60, 1000)
	k := NewKinetic(w.fleet, 1)
	k.MaxNodes = 20000
	if k.Name() != "kinetic" {
		t.Fatal("name")
	}
	served, _ := run(t, w, k)
	if served == 0 {
		t.Fatal("kinetic served nothing")
	}
}

func TestBatchServesAndStaysFeasible(t *testing.T) {
	w := newWorld(t, 9, 12, 200, 1000)
	b := NewBatch(w.fleet, 1)
	if b.Name() != "batch" {
		t.Fatal("name")
	}
	served, rejected := run(t, w, b)
	if served == 0 {
		t.Fatal("batch served nothing")
	}
	if served+rejected != len(w.inst.Requests) {
		t.Fatalf("batch lost requests: %d+%d != %d", served, rejected, len(w.inst.Requests))
	}
}

// TestKineticAtLeastAsGoodAsInsertion: on a single worker, kinetic's full
// reordering must never increase distance more than order-preserving
// insertion for the same request sequence served one by one.
func TestKineticAtLeastAsGoodAsInsertion(t *testing.T) {
	w := newWorld(t, 11, 1, 60, 2000)
	rng := rand.New(rand.NewSource(2))
	_ = rng
	k := NewKinetic(w.fleet, 1)
	wk := w.fleet.Workers[0]
	for i, r := range w.inst.Requests {
		if len(wk.Route.Stops) > 6 {
			break // keep the DFS small
		}
		L := w.dist(r.Origin, r.Dest)
		ins := core.LinearDPInsertion(&wk.Route, wk.Capacity, r, L, w.dist)
		order, total, ok := k.bestOrdering(&wk.Route, wk.Capacity, r, L)
		if ins.OK {
			if !ok {
				t.Fatalf("req %d: insertion feasible but kinetic found nothing", i)
			}
			delta := total - wk.Route.RemainingDist()
			if delta > ins.Delta+1e-5*(1+ins.Delta) {
				t.Fatalf("req %d: kinetic delta %v worse than insertion %v", i, delta, ins.Delta)
			}
		}
		if ok {
			k.install(&wk.Route, order)
			if err := wk.Route.Validate(wk.Capacity, w.dist); err != nil {
				t.Fatalf("req %d: kinetic route invalid: %v", i, err)
			}
		}
	}
	if len(wk.Route.Stops) == 0 {
		t.Fatal("kinetic never accepted anything; test vacuous")
	}
}

// TestKineticNodeBudget: with a tiny budget the search degrades gracefully
// (serves less or equal, never crashes, routes remain valid).
func TestKineticNodeBudget(t *testing.T) {
	w := newWorld(t, 13, 10, 120, 1000)
	k := NewKinetic(w.fleet, 1)
	k.MaxNodes = 50
	served, _ := run(t, w, k)
	_ = served // any outcome is fine as long as routes validate (done in run)
}

// TestBatchWindowing: requests inside one window are decided together; the
// planner defers and later reports exactly one result per request.
func TestBatchWindowing(t *testing.T) {
	w := newWorld(t, 15, 8, 0, 1000)
	b := NewBatch(w.fleet, 1)
	b.WindowSec = 30
	reqs := make([]*core.Request, 6)
	rng := rand.New(rand.NewSource(4))
	n := w.g.NumVertices()
	for i := range reqs {
		o := roadnet.VertexID(rng.Intn(n))
		d := roadnet.VertexID(rng.Intn(n))
		for d == o {
			d = roadnet.VertexID(rng.Intn(n))
		}
		reqs[i] = &core.Request{
			ID: core.RequestID(i), Origin: o, Dest: d,
			Release: float64(i) * 10, Deadline: float64(i)*10 + 1200,
			Penalty: 1e6, Capacity: 1,
		}
	}
	decided := 0
	for _, r := range reqs {
		res := b.OnRequest(r.Release, r)
		if !res.Deferred {
			t.Fatal("batch must defer")
		}
		decided += len(b.TakeDecided())
	}
	// Releases span 0..50 with a 30s window: at least one interior flush.
	if decided == 0 {
		t.Fatal("no interior window flush happened")
	}
	b.FlushAll(60)
	decided += len(b.TakeDecided())
	if decided != len(reqs) {
		t.Fatalf("decided %d of %d", decided, len(reqs))
	}
}

// TestBatchGrouping checks the shareability grouping respects radius and
// size limits.
func TestBatchGrouping(t *testing.T) {
	w := newWorld(t, 17, 4, 0, 1000)
	b := NewBatch(w.fleet, 1)
	b.MaxGroup = 2
	b.GroupRadiusMeters = 1e9 // everything shareable
	var reqs []*core.Request
	for i := 0; i < 5; i++ {
		reqs = append(reqs, &core.Request{ID: core.RequestID(i), Origin: 0, Dest: 1, Deadline: 1e6, Capacity: 1})
	}
	groups := b.group(reqs)
	if len(groups) != 3 {
		t.Fatalf("groups=%d want 3 (2+2+1)", len(groups))
	}
	for _, g := range groups {
		if len(g) > 2 {
			t.Fatal("group size cap violated")
		}
	}
	b.GroupRadiusMeters = 0.5
	groups = b.group(reqs)
	if len(groups) != 5 && w.g.Point(0).Dist(w.g.Point(0)) == 0 {
		// radius 0.5 m still groups identical origins; all origins equal
		// here, so 3 groups again.
		if len(groups) != 3 {
			t.Fatalf("identical origins should still group: %d", len(groups))
		}
	}
}

// TestTShareSearchIsLazy: tshare must consider no more candidates than the
// full grid candidate filter would return.
func TestTShareSearchIsLazy(t *testing.T) {
	w := newWorld(t, 19, 40, 80, 800)
	ts, err := NewTShare(w.fleet, 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	servedTS, _ := run(t, w, ts)
	// Against the full-scan pruneGreedyDP on a fresh identical world:
	w2 := newWorld(t, 19, 40, 80, 800)
	pg := core.NewPruneGreedyDP(w2.fleet, 1)
	servedPG, _ := run(t, w2, pg)
	if servedTS > servedPG {
		t.Fatalf("tshare served %d > pruneGreedyDP %d; lazy search should not win", servedTS, servedPG)
	}
}

func TestUnifiedCostOrdering(t *testing.T) {
	// pruneGreedyDP should achieve unified cost no worse than tshare on
	// the same instance (the paper's headline effectiveness result).
	cost := func(mk func(f *core.Fleet) core.Planner) float64 {
		w := newWorld(t, 23, 20, 300, 1000)
		p := mk(w.fleet)
		var rejected []*core.Request
		for _, r := range w.inst.Requests {
			res := p.OnRequest(r.Release, r)
			if res.Deferred {
				continue
			}
			if !res.Served {
				rejected = append(rejected, r)
			}
		}
		if d, ok := p.(core.Deferring); ok {
			d.FlushAll(1e18)
			for _, dr := range d.TakeDecided() {
				if !dr.Result.Served {
					rejected = append(rejected, dr.Req)
				}
			}
		}
		return core.UnifiedCost(1, w.fleet, rejected)
	}
	ucPG := cost(func(f *core.Fleet) core.Planner { return core.NewPruneGreedyDP(f, 1) })
	ucTS := cost(func(f *core.Fleet) core.Planner {
		ts, err := NewTShare(f, 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		return ts
	})
	if ucPG > ucTS*1.05 {
		t.Fatalf("pruneGreedyDP UC %v should not exceed tshare %v", ucPG, ucTS)
	}
	if math.IsNaN(ucPG) || math.IsNaN(ucTS) {
		t.Fatal("NaN unified cost")
	}
}
