package baseline

import "repro/internal/core"

// Kinetic reimplements the kinetic-tree approach of Huang et al.: for each
// candidate worker it explores every feasible ordering of the worker's
// pending stops plus the new request's pickup and drop-off, keeping the
// ordering with the minimal total travel time. This is strictly more
// powerful per request than order-preserving insertion — and exponential
// in the number of pending stops, which is exactly why the paper observes
// kinetic failing to halt for large worker capacities ((2K_w)! orderings).
//
// The search is a depth-first branch-and-bound over the "kinetic tree":
// nodes are partial orderings, children are the feasible next stops,
// pruned by deadline, capacity and the best complete cost found so far.
// MaxNodes caps the exploration per (worker, request) pair; on budget
// exhaustion the best ordering found so far is used (anytime behavior),
// mirroring how a real deployment must bound kinetic's latency.
type Kinetic struct {
	fleet    *core.Fleet
	alpha    float64
	MaxNodes int

	// sc is the decision-phase arena (single-threaded planner).
	sc core.Scratch

	// scratch state for the DFS
	stops []core.Stop
	used  []bool
	order []int16
	best  []int16
	nodes int
	bound float64
	kw    int
}

// NewKinetic returns the planner with the default node budget.
func NewKinetic(fleet *core.Fleet, alpha float64) *Kinetic {
	return &Kinetic{fleet: fleet, alpha: alpha, MaxNodes: 50000}
}

// Name implements core.Planner.
func (k *Kinetic) Name() string { return "kinetic" }

// OnRequest implements core.Planner.
func (k *Kinetic) OnRequest(now float64, req *core.Request) core.Result {
	f := k.fleet
	L := f.Dist(req.Origin, req.Dest)
	cands := f.Candidates(req, now, L)
	if len(cands) == 0 {
		return core.Result{}
	}
	// URPSM adaptation: the same decision-phase rejection as the paper
	// applies to all compared algorithms (see its Fig. 7 discussion).
	lbs, reject := k.sc.Decide(k.alpha, cands, req, f.Graph, L)
	if reject {
		return core.Result{}
	}

	var bestW *core.Worker
	bestDelta := 0.0
	var bestOrder []core.Stop
	found := false
	for _, wb := range lbs {
		w := wb.Worker
		order, total, ok := k.bestOrdering(&w.Route, w.Capacity, req, L)
		if !ok {
			continue
		}
		delta := total - w.Route.RemainingDist()
		if !found || delta < bestDelta || (delta == bestDelta && w.ID < bestW.ID) {
			found = true
			bestW = w
			bestDelta = delta
			bestOrder = order
		}
	}
	if !found {
		return core.Result{}
	}
	if k.alpha*bestDelta > req.Penalty {
		return core.Result{}
	}
	k.install(&bestW.Route, bestOrder)
	return core.Result{Served: true, Worker: bestW.ID, Delta: bestDelta}
}

// bestOrdering searches all feasible orderings of rt.Stops plus req's two
// stops, returning the cheapest complete ordering and its total remaining
// travel time.
func (k *Kinetic) bestOrdering(rt *core.Route, kw int, req *core.Request, L float64) ([]core.Stop, float64, bool) {
	if req.Capacity > kw {
		return nil, 0, false
	}
	k.stops = k.stops[:0]
	k.stops = append(k.stops, rt.Stops...)
	k.stops = append(k.stops,
		core.Stop{Vertex: req.Origin, Kind: core.Pickup, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline - L},
		core.Stop{Vertex: req.Dest, Kind: core.Dropoff, Req: req.ID, Cap: req.Capacity, DDL: req.Deadline},
	)
	n := len(k.stops)
	if cap(k.used) < n {
		k.used = make([]bool, n)
		k.order = make([]int16, 0, n)
		k.best = make([]int16, 0, n)
	}
	k.used = k.used[:n]
	for i := range k.used {
		k.used[i] = false
	}
	k.order = k.order[:0]
	k.best = k.best[:0]
	k.nodes = 0
	k.bound = inf
	k.kw = kw
	k.dfs(rt.Loc, rt.Now, rt.Onboard, 0, rt.Now)
	if len(k.best) != n {
		return nil, 0, false
	}
	out := make([]core.Stop, n)
	for i, idx := range k.best {
		out[i] = k.stops[idx]
	}
	return out, k.bound, true
}

const inf = 1e18

// dfs extends the partial ordering. loc/t/load describe the state after
// the placed prefix; placed counts placed stops; start is the route's Now
// (so cost-so-far = t − start).
func (k *Kinetic) dfs(loc int32, t float64, load, placed int, start float64) {
	if k.nodes >= k.MaxNodes {
		return
	}
	k.nodes++
	if t-start >= k.bound {
		return // cannot beat the best complete ordering
	}
	n := len(k.stops)
	if placed == n {
		k.bound = t - start
		k.best = append(k.best[:0], k.order...)
		return
	}
	// Expand children nearest-first so good complete orderings are found
	// early, tightening the bound for the rest of the search. A local
	// fixed buffer plus insertion sort keeps the hot DFS allocation-free.
	type child struct {
		idx int16
		d   float64
	}
	var buf [64]child
	children := buf[:0]
	for i := 0; i < n; i++ {
		if k.used[i] {
			continue
		}
		s := k.stops[i]
		if s.Kind == core.Dropoff && k.pickupPending(s.Req) {
			continue // precedence: its pickup is not placed yet
		}
		if s.Kind == core.Pickup && load+s.Cap > k.kw {
			continue // capacity
		}
		d := k.fleet.Dist(loc, s.Vertex)
		if t+d > s.DDL+1e-6 {
			continue // deadline
		}
		if len(children) == cap(children) {
			continue // beyond any realistic pending-stop count
		}
		c := child{idx: int16(i), d: d}
		j := len(children)
		children = children[:j+1]
		for j > 0 && (children[j-1].d > c.d ||
			(children[j-1].d == c.d && children[j-1].idx > c.idx)) {
			children[j] = children[j-1]
			j--
		}
		children[j] = c
	}
	for _, c := range children {
		i := int(c.idx)
		s := k.stops[i]
		k.used[i] = true
		k.order = append(k.order, c.idx)
		load2 := load
		if s.Kind == core.Pickup {
			load2 += s.Cap
		} else {
			load2 -= s.Cap
		}
		k.dfs(s.Vertex, t+c.d, load2, placed+1, start)
		k.order = k.order[:len(k.order)-1]
		k.used[i] = false
		if k.nodes >= k.MaxNodes {
			return
		}
	}
}

// pickupPending reports whether the pickup of request id is among the
// unplaced stops (then its drop-off may not be placed yet).
func (k *Kinetic) pickupPending(id core.RequestID) bool {
	for i, s := range k.stops {
		if s.Req == id && s.Kind == core.Pickup && !k.used[i] {
			return true
		}
	}
	return false
}

// install replaces the route's stop sequence with the chosen ordering and
// rebuilds the arrival cache.
func (k *Kinetic) install(rt *core.Route, order []core.Stop) {
	rt.Stops = order
	rt.Recompute(k.fleet.Dist)
}
