// Package baseline implements the three compared algorithms of the
// paper's §6.1 — tshare (T-Share, Ma et al. ICDE'13), kinetic (Huang et
// al. VLDB'14) and batch (Alonso-Mora et al. PNAS'17) — at the fidelity
// the paper's comparison requires: all adapted to the URPSM setting (they
// may reject requests, paying the penalty) and all running against the
// same fleet, grid and distance oracle as pruneGreedyDP.
package baseline

import (
	"math"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/spatial"
)

// TShare reimplements T-Share's candidate search: a grid whose cells carry
// pre-sorted lists of all other cells by center distance ("spatially
// ordered grid lists"), scanned lazily outward from the request's origin.
// The search stops as soon as the first non-empty ring of cells has been
// consumed — T-Share's "lazy" single-side shortcut — which makes it very
// fast but prone to discarding feasible workers, reproducing the paper's
// observation that tshare has the fastest response yet the lowest served
// rate and highest unified cost. Insertion is the basic O(n³) operator
// ("applies basic insertion to find a worker with minimal increased
// distance").
type TShare struct {
	fleet *core.Fleet
	grid  *spatial.TShareGrid
	alpha float64

	// sc and cands are the planner's reusable arenas (single-threaded,
	// like every baseline planner).
	sc    core.Scratch
	cands []*core.Worker
}

// NewTShare builds the planner and its T-Share grid with the given cell
// size in meters (the experiment's g parameter). The fleet's own grid must
// use the same cell size so cell indices coincide; worker positions are
// read from the fleet grid, the T-Share grid contributes the sorted lists.
func NewTShare(fleet *core.Fleet, cellMeters, alpha float64) (*TShare, error) {
	tg, err := spatial.NewTShareGrid(fleet.Graph.Bounds(), cellMeters)
	if err != nil {
		return nil, err
	}
	return &TShare{fleet: fleet, grid: tg, alpha: alpha}, nil
}

// Name implements core.Planner.
func (t *TShare) Name() string { return "tshare" }

// GridMemoryBytes reports the sorted-list index footprint (Fig. 5's
// memory metric).
func (t *TShare) GridMemoryBytes() int64 { return t.grid.MemoryBytes() }

// OnRequest implements core.Planner.
func (t *TShare) OnRequest(now float64, req *core.Request) core.Result {
	f := t.fleet
	L := f.Dist(req.Origin, req.Dest)
	budget := req.Deadline - L - now
	if budget < 0 {
		return core.Result{}
	}
	radius := budget * geo.MaxSpeed()
	origin := f.Graph.Point(req.Origin)

	// Lazy outward scan over the pre-sorted cell list: stop once the ring
	// that produced the first candidates is exhausted, or the reachable
	// radius is exceeded.
	cands := t.cands[:0]
	cells := t.grid.CellsByDistance(origin)
	cellR := t.grid.CellRadius()
	stopAt := math.Inf(1)
	for _, c := range cells {
		d := origin.Dist(t.grid.CellCenter(int(c)))
		if d-cellR > radius || d > stopAt {
			break
		}
		f.Grid.ItemsInCell(int(c), func(id spatial.ItemID, _ geo.Point) bool {
			cands = append(cands, f.Workers[id])
			return true
		})
		if len(cands) > 0 && math.IsInf(stopAt, 1) {
			// Finish the current ring (cells at indistinguishable center
			// distance) and then stop: T-Share's early termination.
			stopAt = d + cellR
		}
	}
	t.cands = cands // retain growth across requests
	if len(cands) == 0 {
		return core.Result{}
	}

	var bestW *core.Worker
	best := core.Infeasible
	for _, w := range cands {
		ins := t.sc.Basic(&w.Route, w.Capacity, req, f.Dist)
		if !ins.OK {
			continue
		}
		if bestW == nil || ins.Delta < best.Delta ||
			(ins.Delta == best.Delta && w.ID < bestW.ID) {
			bestW = w
			best = ins
		}
	}
	if bestW == nil {
		return core.Result{}
	}
	if t.alpha*best.Delta > req.Penalty {
		// URPSM adaptation: serving at a cost above the penalty would
		// only raise the unified cost.
		return core.Result{}
	}
	if err := core.Apply(&bestW.Route, bestW.Capacity, req, best, L, f.Dist); err != nil {
		panic(err)
	}
	return core.Result{Served: true, Worker: bestW.ID, Delta: best.Delta}
}
