package cliutil

import (
	"math"
	"strings"
	"testing"

	"repro/internal/roadnet"
)

func TestCheckOracle(t *testing.T) {
	for _, ok := range append([]string{""}, OracleKinds...) {
		if err := CheckOracle(ok); err != nil {
			t.Errorf("CheckOracle(%q): unexpected error %v", ok, err)
		}
	}
	for _, bad := range []string{"dijkstra", "HUB", "hub ", "auto,ch", "none", "contraction"} {
		err := CheckOracle(bad)
		if err == nil {
			t.Errorf("CheckOracle(%q): expected error", bad)
			continue
		}
		if !strings.Contains(err.Error(), "hub|cch|ch|bidijkstra|auto") {
			t.Errorf("CheckOracle(%q): error %q does not list the valid kinds", bad, err)
		}
	}
}

func TestBuildOracleResolvesAndAgrees(t *testing.T) {
	cfg := roadnet.DefaultGenConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := roadnet.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A graph this small resolves auto (and the empty default) to hub.
	for _, kind := range []string{"", "auto"} {
		_, resolved, err := BuildOracle(kind, g)
		if err != nil {
			t.Fatalf("BuildOracle(%q): %v", kind, err)
		}
		if resolved != "hub" {
			t.Fatalf("BuildOracle(%q) resolved to %q, want hub", kind, resolved)
		}
	}
	// Every explicit tier builds and agrees on a sample query.
	var dists []float64
	for _, kind := range []string{"hub", "cch", "ch", "bidijkstra"} {
		o, resolved, err := BuildOracle(kind, g)
		if err != nil {
			t.Fatalf("BuildOracle(%q): %v", kind, err)
		}
		if resolved != kind {
			t.Fatalf("BuildOracle(%q) resolved to %q", kind, resolved)
		}
		dists = append(dists, o.Dist(0, roadnet.VertexID(g.NumVertices()-1)))
	}
	for _, d := range dists[1:] {
		// Tiers may differ in summation order, so allow float noise.
		if math.Abs(d-dists[0]) > 1e-9*(1+math.Abs(dists[0])) {
			t.Fatalf("oracle tiers disagree: %v", dists)
		}
	}
	if _, _, err := BuildOracle("bogus", g); err == nil {
		t.Fatal("BuildOracle(bogus): expected error")
	}
}
