// Package cliutil holds the small flag-parsing helpers shared by the
// commands: the -oracle flag (urpsm-sim, urpsm-bench, urpsm-serve and
// urpsm-replay all select a distance oracle the same way) and the
// -log-level flag with its slog construction.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"

	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/trace"
)

// OracleKinds are the accepted -oracle values. "auto" resolves to one of
// the other tiers by vertex count through shortest.Auto's budget
// (DESIGN.md §8.3).
var OracleKinds = []string{"hub", "cch", "ch", "bidijkstra", "auto"}

// OracleUsage is the shared -oracle usage text.
const OracleUsage = "distance oracle: hub|cch|ch|bidijkstra|auto (auto picks by graph size)"

// OracleFlag registers the standard -oracle flag with the given default
// (commands that pick their default later pass "").
func OracleFlag(def string) *string {
	return flag.String("oracle", def, OracleUsage)
}

// CheckOracle validates an -oracle value at parse time, before any
// expensive work starts. The empty string is accepted: commands use it to
// mean "default chosen later" (hub for presets, auto for imports).
func CheckOracle(kind string) error {
	if kind == "" {
		return nil
	}
	for _, k := range OracleKinds {
		if kind == k {
			return nil
		}
	}
	return fmt.Errorf("unknown oracle %q (valid: %s)", kind, strings.Join(OracleKinds, "|"))
}

// BuildOracle constructs the named oracle over g and returns it with the
// resolved kind: "" defaults to "auto", and "auto" comes back as the tier
// the default budget selected for the graph's size. The commands that
// build their own engine (urpsm-serve, urpsm-replay) use it; the
// experiment Runner keeps its own lazily-cached construction.
func BuildOracle(kind string, g *roadnet.Graph) (shortest.Oracle, string, error) {
	if err := CheckOracle(kind); err != nil {
		return nil, "", err
	}
	resolved := kind
	if resolved == "" || resolved == "auto" {
		resolved = string(shortest.DefaultAutoBudget().Choose(g.NumVertices()))
	}
	switch resolved {
	case "hub":
		return shortest.BuildHubLabels(g), resolved, nil
	case "cch":
		return shortest.BuildCCH(g), resolved, nil
	case "ch":
		return shortest.BuildCH(g), resolved, nil
	case "bidijkstra":
		return shortest.NewBiDijkstra(g), resolved, nil
	}
	return nil, "", fmt.Errorf("unknown oracle %q (valid: %s)", kind, strings.Join(OracleKinds, "|"))
}

// LogLevels are the accepted -log-level values.
var LogLevels = []string{"debug", "info", "warn", "error"}

// LogLevelFlag registers the standard -log-level flag.
func LogLevelFlag(def string) *string {
	return flag.String("log-level", def, "log verbosity: debug|info|warn|error")
}

// NewLogger builds a structured stderr logger at the named level.
// Timestamps stay on (slog's default) — operators correlate these lines
// with trace wall_ns; the crash harness and smoke scripts match on
// message substrings, which text output preserves.
func NewLogger(level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (valid: %s)", level, strings.Join(LogLevels, "|"))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv})), nil
}

// TraceFlag registers the standard -trace flag (urpsm-sim, urpsm-bench):
// attach a flight recorder to the run and write its ring to FILE.
func TraceFlag() *string {
	return flag.String("trace", "",
		"write the planner flight-recorder event ring (JSON, FORMATS.md §9) to this file after the run")
}

// NewRecorder sizes a flight recorder for an offline run over n requests:
// two events per planned request (plan_start + plan) plus slack for
// traffic epochs and oracle rebuilds.
func NewRecorder(n int) *trace.Recorder {
	return trace.New(2*n + 64)
}

// WriteTrace dumps rec's retained events (oldest → newest) to path as an
// indented JSON object with the same {capacity, events} shape as the
// server's GET /debug/trace.
func WriteTrace(path string, rec *trace.Recorder) error {
	evs := rec.Events(make([]trace.Event, 0, rec.Len()))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(struct {
		Capacity int           `json:"capacity"`
		Events   []trace.Event `json:"events"`
	}{rec.Capacity(), evs})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	fmt.Printf("trace: wrote %d event(s) to %s\n", len(evs), path)
	return nil
}
