// Package cliutil holds the small flag-parsing helpers shared by the
// commands. Today that is the -oracle flag: urpsm-sim, urpsm-bench,
// urpsm-serve and urpsm-replay all select a distance oracle the same way,
// and each used to carry its own copy of the registration, usage text and
// validation.
package cliutil

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// OracleKinds are the accepted -oracle values. "auto" resolves to one of
// the other tiers by vertex count through shortest.Auto's budget
// (DESIGN.md §8.3).
var OracleKinds = []string{"hub", "cch", "ch", "bidijkstra", "auto"}

// OracleUsage is the shared -oracle usage text.
const OracleUsage = "distance oracle: hub|cch|ch|bidijkstra|auto (auto picks by graph size)"

// OracleFlag registers the standard -oracle flag with the given default
// (commands that pick their default later pass "").
func OracleFlag(def string) *string {
	return flag.String("oracle", def, OracleUsage)
}

// CheckOracle validates an -oracle value at parse time, before any
// expensive work starts. The empty string is accepted: commands use it to
// mean "default chosen later" (hub for presets, auto for imports).
func CheckOracle(kind string) error {
	if kind == "" {
		return nil
	}
	for _, k := range OracleKinds {
		if kind == k {
			return nil
		}
	}
	return fmt.Errorf("unknown oracle %q (valid: %s)", kind, strings.Join(OracleKinds, "|"))
}

// BuildOracle constructs the named oracle over g and returns it with the
// resolved kind: "" defaults to "auto", and "auto" comes back as the tier
// the default budget selected for the graph's size. The commands that
// build their own engine (urpsm-serve, urpsm-replay) use it; the
// experiment Runner keeps its own lazily-cached construction.
func BuildOracle(kind string, g *roadnet.Graph) (shortest.Oracle, string, error) {
	if err := CheckOracle(kind); err != nil {
		return nil, "", err
	}
	resolved := kind
	if resolved == "" || resolved == "auto" {
		resolved = string(shortest.DefaultAutoBudget().Choose(g.NumVertices()))
	}
	switch resolved {
	case "hub":
		return shortest.BuildHubLabels(g), resolved, nil
	case "cch":
		return shortest.BuildCCH(g), resolved, nil
	case "ch":
		return shortest.BuildCH(g), resolved, nil
	case "bidijkstra":
		return shortest.NewBiDijkstra(g), resolved, nil
	}
	return nil, "", fmt.Errorf("unknown oracle %q (valid: %s)", kind, strings.Join(OracleKinds, "|"))
}
