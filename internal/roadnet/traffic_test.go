package roadnet

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/geo"
)

func trafficTestGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := Generate(GenConfig{
		Rows: 12, Cols: 12, Spacing: 120, Jitter: 0.2, ArterialEvery: 4,
		MotorwayRing: true, RemoveFrac: 0.05, DetourMin: 1.02, DetourMax: 1.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOverlayApplySetsMultipliersRelativeToBase(t *testing.T) {
	g := trafficTestGraph(t)
	o := NewOverlay(g)
	if o.Epoch() != 0 || o.Graph() != g {
		t.Fatalf("fresh overlay: epoch=%d", o.Epoch())
	}

	g1, epoch, changed, err := o.Apply([]TrafficUpdate{{Factor: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || g1.WeightEpoch() != 1 {
		t.Fatalf("epoch=%d snapshot epoch=%d", epoch, g1.WeightEpoch())
	}
	if changed != g.NumEdges() {
		t.Fatalf("changed %d edges, want all %d", changed, g.NumEdges())
	}
	for _, e := range g.Edges() {
		base, _ := g.EdgeCost(e.U, e.V)
		cur, _ := g1.EdgeCost(e.U, e.V)
		if math.Abs(cur-2*base) > 1e-12 {
			t.Fatalf("edge (%d,%d): cost %v want %v", e.U, e.V, cur, 2*base)
		}
	}

	// A second event SETS factors relative to base (congestion easing),
	// it does not compound.
	g2, _, _, err := o.Apply([]TrafficUpdate{{Factor: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		base, _ := g.EdgeCost(e.U, e.V)
		cur, _ := g2.EdgeCost(e.U, e.V)
		if math.Abs(cur-1.5*base) > 1e-12 {
			t.Fatalf("factors compounded: cost %v want %v", cur, 1.5*base)
		}
	}

	// Clear restores the base costs exactly; earlier snapshots are
	// untouched (immutability).
	g3, _, _, err := o.Apply([]TrafficUpdate{{Factor: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		base, _ := g.EdgeCost(e.U, e.V)
		if cur, _ := g3.EdgeCost(e.U, e.V); cur != base {
			t.Fatalf("clear did not restore base cost")
		}
		if old, _ := g1.EdgeCost(e.U, e.V); math.Abs(old-2*base) > 1e-12 {
			t.Fatalf("earlier snapshot mutated")
		}
	}
}

func TestOverlaySelectors(t *testing.T) {
	g := trafficTestGraph(t)

	t.Run("class", func(t *testing.T) {
		o := NewOverlay(g)
		cur, _, changed, err := o.Apply([]TrafficUpdate{{Factor: 3, Class: "motorway"}})
		if err != nil {
			t.Fatal(err)
		}
		wantChanged := 0
		for _, e := range g.Edges() {
			base, _ := g.EdgeCost(e.U, e.V)
			got, _ := cur.EdgeCost(e.U, e.V)
			want := base
			if e.Class == geo.Motorway {
				want = 3 * base
				wantChanged++
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("edge (%d,%d) class %v: cost %v want %v", e.U, e.V, e.Class, got, want)
			}
		}
		if wantChanged == 0 {
			t.Fatal("test graph has no motorway edges")
		}
		if changed != wantChanged {
			t.Fatalf("changed=%d want %d", changed, wantChanged)
		}
	})

	t.Run("bbox", func(t *testing.T) {
		o := NewOverlay(g)
		b := g.Bounds()
		// Left half of the map.
		midX := (b.Min.X + b.Max.X) / 2
		box := []float64{b.Min.X, b.Min.Y, midX, b.Max.Y}
		cur, _, changed, err := o.Apply([]TrafficUpdate{{Factor: 2, BBox: box}})
		if err != nil {
			t.Fatal(err)
		}
		if changed == 0 || changed == g.NumEdges() {
			t.Fatalf("bbox matched %d of %d edges; want a strict subset", changed, g.NumEdges())
		}
		for _, e := range g.Edges() {
			in := g.Point(e.U).X <= midX && g.Point(e.V).X <= midX
			base, _ := g.EdgeCost(e.U, e.V)
			got, _ := cur.EdgeCost(e.U, e.V)
			want := base
			if in {
				want = 2 * base
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("edge (%d,%d) in=%v: cost %v want %v", e.U, e.V, in, got, want)
			}
		}
	})

	t.Run("edges", func(t *testing.T) {
		o := NewOverlay(g)
		e := g.Edges()[7]
		cur, _, changed, err := o.Apply([]TrafficUpdate{
			{Factor: 4, Edges: [][2]int64{{int64(e.V), int64(e.U)}}}, // reversed order matches too
		})
		if err != nil {
			t.Fatal(err)
		}
		if changed != 1 {
			t.Fatalf("changed=%d want 1", changed)
		}
		base, _ := g.EdgeCost(e.U, e.V)
		if got, _ := cur.EdgeCost(e.U, e.V); math.Abs(got-4*base) > 1e-12 {
			t.Fatalf("edge cost %v want %v", got, 4*base)
		}
		if got, _ := cur.EdgeCost(e.V, e.U); math.Abs(got-4*base) > 1e-12 {
			t.Fatalf("reverse arc not updated")
		}
		if m, ok := o.Multiplier(e.U, e.V); !ok || m != 4 {
			t.Fatalf("Multiplier=%v,%v", m, ok)
		}
	})
}

func TestTrafficUpdateValidate(t *testing.T) {
	g := trafficTestGraph(t)
	e := g.Edges()[0]
	bad := []TrafficUpdate{
		{Factor: 0.5},                                               // below 1: would break Euclidean lower bounds
		{Factor: math.NaN()},                                        // non-finite
		{Factor: MaxTrafficFactor + 1},                              // absurd
		{Factor: 2, Class: "cowpath"},                               // unknown class
		{Factor: 2, BBox: []float64{1, 2, 3}},                       // wrong arity
		{Factor: 2, BBox: []float64{5, 0, 0, 5}},                    // inverted
		{Factor: 2, BBox: []float64{0, 0, math.Inf(1), 5}},          // non-finite
		{Factor: 2, Edges: [][2]int64{{-1, 0}}},                     // out of range
		{Factor: 2, Edges: [][2]int64{{int64(e.U), int64(e.U)}}},    // self-loop: no such edge
		{Factor: 2, Edges: [][2]int64{{0, int64(g.NumVertices())}}}, // out of range
	}
	for i, u := range bad {
		if err := u.Validate(g); err == nil {
			t.Errorf("bad update %d (%+v) validated", i, u)
		}
	}
	if err := ValidateTrafficUpdates(g, nil); err == nil {
		t.Error("empty batch validated")
	}
	good := TrafficUpdate{Factor: 2, Class: "arterial", BBox: []float64{0, 0, 500, 500},
		Edges: [][2]int64{{int64(e.U), int64(e.V)}}}
	if err := good.Validate(g); err != nil {
		t.Errorf("good update rejected: %v", err)
	}
	// A failed Apply must not half-apply or advance the epoch.
	o := NewOverlay(g)
	if _, _, _, err := o.Apply([]TrafficUpdate{{Factor: 2}, {Factor: 0.5}}); err == nil {
		t.Fatal("bad batch applied")
	}
	if o.Epoch() != 0 || o.Graph() != g {
		t.Fatal("failed apply mutated the overlay")
	}
}

func TestReadTrafficProfile(t *testing.T) {
	g := trafficTestGraph(t)
	e := g.Edges()[3]
	src := "urpsm-traffic 1\n" +
		"# morning rush\n" +
		"at 600 scale 1.5\n" +
		"at 600 scale 2 class motorway\n" +
		"\n" +
		"at 900 scale 1.25 bbox 0 0 700 700\n" +
		"at 1200 edge " + itoa(int(e.U)) + " " + itoa(int(e.V)) + " 1.8\n" +
		"at 1800 clear\n"
	p, err := ReadTrafficProfile(strings.NewReader(src), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("events=%d want 4", len(p.Events))
	}
	if len(p.Events[0].Updates) != 2 || p.Events[0].At != 600 {
		t.Fatalf("event 0: %+v", p.Events[0])
	}
	if p.Events[3].Updates[0].Factor != 1 {
		t.Fatalf("clear parsed as %+v", p.Events[3].Updates[0])
	}

	// Round trip through the writer.
	var buf bytes.Buffer
	if err := WriteTrafficProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	p2, err := ReadTrafficProfile(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if len(p2.Events) != len(p.Events) {
		t.Fatalf("round trip changed event count: %d vs %d", len(p2.Events), len(p.Events))
	}
	for i := range p.Events {
		if p2.Events[i].At != p.Events[i].At || len(p2.Events[i].Updates) != len(p.Events[i].Updates) {
			t.Fatalf("round trip changed event %d", i)
		}
	}
}

func TestReadTrafficProfileErrors(t *testing.T) {
	g := trafficTestGraph(t)
	cases := map[string]string{
		"empty":           "",
		"bad header":      "urpsm-traffic 2\nat 0 clear\n",
		"no at":           "urpsm-traffic 1\nscale 2\n",
		"bad time":        "urpsm-traffic 1\nat -5 scale 2\n",
		"nan time":        "urpsm-traffic 1\nat NaN scale 2\n",
		"time regression": "urpsm-traffic 1\nat 600 scale 2\nat 300 scale 1.5\n",
		"bad factor":      "urpsm-traffic 1\nat 0 scale 0.5\n",
		"bad class":       "urpsm-traffic 1\nat 0 scale 2 class cowpath\n",
		"short bbox":      "urpsm-traffic 1\nat 0 scale 2 bbox 1 2 3\n",
		"bad selector":    "urpsm-traffic 1\nat 0 scale 2 radius 5\n",
		"bad edge":        "urpsm-traffic 1\nat 0 edge 0 999999 2\n",
		"edge arity":      "urpsm-traffic 1\nat 0 edge 0 1\n",
		"clear args":      "urpsm-traffic 1\nat 0 clear now\n",
		"unknown rule":    "urpsm-traffic 1\nat 0 jam 2\n",
	}
	for name, src := range cases {
		if _, err := ReadTrafficProfile(strings.NewReader(src), g); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func itoa(v int) string { return strconv.Itoa(v) }
