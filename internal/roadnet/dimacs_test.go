package roadnet

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geo"
)

func openFixture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func loadFixture(t *testing.T, opts DIMACSOptions) (*Graph, *DIMACSStats) {
	t.Helper()
	g, stats, err := LoadDIMACS(openFixture(t, "sample.gr"), openFixture(t, "sample.co"), opts)
	if err != nil {
		t.Fatalf("LoadDIMACS: %v", err)
	}
	return g, stats
}

func TestLoadDIMACSFixture(t *testing.T) {
	g, stats := loadFixture(t, DefaultDIMACSOptions())

	// The fixture is a 4x4 grid plus a detached 2-node component; the
	// largest-component extraction must keep only the grid.
	if g.NumVertices() != 16 {
		t.Fatalf("vertices = %d, want 16", g.NumVertices())
	}
	if g.NumEdges() != 24 {
		t.Fatalf("edges = %d, want 24", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("loaded graph not connected")
	}
	if stats.NodesDeclared != 18 || stats.NodesKept != 18 {
		t.Errorf("node stats = %+v, want declared/kept 18/18", stats)
	}
	if stats.EdgesKept != 25 || stats.SelfLoops != 1 || stats.Components != 2 {
		t.Errorf("edge stats = %+v, want 25 edges, 1 self-loop, 2 components", stats)
	}
	if stats.Proj.Planar {
		t.Error("geographic fixture produced a planar projection")
	}
	// Duplicate arc (1,2) with weight 900 must collapse to the minimum 500.
	if c, ok := g.EdgeCost(0, 1); !ok || math.Abs(c-500/geo.Arterial.Speed()) > 1e-9 {
		t.Errorf("edge (0,1) cost = %v, %v; want 500m at arterial speed", c, ok)
	}
	// Every edge must satisfy the Euclidean lower bound the planner assumes.
	for _, e := range g.Edges() {
		if euc := g.Euclid(e.U, e.V); e.Meters < euc-1e-9 {
			t.Fatalf("edge (%d,%d): %vm below Euclidean %vm", e.U, e.V, e.Meters, euc)
		}
		if e.Class != geo.Arterial {
			t.Fatalf("edge (%d,%d) class = %v, want default arterial", e.U, e.V, e.Class)
		}
	}
}

func TestLoadDIMACSMaxNodes(t *testing.T) {
	opts := DefaultDIMACSOptions()
	opts.MaxNodes = 8
	g, stats := loadFixture(t, opts)
	// The first 8 IDs form the bottom two grid rows: 2x4 vertices, 10 edges.
	if g.NumVertices() != 8 || g.NumEdges() != 10 {
		t.Fatalf("|V|=%d |E|=%d, want 8/10", g.NumVertices(), g.NumEdges())
	}
	if stats.DroppedArcs == 0 {
		t.Error("expected dropped arcs when subsetting")
	}
}

func TestLoadDIMACSBox(t *testing.T) {
	opts := DefaultDIMACSOptions()
	// Window around the first grid column (lon 104.000, lat 30.600-30.614).
	opts.Box = &DIMACSBox{MinLon: 103.999, MaxLon: 104.0001, MinLat: 30.5, MaxLat: 30.7}
	g, stats := loadFixture(t, opts)
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("|V|=%d |E|=%d, want the 4-vertex column path", g.NumVertices(), g.NumEdges())
	}
	// The projection must center on the subset, not the whole file: the kept
	// column spans lon 104.000, lat 30.600–30.6135.
	if math.Abs(stats.Proj.Lon0-104.0) > 1e-6 || math.Abs(stats.Proj.Lat0-30.60675) > 1e-6 {
		t.Fatalf("projection center (%v,%v) not centered on subset", stats.Proj.Lat0, stats.Proj.Lon0)
	}
}

func TestLoadDIMACSKeepAllComponents(t *testing.T) {
	opts := DefaultDIMACSOptions()
	opts.KeepAllComponents = true
	g, stats := loadFixture(t, opts)
	if g.NumVertices() != 18 || g.NumEdges() != 25 {
		t.Fatalf("|V|=%d |E|=%d, want 18/25", g.NumVertices(), g.NumEdges())
	}
	if stats.Components != 2 {
		t.Fatalf("components = %d, want 2", stats.Components)
	}
}

func TestLoadDIMACSClampsToEuclid(t *testing.T) {
	// Two nodes ~500m apart joined by a 1m arc: the loader must lengthen the
	// edge to the Euclidean distance to keep lower bounds admissible.
	co := "p aux sp co 2\nv 1 104000000 30600000\nv 2 104005000 30600000\n"
	gr := "p sp 2 2\na 1 2 1\na 2 1 1\n"
	g, stats, err := LoadDIMACS(strings.NewReader(gr), strings.NewReader(co), DefaultDIMACSOptions())
	if err != nil {
		t.Fatalf("LoadDIMACS: %v", err)
	}
	if stats.Clamped != 1 {
		t.Fatalf("clamped = %d, want 1", stats.Clamped)
	}
	e := g.Edges()[0]
	if euc := g.Euclid(e.U, e.V); math.Abs(e.Meters-euc) > 1e-9 || euc < 400 {
		t.Fatalf("edge length %v, want Euclidean %v (≈479m)", e.Meters, euc)
	}
}

func TestLoadDIMACSErrors(t *testing.T) {
	goodCo := "p aux sp co 2\nv 1 104000000 30600000\nv 2 104005000 30600000\n"
	goodGr := "p sp 2 2\na 1 2 500\na 2 1 500\n"
	cases := []struct {
		name   string
		gr, co string
	}{
		{"empty both", "", ""},
		{"co missing problem line", goodGr, "v 1 104000000 30600000\n"},
		{"co bad vertex line", goodGr, "p aux sp co 2\nv 1 foo bar\nv 2 0 0\n"},
		{"co duplicate vertex", goodGr, "p aux sp co 2\nv 1 0 0\nv 1 0 0\n"},
		{"co id out of range", goodGr, "p aux sp co 2\nv 3 0 0\n"},
		{"co huge node count", goodGr, "p aux sp co 99999999999\n"},
		{"gr missing problem line", "a 1 2 500\n", goodCo},
		{"gr node count mismatch", "p sp 3 1\na 1 2 500\n", goodCo},
		{"gr bad arc", "p sp 2 1\na 1 x 500\n", goodCo},
		{"gr negative weight", "p sp 2 1\na 1 2 -5\n", goodCo},
		{"gr arc id out of range", "p sp 2 1\na 1 9 500\n", goodCo},
		{"gr more arcs than declared", "p sp 2 1\na 1 2 500\na 2 1 500\n", goodCo},
		{"gr truncated arc section", "p sp 2 2\na 1 2 500\n", goodCo},
		{"gr missing coordinates", "p sp 2 1\na 1 2 500\n", "p aux sp co 2\nv 1 0 0\n"},
		{"gr garbage line", "p sp 2 1\nwhat\n", goodCo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := LoadDIMACS(strings.NewReader(tc.gr), strings.NewReader(tc.co), DefaultDIMACSOptions())
			if err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

// TestDIMACSRoundTrip checks the synthetic→DIMACS→load loop the import
// pipeline relies on: structure and classes survive exactly, geometry to
// centimeter precision, and a second write is byte-identical to the first
// (the format is a fixpoint of load∘write).
func TestDIMACSRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 12
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}

	var gr1, co1 bytes.Buffer
	if err := WriteDIMACS(&gr1, &co1, g); err != nil {
		t.Fatalf("WriteDIMACS: %v", err)
	}
	g2, stats, err := LoadDIMACS(bytes.NewReader(gr1.Bytes()), bytes.NewReader(co1.Bytes()), DIMACSOptions{})
	if err != nil {
		t.Fatalf("LoadDIMACS: %v", err)
	}
	if !stats.Proj.Planar {
		t.Error("planar export lost its planar marker")
	}

	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip |V|,|E| = %d,%d; want %d,%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	const cm = 0.01
	for v := 0; v < g.NumVertices(); v++ {
		p, q := g.Point(VertexID(v)), g2.Point(VertexID(v))
		if math.Abs(p.X-q.X) > cm/2+1e-9 || math.Abs(p.Y-q.Y) > cm/2+1e-9 {
			t.Fatalf("vertex %d moved: %v -> %v", v, p, q)
		}
	}
	e1, e2 := g.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i].U != e2[i].U || e1[i].V != e2[i].V || e1[i].Class != e2[i].Class {
			t.Fatalf("edge %d changed: %+v -> %+v", i, e1[i], e2[i])
		}
		// Centimeter quantization plus at most one Euclidean bump.
		if math.Abs(e1[i].Meters-e2[i].Meters) > 2*cm {
			t.Fatalf("edge %d length %v -> %v", i, e1[i].Meters, e2[i].Meters)
		}
	}

	var gr2, co2 bytes.Buffer
	if err := WriteDIMACS(&gr2, &co2, g2); err != nil {
		t.Fatalf("WriteDIMACS(round trip): %v", err)
	}
	if !bytes.Equal(gr1.Bytes(), gr2.Bytes()) {
		t.Error("gr file not byte-stable across load→write")
	}
	if !bytes.Equal(co1.Bytes(), co2.Bytes()) {
		t.Error("co file not byte-stable across load→write")
	}
}
