package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// The text format is line-oriented and self-describing:
//
//	urpsm-roadnet 1
//	v <numVertices>
//	<x> <y>                 (numVertices lines)
//	e <numEdges>
//	<u> <v> <meters> <class> (numEdges lines)
//
// It exists so cmd/netgen and cmd/urpsm-import can persist road networks
// and experiments can replay identical inputs without regeneration. The
// full specification lives in FORMATS.md §2; DIMACS ingestion is in
// dimacs.go (FORMATS.md §3).

const formatHeader = "urpsm-roadnet 1"

// Write serializes g to w in the text format above.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "v %d\n", g.NumVertices())
	for i := 0; i < g.NumVertices(); i++ {
		p := g.Point(VertexID(i))
		fmt.Fprintf(bw, "%.3f %.3f\n", p.X, p.Y)
	}
	edges := g.Edges()
	fmt.Fprintf(bw, "e %d\n", len(edges))
	for _, e := range edges {
		fmt.Fprintf(bw, "%d %d %.3f %d\n", e.U, e.V, e.Meters, e.Class)
	}
	return bw.Flush()
}

// Read parses a graph previously produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := func() (string, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if hdr != formatHeader {
		return nil, fmt.Errorf("roadnet: bad header %q", hdr)
	}

	vline, err := line()
	if err != nil {
		return nil, err
	}
	var nv int
	if _, err := fmt.Sscanf(vline, "v %d", &nv); err != nil || nv <= 0 {
		return nil, fmt.Errorf("roadnet: bad vertex count line %q", vline)
	}
	// Capacity hints are clamped so a malformed count cannot force a huge
	// allocation before the (missing) vertex lines are even read.
	hint := nv
	if hint > 1<<20 {
		hint = 1 << 20
	}
	b := NewBuilder(hint, hint*2)
	for i := 0; i < nv; i++ {
		s, err := line()
		if err != nil {
			return nil, fmt.Errorf("roadnet: vertex %d: %w", i, err)
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, fmt.Errorf("roadnet: vertex %d: bad line %q", i, s)
		}
		x, err1 := strconv.ParseFloat(fields[0], 64)
		y, err2 := strconv.ParseFloat(fields[1], 64)
		if err1 != nil || err2 != nil ||
			math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("roadnet: vertex %d: bad coordinates %q", i, s)
		}
		b.AddVertex(geo.Point{X: x, Y: y})
	}

	eline, err := line()
	if err != nil {
		return nil, err
	}
	var ne int
	if _, err := fmt.Sscanf(eline, "e %d", &ne); err != nil || ne < 0 {
		return nil, fmt.Errorf("roadnet: bad edge count line %q", eline)
	}
	for i := 0; i < ne; i++ {
		s, err := line()
		if err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
		fields := strings.Fields(s)
		if len(fields) != 4 {
			return nil, fmt.Errorf("roadnet: edge %d: bad line %q", i, s)
		}
		u, err1 := strconv.ParseInt(fields[0], 10, 32)
		v, err2 := strconv.ParseInt(fields[1], 10, 32)
		m, err3 := strconv.ParseFloat(fields[2], 64)
		cl, err4 := strconv.ParseUint(fields[3], 10, 8)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("roadnet: edge %d: bad fields %q", i, s)
		}
		if err := b.AddEdge(VertexID(u), VertexID(v), m, geo.RoadClass(cl)); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
	}
	return b.Build()
}
