package roadnet

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 12, 18
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("roundtrip size mismatch: V %d->%d E %d->%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		p, q := g.Point(v), g2.Point(v)
		if math.Abs(p.X-q.X) > 1e-3 || math.Abs(p.Y-q.Y) > 1e-3 {
			t.Fatalf("vertex %d moved: %v -> %v", v, p, q)
		}
	}
	for _, e := range g.Edges() {
		c1, ok1 := g.EdgeCost(e.U, e.V)
		c2, ok2 := g2.EdgeCost(e.U, e.V)
		if !ok1 || !ok2 || math.Abs(c1-c2) > 1e-3 {
			t.Fatalf("edge (%d,%d) cost changed: %v -> %v", e.U, e.V, c1, c2)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not-a-header\nv 1\n0 0\ne 0\n",
		"urpsm-roadnet 1\nv -3\n",
		"urpsm-roadnet 1\nv 1\nnotanumber 0\ne 0\n",
		"urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 1\n0 5 10 0\n", // bad endpoint
		"urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 1\n0 1 -5 0\n", // bad length
		"urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 2\n0 1 10 0\n", // truncated edges
		"urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 1\n0 1 10\n",   // missing class
	}
	for i, s := range cases {
		if _, err := Read(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
