package roadnet

// Live traffic: epoch-versioned edge weights over an otherwise immutable
// Graph. The paper treats travel time as the cost model (§3.1) but freezes
// it at ingestion; production serving needs weights that change while
// routes are in flight. This file adds the substrate the upper layers
// build on:
//
//   - TrafficUpdate: a multiplicative slowdown rule (factor ≥ 1 relative
//     to the BASE weights) selecting edges by road class, bounding box
//     and/or an explicit edge list.
//   - TrafficProfile: a schedule of updates ("at time T, motorways slow by
//     1.5×"), parsed from the urpsm-traffic text format (FORMATS.md §6) so
//     offline experiments can replay a congestion trace.
//   - Overlay: the mutable weight state. Each Apply sets the multipliers
//     of the matched edges, advances a monotone epoch counter and freezes
//     a new immutable Graph snapshot sharing the topology arrays of the
//     base — only the cost array is fresh, so a snapshot costs O(|E|)
//     floats and every existing Graph consumer (oracles, simulators)
//     works on it unchanged.
//
// The factor ≥ 1 invariant is load-bearing: edge costs never drop below
// the base graph's, and the base costs satisfy cost ≥ euclid/MaxSpeed by
// construction, so every Euclidean travel-time lower bound (the decision
// phase of pruneGreedyDP, the candidate radius of Fleet.Candidates)
// remains admissible at every epoch. Congestion easing is expressed by
// setting a smaller factor (down to 1), never by going below the base
// speed. See DESIGN.md §11.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// MaxTrafficFactor bounds a slowdown multiplier; beyond it an edge is
// effectively closed and the value is almost certainly a typo.
const MaxTrafficFactor = 1000

// TrafficUpdate is one slowdown rule: set the weight multiplier of every
// matched edge to Factor (relative to the base graph, not cumulatively).
// Selectors combine with AND; an absent selector matches everything, so
// the zero-selector update {Factor: 1} resets the whole network. The JSON
// form is the body element of POST /v1/traffic (FORMATS.md §6).
type TrafficUpdate struct {
	// Factor multiplies the base travel time of matched edges; must be in
	// [1, MaxTrafficFactor]. 1 restores base speed.
	Factor float64 `json:"factor"`
	// Class restricts the rule to one road class
	// (motorway|arterial|collector|residential); empty matches all.
	Class string `json:"class,omitempty"`
	// BBox restricts the rule to edges with both endpoints inside the
	// axis-aligned box [minX minY maxX maxY] (graph coordinates, meters);
	// empty matches all. Any other length is invalid.
	BBox []float64 `json:"bbox,omitempty"`
	// Edges restricts the rule to the listed undirected edges [u v];
	// empty matches all. A listed pair that is not an edge of the graph
	// is invalid.
	Edges [][2]int64 `json:"edges,omitempty"`
}

// Validate checks the update against g without applying it.
func (u *TrafficUpdate) Validate(g *Graph) error {
	if math.IsNaN(u.Factor) || u.Factor < 1 || u.Factor > MaxTrafficFactor {
		return fmt.Errorf("roadnet: traffic factor %v outside [1,%d]", u.Factor, MaxTrafficFactor)
	}
	if u.Class != "" {
		if _, err := geo.ParseRoadClass(u.Class); err != nil {
			return err
		}
	}
	switch len(u.BBox) {
	case 0:
	case 4:
		for _, v := range u.BBox {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("roadnet: non-finite traffic bbox %v", u.BBox)
			}
		}
		if u.BBox[0] > u.BBox[2] || u.BBox[1] > u.BBox[3] {
			return fmt.Errorf("roadnet: inverted traffic bbox %v", u.BBox)
		}
	default:
		return fmt.Errorf("roadnet: traffic bbox needs 4 values [minX minY maxX maxY], got %d", len(u.BBox))
	}
	nv := int64(g.NumVertices())
	for _, e := range u.Edges {
		if e[0] < 0 || e[0] >= nv || e[1] < 0 || e[1] >= nv {
			return fmt.Errorf("roadnet: traffic edge (%d,%d) out of range [0,%d)", e[0], e[1], nv)
		}
		if _, ok := g.EdgeCost(VertexID(e[0]), VertexID(e[1])); !ok {
			return fmt.Errorf("roadnet: traffic edge (%d,%d) does not exist", e[0], e[1])
		}
	}
	return nil
}

// ValidateTrafficUpdates checks a whole batch against g; the serve layer
// runs it before touching any state so a bad request cannot half-apply.
func ValidateTrafficUpdates(g *Graph, ups []TrafficUpdate) error {
	if len(ups) == 0 {
		return fmt.Errorf("roadnet: empty traffic update")
	}
	for i := range ups {
		if err := ups[i].Validate(g); err != nil {
			return fmt.Errorf("update %d: %w", i, err)
		}
	}
	return nil
}

// TrafficEvent schedules a batch of updates at one simulation time.
type TrafficEvent struct {
	At      float64
	Updates []TrafficUpdate
}

// TrafficProfile is a time-ordered congestion trace. Events are applied
// atomically in order; Overlay.Apply of each event's batch advances the
// epoch by one.
type TrafficProfile struct {
	Events []TrafficEvent
}

// Validate checks every event against g and that event times are finite,
// non-negative and strictly increasing.
func (p *TrafficProfile) Validate(g *Graph) error {
	prev := math.Inf(-1)
	for i := range p.Events {
		e := &p.Events[i]
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("roadnet: traffic event %d at bad time %v", i, e.At)
		}
		if e.At <= prev {
			return fmt.Errorf("roadnet: traffic event %d time %v not after %v", i, e.At, prev)
		}
		prev = e.At
		if err := ValidateTrafficUpdates(g, e.Updates); err != nil {
			return fmt.Errorf("roadnet: traffic event %d: %w", i, err)
		}
	}
	return nil
}

// Overlay is the mutable weight state over an immutable base Graph: a
// per-arc multiplier array and a monotone epoch counter. It is not safe
// for concurrent use; the sim and serve layers apply updates from their
// single mutation point (the event loop / between requests).
type Overlay struct {
	base  *Graph
	mult  []float64 // per-arc multiplier, parallel to base.adjCost
	epoch uint64
	cur   *Graph
}

// NewOverlay wraps base at epoch 0 with all multipliers 1; Graph()
// returns base itself until the first Apply.
func NewOverlay(base *Graph) *Overlay {
	mult := make([]float64, len(base.adjCost))
	for i := range mult {
		mult[i] = 1
	}
	return &Overlay{base: base, mult: mult, cur: base}
}

// Base returns the epoch-0 graph.
func (o *Overlay) Base() *Graph { return o.base }

// Graph returns the current weight snapshot. The returned graph is
// immutable; later Applies produce new snapshots and never mutate it.
func (o *Overlay) Graph() *Graph { return o.cur }

// Epoch returns the number of Apply calls so far.
func (o *Overlay) Epoch() uint64 { return o.epoch }

// ArcCosts returns the current epoch's per-arc cost array (see
// Graph.ArcCosts) — the input a shortest.CCHSkeleton customization
// consumes to re-derive shortcut weights after an Apply.
func (o *Overlay) ArcCosts() []float64 { return o.cur.ArcCosts() }

// Multiplier returns the current weight multiplier of undirected edge
// (u,v), or (0, false) if no such edge exists.
func (o *Overlay) Multiplier(u, v VertexID) (float64, bool) {
	g := o.base
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		if g.adjTo[i] == v {
			return o.mult[i], true
		}
	}
	return 0, false
}

// Apply validates the whole batch, then sets the multiplier of every arc
// matched by each update (later updates win on overlap), bumps the epoch
// and freezes a new snapshot. On error nothing changes. It returns the
// new snapshot, the new epoch and the number of undirected edges whose
// multiplier changed.
func (o *Overlay) Apply(ups []TrafficUpdate) (*Graph, uint64, int, error) {
	if err := ValidateTrafficUpdates(o.base, ups); err != nil {
		return nil, 0, 0, err
	}
	g := o.base
	changedArcs := 0
	for i := range ups {
		u := &ups[i]
		var class geo.RoadClass
		if u.Class != "" {
			class, _ = geo.ParseRoadClass(u.Class)
		}
		var box geo.BBox
		if len(u.BBox) == 4 {
			box = geo.BBox{Min: geo.Point{X: u.BBox[0], Y: u.BBox[1]}, Max: geo.Point{X: u.BBox[2], Y: u.BBox[3]}}
		}
		if u.Class == "" && len(u.BBox) == 0 && len(u.Edges) > 0 {
			// Edge-only rule: touch just the listed endpoints' adjacency
			// (O(deg) per edge) instead of scanning every arc — a profile
			// of thousands of per-edge rules would otherwise make each
			// Apply O(rules·|E|).
			for _, e := range u.Edges {
				changedArcs += o.setArcMult(VertexID(e[0]), VertexID(e[1]), u.Factor)
				changedArcs += o.setArcMult(VertexID(e[1]), VertexID(e[0]), u.Factor)
			}
			continue
		}
		var edgeSet map[uint64]bool
		if len(u.Edges) > 0 {
			edgeSet = make(map[uint64]bool, len(u.Edges))
			for _, e := range u.Edges {
				edgeSet[edgeKey(VertexID(e[0]), VertexID(e[1]))] = true
			}
		}
		for v := VertexID(0); int(v) < g.NumVertices(); v++ {
			for a := g.adjStart[v]; a < g.adjStart[v+1]; a++ {
				if u.Class != "" && g.adjClass[a] != class {
					continue
				}
				if len(u.BBox) == 4 && !(box.Contains(g.pts[v]) && box.Contains(g.pts[g.adjTo[a]])) {
					continue
				}
				if edgeSet != nil && !edgeSet[edgeKey(v, g.adjTo[a])] {
					continue
				}
				if o.mult[a] != u.Factor {
					o.mult[a] = u.Factor
					changedArcs++
				}
			}
		}
	}
	costs := make([]float64, len(g.adjCost))
	for i := range costs {
		costs[i] = g.adjCost[i] * o.mult[i]
	}
	o.epoch++
	o.cur = g.reweighted(costs, o.epoch)
	return o.cur, o.epoch, changedArcs / 2, nil
}

// setArcMult sets the multiplier of arc (u,v), returning 1 if it changed.
func (o *Overlay) setArcMult(u, v VertexID, factor float64) int {
	g := o.base
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		if g.adjTo[i] == v {
			if o.mult[i] != factor {
				o.mult[i] = factor
				return 1
			}
			return 0
		}
	}
	return 0
}

// edgeKey is a direction-independent key for an undirected edge.
func edgeKey(u, v VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// reweighted returns a snapshot of g with the given arc costs, sharing
// every other array. costs must be parallel to g's arc order.
func (g *Graph) reweighted(costs []float64, epoch uint64) *Graph {
	ng := *g
	ng.adjCost = costs
	ng.weightEpoch = epoch
	return &ng
}

// WeightEpoch returns the overlay epoch this snapshot's costs belong to;
// 0 for a freshly built graph.
func (g *Graph) WeightEpoch() uint64 { return g.weightEpoch }

// The urpsm-traffic text format is line-oriented (FORMATS.md §6):
//
//	urpsm-traffic 1
//	# comment
//	at <t> scale <f> [class <name>] [bbox <minX> <minY> <maxX> <maxY>]
//	at <t> edge <u> <v> <f>
//	at <t> clear
//
// Lines sharing the same (non-decreasing) time t form one event. "clear"
// resets every multiplier to 1.

const trafficHeader = "urpsm-traffic 1"

// maxTrafficRules clamps how many rules a profile may carry; a congestion
// trace is a handful of scheduled changes, so anything near this limit is
// garbage (and a fuzzer should not be able to force huge allocations).
const maxTrafficRules = 1 << 16

// ReadTrafficProfile parses the urpsm-traffic text format. The profile is
// validated against g (vertex ranges, edge existence, factor bounds).
func ReadTrafficProfile(r io.Reader, g *Graph) (*TrafficProfile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	headerSeen := false
	p := &TrafficProfile{}
	rules := 0
	for sc.Scan() {
		lineNo++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if !headerSeen {
			if s != trafficHeader {
				return nil, fmt.Errorf("roadnet: bad traffic header %q", s)
			}
			headerSeen = true
			continue
		}
		rules++
		if rules > maxTrafficRules {
			return nil, fmt.Errorf("roadnet: traffic profile exceeds %d rules", maxTrafficRules)
		}
		f := strings.Fields(s)
		if len(f) < 3 || f[0] != "at" {
			return nil, fmt.Errorf("roadnet: traffic line %d: want \"at <t> ...\", got %q", lineNo, s)
		}
		at, err := strconv.ParseFloat(f[1], 64)
		if err != nil || math.IsNaN(at) || math.IsInf(at, 0) || at < 0 {
			return nil, fmt.Errorf("roadnet: traffic line %d: bad time %q", lineNo, f[1])
		}
		var up TrafficUpdate
		switch f[2] {
		case "scale":
			if len(f) < 4 {
				return nil, fmt.Errorf("roadnet: traffic line %d: scale needs a factor", lineNo)
			}
			up.Factor, err = strconv.ParseFloat(f[3], 64)
			if err != nil {
				return nil, fmt.Errorf("roadnet: traffic line %d: bad factor %q", lineNo, f[3])
			}
			rest := f[4:]
			for len(rest) > 0 {
				switch rest[0] {
				case "class":
					if len(rest) < 2 {
						return nil, fmt.Errorf("roadnet: traffic line %d: class needs a name", lineNo)
					}
					up.Class = rest[1]
					rest = rest[2:]
				case "bbox":
					if len(rest) < 5 {
						return nil, fmt.Errorf("roadnet: traffic line %d: bbox needs 4 values", lineNo)
					}
					up.BBox = make([]float64, 4)
					for i := 0; i < 4; i++ {
						up.BBox[i], err = strconv.ParseFloat(rest[1+i], 64)
						if err != nil {
							return nil, fmt.Errorf("roadnet: traffic line %d: bad bbox value %q", lineNo, rest[1+i])
						}
					}
					rest = rest[5:]
				default:
					return nil, fmt.Errorf("roadnet: traffic line %d: unknown selector %q", lineNo, rest[0])
				}
			}
		case "edge":
			if len(f) != 6 {
				return nil, fmt.Errorf("roadnet: traffic line %d: want \"at <t> edge <u> <v> <f>\"", lineNo)
			}
			u, err1 := strconv.ParseInt(f[3], 10, 32)
			v, err2 := strconv.ParseInt(f[4], 10, 32)
			fac, err3 := strconv.ParseFloat(f[5], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("roadnet: traffic line %d: bad edge rule %q", lineNo, s)
			}
			up.Factor = fac
			up.Edges = [][2]int64{{u, v}}
		case "clear":
			if len(f) != 3 {
				return nil, fmt.Errorf("roadnet: traffic line %d: clear takes no arguments", lineNo)
			}
			up.Factor = 1
		default:
			return nil, fmt.Errorf("roadnet: traffic line %d: unknown rule %q", lineNo, f[2])
		}
		n := len(p.Events)
		switch {
		case n > 0 && p.Events[n-1].At == at:
			p.Events[n-1].Updates = append(p.Events[n-1].Updates, up)
		case n > 0 && at < p.Events[n-1].At:
			return nil, fmt.Errorf("roadnet: traffic line %d: time %v before previous event %v", lineNo, at, p.Events[n-1].At)
		default:
			p.Events = append(p.Events, TrafficEvent{At: at, Updates: []TrafficUpdate{up}})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !headerSeen {
		return nil, io.ErrUnexpectedEOF
	}
	if err := p.Validate(g); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteTrafficProfile serializes p in the text format; ReadTrafficProfile
// of the output reproduces p.
func WriteTrafficProfile(w io.Writer, p *TrafficProfile) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, trafficHeader)
	for _, e := range p.Events {
		for _, u := range e.Updates {
			if len(u.Edges) > 0 {
				for _, ed := range u.Edges {
					fmt.Fprintf(bw, "at %g edge %d %d %g\n", e.At, ed[0], ed[1], u.Factor)
				}
				continue
			}
			if u.Factor == 1 && u.Class == "" && len(u.BBox) == 0 {
				fmt.Fprintf(bw, "at %g clear\n", e.At)
				continue
			}
			fmt.Fprintf(bw, "at %g scale %g", e.At, u.Factor)
			if u.Class != "" {
				fmt.Fprintf(bw, " class %s", u.Class)
			}
			if len(u.BBox) == 4 {
				fmt.Fprintf(bw, " bbox %g %g %g %g", u.BBox[0], u.BBox[1], u.BBox[2], u.BBox[3])
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
