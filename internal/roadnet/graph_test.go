package roadnet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
)

// tinyGraph builds the 4-vertex diamond used across tests:
//
//	0 --100m-- 1
//	|          |
//	200m      100m
//	|          |
//	2 --100m-- 3
func tinyGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4, 4)
	b.AddVertex(geo.Point{X: 0, Y: 100})
	b.AddVertex(geo.Point{X: 100, Y: 100})
	b.AddVertex(geo.Point{X: 0, Y: 0})
	b.AddVertex(geo.Point{X: 100, Y: 0})
	mustAdd := func(u, v VertexID, m float64) {
		t.Helper()
		if err := b.AddEdge(u, v, m, geo.Residential); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 100)
	mustAdd(0, 2, 200)
	mustAdd(1, 3, 100)
	mustAdd(2, 3, 100)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := tinyGraph(t)
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 2 || g.Degree(3) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	cost, ok := g.EdgeCost(0, 1)
	if !ok {
		t.Fatal("edge (0,1) missing")
	}
	want := geo.Residential.TravelTime(100)
	if math.Abs(cost-want) > 1e-9 {
		t.Fatalf("cost=%v want %v", cost, want)
	}
	if _, ok := g.EdgeCost(0, 3); ok {
		t.Fatal("edge (0,3) should not exist")
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := tinyGraph(t)
	count := 0
	g.Neighbors(0, func(to VertexID, cost float64) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d arcs", count)
	}
}

func TestEdgesEachOnce(t *testing.T) {
	g := tinyGraph(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("edges=%d", len(edges))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Fatalf("edge not canonical: %+v", e)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{X: 1})
	if err := b.AddEdge(0, 0, 1, geo.Residential); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(0, 5, 1, geo.Residential); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := b.AddEdge(0, 1, -3, geo.Residential); err == nil {
		t.Error("negative length accepted")
	}
	if err := b.AddEdge(0, 1, math.Inf(1), geo.Residential); err == nil {
		t.Error("infinite length accepted")
	}
	if err := b.AddEdgeEuclid(0, 1, 0.5, geo.Residential); err == nil {
		t.Error("detour < 1 accepted")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddVertex(geo.Point{})
	b.AddVertex(geo.Point{X: 1})
	b.AddEdge(0, 1, 1, geo.Residential)
	b.AddEdge(1, 0, 2, geo.Residential) // same undirected edge
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge not rejected")
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	if _, err := NewBuilder(0, 0).Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(5, 2)
	for i := 0; i < 5; i++ {
		b.AddVertex(geo.Point{X: float64(i)})
	}
	b.AddEdge(0, 1, 1, geo.Residential)
	b.AddEdge(2, 3, 1, geo.Residential)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	label, nc := g.ConnectedComponents()
	if nc != 3 {
		t.Fatalf("components=%d want 3", nc)
	}
	if label[0] != label[1] || label[2] != label[3] || label[0] == label[2] || label[4] == label[0] {
		t.Fatalf("labels=%v", label)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	lc, remap, err := g.LargestComponent()
	if err != nil {
		t.Fatal(err)
	}
	if lc.NumVertices() != 2 || lc.NumEdges() != 1 {
		t.Fatalf("largest component V=%d E=%d", lc.NumVertices(), lc.NumEdges())
	}
	kept := 0
	for _, m := range remap {
		if m >= 0 {
			kept++
		}
	}
	if kept != 2 {
		t.Fatalf("remap kept %d", kept)
	}
}

func TestEuclidTimeIsLowerBoundOfEdgeCost(t *testing.T) {
	g, err := Generate(GenConfig{
		Rows: 20, Cols: 20, Spacing: 120, Jitter: 0.3, ArterialEvery: 5,
		MotorwayRing: true, RemoveFrac: 0.1, DetourMin: 1.0, DetourMax: 1.4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		lb := g.EuclidTime(e.U, e.V)
		cost, ok := g.EdgeCost(e.U, e.V)
		if !ok {
			t.Fatal("missing edge")
		}
		if lb > cost+1e-9 {
			t.Fatalf("euclid time %v exceeds edge cost %v for %+v", lb, cost, e)
		}
	}
}

func TestGenerateConnectedAndSized(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 30, 40
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("generated graph disconnected")
	}
	if g.NumVertices() < 30*40*8/10 {
		t.Fatalf("too many vertices pruned: %d", g.NumVertices())
	}
	// Must contain several road classes.
	classes := map[geo.RoadClass]int{}
	for _, e := range g.Edges() {
		classes[e.Class]++
	}
	for _, c := range []geo.RoadClass{geo.Motorway, geo.Arterial, geo.Residential} {
		if classes[c] == 0 {
			t.Errorf("no %v edges generated", c)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 15, 15
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.NumVertices(); i++ {
		if a.Point(VertexID(i)) != b.Point(VertexID(i)) {
			t.Fatal("vertex positions differ")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{Rows: 1, Cols: 5, Spacing: 100, DetourMin: 1, DetourMax: 1},
		{Rows: 5, Cols: 5, Spacing: 0, DetourMin: 1, DetourMax: 1},
		{Rows: 5, Cols: 5, Spacing: 100, Jitter: 0.9, DetourMin: 1, DetourMax: 1},
		{Rows: 5, Cols: 5, Spacing: 100, RemoveFrac: 0.9, DetourMin: 1, DetourMax: 1},
		{Rows: 5, Cols: 5, Spacing: 100, DetourMin: 0.5, DetourMax: 1},
		{Rows: 5, Cols: 5, Spacing: 100, DetourMin: 1.5, DetourMax: 1.2},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestCycleGraph(t *testing.T) {
	g, err := CycleGraph(8)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 || g.NumEdges() != 8 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	for v := VertexID(0); v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d)=%d", v, g.Degree(v))
		}
	}
	// Every edge costs exactly 1 second.
	for _, e := range g.Edges() {
		cost, _ := g.EdgeCost(e.U, e.V)
		if math.Abs(cost-1) > 1e-9 {
			t.Fatalf("edge cost=%v want 1", cost)
		}
	}
	if _, err := CycleGraph(2); err == nil {
		t.Fatal("cycle(2) accepted")
	}
}

func TestLineGraph(t *testing.T) {
	g, err := LineGraph(5, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 4 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	cost, _ := g.EdgeCost(1, 2)
	if math.Abs(cost-2.5) > 1e-9 {
		t.Fatalf("edge cost=%v want 2.5", cost)
	}
	if _, err := LineGraph(1, 1); err == nil {
		t.Fatal("line(1) accepted")
	}
}

func TestNearestVertexAndLocator(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Rows, cfg.Cols = 25, 25
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	loc := NewVertexLocator(g, 0)
	rng := rand.New(rand.NewSource(5))
	bb := g.Bounds()
	for i := 0; i < 300; i++ {
		p := geo.Point{
			X: bb.Min.X + rng.Float64()*bb.Width(),
			Y: bb.Min.Y + rng.Float64()*bb.Height(),
		}
		want := g.NearestVertex(p)
		got := loc.Nearest(p)
		// Allow distance ties; require equal distance rather than equal ID.
		if math.Abs(p.Dist(g.Point(want))-p.Dist(g.Point(got))) > 1e-9 {
			t.Fatalf("locator nearest mismatch at %v: got %d (%v) want %d (%v)",
				p, got, p.Dist(g.Point(got)), want, p.Dist(g.Point(want)))
		}
	}
	// Far outside the bounding box must still work.
	far := geo.Point{X: bb.Max.X + 1e5, Y: bb.Max.Y + 1e5}
	if math.Abs(far.Dist(g.Point(loc.Nearest(far)))-far.Dist(g.Point(g.NearestVertex(far)))) > 1e-9 {
		t.Fatal("locator wrong for far point")
	}
}
