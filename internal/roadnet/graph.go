// Package roadnet implements the road-network substrate of the paper
// (Definition 1): an undirected graph whose edges carry a travel cost. We
// use travel time in seconds as the cost, derived from edge length and road
// class speed, matching the paper's simulation setup ("we assign a constant
// speed for each type of road, i.e. 80% of the maximum legal speed limit").
//
// The graph is stored in compressed sparse row (CSR) form: cache-friendly,
// allocation-free to traverse, and immutable after Build. Synthetic city
// generation lives in gen.go and the text (de)serialization in io.go.
package roadnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geo"
)

// VertexID identifies a vertex of the road network. IDs are dense in
// [0, NumVertices).
type VertexID = int32

// Edge is one undirected road segment, reported by Graph.Edges. Cost is
// the current travel time in seconds — under a traffic overlay it already
// includes the epoch's multiplier, so consumers must use it rather than
// re-deriving Class.TravelTime(Meters) (which is the base-weight value).
type Edge struct {
	U, V   VertexID
	Meters float64
	Cost   float64
	Class  geo.RoadClass
}

// Graph is an immutable undirected road network in CSR form. Each
// undirected edge appears twice in the adjacency arrays, once per
// direction. Costs are travel times in seconds.
type Graph struct {
	pts      []geo.Point
	adjStart []int32 // len NumVertices+1; arc range of vertex v is [adjStart[v], adjStart[v+1])
	adjTo    []VertexID
	adjCost  []float64 // seconds
	adjLen   []float64 // meters
	adjClass []geo.RoadClass
	numEdges int
	bbox     geo.BBox
	// weightEpoch identifies the traffic-overlay epoch this snapshot's
	// costs belong to (traffic.go); 0 for a freshly built graph.
	weightEpoch uint64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns the number of undirected edges |E|.
func (g *Graph) NumEdges() int { return g.numEdges }

// Point returns the planar coordinates of vertex v in meters.
func (g *Graph) Point(v VertexID) geo.Point { return g.pts[v] }

// Bounds returns the bounding box of all vertices.
func (g *Graph) Bounds() geo.BBox { return g.bbox }

// Euclid returns the straight-line distance between vertices u and v in
// meters.
func (g *Graph) Euclid(u, v VertexID) float64 { return g.pts[u].Dist(g.pts[v]) }

// EuclidTime returns the Euclidean travel-time lower bound between u and v
// in seconds: straight-line distance divided by the network's maximum road
// speed. For any u, v it never exceeds the shortest-path travel time, which
// is what the decision phase of pruneGreedyDP requires (paper §5.1).
func (g *Graph) EuclidTime(u, v VertexID) float64 {
	return g.pts[u].Dist(g.pts[v]) / geo.MaxSpeed()
}

// EuclidTimePoint is EuclidTime with an arbitrary source point instead of a
// vertex; used when lower-bounding from a worker position.
func (g *Graph) EuclidTimePoint(p geo.Point, v VertexID) float64 {
	return p.Dist(g.pts[v]) / geo.MaxSpeed()
}

// Degree returns the number of incident arcs of v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// Neighbors calls fn for every arc (v, to); cost is the travel time in
// seconds. Iteration stops early if fn returns false.
func (g *Graph) Neighbors(v VertexID, fn func(to VertexID, cost float64) bool) {
	for i := g.adjStart[v]; i < g.adjStart[v+1]; i++ {
		if !fn(g.adjTo[i], g.adjCost[i]) {
			return
		}
	}
}

// Arcs returns the adjacency slices of v (targets and costs) without
// copying. The slices must not be modified.
func (g *Graph) Arcs(v VertexID) (to []VertexID, cost []float64) {
	lo, hi := g.adjStart[v], g.adjStart[v+1]
	return g.adjTo[lo:hi], g.adjCost[lo:hi]
}

// Edges returns every undirected edge exactly once (U < V).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		for i := g.adjStart[v]; i < g.adjStart[v+1]; i++ {
			if u := g.adjTo[i]; v < u {
				out = append(out, Edge{U: v, V: u, Meters: g.adjLen[i], Cost: g.adjCost[i], Class: g.adjClass[i]})
			}
		}
	}
	return out
}

// ArcCosts returns the graph's per-arc travel-time array in CSR arc
// order (each undirected edge appears twice, once per direction). This
// is the metric a CCH customization consumes: a traffic snapshot shares
// every topology array with its base, so the same arc index addresses
// the same road segment at every epoch. The slice is the graph's own
// storage and must not be modified.
func (g *Graph) ArcCosts() []float64 { return g.adjCost }

// ArcIndex returns the index of arc (u,v) in the CSR arc arrays (the
// order ArcCosts follows), or -1 if no such arc exists.
func (g *Graph) ArcIndex(u, v VertexID) int32 {
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		if g.adjTo[i] == v {
			return i
		}
	}
	return -1
}

// EdgeCost returns the travel time of the direct edge (u,v), or
// (0, false) if no such edge exists.
func (g *Graph) EdgeCost(u, v VertexID) (float64, bool) {
	for i := g.adjStart[u]; i < g.adjStart[u+1]; i++ {
		if g.adjTo[i] == v {
			return g.adjCost[i], true
		}
	}
	return 0, false
}

// NearestVertex returns the vertex closest to p in Euclidean distance.
// It is a linear scan; callers that need many lookups should build a
// VertexLocator.
func (g *Graph) NearestVertex(p geo.Point) VertexID {
	best := VertexID(0)
	bestD := math.Inf(1)
	for v, q := range g.pts {
		if d := p.DistSq(q); d < bestD {
			bestD = d
			best = VertexID(v)
		}
	}
	return best
}

// ConnectedComponents labels every vertex with a component ID and returns
// (labels, componentCount).
func (g *Graph) ConnectedComponents() ([]int32, int) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	var queue []VertexID
	comp := int32(0)
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		queue = append(queue[:0], VertexID(s))
		label[s] = comp
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for i := g.adjStart[v]; i < g.adjStart[v+1]; i++ {
				if u := g.adjTo[i]; label[u] < 0 {
					label[u] = comp
					queue = append(queue, u)
				}
			}
		}
		comp++
	}
	return label, int(comp)
}

// IsConnected reports whether the graph has exactly one connected component
// (and at least one vertex).
func (g *Graph) IsConnected() bool {
	if g.NumVertices() == 0 {
		return false
	}
	_, c := g.ConnectedComponents()
	return c == 1
}

// Builder accumulates vertices and undirected edges and freezes them into a
// Graph. Adding the same edge twice is an error caught at Build time.
type Builder struct {
	pts   []geo.Point
	us    []VertexID
	vs    []VertexID
	lens  []float64
	class []geo.RoadClass
}

// NewBuilder returns an empty Builder with capacity hints.
func NewBuilder(vertexHint, edgeHint int) *Builder {
	return &Builder{
		pts:   make([]geo.Point, 0, vertexHint),
		us:    make([]VertexID, 0, edgeHint),
		vs:    make([]VertexID, 0, edgeHint),
		lens:  make([]float64, 0, edgeHint),
		class: make([]geo.RoadClass, 0, edgeHint),
	}
}

// AddVertex appends a vertex at p and returns its ID.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	b.pts = append(b.pts, p)
	return VertexID(len(b.pts) - 1)
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.pts) }

// AddEdge appends an undirected edge of the given length (meters) and road
// class. A non-positive or non-finite length, a self-loop, or an
// out-of-range endpoint is an error.
func (b *Builder) AddEdge(u, v VertexID, meters float64, class geo.RoadClass) error {
	n := VertexID(len(b.pts))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("roadnet: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("roadnet: self-loop at vertex %d", u)
	}
	if !(meters > 0) || math.IsInf(meters, 0) {
		return fmt.Errorf("roadnet: edge (%d,%d) has invalid length %v", u, v, meters)
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.lens = append(b.lens, meters)
	b.class = append(b.class, class)
	return nil
}

// AddEdgeEuclid adds an edge whose length is the Euclidean distance between
// its endpoints multiplied by detour (detour ≥ 1 keeps Euclidean distances
// valid lower bounds).
func (b *Builder) AddEdgeEuclid(u, v VertexID, detour float64, class geo.RoadClass) error {
	if detour < 1 {
		return fmt.Errorf("roadnet: detour factor %v < 1 would break Euclidean lower bounds", detour)
	}
	d := b.pts[u].Dist(b.pts[v])
	if d == 0 {
		d = 0.1 // coincident synthetic vertices: keep a tiny positive length
	}
	return b.AddEdge(u, v, d*detour, class)
}

// Build freezes the builder into an immutable Graph. Duplicate undirected
// edges are rejected.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.pts)
	if n == 0 {
		return nil, fmt.Errorf("roadnet: graph has no vertices")
	}
	m := len(b.us)
	type arc struct {
		from, to VertexID
		len      float64
		class    geo.RoadClass
	}
	arcs := make([]arc, 0, 2*m)
	for i := 0; i < m; i++ {
		arcs = append(arcs,
			arc{b.us[i], b.vs[i], b.lens[i], b.class[i]},
			arc{b.vs[i], b.us[i], b.lens[i], b.class[i]})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].from != arcs[j].from {
			return arcs[i].from < arcs[j].from
		}
		return arcs[i].to < arcs[j].to
	})
	for i := 1; i < len(arcs); i++ {
		if arcs[i].from == arcs[i-1].from && arcs[i].to == arcs[i-1].to {
			return nil, fmt.Errorf("roadnet: duplicate edge (%d,%d)", arcs[i].from, arcs[i].to)
		}
	}
	g := &Graph{
		pts:      append([]geo.Point(nil), b.pts...),
		adjStart: make([]int32, n+1),
		adjTo:    make([]VertexID, len(arcs)),
		adjCost:  make([]float64, len(arcs)),
		adjLen:   make([]float64, len(arcs)),
		adjClass: make([]geo.RoadClass, len(arcs)),
		numEdges: m,
		bbox:     geo.NewBBox(b.pts),
	}
	for _, a := range arcs {
		g.adjStart[a.from+1]++
	}
	for v := 0; v < n; v++ {
		g.adjStart[v+1] += g.adjStart[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.adjStart[:n])
	for _, a := range arcs {
		i := cursor[a.from]
		cursor[a.from]++
		g.adjTo[i] = a.to
		g.adjLen[i] = a.len
		g.adjClass[i] = a.class
		g.adjCost[i] = a.class.TravelTime(a.len)
	}
	return g, nil
}

// LargestComponent returns the subgraph induced by the largest connected
// component of g, together with a mapping old→new vertex ID (-1 for dropped
// vertices). If g is already connected it still returns a fresh graph.
func (g *Graph) LargestComponent() (*Graph, []int32, error) {
	label, nc := g.ConnectedComponents()
	sizes := make([]int, nc)
	for _, l := range label {
		sizes[l]++
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	remap := make([]int32, g.NumVertices())
	b := NewBuilder(sizes[best], g.NumEdges())
	for v := 0; v < g.NumVertices(); v++ {
		if int(label[v]) == best {
			remap[v] = b.AddVertex(g.pts[v])
		} else {
			remap[v] = -1
		}
	}
	for _, e := range g.Edges() {
		if remap[e.U] >= 0 && remap[e.V] >= 0 {
			if err := b.AddEdge(remap[e.U], remap[e.V], e.Meters, e.Class); err != nil {
				return nil, nil, err
			}
		}
	}
	ng, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return ng, remap, nil
}

// VertexLocator answers nearest-vertex queries in roughly O(1) via a
// uniform cell grid over the graph's bounding box.
type VertexLocator struct {
	g       *Graph
	cell    float64
	cols    int
	rows    int
	buckets [][]VertexID
	min     geo.Point
}

// NewVertexLocator builds a locator with the given cell size in meters
// (values near the average vertex spacing work well; <=0 picks a default
// from the vertex density).
func NewVertexLocator(g *Graph, cellMeters float64) *VertexLocator {
	b := g.Bounds()
	if cellMeters <= 0 {
		area := math.Max(b.Width()*b.Height(), 1)
		cellMeters = math.Max(10, math.Sqrt(area/float64(g.NumVertices()+1))*2)
	}
	cols := int(b.Width()/cellMeters) + 1
	rows := int(b.Height()/cellMeters) + 1
	l := &VertexLocator{
		g: g, cell: cellMeters, cols: cols, rows: rows,
		buckets: make([][]VertexID, cols*rows),
		min:     b.Min,
	}
	for v := VertexID(0); int(v) < g.NumVertices(); v++ {
		i := l.bucketIndex(g.Point(v))
		l.buckets[i] = append(l.buckets[i], v)
	}
	return l
}

func (l *VertexLocator) bucketIndex(p geo.Point) int {
	cx := int((p.X - l.min.X) / l.cell)
	cy := int((p.Y - l.min.Y) / l.cell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= l.cols {
		cx = l.cols - 1
	}
	if cy >= l.rows {
		cy = l.rows - 1
	}
	return cy*l.cols + cx
}

// Nearest returns the vertex nearest to p, searching outward ring by ring.
func (l *VertexLocator) Nearest(p geo.Point) VertexID {
	cx := int((p.X - l.min.X) / l.cell)
	cy := int((p.Y - l.min.Y) / l.cell)
	best := VertexID(-1)
	bestD := math.Inf(1)
	maxRing := l.cols
	if l.rows > maxRing {
		maxRing = l.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate is found, one extra ring guarantees correctness
		// (a nearer vertex can only hide in the immediately adjacent ring).
		found := best >= 0
		for dy := -ring; dy <= ring; dy++ {
			for dx := -ring; dx <= ring; dx++ {
				if dx > -ring && dx < ring && dy > -ring && dy < ring {
					continue // interior already scanned in earlier rings
				}
				x, y := cx+dx, cy+dy
				if x < 0 || y < 0 || x >= l.cols || y >= l.rows {
					continue
				}
				for _, v := range l.buckets[y*l.cols+x] {
					if d := p.DistSq(l.g.Point(v)); d < bestD {
						bestD = d
						best = v
					}
				}
			}
		}
		if found {
			break
		}
	}
	if best < 0 {
		return l.g.NearestVertex(p) // empty grid region: fall back to scan
	}
	return best
}
