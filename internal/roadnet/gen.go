package roadnet

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
)

// GenConfig controls the synthetic city generator. The generator produces a
// perturbed grid street network with periodic arterials and an optional
// motorway ring, which stands in for the OpenStreetMap extracts used in the
// paper (see DESIGN.md §4 for the substitution rationale).
type GenConfig struct {
	Rows, Cols    int     // grid dimensions; vertices = Rows*Cols before pruning
	Spacing       float64 // base block edge length in meters
	Jitter        float64 // vertex position noise as a fraction of Spacing (0..0.45)
	ArterialEvery int     // every k-th row/column becomes an arterial (0 = none)
	MotorwayRing  bool    // add a motorway ring along the outer boundary
	RemoveFrac    float64 // fraction of residential edges randomly removed (0..0.6)
	DetourMin     float64 // min edge length multiplier over Euclidean (≥1)
	DetourMax     float64 // max edge length multiplier over Euclidean
	Seed          int64
}

// Validate reports the first invalid field of c.
func (c GenConfig) Validate() error {
	switch {
	case c.Rows < 2 || c.Cols < 2:
		return fmt.Errorf("roadnet: grid must be at least 2x2, got %dx%d", c.Rows, c.Cols)
	case c.Spacing <= 0:
		return fmt.Errorf("roadnet: spacing must be positive, got %v", c.Spacing)
	case c.Jitter < 0 || c.Jitter > 0.45:
		return fmt.Errorf("roadnet: jitter must be in [0,0.45], got %v", c.Jitter)
	case c.RemoveFrac < 0 || c.RemoveFrac > 0.6:
		return fmt.Errorf("roadnet: removeFrac must be in [0,0.6], got %v", c.RemoveFrac)
	case c.DetourMin < 1:
		return fmt.Errorf("roadnet: detourMin must be >= 1, got %v", c.DetourMin)
	case c.DetourMax < c.DetourMin:
		return fmt.Errorf("roadnet: detourMax %v < detourMin %v", c.DetourMax, c.DetourMin)
	}
	return nil
}

// DefaultGenConfig returns a mid-size city (≈10k vertices) configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Rows: 100, Cols: 100,
		Spacing:       150,
		Jitter:        0.25,
		ArterialEvery: 8,
		MotorwayRing:  true,
		RemoveFrac:    0.08,
		DetourMin:     1.05,
		DetourMax:     1.35,
		Seed:          1,
	}
}

// Generate builds a synthetic city road network from c. The result is
// always connected (the largest component is extracted after random edge
// removal) and every edge length is at least the Euclidean distance between
// its endpoints, so Euclidean travel-time lower bounds are valid.
func Generate(c GenConfig) (*Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	b := NewBuilder(c.Rows*c.Cols, 2*c.Rows*c.Cols)

	id := func(r, col int) VertexID { return VertexID(r*c.Cols + col) }
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			jx := (rng.Float64()*2 - 1) * c.Jitter * c.Spacing
			jy := (rng.Float64()*2 - 1) * c.Jitter * c.Spacing
			b.AddVertex(geo.Point{
				X: float64(col)*c.Spacing + jx,
				Y: float64(r)*c.Spacing + jy,
			})
		}
	}

	isArterialRow := func(r int) bool {
		return c.ArterialEvery > 0 && r%c.ArterialEvery == 0
	}
	onRing := func(r, col int) bool {
		return c.MotorwayRing && (r == 0 || r == c.Rows-1 || col == 0 || col == c.Cols-1)
	}
	classify := func(r1, c1, r2, c2 int) geo.RoadClass {
		if onRing(r1, c1) && onRing(r2, c2) {
			return geo.Motorway
		}
		// Horizontal edges on an arterial row, vertical on an arterial column.
		if r1 == r2 && isArterialRow(r1) {
			return geo.Arterial
		}
		if c1 == c2 && isArterialRow(c1) {
			return geo.Arterial
		}
		if r1 == r2 && c.ArterialEvery > 0 && r1%c.ArterialEvery == c.ArterialEvery/2 {
			return geo.Collector
		}
		if c1 == c2 && c.ArterialEvery > 0 && c1%c.ArterialEvery == c.ArterialEvery/2 {
			return geo.Collector
		}
		return geo.Residential
	}

	detour := func() float64 {
		return c.DetourMin + rng.Float64()*(c.DetourMax-c.DetourMin)
	}
	for r := 0; r < c.Rows; r++ {
		for col := 0; col < c.Cols; col++ {
			if col+1 < c.Cols {
				class := classify(r, col, r, col+1)
				if class != geo.Residential || rng.Float64() >= c.RemoveFrac {
					if err := b.AddEdgeEuclid(id(r, col), id(r, col+1), detour(), class); err != nil {
						return nil, err
					}
				}
			}
			if r+1 < c.Rows {
				class := classify(r, col, r+1, col)
				if class != geo.Residential || rng.Float64() >= c.RemoveFrac {
					if err := b.AddEdgeEuclid(id(r, col), id(r+1, col), detour(), class); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if !g.IsConnected() {
		g, _, err = g.LargestComponent()
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// CycleGraph returns the |V|-vertex undirected cycle with unit edge cost
// used by the hardness constructions of §3.3 (Lemmas 1–3). Vertices are
// laid out on a circle so Euclidean lower bounds remain valid; edge lengths
// are scaled so every edge costs exactly one second of travel.
func CycleGraph(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("roadnet: cycle needs at least 3 vertices, got %d", n)
	}
	b := NewBuilder(n, n)
	// Chord length for unit travel time at residential speed; circumradius
	// chosen so adjacent vertices are exactly that far apart.
	unit := geo.Residential.Speed() // meters per 1-second edge
	radius := unit / (2 * math.Sin(math.Pi/float64(n)))
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		b.AddVertex(geo.Point{X: radius * math.Cos(theta), Y: radius * math.Sin(theta)})
	}
	for i := 0; i < n; i++ {
		u, v := VertexID(i), VertexID((i+1)%n)
		if err := b.AddEdge(u, v, unit, geo.Residential); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// LineGraph returns an n-vertex path with the given uniform edge travel
// time in seconds; handy for constructing exact, hand-checkable test
// instances.
func LineGraph(n int, edgeSeconds float64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("roadnet: line needs at least 2 vertices, got %d", n)
	}
	meters := edgeSeconds * geo.Residential.Speed()
	b := NewBuilder(n, n-1)
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{X: float64(i) * meters, Y: 0})
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(VertexID(i), VertexID(i+1), meters, geo.Residential); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
