package roadnet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genConfigGen drives testing/quick with valid random generator configs.
type genConfigGen struct {
	Rows, Cols uint8
	Jitter     float64
	RemoveFrac float64
	Arterial   uint8
	Ring       bool
	Seed       int64
}

// Generate implements quick.Generator.
func (genConfigGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genConfigGen{
		Rows:       uint8(4 + r.Intn(20)),
		Cols:       uint8(4 + r.Intn(20)),
		Jitter:     r.Float64() * 0.45,
		RemoveFrac: r.Float64() * 0.5,
		Arterial:   uint8(r.Intn(9)),
		Ring:       r.Intn(2) == 0,
		Seed:       r.Int63(),
	})
}

func (g genConfigGen) config() GenConfig {
	return GenConfig{
		Rows: int(g.Rows), Cols: int(g.Cols),
		Spacing: 120, Jitter: g.Jitter,
		ArterialEvery: int(g.Arterial), MotorwayRing: g.Ring,
		RemoveFrac: g.RemoveFrac,
		DetourMin:  1.0, DetourMax: 1.5,
		Seed: g.Seed,
	}
}

// TestQuickGeneratedGraphsWellFormed: any valid config yields a connected
// graph whose every edge is at least as long as the straight line between
// its endpoints (the Euclidean lower-bound invariant the decision phase
// needs) and whose CSR structure is internally consistent.
func TestQuickGeneratedGraphsWellFormed(t *testing.T) {
	prop := func(gc genConfigGen) bool {
		g, err := Generate(gc.config())
		if err != nil {
			return false
		}
		if !g.IsConnected() || g.NumVertices() == 0 {
			return false
		}
		// CSR symmetry: every arc has its reverse with the same cost.
		for _, e := range g.Edges() {
			c1, ok1 := g.EdgeCost(e.U, e.V)
			c2, ok2 := g.EdgeCost(e.V, e.U)
			if !ok1 || !ok2 || c1 != c2 {
				return false
			}
			if g.EuclidTime(e.U, e.V) > c1+1e-9 {
				return false
			}
			if e.Meters < g.Euclid(e.U, e.V)-1e-9 {
				return false
			}
		}
		// Degrees sum to twice the edge count.
		total := 0
		for v := 0; v < g.NumVertices(); v++ {
			total += g.Degree(VertexID(v))
		}
		return total == 2*g.NumEdges()
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBBoxContainsAllVertices: the graph's bounding box covers every
// vertex (the spatial index relies on this).
func TestQuickBBoxContainsAllVertices(t *testing.T) {
	prop := func(gc genConfigGen) bool {
		g, err := Generate(gc.config())
		if err != nil {
			return false
		}
		b := g.Bounds()
		for v := 0; v < g.NumVertices(); v++ {
			if !b.Contains(g.Point(VertexID(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRoundTripStable: Write→Read→Write produces identical bytes.
func TestQuickRoundTripStable(t *testing.T) {
	prop := func(gc genConfigGen) bool {
		g, err := Generate(gc.config())
		if err != nil {
			return false
		}
		var a, b bytes.Buffer
		if err := Write(&a, g); err != nil {
			return false
		}
		first := a.String()
		g2, err := Read(&a)
		if err != nil {
			return false
		}
		if err := Write(&b, g2); err != nil {
			return false
		}
		return first == b.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
