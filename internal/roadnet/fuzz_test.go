package roadnet

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The parsers in this package consume untrusted files (downloaded DIMACS
// dumps, hand-edited network files). The fuzz contract: malformed input
// returns an error — it never panics, and with a bounded node limit it
// never allocates proportionally to a lying header. `go test` replays the
// seed corpus; run `go test -fuzz FuzzRead ./internal/roadnet` to explore.

func FuzzRead(f *testing.F) {
	// A valid file produced by Write, plus truncations and corruptions.
	g, err := Generate(GenConfig{Rows: 4, Cols: 4, Spacing: 100, Jitter: 0.1,
		DetourMin: 1, DetourMax: 1.2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("urpsm-roadnet 1\nv 3\n0 0\n1 1\n2 2\ne 1\n0 1 5 0\n"))
	f.Add([]byte("urpsm-roadnet 1\nv 99999999999\n"))
	f.Add([]byte("urpsm-roadnet 1\nv 2\n0 0\nNaN Inf\ne 0\n"))
	f.Add([]byte("urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 1\n0 1 -5 0\n"))
	f.Add([]byte("urpsm-roadnet 1\nv 2\n0 0\n1 1\ne 1\n0 9 5 0\n"))
	f.Add([]byte("wrong header\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
		if err == nil && g.NumVertices() == 0 {
			t.Fatal("empty graph without error")
		}
	})
}

func FuzzLoadDIMACS(f *testing.F) {
	readFixture := func(name string) []byte {
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	gr, co := readFixture("sample.gr"), readFixture("sample.co")
	f.Add(gr, co)
	f.Add(gr[:len(gr)/2], co[:len(co)/2])
	// A planar export pair.
	g, err := LineGraph(4, 2)
	if err != nil {
		f.Fatal(err)
	}
	var grB, coB bytes.Buffer
	if err := WriteDIMACS(&grB, &coB, g); err != nil {
		f.Fatal(err)
	}
	f.Add(grB.Bytes(), coB.Bytes())
	f.Add([]byte("p sp 99999999 1\na 1 2 1\n"), []byte("p aux sp co 99999999\nv 99999999 0 0\n"))
	f.Add([]byte("p sp 2 1\na 1 2 NaN\n"), []byte("p aux sp co 2\nv 1 0 0\nv 2 1 1\n"))
	f.Add([]byte(""), []byte(""))
	f.Fuzz(func(t *testing.T, grData, coData []byte) {
		opts := DefaultDIMACSOptions()
		// Bound allocations the way an untrusted ingest should.
		opts.MaxNodes = 1 << 12
		g, stats, err := LoadDIMACS(bytes.NewReader(grData), bytes.NewReader(coData), opts)
		if err != nil {
			return
		}
		if g == nil || stats == nil {
			t.Fatal("nil result without error")
		}
		if g.NumVertices() == 0 {
			t.Fatal("empty graph without error")
		}
		// Loaded edges must keep the Euclidean lower bound the planners
		// rely on, whatever the input claimed.
		for _, e := range g.Edges() {
			if euc := g.Euclid(e.U, e.V); e.Meters < euc-1e-9 {
				t.Fatalf("edge (%d,%d) length %v below Euclidean %v", e.U, e.V, e.Meters, euc)
			}
		}
	})
}

func FuzzReadTrafficProfile(f *testing.F) {
	g, err := Generate(GenConfig{Rows: 4, Cols: 4, Spacing: 100, Jitter: 0.1,
		DetourMin: 1, DetourMax: 1.2, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte("urpsm-traffic 1\nat 600 scale 1.5\nat 600 scale 2 class motorway\nat 900 clear\n"))
	f.Add([]byte("urpsm-traffic 1\n# comment\nat 0 scale 1.25 bbox 0 0 500 500\nat 10 edge 0 1 2\n"))
	f.Add([]byte("urpsm-traffic 1\nat 0 scale 0.5\n"))
	f.Add([]byte("urpsm-traffic 1\nat NaN scale 2\n"))
	f.Add([]byte("urpsm-traffic 1\nat 5 edge 0 99999999999 2\n"))
	f.Add([]byte("urpsm-traffic 1\nat 9 scale Inf class cowpath\n"))
	f.Add([]byte("wrong header\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadTrafficProfile(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil profile without error")
		}
		// Whatever parsed must satisfy the invariants the overlay relies
		// on: validated rules, strictly increasing event times, and every
		// factor in [1, MaxTrafficFactor] so Euclidean lower bounds stay
		// admissible after any Apply.
		if err := p.Validate(g); err != nil {
			t.Fatalf("parsed profile fails validation: %v", err)
		}
		o := NewOverlay(g)
		for _, e := range p.Events {
			cur, _, _, err := o.Apply(e.Updates)
			if err != nil {
				t.Fatalf("parsed event failed to apply: %v", err)
			}
			for _, ed := range cur.Edges() {
				lb := cur.EuclidTime(ed.U, ed.V)
				c, _ := cur.EdgeCost(ed.U, ed.V)
				if lb > c+1e-9 {
					t.Fatalf("epoch %d breaks Euclidean lower bound on edge (%d,%d)", o.Epoch(), ed.U, ed.V)
				}
			}
		}
	})
}
