package roadnet

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/geo"
)

// This file implements ingestion of real road networks in the format of the
// 9th DIMACS Implementation Challenge (http://www.dis.uniroma1.it/~challenge9):
// a `.gr` graph file with `a <u> <v> <w>` arc lines and a `.co` coordinate
// file with `v <id> <lon*1e6> <lat*1e6>` vertex lines. See FORMATS.md §3 for
// the exact accepted subset, including the planar-centimeter dialect that
// WriteDIMACS emits for loss-bounded round trips.

// dimacsPlanarMarker tags files written by WriteDIMACS: coordinates and arc
// weights are planar centimeters rather than geographic microdegrees and
// arbitrary integer weights.
const dimacsPlanarMarker = "c urpsm-planar-cm"

// maxDIMACSNodes bounds the declared node count accepted without an explicit
// DIMACSOptions.MaxNodes, so a malformed header cannot force an unbounded
// allocation. It comfortably covers the full USA road network (24M nodes).
const maxDIMACSNodes = 1 << 26

// DIMACSBox is an axis-aligned subsetting window over the raw coordinates
// of the `.co` file: degrees of longitude/latitude for geographic files,
// planar meters for files carrying the urpsm planar marker.
type DIMACSBox struct {
	MinLon, MinLat float64
	MaxLon, MaxLat float64
}

func (b DIMACSBox) contains(lon, lat float64) bool {
	return lon >= b.MinLon && lon <= b.MaxLon && lat >= b.MinLat && lat <= b.MaxLat
}

// DIMACSOptions controls LoadDIMACS. The zero value is usable but assigns
// every edge the Motorway class; DefaultDIMACSOptions picks the saner
// Arterial default.
type DIMACSOptions struct {
	// MaxNodes keeps only DIMACS node IDs 1..MaxNodes (0 = no limit, bounded
	// by an internal safety cap). Arcs with a dropped endpoint are dropped.
	MaxNodes int
	// Box, when non-nil, keeps only nodes whose raw coordinates fall inside
	// the window (see DIMACSBox for units).
	Box *DIMACSBox
	// Class is the road class assigned to edges without a `c cls` annotation.
	// It determines the speed converting edge length into travel time.
	Class geo.RoadClass
	// ScaleMeters converts arc weights into meters (0 = 1.0, or 0.01 when
	// the file carries the planar-centimeter marker).
	ScaleMeters float64
	// KeepAllComponents skips the largest-connected-component extraction
	// that otherwise runs after filtering.
	KeepAllComponents bool
}

// DefaultDIMACSOptions returns the options used by cmd/urpsm-import when no
// flags override them: no subsetting, Arterial default class, weights in
// meters, largest component extracted.
func DefaultDIMACSOptions() DIMACSOptions {
	return DIMACSOptions{Class: geo.Arterial}
}

// DIMACSStats reports what LoadDIMACS read, dropped and fixed up; it also
// carries the projection that maps further geographic inputs (trip records)
// into the loaded graph's planar frame.
type DIMACSStats struct {
	NodesDeclared int // n of the .gr problem line
	ArcsDeclared  int // m of the .gr problem line
	NodesKept     int // vertices surviving MaxNodes/Box filtering (pre-LCC)
	EdgesKept     int // undirected edges surviving filtering (pre-LCC)
	SelfLoops     int // self-loop arcs skipped
	DroppedArcs   int // arcs dropped because an endpoint was filtered out
	Clamped       int // edges lengthened to the Euclidean lower bound
	Components    int // connected components before LCC extraction
	Proj          geo.Projection
}

// dimacsScanner wraps line-oriented scanning shared by both DIMACS files.
type dimacsScanner struct {
	sc   *bufio.Scanner
	line int
}

func newDIMACSScanner(r io.Reader) *dimacsScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &dimacsScanner{sc: sc}
}

// next returns the next non-empty line, or ("", io.EOF) at end of input.
func (d *dimacsScanner) next() (string, error) {
	for d.sc.Scan() {
		d.line++
		s := strings.TrimSpace(d.sc.Text())
		if s != "" {
			return s, nil
		}
	}
	if err := d.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

func (d *dimacsScanner) errf(format string, args ...interface{}) error {
	return fmt.Errorf("roadnet: dimacs line %d: %s", d.line, fmt.Sprintf(format, args...))
}

// dimacsCoords holds the raw coordinates of the kept node IDs.
type dimacsCoords struct {
	planar  bool
	n       int       // declared node count
	lon     []float64 // raw x: degrees longitude, or planar meters
	lat     []float64 // raw y: degrees latitude, or planar meters
	present []bool
}

// grow extends the coordinate arrays to cover DIMACS id (1-based).
func (c *dimacsCoords) grow(id int) {
	for len(c.present) < id {
		c.lon = append(c.lon, 0)
		c.lat = append(c.lat, 0)
		c.present = append(c.present, false)
	}
}

// readDIMACSCoords parses a `.co` file, keeping only IDs 1..maxNodes.
func readDIMACSCoords(r io.Reader, maxNodes int) (*dimacsCoords, error) {
	d := newDIMACSScanner(r)
	c := &dimacsCoords{n: -1}
	for {
		s, err := d.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch s[0] {
		case 'c':
			if s == dimacsPlanarMarker {
				c.planar = true
			}
		case 'p':
			// "p aux sp co <n>"
			f := strings.Fields(s)
			if c.n >= 0 {
				return nil, d.errf("duplicate problem line %q", s)
			}
			if len(f) != 5 || f[1] != "aux" || f[2] != "sp" || f[3] != "co" {
				return nil, d.errf("bad coordinate problem line %q", s)
			}
			n, err := strconv.Atoi(f[4])
			if err != nil || n <= 0 || n > maxDIMACSNodes {
				return nil, d.errf("bad node count in %q", s)
			}
			c.n = n
		case 'v':
			if c.n < 0 {
				return nil, d.errf("vertex line before problem line")
			}
			f := strings.Fields(s)
			if len(f) != 4 {
				return nil, d.errf("bad vertex line %q", s)
			}
			id, err1 := strconv.Atoi(f[1])
			x, err2 := strconv.ParseInt(f[2], 10, 64)
			y, err3 := strconv.ParseInt(f[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil || id < 1 || id > c.n {
				return nil, d.errf("bad vertex line %q", s)
			}
			if maxNodes > 0 && id > maxNodes {
				continue
			}
			c.grow(id)
			if c.present[id-1] {
				return nil, d.errf("duplicate coordinates for node %d", id)
			}
			if c.planar {
				c.lon[id-1] = float64(x) / 100 // centimeters → meters
				c.lat[id-1] = float64(y) / 100
			} else {
				c.lon[id-1] = float64(x) / 1e6 // microdegrees → degrees
				c.lat[id-1] = float64(y) / 1e6
			}
			c.present[id-1] = true
		default:
			return nil, d.errf("unexpected line %q", s)
		}
	}
	if c.n < 0 {
		return nil, fmt.Errorf("roadnet: dimacs: coordinate file has no problem line")
	}
	return c, nil
}

// LoadDIMACS reads a DIMACS `.gr` graph and its `.co` coordinate file into
// a Graph, applying the subsetting in opts and (unless disabled) extracting
// the largest connected component. Arcs are collapsed into undirected edges
// keeping the minimum weight per endpoint pair; every edge length is clamped
// up to the Euclidean distance between its projected endpoints so the
// graph's Euclidean travel-time lower bounds stay valid (paper §5.1).
//
// Geographic coordinates are projected with an equirectangular projection
// centered on the subset's bounding box; the projection is returned in the
// stats so trip records can be placed in the same frame. Files produced by
// WriteDIMACS are recognized by their planar-centimeter marker and load
// back without projection. See FORMATS.md §3.
func LoadDIMACS(gr, co io.Reader, opts DIMACSOptions) (*Graph, *DIMACSStats, error) {
	if opts.MaxNodes < 0 {
		return nil, nil, fmt.Errorf("roadnet: dimacs: negative MaxNodes")
	}
	coords, err := readDIMACSCoords(co, opts.MaxNodes)
	if err != nil {
		return nil, nil, err
	}
	stats := &DIMACSStats{NodesDeclared: coords.n}

	// Project the kept coordinates into the planar frame. The projection
	// center is the bounding-box center of the nodes that survive Box
	// filtering — centering on the whole file would distort east-west
	// distances of a far-from-center subset (cos(lat) changes with
	// latitude), skewing both the Euclidean lower-bound clamp and later
	// trip map-matching.
	if coords.planar {
		stats.Proj = geo.PlanarProjection()
	} else {
		var raw geo.BBox
		first := true
		for i, ok := range coords.present {
			if !ok {
				continue
			}
			if opts.Box != nil && !opts.Box.contains(coords.lon[i], coords.lat[i]) {
				continue
			}
			p := geo.Point{X: coords.lon[i], Y: coords.lat[i]}
			if first {
				raw = geo.BBox{Min: p, Max: p}
				first = false
			} else {
				raw = raw.Extend(p)
			}
		}
		c := raw.Center()
		stats.Proj = geo.NewProjection(c.Y, c.X)
	}

	// remap: DIMACS id-1 → dense vertex ID, -1 for filtered-out nodes.
	remap := make([]int32, len(coords.present))
	b := NewBuilder(0, 0)
	for i, ok := range coords.present {
		remap[i] = -1
		if !ok {
			continue
		}
		if opts.Box != nil && !opts.Box.contains(coords.lon[i], coords.lat[i]) {
			continue
		}
		remap[i] = b.AddVertex(stats.Proj.Point(coords.lat[i], coords.lon[i]))
	}
	stats.NodesKept = b.NumVertices()
	if stats.NodesKept == 0 {
		return nil, nil, fmt.Errorf("roadnet: dimacs: no nodes survive filtering")
	}

	scale := opts.ScaleMeters
	if scale == 0 {
		scale = 1
	}
	if err := loadDIMACSArcs(gr, coords, remap, scale, opts, stats, b); err != nil {
		return nil, nil, err
	}

	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	_, stats.Components = g.ConnectedComponents()
	if !opts.KeepAllComponents && stats.Components > 1 {
		g, _, err = g.LargestComponent()
		if err != nil {
			return nil, nil, err
		}
	}
	return g, stats, nil
}

// loadDIMACSArcs streams the `.gr` file into the builder, collapsing
// directed arcs into undirected min-weight edges.
func loadDIMACSArcs(r io.Reader, coords *dimacsCoords, remap []int32,
	scale float64, opts DIMACSOptions, stats *DIMACSStats, b *Builder) error {
	d := newDIMACSScanner(r)
	declared := -1
	planarWeights := false
	arcs := 0
	edges := make(map[uint64]int) // unordered dense pair → index into list
	type pending struct {
		u, v   int32
		meters float64
		class  geo.RoadClass
		hasCls bool
	}
	var list []pending
	pairKey := func(u, v int32) uint64 {
		if u > v {
			u, v = v, u
		}
		return uint64(uint32(u))<<32 | uint64(uint32(v))
	}
	mapEndpoint := func(idField string) (int32, bool, error) {
		id, err := strconv.Atoi(idField)
		if err != nil || id < 1 {
			return 0, false, fmt.Errorf("bad node id %q", idField)
		}
		if opts.MaxNodes > 0 && id > opts.MaxNodes {
			return 0, false, nil
		}
		if id > coords.n {
			return 0, false, fmt.Errorf("node id %d exceeds declared count %d", id, coords.n)
		}
		if id > len(remap) || remap[id-1] < 0 {
			if id > len(coords.present) || !coords.present[id-1] {
				// No coordinate line at all: only an error when unfiltered.
				if opts.Box == nil && (opts.MaxNodes == 0 || id <= opts.MaxNodes) {
					return 0, false, fmt.Errorf("node %d has no coordinates", id)
				}
			}
			return 0, false, nil
		}
		return remap[id-1], true, nil
	}

	for {
		s, err := d.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch s[0] {
		case 'c':
			switch {
			case s == dimacsPlanarMarker:
				planarWeights = true
			case strings.HasPrefix(s, "c cls "):
				// "c cls <u> <v> <class>": per-edge road class annotation
				// (urpsm extension, emitted by WriteDIMACS).
				f := strings.Fields(s)
				if len(f) != 5 {
					return d.errf("bad class annotation %q", s)
				}
				u, okU, errU := mapEndpoint(f[2])
				v, okV, errV := mapEndpoint(f[3])
				cls, err := strconv.ParseUint(f[4], 10, 8)
				if errU != nil || errV != nil || err != nil || geo.RoadClass(cls) >= geo.NumRoadClasses {
					return d.errf("bad class annotation %q", s)
				}
				if !okU || !okV || u == v {
					continue
				}
				key := pairKey(u, v)
				if i, ok := edges[key]; ok {
					list[i].class = geo.RoadClass(cls)
					list[i].hasCls = true
				} else {
					edges[key] = len(list)
					list = append(list, pending{u: u, v: v, meters: -1,
						class: geo.RoadClass(cls), hasCls: true})
				}
			}
		case 'p':
			// "p sp <n> <m>"
			f := strings.Fields(s)
			if declared >= 0 {
				return d.errf("duplicate problem line %q", s)
			}
			if len(f) != 4 || f[1] != "sp" {
				return d.errf("bad graph problem line %q", s)
			}
			n, err1 := strconv.Atoi(f[2])
			m, err2 := strconv.Atoi(f[3])
			if err1 != nil || err2 != nil || n <= 0 || m < 0 || n > maxDIMACSNodes {
				return d.errf("bad counts in %q", s)
			}
			if n != coords.n {
				return d.errf("node count %d disagrees with coordinate file's %d", n, coords.n)
			}
			declared = m
		case 'a':
			if declared < 0 {
				return d.errf("arc line before problem line")
			}
			arcs++
			if arcs > declared {
				return d.errf("more arcs than the declared %d", declared)
			}
			f := strings.Fields(s)
			if len(f) != 4 {
				return d.errf("bad arc line %q", s)
			}
			w, err := strconv.ParseFloat(f[3], 64)
			if err != nil || w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
				return d.errf("bad arc weight %q", s)
			}
			u, okU, errU := mapEndpoint(f[1])
			if errU != nil {
				return d.errf("%v", errU)
			}
			v, okV, errV := mapEndpoint(f[2])
			if errV != nil {
				return d.errf("%v", errV)
			}
			if okU && okV && u == v {
				stats.SelfLoops++
				continue
			}
			if !okU || !okV {
				stats.DroppedArcs++
				continue
			}
			meters := w * scale
			if planarWeights && opts.ScaleMeters == 0 {
				meters = w / 100 // centimeters → meters
			}
			key := pairKey(u, v)
			if i, ok := edges[key]; ok {
				if list[i].meters < 0 || meters < list[i].meters {
					list[i].meters = meters
				}
			} else {
				edges[key] = len(list)
				list = append(list, pending{u: u, v: v, meters: meters, class: opts.Class})
			}
		default:
			return d.errf("unexpected line %q", s)
		}
	}
	if declared < 0 {
		return fmt.Errorf("roadnet: dimacs: graph file has no problem line")
	}
	// A shortfall means a truncated download or edit; loading it silently
	// would hand the experiments a wrong (sparser) graph.
	if arcs != declared {
		return fmt.Errorf("roadnet: dimacs: %d arcs read but %d declared (truncated file?)", arcs, declared)
	}

	for _, e := range list {
		if e.meters < 0 {
			continue // class annotation without a matching arc
		}
		meters := e.meters
		// Clamp up to the Euclidean lower bound (and a positive minimum):
		// projection distortion or coarse weights must not produce an edge
		// shorter than the straight line, or EuclidTime stops being a lower
		// bound on travel time.
		if euc := b.pts[e.u].Dist(b.pts[e.v]); meters < euc {
			meters = euc
			stats.Clamped++
		}
		if meters <= 0 {
			meters = 0.1
		}
		cls := e.class
		if !e.hasCls {
			cls = opts.Class
		}
		if err := b.AddEdge(e.u, e.v, meters, cls); err != nil {
			return err
		}
		stats.EdgesKept++
	}
	stats.ArcsDeclared = declared
	return nil
}

// WriteDIMACS serializes g as a pair of DIMACS files: a `.gr` graph file
// (both directions of every undirected edge, weights in planar centimeters,
// road classes as `c cls` comment annotations) and a `.co` coordinate file
// (planar centimeters). Both carry the urpsm planar marker so LoadDIMACS
// reads them back without projection; the round trip preserves the graph to
// centimeter precision and is byte-stable (load → write reproduces the
// files exactly). External DIMACS tools can consume the output as-is, since
// the urpsm extensions live entirely in comment lines.
func WriteDIMACS(grW, coW io.Writer, g *Graph) error {
	n := g.NumVertices()

	co := bufio.NewWriter(coW)
	fmt.Fprintln(co, dimacsPlanarMarker)
	fmt.Fprintf(co, "p aux sp co %d\n", n)
	cmX := make([]int64, n)
	cmY := make([]int64, n)
	for v := 0; v < n; v++ {
		p := g.Point(VertexID(v))
		cmX[v] = int64(math.Round(p.X * 100))
		cmY[v] = int64(math.Round(p.Y * 100))
		fmt.Fprintf(co, "v %d %d %d\n", v+1, cmX[v], cmY[v])
	}
	if err := co.Flush(); err != nil {
		return err
	}

	grb := bufio.NewWriter(grW)
	edges := g.Edges()
	fmt.Fprintln(grb, dimacsPlanarMarker)
	fmt.Fprintf(grb, "p sp %d %d\n", n, 2*len(edges))
	for _, e := range edges {
		w := int64(math.Round(e.Meters * 100))
		// Keep the weight at or above the Euclidean distance between the
		// centimeter-rounded endpoints, so the loaded graph's lower-bound
		// clamp never fires and a reload → rewrite is byte-identical.
		dx := float64(cmX[e.U] - cmX[e.V])
		dy := float64(cmY[e.U] - cmY[e.V])
		if euc := int64(math.Ceil(math.Sqrt(dx*dx + dy*dy))); w < euc {
			w = euc
		}
		fmt.Fprintf(grb, "c cls %d %d %d\n", e.U+1, e.V+1, e.Class)
		fmt.Fprintf(grb, "a %d %d %d\n", e.U+1, e.V+1, w)
		fmt.Fprintf(grb, "a %d %d %d\n", e.V+1, e.U+1, w)
	}
	return grb.Flush()
}
