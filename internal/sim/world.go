package sim

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// workerState tracks the current leg (vertex path) of one worker.
type workerState struct {
	w        *core.Worker
	path     []roadnet.VertexID // Loc → Stops[0].Vertex along a shortest path
	times    []float64          // absolute arrival time at each path vertex
	selfPath []roadnet.VertexID // reusable 1-vertex leg for Loc == target
	idx      int                // current position: w.Route.Loc == path[idx]
	dirty    bool               // first leg changed; path must be recomputed
	rides    int                // distinct requests currently on board
}

// World owns the live platform state shared by the offline simulator and
// the online dispatch service: the fleet, the per-worker leg caches, and
// the advance/commit logic that moves workers along the road network under
// the divert-at-next-vertex model. Both sim.Engine (offline batch runs)
// and serve.Server (the HTTP dispatch daemon) drive the same World code,
// which is what makes the replay-equivalence guarantee a statement about
// one implementation rather than two that happen to agree.
type World struct {
	Fleet *core.Fleet
	// Paths finds leg paths once per leg; distance queries go through the
	// fleet's oracle instead.
	Paths shortest.PathOracle

	states []workerState

	completions  int
	lateArrivals int
	legsComputed int

	// Occupancy accounting (time-weighted, while driving).
	driveSeconds  float64
	occSeconds    float64 // ∫ onboard-load dt
	sharedSeconds float64 // driving time with ≥2 pooled requests
}

// NewWorld wires a fleet and a path engine together. Every worker starts
// with a dirty leg cache, so a fleet restored from a snapshot (routes
// mid-flight) is handled identically to a fresh one.
func NewWorld(fleet *core.Fleet, paths shortest.PathOracle) *World {
	states := make([]workerState, len(fleet.Workers))
	for i, w := range fleet.Workers {
		states[i] = workerState{w: w, dirty: true}
		// A restored route may already carry onboard passengers: each one
		// contributes a pending drop-off without a matching pickup in the
		// tail, which is exactly how rides must start so pooled-time
		// accounting survives a snapshot round trip.
		states[i].rides = onboardRides(&w.Route)
	}
	return &World{Fleet: fleet, Paths: paths, states: states}
}

// onboardRides counts requests already picked up: drop-offs in the tail
// with no preceding pickup. Pickups are counted, not flagged, so routes
// carrying several requests under one ID (clients own the ID namespace
// and may reuse it) still pair every drop-off correctly.
func onboardRides(rt *core.Route) int {
	picked := make(map[core.RequestID]int, len(rt.Stops))
	n := 0
	for _, s := range rt.Stops {
		switch s.Kind {
		case core.Pickup:
			picked[s.Req]++
		case core.Dropoff:
			if picked[s.Req] > 0 {
				picked[s.Req]--
			} else {
				n++
			}
		}
	}
	return n
}

// MarkDirty invalidates the worker's cached first leg; planners call it
// (through their driver) after mutating a route.
func (wd *World) MarkDirty(id core.WorkerID) { wd.states[id].dirty = true }

// MarkAllDirty invalidates every worker's cached leg; a traffic-epoch
// advance calls it because each cached leg carries per-vertex times of
// the superseded weights.
func (wd *World) MarkAllDirty() {
	for i := range wd.states {
		wd.states[i].dirty = true
	}
}

// SetPaths rebinds the leg-path engine (a traffic-epoch advance binds a
// fresh one to the new weight snapshot) and invalidates all cached legs.
func (wd *World) SetPaths(paths shortest.PathOracle) {
	wd.Paths = paths
	wd.MarkAllDirty()
}

// CompleteAll finishes every route without the deadline assertion of
// FastForward. Traffic runs use it: a slowdown can legitimately make an
// already-promised drop-off late (counted by LateArrivals), which in a
// single-epoch run would instead indicate an insertion-feasibility bug.
func (wd *World) CompleteAll() {
	wd.AdvanceAll(math.Inf(1))
}

// RestoreStats seeds the monotone completion counters from a snapshot so
// they continue across warm restarts instead of resetting to zero.
func (wd *World) RestoreStats(completions, lateArrivals int) {
	wd.completions = completions
	wd.lateArrivals = lateArrivals
}

// Completions returns the number of drop-offs completed so far.
func (wd *World) Completions() int { return wd.completions }

// LateArrivals returns the number of drop-offs completed after their
// deadline; any nonzero value indicates an insertion-feasibility bug.
func (wd *World) LateArrivals() int { return wd.lateArrivals }

// LegsComputed returns the number of leg shortest paths computed.
func (wd *World) LegsComputed() int { return wd.legsComputed }

// Occupancy returns the time-weighted mean onboard load and the fraction
// of driving time spent with ≥2 pooled requests; both are 0 before any
// driving happened.
func (wd *World) Occupancy() (avg, sharedFrac float64) {
	if wd.driveSeconds <= 0 {
		return 0, 0
	}
	return wd.occSeconds / wd.driveSeconds, wd.sharedSeconds / wd.driveSeconds
}

// AdvanceAll moves every worker to simulation time t.
func (wd *World) AdvanceAll(t float64) {
	for i := range wd.states {
		wd.advanceWorker(&wd.states[i], t)
	}
}

// advanceWorker incrementally moves one worker to time t, popping
// completed stops and committing mid-edge positions to the next vertex.
func (wd *World) advanceWorker(ws *workerState, t float64) {
	w := ws.w
	rt := &w.Route
	for {
		if len(rt.Stops) == 0 {
			ws.path = nil
			if rt.Now < t {
				rt.Now = t // idle: wait in place
			}
			return
		}
		if rt.Now > t {
			return // already committed beyond t
		}
		if ws.dirty || ws.path == nil {
			wd.computeLeg(ws)
		}
		// Walk whole vertices whose arrival is ≤ t.
		for ws.idx+1 < len(ws.path) && ws.times[ws.idx+1] <= t {
			wd.hop(ws)
		}
		if ws.idx+1 < len(ws.path) {
			// Mid-edge at time t: commit to the next vertex.
			if rt.Now < t {
				wd.hop(ws)
			}
			return
		}
		// At the leg's final vertex: the first stop is reached.
		if rt.Now > t {
			return
		}
		wd.popStop(ws)
	}
}

// hop advances the worker one vertex along its leg.
func (wd *World) hop(ws *workerState) {
	rt := &ws.w.Route
	ws.idx++
	dt := ws.times[ws.idx] - rt.Now
	rt.Loc = ws.path[ws.idx]
	rt.Now = ws.times[ws.idx]
	ws.w.Traveled += dt
	wd.driveSeconds += dt
	wd.occSeconds += dt * float64(rt.Onboard)
	if ws.rides >= 2 {
		wd.sharedSeconds += dt
	}
	wd.Fleet.UpdateWorkerPosition(ws.w)
}

// popStop completes the first stop of the route.
func (wd *World) popStop(ws *workerState) {
	rt := &ws.w.Route
	st := rt.Stops[0]
	if st.Kind == core.Dropoff {
		wd.completions++
		ws.rides--
		if rt.Arr[0] > st.DDL+1e-6 {
			wd.lateArrivals++
		}
	} else {
		ws.rides++
	}
	rt.Loc = st.Vertex
	rt.Now = rt.Arr[0]
	rt.Onboard += loadDelta(st)
	rt.Stops = rt.Stops[1:]
	rt.Arr = rt.Arr[1:]
	ws.dirty = true
	wd.Fleet.UpdateWorkerPosition(ws.w)
}

func loadDelta(s core.Stop) int {
	if s.Kind == core.Pickup {
		return s.Cap
	}
	return -s.Cap
}

// computeLeg finds the vertex path of the worker's first leg and its
// per-vertex arrival times, normalizing the final time to the cached
// arrival so float drift cannot accumulate. The times buffer (and the
// trivial self-leg) are reused across legs; only the path engine's own
// result is freshly allocated per leg.
func (wd *World) computeLeg(ws *workerState) {
	rt := &ws.w.Route
	target := rt.Stops[0].Vertex
	if rt.Loc == target {
		if ws.selfPath == nil {
			ws.selfPath = make([]roadnet.VertexID, 1)
		}
		ws.selfPath[0] = rt.Loc
		ws.path = ws.selfPath
		if cap(ws.times) < 1 {
			ws.times = make([]float64, 1)
		}
		ws.times = ws.times[:1]
		ws.times[0] = rt.Now
		ws.idx = 0
		ws.dirty = false
		return
	}
	path := wd.Paths.Path(rt.Loc, target)
	if path == nil {
		panic(fmt.Sprintf("sim: no path from %d to %d on a connected network", rt.Loc, target))
	}
	wd.legsComputed++
	times := ws.times
	if cap(times) < len(path) {
		times = make([]float64, len(path))
	} else {
		times = times[:len(path)]
	}
	times[0] = rt.Now
	for k := 1; k < len(path); k++ {
		c, ok := wd.Fleet.Graph.EdgeCost(path[k-1], path[k])
		if !ok {
			panic(fmt.Sprintf("sim: path engine returned non-edge (%d,%d)", path[k-1], path[k]))
		}
		times[k] = times[k-1] + c
	}
	// The cached route arrival is authoritative; absorb float drift
	// (and, for approximate path engines, their error) into the last hop.
	times[len(times)-1] = rt.Arr[0]
	ws.path = path
	ws.times = times
	ws.idx = 0
	ws.dirty = false
}

// FastForward completes every worker's remaining route, verifying that all
// planned deadlines are met. It returns an error when any drop-off was
// late — which would indicate an insertion-feasibility bug.
func (wd *World) FastForward() error {
	wd.AdvanceAll(math.Inf(1))
	if wd.lateArrivals > 0 {
		return fmt.Errorf("sim: %d drop-offs arrived after their deadline", wd.lateArrivals)
	}
	for _, w := range wd.Fleet.Workers {
		if len(w.Route.Stops) != 0 {
			return fmt.Errorf("sim: worker %d still has %d stops after fast-forward", w.ID, len(w.Route.Stops))
		}
	}
	return nil
}
