package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// lockstepLossless runs one simulated stream, asking both the pruned and
// the unpruned planner for their decision on the *identical* fleet state
// before every application. Lemma 8 pruning must be perfectly lossless:
// same serve/reject choice, same worker, same Δ. This is the regression
// test for the floating-point negative-delta bug that once made the two
// diverge (see Insertion.clampNonNegative).
func lockstepLossless(t *testing.T, p workload.Params) {
	t.Helper()
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	hub := shortest.BuildHubLabels(g)
	cached := shortest.NewCached(shortest.NewCounting(hub), 1<<18)
	inst, err := workload.BuildOn(p, g, cached.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(g, cached.Dist, inst.Workers, 2000)
	if err != nil {
		t.Fatal(err)
	}
	pruned := core.NewPruneGreedyDP(fleet, 1)
	full := core.NewGreedyDP(fleet, 1)
	eng := NewEngine(fleet, pruned, shortest.NewBiDijkstra(g), 1)

	reqs := append([]*core.Request(nil), inst.Requests...)
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && reqs[j].Release < reqs[j-1].Release; j-- {
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	for i, r := range reqs {
		eng.advanceAll(r.Release)
		wa, ia, L := pruned.Plan(r.Release, r)
		wb, ib, _ := full.Plan(r.Release, r)
		if (wa == nil) != (wb == nil) {
			t.Fatalf("req %d: prune served=%v full served=%v", i, wa != nil, wb != nil)
		}
		if wa == nil {
			continue
		}
		if wa.ID != wb.ID || math.Abs(ia.Delta-ib.Delta) > 1e-9 {
			t.Fatalf("req %d: prune chose worker %d delta %.15g; full chose %d delta %.15g",
				i, wa.ID, ia.Delta, wb.ID, ib.Delta)
		}
		if ia.Delta < 0 {
			t.Fatalf("req %d: negative delta %v escaped clamping", i, ia.Delta)
		}
		if err := core.Apply(&wa.Route, wa.Capacity, r, ia, L, fleet.Dist); err != nil {
			t.Fatal(err)
		}
		eng.record(r, core.Result{Served: true, Worker: wa.ID, Delta: ia.Delta})
	}
}

func TestPruneLosslessUnderMovementSmall(t *testing.T) {
	p := workload.ChengduLike(0.02)
	p.Net.Rows, p.Net.Cols = 24, 24
	p.NumWorkers = 15
	p.NumRequests = 600
	lockstepLossless(t, p)
}

// TestPruneLosslessChengduScale reproduces the exact configuration that
// originally exposed the divergence (urpsm-sim -dataset chengdu -scale
// 0.05 -workers 15).
func TestPruneLosslessChengduScale(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-size lockstep run")
	}
	p := workload.ChengduLike(0.05)
	p.NumWorkers = 15
	lockstepLossless(t, p)
}
