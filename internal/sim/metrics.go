package sim

import (
	"fmt"
	"sort"
)

// Metrics summarizes one simulation run with the measures of the paper's
// §6 (unified cost, served rate, response time) plus the auxiliary
// observations the text reports (distance queries, late arrivals — which
// must always be zero — and leg-path computations).
type Metrics struct {
	Algorithm string
	Requests  int
	Served    int

	UnifiedCost   float64
	TotalDistance float64 // Σ_w D(S_w), seconds of travel
	PenaltySum    float64
	ServedRate    float64

	AvgResponseMs  float64
	P50ResponseMs  float64
	P95ResponseMs  float64
	MaxResponseMs  float64
	TotalComputeMs float64

	// AvgOccupancy is the time-weighted mean number of passengers/items on
	// board while workers are driving, and SharedFraction the fraction of
	// driving time spent with ≥2 requests pooled — the shared-mobility
	// utilization the paper's motivation appeals to.
	AvgOccupancy   float64
	SharedFraction float64

	DistQueries  uint64
	Completions  int
	LateArrivals int
	LegsComputed int

	// GridMemoryBytes is the algorithm's spatial-index footprint (the
	// grid-size experiment's memory metric); filled in by the harness.
	GridMemoryBytes int64
}

// Percentile returns the p-quantile (0..1) of samples, which it sorts in
// place (nearest-rank on the sorted slice, no interpolation). It is the
// single quantile implementation shared by the simulator's metrics, the
// serving tier's latency stats and cmd/urpsm-replay's report, so all
// three agree on what "p99" means.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	idx := int(p * float64(len(samples)-1))
	return samples[idx]
}

// String renders a one-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%-14s UC=%.0f served=%.1f%% (%d/%d) dist=%.0f resp=%.3fms queries=%d",
		m.Algorithm, m.UnifiedCost, 100*m.ServedRate, m.Served, m.Requests,
		m.TotalDistance, m.AvgResponseMs, m.DistQueries)
}

// Average combines repeated runs of the same configuration into their
// mean, following the paper's setup of averaging repeated trials.
func Average(runs []Metrics) Metrics {
	if len(runs) == 0 {
		return Metrics{}
	}
	out := runs[0]
	if len(runs) == 1 {
		return out
	}
	n := float64(len(runs))
	sum := Metrics{Algorithm: out.Algorithm}
	for _, r := range runs {
		sum.Requests += r.Requests
		sum.Served += r.Served
		sum.UnifiedCost += r.UnifiedCost
		sum.TotalDistance += r.TotalDistance
		sum.PenaltySum += r.PenaltySum
		sum.ServedRate += r.ServedRate
		sum.AvgResponseMs += r.AvgResponseMs
		sum.P50ResponseMs += r.P50ResponseMs
		sum.P95ResponseMs += r.P95ResponseMs
		sum.MaxResponseMs += r.MaxResponseMs
		sum.TotalComputeMs += r.TotalComputeMs
		sum.AvgOccupancy += r.AvgOccupancy
		sum.SharedFraction += r.SharedFraction
		sum.DistQueries += r.DistQueries
		sum.Completions += r.Completions
		sum.LateArrivals += r.LateArrivals
		sum.LegsComputed += r.LegsComputed
		sum.GridMemoryBytes += r.GridMemoryBytes
	}
	return Metrics{
		Algorithm:       sum.Algorithm,
		Requests:        int(float64(sum.Requests)/n + 0.5),
		Served:          int(float64(sum.Served)/n + 0.5),
		UnifiedCost:     sum.UnifiedCost / n,
		TotalDistance:   sum.TotalDistance / n,
		PenaltySum:      sum.PenaltySum / n,
		ServedRate:      sum.ServedRate / n,
		AvgResponseMs:   sum.AvgResponseMs / n,
		P50ResponseMs:   sum.P50ResponseMs / n,
		P95ResponseMs:   sum.P95ResponseMs / n,
		MaxResponseMs:   sum.MaxResponseMs / n,
		TotalComputeMs:  sum.TotalComputeMs / n,
		AvgOccupancy:    sum.AvgOccupancy / n,
		SharedFraction:  sum.SharedFraction / n,
		DistQueries:     uint64(float64(sum.DistQueries)/n + 0.5),
		Completions:     int(float64(sum.Completions)/n + 0.5),
		LateArrivals:    sum.LateArrivals, // violations are never averaged away
		LegsComputed:    int(float64(sum.LegsComputed)/n + 0.5),
		GridMemoryBytes: int64(float64(sum.GridMemoryBytes)/n + 0.5),
	}
}
