package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// trafficPipeline assembles the epoch-aware stack: overlay → Versioned →
// Counting → Cached, plus a Traffic coordinator bound to the engine's
// world. It mirrors what expt.Runner and serve.Server wire for traffic
// runs.
type trafficPipeline struct {
	inst    *workload.Instance
	overlay *roadnet.Overlay
	fleet   *core.Fleet
	eng     *Engine
	tc      *Traffic
}

func newTrafficPipeline(t testing.TB, seed int64, nWorkers, nRequests int) *trafficPipeline {
	t.Helper()
	p := workload.ChengduLike(0.02)
	p.Net.Rows, p.Net.Cols = 24, 24
	p.Net.Seed = seed
	p.Seed = seed * 31
	p.NumWorkers = nWorkers
	p.NumRequests = nRequests
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	overlay := roadnet.NewOverlay(g)
	budget := shortest.AutoBudget{MaxHubVertices: g.NumVertices(), MaxCHVertices: g.NumVertices()}
	versioned := shortest.NewVersioned(g, budget, false)
	counter := shortest.NewCounting(versioned)
	cached := shortest.NewCached(counter, 1<<16)
	inst, err := workload.BuildOn(p, g, cached.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(g, cached.Dist, inst.Workers, 1000)
	if err != nil {
		t.Fatal(err)
	}
	planner := core.NewPruneGreedyDP(fleet, 1)
	eng := NewEngine(fleet, planner, shortest.NewBiDijkstra(g), 1)
	eng.Queries = counter
	tc := NewTraffic(overlay, versioned, fleet, eng.World())
	eng.Traffic = tc
	return &trafficPipeline{inst: inst, overlay: overlay, fleet: fleet, eng: eng, tc: tc}
}

// midRunProfile returns a congestion trace with events inside the
// request stream's release span.
func midRunProfile(t testing.TB, inst *workload.Instance) roadnet.TrafficProfile {
	t.Helper()
	minR, maxR := math.Inf(1), math.Inf(-1)
	for _, r := range inst.Requests {
		minR = math.Min(minR, r.Release)
		maxR = math.Max(maxR, r.Release)
	}
	t1 := minR + (maxR-minR)*0.25
	t2 := minR + (maxR-minR)*0.5
	t3 := minR + (maxR-minR)*0.75
	return roadnet.TrafficProfile{Events: []roadnet.TrafficEvent{
		{At: t1, Updates: []roadnet.TrafficUpdate{{Factor: 1.8}}},
		{At: t2, Updates: []roadnet.TrafficUpdate{{Factor: 2.5, Class: "motorway"}, {Factor: 1.4}}},
		{At: t3, Updates: []roadnet.TrafficUpdate{{Factor: 1}}},
	}}
}

// TestTrafficStaticRunIsBitIdentical is the replay-equivalence extension:
// with the epoch stack wired but no events, every decision and metric is
// bit-identical to the plain (pre-epoch) stack.
func TestTrafficStaticRunIsBitIdentical(t *testing.T) {
	plain := newPipeline(t, 17, 15, 250)
	planner := core.NewPruneGreedyDP(plain.fleet, 1)
	engPlain := NewEngine(plain.fleet, planner, plain.paths, 1)
	engPlain.Queries = plain.counter
	mPlain, err := engPlain.Run(plain.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}

	epoch := newTrafficPipeline(t, 17, 15, 250)
	mEpoch, err := epoch.eng.Run(epoch.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}

	if mPlain.Served != mEpoch.Served || mPlain.TotalDistance != mEpoch.TotalDistance ||
		mPlain.PenaltySum != mEpoch.PenaltySum || mPlain.UnifiedCost != mEpoch.UnifiedCost ||
		mPlain.DistQueries != mEpoch.DistQueries {
		t.Fatalf("static epoch stack diverged:\nplain: %+v\nepoch: %+v", mPlain, mEpoch)
	}
	served := engPlain.Served()
	servedE := epoch.eng.Served()
	if len(served) != len(servedE) {
		t.Fatalf("served sets differ")
	}
	for i := range served {
		if served[i].ID != servedE[i].ID {
			t.Fatalf("decision order diverged at %d: %d vs %d", i, served[i].ID, servedE[i].ID)
		}
	}
	if epoch.tc.Epoch() != 0 || epoch.tc.EventsApplied() != 0 {
		t.Fatalf("static run advanced the epoch: %d", epoch.tc.Epoch())
	}
}

// TestTrafficTimelineDeterministic pins that a congestion trace is
// replayed deterministically and actually changes the run.
func TestTrafficTimelineDeterministic(t *testing.T) {
	run := func() (Metrics, []core.RequestID, uint64) {
		pl := newTrafficPipeline(t, 9, 15, 250)
		pl.tc.SetProfile(midRunProfile(t, pl.inst))
		m, err := pl.eng.Run(pl.inst.Requests)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]core.RequestID, 0, len(pl.eng.Served()))
		for _, r := range pl.eng.Served() {
			ids = append(ids, r.ID)
		}
		pl.eng.World().CompleteAll()
		return m, ids, pl.tc.Epoch()
	}
	m1, ids1, e1 := run()
	m2, ids2, e2 := run()
	if e1 != 3 || e2 != 3 {
		t.Fatalf("epochs %d,%d want 3 (all events inside the run)", e1, e2)
	}
	if m1.Served != m2.Served || m1.TotalDistance != m2.TotalDistance || m1.DistQueries != m2.DistQueries {
		t.Fatalf("traffic run not deterministic:\n%+v\n%+v", m1, m2)
	}
	if len(ids1) != len(ids2) {
		t.Fatal("served sets differ across identical runs")
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("decision %d differs", i)
		}
	}

	// And the trace matters: a no-traffic twin decides differently.
	plain := newTrafficPipeline(t, 9, 15, 250)
	mPlain, err := plain.eng.Run(plain.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if mPlain.Served == m1.Served && mPlain.TotalDistance == m1.TotalDistance {
		t.Fatalf("congestion trace had no observable effect (served %d, dist %v)", m1.Served, m1.TotalDistance)
	}
}

// TestTrafficRepairKeepsRoutesConsistent checks the mid-run invariants:
// after every epoch advance the fleet's cached arrivals validate under
// the current oracle, and the run completes (late drop-offs are counted,
// not fatal).
func TestTrafficRepairKeepsRoutesConsistent(t *testing.T) {
	pl := newTrafficPipeline(t, 5, 12, 200)
	pl.tc.SetProfile(midRunProfile(t, pl.inst))
	if _, err := pl.eng.Run(pl.inst.Requests); err != nil {
		t.Fatal(err)
	}
	if pl.tc.EventsApplied() != 3 {
		t.Fatalf("applied %d events", pl.tc.EventsApplied())
	}
	// Deadline violations are legal after a slowdown; arrival-cache
	// inconsistencies are not: the cached Arr must equal a fresh
	// recomputation under the current oracle for every route.
	for _, w := range pl.fleet.Workers {
		rt := w.Route.Clone()
		rt.Recompute(pl.fleet.Dist)
		for i := range rt.Arr {
			if math.Abs(rt.Arr[i]-w.Route.Arr[i]) > 1e-6*(1+math.Abs(rt.Arr[i])) {
				t.Fatalf("worker %d stop %d: cached arr %v != recomputed %v",
					w.ID, i, w.Route.Arr[i], rt.Arr[i])
			}
		}
	}
	pl.eng.World().CompleteAll()
	for _, w := range pl.fleet.Workers {
		if len(w.Route.Stops) != 0 {
			t.Fatalf("worker %d has %d stops after CompleteAll", w.ID, len(w.Route.Stops))
		}
	}
}
