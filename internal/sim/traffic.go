package sim

// Traffic coordinates an epoch advance across every layer that caches a
// consequence of the edge weights:
//
//	roadnet.Overlay      — the weights themselves (new immutable snapshot)
//	shortest.Versioned   — the distance-oracle front (tier invalidation,
//	                       live tier while an async rebuild runs)
//	core.Fleet           — the graph handle planners read EdgeCost from,
//	                       and the route repair pass (Arr + Eq. 6 ddl)
//	sim.World            — the per-worker leg caches and the leg-path
//	                       engine, both bound to the old snapshot
//
// Apply performs those steps in that order, atomically from the caller's
// point of view: both the offline engine (between requests) and the
// online server (under its state lock) invoke it from their single
// mutation point, so no planner or reader ever observes a half-advanced
// epoch. The same type also replays a roadnet.TrafficProfile against the
// engine's event clock (PollUntil), which is how offline experiments run
// a congestion trace — and how urpsm-replay's offline reference stays
// bit-identical to a server receiving the same trace via POST /v1/traffic.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// Traffic is the epoch coordinator. Create with NewTraffic; not safe for
// concurrent use (callers serialize through their event loop).
type Traffic struct {
	overlay *roadnet.Overlay
	oracle  *shortest.Versioned
	fleet   *core.Fleet
	world   *World

	profile roadnet.TrafficProfile
	next    int // index of the first unapplied profile event

	eventsApplied int
	repair        core.RepairStats
}

// NewTraffic wires the coordinator. oracle may be nil when the fleet's
// distance chain is bound to the overlay by other means (tests); overlay,
// fleet and world are required.
func NewTraffic(overlay *roadnet.Overlay, oracle *shortest.Versioned, fleet *core.Fleet, world *World) *Traffic {
	return &Traffic{overlay: overlay, oracle: oracle, fleet: fleet, world: world}
}

// SetProfile installs a congestion trace to be replayed by PollUntil.
// Events already in the past relative to previous polling are not
// re-applied.
func (tc *Traffic) SetProfile(p roadnet.TrafficProfile) {
	tc.profile = p
	tc.next = 0
}

// Epoch returns the current weight epoch.
func (tc *Traffic) Epoch() uint64 { return tc.overlay.Epoch() }

// RestoreStats seeds the monotone counters from a snapshot so the serve
// layer's /metrics counters (urpsm_traffic_updates_total,
// urpsm_infeasible_stops_total) never move backwards across a warm
// restart — the same contract World.RestoreStats keeps for completions.
func (tc *Traffic) RestoreStats(eventsApplied, infeasibleStops int) {
	tc.eventsApplied = eventsApplied
	tc.repair.InfeasibleStops = infeasibleStops
}

// EventsApplied returns how many update batches have been applied.
func (tc *Traffic) EventsApplied() int { return tc.eventsApplied }

// RepairStats returns the accumulated route-repair outcome over all
// applied epochs.
func (tc *Traffic) RepairStats() core.RepairStats { return tc.repair }

// Overlay exposes the weight state (read-only use).
func (tc *Traffic) Overlay() *roadnet.Overlay { return tc.overlay }

// ApplyResult reports one epoch advance.
type ApplyResult struct {
	Epoch        uint64
	ChangedEdges int
	Repair       core.RepairStats
}

// Apply advances the world to at (monotone: an at in the past applies at
// the current clock), applies one batch of updates and repairs every
// consequence. On a validation error nothing changes.
func (tc *Traffic) Apply(at float64, ups []roadnet.TrafficUpdate) (ApplyResult, error) {
	// Validate before the world moves: a rejected update must not advance
	// anything.
	if err := roadnet.ValidateTrafficUpdates(tc.overlay.Base(), ups); err != nil {
		return ApplyResult{}, err
	}
	// Workers travel at the old weights up to the event time.
	tc.world.AdvanceAll(at)
	g, epoch, changed, err := tc.overlay.Apply(ups)
	if err != nil {
		return ApplyResult{}, err
	}
	if tc.oracle != nil {
		tc.oracle.Advance(g, epoch)
	}
	tc.fleet.SetGraph(g)
	st := tc.fleet.RepairRoutes(tc.fleet.Dist)
	// Leg caches hold per-vertex times of the old weights; routes were
	// re-timed above, so every first leg must be recomputed against the
	// new snapshot.
	tc.world.SetPaths(shortest.NewBiDijkstra(g))
	tc.eventsApplied++
	tc.repair.Add(st)
	return ApplyResult{Epoch: epoch, ChangedEdges: changed, Repair: st}, nil
}

// PollUntil applies every pending profile event with At ≤ t, in order,
// advancing the world to each event's time first. The engine calls it
// before processing a request released at t; events dated after the last
// request of a run are never applied (they could not influence any
// decision).
func (tc *Traffic) PollUntil(t float64) error {
	for tc.next < len(tc.profile.Events) && tc.profile.Events[tc.next].At <= t {
		e := tc.profile.Events[tc.next]
		if _, err := tc.Apply(e.At, e.Updates); err != nil {
			return fmt.Errorf("sim: traffic event at %v: %w", e.At, err)
		}
		tc.next++
	}
	return nil
}
