package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// pipeline assembles the full stack on a small synthetic instance.
type pipeline struct {
	inst    *workload.Instance
	counter *shortest.Counting
	fleet   *core.Fleet
	paths   *shortest.BiDijkstra
}

func newPipeline(t testing.TB, seed int64, nWorkers, nRequests int) *pipeline {
	t.Helper()
	p := workload.ChengduLike(0.02)
	p.Net.Rows, p.Net.Cols = 24, 24
	p.Net.Seed = seed
	p.Seed = seed * 31
	p.NumWorkers = nWorkers
	p.NumRequests = nRequests
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	base := shortest.BuildHubLabels(g)
	counter := shortest.NewCounting(base)
	cached := shortest.NewCached(counter, 1<<16)
	inst, err := workload.BuildOn(p, g, cached.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(g, cached.Dist, inst.Workers, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeline{
		inst:    inst,
		counter: counter,
		fleet:   fleet,
		paths:   shortest.NewBiDijkstra(g),
	}
}

func TestEndToEndPruneGreedyDP(t *testing.T) {
	pl := newPipeline(t, 3, 20, 300)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	eng.Queries = pl.counter
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != len(pl.inst.Requests) {
		t.Fatalf("requests=%d", m.Requests)
	}
	if m.Served+len(eng.Rejected()) != m.Requests {
		t.Fatalf("served %d + rejected %d != %d", m.Served, len(eng.Rejected()), m.Requests)
	}
	if m.Served == 0 {
		t.Fatal("nothing served; instance too hostile for a meaningful test")
	}
	if m.ServedRate <= 0 || m.ServedRate > 1 {
		t.Fatalf("served rate %v", m.ServedRate)
	}
	// Unified cost identity.
	want := m.TotalDistance + m.PenaltySum
	if math.Abs(m.UnifiedCost-want) > 1e-6*(1+want) {
		t.Fatalf("UC=%v want %v", m.UnifiedCost, want)
	}
	if m.DistQueries == 0 {
		t.Fatal("query counter not wired")
	}
	if m.LateArrivals != 0 {
		t.Fatalf("%d late arrivals during run", m.LateArrivals)
	}
	// Completing all routes must not violate any deadline, and every
	// served request must eventually be dropped off.
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
	if eng.world.completions != m.Served {
		t.Fatalf("completions=%d served=%d", eng.world.completions, m.Served)
	}
	// After fast-forward the total distance must match what the planner
	// promised (planned = executed).
	traveled := 0.0
	for _, w := range pl.fleet.Workers {
		traveled += w.Traveled
		if w.Route.RemainingDist() != 0 {
			t.Fatal("remaining distance after fast-forward")
		}
	}
	if math.Abs(traveled-m.TotalDistance) > 1e-3*(1+traveled) {
		t.Fatalf("executed %v != planned %v", traveled, m.TotalDistance)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() Metrics {
		pl := newPipeline(t, 7, 12, 200)
		planner := core.NewPruneGreedyDP(pl.fleet, 1)
		eng := NewEngine(pl.fleet, planner, pl.paths, 1)
		m, err := eng.Run(pl.inst.Requests)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.Served != b.Served || math.Abs(a.UnifiedCost-b.UnifiedCost) > 1e-6*(1+a.UnifiedCost) {
		t.Fatalf("nondeterministic engine: %+v vs %+v", a, b)
	}
}

// TestMovementFollowsNetwork spot-checks that workers only ever sit on
// network vertices and that time never flows backwards.
func TestMovementFollowsNetwork(t *testing.T) {
	pl := newPipeline(t, 11, 8, 150)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	n := pl.inst.Graph.NumVertices()
	prevNow := make([]float64, len(pl.fleet.Workers))
	for _, r := range pl.inst.Requests {
		eng.advanceAll(r.Release)
		for i, w := range pl.fleet.Workers {
			if int(w.Route.Loc) < 0 || int(w.Route.Loc) >= n {
				t.Fatalf("worker %d at non-vertex %d", i, w.Route.Loc)
			}
			if w.Route.Now < prevNow[i]-1e-9 {
				t.Fatalf("worker %d time went backwards: %v -> %v", i, prevNow[i], w.Route.Now)
			}
			prevNow[i] = w.Route.Now
			if len(w.Route.Stops) == 0 && w.Route.Now < r.Release {
				t.Fatalf("idle worker %d lagging at %v < %v", i, w.Route.Now, r.Release)
			}
		}
		planner.OnRequest(r.Release, r)
	}
}

// TestGreedyDPMatchesPruneInSimulation is the end-to-end Lemma 8 check:
// identical outcomes with and without pruning, but fewer distance queries
// with pruning.
func TestGreedyDPMatchesPruneInSimulation(t *testing.T) {
	run := func(prune bool) (Metrics, uint64) {
		pl := newPipeline(t, 13, 25, 400)
		var planner core.Planner
		if prune {
			planner = core.NewPruneGreedyDP(pl.fleet, 1)
		} else {
			planner = core.NewGreedyDP(pl.fleet, 1)
		}
		eng := NewEngine(pl.fleet, planner, pl.paths, 1)
		eng.Queries = pl.counter
		m, err := eng.Run(pl.inst.Requests)
		if err != nil {
			t.Fatal(err)
		}
		return m, pl.counter.Queries
	}
	withPrune, qPrune := run(true)
	without, qFull := run(false)
	if withPrune.Served != without.Served {
		t.Fatalf("served differs: %d vs %d", withPrune.Served, without.Served)
	}
	if math.Abs(withPrune.UnifiedCost-without.UnifiedCost) > 1e-5*(1+without.UnifiedCost) {
		t.Fatalf("unified cost differs: %v vs %v", withPrune.UnifiedCost, without.UnifiedCost)
	}
	if qPrune >= qFull {
		t.Fatalf("pruning saved no queries: %d vs %d", qPrune, qFull)
	}
}

func TestEngineEmptyStream(t *testing.T) {
	pl := newPipeline(t, 17, 5, 10)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	m, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 0 || m.Served != 0 || m.UnifiedCost != 0 {
		t.Fatalf("empty stream metrics: %+v", m)
	}
}

func TestEngineRejectsInvalidRequest(t *testing.T) {
	pl := newPipeline(t, 19, 5, 10)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	bad := &core.Request{ID: 1, Deadline: 5, Release: 10, Capacity: 1}
	if _, err := eng.Run([]*core.Request{bad}); err == nil {
		t.Fatal("invalid request accepted")
	}
}

func TestMetricsString(t *testing.T) {
	m := Metrics{Algorithm: "x", Requests: 10, Served: 5, ServedRate: 0.5}
	if m.String() == "" {
		t.Fatal("empty string")
	}
}

func TestAverage(t *testing.T) {
	if got := Average(nil); got != (Metrics{}) {
		t.Fatal("empty average")
	}
	a := Metrics{Algorithm: "a", Requests: 10, Served: 4, UnifiedCost: 100, ServedRate: 0.4, DistQueries: 10}
	b := Metrics{Algorithm: "a", Requests: 10, Served: 6, UnifiedCost: 200, ServedRate: 0.6, DistQueries: 30}
	avg := Average([]Metrics{a, b})
	if avg.Served != 5 || math.Abs(avg.UnifiedCost-150) > 1e-9 ||
		math.Abs(avg.ServedRate-0.5) > 1e-9 || avg.DistQueries != 20 {
		t.Fatalf("avg=%+v", avg)
	}
	one := Average([]Metrics{a})
	if one != a {
		t.Fatal("single-run average must be identity")
	}
	// Violations never average away.
	c := Metrics{LateArrivals: 1}
	if Average([]Metrics{c, {}}).LateArrivals != 1 {
		t.Fatal("late arrivals averaged away")
	}
}
