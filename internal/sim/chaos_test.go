package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
)

// TestUnsortedStreamEquivalence: the engine must sort arrivals itself, so
// a shuffled stream gives the same outcome as a sorted one.
func TestUnsortedStreamEquivalence(t *testing.T) {
	run := func(shuffle bool) Metrics {
		pl := newPipeline(t, 37, 10, 200)
		reqs := pl.inst.Requests
		if shuffle {
			rng := rand.New(rand.NewSource(1))
			rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
		}
		eng := NewEngine(pl.fleet, core.NewPruneGreedyDP(pl.fleet, 1), pl.paths, 1)
		m, err := eng.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(false), run(true)
	if a.Served != b.Served || math.Abs(a.UnifiedCost-b.UnifiedCost) > 1e-6*(1+a.UnifiedCost) {
		t.Fatalf("order sensitivity: %+v vs %+v", a, b)
	}
}

// TestSimultaneousReleases: many requests at the identical instant are
// processed deterministically (stable sort keeps stream order).
func TestSimultaneousReleases(t *testing.T) {
	pl := newPipeline(t, 41, 8, 120)
	for _, r := range pl.inst.Requests {
		r.Release = 100
		r.Deadline = 100 + 900
	}
	eng := NewEngine(pl.fleet, core.NewPruneGreedyDP(pl.fleet, 1), pl.paths, 1)
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if m.LateArrivals != 0 {
		t.Fatalf("late arrivals: %d", m.LateArrivals)
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroWorkers: with an empty fleet everything is rejected and the
// unified cost is exactly the penalty sum.
func TestZeroWorkers(t *testing.T) {
	pl := newPipeline(t, 43, 0, 50)
	eng := NewEngine(pl.fleet, core.NewPruneGreedyDP(pl.fleet, 1), pl.paths, 1)
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served != 0 {
		t.Fatalf("served %d with zero workers", m.Served)
	}
	want := 0.0
	for _, r := range pl.inst.Requests {
		want += r.Penalty
	}
	if math.Abs(m.UnifiedCost-want) > 1e-9*(1+want) {
		t.Fatalf("UC=%v want penalty sum %v", m.UnifiedCost, want)
	}
}

// TestBoundaryDeadlines: deadlines exactly at the minimum feasible value
// (reach pickup, then drive the trip) must be servable from an idle
// worker without any late arrival.
func TestBoundaryDeadlines(t *testing.T) {
	pl := newPipeline(t, 47, 5, 0)
	w := pl.fleet.Workers[2]
	origin := w.Route.Loc
	var reqs []*core.Request
	rng := rand.New(rand.NewSource(3))
	n := pl.inst.Graph.NumVertices()
	for i := 0; i < 5; i++ {
		dest := int32(rng.Intn(n))
		if dest == origin {
			continue
		}
		L := pl.fleet.Dist(origin, dest)
		reqs = append(reqs, &core.Request{
			ID: core.RequestID(i), Origin: origin, Dest: dest,
			Release:  float64(i) * 1e4, // far apart: worker is idle again
			Deadline: float64(i)*1e4 + L,
			Penalty:  1e9, Capacity: 1, // huge penalty: serving always wins
		})
	}
	// These are only feasible for workers already AT the origin; others
	// cannot even reach the pickup in time. Worker 2 should take each.
	eng := NewEngine(pl.fleet, core.NewPruneGreedyDP(pl.fleet, 1), pl.paths, 1)
	m, err := eng.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if m.LateArrivals != 0 {
		t.Fatalf("late arrivals: %d", m.LateArrivals)
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Fatal("boundary-deadline requests all rejected")
	}
	// Workers end up back where requests started only if they served;
	// here we only assert that serving happened and deadlines held, which
	// FastForward already verified.
}

// TestBatchUnderMovement: the batch planner with real worker movement and
// deferred accounting never loses a request and never misses a deadline.
func TestBatchUnderMovement(t *testing.T) {
	pl := newPipeline(t, 53, 12, 300)
	b := baseline.NewBatch(pl.fleet, 1)
	eng := NewEngine(pl.fleet, b, pl.paths, 1)
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served+len(eng.Rejected()) != m.Requests {
		t.Fatalf("batch lost requests: %d+%d != %d", m.Served, len(eng.Rejected()), m.Requests)
	}
	if m.Served == 0 {
		t.Fatal("batch served nothing")
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
	if eng.world.completions != m.Served {
		t.Fatalf("completions %d != served %d", eng.world.completions, m.Served)
	}
}

// TestKineticUnderMovement: route reordering interacts with the movement
// model (committed first legs); everything must still complete on time.
func TestKineticUnderMovement(t *testing.T) {
	pl := newPipeline(t, 59, 10, 250)
	k := baseline.NewKinetic(pl.fleet, 1)
	k.MaxNodes = 10000
	eng := NewEngine(pl.fleet, k, pl.paths, 1)
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if m.Served == 0 {
		t.Fatal("kinetic served nothing")
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
}

// TestAdvanceIdempotent: advancing to the same time twice changes nothing.
func TestAdvanceIdempotent(t *testing.T) {
	pl := newPipeline(t, 61, 6, 100)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	for i, r := range pl.inst.Requests {
		eng.advanceAll(r.Release)
		snap := make([]core.Route, len(pl.fleet.Workers))
		for j, w := range pl.fleet.Workers {
			snap[j] = w.Route.Clone()
		}
		eng.advanceAll(r.Release) // idempotent
		for j, w := range pl.fleet.Workers {
			if w.Route.Loc != snap[j].Loc || w.Route.Now != snap[j].Now ||
				w.Route.Len() != snap[j].Len() {
				t.Fatalf("req %d: advance not idempotent for worker %d", i, j)
			}
		}
		planner.OnRequest(r.Release, r)
	}
}

// TestTimeTravelGuard: advancing backwards is a no-op, not corruption.
func TestTimeTravelGuard(t *testing.T) {
	pl := newPipeline(t, 67, 4, 50)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	eng.advanceAll(1000)
	before := make([]float64, len(pl.fleet.Workers))
	for i, w := range pl.fleet.Workers {
		before[i] = w.Route.Now
	}
	eng.advanceAll(10) // backwards
	for i, w := range pl.fleet.Workers {
		if w.Route.Now < before[i] {
			t.Fatalf("worker %d time moved backwards", i)
		}
	}
}
