// Package sim is the dynamic shared-mobility simulator of the paper's
// experimental study (§6.1): requests arrive over time, a planner decides
// and plans each one, and workers move along their planned routes over the
// actual road network. The simulator is single-threaded, like the paper's.
//
// Worker movement uses a divert-at-next-vertex model: a moving worker is
// committed to the next vertex of its current shortest-path leg; its
// committed location (route.Loc at route.Now) is what planners see and
// what the grid index stores. This keeps every insertion causally valid —
// no plan ever rewrites travel that already happened.
//
// The movement/commit logic lives in World so the online dispatch service
// (internal/serve) drives the exact same state machine; Engine adds the
// offline concerns: batch execution over a request slice, compute-time
// accounting and the paper's metrics.
package sim

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/shortest"
)

// Engine drives one simulation run. The leg-path oracle lives on the
// World (the only consumer); reach it via World().Paths.
type Engine struct {
	Fleet   *core.Fleet
	Planner core.Planner
	// Queries, when set, is read to report distance-query counts; both
	// shortest.Counting (serial planners) and shortest.AtomicCounting
	// (the parallel dispatcher) satisfy it.
	Queries shortest.QueryCounter
	// Alpha is the unified-cost weight α.
	Alpha float64
	// Traffic, when set, replays a congestion trace against the event
	// clock: before each request is processed, every profile event dated
	// at or before its release is applied (weights, oracle, route repair,
	// leg caches — see Traffic). With no events the run is bit-identical
	// to a nil Traffic.
	Traffic *Traffic
	// Observer, when set, is attached to the planner for the duration of
	// Run if the planner implements core.Observable (both greedy planners
	// do) — e.g. a trace.Recorder collecting per-request plan timelines.
	// Observation is read-only; decisions are bit-identical with or
	// without it.
	Observer core.PlanObserver

	world *World

	served       []*core.Request
	rejected     []*core.Request
	computeNs    int64
	maxComputeNs int64
	respSamples  []float64 // per-request compute ms
}

// NewEngine wires a fleet, a planner and a path engine together.
func NewEngine(fleet *core.Fleet, planner core.Planner, paths shortest.PathOracle, alpha float64) *Engine {
	return &Engine{
		Fleet:   fleet,
		Planner: planner,
		Alpha:   alpha,
		world:   NewWorld(fleet, paths),
	}
}

// World returns the live platform state the engine advances.
func (e *Engine) World() *World { return e.world }

// Run processes all requests in release order and returns the run metrics.
// The request slice is sorted in place by release time.
func (e *Engine) Run(requests []*core.Request) (Metrics, error) {
	sort.SliceStable(requests, func(i, j int) bool {
		return requests[i].Release < requests[j].Release
	})
	if e.Observer != nil {
		if obs, ok := e.Planner.(core.Observable); ok {
			obs.SetObserver(e.Observer)
			defer obs.SetObserver(nil)
		}
	}
	deferring, _ := e.Planner.(core.Deferring)
	for _, r := range requests {
		if err := r.Validate(); err != nil {
			return Metrics{}, err
		}
		if e.Traffic != nil {
			if err := e.Traffic.PollUntil(r.Release); err != nil {
				return Metrics{}, err
			}
		}
		e.world.AdvanceAll(r.Release)
		start := time.Now()
		res := e.Planner.OnRequest(r.Release, r)
		e.observe(time.Since(start).Nanoseconds())
		if !res.Deferred {
			e.record(r, res)
		}
		if deferring != nil {
			for _, d := range deferring.TakeDecided() {
				e.record(d.Req, d.Result)
			}
		}
	}
	// Batching planners decide their last window now.
	if deferring != nil {
		last := 0.0
		if len(requests) > 0 {
			last = requests[len(requests)-1].Release
		}
		start := time.Now()
		deferring.FlushAll(last)
		e.observe(time.Since(start).Nanoseconds())
		for _, d := range deferring.TakeDecided() {
			e.record(d.Req, d.Result)
		}
	}
	return e.metrics(len(requests)), nil
}

func (e *Engine) observe(ns int64) {
	e.computeNs += ns
	if ns > e.maxComputeNs {
		e.maxComputeNs = ns
	}
	e.respSamples = append(e.respSamples, float64(ns)/1e6)
}

func (e *Engine) record(r *core.Request, res core.Result) {
	if res.Served {
		e.served = append(e.served, r)
		// The planner mutated the worker's route; its first leg may have
		// changed, so the cached path is stale.
		e.world.MarkDirty(res.Worker)
	} else {
		e.rejected = append(e.rejected, r)
	}
}

// advanceAll moves every worker to simulation time t.
func (e *Engine) advanceAll(t float64) { e.world.AdvanceAll(t) }

// FastForward completes every worker's remaining route, verifying that all
// planned deadlines are met. It returns an error when any drop-off was
// late — which would indicate an insertion-feasibility bug.
func (e *Engine) FastForward() error { return e.world.FastForward() }

// Served returns the requests accepted so far.
func (e *Engine) Served() []*core.Request { return e.served }

// Rejected returns the requests rejected so far.
func (e *Engine) Rejected() []*core.Request { return e.rejected }

func (e *Engine) metrics(total int) Metrics {
	m := Metrics{
		Algorithm:     e.Planner.Name(),
		Requests:      total,
		Served:        len(e.served),
		TotalDistance: e.Fleet.TotalDistance(),
		Completions:   e.world.Completions(),
		LateArrivals:  e.world.LateArrivals(),
		LegsComputed:  e.world.LegsComputed(),
	}
	for _, r := range e.rejected {
		m.PenaltySum += r.Penalty
	}
	m.UnifiedCost = e.Alpha*m.TotalDistance + m.PenaltySum
	m.ServedRate = core.ServedRate(m.Served, total)
	if total > 0 {
		m.AvgResponseMs = float64(e.computeNs) / float64(total) / 1e6
	}
	m.P50ResponseMs = Percentile(append([]float64(nil), e.respSamples...), 0.50)
	m.P95ResponseMs = Percentile(append([]float64(nil), e.respSamples...), 0.95)
	m.MaxResponseMs = float64(e.maxComputeNs) / 1e6
	m.TotalComputeMs = float64(e.computeNs) / 1e6
	m.AvgOccupancy, m.SharedFraction = e.world.Occupancy()
	if e.Queries != nil {
		m.DistQueries = e.Queries.Count()
	}
	return m
}

// Metrics returns a fresh snapshot of the run's metrics; after
// FastForward it includes the occupancy accounting of the completed
// routes.
func (e *Engine) Metrics(totalRequests int) Metrics { return e.metrics(totalRequests) }
