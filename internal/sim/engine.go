// Package sim is the dynamic shared-mobility simulator of the paper's
// experimental study (§6.1): requests arrive over time, a planner decides
// and plans each one, and workers move along their planned routes over the
// actual road network. The simulator is single-threaded, like the paper's.
//
// Worker movement uses a divert-at-next-vertex model: a moving worker is
// committed to the next vertex of its current shortest-path leg; its
// committed location (route.Loc at route.Now) is what planners see and
// what the grid index stores. This keeps every insertion causally valid —
// no plan ever rewrites travel that already happened.
package sim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// workerState tracks the current leg (vertex path) of one worker.
type workerState struct {
	w     *core.Worker
	path  []roadnet.VertexID // Loc → Stops[0].Vertex along a shortest path
	times []float64          // absolute arrival time at each path vertex
	idx   int                // current position: w.Route.Loc == path[idx]
	dirty bool               // first leg changed; path must be recomputed
	rides int                // distinct requests currently on board
}

// Engine drives one simulation run.
type Engine struct {
	Fleet   *core.Fleet
	Planner core.Planner
	// Paths finds leg paths once per leg; distance queries go through the
	// fleet's oracle instead.
	Paths shortest.PathOracle
	// Queries, when set, is read to report distance-query counts; both
	// shortest.Counting (serial planners) and shortest.AtomicCounting
	// (the parallel dispatcher) satisfy it.
	Queries shortest.QueryCounter
	// Alpha is the unified-cost weight α.
	Alpha float64

	states []workerState

	served       []*core.Request
	rejected     []*core.Request
	computeNs    int64
	maxComputeNs int64
	respSamples  []float64 // per-request compute ms
	completions  int
	lateArrivals int
	legsComputed int

	// Occupancy accounting (time-weighted, while driving).
	driveSeconds  float64
	occSeconds    float64 // ∫ onboard-load dt
	sharedSeconds float64 // driving time with ≥2 pooled requests
}

// NewEngine wires a fleet, a planner and a path engine together.
func NewEngine(fleet *core.Fleet, planner core.Planner, paths shortest.PathOracle, alpha float64) *Engine {
	states := make([]workerState, len(fleet.Workers))
	for i, w := range fleet.Workers {
		states[i] = workerState{w: w, dirty: true}
	}
	return &Engine{Fleet: fleet, Planner: planner, Paths: paths, Alpha: alpha, states: states}
}

// Run processes all requests in release order and returns the run metrics.
// The request slice is sorted in place by release time.
func (e *Engine) Run(requests []*core.Request) (Metrics, error) {
	sort.SliceStable(requests, func(i, j int) bool {
		return requests[i].Release < requests[j].Release
	})
	deferring, _ := e.Planner.(core.Deferring)
	for _, r := range requests {
		if err := r.Validate(); err != nil {
			return Metrics{}, err
		}
		e.advanceAll(r.Release)
		start := time.Now()
		res := e.Planner.OnRequest(r.Release, r)
		e.observe(time.Since(start).Nanoseconds())
		if !res.Deferred {
			e.record(r, res)
		}
		if deferring != nil {
			for _, d := range deferring.TakeDecided() {
				e.record(d.Req, d.Result)
			}
		}
	}
	// Batching planners decide their last window now.
	if deferring != nil {
		last := 0.0
		if len(requests) > 0 {
			last = requests[len(requests)-1].Release
		}
		start := time.Now()
		deferring.FlushAll(last)
		e.observe(time.Since(start).Nanoseconds())
		for _, d := range deferring.TakeDecided() {
			e.record(d.Req, d.Result)
		}
	}
	return e.metrics(len(requests)), nil
}

func (e *Engine) observe(ns int64) {
	e.computeNs += ns
	if ns > e.maxComputeNs {
		e.maxComputeNs = ns
	}
	e.respSamples = append(e.respSamples, float64(ns)/1e6)
}

func (e *Engine) record(r *core.Request, res core.Result) {
	if res.Served {
		e.served = append(e.served, r)
		// The planner mutated the worker's route; its first leg may have
		// changed, so the cached path is stale.
		e.states[res.Worker].dirty = true
	} else {
		e.rejected = append(e.rejected, r)
	}
}

// advanceAll moves every worker to simulation time t.
func (e *Engine) advanceAll(t float64) {
	for i := range e.states {
		e.advanceWorker(&e.states[i], t)
	}
}

// advanceWorker incrementally moves one worker to time t, popping
// completed stops and committing mid-edge positions to the next vertex.
func (e *Engine) advanceWorker(ws *workerState, t float64) {
	w := ws.w
	rt := &w.Route
	for {
		if len(rt.Stops) == 0 {
			ws.path = nil
			if rt.Now < t {
				rt.Now = t // idle: wait in place
			}
			return
		}
		if rt.Now > t {
			return // already committed beyond t
		}
		if ws.dirty || ws.path == nil {
			e.computeLeg(ws)
		}
		// Walk whole vertices whose arrival is ≤ t.
		for ws.idx+1 < len(ws.path) && ws.times[ws.idx+1] <= t {
			e.hop(ws)
		}
		if ws.idx+1 < len(ws.path) {
			// Mid-edge at time t: commit to the next vertex.
			if rt.Now < t {
				e.hop(ws)
			}
			return
		}
		// At the leg's final vertex: the first stop is reached.
		if rt.Now > t {
			return
		}
		e.popStop(ws)
	}
}

// hop advances the worker one vertex along its leg.
func (e *Engine) hop(ws *workerState) {
	rt := &ws.w.Route
	ws.idx++
	dt := ws.times[ws.idx] - rt.Now
	rt.Loc = ws.path[ws.idx]
	rt.Now = ws.times[ws.idx]
	ws.w.Traveled += dt
	e.driveSeconds += dt
	e.occSeconds += dt * float64(rt.Onboard)
	if ws.rides >= 2 {
		e.sharedSeconds += dt
	}
	e.Fleet.UpdateWorkerPosition(ws.w)
}

// popStop completes the first stop of the route.
func (e *Engine) popStop(ws *workerState) {
	rt := &ws.w.Route
	st := rt.Stops[0]
	if st.Kind == core.Dropoff {
		e.completions++
		ws.rides--
		if rt.Arr[0] > st.DDL+1e-6 {
			e.lateArrivals++
		}
	} else {
		ws.rides++
	}
	rt.Loc = st.Vertex
	rt.Now = rt.Arr[0]
	rt.Onboard += loadDelta(st)
	rt.Stops = rt.Stops[1:]
	rt.Arr = rt.Arr[1:]
	ws.dirty = true
	e.Fleet.UpdateWorkerPosition(ws.w)
}

func loadDelta(s core.Stop) int {
	if s.Kind == core.Pickup {
		return s.Cap
	}
	return -s.Cap
}

// computeLeg finds the vertex path of the worker's first leg and its
// per-vertex arrival times, normalizing the final time to the cached
// arrival so float drift cannot accumulate.
func (e *Engine) computeLeg(ws *workerState) {
	rt := &ws.w.Route
	target := rt.Stops[0].Vertex
	if rt.Loc == target {
		ws.path = []roadnet.VertexID{rt.Loc}
		ws.times = []float64{rt.Now}
		ws.idx = 0
		ws.dirty = false
		return
	}
	path := e.Paths.Path(rt.Loc, target)
	if path == nil {
		panic(fmt.Sprintf("sim: no path from %d to %d on a connected network", rt.Loc, target))
	}
	e.legsComputed++
	times := make([]float64, len(path))
	times[0] = rt.Now
	for k := 1; k < len(path); k++ {
		c, ok := e.Fleet.Graph.EdgeCost(path[k-1], path[k])
		if !ok {
			panic(fmt.Sprintf("sim: path engine returned non-edge (%d,%d)", path[k-1], path[k]))
		}
		times[k] = times[k-1] + c
	}
	// The cached route arrival is authoritative; absorb float drift
	// (and, for approximate path engines, their error) into the last hop.
	times[len(times)-1] = rt.Arr[0]
	ws.path = path
	ws.times = times
	ws.idx = 0
	ws.dirty = false
}

// FastForward completes every worker's remaining route, verifying that all
// planned deadlines are met. It returns an error when any drop-off was
// late — which would indicate an insertion-feasibility bug.
func (e *Engine) FastForward() error {
	e.advanceAll(math.Inf(1))
	if e.lateArrivals > 0 {
		return fmt.Errorf("sim: %d drop-offs arrived after their deadline", e.lateArrivals)
	}
	for _, w := range e.Fleet.Workers {
		if len(w.Route.Stops) != 0 {
			return fmt.Errorf("sim: worker %d still has %d stops after fast-forward", w.ID, len(w.Route.Stops))
		}
	}
	return nil
}

// Served returns the requests accepted so far.
func (e *Engine) Served() []*core.Request { return e.served }

// Rejected returns the requests rejected so far.
func (e *Engine) Rejected() []*core.Request { return e.rejected }

func (e *Engine) metrics(total int) Metrics {
	m := Metrics{
		Algorithm:     e.Planner.Name(),
		Requests:      total,
		Served:        len(e.served),
		TotalDistance: e.Fleet.TotalDistance(),
		Completions:   e.completions,
		LateArrivals:  e.lateArrivals,
		LegsComputed:  e.legsComputed,
	}
	for _, r := range e.rejected {
		m.PenaltySum += r.Penalty
	}
	m.UnifiedCost = e.Alpha*m.TotalDistance + m.PenaltySum
	m.ServedRate = core.ServedRate(m.Served, total)
	if total > 0 {
		m.AvgResponseMs = float64(e.computeNs) / float64(total) / 1e6
	}
	m.P50ResponseMs = percentile(append([]float64(nil), e.respSamples...), 0.50)
	m.P95ResponseMs = percentile(append([]float64(nil), e.respSamples...), 0.95)
	m.MaxResponseMs = float64(e.maxComputeNs) / 1e6
	m.TotalComputeMs = float64(e.computeNs) / 1e6
	if e.driveSeconds > 0 {
		m.AvgOccupancy = e.occSeconds / e.driveSeconds
		m.SharedFraction = e.sharedSeconds / e.driveSeconds
	}
	if e.Queries != nil {
		m.DistQueries = e.Queries.Count()
	}
	return m
}

// Metrics returns a fresh snapshot of the run's metrics; after
// FastForward it includes the occupancy accounting of the completed
// routes.
func (e *Engine) Metrics(totalRequests int) Metrics { return e.metrics(totalRequests) }
