package sim

import (
	"testing"

	"repro/internal/core"
)

// TestOccupancyAccounting verifies the time-weighted occupancy and
// sharing statistics against hand-computable expectations.
func TestOccupancyAccounting(t *testing.T) {
	pl := newPipeline(t, 71, 6, 400)
	planner := core.NewPruneGreedyDP(pl.fleet, 1)
	eng := NewEngine(pl.fleet, planner, pl.paths, 1)
	m, err := eng.Run(pl.inst.Requests)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
	final := eng.Metrics(m.Requests)
	if final.AvgOccupancy < 0 {
		t.Fatalf("negative occupancy %v", final.AvgOccupancy)
	}
	if final.SharedFraction < 0 || final.SharedFraction > 1 {
		t.Fatalf("shared fraction %v outside [0,1]", final.SharedFraction)
	}
	// With only 6 workers against 400 requests there must be pooling.
	if m.Served > 50 && final.SharedFraction == 0 {
		t.Fatal("no pooling observed under heavy load")
	}
	// Occupancy can never exceed the largest worker capacity.
	maxKw := 0
	for _, w := range pl.fleet.Workers {
		if w.Capacity > maxKw {
			maxKw = w.Capacity
		}
	}
	if final.AvgOccupancy > float64(maxKw) {
		t.Fatalf("avg occupancy %v exceeds max capacity %d", final.AvgOccupancy, maxKw)
	}
	// Percentiles are ordered.
	if final.P50ResponseMs > final.P95ResponseMs+1e-9 || final.P95ResponseMs > final.MaxResponseMs+1e-9 {
		t.Fatalf("percentiles out of order: p50=%v p95=%v max=%v",
			final.P50ResponseMs, final.P95ResponseMs, final.MaxResponseMs)
	}
}

// TestIdleWorkersCarryNoOccupancy: with zero requests nothing drives.
func TestIdleWorkersCarryNoOccupancy(t *testing.T) {
	pl := newPipeline(t, 73, 5, 10)
	eng := NewEngine(pl.fleet, core.NewPruneGreedyDP(pl.fleet, 1), pl.paths, 1)
	m, err := eng.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgOccupancy != 0 || m.SharedFraction != 0 || m.TotalDistance != 0 {
		t.Fatalf("phantom driving: %+v", m)
	}
}

func TestPercentileHelper(t *testing.T) {
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile")
	}
	s := []float64{5, 1, 3, 2, 4}
	if p := Percentile(append([]float64(nil), s...), 0); p != 1 {
		t.Fatalf("p0=%v", p)
	}
	if p := Percentile(append([]float64(nil), s...), 1); p != 5 {
		t.Fatalf("p100=%v", p)
	}
	if p := Percentile(append([]float64(nil), s...), 0.5); p != 3 {
		t.Fatalf("p50=%v", p)
	}
}
