package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// postTraffic sends one traffic event over HTTP.
func postTraffic(t *testing.T, url string, at float64, ups []roadnet.TrafficUpdate) TrafficResult {
	t.Helper()
	body, _ := json.Marshal(TrafficRequest{At: &at, Updates: ups})
	resp, err := http.Post(url+"/v1/traffic", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/traffic: status %d", resp.StatusCode)
	}
	var tr TrafficResult
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTrafficEndpoint(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := postTraffic(t, ts.URL, 0, []roadnet.TrafficUpdate{{Factor: 2}})
	if tr.Epoch != 1 || tr.ChangedEdges != g.NumEdges() {
		t.Fatalf("result: %+v", tr)
	}
	tr = postTraffic(t, ts.URL, 100, []roadnet.TrafficUpdate{{Factor: 1.5, Class: "arterial"}})
	if tr.Epoch != 2 || tr.SimTime != 100 {
		t.Fatalf("result: %+v", tr)
	}

	// Stats and metrics expose the epoch.
	st := s.Stats()
	if st.TrafficEpoch != 2 || st.TrafficUpdates != 2 {
		t.Fatalf("stats: epoch=%d updates=%d", st.TrafficEpoch, st.TrafficUpdates)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "urpsm_traffic_epoch 2") {
		t.Fatalf("metrics missing epoch gauge:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "urpsm_oracle_rebuild_seconds") {
		t.Fatal("metrics missing rebuild gauge")
	}

	// A request decided after the slowdown sees the new weights through
	// the whole chain; just verify the server still decides.
	reqs := sortedRequests(inst)
	d := postRequest(t, ts.URL, reqs[0])
	if d.ID != int32(reqs[0].ID) {
		t.Fatalf("decision: %+v", d)
	}
}

func TestTrafficEndpointRejectsBadUpdates(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := []string{
		`{"updates":[]}`,               // empty batch
		`{"updates":[{"factor":0.5}]}`, // speedup: breaks lower bounds
		`{"updates":[{"factor":2,"class":"cowpath"}]}`,
		`{"updates":[{"factor":2,"bbox":[1,2,3]}]}`,
		`{"updates":[{"factor":2,"edges":[[0,999999]]}]}`,
		`{"at":1e999,"updates":[{"factor":2}]}`, // non-finite at (decode error)
		`not json`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/traffic", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if st := s.Stats(); st.TrafficEpoch != 0 {
		t.Fatalf("rejected updates advanced the epoch to %d", st.TrafficEpoch)
	}
}

// TestLockstepEquivalenceWithTraffic extends the replay-equivalence
// guarantee across epochs: a lockstep client that interleaves traffic
// events with requests on the trace's schedule gets decisions
// bit-identical to the offline engine replaying the same profile.
func TestLockstepEquivalenceWithTraffic(t *testing.T) {
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	minR := reqs[0].Release
	maxR := reqs[len(reqs)-1].Release
	profile := &roadnet.TrafficProfile{Events: []roadnet.TrafficEvent{
		{At: minR + (maxR-minR)*0.3, Updates: []roadnet.TrafficUpdate{{Factor: 1.7}}},
		{At: minR + (maxR-minR)*0.6, Updates: []roadnet.TrafficUpdate{
			{Factor: 2.2, Class: "motorway"}, {Factor: 1.3}}},
	}}

	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	got := make(map[int32]Decision, len(reqs))
	next := 0
	for _, r := range reqs {
		for next < len(profile.Events) && profile.Events[next].At <= r.Release {
			e := profile.Events[next]
			postTraffic(t, ts.URL, e.At, e.Updates)
			next++
		}
		d := postRequest(t, ts.URL, r)
		got[d.ID] = d
	}
	if next != len(profile.Events) {
		t.Fatalf("only %d/%d events injected; widen the profile", next, len(profile.Events))
	}

	want, _, err := OfflineDecisions(g, inst, shortest.BuildHubLabels(g), "hub", 1, 1, profile)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, got, want)
	if st := s.Stats(); st.TrafficEpoch != 2 {
		t.Fatalf("epoch %d after 2 events", st.TrafficEpoch)
	}
}

// TestLockstepEquivalenceCCHCustomize is the customize fast path's
// end-to-end guarantee: a server on the CCH tier with ASYNC rebuilds,
// quiesced after each traffic event, decides bit-identically to the
// offline reference — every epoch advance re-derives shortcut weights
// over the shared skeleton (no from-scratch contraction), and because
// skeleton and customization are deterministic, two independently built
// hierarchies agree to the last float bit. This is the narrowed version
// of the DESIGN.md §11.4 caveat: with CCH, async mode only loses
// bit-comparability while the live tier is actually answering.
func TestLockstepEquivalenceCCHCustomize(t *testing.T) {
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	minR := reqs[0].Release
	maxR := reqs[len(reqs)-1].Release
	profile := &roadnet.TrafficProfile{Events: []roadnet.TrafficEvent{
		{At: minR + (maxR-minR)*0.3, Updates: []roadnet.TrafficUpdate{{Factor: 1.7}}},
		{At: minR + (maxR-minR)*0.6, Updates: []roadnet.TrafficUpdate{
			{Factor: 2.2, Class: "motorway"}, {Factor: 1.3}}},
	}}

	s := newTestServer(t, g, inst, func(c *Config) {
		c.Oracle = shortest.BuildCCH(g)
		c.OracleKind = "cch"
		c.AsyncRebuild = true
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	got := make(map[int32]Decision, len(reqs))
	next := 0
	for _, r := range reqs {
		for next < len(profile.Events) && profile.Events[next].At <= r.Release {
			e := profile.Events[next]
			postTraffic(t, ts.URL, e.At, e.Updates)
			// Quiesce: once the async customization lands, the CCH tier
			// answers and decisions are bit-comparable again.
			s.versioned.WaitRebuild()
			next++
		}
		d := postRequest(t, ts.URL, r)
		got[d.ID] = d
	}
	if next != len(profile.Events) {
		t.Fatalf("only %d/%d events injected; widen the profile", next, len(profile.Events))
	}

	want, _, err := OfflineDecisions(g, inst, shortest.BuildCCH(g), "cch", 1, 1, profile)
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalence(t, got, want)
	st := s.Stats()
	if st.TrafficEpoch != 2 {
		t.Fatalf("epoch %d after 2 events", st.TrafficEpoch)
	}
	if st.OracleRebuilds != 2 || st.OracleCustomizations != 2 {
		t.Fatalf("rebuilds=%d customizations=%d, want 2 of each (fast path not taken?)",
			st.OracleRebuilds, st.OracleCustomizations)
	}
}

// TestTrafficAsyncRebuildServes exercises the availability mode: with
// AsyncRebuild the traffic POST returns while the preprocessed tier is
// still rebuilding, and requests decided meanwhile are served off the
// live tier — decisions are still made on the new weights (exact, just
// not bit-comparable across tiers; see DESIGN.md §11.4).
func TestTrafficAsyncRebuildServes(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) { c.AsyncRebuild = true })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	tr := postTraffic(t, ts.URL, 0, []roadnet.TrafficUpdate{{Factor: 2}})
	if tr.Epoch != 1 {
		t.Fatalf("result: %+v", tr)
	}
	// Decide requests immediately — the rebuild may or may not have
	// landed; either way the decision must come back.
	reqs := sortedRequests(inst)
	accepted := 0
	for _, r := range reqs[:20] {
		if postRequest(t, ts.URL, r).Accepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("no request accepted after async traffic update")
	}
	s.versioned.WaitRebuild()
	if st := s.Stats(); st.OracleRebuilds != 1 || st.TrafficEpoch != 1 {
		t.Fatalf("stats after rebuild: rebuilds=%d epoch=%d", st.OracleRebuilds, st.TrafficEpoch)
	}
}

// TestSnapshotCarriesTrafficState pins that a warm restart reconstructs
// the weights: snapshot → restore → same epoch, same distances, and the
// snapshot round-trips byte-stably.
func TestSnapshotCarriesTrafficState(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())

	postTraffic(t, ts.URL, 50, []roadnet.TrafficUpdate{{Factor: 2, Class: "residential"}})
	postTraffic(t, ts.URL, 80, []roadnet.TrafficUpdate{{Factor: 1.4}})
	reqs := sortedRequests(inst)
	for _, r := range reqs[:10] {
		postRequest(t, ts.URL, r)
	}
	sn := s.TakeSnapshot()
	ts.Close()
	if sn.Epoch != 2 || len(sn.Traffic) != 2 {
		t.Fatalf("snapshot epoch=%d traffic batches=%d", sn.Epoch, len(sn.Traffic))
	}

	// Byte-stable round trip through the reader.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sn); err != nil {
		t.Fatal(err)
	}
	sn2, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := WriteSnapshot(&buf2, sn2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("traffic-bearing snapshot not byte-stable")
	}

	// Restore: the restarted server serves the restored epoch's weights,
	// and the monotone traffic counters do not move backwards.
	s2 := newTestServer(t, g, inst, func(c *Config) { c.Snapshot = sn2 })
	if st := s2.Stats(); st.TrafficEpoch != 2 {
		t.Fatalf("restored epoch %d want 2", st.TrafficEpoch)
	} else if st.TrafficUpdates != 2 || st.InfeasibleStops != sn2.InfeasibleStops {
		t.Fatalf("restored counters regressed: updates=%d infeasible=%d (snapshot %d)",
			st.TrafficUpdates, st.InfeasibleStops, sn2.InfeasibleStops)
	}
	s2.versioned.WaitRebuild()
	// Distances after restore match an overlay replayed from the history.
	overlay := roadnet.NewOverlay(g)
	for _, batch := range sn2.Traffic {
		if _, _, _, err := overlay.Apply(batch); err != nil {
			t.Fatal(err)
		}
	}
	ref := shortest.NewBiDijkstra(overlay.Graph())
	for i := 0; i < 50; i++ {
		u := roadnet.VertexID(i % g.NumVertices())
		v := roadnet.VertexID((i * 7) % g.NumVertices())
		if got, want := s2.versioned.Dist(u, v), ref.Dist(u, v); math.Abs(got-want) > 1e-9*(1+want) {
			t.Fatalf("restored Dist(%d,%d)=%v want %v", u, v, got, want)
		}
	}

	// A corrupted epoch/history pairing is rejected.
	sn3 := *sn2
	sn3.Epoch = 5
	var buf3 bytes.Buffer
	if err := WriteSnapshot(&buf3, &sn3); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bytes.NewReader(buf3.Bytes())); err == nil {
		t.Fatal("epoch/history mismatch accepted")
	}
}
