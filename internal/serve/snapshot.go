package serve

// Versioned JSON snapshots of the serving state, for crash recovery and
// warm restarts (FORMATS.md §5). A snapshot captures everything the
// server cannot rebuild from its inputs: the fleet's mid-flight routes,
// the event clock and the decision counters. The road network itself is
// NOT part of the snapshot — restoring validates the saved state against
// the graph the server is started on.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/wal"
)

// SnapshotFormat is the format discriminator of a snapshot file.
const SnapshotFormat = "urpsm-snapshot"

// SnapshotVersion is the current snapshot schema version.
const SnapshotVersion = 1

// maxSnapshotBytes bounds a snapshot file read; sized for fleets far
// beyond anything this repository runs.
const maxSnapshotBytes = 1 << 28 // 256 MB

// Snapshot is the persisted serving state. Every monotone counter the
// stats surface reports is included, so /metrics counters never move
// backwards across a warm restart. Epoch and Traffic carry the live
// weight state: the applied update history is the source of truth (the
// overlay is derived by replaying it at restore), and Epoch pins that the
// replay reconstructed exactly the epoch the snapshot was taken at.
type Snapshot struct {
	Format          string                    `json:"format"`
	Version         int                       `json:"version"`
	SimTime         float64                   `json:"sim_time"`
	Epoch           uint64                    `json:"epoch"`
	NextID          int32                     `json:"next_id"`
	Accepted        int                       `json:"accepted"`
	Rejected        int                       `json:"rejected"`
	PenaltySum      float64                   `json:"penalty_sum"`
	Batches         int                       `json:"batches"`
	MaxBatch        int                       `json:"max_batch"`
	LateAdmissions  int                       `json:"late_admissions"`
	Shed            int                       `json:"shed,omitempty"`
	Submitted       int                       `json:"submitted,omitempty"`
	Completions     int                       `json:"completions"`
	LateArrivals    int                       `json:"late_arrivals"`
	InfeasibleStops int                       `json:"infeasible_stops"`
	Workers         []core.WorkerState        `json:"workers"`
	Traffic         [][]roadnet.TrafficUpdate `json:"traffic,omitempty"`
	// WALSeq is set on WAL checkpoints: the log sequence number this
	// snapshot covers through. Recovery skips WAL records at or below it.
	WALSeq uint64 `json:"wal_lsn,omitempty"`
	// LastDecisions is set on WAL checkpoints: the final commit group's
	// decisions, retained so a client whose ack a crash swallowed can
	// still resolve its in-flight request via GET /v1/decisions/{id}.
	LastDecisions []Decision `json:"last_decisions,omitempty"`
}

// WriteSnapshot serializes sn as indented JSON with a trailing newline;
// the encoding is deterministic, so snapshots are byte-stable.
func WriteSnapshot(w io.Writer, sn *Snapshot) error {
	data, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// SaveSnapshotFile writes a snapshot to path with full crash-safe
// discipline: temp file in the same directory, fsync the file, rename
// over the target, fsync the parent directory. A reader never observes a
// partial snapshot, and after SaveSnapshotFile returns the new content
// survives power loss — rename alone guarantees neither (the rename may
// land before the data, or be lost with the directory update).
func SaveSnapshotFile(path string, sn *Snapshot) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	err = WriteSnapshot(f, sn)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return wal.SyncDir(dir)
}

// ReadSnapshot parses a snapshot, checking the format discriminator, the
// version and the graph-independent structural invariants. Vertex ranges
// and route feasibility are checked later by Restore, which knows the
// graph.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("serve: snapshot exceeds %d bytes", maxSnapshotBytes)
	}
	var sn Snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return nil, fmt.Errorf("serve: bad snapshot json: %w", err)
	}
	if sn.Format != SnapshotFormat {
		return nil, fmt.Errorf("serve: bad snapshot format %q (want %q)", sn.Format, SnapshotFormat)
	}
	if sn.Version != SnapshotVersion {
		return nil, fmt.Errorf("serve: unsupported snapshot version %d (want %d)", sn.Version, SnapshotVersion)
	}
	if math.IsNaN(sn.SimTime) || math.IsInf(sn.SimTime, 0) || sn.SimTime < 0 {
		return nil, fmt.Errorf("serve: bad snapshot sim_time %v", sn.SimTime)
	}
	if sn.Accepted < 0 || sn.Rejected < 0 || sn.Batches < 0 || sn.MaxBatch < 0 ||
		sn.LateAdmissions < 0 || sn.Completions < 0 || sn.LateArrivals < 0 ||
		sn.InfeasibleStops < 0 || sn.NextID < 0 || sn.Shed < 0 || sn.Submitted < 0 {
		return nil, fmt.Errorf("serve: negative snapshot counter")
	}
	if math.IsNaN(sn.PenaltySum) || math.IsInf(sn.PenaltySum, 0) || sn.PenaltySum < 0 {
		return nil, fmt.Errorf("serve: bad snapshot penalty_sum %v", sn.PenaltySum)
	}
	if sn.Epoch != uint64(len(sn.Traffic)) {
		return nil, fmt.Errorf("serve: snapshot epoch %d != %d traffic batches", sn.Epoch, len(sn.Traffic))
	}
	for i, batch := range sn.Traffic {
		if len(batch) == 0 {
			return nil, fmt.Errorf("serve: snapshot traffic batch %d is empty", i)
		}
	}
	return &sn, nil
}

// Restore reconstructs the fleet from the snapshot, validating every
// route against a graph with numVertices vertices. Workers must form a
// dense ID range 0..n-1 (the fleet's indexing invariant); they may appear
// in any order.
func (sn *Snapshot) Restore(numVertices int) ([]*core.Worker, error) {
	workers := make([]*core.Worker, 0, len(sn.Workers))
	for i := range sn.Workers {
		w, err := sn.Workers[i].Worker(numVertices)
		if err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, err)
		}
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i].ID < workers[j].ID })
	for i, w := range workers {
		if int(w.ID) != i {
			return nil, fmt.Errorf("worker IDs are not the dense range 0..%d", len(workers)-1)
		}
	}
	return workers, nil
}
