package serve

// Tests for the observability surface: the Prometheus exposition lint,
// the Stats→/metrics drift guard, golden fixtures for /debug/trace and
// /v1/decisions/{id}/explain, and the invariant the whole design hangs
// on — lockstep replay stays bit-identical with tracing enabled.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/shortest"
	"repro/internal/trace"
)

func fetchMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$`)
	nameRe   = regexp.MustCompile(`^urpsm_[a-z][a-z0-9_]*$`)
)

// TestMetricsExpositionLint parses /metrics as Prometheus text format:
// every series name matches urpsm_*, every sample belongs to a family
// that declared # HELP and # TYPE before it, every TYPE is valid, every
// value parses, and every declared family has at least one sample.
func TestMetricsExpositionLint(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) { c.TraceEvents = 256 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, r := range sortedRequests(inst)[:10] {
		postRequest(t, ts.URL, r)
	}

	body := fetchMetrics(t, ts.URL)
	help := map[string]bool{}
	typ := map[string]string{}
	sampled := map[string]bool{}
	validTypes := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true}

	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("line %d: comment is neither HELP nor TYPE: %q", lineNo, line)
				continue
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				t.Errorf("line %d: family %q does not match urpsm_*", lineNo, name)
			}
			if fields[1] == "HELP" {
				if len(fields) != 4 || strings.TrimSpace(fields[3]) == "" {
					t.Errorf("line %d: empty HELP text for %s", lineNo, name)
				}
				help[name] = true
			} else {
				if len(fields) != 4 || !validTypes[strings.TrimSpace(fields[3])] {
					t.Errorf("line %d: bad TYPE line %q", lineNo, line)
				}
				typ[name] = strings.TrimSpace(fields[3])
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample: %q", lineNo, line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("line %d: bad value %q: %v", lineNo, value, err)
		}
		if labels != "" {
			for _, pair := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if !labelRe.MatchString(pair) {
					t.Errorf("line %d: bad label %q", lineNo, pair)
				}
			}
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typ[base] == "histogram" {
				family = base
				break
			}
		}
		if !nameRe.MatchString(name) {
			t.Errorf("line %d: series %q does not match urpsm_*", lineNo, name)
		}
		if !help[family] || typ[family] == "" {
			t.Errorf("line %d: series %s has no preceding HELP+TYPE for family %s", lineNo, name, family)
		}
		sampled[family] = true
	}
	for name := range typ {
		if !sampled[name] {
			t.Errorf("family %s declared but has no samples", name)
		}
	}
	if len(typ) < 20 {
		t.Fatalf("only %d families exposed — exposition looks truncated", len(typ))
	}
}

// statsSeries maps every serve.Stats field to the /metrics series that
// carries it (derived fields map to the series they are derived from;
// string fields surface as urpsm_build_info labels). A Stats field
// missing here fails TestStatsMetricsDriftGuard: additions must extend
// the metrics surface, not silently skip it.
var statsSeries = map[string]string{
	"Algorithm":            "urpsm_build_info",
	"Oracle":               "urpsm_build_info",
	"Workers":              "urpsm_workers",
	"SimTime":              "urpsm_sim_time_seconds",
	"Requests":             "urpsm_requests_total", // accepted + rejected
	"Accepted":             "urpsm_requests_total",
	"Rejected":             "urpsm_requests_total",
	"ServedRate":           "urpsm_requests_total", // accepted / (accepted+rejected)
	"TotalDistance":        "urpsm_total_distance_seconds",
	"PenaltySum":           "urpsm_penalty_sum",
	"UnifiedCost":          "urpsm_unified_cost",
	"Completions":          "urpsm_completions_total",
	"LateArrivals":         "urpsm_late_arrivals_total",
	"Batches":              "urpsm_batches_total",
	"MaxBatch":             "urpsm_batch_size_max",
	"LateAdmissions":       "urpsm_late_admissions_total",
	"Pending":              "urpsm_pending_requests",
	"Submitted":            "urpsm_submitted_total",
	"Shed":                 "urpsm_shed_total",
	"QueueLimit":           "urpsm_queue_limit",
	"DegradeState":         "urpsm_degrade_state",
	"DegradeTransitions":   "urpsm_degrade_transitions_total",
	"DistQueries":          "urpsm_dist_queries_total",
	"TablePrefetches":      "urpsm_table_prefetches_total",
	"TableHits":            "urpsm_table_hits_total",
	"TableMisses":          "urpsm_table_misses_total",
	"TrafficEpoch":         "urpsm_traffic_epoch",
	"TrafficUpdates":       "urpsm_traffic_updates_total",
	"InfeasibleStops":      "urpsm_infeasible_stops_total",
	"OracleRebuilds":       "urpsm_oracle_rebuilds_total",
	"OracleCustomizations": "urpsm_oracle_customizations_total",
	"LastRebuildMs":        "urpsm_oracle_rebuild_seconds",
	"WALEnabled":           "urpsm_wal_enabled",
	"WALRecords":           "urpsm_wal_records_total",
	"WALBytes":             "urpsm_wal_bytes_total",
	"WALSyncs":             "urpsm_wal_syncs_total",
	"WALCheckpoints":       "urpsm_wal_checkpoints_total",
	"WALRecovered":         "urpsm_wal_recovered_records",
	"WALTornBytes":         "urpsm_wal_torn_bytes",
	"WALSizeBytes":         "urpsm_wal_size_bytes",
	"LatencyMs":            "urpsm_request_latency_milliseconds",
	"TraceEvents":          "urpsm_trace_events",
}

// TestStatsMetricsDriftGuard asserts every Stats field has a /metrics
// series, so the JSON stats surface and the Prometheus surface cannot
// drift apart.
func TestStatsMetricsDriftGuard(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := fetchMetrics(t, ts.URL)

	st := reflect.TypeOf(Stats{})
	for i := 0; i < st.NumField(); i++ {
		field := st.Field(i)
		series, ok := statsSeries[field.Name]
		if !ok {
			t.Errorf("Stats.%s has no entry in statsSeries: add a /metrics series for it (api.go handleMetrics) and extend the map", field.Name)
			continue
		}
		if !strings.Contains(body, series+" ") && !strings.Contains(body, series+"{") {
			t.Errorf("Stats.%s maps to %s, but /metrics has no such series", field.Name, series)
		}
	}
	for name := range statsSeries {
		if _, ok := st.FieldByName(name); !ok {
			t.Errorf("statsSeries maps removed field %q — prune it", name)
		}
	}
}

// goldenTraceServer builds a tracing server with a deterministic wall
// clock and a canonical event sequence covering every event kind, so the
// /debug/trace and explain bodies are byte-stable.
func goldenTraceServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) { c.TraceEvents = 32 })
	rec := s.TraceRecorder()
	var tick int64
	rec.SetNow(func() int64 { tick += 250_000; return 1735689600_000_000_000 + tick })
	rec.Record(trace.Event{Kind: trace.KindAdmit, Now: 1200, Req: 7, Worker: -1})
	rec.Record(trace.Event{Kind: trace.KindPlanStart, Now: 1200, Req: 7, Worker: -1})
	rec.Record(trace.Event{
		Kind: trace.KindPlan, Now: 1200, Req: 7, DurNs: 48_500,
		Candidates: 5, Feasible: 3, Evaluated: 2, Pruned: 1, FeasibleIns: 1,
		DPCells: 14, MinLB: 96.5, L: 182.5, Penalty: 320.5, Delta: 182.5,
		Worker: 3, PickupPos: 1, DropPos: 2, Reason: "served",
		NTop: 2, Top: [trace.TopK]trace.Cand{{Worker: 3, LB: 96.5}, {Worker: 1, LB: 140.25}},
	})
	rec.Record(trace.Event{Kind: trace.KindWALSync, Now: 1200, Req: -1, Worker: -1, N: 2, DurNs: 1_250_000})
	rec.Record(trace.Event{Kind: trace.KindAck, Now: 1200, Req: 7, Worker: -1, DurNs: 3_250_000})
	rec.Record(trace.Event{Kind: trace.KindFlush, Now: 1200, Req: -1, Worker: -1, N: 2, DurNs: 2_000_000})
	rec.Record(trace.Event{Kind: trace.KindTrafficEpoch, Now: 1500, Req: -1, Worker: -1, Epoch: 1, N: 311})
	rec.Record(trace.Event{Kind: trace.KindOracle, Now: 1500, Req: -1, Worker: -1, Epoch: 1, N: 1, DurNs: 184_750_000})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func checkGoldenBody(t *testing.T, url, name string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s: %v (regenerate with -update)", name, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: wire format drifted from golden fixture (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
			name, got, want)
	}
}

// TestGoldenTraceFormats pins the /debug/trace and explain wire bodies.
func TestGoldenTraceFormats(t *testing.T) {
	ts := goldenTraceServer(t)
	checkGoldenBody(t, ts.URL+"/debug/trace", "trace.json")
	checkGoldenBody(t, ts.URL+"/v1/decisions/7/explain", "explain.json")
}

// TestTraceEndpointErrors covers the disabled and not-found paths.
func TestTraceEndpointErrors(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil) // tracing off by default
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/debug/trace", "/v1/decisions/3/explain"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing off: status %d, want 404", path, resp.StatusCode)
		}
	}

	traced := goldenTraceServer(t)
	resp, err := http.Get(traced.URL + "/v1/decisions/9999/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("explain for untraced request: status %d, want 404", resp.StatusCode)
	}
}

// TestDebugRuntime sanity-checks the runtime snapshot endpoint.
func TestDebugRuntime(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var info RuntimeInfo
	getJSON(t, ts.URL+"/debug/runtime", &info)
	if info.GoVersion == "" || info.Goroutines <= 0 || info.HeapBytes == 0 {
		t.Fatalf("implausible runtime info: %+v", info)
	}
}

// TestLockstepTracingEquivalence is the acceptance criterion: streaming
// the workload with the flight recorder attached must produce decisions
// bit-identical to the untraced offline reference, and the recorder must
// have captured every request's lifecycle.
func TestLockstepTracingEquivalence(t *testing.T) {
	for _, pool := range []int{1, 4} {
		t.Run(fmt.Sprintf("pool%d", pool), func(t *testing.T) {
			g, inst := testInstance(t)
			want, _, err := OfflineDecisions(g, inst, shortest.BuildHubLabels(g), "hub", 1, pool, nil)
			if err != nil {
				t.Fatal(err)
			}
			s := newTestServer(t, g, inst, func(c *Config) {
				c.Pool = pool
				c.TraceEvents = 4096
			})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			got := make(map[int32]Decision)
			for _, r := range sortedRequests(inst) {
				d := postRequest(t, ts.URL, r)
				got[d.ID] = d
			}
			checkEquivalence(t, got, want)

			var dump TraceDump
			getJSON(t, ts.URL+"/debug/trace", &dump)
			plans := 0
			for _, ev := range dump.Events {
				if ev.Kind == trace.KindPlan {
					plans++
				}
			}
			if plans != len(inst.Requests) {
				t.Fatalf("recorded %d plan events for %d requests", plans, len(inst.Requests))
			}

			// The explain body must agree with the decision the client got.
			r0 := sortedRequests(inst)[0]
			var ex Explain
			getJSON(t, fmt.Sprintf("%s/v1/decisions/%d/explain", ts.URL, r0.ID), &ex)
			d := got[int32(r0.ID)]
			if ex.ID != d.ID || ex.Accepted != d.Accepted || int32(ex.Worker) != d.Worker || ex.Delta != d.Delta {
				t.Fatalf("explain (accepted=%v worker=%d delta=%v) disagrees with decision (accepted=%v worker=%d delta=%v)",
					ex.Accepted, ex.Worker, ex.Delta, d.Accepted, d.Worker, d.Delta)
			}
			if ex.Evaluated+ex.Pruned != ex.Feasible {
				t.Fatalf("evaluated %d + pruned %d != feasible %d", ex.Evaluated, ex.Pruned, ex.Feasible)
			}
			if d.Accepted && (ex.Reason != "served" || ex.MarginalCost == nil || ex.MarginalGain == nil) {
				t.Fatalf("accepted request explain lacks marginal economics: %+v", ex)
			}
		})
	}
}
