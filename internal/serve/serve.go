// Package serve is the online dispatch service: a long-running wrapper
// around the planner/oracle/fleet stack that accepts URPSM requests over
// HTTP, admits them through a batching window, and plans them with the
// exact same code path as the offline simulator.
//
// # Architecture
//
// The server owns the live platform state — a core.Fleet, a sim.World
// (the advance/commit state machine shared with sim.Engine) and a greedy
// planner (serial core.Greedy or the parallel dispatcher). All mutation
// happens on one event-loop goroutine: HTTP handlers only enqueue pending
// requests and wait for their decision, so the planner never observes a
// half-advanced world.
//
// Admission is batched: a request waits at most Config.BatchWindow from
// the moment it is enqueued, and a batch is flushed early when it reaches
// Config.BatchSize. Within a batch, requests are processed in
// (release, arrival-sequence) order — the same order sim.Engine's stable
// sort produces — and the world is advanced to each request's release
// before planning it. Batching is purely an admission mechanism: it
// amortizes loop wakeups and lets the parallel dispatcher see deeper
// queues, but it never changes an individual decision.
//
// # Replay equivalence
//
// Because the server drives the same World, the same planner and the same
// distance oracle as the offline engine, a stream of requests delivered in
// release order produces bit-identical accept/reject decisions, worker
// assignments and Δ* values to sim.Engine.Run over the same instance.
// OfflineDecisions computes the reference side; cmd/urpsm-replay's
// -lockstep mode checks the equivalence over a live server. Out-of-order
// arrivals (a request released before the event clock already advanced
// past) are still admitted — planned at the current clock — but counted
// as late admissions, since they are exactly the cases where equivalence
// with an offline run can no longer be promised. See DESIGN.md §9.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Graph is the road network requests reference by vertex ID.
	Graph *roadnet.Graph
	// Workers is the initial fleet; the server operates on a private deep
	// copy. Ignored when Snapshot is set.
	Workers []*core.Worker
	// Snapshot, when non-nil, warm-starts the server from a saved state
	// (fleet routes mid-flight, counters, event clock) instead of Workers.
	Snapshot *Snapshot
	// Oracle is the base distance oracle (see cliutil.BuildOracle); the
	// server wraps it in the same cache/counter chain the experiment
	// harness uses. OracleKind names it in /v1/stats.
	Oracle     shortest.Oracle
	OracleKind string
	// Alpha is the unified-cost weight α; 0 means 1.
	Alpha float64
	// CellMeters is the spatial-grid cell size; 0 means 2000.
	CellMeters float64
	// BatchWindow bounds how long an admitted request may wait for its
	// batch; 0 means DefaultBatchWindow.
	BatchWindow time.Duration
	// BatchSize flushes a batch early once this many requests are
	// pending; 0 means DefaultBatchSize.
	BatchSize int
	// MaxQueue caps the admission queue: a submission that would leave
	// more than MaxQueue requests pending instead sheds the least
	// valuable request in sight — the newcomer included — chosen by the
	// Eq. 2 marginal-value order (deadline-infeasible first, then lowest
	// rejection penalty p_r, then latest release, then highest ID). The
	// victim's 429 verdict is delivered with its flush's commit group, so
	// the WAL sync-before-ack invariant holds for sheds too. 0 means
	// unbounded (the pre-overload-contract behavior). See DESIGN.md §15.
	MaxQueue int
	// DegradeTarget arms the graceful-degradation ladder: when the p95
	// per-request plan time of a flushed batch exceeds this target for
	// DegradeWindow consecutive batches the server degrades one stage —
	// 1 shrinks the effective batch size, 2 additionally plans serially
	// (bit-identical decisions, just no speculation), 3 additionally
	// tightens the shed cap — and recovers one stage in reverse after
	// DegradeWindow consecutive batches under half the target. 0
	// disables the ladder. See DESIGN.md §15.3.
	DegradeTarget time.Duration
	// DegradeWindow is the consecutive-batch hysteresis window of the
	// ladder; 0 means DefaultDegradeWindow.
	DegradeWindow int
	// Pool > 1 plans with the parallel dispatcher (bit-identical
	// decisions, see internal/dispatch) using that many goroutines.
	Pool int
	// WALDir enables the write-ahead log: every externally visible event
	// (admission batches, decisions, traffic updates, checkpoints) is
	// appended to WALDir/wal.log and fsynced once per admission batch
	// before any decision is acknowledged. On startup the server recovers
	// from WALDir/checkpoint.json plus the log tail, replayed through the
	// same event-loop code path as live traffic, then checkpoints and
	// truncates the log — so after NewServer returns, the state is durably
	// snapshotted and the segment is empty. Mutually exclusive with
	// Snapshot (the checkpoint IS the snapshot). See DESIGN.md §13.
	WALDir string
	// CheckpointBytes auto-checkpoints (snapshot + log truncation) after
	// a flush leaves the segment at least this large; 0 means
	// DefaultCheckpointBytes, negative disables auto-checkpointing.
	CheckpointBytes int64
	// AsyncRebuild rebuilds the preprocessed oracle tier in the
	// background after a traffic update, serving queries from a live
	// bidirectional-Dijkstra tier meanwhile: POST /v1/traffic returns
	// immediately and decisions keep flowing at degraded query latency.
	// The cost is the last bits of Δ* — but only while the live tier is
	// actually answering: different exact tiers sum the same shortest
	// path in different orders, so a decision taken mid-rebuild may
	// differ from the offline reference in the final float bits
	// (accept/reject and assignments still match in practice). With the
	// CCH tier the window is milliseconds (customization, not a
	// from-scratch contraction), and once the customized tier is
	// installed distances are bit-identical to a fresh build — quiesce
	// with WaitRebuild and replay equivalence is bit-exact even in async
	// mode (see TestLockstepEquivalenceCCHCustomize). Off by default —
	// the deterministic mode blocks the traffic update until the rebuild
	// lands and keeps replay equivalence bit-exact unconditionally. See
	// DESIGN.md §11.4 and §12.
	AsyncRebuild bool
	// NoBatchPrefetch disables the batched distance-table prefetch: by
	// default flush builds one dense many-to-many table per admission
	// batch (request endpoints × candidate route vertices, filled by a
	// single shortest.ManyToMany sweep over the current tier) and plans
	// the whole batch against it, collapsing per-batch dist_queries from
	// O(workers × requests × stops) point queries to table lookups. Every
	// table cell is bit-identical to the point query it replaces and
	// uncovered pairs fall back to the unchanged point chain, so decisions
	// are identical either way (DESIGN.md §16) — the knob exists for A/B
	// measurement and as an escape hatch, not for correctness.
	NoBatchPrefetch bool
	// TraceEvents enables the flight recorder (internal/trace): the ring
	// retains that many most-recent lifecycle events, the planner gets a
	// PlanObserver, and GET /debug/trace plus
	// GET /v1/decisions/{id}/explain serve the contents. 0 disables
	// tracing entirely — the plan path then runs with a nil observer
	// (zero overhead) and the urpsm_plan_seconds histogram stays empty;
	// the other latency histograms are always live. Tracing on or off
	// never changes a decision (DESIGN.md §14); the daemon default is
	// DefaultTraceEvents.
	TraceEvents int
	// Logger receives the server's structured logs; nil discards them.
	// cmd/urpsm-serve wires it to a slog handler behind -log-level.
	Logger *slog.Logger
	// Version labels the urpsm_build_info metric; empty means "dev".
	Version string
}

// DefaultTraceEvents is the flight-recorder capacity cmd/urpsm-serve
// uses unless -trace-events overrides it (~300 bytes per slot).
const DefaultTraceEvents = 4096

// DefaultBatchWindow is the default admission-window bound.
const DefaultBatchWindow = 20 * time.Millisecond

// DefaultCheckpointBytes is the default WAL auto-checkpoint threshold.
const DefaultCheckpointBytes = 8 << 20

// DefaultBatchSize is the default early-flush batch size.
const DefaultBatchSize = 64

// DefaultDegradeWindow is the default ladder hysteresis: stage changes
// need this many consecutive breaching (or recovered) batches.
const DefaultDegradeWindow = 4

// pending is one enqueued request waiting for its batch.
type pending struct {
	req *core.Request
	seq int64 // admission sequence, tie-break for equal releases
	// defRel marks a request whose body omitted release: it means "now",
	// resolved against the event clock at flush time — resolving at
	// admission would spuriously count the clock's in-between progress as
	// a late admission.
	defRel bool
	enq    time.Time
	done   chan Decision
}

// Server is the online dispatch service. Create with NewServer, expose
// with Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	alpha   float64
	window  time.Duration
	maxSize int

	fleet   *core.Fleet
	planner core.Planner
	// serialPlanner is the non-speculative fallback the ladder's stage 2
	// switches to; nil when the server already plans serially. Both
	// planners drive the same fleet and produce bit-identical decisions
	// (internal/dispatch's equivalence guarantee), so the switch is
	// invisible to replay.
	serialPlanner core.Planner
	world         *sim.World
	queries       shortest.QueryCounter
	// versioned is the epoch-aware oracle front the whole query chain
	// runs through; traffic coordinates epoch advances across it, the
	// fleet and the world. Both are mutated only under smu.
	versioned *shortest.Versioned
	traffic   *sim.Traffic

	// Batch-prefetch state (nil table = prefetch disabled). distChain is
	// the point-query chain fleet.Dist normally runs through; flush swaps
	// table.Dist in front of it for the duration of one batch and restores
	// it before releasing smu, so nothing outside a flush can observe the
	// table. All under smu.
	table           *core.DistTable
	tarena          *shortest.TableArena
	distChain       core.DistFunc
	prefCands       []*core.Worker
	tablePrefetches int

	// qmu guards the admission queue (and the ID counter, so the POST
	// path never waits on planning); smu guards platform state and
	// decision counters. flush holds smu for a whole batch, so reads
	// (stats, routes, snapshots) see batch-atomic state. The only
	// permitted nesting is qmu briefly inside smu (snapshotLocked reads
	// nextID); the reverse never occurs, so the order is deadlock-free.
	qmu      sync.Mutex
	pending  []*pending
	seq      int64
	nextID   int32
	draining bool
	// shedQ holds overload victims awaiting their 429 verdict; they are
	// drained with the next flush so the verdict is WAL-logged and synced
	// before any client observes it. submitted counts every request that
	// entered the admission pipeline (decided + shed + still pending).
	shedQ     []*pending
	submitted int

	// Effective admission limits, read lock-free by the event loop and
	// the submit path and rewritten (under smu) by the degradation
	// ladder: effBatch is the early-flush batch size, effQueue the
	// pending-queue cap (0 = unbounded), degradeStage the ladder stage
	// 0–3.
	effBatch     atomic.Int64
	effQueue     atomic.Int64
	degradeStage atomic.Int32

	smu sync.Mutex
	// trafficHistory records every applied update batch in order; it is
	// part of the snapshot so a warm restart reconstructs the weights
	// (the overlay itself is derived state). len(trafficHistory) == epoch.
	trafficHistory [][]roadnet.TrafficUpdate
	simTime        float64
	// simTimeBits mirrors simTime (float64 bits) for lock-free reads on
	// the admission path; written only under smu (flush and ApplyTraffic).
	simTimeBits    atomic.Uint64
	accepted       int
	rejected       int
	penaltySum     float64
	batches        int
	maxBatch       int
	lateAdmissions int
	latency        *latencyRing
	// Overload counters (smu): shed counts overload rejections — they
	// are bumped at flush time, alongside their WAL records, so recovery
	// reconstructs them exactly. The degrade* fields are the ladder's
	// hysteresis state and lifetime transition count.
	shed               int
	degradeTransitions int
	degradeBreach      int
	degradeOK          int
	planScratch        []float64
	shedScratch        []Decision

	// WAL state (all under smu; nil wal means logging is disabled). The
	// decided window carries every decision since the last checkpoint plus
	// the final commit group before it, so a client whose ack was lost to a
	// crash can resolve the ambiguity via GET /v1/decisions/{id}.
	wal            *wal.Log
	decided        map[int32]Decision
	lastGroup      []int32
	walRecovered   int
	walTornBytes   int
	walCheckpoints uint64
	walScratch     []byte
	flushScratch   []Decision

	// Observability plane. rec is the flight recorder (nil = tracing
	// disabled); the histograms are always live — observing them is a few
	// atomics, cannot affect a decision, and keeps the /metrics series
	// present either way. log is never nil (discard handler by default).
	rec         *trace.Recorder
	log         *slog.Logger
	histPlan    *trace.Histogram
	histFlush   *trace.Histogram
	histWALSync *trace.Histogram
	histAck     *trace.Histogram

	wakeC     chan struct{}
	stopC     chan struct{}
	doneC     chan struct{}
	killC     chan struct{}
	abortOnce sync.Once
}

// NewServer builds the fleet, planner and world and starts the event
// loop. The caller's workers are deep-copied, so the same instance can
// also feed an offline reference run.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if cfg.Oracle == nil {
		return nil, fmt.Errorf("serve: nil oracle")
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1
	}
	if cfg.CellMeters == 0 {
		cfg.CellMeters = 2000
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.CheckpointBytes == 0 {
		cfg.CheckpointBytes = DefaultCheckpointBytes
	}
	if cfg.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: negative MaxQueue %d", cfg.MaxQueue)
	}
	if cfg.DegradeWindow <= 0 {
		cfg.DegradeWindow = DefaultDegradeWindow
	}

	// WAL recovery, phase 1: the checkpoint becomes the warm-start
	// snapshot and the segment tail is decoded (torn bytes discarded at
	// the last complete record); the tail is replayed in phase 2, after
	// the platform state exists to replay it against.
	var walRecs []wal.Record
	var walNext uint64
	var walTorn int
	if cfg.WALDir != "" {
		if cfg.Snapshot != nil {
			return nil, fmt.Errorf("serve: WALDir and Snapshot are mutually exclusive (the WAL checkpoint is the snapshot)")
		}
		sn, recs, next, torn, err := loadWALDir(cfg.WALDir)
		if err != nil {
			return nil, err
		}
		cfg.Snapshot, walRecs, walNext, walTorn = sn, recs, next, torn
	}

	var workers []*core.Worker
	if cfg.Snapshot != nil {
		ws, err := cfg.Snapshot.Restore(cfg.Graph.NumVertices())
		if err != nil {
			return nil, fmt.Errorf("serve: snapshot: %w", err)
		}
		workers = ws
	} else {
		workers = cloneWorkers(cfg.Workers)
	}

	// The weight overlay is derived state: a snapshot carries the applied
	// update history, and replaying it reconstructs the exact multipliers
	// and epoch the previous run served under.
	overlay := roadnet.NewOverlay(cfg.Graph)
	var history [][]roadnet.TrafficUpdate
	if cfg.Snapshot != nil {
		for i, batch := range cfg.Snapshot.Traffic {
			if _, _, _, err := overlay.Apply(batch); err != nil {
				return nil, fmt.Errorf("serve: snapshot traffic batch %d: %w", i, err)
			}
		}
		if overlay.Epoch() != cfg.Snapshot.Epoch {
			return nil, fmt.Errorf("serve: snapshot epoch %d != %d replayed traffic batches",
				cfg.Snapshot.Epoch, overlay.Epoch())
		}
		for _, batch := range cfg.Snapshot.Traffic {
			history = append(history, append([]roadnet.TrafficUpdate(nil), batch...))
		}
	}

	versioned := shortest.AdoptVersioned(cfg.Graph, cfg.Oracle, shortest.AutoKind(cfg.OracleKind),
		shortest.DefaultAutoBudget(), cfg.AsyncRebuild)
	if overlay.Epoch() > 0 {
		// The adopted tier was built on the base weights; move the front to
		// the restored epoch (the live tier serves until the rebuild lands).
		versioned.Advance(overlay.Graph(), overlay.Epoch())
	}
	dist, queries := queryChain(versioned, cfg.Pool)
	fleet, err := core.NewFleet(overlay.Graph(), dist, workers, cfg.CellMeters)
	if err != nil {
		return nil, err
	}
	var planner, serialPlanner core.Planner
	if cfg.Pool > 1 {
		planner = dispatch.NewParallelPruneGreedyDP(fleet, cfg.Alpha, cfg.Pool)
		serialPlanner = core.NewPruneGreedyDP(fleet, cfg.Alpha)
	} else {
		planner = core.NewPruneGreedyDP(fleet, cfg.Alpha)
	}

	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}

	world := sim.NewWorld(fleet, shortest.NewBiDijkstra(overlay.Graph()))
	s := &Server{
		cfg:            cfg,
		alpha:          cfg.Alpha,
		window:         cfg.BatchWindow,
		maxSize:        cfg.BatchSize,
		fleet:          fleet,
		planner:        planner,
		serialPlanner:  serialPlanner,
		world:          world,
		queries:        queries,
		versioned:      versioned,
		traffic:        sim.NewTraffic(overlay, versioned, fleet, world),
		trafficHistory: history,
		latency:        newLatencyRing(8192),
		log:            logger,
		histPlan:       trace.NewHistogram(trace.LatencyBuckets()),
		histFlush:      trace.NewHistogram(trace.LatencyBuckets()),
		histWALSync:    trace.NewHistogram(trace.LatencyBuckets()),
		histAck:        trace.NewHistogram(trace.LatencyBuckets()),
		wakeC:          make(chan struct{}, 1),
		stopC:          make(chan struct{}),
		doneC:          make(chan struct{}),
		killC:          make(chan struct{}),
	}
	s.effBatch.Store(int64(cfg.BatchSize))
	s.effQueue.Store(int64(cfg.MaxQueue))
	if !cfg.NoBatchPrefetch {
		s.table = core.NewDistTable(cfg.Graph.NumVertices(), dist)
		s.tarena = shortest.NewTableArena()
		s.distChain = dist
	}
	if cfg.TraceEvents > 0 {
		// Attach the recorder before WAL replay so crash recovery shows up
		// in the timeline like any other traffic. Both planners implement
		// core.Observable; the type assertion future-proofs against ones
		// that do not.
		s.rec = trace.New(cfg.TraceEvents)
		s.rec.PlanSeconds = s.histPlan
		if obs, ok := planner.(core.Observable); ok {
			obs.SetObserver(s.rec)
		}
		if obs, ok := serialPlanner.(core.Observable); ok {
			obs.SetObserver(s.rec)
		}
	}
	if cfg.Snapshot != nil {
		s.simTime = cfg.Snapshot.SimTime
		s.nextID = cfg.Snapshot.NextID
		s.accepted = cfg.Snapshot.Accepted
		s.rejected = cfg.Snapshot.Rejected
		s.penaltySum = cfg.Snapshot.PenaltySum
		s.batches = cfg.Snapshot.Batches
		s.maxBatch = cfg.Snapshot.MaxBatch
		s.lateAdmissions = cfg.Snapshot.LateAdmissions
		s.shed = cfg.Snapshot.Shed
		s.submitted = cfg.Snapshot.Submitted
		s.world.RestoreStats(cfg.Snapshot.Completions, cfg.Snapshot.LateArrivals)
		s.traffic.RestoreStats(len(cfg.Snapshot.Traffic), cfg.Snapshot.InfeasibleStops)
	}
	s.simTimeBits.Store(math.Float64bits(s.simTime))
	if cfg.WALDir != "" {
		// WAL recovery, phase 2: seed the decided window from the
		// checkpoint, replay the log tail through the same decide path live
		// traffic uses, then checkpoint and truncate — NewServer returns
		// with the state durably snapshotted and the log empty.
		s.decided = make(map[int32]Decision)
		var after uint64
		if cfg.Snapshot != nil {
			after = cfg.Snapshot.WALSeq
			for _, d := range cfg.Snapshot.LastDecisions {
				s.decided[d.ID] = d
				s.lastGroup = append(s.lastGroup, d.ID)
			}
		}
		if err := s.replayWAL(walRecs, after); err != nil {
			return nil, fmt.Errorf("serve: wal replay: %w", err)
		}
		s.walTornBytes = walTorn
		if err := s.startWAL(walNext); err != nil {
			return nil, fmt.Errorf("serve: wal start: %w", err)
		}
	}
	go s.run()
	return s, nil
}

// queryChain assembles the distance-query chain over the epoch-aware
// oracle front, mirroring the experiment Runner: the serial planner gets
// the paper's single-threaded cache+counter, the parallel dispatcher the
// concurrency-safe equivalents. Versioned handles tier locking itself,
// and both caches watch its epoch, flushing on a traffic update.
func queryChain(v *shortest.Versioned, pool int) (core.DistFunc, shortest.QueryCounter) {
	if pool > 1 {
		ac := shortest.NewAtomicCounting(v)
		return shortest.NewShardedCached(ac, 1<<18, 64).Dist, ac
	}
	c := shortest.NewCounting(v)
	return shortest.NewCached(c, 1<<18).Dist, c
}

// cloneWorkers deep-copies a fleet so the server owns its state.
func cloneWorkers(workers []*core.Worker) []*core.Worker {
	out := make([]*core.Worker, len(workers))
	for i, w := range workers {
		cw := *w
		cw.Route = w.Route.Clone()
		out[i] = &cw
	}
	return out
}

// Planner reports the planning algorithm's name.
func (s *Server) Planner() string { return s.planner.Name() }

// submit enqueues a validated request and returns the channel its
// decision will arrive on. defaultRelease marks a request whose release
// was defaulted to "now" and is re-resolved at flush time. When the
// queue is at its cap, the least valuable request in sight — the
// newcomer included — is shed instead of enqueued: its channel still
// gets a verdict (Shed=true, surfaced as HTTP 429), delivered with the
// next flush after the shed is WAL-logged and synced.
func (s *Server) submit(req *core.Request, defaultRelease bool) (<-chan Decision, error) {
	now := s.eventTime()
	s.qmu.Lock()
	if s.draining {
		s.qmu.Unlock()
		return nil, errDraining
	}
	s.submitted++
	p := &pending{req: req, seq: s.seq, defRel: defaultRelease, enq: time.Now(), done: make(chan Decision, 1)}
	s.seq++
	var victim *pending
	if limit := int(s.effQueue.Load()); limit > 0 && len(s.pending) >= limit {
		victim = s.shedLockedQ(p, now)
	} else {
		s.pending = append(s.pending, p)
	}
	s.qmu.Unlock()
	if s.rec != nil {
		s.rec.Admit(now, int64(req.ID))
		if victim != nil {
			s.rec.Shed(now, int64(victim.req.ID), victim.req.Penalty)
		}
	}
	s.kick()
	return p.done, nil
}

// shedLockedQ admits p into a full queue by evicting the best shed
// victim among the pending requests and p itself, and returns the
// victim. The survivors keep their admission order. Caller holds qmu.
func (s *Server) shedLockedQ(p *pending, now float64) *pending {
	victim, vi := p, -1
	for i, q := range s.pending {
		if shedBefore(q, victim, now) {
			victim, vi = q, i
		}
	}
	if vi >= 0 {
		s.pending = append(s.pending[:vi], s.pending[vi+1:]...)
		s.pending = append(s.pending, p)
	}
	s.shedQ = append(s.shedQ, victim)
	return victim
}

// shedBefore is the deterministic shed order — the inverse of the
// priority-lane key (DESIGN.md §15.2): a request whose deadline the
// event clock already made infeasible sheds first (serving it can only
// burn fleet time), then the lowest Eq. 2 rejection penalty p_r (the
// cheapest request to turn away), then the latest release, then the
// highest ID. Every tie-breaker is a request attribute, never arrival
// timing, so replays shed the same victims.
func shedBefore(a, b *pending, now float64) bool {
	ai, bi := a.req.Deadline <= now, b.req.Deadline <= now
	if ai != bi {
		return ai
	}
	if a.req.Penalty != b.req.Penalty {
		return a.req.Penalty < b.req.Penalty
	}
	if a.req.Release != b.req.Release {
		return a.req.Release > b.req.Release
	}
	return a.req.ID > b.req.ID
}

// reserveID resolves a request's ID: the client's when supplied — bumping
// the server's counter past it so later *assigned* IDs never collide with
// an ID already seen — or the next server-assigned one. The ID namespace
// belongs to clients: a client may deliberately reuse an ID (the server
// never rejects one below the counter), which makes that client's own
// ETAs ambiguous but cannot affect decisions or other clients. Guarded by
// qmu, not smu, so admission never waits on a flushing batch.
func (s *Server) reserveID(client *int32) int32 {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if client != nil {
		if *client >= s.nextID && *client < math.MaxInt32 {
			s.nextID = *client + 1
		}
		return *client
	}
	id := s.nextID
	s.nextID++
	return id
}

func (s *Server) kick() {
	select {
	case s.wakeC <- struct{}{}:
	default:
	}
}

// run is the event loop: it sleeps until a batch is due (size reached or
// window expired) and flushes it.
func (s *Server) run() {
	defer close(s.doneC)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	disarm := func() {
		if armed && !timer.Stop() {
			<-timer.C
		}
		armed = false
	}
	for {
		select {
		case <-s.wakeC:
		case <-timer.C:
			armed = false
		case <-s.stopC:
			disarm()
			s.flush() // drain everything still pending
			return
		case <-s.killC:
			// Crash simulation (Abort): stop without draining, exactly as
			// if the process had been killed mid-flight.
			disarm()
			return
		}
		for {
			s.qmu.Lock()
			n := len(s.pending)
			nShed := len(s.shedQ)
			var oldest time.Time
			if n > 0 {
				oldest = s.pending[0].enq
			}
			s.qmu.Unlock()
			if n == 0 && nShed == 0 {
				disarm()
				break
			}
			if n == 0 {
				// Only shed verdicts are waiting (cannot normally happen — a
				// shed implies a full queue — but a ladder transition can
				// tighten the cap); deliver them without a batch.
				s.flush()
				continue
			}
			// The early-flush threshold is the ladder's *effective* batch
			// size, which stage 1 shrinks; read lock-free because the ladder
			// rewrites it under smu while this loop holds no lock.
			if n >= int(s.effBatch.Load()) || time.Since(oldest) >= s.window {
				s.flush()
				continue
			}
			disarm()
			timer.Reset(time.Until(oldest.Add(s.window)))
			armed = true
			break
		}
	}
}

// flush takes the whole pending queue as one batch and plans it in
// (release, admission-sequence) order — the order sim.Engine's stable
// release sort would process the same requests in. Overload victims
// parked on the shed queue ride along: their 429 verdicts open the
// batch's WAL commit group (stamped with the pre-batch event clock, so
// recovery can apply them verbatim) and are delivered only after the
// group's fsync — the sync-before-ack invariant covers sheds exactly
// like decisions.
func (s *Server) flush() {
	s.qmu.Lock()
	batch := s.pending
	s.pending = nil
	sheds := s.shedQ
	s.shedQ = nil
	s.qmu.Unlock()
	if len(batch) == 0 && len(sheds) == 0 {
		return
	}

	s.smu.Lock()
	defer s.smu.Unlock()
	flushStart := time.Now()
	// A defaulted release means "now": resolve it against the event clock
	// at flush time, so the clock's progress since admission is not
	// misread as an out-of-order arrival.
	for _, p := range batch {
		if p.defRel && p.req.Release < s.simTime {
			p.req.Release = s.simTime
		}
	}
	sort.Slice(batch, func(i, j int) bool {
		if batch[i].req.Release != batch[j].req.Release {
			return batch[i].req.Release < batch[j].req.Release
		}
		return batch[i].seq < batch[j].seq
	})
	if len(batch) > 0 {
		s.batches++
		if len(batch) > s.maxBatch {
			s.maxBatch = len(batch)
		}
	}
	if s.wal != nil {
		s.walScratch = wal.AppendBatch(s.walScratch[:0], len(batch), len(sheds))
		s.wal.Append(wal.TypeBatch, s.walScratch)
		s.lastGroup = s.lastGroup[:0]
	}
	shedDs := s.shedScratch[:0]
	for _, p := range sheds {
		d := Decision{
			ID:           int32(p.req.ID),
			Worker:       -1,
			SimTime:      s.simTime,
			Batch:        s.batches,
			Shed:         true,
			RetryAfterMs: s.retryAfterMs(),
		}
		s.shed++
		// Eq. 2 accounting: an unserved request costs its rejection
		// penalty p_r whether the planner or the shed policy turned it
		// away.
		s.penaltySum += p.req.Penalty
		if s.wal != nil {
			s.walScratch = wal.AppendShed(s.walScratch[:0], wal.Shed{
				ID: d.ID, Penalty: p.req.Penalty, SimTime: d.SimTime,
			})
			s.wal.Append(wal.TypeShed, s.walScratch)
			s.decided[d.ID] = d
			s.lastGroup = append(s.lastGroup, d.ID)
		}
		shedDs = append(shedDs, d)
	}
	tableActive := s.prefetchLocked(batch)
	ladderArmed := s.cfg.DegradeTarget > 0
	planDurs := s.planScratch[:0]
	ds := s.flushScratch[:0]
	for _, p := range batch {
		if s.wal != nil {
			s.walScratch = wal.AppendAdmission(s.walScratch[:0], wal.Admission{
				ID:       int32(p.req.ID),
				Origin:   int64(p.req.Origin),
				Dest:     int64(p.req.Dest),
				Release:  p.req.Release,
				Deadline: p.req.Deadline,
				Penalty:  p.req.Penalty,
				Capacity: int32(p.req.Capacity),
			})
			s.wal.Append(wal.TypeAdmission, s.walScratch)
		}
		var planStart time.Time
		if ladderArmed {
			planStart = time.Now()
		}
		d := s.decideLocked(p.req)
		if ladderArmed {
			planDurs = append(planDurs, time.Since(planStart).Seconds())
		}
		d.WaitMs = float64(time.Since(p.enq).Nanoseconds()) / 1e6
		s.latency.observe(d.WaitMs)
		if s.wal != nil {
			s.walScratch = wal.AppendDecision(s.walScratch[:0], wal.Decision{
				ID: d.ID, Accepted: d.Accepted, Worker: d.Worker, Delta: d.Delta, SimTime: d.SimTime,
			})
			s.wal.Append(wal.TypeDecision, s.walScratch)
			s.decided[d.ID] = d
			s.lastGroup = append(s.lastGroup, d.ID)
		}
		ds = append(ds, d)
	}
	if tableActive {
		s.fleet.Dist = s.distChain
	}
	// Group commit: one fsync makes the whole commit group durable, and no
	// decision is acknowledged before it. A sync failure is fail-stop —
	// acknowledging a non-durable decision would break the recovery
	// contract, so the server refuses to continue.
	if s.wal != nil {
		syncStart := time.Now()
		if err := s.wal.Sync(); err != nil {
			panic(fmt.Sprintf("serve: wal sync: %v", err))
		}
		syncDur := time.Since(syncStart)
		s.histWALSync.Observe(syncDur.Seconds())
		if s.rec != nil {
			s.rec.WALSync(s.simTime, len(ds)+len(shedDs), syncDur)
		}
	}
	for i, p := range sheds {
		d := shedDs[i]
		d.WaitMs = float64(time.Since(p.enq).Nanoseconds()) / 1e6
		p.done <- d
		s.histAck.Observe(time.Since(p.enq).Seconds())
	}
	for i, p := range batch {
		p.done <- ds[i]
		ackDur := time.Since(p.enq)
		s.histAck.Observe(ackDur.Seconds())
		if s.rec != nil {
			s.rec.Ack(s.simTime, int64(p.req.ID), ackDur)
		}
	}
	s.flushScratch = ds[:0]
	s.shedScratch = shedDs[:0]
	flushDur := time.Since(flushStart)
	s.histFlush.Observe(flushDur.Seconds())
	if s.rec != nil {
		s.rec.Flush(s.simTime, len(batch), flushDur)
	}
	if ladderArmed && len(planDurs) > 0 {
		s.ladderLocked(sim.Percentile(planDurs, 0.95))
	}
	s.planScratch = planDurs[:0]
	if s.log.Enabled(context.Background(), slog.LevelDebug) {
		s.log.Debug("batch flushed",
			"batch", s.batches, "n", len(batch), "sim_time", s.simTime,
			"accepted", s.accepted, "rejected", s.rejected,
			"flush_ms", float64(flushDur.Nanoseconds())/1e6)
	}
	if s.wal != nil && s.cfg.CheckpointBytes > 0 && s.wal.Size() >= s.cfg.CheckpointBytes {
		lsn, err := s.checkpointLocked()
		if err != nil {
			panic(fmt.Sprintf("serve: wal auto-checkpoint: %v", err))
		}
		s.log.Info("auto-checkpoint", "lsn", lsn, "checkpoints", s.walCheckpoints)
	}
}

// maxPrefetchCells bounds the per-batch distance table (32 MiB of
// float64 cells): a pathological batch past the cap simply plans with
// point queries, it never OOMs the server.
const maxPrefetchCells = 1 << 22

// prefetchLocked builds the batch's distance table and swaps it in front
// of the point chain; it returns whether the swap happened (the caller
// restores fleet.Dist after the decide loop). Caller holds smu.
//
// Endpoint registration is a superset argument, not an exact one: the
// columns are every request's origin and destination, the rows every
// route vertex of every candidate worker. Candidates are gathered with
// the pre-batch event clock and L set to the free Euclidean travel-time
// lower bound — the radius shrinks as the clock advances and as L
// grows, so with now ≤ plan-time clock and L ≤ plan-time
// Dist(origin, dest) a plan-time candidate set is a subset of the
// prefetched one up to workers that move between decides.
// Pairs the table missed (a mid-leg location after AdvanceAll, a worker
// that drifted into radius, a dest-to-dest query) fall back to the
// untouched point chain, so coverage gaps cost a point query, never a
// different decision. Prefetch is skipped entirely while an async
// rebuild is pending (CurrentTier declines): the live fallback tier has
// no bit-identical batched form.
func (s *Server) prefetchLocked(batch []*pending) bool {
	if s.table == nil || len(batch) == 0 {
		return false
	}
	tier, _, ok := s.versioned.CurrentTier()
	if !ok {
		return false
	}
	mtm := shortest.ManyToManyFor(tier)
	if mtm == nil {
		return false
	}
	s.table.Reset()
	s.prefCands = s.prefCands[:0]
	for _, p := range batch {
		s.table.AddRequest(p.req)
		lb := s.fleet.TravelTimeLB(p.req.Origin, p.req.Dest)
		s.prefCands = s.fleet.CandidatesAppend(s.prefCands, p.req, s.simTime, lb)
	}
	for _, w := range s.prefCands {
		s.table.AddWorker(w)
	}
	if n := s.table.CellCount(); n == 0 || n > maxPrefetchCells {
		return false
	}
	s.table.Install(mtm.Table(s.tarena, s.table.Rows(), s.table.Cols()))
	s.fleet.Dist = s.table.Dist
	s.tablePrefetches++
	return true
}

// decideLocked advances the world to the request's effective time and
// plans it — the one decide path live admission, drain and WAL replay
// all share, which is what turns crash recovery into just another
// replay (DESIGN.md §13). Caller holds smu (or is the single-threaded
// pre-loop recovery).
func (s *Server) decideLocked(req *core.Request) Decision {
	t := req.Release
	if t < s.simTime {
		// The event clock already passed this release (an out-of-order
		// arrival across batches): plan it now, but record that the
		// offline-equivalence premise was violated for this request.
		t = s.simTime
		s.lateAdmissions++
	}
	s.simTime = t
	s.simTimeBits.Store(math.Float64bits(t))
	s.world.AdvanceAll(t)
	// Ladder stage 2 plans serially: same fleet, same algorithm, no
	// speculation — internal/dispatch guarantees the decisions are
	// bit-identical, so the switch never shows up in a replay.
	pl := s.planner
	if s.serialPlanner != nil && s.degradeStage.Load() >= 2 {
		pl = s.serialPlanner
	}
	res := pl.OnRequest(t, req)
	d := Decision{
		ID:      int32(req.ID),
		Worker:  -1,
		SimTime: t,
		Batch:   s.batches,
	}
	if res.Served {
		s.accepted++
		s.world.MarkDirty(res.Worker)
		d.Accepted = true
		d.Worker = int32(res.Worker)
		d.Delta = res.Delta
		d.PickupETA, d.DropoffETA = stopETAs(&s.fleet.Workers[res.Worker].Route, req.ID)
	} else {
		s.rejected++
		s.penaltySum += req.Penalty
	}
	return d
}

// retryAfterMs is the backoff hint attached to shed verdicts: one batch
// window — the soonest the queue can have drained a batch. A pure
// function of configuration, so recovery reconstructs the same hint.
func (s *Server) retryAfterMs() int {
	ms := int(s.window / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// ladderLocked advances the graceful-degradation state machine after a
// flush (DESIGN.md §15.3). p95 is the batch's 95th-percentile
// per-request plan time in seconds; breaching the target for
// DegradeWindow consecutive batches degrades one stage, staying under
// half the target for as many batches recovers one. The half-target
// recovery band is deliberate hysteresis — a p95 hovering at the target
// would otherwise flap the ladder every window. Caller holds smu.
func (s *Server) ladderLocked(p95 float64) {
	target := s.cfg.DegradeTarget.Seconds()
	stage := int(s.degradeStage.Load())
	switch {
	case p95 > target:
		s.degradeBreach++
		s.degradeOK = 0
		if s.degradeBreach >= s.cfg.DegradeWindow && stage < 3 {
			s.setStageLocked(stage+1, "degrade")
			s.degradeBreach = 0
		}
	case p95 <= target/2:
		s.degradeOK++
		s.degradeBreach = 0
		if s.degradeOK >= s.cfg.DegradeWindow && stage > 0 {
			s.setStageLocked(stage-1, "recover")
			s.degradeOK = 0
		}
	default:
		s.degradeBreach = 0
		s.degradeOK = 0
	}
}

// setStageLocked moves the ladder to stage and rewrites the effective
// admission limits the event loop and submit path read lock-free:
// stage ≥ 1 quarters the early-flush batch size (smaller batches, more
// frequent event-clock catch-up), stage ≥ 2 switches decideLocked to
// the serial planner, stage 3 tightens the shed cap — halving
// MaxQueue, or imposing twice the effective batch size when admission
// was unbounded. Caller holds smu.
func (s *Server) setStageLocked(stage int, dir string) {
	s.degradeStage.Store(int32(stage))
	s.degradeTransitions++
	eb := s.cfg.BatchSize
	if stage >= 1 {
		if eb /= 4; eb < 1 {
			eb = 1
		}
	}
	s.effBatch.Store(int64(eb))
	limit := s.cfg.MaxQueue
	if stage >= 3 {
		if limit > 0 {
			if limit /= 2; limit < 1 {
				limit = 1
			}
		} else {
			limit = 2 * eb
		}
	}
	s.effQueue.Store(int64(limit))
	if s.rec != nil {
		s.rec.Degrade(s.simTime, stage, dir)
	}
	s.log.Warn("degradation ladder transition",
		"dir", dir, "stage", stage, "eff_batch", eb, "eff_queue", limit)
	// A shrunken batch size may make the pending queue immediately due.
	s.kick()
}

// stopETAs finds the planned arrival times at the request's pickup and
// drop-off in a freshly planned route.
func stopETAs(rt *core.Route, id core.RequestID) (pickup, dropoff float64) {
	for i, st := range rt.Stops {
		if st.Req != id {
			continue
		}
		if st.Kind == core.Pickup {
			pickup = rt.Arr[i]
		} else {
			dropoff = rt.Arr[i]
		}
	}
	return pickup, dropoff
}

// ApplyTraffic applies one batch of traffic updates at effective time
// max(event clock, at) — the same monotone rule the offline engine's
// timeline uses — advancing the world there first. It is the engine
// behind POST /v1/traffic. Updates are validated before any state moves;
// a validation error leaves the server untouched.
func (s *Server) ApplyTraffic(at *float64, ups []roadnet.TrafficUpdate) (TrafficResult, error) {
	s.smu.Lock()
	defer s.smu.Unlock()
	t := s.simTime
	if at != nil && *at > t {
		t = *at
	}
	// sim.Traffic.Apply validates the batch before the world moves, so a
	// rejected update leaves the server (clock included) untouched.
	res, err := s.traffic.Apply(t, ups)
	if err != nil {
		return TrafficResult{}, err
	}
	s.simTime = t
	s.simTimeBits.Store(math.Float64bits(t))
	s.trafficHistory = append(s.trafficHistory, append([]roadnet.TrafficUpdate(nil), ups...))
	if s.wal != nil {
		// Log the update as applied (effective time and epoch resolved) and
		// sync before acknowledging — a crashed client may blindly resend,
		// which is safe because factors set multipliers relative to the base
		// weights, so a duplicate apply reproduces identical weights.
		body, err := wal.AppendTraffic(s.walScratch[:0], wal.Traffic{At: t, Epoch: res.Epoch, Updates: ups})
		if err != nil {
			panic(fmt.Sprintf("serve: wal traffic encode: %v", err))
		}
		s.walScratch = body
		s.wal.Append(wal.TypeTraffic, body)
		if err := s.wal.Sync(); err != nil {
			panic(fmt.Sprintf("serve: wal sync: %v", err))
		}
	}
	if s.rec != nil {
		s.rec.TrafficEpoch(t, res.Epoch, res.ChangedEdges)
		// In synchronous mode the rebuild/customization has landed by now;
		// in async mode the counters describe the last completed one — the
		// in-flight rebuild appears on the next event.
		s.rec.Oracle(t, res.Epoch, s.versioned.Rebuilds(), s.versioned.LastRebuild())
	}
	s.log.Info("traffic applied",
		"epoch", res.Epoch, "sim_time", t, "changed_edges", res.ChangedEdges,
		"routes_repaired", res.Repair.RoutesRepaired, "infeasible_stops", res.Repair.InfeasibleStops)
	return TrafficResult{
		Epoch:           res.Epoch,
		SimTime:         t,
		ChangedEdges:    res.ChangedEdges,
		RoutesRepaired:  res.Repair.RoutesRepaired,
		InfeasibleStops: res.Repair.InfeasibleStops,
	}, nil
}

// Shutdown drains the server: new submissions are refused, everything
// already admitted is decided, and the event loop exits. It is safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.qmu.Lock()
	already := s.draining
	s.draining = true
	s.qmu.Unlock()
	if !already {
		close(s.stopC)
	}
	select {
	case <-s.doneC:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The loop has drained; take a final checkpoint so a restart replays
	// nothing, and close the segment.
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.wal == nil {
		return nil
	}
	_, err := s.checkpointLocked()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// Abort stops the server as a crash would: the event loop exits without
// draining, buffered unsynced WAL records are dropped and no checkpoint
// is taken — the in-process equivalent of kill -9, used by recovery
// tests. Safe to call more than once.
func (s *Server) Abort() {
	s.qmu.Lock()
	s.draining = true
	s.qmu.Unlock()
	s.abortOnce.Do(func() { close(s.killC) })
	<-s.doneC
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.wal != nil {
		s.wal.Abort()
		s.wal = nil
	}
}

// Stats returns a batch-atomic snapshot of the serving metrics.
func (s *Server) Stats() Stats {
	s.qmu.Lock()
	pendingN := len(s.pending)
	submitted := s.submitted
	s.qmu.Unlock()
	s.smu.Lock()
	defer s.smu.Unlock()
	total := s.accepted + s.rejected
	st := Stats{
		Algorithm:          s.planner.Name(),
		Oracle:             s.cfg.OracleKind,
		Workers:            len(s.fleet.Workers),
		SimTime:            s.simTime,
		Requests:           total,
		Accepted:           s.accepted,
		Rejected:           s.rejected,
		ServedRate:         core.ServedRate(s.accepted, total),
		TotalDistance:      s.fleet.TotalDistance(),
		PenaltySum:         s.penaltySum,
		Completions:        s.world.Completions(),
		LateArrivals:       s.world.LateArrivals(),
		Batches:            s.batches,
		MaxBatch:           s.maxBatch,
		LateAdmissions:     s.lateAdmissions,
		Pending:            pendingN,
		Submitted:          submitted,
		Shed:               s.shed,
		QueueLimit:         int(s.effQueue.Load()),
		DegradeState:       int(s.degradeStage.Load()),
		DegradeTransitions: s.degradeTransitions,
	}
	st.UnifiedCost = s.alpha*st.TotalDistance + st.PenaltySum
	st.TrafficEpoch = s.traffic.Epoch()
	st.TrafficUpdates = s.traffic.EventsApplied()
	st.InfeasibleStops = s.traffic.RepairStats().InfeasibleStops
	st.OracleRebuilds = s.versioned.Rebuilds()
	st.OracleCustomizations = s.versioned.Customizations()
	st.LastRebuildMs = float64(s.versioned.LastRebuild().Nanoseconds()) / 1e6
	if s.queries != nil {
		st.DistQueries = s.queries.Count()
	}
	st.TablePrefetches = s.tablePrefetches
	if s.table != nil {
		st.TableHits, st.TableMisses = s.table.Stats()
	}
	st.LatencyMs.P50 = s.latency.percentile(0.50)
	st.LatencyMs.P95 = s.latency.percentile(0.95)
	st.LatencyMs.P99 = s.latency.percentile(0.99)
	if s.wal != nil {
		st.WALEnabled = true
		st.WALRecords, st.WALBytes, st.WALSyncs = s.wal.Stats()
		st.WALSizeBytes = s.wal.Size()
	}
	st.WALCheckpoints = s.walCheckpoints
	st.WALRecovered = s.walRecovered
	st.WALTornBytes = s.walTornBytes
	if s.rec != nil {
		st.TraceEvents = s.rec.Len()
	}
	return st
}

// TraceRecorder returns the flight recorder, nil when tracing is
// disabled. Exposed for the daemon's shutdown dump and tests.
func (s *Server) TraceRecorder() *trace.Recorder { return s.rec }

// WorkerRoute returns the live route of one worker.
func (s *Server) WorkerRoute(id core.WorkerID) (core.WorkerState, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if int(id) < 0 || int(id) >= len(s.fleet.Workers) {
		return core.WorkerState{}, false
	}
	return core.NewWorkerState(s.fleet.Workers[id]), true
}

// TakeSnapshot captures the full serving state for crash recovery and
// warm restarts (FORMATS.md §5).
func (s *Server) TakeSnapshot() *Snapshot {
	s.smu.Lock()
	defer s.smu.Unlock()
	return s.snapshotLocked()
}

// snapshotLocked builds the snapshot under smu (qmu is briefly nested
// for the ID counter — the one sanctioned nesting order).
func (s *Server) snapshotLocked() *Snapshot {
	s.qmu.Lock()
	nextID := s.nextID
	submitted := s.submitted
	s.qmu.Unlock()
	sn := &Snapshot{
		Format:          SnapshotFormat,
		Version:         SnapshotVersion,
		SimTime:         s.simTime,
		Epoch:           s.traffic.Epoch(),
		NextID:          nextID,
		Accepted:        s.accepted,
		Rejected:        s.rejected,
		PenaltySum:      s.penaltySum,
		Batches:         s.batches,
		MaxBatch:        s.maxBatch,
		LateAdmissions:  s.lateAdmissions,
		Shed:            s.shed,
		Submitted:       submitted,
		Completions:     s.world.Completions(),
		LateArrivals:    s.world.LateArrivals(),
		InfeasibleStops: s.traffic.RepairStats().InfeasibleStops,
		Workers:         make([]core.WorkerState, len(s.fleet.Workers)),
	}
	for i, w := range s.fleet.Workers {
		sn.Workers[i] = core.NewWorkerState(w)
	}
	for _, batch := range s.trafficHistory {
		sn.Traffic = append(sn.Traffic, append([]roadnet.TrafficUpdate(nil), batch...))
	}
	return sn
}

// latencyRing keeps the most recent admission-to-decision latencies so a
// long-running server reports current percentiles in bounded memory.
type latencyRing struct {
	buf  []float64
	next int
}

func newLatencyRing(size int) *latencyRing {
	return &latencyRing{buf: make([]float64, 0, size)}
}

func (r *latencyRing) observe(ms float64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ms)
	} else {
		r.buf[r.next] = ms
	}
	r.next = (r.next + 1) % cap(r.buf)
}

// percentile returns the p-quantile of the retained window.
func (r *latencyRing) percentile(p float64) float64 {
	return sim.Percentile(append([]float64(nil), r.buf...), p)
}

// OfflineDecisions replays inst through the offline sim.Engine with the
// same planner and oracle wiring a Server with the given pool would use,
// and returns the per-request decisions keyed by request ID — the
// reference side of the replay-equivalence check (-lockstep). With a
// non-nil traffic profile the engine replays the same congestion trace a
// lockstep client injects via POST /v1/traffic (urpsm-replay -traffic),
// extending the equivalence guarantee to multi-epoch runs. The caller's
// instance is left untouched.
func OfflineDecisions(g *roadnet.Graph, inst *workload.Instance, oracle shortest.Oracle,
	oracleKind string, alpha float64, pool int, profile *roadnet.TrafficProfile) (map[int32]Decision, sim.Metrics, error) {
	if alpha == 0 {
		alpha = 1
	}
	overlay := roadnet.NewOverlay(g)
	versioned := shortest.AdoptVersioned(g, oracle, shortest.AutoKind(oracleKind),
		shortest.DefaultAutoBudget(), false)
	dist, queries := queryChain(versioned, pool)
	fleet, err := core.NewFleet(g, dist, cloneWorkers(inst.Workers), 2000)
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	var planner core.Planner
	if pool > 1 {
		planner = dispatch.NewParallelPruneGreedyDP(fleet, alpha, pool)
	} else {
		planner = core.NewPruneGreedyDP(fleet, alpha)
	}
	rec := &recordingPlanner{inner: planner, decisions: make(map[int32]Decision, len(inst.Requests))}
	eng := sim.NewEngine(fleet, rec, shortest.NewBiDijkstra(g), alpha)
	eng.Queries = queries
	tc := sim.NewTraffic(overlay, versioned, fleet, eng.World())
	if profile != nil {
		tc.SetProfile(*profile)
	}
	eng.Traffic = tc
	m, err := eng.Run(append([]*core.Request(nil), inst.Requests...))
	if err != nil {
		return nil, sim.Metrics{}, err
	}
	return rec.decisions, m, nil
}

// recordingPlanner captures each request's outcome as a Decision.
type recordingPlanner struct {
	inner     core.Planner
	decisions map[int32]Decision
}

func (r *recordingPlanner) Name() string { return r.inner.Name() }

func (r *recordingPlanner) OnRequest(now float64, req *core.Request) core.Result {
	res := r.inner.OnRequest(now, req)
	d := Decision{ID: int32(req.ID), Worker: -1, SimTime: now}
	if res.Served {
		d.Accepted = true
		d.Worker = int32(res.Worker)
		d.Delta = res.Delta
	}
	r.decisions[int32(req.ID)] = d
	return res
}
