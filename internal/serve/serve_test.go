package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// testInstance builds a small Chengdu-like instance on a generated
// network: ~150 requests, 6 workers, ~120 vertices.
func testInstance(t *testing.T) (*roadnet.Graph, *workload.Instance) {
	t.Helper()
	p := workload.ChengduLike(0.01)
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.BuildOn(p, g, shortest.NewBiDijkstra(g).Dist)
	if err != nil {
		t.Fatal(err)
	}
	return g, inst
}

// sortedRequests returns the instance's requests in the engine's
// processing order: stable by release.
func sortedRequests(inst *workload.Instance) []*core.Request {
	reqs := append([]*core.Request(nil), inst.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Release < reqs[j].Release })
	return reqs
}

func newTestServer(t *testing.T, g *roadnet.Graph, inst *workload.Instance, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Graph:       g,
		Workers:     inst.Workers,
		Oracle:      shortest.BuildHubLabels(g),
		OracleKind:  "hub",
		BatchWindow: time.Millisecond,
		BatchSize:   16,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// postRequest sends one request over HTTP and decodes the decision.
func postRequest(t *testing.T, url string, r *core.Request) Decision {
	t.Helper()
	id := int32(r.ID)
	rel := r.Release
	body, _ := json.Marshal(Request{
		ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
		Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty, Capacity: r.Capacity,
	})
	resp, err := http.Post(url+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/requests: status %d", resp.StatusCode)
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

// checkEquivalence compares served decisions against the offline
// reference: accept/reject, worker assignment and Δ* must be
// bit-identical.
func checkEquivalence(t *testing.T, got map[int32]Decision, want map[int32]Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decision count %d != offline %d", len(got), len(want))
	}
	mismatches := 0
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("request %d has no server decision", id)
		}
		if g.Accepted != w.Accepted || g.Worker != w.Worker || g.Delta != w.Delta {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("request %d: server (accepted=%v worker=%d delta=%v) != offline (accepted=%v worker=%d delta=%v)",
					id, g.Accepted, g.Worker, g.Delta, w.Accepted, w.Worker, w.Delta)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d decisions differ from offline engine", mismatches, len(want))
	}
}

// TestLockstepEquivalence is the in-process version of urpsm-replay
// -lockstep: requests streamed in release order over HTTP must produce
// decisions bit-identical to an offline sim.Engine run.
func TestLockstepEquivalence(t *testing.T) {
	for _, pool := range []int{1, 4} {
		t.Run(fmt.Sprintf("pool%d", pool), func(t *testing.T) {
			g, inst := testInstance(t)
			want, _, err := OfflineDecisions(g, inst, shortest.BuildHubLabels(g), "hub", 1, pool, nil)
			if err != nil {
				t.Fatal(err)
			}
			s := newTestServer(t, g, inst, func(c *Config) { c.Pool = pool })
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			got := make(map[int32]Decision)
			for _, r := range sortedRequests(inst) {
				d := postRequest(t, ts.URL, r)
				got[d.ID] = d
			}
			checkEquivalence(t, got, want)

			st := s.Stats()
			if st.Requests != len(inst.Requests) {
				t.Fatalf("stats requests %d != %d", st.Requests, len(inst.Requests))
			}
			if st.LateAdmissions != 0 {
				t.Fatalf("sequential streaming produced %d late admissions", st.LateAdmissions)
			}
			if st.LateArrivals != 0 {
				t.Fatalf("%d late arrivals", st.LateArrivals)
			}
		})
	}
}

// TestBatchFlushBySize checks that a full batch is decided without
// waiting for the window.
func TestBatchFlushBySize(t *testing.T) {
	g, inst := testInstance(t)
	const n = 8
	s := newTestServer(t, g, inst, func(c *Config) {
		c.BatchWindow = time.Hour // only the size bound may trigger
		c.BatchSize = n
	})
	reqs := sortedRequests(inst)[:n]
	var wg sync.WaitGroup
	decisions := make([]Decision, n)
	start := time.Now()
	for i, r := range reqs {
		done, err := s.submit(r, false)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, done <-chan Decision) {
			defer wg.Done()
			decisions[i] = <-done
		}(i, done)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size-triggered flush took %v", elapsed)
	}
	for _, d := range decisions[1:] {
		if d.Batch != decisions[0].Batch {
			t.Fatalf("requests spread over batches %d and %d", decisions[0].Batch, d.Batch)
		}
	}
}

// TestBatchFlushByWindow checks that a partial batch is decided once the
// window expires.
func TestBatchFlushByWindow(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) {
		c.BatchWindow = 20 * time.Millisecond
		c.BatchSize = 1 << 20 // only the window may trigger
	})
	r := sortedRequests(inst)[0]
	done, err := s.submit(r, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("window flush never happened")
	}
}

// TestShutdownDrains checks that pending requests are decided during
// shutdown and later submissions are refused.
func TestShutdownDrains(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) {
		c.BatchWindow = time.Hour
		c.BatchSize = 1 << 20
	})
	reqs := sortedRequests(inst)
	done, err := s.submit(reqs[0], false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-done:
		if d.ID != int32(reqs[0].ID) {
			t.Fatalf("drained decision for %d, want %d", d.ID, reqs[0].ID)
		}
	default:
		t.Fatal("pending request was not decided during drain")
	}
	if _, err := s.submit(reqs[1], false); err == nil {
		t.Fatal("submit after shutdown should fail")
	}
}

// TestSnapshotWarmRestartEquivalence serves the first half of a workload,
// snapshots, restores a second server from the snapshot, then serves the
// second half to both — decisions must match each other and the offline
// run of the full instance.
func TestSnapshotWarmRestartEquivalence(t *testing.T) {
	g, inst := testInstance(t)
	want, _, err := OfflineDecisions(g, inst, shortest.BuildHubLabels(g), "hub", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := sortedRequests(inst)
	half := len(reqs) / 2

	oracle := shortest.BuildHubLabels(g)
	s1 := newTestServer(t, g, inst, func(c *Config) { c.Oracle = oracle })
	got := make(map[int32]Decision)
	for _, r := range reqs[:half] {
		done, err := s1.submit(r, false)
		if err != nil {
			t.Fatal(err)
		}
		d := <-done
		got[d.ID] = d
	}

	// Round-trip the snapshot through its file encoding.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s1.TakeSnapshot()); err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Accepted+sn.Rejected != half {
		t.Fatalf("snapshot decided %d, want %d", sn.Accepted+sn.Rejected, half)
	}
	s2 := newTestServer(t, g, inst, func(c *Config) {
		c.Workers = nil
		c.Snapshot = sn
		c.Oracle = oracle
	})

	for _, r := range reqs[half:] {
		d1ch, err := s1.submit(r, false)
		if err != nil {
			t.Fatal(err)
		}
		d1 := <-d1ch
		r2 := *r
		d2ch, err := s2.submit(&r2, false)
		if err != nil {
			t.Fatal(err)
		}
		d2 := <-d2ch
		if d1.Accepted != d2.Accepted || d1.Worker != d2.Worker || d1.Delta != d2.Delta {
			t.Fatalf("request %d: restored server decision (accepted=%v worker=%d delta=%v) != original (accepted=%v worker=%d delta=%v)",
				d1.ID, d2.Accepted, d2.Worker, d2.Delta, d1.Accepted, d1.Worker, d1.Delta)
		}
		got[d1.ID] = d1
	}
	checkEquivalence(t, got, want)

	// A snapshot of the restored server matches a fresh snapshot of the
	// original byte for byte: warm restart loses nothing.
	var b1, b2 bytes.Buffer
	if err := WriteSnapshot(&b1, s1.TakeSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b2, s2.TakeSnapshot()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshots diverge after warm restart")
	}
}

// TestHTTPEndpoints smoke-tests the read-only API surface.
func TestHTTPEndpoints(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, r := range sortedRequests(inst)[:5] {
		postRequest(t, ts.URL, r)
	}

	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 5 || st.Accepted+st.Rejected != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Algorithm != "pruneGreedyDP" || st.Oracle != "hub" {
		t.Fatalf("stats identity: %+v", st)
	}

	var ws core.WorkerState
	getJSON(t, ts.URL+"/v1/workers/0/route", &ws)
	if ws.ID != 0 {
		t.Fatalf("worker route: %+v", ws)
	}
	resp, err := http.Get(ts.URL + "/v1/workers/999/route")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing worker: status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`urpsm_requests_total{outcome="accepted"}`,
		"urpsm_batches_total",
		"urpsm_sim_time_seconds",
		`urpsm_request_latency_milliseconds{quantile="0.5"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var sn Snapshot
	getJSON(t, ts.URL+"/v1/snapshot", &sn)
	if sn.Format != SnapshotFormat || len(sn.Workers) != len(inst.Workers) {
		t.Fatalf("snapshot endpoint: format=%q workers=%d", sn.Format, len(sn.Workers))
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRequestValidation checks the 400 paths of POST /v1/requests.
func TestRequestValidation(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name string
		body string
	}{
		{"bad json", `{`},
		{"origin out of range", `{"origin": 99999999, "dest": 1, "deadline": 100, "penalty": 1}`},
		{"negative dest", `{"origin": 0, "dest": -1, "deadline": 100, "penalty": 1}`},
		{"nan deadline", `{"origin": 0, "dest": 1, "deadline": 1e999, "penalty": 1}`},
		{"deadline before release", `{"origin": 0, "dest": 1, "release": 500, "deadline": 100, "penalty": 1}`},
		{"negative penalty", `{"origin": 0, "dest": 1, "deadline": 100, "penalty": -5}`},
		{"negative capacity", `{"origin": 0, "dest": 1, "deadline": 100, "penalty": 1, "capacity": -2}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestServerAssignsIDs checks the id-less submission path.
func TestServerAssignsIDs(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) Decision {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/requests", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var d Decision
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		return d
	}
	seen := map[int32]bool{}
	for i := 0; i < 3; i++ {
		d := post(`{"origin": 0, "dest": 1, "deadline": 100000, "penalty": 10}`)
		if seen[d.ID] {
			t.Fatalf("duplicate assigned id %d", d.ID)
		}
		seen[d.ID] = true
	}
	// A client-supplied ID reserves everything up to it: the next
	// server-assigned ID must not collide.
	if d := post(`{"id": 41, "origin": 0, "dest": 1, "deadline": 100000, "penalty": 10}`); d.ID != 41 {
		t.Fatalf("client id not echoed: %d", d.ID)
	}
	if d := post(`{"origin": 0, "dest": 1, "deadline": 100000, "penalty": 10}`); d.ID != 42 {
		t.Fatalf("assigned id %d collides with or skips past client id 41 (want 42)", d.ID)
	}
	// Negative client IDs are rejected.
	resp, err := http.Post(ts.URL+"/v1/requests", "application/json",
		strings.NewReader(`{"id": -7, "origin": 0, "dest": 1, "deadline": 100000, "penalty": 10}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative id: status %d, want 400", resp.StatusCode)
	}
}

// TestSnapshotRejectsBadInput exercises the decoder's validation.
func TestSnapshotRejectsBadInput(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"not json", "hello"},
		{"wrong format", `{"format": "urpsm-roadnet", "version": 1}`},
		{"wrong version", `{"format": "urpsm-snapshot", "version": 99}`},
		{"negative sim time", `{"format": "urpsm-snapshot", "version": 1, "sim_time": -4}`},
		{"nan penalty", `{"format": "urpsm-snapshot", "version": 1, "penalty_sum": 1e999}`},
		{"negative counter", `{"format": "urpsm-snapshot", "version": 1, "accepted": -1}`},
	} {
		if _, err := ReadSnapshot(strings.NewReader(tc.data)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}

	// Structurally fine JSON whose fleet is invalid must fail at Restore.
	sparse := `{"format": "urpsm-snapshot", "version": 1,
		"workers": [{"id": 1, "capacity": 2, "route": {"loc": 0}}]}`
	sn, err := ReadSnapshot(strings.NewReader(sparse))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sn.Restore(4); err == nil {
		t.Error("sparse worker IDs: expected Restore error")
	}
}
