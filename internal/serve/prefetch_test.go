package serve

// Batch-prefetch equivalence: the server's flush-time distance table must
// be invisible in decisions (DESIGN.md §16). This suite drives identical
// multi-request admission batches through a default server and a
// NoBatchPrefetch server and requires both to match the offline
// reference bit-for-bit, while the stats prove the default server really
// planned against tables.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shortest"
)

// runWaves streams the instance through s in waves of size batch,
// submitting each wave back-to-back (so it flushes as one admission
// batch) and waiting for its decisions before the next wave.
func runWaves(t *testing.T, s *Server, reqs []*core.Request, batch int) map[int32]Decision {
	t.Helper()
	got := make(map[int32]Decision, len(reqs))
	for start := 0; start < len(reqs); start += batch {
		wave := reqs[start:min(start+batch, len(reqs))]
		chans := make([]<-chan Decision, 0, len(wave))
		for _, r := range wave {
			rc := *r // servers must not share request storage
			ch, err := s.submit(&rc, false)
			if err != nil {
				t.Fatal(err)
			}
			chans = append(chans, ch)
		}
		for _, ch := range chans {
			select {
			case d := <-ch:
				got[d.ID] = d
			case <-time.After(10 * time.Second):
				t.Fatal("decision timed out")
			}
		}
	}
	return got
}

func TestBatchPrefetchEquivalence(t *testing.T) {
	g, inst := testInstance(t)
	want, _, err := OfflineDecisions(g, inst, shortest.BuildHubLabels(g), "hub", 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := sortedRequests(inst)
	const wave = 8
	mut := func(c *Config) {
		c.BatchWindow = 500 * time.Millisecond
		c.BatchSize = wave // flush exactly when a wave is fully enqueued
	}

	on := newTestServer(t, g, inst, mut)
	gotOn := runWaves(t, on, reqs, wave)
	checkEquivalence(t, gotOn, want)

	off := newTestServer(t, g, inst, func(c *Config) { mut(c); c.NoBatchPrefetch = true })
	gotOff := runWaves(t, off, reqs, wave)
	checkEquivalence(t, gotOff, want)

	stOn, stOff := on.Stats(), off.Stats()
	if stOn.MaxBatch < 2 {
		t.Fatalf("max batch %d: waves never formed a multi-request batch", stOn.MaxBatch)
	}
	if stOn.TablePrefetches == 0 || stOn.TableHits == 0 {
		t.Fatalf("default server planned without tables (prefetches=%d hits=%d)",
			stOn.TablePrefetches, stOn.TableHits)
	}
	if stOff.TablePrefetches != 0 || stOff.TableHits != 0 {
		t.Fatalf("NoBatchPrefetch server still prefetched (prefetches=%d hits=%d)",
			stOff.TablePrefetches, stOff.TableHits)
	}
	t.Logf("dist_queries: prefetch on %d (table hits %d, misses %d) vs off %d",
		stOn.DistQueries, stOn.TableHits, stOn.TableMisses, stOff.DistQueries)
}
