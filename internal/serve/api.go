package serve

// The /v1 wire types and HTTP handlers. Field sets and names are part of
// the persisted format contract documented in FORMATS.md §5; the golden
// fixtures under testdata/ pin them.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"

	"repro/internal/core"
	"repro/internal/roadnet"
)

// maxBodyBytes bounds a /v1/requests body; a request is a handful of
// scalars, so anything near this limit is garbage.
const maxBodyBytes = 1 << 20

var errDraining = errors.New("serve: shutting down, not accepting requests")

// Request is the body of POST /v1/requests: Definition 3 on the wire.
type Request struct {
	// ID is the client's request identifier, echoed in the decision. When
	// omitted the server assigns the next free one.
	ID *int32 `json:"id,omitempty"`
	// Origin and Dest are road-network vertex IDs.
	Origin int64 `json:"origin"`
	Dest   int64 `json:"dest"`
	// Release is the request's event time t_r in simulation seconds; when
	// omitted it defaults to the server's current event clock.
	Release *float64 `json:"release,omitempty"`
	// Deadline is the latest drop-off time e_r (absolute sim seconds).
	Deadline float64 `json:"deadline"`
	// Penalty is the rejection penalty p_r.
	Penalty float64 `json:"penalty"`
	// Capacity is the seat/item demand K_r; 0 means 1.
	Capacity int `json:"capacity,omitempty"`
}

// Decision is the response of POST /v1/requests.
type Decision struct {
	ID       int32 `json:"id"`
	Accepted bool  `json:"accepted"`
	// Worker is the assigned worker ID, -1 when rejected.
	Worker int32 `json:"worker"`
	// Delta is Δ*: the travel-time increase of serving the request.
	Delta float64 `json:"delta"`
	// PickupETA and DropoffETA are planned arrival times (absolute sim
	// seconds) at the request's stops, set when accepted.
	PickupETA  float64 `json:"pickup_eta,omitempty"`
	DropoffETA float64 `json:"dropoff_eta,omitempty"`
	// SimTime is the event-clock time the decision was made at.
	SimTime float64 `json:"sim_time"`
	// Batch is the 1-based admission batch that carried the request.
	Batch int `json:"batch,omitempty"`
	// WaitMs is the server-side admission-to-decision latency.
	WaitMs float64 `json:"wait_ms,omitempty"`
	// Shed reports that the request was turned away by the overload shed
	// policy (DESIGN.md §15) without being planned; delivered with HTTP
	// 429. Accepted is always false and Worker -1 on a shed decision.
	Shed bool `json:"shed,omitempty"`
	// RetryAfterMs is the deterministic backoff hint on a shed decision:
	// one batch window, the soonest the queue can have drained.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	Algorithm      string  `json:"algorithm"`
	Oracle         string  `json:"oracle"`
	Workers        int     `json:"workers"`
	SimTime        float64 `json:"sim_time"`
	Requests       int     `json:"requests"`
	Accepted       int     `json:"accepted"`
	Rejected       int     `json:"rejected"`
	ServedRate     float64 `json:"served_rate"`
	TotalDistance  float64 `json:"total_distance"`
	PenaltySum     float64 `json:"penalty_sum"`
	UnifiedCost    float64 `json:"unified_cost"`
	Completions    int     `json:"completions"`
	LateArrivals   int     `json:"late_arrivals"`
	Batches        int     `json:"batches"`
	MaxBatch       int     `json:"max_batch"`
	LateAdmissions int     `json:"late_admissions"`
	Pending        int     `json:"pending"`
	// Submitted counts every request that entered the admission path
	// (planned or shed); Shed counts those the overload policy turned
	// away with 429 (DESIGN.md §15). QueueLimit is the *effective*
	// pending cap (0 = unbounded) — MaxQueue unless ladder stage 3
	// tightened it. DegradeState is the current ladder stage (0 =
	// healthy … 3 = shedding) and DegradeTransitions counts every stage
	// change in either direction.
	Submitted          int    `json:"submitted"`
	Shed               int    `json:"shed"`
	QueueLimit         int    `json:"queue_limit"`
	DegradeState       int    `json:"degrade_state"`
	DegradeTransitions int    `json:"degrade_transitions"`
	DistQueries        uint64 `json:"dist_queries"`
	// TablePrefetches counts admission batches planned against a batched
	// many-to-many distance table (DESIGN.md §16); TableHits and
	// TableMisses count planner distance lookups the table answered vs.
	// sent through to the point chain (misses are also in DistQueries).
	// Process-lifetime counters, like the latency histograms.
	TablePrefetches int    `json:"table_prefetches"`
	TableHits       uint64 `json:"table_hits"`
	TableMisses     uint64 `json:"table_misses"`
	// TrafficEpoch is the current weight epoch (0 = base weights);
	// TrafficUpdates counts applied POST /v1/traffic batches, and
	// InfeasibleStops the promises broken by slowdowns (cumulative).
	TrafficEpoch    uint64 `json:"traffic_epoch"`
	TrafficUpdates  int    `json:"traffic_updates"`
	InfeasibleStops int    `json:"infeasible_stops"`
	// OracleRebuilds counts completed preprocessed-tier rebuilds;
	// OracleCustomizations counts how many of those took the CCH
	// customize fast path (re-deriving shortcut weights over the fixed
	// skeleton instead of preprocessing from scratch); LastRebuildMs is
	// the duration of the most recent rebuild or customization.
	OracleRebuilds       uint64  `json:"oracle_rebuilds"`
	OracleCustomizations uint64  `json:"oracle_customizations"`
	LastRebuildMs        float64 `json:"last_rebuild_ms"`
	// WALEnabled reports whether the write-ahead log is on; the WAL*
	// counters below are lifetime totals (zero when disabled).
	// WALRecovered counts records replayed at the last startup, and
	// WALTornBytes how many torn tail bytes that recovery discarded.
	WALEnabled     bool      `json:"wal_enabled"`
	WALRecords     uint64    `json:"wal_records"`
	WALBytes       uint64    `json:"wal_bytes"`
	WALSyncs       uint64    `json:"wal_syncs"`
	WALCheckpoints uint64    `json:"wal_checkpoints"`
	WALRecovered   int       `json:"wal_recovered"`
	WALTornBytes   int       `json:"wal_torn_bytes"`
	WALSizeBytes   int64     `json:"wal_size_bytes"`
	LatencyMs      LatencyMs `json:"latency_ms"`
	// TraceEvents is how many flight-recorder events are currently
	// retained (0 when tracing is disabled).
	TraceEvents int `json:"trace_events"`
}

// TrafficRequest is the body of POST /v1/traffic.
type TrafficRequest struct {
	// At is the event time in simulation seconds; the effective time is
	// max(event clock, at), and omitting it means "now". Lockstep traffic
	// injection (urpsm-replay -traffic) sets it to the trace event's time
	// so server and offline reference advance identically.
	At *float64 `json:"at,omitempty"`
	// Updates is the batch applied atomically as one epoch advance.
	Updates []roadnet.TrafficUpdate `json:"updates"`
}

// TrafficResult is the response of POST /v1/traffic.
type TrafficResult struct {
	Epoch           uint64  `json:"epoch"`
	SimTime         float64 `json:"sim_time"`
	ChangedEdges    int     `json:"changed_edges"`
	RoutesRepaired  int     `json:"routes_repaired"`
	InfeasibleStops int     `json:"infeasible_stops"`
}

// LatencyMs carries admission-to-decision latency percentiles over the
// most recent requests.
type LatencyMs struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// apiError is every non-200 body.
type apiError struct {
	Error string `json:"error"`
}

// CoreRequest validates the wire request against the graph and converts
// it, filling defaults (capacity 1; release = now when omitted).
func (r *Request) CoreRequest(g *roadnet.Graph, id int32, now float64) (*core.Request, error) {
	nv := int64(g.NumVertices())
	if r.Origin < 0 || r.Origin >= nv {
		return nil, fmt.Errorf("origin %d out of range [0,%d)", r.Origin, nv)
	}
	if r.Dest < 0 || r.Dest >= nv {
		return nil, fmt.Errorf("dest %d out of range [0,%d)", r.Dest, nv)
	}
	release := now
	if r.Release != nil {
		release = *r.Release
	}
	cap := r.Capacity
	if cap == 0 {
		cap = 1
	}
	if !finiteAll(release, r.Deadline, r.Penalty) {
		return nil, fmt.Errorf("non-finite time or penalty")
	}
	if r.ID != nil {
		if *r.ID < 0 {
			return nil, fmt.Errorf("negative request id %d", *r.ID)
		}
		id = *r.ID
	}
	req := &core.Request{
		ID:       core.RequestID(id),
		Origin:   roadnet.VertexID(r.Origin),
		Dest:     roadnet.VertexID(r.Dest),
		Release:  release,
		Deadline: r.Deadline,
		Penalty:  r.Penalty,
		Capacity: cap,
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return req, nil
}

func finiteAll(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Handler returns the /v1 + /metrics HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/requests", s.handleRequest)
	mux.HandleFunc("POST /v1/traffic", s.handleTraffic)
	mux.HandleFunc("GET /v1/workers/{id}/route", s.handleWorkerRoute)
	mux.HandleFunc("GET /v1/decisions/{id}", s.handleDecision)
	mux.HandleFunc("GET /v1/decisions/{id}/explain", s.handleExplain)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /debug/runtime", s.handleRuntime)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleRequest(w http.ResponseWriter, r *http.Request) {
	var body Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad json: " + err.Error()})
		return
	}
	if body.ID != nil && *body.ID < 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("negative request id %d", *body.ID)})
		return
	}
	id := s.reserveID(body.ID)
	now := s.eventTime()
	req, err := body.CoreRequest(s.cfg.Graph, id, now)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	done, err := s.submit(req, body.Release == nil)
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	}
	select {
	case d := <-done:
		if d.Shed {
			// Overload: the shed verdict is durable (it rode the batch's
			// WAL commit group) but the request was never planned. The
			// Retry-After header is the wire hint in whole seconds,
			// rounded up; the body carries the exact milliseconds.
			w.Header().Set("Retry-After", strconv.Itoa((d.RetryAfterMs+999)/1000))
			writeJSON(w, http.StatusTooManyRequests, d)
			return
		}
		writeJSON(w, http.StatusOK, d)
	case <-r.Context().Done():
		// The client went away; the request is already admitted and will
		// be decided with its batch — only the response is dropped.
	}
}

// eventTime reads the current event clock lock-free (the admission path
// must not wait on a flushing batch).
func (s *Server) eventTime() float64 {
	return math.Float64frombits(s.simTimeBits.Load())
}

// handleTraffic applies a live traffic update: one epoch advance through
// the whole stack (weights, oracle tiers, caches, route repair, leg
// caches). Invalid updates are rejected with 400 before any state moves.
func (s *Server) handleTraffic(w http.ResponseWriter, r *http.Request) {
	var body TrafficRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&body); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad json: " + err.Error()})
		return
	}
	if body.At != nil && !finiteAll(*body.At) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "non-finite at"})
		return
	}
	res, err := s.ApplyTraffic(body.At, body.Updates)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleWorkerRoute(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad worker id"})
		return
	}
	ws, ok := s.WorkerRoute(core.WorkerID(id))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no worker %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, ws)
}

// handleDecision resolves the crashed-ack ambiguity after a restart: 200
// with the stored decision when the request committed before the crash,
// 404 when it never did (safe to resend). Only decisions inside the
// bounded decided window are retained — see Server.DecisionFor.
func (s *Server) handleDecision(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil || id < 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request id"})
		return
	}
	d, ok := s.DecisionFor(int32(id))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no retained decision for request %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// handleCheckpoint forces a durable snapshot checkpoint + log
// truncation; 409 when the server runs without a WAL.
func (s *Server) handleCheckpoint(w http.ResponseWriter, _ *http.Request) {
	res, err := s.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrWALDisabled) {
			status = http.StatusConflict
		}
		writeJSON(w, status, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.TakeSnapshot())
}

// handleMetrics renders the stats in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP urpsm_requests_total Requests decided, by outcome.\n")
	p("# TYPE urpsm_requests_total counter\n")
	p("urpsm_requests_total{outcome=\"accepted\"} %d\n", st.Accepted)
	p("urpsm_requests_total{outcome=\"rejected\"} %d\n", st.Rejected)
	p("# HELP urpsm_pending_requests Requests admitted but not yet decided.\n")
	p("# TYPE urpsm_pending_requests gauge\n")
	p("urpsm_pending_requests %d\n", st.Pending)
	p("# HELP urpsm_submitted_total Requests that entered the admission path (planned or shed).\n")
	p("# TYPE urpsm_submitted_total counter\n")
	p("urpsm_submitted_total %d\n", st.Submitted)
	p("# HELP urpsm_shed_total Requests turned away by the overload shed policy (HTTP 429).\n")
	p("# TYPE urpsm_shed_total counter\n")
	p("urpsm_shed_total %d\n", st.Shed)
	p("# HELP urpsm_queue_limit Effective pending-queue cap (0 = unbounded).\n")
	p("# TYPE urpsm_queue_limit gauge\n")
	p("urpsm_queue_limit %d\n", st.QueueLimit)
	p("# HELP urpsm_degrade_state Degradation ladder stage (0 = healthy, 3 = shedding).\n")
	p("# TYPE urpsm_degrade_state gauge\n")
	p("urpsm_degrade_state %d\n", st.DegradeState)
	p("# HELP urpsm_degrade_transitions_total Degradation ladder stage changes, either direction.\n")
	p("# TYPE urpsm_degrade_transitions_total counter\n")
	p("urpsm_degrade_transitions_total %d\n", st.DegradeTransitions)
	p("# HELP urpsm_batches_total Admission batches flushed.\n")
	p("# TYPE urpsm_batches_total counter\n")
	p("urpsm_batches_total %d\n", st.Batches)
	p("# HELP urpsm_batch_size_max Largest batch flushed so far.\n")
	p("# TYPE urpsm_batch_size_max gauge\n")
	p("urpsm_batch_size_max %d\n", st.MaxBatch)
	p("# HELP urpsm_late_admissions_total Requests admitted after the event clock passed their release.\n")
	p("# TYPE urpsm_late_admissions_total counter\n")
	p("urpsm_late_admissions_total %d\n", st.LateAdmissions)
	p("# HELP urpsm_sim_time_seconds Event-clock time.\n")
	p("# TYPE urpsm_sim_time_seconds gauge\n")
	p("urpsm_sim_time_seconds %g\n", st.SimTime)
	p("# HELP urpsm_total_distance_seconds Fleet travel time, completed plus planned.\n")
	p("# TYPE urpsm_total_distance_seconds gauge\n")
	p("urpsm_total_distance_seconds %g\n", st.TotalDistance)
	p("# HELP urpsm_penalty_sum Accumulated rejection penalties.\n")
	p("# TYPE urpsm_penalty_sum gauge\n")
	p("urpsm_penalty_sum %g\n", st.PenaltySum)
	p("# HELP urpsm_unified_cost Unified cost alpha*distance + penalties.\n")
	p("# TYPE urpsm_unified_cost gauge\n")
	p("urpsm_unified_cost %g\n", st.UnifiedCost)
	p("# HELP urpsm_completions_total Drop-offs completed.\n")
	p("# TYPE urpsm_completions_total counter\n")
	p("urpsm_completions_total %d\n", st.Completions)
	p("# HELP urpsm_late_arrivals_total Drop-offs after their deadline (must stay 0).\n")
	p("# TYPE urpsm_late_arrivals_total counter\n")
	p("urpsm_late_arrivals_total %d\n", st.LateArrivals)
	p("# HELP urpsm_dist_queries_total Shortest-distance oracle queries.\n")
	p("# TYPE urpsm_dist_queries_total counter\n")
	p("urpsm_dist_queries_total %d\n", st.DistQueries)
	p("# HELP urpsm_table_prefetches_total Admission batches planned against a batched distance table.\n")
	p("# TYPE urpsm_table_prefetches_total counter\n")
	p("urpsm_table_prefetches_total %d\n", st.TablePrefetches)
	p("# HELP urpsm_table_hits_total Planner distance lookups answered from the batch table.\n")
	p("# TYPE urpsm_table_hits_total counter\n")
	p("urpsm_table_hits_total %d\n", st.TableHits)
	p("# HELP urpsm_table_misses_total Planner distance lookups that fell back to the point chain.\n")
	p("# TYPE urpsm_table_misses_total counter\n")
	p("urpsm_table_misses_total %d\n", st.TableMisses)
	p("# HELP urpsm_workers Fleet size.\n")
	p("# TYPE urpsm_workers gauge\n")
	p("urpsm_workers %d\n", st.Workers)
	p("# HELP urpsm_traffic_epoch Current weight epoch (0 = base weights).\n")
	p("# TYPE urpsm_traffic_epoch gauge\n")
	p("urpsm_traffic_epoch %d\n", st.TrafficEpoch)
	p("# HELP urpsm_traffic_updates_total Traffic update batches applied.\n")
	p("# TYPE urpsm_traffic_updates_total counter\n")
	p("urpsm_traffic_updates_total %d\n", st.TrafficUpdates)
	p("# HELP urpsm_infeasible_stops_total Planned stops made late by traffic updates.\n")
	p("# TYPE urpsm_infeasible_stops_total counter\n")
	p("urpsm_infeasible_stops_total %d\n", st.InfeasibleStops)
	p("# HELP urpsm_oracle_rebuilds_total Preprocessed-oracle rebuilds completed after epoch advances.\n")
	p("# TYPE urpsm_oracle_rebuilds_total counter\n")
	p("urpsm_oracle_rebuilds_total %d\n", st.OracleRebuilds)
	p("# HELP urpsm_oracle_customizations_total Oracle rebuilds that took the CCH customize fast path.\n")
	p("# TYPE urpsm_oracle_customizations_total counter\n")
	p("urpsm_oracle_customizations_total %d\n", st.OracleCustomizations)
	p("# HELP urpsm_oracle_rebuild_seconds Duration of the most recent oracle rebuild or customization.\n")
	p("# TYPE urpsm_oracle_rebuild_seconds gauge\n")
	p("urpsm_oracle_rebuild_seconds %g\n", st.LastRebuildMs/1e3)
	walOn := 0
	if st.WALEnabled {
		walOn = 1
	}
	p("# HELP urpsm_wal_enabled Whether the write-ahead log is on.\n")
	p("# TYPE urpsm_wal_enabled gauge\n")
	p("urpsm_wal_enabled %d\n", walOn)
	p("# HELP urpsm_wal_records_total WAL records appended.\n")
	p("# TYPE urpsm_wal_records_total counter\n")
	p("urpsm_wal_records_total %d\n", st.WALRecords)
	p("# HELP urpsm_wal_bytes_total WAL record bytes appended.\n")
	p("# TYPE urpsm_wal_bytes_total counter\n")
	p("urpsm_wal_bytes_total %d\n", st.WALBytes)
	p("# HELP urpsm_wal_syncs_total WAL group commits (one fsync per admission batch).\n")
	p("# TYPE urpsm_wal_syncs_total counter\n")
	p("urpsm_wal_syncs_total %d\n", st.WALSyncs)
	p("# HELP urpsm_wal_checkpoints_total Durable snapshot checkpoints taken (startup included).\n")
	p("# TYPE urpsm_wal_checkpoints_total counter\n")
	p("urpsm_wal_checkpoints_total %d\n", st.WALCheckpoints)
	p("# HELP urpsm_wal_recovered_records WAL records replayed at the last startup.\n")
	p("# TYPE urpsm_wal_recovered_records gauge\n")
	p("urpsm_wal_recovered_records %d\n", st.WALRecovered)
	p("# HELP urpsm_wal_torn_bytes Torn tail bytes discarded at the last startup.\n")
	p("# TYPE urpsm_wal_torn_bytes gauge\n")
	p("urpsm_wal_torn_bytes %d\n", st.WALTornBytes)
	p("# HELP urpsm_wal_size_bytes Live segment size since the last checkpoint.\n")
	p("# TYPE urpsm_wal_size_bytes gauge\n")
	p("urpsm_wal_size_bytes %d\n", st.WALSizeBytes)
	p("# HELP urpsm_request_latency_milliseconds Admission-to-decision latency over recent requests.\n")
	p("# TYPE urpsm_request_latency_milliseconds summary\n")
	p("urpsm_request_latency_milliseconds{quantile=\"0.5\"} %g\n", st.LatencyMs.P50)
	p("urpsm_request_latency_milliseconds{quantile=\"0.95\"} %g\n", st.LatencyMs.P95)
	p("urpsm_request_latency_milliseconds{quantile=\"0.99\"} %g\n", st.LatencyMs.P99)
	version := s.cfg.Version
	if version == "" {
		version = "dev"
	}
	p("# HELP urpsm_build_info Build and configuration identity; value is always 1.\n")
	p("# TYPE urpsm_build_info gauge\n")
	p("urpsm_build_info{version=%q,go=%q,oracle=%q,algorithm=%q} 1\n",
		version, runtime.Version(), st.Oracle, st.Algorithm)
	p("# HELP urpsm_graph_vertices Road-network vertex count.\n")
	p("# TYPE urpsm_graph_vertices gauge\n")
	p("urpsm_graph_vertices %d\n", s.cfg.Graph.NumVertices())
	p("# HELP urpsm_graph_edges Road-network edge count.\n")
	p("# TYPE urpsm_graph_edges gauge\n")
	p("urpsm_graph_edges %d\n", s.cfg.Graph.NumEdges())
	p("# HELP urpsm_trace_events Flight-recorder events retained (0 = tracing disabled).\n")
	p("# TYPE urpsm_trace_events gauge\n")
	p("urpsm_trace_events %d\n", st.TraceEvents)
	s.histPlan.WriteProm(w, "urpsm_plan_seconds",
		"Planner wall time per request (both phases); observed only while tracing is enabled.")
	s.histFlush.WriteProm(w, "urpsm_batch_flush_seconds",
		"Admission batch flush wall time (plan + WAL + ack for the whole batch).")
	s.histWALSync.WriteProm(w, "urpsm_wal_sync_seconds",
		"WAL group-commit fsync wall time.")
	s.histAck.WriteProm(w, "urpsm_admit_to_ack_seconds",
		"Admission-to-acknowledgment latency per request.")
}
