package serve

// WAL integration: loading a WAL directory at startup, replaying the log
// tail through the live decide path, and taking checkpoints that
// truncate the log. The framing and record codecs live in internal/wal;
// this file owns the recovery semantics (DESIGN.md §13):
//
//   - The commit group (TypeBatch + its shed records + its
//     admission/decision pairs) is the atomic unit. Decisions and shed
//     verdicts are only acknowledged after the group's fsync, so an
//     incomplete trailing group is discarded whole — none of its
//     decisions can have been observed.
//   - Replay runs admissions through the same decideLocked path as live
//     traffic; the logged decisions are not applied but *checked*, so a
//     divergence (corrupt log, changed config, different graph) surfaces
//     as a hard, diagnosable error instead of silent state drift.
//   - Shed records are the exception: a shed verdict depends on queue
//     *timing* (how full the admission queue was), which the log does not
//     reconstruct, so sheds are applied verbatim — with the one
//     re-checkable invariant (the stamped event clock) still bit-checked.
//   - A checkpoint is a serve snapshot carrying wal_lsn; recovery skips
//     records at or below it, which makes a crash between the checkpoint
//     rename and the segment rotation harmless.
//   - Every boot ends checkpointed: after NewServer returns, the state is
//     durably snapshotted and the segment is empty.

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/wal"
)

// ErrWALDisabled is returned by WAL-only operations (Checkpoint) on a
// server running without a WAL.
var ErrWALDisabled = errors.New("serve: wal disabled")

// loadWALDir reads a WAL directory: the checkpoint snapshot (nil when
// absent), the decoded segment records, the LSN the post-recovery
// segment starts at, and how many torn tail bytes were discarded.
func loadWALDir(dir string) (sn *Snapshot, recs []wal.Record, nextLSN uint64, torn int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, 0, fmt.Errorf("serve: wal dir: %w", err)
	}
	ckpt := filepath.Join(dir, wal.CheckpointName)
	if f, ferr := os.Open(ckpt); ferr == nil {
		sn, err = ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, nil, 0, 0, fmt.Errorf("serve: wal checkpoint %s: %w", ckpt, err)
		}
	} else if !errors.Is(ferr, fs.ErrNotExist) {
		return nil, nil, 0, 0, ferr
	}
	nextLSN = 1
	if sn != nil {
		nextLSN = sn.WALSeq + 1
	}
	seg := filepath.Join(dir, wal.SegmentName)
	if data, ferr := os.ReadFile(seg); ferr == nil {
		start, rs, clean, derr := wal.DecodeSegment(data)
		if derr != nil {
			return nil, nil, 0, 0, fmt.Errorf("serve: wal segment %s: %w", seg, derr)
		}
		if start > nextLSN {
			return nil, nil, 0, 0, fmt.Errorf(
				"serve: wal segment starts at lsn %d but the checkpoint covers only lsn %d — checkpoint lost or regressed",
				start, nextLSN-1)
		}
		recs, torn = rs, len(data)-clean
		for _, r := range rs {
			if r.LSN >= nextLSN {
				nextLSN = r.LSN + 1
			}
		}
	} else if !errors.Is(ferr, fs.ErrNotExist) {
		return nil, nil, 0, 0, ferr
	}
	return sn, recs, nextLSN, torn, nil
}

// replayWAL applies the log tail: records at or below afterLSN are
// already covered by the checkpoint and skipped. Runs single-threaded
// before the event loop starts, so no locks are held.
func (s *Server) replayWAL(recs []wal.Record, afterLSN uint64) error {
	i := 0
	for i < len(recs) {
		r := recs[i]
		if r.LSN <= afterLSN {
			// Covered by the checkpoint. Commit groups are synced and
			// checkpointed atomically, so a checkpoint boundary can only fall
			// between groups; one that split a group would surface below as a
			// pair record at top level.
			i++
			continue
		}
		switch r.Type {
		case wal.TypeCheckpoint:
			i++
		case wal.TypeTraffic:
			if err := s.replayTraffic(r); err != nil {
				return err
			}
			s.walRecovered++
			i++
		case wal.TypeBatch:
			pairs, sheds, err := wal.DecodeBatch(r.Body)
			if err != nil {
				return fmt.Errorf("lsn %d: %w", r.LSN, err)
			}
			size := 1 + sheds + 2*pairs
			if i+size > len(recs) {
				// Incomplete trailing commit group: none of its decisions or
				// shed verdicts can have been acknowledged (the ack happens
				// only after the group's fsync), so the whole group is
				// discarded.
				return nil
			}
			if err := s.replayGroup(recs[i+1:i+size], sheds); err != nil {
				return err
			}
			s.submitted += pairs + sheds
			s.walRecovered += size
			i += size
		default:
			return fmt.Errorf("lsn %d: record type %d outside a commit group", r.LSN, r.Type)
		}
	}
	return nil
}

// replayGroup replays one commit group: the leading sheds shed records
// are applied verbatim (queue timing is not reconstructible from the
// log), then the admissions are re-decided and checked bit-exactly
// against the logged decisions.
func (s *Server) replayGroup(group []wal.Record, sheds int) error {
	pairs := group[sheds:]
	if len(pairs) > 0 {
		s.batches++
		if len(pairs)/2 > s.maxBatch {
			s.maxBatch = len(pairs) / 2
		}
	}
	s.lastGroup = s.lastGroup[:0]
	for k := 0; k < sheds; k++ {
		r := group[k]
		if r.Type != wal.TypeShed {
			return fmt.Errorf("lsn %d: commit group declares %d shed records, got record type %d",
				r.LSN, sheds, r.Type)
		}
		sh, err := wal.DecodeShed(r.Body)
		if err != nil {
			return fmt.Errorf("lsn %d: %w", r.LSN, err)
		}
		if math.Float64bits(sh.SimTime) != math.Float64bits(s.simTime) {
			return fmt.Errorf("lsn %d: shed record stamped at event time %x but the replay clock is %x — "+
				"log corrupt or server configuration changed",
				r.LSN, math.Float64bits(sh.SimTime), math.Float64bits(s.simTime))
		}
		if math.IsNaN(sh.Penalty) || math.IsInf(sh.Penalty, 0) || sh.Penalty < 0 {
			return fmt.Errorf("lsn %d: bad shed penalty %v", r.LSN, sh.Penalty)
		}
		if sh.ID >= s.nextID && sh.ID < math.MaxInt32 {
			s.nextID = sh.ID + 1
		}
		s.shed++
		s.penaltySum += sh.Penalty
		d := Decision{
			ID:           sh.ID,
			Worker:       -1,
			SimTime:      sh.SimTime,
			Batch:        s.batches,
			Shed:         true,
			RetryAfterMs: s.retryAfterMs(),
		}
		s.decided[d.ID] = d
		s.lastGroup = append(s.lastGroup, d.ID)
	}
	for k := 0; k+1 < len(pairs); k += 2 {
		ar, dr := pairs[k], pairs[k+1]
		if ar.Type != wal.TypeAdmission || dr.Type != wal.TypeDecision {
			return fmt.Errorf("lsn %d: commit group wants admission/decision pairs, got record types %d/%d",
				ar.LSN, ar.Type, dr.Type)
		}
		a, err := wal.DecodeAdmission(ar.Body)
		if err != nil {
			return fmt.Errorf("lsn %d: %w", ar.LSN, err)
		}
		want, err := wal.DecodeDecision(dr.Body)
		if err != nil {
			return fmt.Errorf("lsn %d: %w", dr.LSN, err)
		}
		nv := int64(s.cfg.Graph.NumVertices())
		if a.Origin < 0 || a.Origin >= nv || a.Dest < 0 || a.Dest >= nv {
			return fmt.Errorf("lsn %d: admission vertices (%d,%d) out of range [0,%d) — log from a different network?",
				ar.LSN, a.Origin, a.Dest, nv)
		}
		req := &core.Request{
			ID:       core.RequestID(a.ID),
			Origin:   roadnet.VertexID(a.Origin),
			Dest:     roadnet.VertexID(a.Dest),
			Release:  a.Release,
			Deadline: a.Deadline,
			Penalty:  a.Penalty,
			Capacity: int(a.Capacity),
		}
		if err := req.Validate(); err != nil {
			return fmt.Errorf("lsn %d: bad admission: %w", ar.LSN, err)
		}
		if a.ID >= s.nextID && a.ID < math.MaxInt32 {
			s.nextID = a.ID + 1
		}
		d := s.decideLocked(req)
		if d.ID != want.ID || d.Accepted != want.Accepted || d.Worker != want.Worker ||
			math.Float64bits(d.Delta) != math.Float64bits(want.Delta) ||
			math.Float64bits(d.SimTime) != math.Float64bits(want.SimTime) {
			return fmt.Errorf("lsn %d: replay diverged from logged decision for request %d: "+
				"replay {accepted:%v worker:%d delta:%x sim:%x} vs log {accepted:%v worker:%d delta:%x sim:%x} — "+
				"log corrupt or server configuration changed",
				dr.LSN, want.ID,
				d.Accepted, d.Worker, math.Float64bits(d.Delta), math.Float64bits(d.SimTime),
				want.Accepted, want.Worker, math.Float64bits(want.Delta), math.Float64bits(want.SimTime))
		}
		s.decided[d.ID] = d
		s.lastGroup = append(s.lastGroup, d.ID)
	}
	return nil
}

// replayTraffic re-applies one logged traffic epoch advance and checks
// that it reproduces the logged epoch.
func (s *Server) replayTraffic(r wal.Record) error {
	tr, err := wal.DecodeTraffic(r.Body)
	if err != nil {
		return fmt.Errorf("lsn %d: %w", r.LSN, err)
	}
	if tr.At < s.simTime {
		return fmt.Errorf("lsn %d: traffic time %g behind event clock %g", r.LSN, tr.At, s.simTime)
	}
	res, err := s.traffic.Apply(tr.At, tr.Updates)
	if err != nil {
		return fmt.Errorf("lsn %d: traffic replay: %w", r.LSN, err)
	}
	if res.Epoch != tr.Epoch {
		return fmt.Errorf("lsn %d: traffic replay produced epoch %d, log says %d", r.LSN, res.Epoch, tr.Epoch)
	}
	s.simTime = tr.At
	s.simTimeBits.Store(math.Float64bits(tr.At))
	s.trafficHistory = append(s.trafficHistory, append([]roadnet.TrafficUpdate(nil), tr.Updates...))
	return nil
}

// startWAL writes the startup checkpoint and opens a fresh segment,
// establishing the at-rest invariant of every boot: state durably
// snapshotted, log empty.
func (s *Server) startWAL(nextLSN uint64) error {
	if nextLSN == 0 {
		nextLSN = 1
	}
	sn := s.snapshotLocked()
	sn.WALSeq = nextLSN - 1
	sn.LastDecisions = s.lastDecisions()
	if err := SaveSnapshotFile(filepath.Join(s.cfg.WALDir, wal.CheckpointName), sn); err != nil {
		return err
	}
	lg, err := wal.Create(filepath.Join(s.cfg.WALDir, wal.SegmentName), nextLSN)
	if err != nil {
		return err
	}
	s.wal = lg
	s.walCheckpoints++
	return nil
}

// lastDecisions materializes the final commit group's decisions in
// admission order — the ambiguity window a checkpoint must keep alive
// for clients whose ack a crash swallowed.
func (s *Server) lastDecisions() []Decision {
	if len(s.lastGroup) == 0 {
		return nil
	}
	out := make([]Decision, 0, len(s.lastGroup))
	for _, id := range s.lastGroup {
		if d, ok := s.decided[id]; ok {
			out = append(out, d)
		}
	}
	return out
}

// checkpointLocked makes the current state durable and truncates the
// log: the checkpoint record is appended and synced (pinning the covered
// LSN), the snapshot is written with full fsync discipline, then the
// segment rotates. A crash between any two of those steps is safe —
// recovery skips records at or below the snapshot's wal_lsn, and an
// unrotated segment is just a longer skipped prefix. Caller holds smu.
func (s *Server) checkpointLocked() (uint64, error) {
	lsn := s.wal.Append(wal.TypeCheckpoint, nil)
	if err := s.wal.Sync(); err != nil {
		return 0, err
	}
	sn := s.snapshotLocked()
	sn.WALSeq = lsn
	sn.LastDecisions = s.lastDecisions()
	if err := SaveSnapshotFile(filepath.Join(s.cfg.WALDir, wal.CheckpointName), sn); err != nil {
		return 0, err
	}
	if err := s.wal.Rotate(lsn + 1); err != nil {
		return 0, err
	}
	// Shrink the decided window to the final commit group; everything
	// older is covered by the checkpoint and can no longer be an un-acked
	// in-flight request.
	clear(s.decided)
	for _, d := range sn.LastDecisions {
		s.decided[d.ID] = d
	}
	s.walCheckpoints++
	return lsn, nil
}

// CheckpointResult is the response of POST /v1/checkpoint.
type CheckpointResult struct {
	// LSN is the log sequence number the checkpoint covers through.
	LSN uint64 `json:"lsn"`
	// Checkpoints is the lifetime checkpoint count (startup included).
	Checkpoints uint64 `json:"checkpoints"`
}

// Checkpoint forces a durable snapshot checkpoint and log truncation.
func (s *Server) Checkpoint() (CheckpointResult, error) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.wal == nil {
		return CheckpointResult{}, ErrWALDisabled
	}
	lsn, err := s.checkpointLocked()
	if err != nil {
		return CheckpointResult{}, err
	}
	return CheckpointResult{LSN: lsn, Checkpoints: s.walCheckpoints}, nil
}

// DecisionFor reports the retained decision for a request ID, if it is
// still inside the decided window (every decision since the last
// checkpoint, plus the final commit group before it). It resolves the
// crashed-ack ambiguity: a client that never heard back for an in-flight
// request asks here after the server restarts — found means the decision
// was durable before the crash, not found means the request never
// committed and is safe to resend. Always empty when the WAL is
// disabled.
func (s *Server) DecisionFor(id int32) (Decision, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	d, ok := s.decided[id]
	return d, ok
}
