package serve

// The observability endpoints: the flight-recorder dump (/debug/trace),
// per-decision introspection (/v1/decisions/{id}/explain) and the
// runtime snapshot (/debug/runtime). Wire shapes are documented in
// FORMATS.md §9 and pinned by the golden fixtures under testdata/.

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/metrics"
	"strconv"

	"repro/internal/trace"
)

// TraceDump is the body of GET /debug/trace: the retained lifecycle
// events in oldest→newest order.
type TraceDump struct {
	Capacity int           `json:"capacity"`
	Events   []trace.Event `json:"events"`
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.rec == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "tracing disabled (run with trace events > 0)"})
		return
	}
	writeJSON(w, http.StatusOK, TraceDump{
		Capacity: s.rec.Capacity(),
		Events:   s.rec.Events(make([]trace.Event, 0, s.rec.Len())),
	})
}

// Explain is the body of GET /v1/decisions/{id}/explain: why a request
// was served or rejected, reconstructed from its retained plan event.
type Explain struct {
	ID       int32 `json:"id"`
	Accepted bool  `json:"accepted"`
	// Reason is the outcome classification (core.RejectReason wire name):
	// served, no_candidates, decision_lower_bound, no_feasible_insertion
	// or post_check.
	Reason  string  `json:"reason"`
	SimTime float64 `json:"sim_time"`
	// Candidates is the grid-filtered candidate count; Feasible how many
	// survived the decision phase; Evaluated how many exact insertions
	// ran; Pruned how many Lemma 8 skipped; FeasibleInsertions how many
	// evaluations produced a feasible plan; DPCells the DP work.
	Candidates         int   `json:"candidates"`
	Feasible           int   `json:"feasible"`
	Evaluated          int   `json:"evaluated"`
	Pruned             int   `json:"pruned"`
	FeasibleInsertions int   `json:"feasible_insertions"`
	DPCells            int64 `json:"dp_cells"`
	// MinLowerBound is the smallest decision-phase LBΔ* (absent when no
	// candidate was feasible); Direct is dis(o_r, d_r).
	MinLowerBound float64 `json:"min_lower_bound,omitempty"`
	Direct        float64 `json:"direct"`
	// Worker is the chosen worker (-1 when rejected); PickupPos/DropPos
	// the insertion positions (pickup after stop I, drop-off after stop
	// J of the pre-insertion route); Delta the exact Δ*.
	Worker    int32   `json:"worker"`
	PickupPos int     `json:"pickup_pos,omitempty"`
	DropPos   int     `json:"drop_pos,omitempty"`
	Delta     float64 `json:"delta,omitempty"`
	// Penalty is p_r; MarginalCost is α·Δ* and MarginalGain the Eq. 2
	// marginal revenue of acceptance, p_r − α·Δ* (present when a plan
	// was found, i.e. served or post_check).
	Penalty      float64  `json:"penalty"`
	MarginalCost *float64 `json:"marginal_cost,omitempty"`
	MarginalGain *float64 `json:"marginal_gain,omitempty"`
	// TopCandidates is the retained scan-order prefix of the candidate
	// set with its decision-phase lower bounds.
	TopCandidates []trace.Cand `json:"top_candidates"`
	Parallel      bool         `json:"parallel,omitempty"`
	PlanNs        int64        `json:"plan_ns"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil || id < 0 {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request id"})
		return
	}
	if s.rec == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "tracing disabled (run with trace events > 0)"})
		return
	}
	ev, ok := s.rec.FindPlan(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{
			Error: fmt.Sprintf("no retained trace for request %d (never planned, or evicted from the ring)", id)})
		return
	}
	ex := Explain{
		ID:                 int32(ev.Req),
		Accepted:           ev.Worker >= 0,
		Reason:             ev.Reason,
		SimTime:            ev.Now,
		Candidates:         int(ev.Candidates),
		Feasible:           int(ev.Feasible),
		Evaluated:          int(ev.Evaluated),
		Pruned:             int(ev.Pruned),
		FeasibleInsertions: int(ev.FeasibleIns),
		DPCells:            ev.DPCells,
		MinLowerBound:      ev.MinLB,
		Direct:             ev.L,
		Worker:             int32(ev.Worker),
		PickupPos:          int(ev.PickupPos),
		DropPos:            int(ev.DropPos),
		Delta:              ev.Delta,
		Penalty:            ev.Penalty,
		TopCandidates:      ev.TopCands(),
		Parallel:           ev.Parallel,
		PlanNs:             ev.DurNs,
	}
	if ex.TopCandidates == nil {
		ex.TopCandidates = []trace.Cand{}
	}
	if ev.Reason == "served" || ev.Reason == "post_check" {
		cost := s.alpha * ev.Delta
		gain := ev.Penalty - cost
		ex.MarginalCost = &cost
		ex.MarginalGain = &gain
	}
	writeJSON(w, http.StatusOK, ex)
}

// RuntimeInfo is the body of GET /debug/runtime: a small, dependency-
// free snapshot of the Go runtime from runtime/metrics, complementing
// the -pprof listener for quick health checks.
type RuntimeInfo struct {
	GoVersion     string  `json:"go_version"`
	Goroutines    int64   `json:"goroutines"`
	HeapBytes     uint64  `json:"heap_bytes"`
	HeapGoalBytes uint64  `json:"heap_goal_bytes"`
	GCCycles      uint64  `json:"gc_cycles"`
	GCPauseP50Ms  float64 `json:"gc_pause_p50_ms"`
	GCPauseMaxMs  float64 `json:"gc_pause_max_ms"`
}

func (s *Server) handleRuntime(w http.ResponseWriter, _ *http.Request) {
	samples := []metrics.Sample{
		{Name: "/sched/goroutines:goroutines"},
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/heap/goal:bytes"},
		{Name: "/gc/cycles/total:gc-cycles"},
		{Name: "/sched/pauses/total/gc:seconds"},
	}
	metrics.Read(samples)
	info := RuntimeInfo{GoVersion: runtime.Version()}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		info.Goroutines = int64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		info.HeapBytes = samples[1].Value.Uint64()
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		info.HeapGoalBytes = samples[2].Value.Uint64()
	}
	if samples[3].Value.Kind() == metrics.KindUint64 {
		info.GCCycles = samples[3].Value.Uint64()
	}
	if samples[4].Value.Kind() == metrics.KindFloat64Histogram {
		h := samples[4].Value.Float64Histogram()
		info.GCPauseP50Ms = histQuantile(h, 0.5) * 1e3
		info.GCPauseMaxMs = histMax(h) * 1e3
	}
	writeJSON(w, http.StatusOK, info)
}

// histQuantile approximates quantile q of a runtime/metrics histogram by
// the upper bound of the bucket the quantile falls in.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Buckets[i+1] is bucket i's upper bound; the last bucket's may
			// be +Inf, fall back to its lower bound then.
			ub := h.Buckets[i+1]
			if math.IsInf(ub, 1) {
				ub = h.Buckets[i]
			}
			return ub
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// histMax returns the upper bound of the highest nonempty bucket.
func histMax(h *metrics.Float64Histogram) float64 {
	for i := len(h.Counts) - 1; i >= 0; i-- {
		if h.Counts[i] == 0 {
			continue
		}
		ub := h.Buckets[i+1]
		if math.IsInf(ub, 1) {
			ub = h.Buckets[i]
		}
		return ub
	}
	return 0
}
