package serve

// Golden fixtures pin the /v1 wire formats and the snapshot schema
// documented in FORMATS.md §5. Regenerate after a deliberate format
// change with:
//
//	go test ./internal/serve -run Golden -update

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
)

var update = flag.Bool("update", false, "rewrite golden files")

func canonicalWorker() *core.Worker {
	return &core.Worker{
		ID:       3,
		Capacity: 4,
		Traveled: 845.25,
		Route: core.Route{
			Loc:     17,
			Now:     1200,
			Onboard: 1,
			Stops: []core.Stop{
				{Vertex: 42, Kind: core.Pickup, Req: 7, Cap: 2, DDL: 1500.5},
				{Vertex: 9, Kind: core.Dropoff, Req: 7, Cap: 2, DDL: 1900},
				{Vertex: 23, Kind: core.Dropoff, Req: 5, Cap: 1, DDL: 2100},
			},
			Arr: []float64{1290.25, 1480, 1660.75},
		},
	}
}

// snapshotWorker is canonicalWorker renumbered to ID 0: a snapshot's
// fleet must be the dense ID range 0..n-1.
func snapshotWorker() core.WorkerState {
	w := canonicalWorker()
	w.ID = 0
	return core.NewWorkerState(w)
}

func goldenCases() map[string]any {
	id := int32(7)
	release := 1200.0
	return map[string]any{
		"request.json": Request{
			ID: &id, Origin: 42, Dest: 9, Release: &release,
			Deadline: 1900, Penalty: 320.5, Capacity: 2,
		},
		"decision.json": Decision{
			ID: 7, Accepted: true, Worker: 3, Delta: 182.5,
			PickupETA: 1290.25, DropoffETA: 1480, SimTime: 1200,
			Batch: 12, WaitMs: 3.25,
		},
		"route.json": core.NewWorkerState(canonicalWorker()),
		"stats.json": Stats{
			Algorithm: "pruneGreedyDP", Oracle: "hub", Workers: 60,
			SimTime: 1200, Requests: 250, Accepted: 231, Rejected: 19,
			ServedRate: 0.924, TotalDistance: 98213.5, PenaltySum: 5120,
			UnifiedCost: 103333.5, Completions: 180, LateArrivals: 0,
			Batches: 40, MaxBatch: 17, LateAdmissions: 0, Pending: 2,
			DistQueries: 48211,
			TablePrefetches: 40, TableHits: 44102, TableMisses: 1890,
			TrafficEpoch: 2, TrafficUpdates: 2, InfeasibleStops: 1,
			OracleRebuilds: 2, OracleCustomizations: 2, LastRebuildMs: 184.75,
			LatencyMs: LatencyMs{P50: 2.1, P95: 6.4, P99: 11.9},
		},
		"traffic_request.json": TrafficRequest{
			At: &trafficAt,
			Updates: []roadnet.TrafficUpdate{
				{Factor: 1.5},
				{Factor: 2.5, Class: "motorway", BBox: []float64{0, 0, 4000, 4000}},
				{Factor: 1.8, Edges: [][2]int64{{17, 42}}},
			},
		},
		"traffic_result.json": TrafficResult{
			Epoch: 2, SimTime: 1200, ChangedEdges: 311,
			RoutesRepaired: 41, InfeasibleStops: 1,
		},
		"snapshot.json": Snapshot{
			Format: SnapshotFormat, Version: SnapshotVersion,
			SimTime: 1200, Epoch: 1, NextID: 250, Accepted: 231, Rejected: 19,
			PenaltySum: 5120, Batches: 40, MaxBatch: 17, LateAdmissions: 0,
			Completions: 180, LateArrivals: 0, InfeasibleStops: 1,
			Workers: []core.WorkerState{snapshotWorker()},
			Traffic: [][]roadnet.TrafficUpdate{{{Factor: 1.5, Class: "motorway"}}},
		},
	}
}

// trafficAt is the At pointer of the traffic_request golden.
var trafficAt = 1180.0

func TestGoldenWireFormats(t *testing.T) {
	for name, v := range goldenCases() {
		path := filepath.Join("testdata", name)
		got, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, '\n')
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with -update)", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: wire format drifted from golden fixture (regenerate with -update if deliberate)\ngot:\n%s\nwant:\n%s",
				name, got, want)
		}
	}
}

// TestGoldenSnapshotDecodes checks the checked-in snapshot fixture is a
// valid, restorable snapshot — the fixture doubles as documentation.
func TestGoldenSnapshotDecodes(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	workers, err := sn.Restore(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(workers) != 1 || workers[0].Capacity != 4 {
		t.Fatalf("restored fleet: %+v", workers)
	}
	// Re-encoding the decoded snapshot reproduces the fixture byte for
	// byte — the format is round-trip stable.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, sn); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Error("snapshot fixture is not byte-stable under decode/encode")
	}
}
