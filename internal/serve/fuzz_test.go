package serve

// Fuzzing for the two new untrusted-input decoders: snapshot files (read
// at warm restart) and /v1/requests bodies (read from the network). Both
// must never panic and must only hand back state that passes validation.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/roadnet"
)

func FuzzReadSnapshot(f *testing.F) {
	if seed, err := os.ReadFile(filepath.Join("testdata", "snapshot.json")); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"format": "urpsm-snapshot", "version": 1}`))
	f.Add([]byte(`{"format": "urpsm-snapshot", "version": 1, "workers": [{"id": 0, "capacity": 1, "route": {"loc": 0, "stops": [], "arr": []}}]}`))
	f.Add([]byte(`{"format": "urpsm-snapshot", "version": 1, "epoch": 1, "traffic": [[{"factor": 1.5, "class": "motorway"}]]}`))
	f.Add([]byte(`{"format": "urpsm-snapshot", "version": 1, "epoch": 7, "traffic": []}`))
	f.Add([]byte(`{"format": "urpsm-snapshot", "version": 1, "epoch": 1, "traffic": [[]]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sn, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and restore without panicking;
		// Restore may reject it, but a restored fleet must be dense.
		var buf bytes.Buffer
		if err := WriteSnapshot(&buf, sn); err != nil {
			t.Fatalf("decoded snapshot failed to encode: %v", err)
		}
		workers, err := sn.Restore(1024)
		if err != nil {
			return
		}
		for i, w := range workers {
			if int(w.ID) != i {
				t.Fatalf("Restore returned non-dense worker IDs: %d at %d", w.ID, i)
			}
			if w.Capacity < 1 {
				t.Fatalf("Restore returned capacity %d", w.Capacity)
			}
		}
	})
}

func FuzzRequestBody(f *testing.F) {
	f.Add([]byte(`{"origin": 3, "dest": 9, "release": 10, "deadline": 500, "penalty": 100, "capacity": 1}`))
	f.Add([]byte(`{"id": 7, "origin": 0, "dest": 1, "deadline": 1e9}`))
	f.Add([]byte(`{"origin": -1}`))
	f.Add([]byte(`nonsense`))
	cfg := roadnet.DefaultGenConfig()
	cfg.Rows, cfg.Cols = 8, 8
	g, err := roadnet.Generate(cfg)
	if err != nil {
		f.Fatal(err)
	}
	nv := int64(g.NumVertices())
	f.Fuzz(func(t *testing.T, data []byte) {
		var body Request
		if err := json.Unmarshal(data, &body); err != nil {
			return
		}
		req, err := body.CoreRequest(g, 1, 0)
		if err != nil {
			return
		}
		// Accepted requests must satisfy the core invariants.
		if err := req.Validate(); err != nil {
			t.Fatalf("CoreRequest accepted an invalid request: %v", err)
		}
		if int64(req.Origin) >= nv || int64(req.Dest) >= nv || req.Origin < 0 || req.Dest < 0 {
			t.Fatalf("CoreRequest accepted out-of-range vertices: %d, %d", req.Origin, req.Dest)
		}
	})
}
