package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/shortest"
)

// overloadRequests clones n instance requests and overwrites their
// penalties with a fixed permutation of 1..n, so the expected shed set
// is known by construction: with every deadline feasible, the shed
// policy keeps exactly the MaxQueue highest-penalty requests.
func overloadRequests(t *testing.T, n int) []*core.Request {
	t.Helper()
	_, inst := testInstance(t)
	reqs := sortedRequests(inst)
	if len(reqs) < n {
		t.Fatalf("instance has %d requests, need %d", len(reqs), n)
	}
	out := make([]*core.Request, n)
	for i := 0; i < n; i++ {
		cp := *reqs[i]
		cp.Penalty = float64((i*7)%n + 1) // fixed permutation of 1..n
		cp.Deadline = cp.Release + 1e6    // never deadline-infeasible at submit
		out[i] = &cp
	}
	return out
}

// runOverload submits reqs in order against a fresh server with the
// given pool size and a queue cap of keep, lets Shutdown's terminal
// flush deliver every verdict, and returns all decisions by ID.
func runOverload(t *testing.T, reqs []*core.Request, pool, keep int) (map[int32]Decision, Stats) {
	t.Helper()
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) {
		c.Pool = pool
		c.MaxQueue = keep
		c.BatchWindow = time.Hour // only the terminal drain may flush
		c.BatchSize = 1 << 20
	})
	chans := make([]<-chan Decision, len(reqs))
	for i, r := range reqs {
		cp := *r
		done, err := s.submit(&cp, false)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = done
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	got := make(map[int32]Decision, len(reqs))
	for i, ch := range chans {
		select {
		case d := <-ch:
			got[d.ID] = d
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never got a verdict", reqs[i].ID)
		}
	}
	return got, s.Stats()
}

// TestOverloadShedDeterminism is the overload lockstep check (DESIGN.md
// §15): a submission stream overflowing MaxQueue must produce
// bit-identical decisions AND bit-identical shed verdicts across serial
// and parallel dispatch, and the victims must be exactly the Eq. 2
// choice — the lowest rejection penalties in sight.
func TestOverloadShedDeterminism(t *testing.T) {
	const n, keep = 16, 4
	reqs := overloadRequests(t, n)

	serial, sst := runOverload(t, reqs, 1, keep)
	parallel, pst := runOverload(t, reqs, 4, keep)

	if len(serial) != n || len(parallel) != n {
		t.Fatalf("decision counts: serial %d parallel %d, want %d", len(serial), len(parallel), n)
	}
	for id, sd := range serial {
		pd, ok := parallel[id]
		if !ok {
			t.Fatalf("request %d decided serially but not in parallel", id)
		}
		if !sameDecision(sd, pd) || sd.Shed != pd.Shed || sd.RetryAfterMs != pd.RetryAfterMs {
			t.Fatalf("request %d diverged: serial %+v parallel %+v", id, sd, pd)
		}
	}
	if sst.Shed != n-keep || pst.Shed != n-keep {
		t.Fatalf("shed counters: serial %d parallel %d, want %d", sst.Shed, pst.Shed, n-keep)
	}
	if sst.Submitted != n || pst.Submitted != n {
		t.Fatalf("submitted counters: serial %d parallel %d, want %d", sst.Submitted, pst.Submitted, n)
	}

	// The survivors are the keep highest penalties (n-keep+1..n); everything
	// below the cut sheds with a usable retry hint and no worker.
	for _, r := range reqs {
		d := serial[int32(r.ID)]
		wantShed := r.Penalty <= float64(n-keep)
		if d.Shed != wantShed {
			t.Fatalf("request %d (penalty %g): shed=%v, want %v", r.ID, r.Penalty, d.Shed, wantShed)
		}
		if d.Shed && (d.Accepted || d.Worker != -1 || d.RetryAfterMs < 1) {
			t.Fatalf("malformed shed verdict: %+v", d)
		}
	}

	// Eq. 2 accounting: the platform pays p_r for every unserved request,
	// shed or rejected alike — the shed penalties must be in the sum.
	var shedSum float64
	for _, r := range reqs {
		if serial[int32(r.ID)].Shed {
			shedSum += r.Penalty
		}
	}
	if sst.PenaltySum < shedSum {
		t.Fatalf("penalty sum %g does not cover shed penalties %g", sst.PenaltySum, shedSum)
	}
	if math.Float64bits(sst.PenaltySum) != math.Float64bits(pst.PenaltySum) {
		t.Fatalf("penalty sums diverged: serial %x parallel %x",
			math.Float64bits(sst.PenaltySum), math.Float64bits(pst.PenaltySum))
	}
}

// TestOverloadWALRecovery checks that shed verdicts are durable: a crash
// after an overloaded flush recovers the shed records verbatim (counter,
// penalty accounting, decided window), and the post-shutdown checkpoint
// carries the counters across a WAL-less restart.
func TestOverloadWALRecovery(t *testing.T) {
	g, inst := testInstance(t)
	oracle := shortest.BuildHubLabels(g)
	reqs := overloadRequests(t, 6)
	dir := t.TempDir()
	const keep = 2

	s := newWALServer(t, g, inst, oracle, dir, func(c *Config) {
		c.MaxQueue = keep
		c.BatchWindow = 50 * time.Millisecond // the cap starves size-triggered flushes
		c.BatchSize = 1 << 20
	})
	chans := make([]<-chan Decision, len(reqs))
	for i, r := range reqs {
		cp := *r
		done, err := s.submit(&cp, false)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = done
	}
	got := make(map[int32]Decision, len(reqs))
	for i, ch := range chans {
		select {
		case d := <-ch:
			got[d.ID] = d
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never got a verdict", reqs[i].ID)
		}
	}
	before := s.Stats()
	if before.Shed != len(reqs)-keep {
		t.Fatalf("shed %d before crash, want %d", before.Shed, len(reqs)-keep)
	}
	s.Abort()

	// Crash recovery: sheds are applied from the log, not re-derived.
	s = newWALServer(t, g, inst, oracle, dir, func(c *Config) { c.MaxQueue = keep })
	after := s.Stats()
	if after.WALRecovered == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if after.Shed != before.Shed || after.Submitted != before.Submitted {
		t.Fatalf("recovered shed=%d submitted=%d, want %d and %d",
			after.Shed, after.Submitted, before.Shed, before.Submitted)
	}
	if math.Float64bits(after.PenaltySum) != math.Float64bits(before.PenaltySum) {
		t.Fatalf("recovered penalty sum %x != pre-crash %x",
			math.Float64bits(after.PenaltySum), math.Float64bits(before.PenaltySum))
	}
	for id, want := range got {
		d, ok := s.DecisionFor(id)
		if !ok {
			t.Fatalf("request %d not in the decided window after recovery", id)
		}
		if d.Shed != want.Shed || !sameDecision(d, want) {
			t.Fatalf("request %d after recovery: %+v want %+v", id, d, want)
		}
	}

	// The shutdown checkpoint pins the counters; a restart from snapshot
	// alone (log empty) must not lose them.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s = newWALServer(t, g, inst, oracle, dir, func(c *Config) { c.MaxQueue = keep })
	final := s.Stats()
	if final.Shed != before.Shed || final.Submitted != before.Submitted {
		t.Fatalf("snapshot restart shed=%d submitted=%d, want %d and %d",
			final.Shed, final.Submitted, before.Shed, before.Submitted)
	}
	if final.WALRecovered != 0 {
		t.Fatalf("clean restart replayed %d records", final.WALRecovered)
	}
}

// TestDegradationLadder drives the hysteresis state machine directly
// (DESIGN.md §15.3): DegradeWindow consecutive breaches step one stage
// down, as many sub-half-target batches step back up, and anything in
// between resets both counters.
func TestDegradationLadder(t *testing.T) {
	g, inst := testInstance(t)
	const maxQueue, batch = 8, 16
	s := newTestServer(t, g, inst, func(c *Config) {
		c.Pool = 4
		c.MaxQueue = maxQueue
		c.BatchSize = batch
		c.DegradeTarget = 10 * time.Millisecond
		c.DegradeWindow = 2
	})
	feed := func(p95 float64, times int) {
		for i := 0; i < times; i++ {
			s.smu.Lock()
			s.ladderLocked(p95)
			s.smu.Unlock()
		}
	}
	check := func(stage, effBatch, effQueue int) {
		t.Helper()
		if got := int(s.degradeStage.Load()); got != stage {
			t.Fatalf("stage %d, want %d", got, stage)
		}
		if got := int(s.effBatch.Load()); got != effBatch {
			t.Fatalf("effBatch %d, want %d", got, effBatch)
		}
		if got := int(s.effQueue.Load()); got != effQueue {
			t.Fatalf("effQueue %d, want %d", got, effQueue)
		}
	}

	check(0, batch, maxQueue)
	feed(1.0, 1) // one breach: below the window, no transition
	check(0, batch, maxQueue)
	feed(0.006, 1) // neutral zone (target/2 < p95 <= target): counters reset
	feed(1.0, 1)
	check(0, batch, maxQueue)
	feed(1.0, 1) // second consecutive breach: stage 1 shrinks the batch
	check(1, batch/4, maxQueue)
	feed(1.0, 2) // stage 2: serial dispatch
	check(2, batch/4, maxQueue)
	feed(1.0, 2) // stage 3: tighten the shed cap
	check(3, batch/4, maxQueue/2)
	feed(1.0, 4) // already at the bottom: no further transitions
	check(3, batch/4, maxQueue/2)
	feed(0.001, 2) // recovery is the reverse walk
	check(2, batch/4, maxQueue)
	feed(0.001, 2)
	check(1, batch/4, maxQueue)
	feed(0.001, 1)
	feed(0.006, 1) // neutral zone also resets the recovery counter
	feed(0.001, 1)
	check(1, batch/4, maxQueue)
	feed(0.001, 2)
	check(0, batch, maxQueue)

	if st := s.Stats(); st.DegradeTransitions != 6 || st.DegradeState != 0 {
		t.Fatalf("transitions=%d state=%d, want 6 and 0", st.DegradeTransitions, st.DegradeState)
	}
}

// TestUnboundedQueueNeverSheds pins the default: MaxQueue 0 means no
// admission cap and a shed counter that stays zero.
func TestUnboundedQueueNeverSheds(t *testing.T) {
	reqs := overloadRequests(t, 16)
	got, st := runOverload(t, reqs, 1, 0)
	for id, d := range got {
		if d.Shed {
			t.Fatalf("request %d shed with an unbounded queue", id)
		}
	}
	if st.Shed != 0 || st.QueueLimit != 0 {
		t.Fatalf("shed=%d queue_limit=%d, want 0 and 0", st.Shed, st.QueueLimit)
	}
}

// TestOverloadHTTP429 covers the wire surface: a burst against a
// one-slot queue must answer at least one 429 carrying a Retry-After
// header and a shed decision body, and /v1/stats must account for every
// submission.
func TestOverloadHTTP429(t *testing.T) {
	g, inst := testInstance(t)
	s := newTestServer(t, g, inst, func(c *Config) {
		c.MaxQueue = 1
		c.BatchWindow = 200 * time.Millisecond
		c.BatchSize = 1 << 20
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const burst = 8
	reqs := overloadRequests(t, burst)
	var (
		mu          sync.Mutex
		oks, sheds  int
		retryAfters []string
		wg          sync.WaitGroup
	)
	for _, r := range reqs {
		wg.Add(1)
		go func(r *core.Request) {
			defer wg.Done()
			id := int32(r.ID)
			rel := r.Release
			body, _ := json.Marshal(Request{
				ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
				Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty, Capacity: r.Capacity,
			})
			resp, err := http.Post(ts.URL+"/v1/requests", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var d Decision
			if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				oks++
			case http.StatusTooManyRequests:
				sheds++
				retryAfters = append(retryAfters, resp.Header.Get("Retry-After"))
				if !d.Shed || d.Accepted || d.Worker != -1 {
					t.Errorf("429 body is not a shed verdict: %+v", d)
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if oks+sheds != burst {
		t.Fatalf("%d oks + %d sheds != %d", oks, sheds, burst)
	}
	if sheds == 0 {
		t.Fatal("a full burst against a one-slot queue shed nothing")
	}
	for _, ra := range retryAfters {
		if v, err := strconv.Atoi(ra); err != nil || v < 1 {
			t.Fatalf("bad Retry-After header %q", ra)
		}
	}
	st := s.Stats()
	if st.Submitted != burst || st.Shed != sheds {
		t.Fatalf("stats submitted=%d shed=%d, want %d and %d", st.Submitted, st.Shed, burst, sheds)
	}
	if st.QueueLimit != 1 {
		t.Fatalf("queue_limit %d, want 1", st.QueueLimit)
	}

	// The shed families are on the /metrics surface.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		fmt.Sprintf("urpsm_shed_total %d", sheds),
		fmt.Sprintf("urpsm_submitted_total %d", burst),
		"urpsm_queue_limit 1",
		"urpsm_degrade_state 0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
