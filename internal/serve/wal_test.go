package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/wal"
	"repro/internal/workload"
)

// newWALServer starts a server logging to dir. The oracle is shared so a
// crash/restart cycle does not pay a rebuild (and, more importantly, so
// replay equivalence is checked against identical distances).
func newWALServer(t *testing.T, g *roadnet.Graph, inst *workload.Instance,
	oracle shortest.Oracle, dir string, mut func(*Config)) *Server {
	t.Helper()
	return newTestServer(t, g, inst, func(c *Config) {
		c.Oracle = oracle
		c.WALDir = dir
		c.CheckpointBytes = -1 // explicit checkpoints only, unless mut overrides
		if mut != nil {
			mut(c)
		}
	})
}

// lockstep streams requests one at a time, collecting decisions.
func lockstep(t *testing.T, s *Server, reqs []*core.Request, got map[int32]Decision) {
	t.Helper()
	for _, r := range reqs {
		cp := *r
		done, err := s.submit(&cp, false)
		if err != nil {
			t.Fatal(err)
		}
		d := <-done
		got[d.ID] = d
	}
}

// servePairs streams requests two at a time, waiting for both decisions
// before the next pair — with BatchSize 2 and an hour-long window every
// commit group holds exactly two requests, which keeps the WAL layout
// deterministic for the truncation tests.
func servePairs(t *testing.T, s *Server, reqs []*core.Request, got map[int32]Decision) {
	t.Helper()
	for i := 0; i+1 < len(reqs); i += 2 {
		r1, r2 := *reqs[i], *reqs[i+1]
		c1, err := s.submit(&r1, false)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := s.submit(&r2, false)
		if err != nil {
			t.Fatal(err)
		}
		d1, d2 := <-c1, <-c2
		got[d1.ID], got[d2.ID] = d1, d2
	}
}

func sameDecision(a, b Decision) bool {
	return a.ID == b.ID && a.Accepted == b.Accepted && a.Worker == b.Worker &&
		math.Float64bits(a.Delta) == math.Float64bits(b.Delta) &&
		math.Float64bits(a.SimTime) == math.Float64bits(b.SimTime)
}

// TestWALCrashRecoveryEquivalence is the in-process tentpole check: a
// server that is crashed twice mid-workload (once before and once after
// a traffic epoch advance) and recovered from its WAL produces exactly
// the decisions and final state of an uninterrupted server.
func TestWALCrashRecoveryEquivalence(t *testing.T) {
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	oracle := shortest.BuildHubLabels(g)
	h := len(reqs) / 2
	q := h / 2
	trafficAt := reqs[h].Release
	ups := []roadnet.TrafficUpdate{{Factor: 1.7}}

	// Reference: one uninterrupted WAL-less server over the same stream.
	ref := newTestServer(t, g, inst, func(c *Config) { c.Oracle = oracle })
	want := make(map[int32]Decision)
	lockstep(t, ref, reqs[:h], want)
	if _, err := ref.ApplyTraffic(&trafficAt, ups); err != nil {
		t.Fatal(err)
	}
	lockstep(t, ref, reqs[h:], want)

	// Crash run: same stream with kill -9 (Abort) at two points.
	dir := t.TempDir()
	got := make(map[int32]Decision)
	s := newWALServer(t, g, inst, oracle, dir, nil)
	lockstep(t, s, reqs[:q], got)
	s.Abort()

	s = newWALServer(t, g, inst, oracle, dir, nil)
	if st := s.Stats(); st.WALRecovered == 0 {
		t.Fatal("first recovery replayed nothing")
	}
	// The crashed-ack window: the last decided request must be resolvable.
	last := got[int32(reqs[q-1].ID)]
	if d, ok := s.DecisionFor(last.ID); !ok || !sameDecision(d, last) {
		t.Fatalf("DecisionFor(%d) after recovery: ok=%v d=%+v want %+v", last.ID, ok, d, last)
	}
	lockstep(t, s, reqs[q:h], got)
	if _, err := s.ApplyTraffic(&trafficAt, ups); err != nil {
		t.Fatal(err)
	}
	lockstep(t, s, reqs[h:h+q], got)
	s.Abort()

	s = newWALServer(t, g, inst, oracle, dir, nil)
	if st := s.Stats(); st.WALRecovered == 0 || st.TrafficEpoch != 1 {
		t.Fatalf("second recovery: recovered=%d epoch=%d", s.Stats().WALRecovered, s.Stats().TrafficEpoch)
	}
	lockstep(t, s, reqs[h+q:], got)

	checkEquivalence(t, got, want)
	rst, cst := ref.Stats(), s.Stats()
	if rst.Accepted != cst.Accepted || rst.Rejected != cst.Rejected ||
		math.Float64bits(rst.PenaltySum) != math.Float64bits(cst.PenaltySum) ||
		math.Float64bits(rst.TotalDistance) != math.Float64bits(cst.TotalDistance) ||
		math.Float64bits(rst.SimTime) != math.Float64bits(cst.SimTime) ||
		rst.Completions != cst.Completions || rst.LateArrivals != cst.LateArrivals {
		t.Fatalf("final state diverged:\nref   %+v\ncrash %+v", rst, cst)
	}

	// The at-rest invariant: after a boot the state is checkpointed and
	// the log is empty (just a header).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	seg, err := os.ReadFile(filepath.Join(dir, wal.SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	if len(seg) != wal.HeaderSize {
		t.Fatalf("segment is %d bytes after shutdown checkpoint, want bare header (%d)", len(seg), wal.HeaderSize)
	}
	f, err := os.Open(filepath.Join(dir, wal.CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	sn, err := ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Accepted+sn.Rejected != len(reqs) {
		t.Fatalf("final checkpoint decided %d, want %d", sn.Accepted+sn.Rejected, len(reqs))
	}
}

// TestWALCheckpointWindow checks that a checkpoint truncates the log and
// shrinks the decided window to the final commit group.
func TestWALCheckpointWindow(t *testing.T) {
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	oracle := shortest.BuildHubLabels(g)
	dir := t.TempDir()
	s := newWALServer(t, g, inst, oracle, dir, func(c *Config) {
		c.BatchWindow = time.Hour
		c.BatchSize = 2
	})
	got := make(map[int32]Decision)
	servePairs(t, s, reqs[:6], got)

	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	// Startup checkpoint + this one.
	if res.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", res.Checkpoints)
	}
	// 3 groups of (1 batch + 2 admissions + 2 decisions) + the checkpoint
	// record itself.
	if res.LSN != 16 {
		t.Fatalf("checkpoint lsn = %d, want 16", res.LSN)
	}
	if st := s.Stats(); st.WALSizeBytes != wal.HeaderSize {
		t.Fatalf("segment not truncated: %d bytes", st.WALSizeBytes)
	}
	// Decided window: final group retained, earlier groups pruned.
	for _, r := range reqs[4:6] {
		if _, ok := s.DecisionFor(int32(r.ID)); !ok {
			t.Fatalf("final-group decision %d pruned by checkpoint", r.ID)
		}
	}
	for _, r := range reqs[:4] {
		if _, ok := s.DecisionFor(int32(r.ID)); ok {
			t.Fatalf("pre-checkpoint decision %d still retained", r.ID)
		}
	}

	// Crash after two more requests: recovery replays exactly one group.
	servePairs(t, s, reqs[6:8], got)
	s.Abort()
	s = newWALServer(t, g, inst, oracle, dir, nil)
	if st := s.Stats(); st.WALRecovered != 5 || st.Requests != 8 {
		t.Fatalf("recovered=%d requests=%d, want 5 and 8", st.WALRecovered, st.Requests)
	}
	for _, r := range reqs[6:8] {
		d, ok := s.DecisionFor(int32(r.ID))
		if !ok || !sameDecision(d, got[int32(r.ID)]) {
			t.Fatalf("replayed decision %d: ok=%v %+v want %+v", r.ID, ok, d, got[int32(r.ID)])
		}
	}
}

// expectedTail walks a (possibly truncated) segment the way recovery
// does and reports what must survive: decision IDs of complete commit
// groups, applied traffic records, and the recovered-record count.
func expectedTail(t *testing.T, data []byte) (ids []int32, traffics, applied int) {
	t.Helper()
	_, recs, _, err := wal.DecodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for i < len(recs) {
		switch recs[i].Type {
		case wal.TypeCheckpoint:
			i++
		case wal.TypeTraffic:
			traffics++
			applied++
			i++
		case wal.TypeBatch:
			n, sheds, err := wal.DecodeBatch(recs[i].Body)
			if err != nil {
				t.Fatal(err)
			}
			size := 1 + sheds + 2*n
			if i+size > len(recs) {
				return ids, traffics, applied
			}
			for k := 0; k < sheds; k++ {
				sh, err := wal.DecodeShed(recs[i+1+k].Body)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, sh.ID)
			}
			for k := 0; k < n; k++ {
				d, err := wal.DecodeDecision(recs[i+sheds+2+2*k].Body)
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, d.ID)
			}
			applied += size
			i += size
		default:
			t.Fatalf("unexpected record type %d", recs[i].Type)
		}
	}
	return ids, traffics, applied
}

// TestWALTornWritePrefixes is the torn-write property test: for every
// record boundary and mid-record byte prefix of a multi-group WAL, the
// server recovers to exactly the state after the last complete commit
// group — nothing more, nothing less, no errors.
func TestWALTornWritePrefixes(t *testing.T) {
	if testing.Short() {
		t.Skip("dozens of recoveries; skipped in -short")
	}
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	oracle := shortest.BuildHubLabels(g)
	dir := t.TempDir()
	s := newWALServer(t, g, inst, oracle, dir, func(c *Config) {
		c.BatchWindow = time.Hour
		c.BatchSize = 2
	})
	got := make(map[int32]Decision)
	servePairs(t, s, reqs[:4], got)
	trafficAt := reqs[4].Release
	if _, err := s.ApplyTraffic(&trafficAt, []roadnet.TrafficUpdate{{Factor: 1.5}}); err != nil {
		t.Fatal(err)
	}
	servePairs(t, s, reqs[4:6], got)
	s.Abort()

	full, err := os.ReadFile(filepath.Join(dir, wal.SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, wal.CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries via the scanner, then every boundary and every
	// midpoint between adjacent boundaries becomes a truncation point.
	sc, err := wal.NewScanner(full)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{wal.HeaderSize}
	for sc.Next() {
		prev := cuts[len(cuts)-1]
		if mid := prev + (sc.Offset()-prev)/2; mid > prev {
			cuts = append(cuts, mid)
		}
		cuts = append(cuts, sc.Offset())
	}
	if sc.Offset() != len(full) {
		t.Fatalf("fixture WAL has a torn tail already: clean %d of %d", sc.Offset(), len(full))
	}

	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			trunc := full[:cut]
			wantIDs, wantTraffics, wantApplied := expectedTail(t, trunc)
			cdir := t.TempDir()
			if err := os.WriteFile(filepath.Join(cdir, wal.CheckpointName), ckpt, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(cdir, wal.SegmentName), trunc, 0o644); err != nil {
				t.Fatal(err)
			}
			rs := newWALServer(t, g, inst, oracle, cdir, nil)
			st := rs.Stats()
			if st.WALRecovered != wantApplied {
				t.Fatalf("recovered %d records, want %d", st.WALRecovered, wantApplied)
			}
			if st.Requests != len(wantIDs) {
				t.Fatalf("recovered %d decisions, want %d", st.Requests, len(wantIDs))
			}
			if int(st.TrafficEpoch) != wantTraffics {
				t.Fatalf("recovered epoch %d, want %d", st.TrafficEpoch, wantTraffics)
			}
			for _, id := range wantIDs {
				d, ok := rs.DecisionFor(id)
				if !ok || !sameDecision(d, got[id]) {
					t.Fatalf("decision %d after torn recovery: ok=%v %+v want %+v", id, ok, d, got[id])
				}
			}
		})
	}
}

// TestSaveSnapshotFileDurability checks the atomic-write contract: the
// target directory never holds anything but the final file (no temp
// litter, even across an overwrite) and the content round-trips.
func TestSaveSnapshotFileDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, wal.CheckpointName)
	sn := &Snapshot{Format: SnapshotFormat, Version: SnapshotVersion, SimTime: 42, NextID: 7}
	if err := SaveSnapshotFile(path, sn); err != nil {
		t.Fatal(err)
	}
	sn.SimTime = 99
	if err := SaveSnapshotFile(path, sn); err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			names = append(names, filepath.Base(p))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != wal.CheckpointName {
		t.Fatalf("directory after SaveSnapshotFile: %v, want only %s", names, wal.CheckpointName)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if back.SimTime != 99 || back.NextID != 7 {
		t.Fatalf("round-trip: %+v", back)
	}
}

// mutateJSON applies f to a parsed JSON object and re-serializes it.
func mutateJSON(t *testing.T, data []byte, f func(map[string]any)) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	f(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// rebuildSegment re-frames records into a fresh segment image.
func rebuildSegment(start uint64, recs []wal.Record) []byte {
	out := wal.AppendHeader(nil, start)
	for _, r := range recs {
		out = wal.AppendRecord(out, r.LSN, r.Type, r.Body)
	}
	return out
}

// TestWALRecoveryErrors corrupts a real WAL directory in targeted ways
// and asserts each failure mode surfaces as a diagnosable error rather
// than silent misrecovery: version skew, corrupt epoch history, partial
// traffic batches, corrupt workers, framing damage, lost checkpoints and
// replay divergence.
func TestWALRecoveryErrors(t *testing.T) {
	g, inst := testInstance(t)
	reqs := sortedRequests(inst)
	oracle := shortest.BuildHubLabels(g)
	dir := t.TempDir()
	s := newWALServer(t, g, inst, oracle, dir, func(c *Config) {
		c.BatchWindow = time.Hour
		c.BatchSize = 2
	})
	got := make(map[int32]Decision)
	servePairs(t, s, reqs[:2], got)
	trafficAt := reqs[2].Release
	if _, err := s.ApplyTraffic(&trafficAt, []roadnet.TrafficUpdate{{Factor: 1.5}}); err != nil {
		t.Fatal(err)
	}
	servePairs(t, s, reqs[2:4], got)
	s.Abort()

	seg, err := os.ReadFile(filepath.Join(dir, wal.SegmentName))
	if err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.ReadFile(filepath.Join(dir, wal.CheckpointName))
	if err != nil {
		t.Fatal(err)
	}
	start, recs, clean, err := wal.DecodeSegment(seg)
	if err != nil || clean != len(seg) {
		t.Fatalf("fixture segment: clean=%d err=%v", clean, err)
	}

	// Divergence fixture: flip the accepted byte of the first decision.
	divergent := make([]wal.Record, len(recs))
	copy(divergent, recs)
	for i, r := range recs {
		if r.Type == wal.TypeDecision {
			body := append([]byte(nil), r.Body...)
			body[4] ^= 1
			divergent[i] = wal.Record{LSN: r.LSN, Type: r.Type, Body: body}
			break
		}
	}
	// Orphan-pair fixture: an admission record with no enclosing group.
	orphanSeg := rebuildSegment(start, []wal.Record{{LSN: start, Type: wal.TypeAdmission, Body: recs[1].Body}})
	badMagic := append([]byte(nil), seg...)
	copy(badMagic, "NOTAWAL!")

	for _, tc := range []struct {
		name string
		ckpt []byte // nil: keep original
		seg  []byte // nil: keep original
		want string
	}{
		{"checkpoint version skew",
			mutateJSON(t, ckpt, func(m map[string]any) { m["version"] = 99 }), nil,
			"unsupported snapshot version"},
		{"corrupt epoch history",
			mutateJSON(t, ckpt, func(m map[string]any) { m["epoch"] = 5 }), nil,
			"traffic batches"},
		{"partial traffic batch",
			mutateJSON(t, ckpt, func(m map[string]any) {
				m["epoch"] = 1
				m["traffic"] = []any{[]any{}}
			}), nil,
			"traffic batch 0 is empty"},
		{"corrupt worker",
			mutateJSON(t, ckpt, func(m map[string]any) {
				ws := m["workers"].([]any)
				ws[0].(map[string]any)["route"].(map[string]any)["loc"] = 99999999
			}), nil,
			"worker"},
		{"segment bad magic", nil, badMagic, "bad magic"},
		// A segment starting past LSN 1 with no checkpoint means the
		// checkpoint covering its prefix is gone.
		{"checkpoint lost", []byte("DELETE"), rebuildSegment(999, nil), "checkpoint lost or regressed"},
		{"replay divergence", nil, rebuildSegment(start, divergent), "diverged"},
		{"pair outside group", nil, orphanSeg, "outside a commit group"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cdir := t.TempDir()
			ck, sg := tc.ckpt, tc.seg
			if ck == nil {
				ck = ckpt
			}
			if sg == nil {
				sg = seg
			}
			if string(ck) != "DELETE" {
				if err := os.WriteFile(filepath.Join(cdir, wal.CheckpointName), ck, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			if err := os.WriteFile(filepath.Join(cdir, wal.SegmentName), sg, 0o644); err != nil {
				t.Fatal(err)
			}
			cfg := Config{
				Graph: g, Workers: inst.Workers, Oracle: oracle, OracleKind: "hub",
				BatchWindow: time.Millisecond, BatchSize: 16, WALDir: cdir,
			}
			_, err := NewServer(cfg)
			if err == nil {
				t.Fatal("expected recovery error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Config conflict: WALDir and Snapshot together are refused.
	if _, err := NewServer(Config{
		Graph: g, Workers: inst.Workers, Oracle: oracle,
		WALDir: t.TempDir(), Snapshot: &Snapshot{Format: SnapshotFormat, Version: SnapshotVersion},
	}); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("WALDir+Snapshot: %v", err)
	}
}

func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func httpPost(url string) (int, error) {
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func httpGetStatus(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func postJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestWALHTTPEndpoints smoke-tests the WAL-specific API surface:
// /v1/decisions/{id}, /v1/checkpoint and the wal_* metrics.
func TestWALHTTPEndpoints(t *testing.T) {
	g, inst := testInstance(t)
	oracle := shortest.BuildHubLabels(g)

	// Without a WAL: checkpoint conflicts, decisions are never retained.
	plain := newTestServer(t, g, inst, func(c *Config) { c.Oracle = oracle })
	tsPlain := newHTTPServer(t, plain)
	resp, err := httpPost(tsPlain + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if resp != 409 {
		t.Fatalf("checkpoint without wal: status %d, want 409", resp)
	}

	dir := t.TempDir()
	s := newWALServer(t, g, inst, oracle, dir, nil)
	ts := newHTTPServer(t, s)
	reqs := sortedRequests(inst)
	d := postRequest(t, ts, reqs[0])

	var back Decision
	getJSON(t, fmt.Sprintf("%s/v1/decisions/%d", ts, d.ID), &back)
	if !sameDecision(back, d) {
		t.Fatalf("decision endpoint: %+v want %+v", back, d)
	}
	if code, err := httpGetStatus(ts + "/v1/decisions/999999"); err != nil || code != 404 {
		t.Fatalf("unknown decision: status %d err %v", code, err)
	}
	if code, err := httpGetStatus(ts + "/v1/decisions/bogus"); err != nil || code != 400 {
		t.Fatalf("bad decision id: status %d err %v", code, err)
	}

	var ck CheckpointResult
	postJSON(t, ts+"/v1/checkpoint", &ck)
	if ck.Checkpoints != 2 {
		t.Fatalf("checkpoint result: %+v", ck)
	}

	var st Stats
	getJSON(t, ts+"/v1/stats", &st)
	if !st.WALEnabled || st.WALRecords == 0 || st.WALSyncs == 0 || st.WALCheckpoints != 2 {
		t.Fatalf("wal stats: %+v", st)
	}
	body := httpGetBody(t, ts+"/metrics")
	for _, want := range []string{
		"urpsm_wal_enabled 1", "urpsm_wal_records_total", "urpsm_wal_bytes_total",
		"urpsm_wal_syncs_total", "urpsm_wal_checkpoints_total 2",
		"urpsm_wal_recovered_records", "urpsm_wal_size_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
