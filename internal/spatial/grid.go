// Package spatial implements the grid indexes the paper's solutions use to
// filter candidate workers: a plain worker grid (used by pruneGreedyDP,
// GreedyDP, kinetic and batch, which "only store the IDs of workers in the
// grid") and the T-Share-style grid with per-cell sorted grid lists (used
// by tshare, whose much larger memory footprint the paper reports in the
// grid-size experiment, Fig. 5).
package spatial

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/geo"
)

// ItemID identifies an indexed item (a worker in this repository).
type ItemID = int32

// Grid is a uniform cell index over moving point items. Reads (Within,
// All, Position, ItemsInCell, Len) and writes (Insert, Remove) are guarded
// by an internal RWMutex, so any number of concurrent readers can overlap
// safely while writers serialize. Today's dispatcher retrieves candidates
// on the caller's goroutine before fanning out, so the simulator itself
// never reads the grid concurrently — the lock is what makes concurrent
// harnesses (the race suite's Candidates-under-load test) and a future
// pipelined dispatcher safe. Callbacks run under the read lock and must
// not call Insert or Remove.
type Grid struct {
	mu     sync.RWMutex
	min    geo.Point
	cell   float64
	cols   int
	rows   int
	items  []map[ItemID]geo.Point // cell -> items inside with their position
	where  map[ItemID]int         // item -> cell index
	nItems int
}

// NewGrid builds a grid over bounds with the given cell size in meters.
func NewGrid(bounds geo.BBox, cellMeters float64) (*Grid, error) {
	if cellMeters <= 0 {
		return nil, fmt.Errorf("spatial: cell size must be positive, got %v", cellMeters)
	}
	cols := int(bounds.Width()/cellMeters) + 1
	rows := int(bounds.Height()/cellMeters) + 1
	g := &Grid{
		min:   bounds.Min,
		cell:  cellMeters,
		cols:  cols,
		rows:  rows,
		items: make([]map[ItemID]geo.Point, cols*rows),
		where: make(map[ItemID]int),
	}
	return g, nil
}

// CellSize returns the configured cell size in meters.
func (g *Grid) CellSize() float64 { return g.cell }

// NumCells returns the number of grid cells.
func (g *Grid) NumCells() int { return g.cols * g.rows }

// Len returns the number of indexed items.
func (g *Grid) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nItems
}

func (g *Grid) cellOf(p geo.Point) int {
	cx := int((p.X - g.min.X) / g.cell)
	cy := int((p.Y - g.min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// CellIndex returns the index of the cell containing p (out-of-bounds
// points are clamped into the border cells).
func (g *Grid) CellIndex(p geo.Point) int { return g.cellOf(p) }

// ItemsInCell calls fn for every item stored in the given cell; iteration
// stops early if fn returns false.
func (g *Grid) ItemsInCell(cell int, fn func(id ItemID, pos geo.Point) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if cell < 0 || cell >= len(g.items) {
		return
	}
	for id, pos := range g.items[cell] {
		if !fn(id, pos) {
			return
		}
	}
}

// CellCenter returns the center point of the cell with the given index.
func (g *Grid) CellCenter(cell int) geo.Point {
	cx := cell % g.cols
	cy := cell / g.cols
	return geo.Point{
		X: g.min.X + (float64(cx)+0.5)*g.cell,
		Y: g.min.Y + (float64(cy)+0.5)*g.cell,
	}
}

// Insert adds or moves item id to position p.
func (g *Grid) Insert(id ItemID, p geo.Point) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.cellOf(p)
	if old, ok := g.where[id]; ok {
		if old == c {
			g.items[old][id] = p
			return
		}
		delete(g.items[old], id)
		g.nItems--
	}
	if g.items[c] == nil {
		g.items[c] = make(map[ItemID]geo.Point, 4)
	}
	g.items[c][id] = p
	g.where[id] = c
	g.nItems++
}

// Remove deletes item id; it is a no-op if absent.
func (g *Grid) Remove(id ItemID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.where[id]; ok {
		delete(g.items[c], id)
		delete(g.where, id)
		g.nItems--
	}
}

// Position returns the stored position of item id.
func (g *Grid) Position(id ItemID) (geo.Point, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c, ok := g.where[id]
	if !ok {
		return geo.Point{}, false
	}
	p, ok := g.items[c][id]
	return p, ok
}

// Within calls fn for every item whose stored position lies within
// radiusMeters of p (Euclidean). Iteration stops early if fn returns false.
func (g *Grid) Within(p geo.Point, radiusMeters float64, fn func(id ItemID, pos geo.Point) bool) {
	if radiusMeters < 0 {
		return
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	loX := int((p.X - radiusMeters - g.min.X) / g.cell)
	hiX := int((p.X + radiusMeters - g.min.X) / g.cell)
	loY := int((p.Y - radiusMeters - g.min.Y) / g.cell)
	hiY := int((p.Y + radiusMeters - g.min.Y) / g.cell)
	// Clamp both ends into the grid; out-of-bounds items are stored in the
	// border cells, so out-of-bounds queries must scan those same cells.
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	loX, hiX = clamp(loX, g.cols-1), clamp(hiX, g.cols-1)
	loY, hiY = clamp(loY, g.rows-1), clamp(hiY, g.rows-1)
	r2 := radiusMeters * radiusMeters
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			for id, pos := range g.items[cy*g.cols+cx] {
				if p.DistSq(pos) <= r2 {
					if !fn(id, pos) {
						return
					}
				}
			}
		}
	}
}

// All calls fn for every indexed item. Iteration stops if fn returns false.
func (g *Grid) All(fn func(id ItemID, pos geo.Point) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for id, c := range g.where {
		if !fn(id, g.items[c][id]) {
			return
		}
	}
}

// MemoryBytes estimates the index's memory footprint: the cell directory
// plus per-item bookkeeping. This is the "memory cost of grid index"
// metric of the grid-size experiment.
func (g *Grid) MemoryBytes() int64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	// Cell slice headers + map headers, ~48 bytes per non-nil cell map, and
	// ~40 bytes per stored item (key+value+overhead in two maps).
	total := int64(len(g.items)) * 8
	for _, m := range g.items {
		if m != nil {
			total += 48
		}
	}
	total += int64(g.nItems) * 40
	return total
}

// TShareGrid augments a Grid with, for every cell, the full list of cells
// sorted by center-to-center distance — the "spatially ordered grid list"
// of T-Share. Its O(C²) footprint is what makes tshare's index orders of
// magnitude larger than the plain grid, as the paper observes.
type TShareGrid struct {
	*Grid
	sorted [][]int32 // per cell: all cell indices in increasing center distance
}

// NewTShareGrid builds the grid and its per-cell sorted lists.
func NewTShareGrid(bounds geo.BBox, cellMeters float64) (*TShareGrid, error) {
	g, err := NewGrid(bounds, cellMeters)
	if err != nil {
		return nil, err
	}
	nc := g.NumCells()
	t := &TShareGrid{Grid: g, sorted: make([][]int32, nc)}
	centers := make([]geo.Point, nc)
	for c := 0; c < nc; c++ {
		centers[c] = g.CellCenter(c)
	}
	for c := 0; c < nc; c++ {
		lst := make([]int32, nc)
		for i := range lst {
			lst[i] = int32(i)
		}
		pc := centers[c]
		sort.Slice(lst, func(i, j int) bool {
			di := pc.DistSq(centers[lst[i]])
			dj := pc.DistSq(centers[lst[j]])
			if di != dj {
				return di < dj
			}
			return lst[i] < lst[j]
		})
		t.sorted[c] = lst
	}
	return t, nil
}

// CellsByDistance returns all cell indices ordered by center distance from
// the cell containing p. The returned slice is shared; do not modify.
func (t *TShareGrid) CellsByDistance(p geo.Point) []int32 {
	return t.sorted[t.cellOf(p)]
}

// CellRadius returns the half-diagonal of a cell: the maximum distance
// between a point in a cell and the cell's center, used to convert a
// search radius into a safe prefix of the sorted cell list.
func (t *TShareGrid) CellRadius() float64 {
	return t.cell * math.Sqrt2 / 2
}

// MemoryBytes includes the sorted-list footprint.
func (t *TShareGrid) MemoryBytes() int64 {
	total := t.Grid.MemoryBytes()
	for _, l := range t.sorted {
		total += int64(len(l)) * 4
	}
	return total
}
