package spatial

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geo"
)

func bounds10km() geo.BBox {
	return geo.BBox{Min: geo.Point{X: 0, Y: 0}, Max: geo.Point{X: 10000, Y: 10000}}
}

func TestNewGridRejectsBadCell(t *testing.T) {
	if _, err := NewGrid(bounds10km(), 0); err == nil {
		t.Fatal("zero cell accepted")
	}
	if _, err := NewGrid(bounds10km(), -5); err == nil {
		t.Fatal("negative cell accepted")
	}
}

func TestInsertRemovePosition(t *testing.T) {
	g, err := NewGrid(bounds10km(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(7, geo.Point{X: 100, Y: 200})
	if g.Len() != 1 {
		t.Fatalf("len=%d", g.Len())
	}
	p, ok := g.Position(7)
	if !ok || p != (geo.Point{X: 100, Y: 200}) {
		t.Fatalf("pos=%v ok=%v", p, ok)
	}
	// Move within same cell.
	g.Insert(7, geo.Point{X: 150, Y: 250})
	if g.Len() != 1 {
		t.Fatalf("len after same-cell move=%d", g.Len())
	}
	// Move across cells.
	g.Insert(7, geo.Point{X: 5500, Y: 5500})
	if g.Len() != 1 {
		t.Fatalf("len after cross-cell move=%d", g.Len())
	}
	if p, _ = g.Position(7); p != (geo.Point{X: 5500, Y: 5500}) {
		t.Fatalf("pos after move=%v", p)
	}
	g.Remove(7)
	if g.Len() != 0 {
		t.Fatalf("len after remove=%d", g.Len())
	}
	if _, ok := g.Position(7); ok {
		t.Fatal("position after remove")
	}
	g.Remove(7) // no-op
}

func TestWithinMatchesBruteForce(t *testing.T) {
	g, err := NewGrid(bounds10km(), 700)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pts := make(map[ItemID]geo.Point)
	for i := ItemID(0); i < 500; i++ {
		p := geo.Point{X: rng.Float64() * 10000, Y: rng.Float64() * 10000}
		pts[i] = p
		g.Insert(i, p)
	}
	for trial := 0; trial < 100; trial++ {
		q := geo.Point{X: rng.Float64() * 12000, Y: rng.Float64()*12000 - 1000}
		r := rng.Float64() * 3000
		var want []ItemID
		for id, p := range pts {
			if q.DistSq(p) <= r*r {
				want = append(want, id)
			}
		}
		var got []ItemID
		g.Within(q, r, func(id ItemID, pos geo.Point) bool {
			got = append(got, id)
			return true
		})
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(want) != len(got) {
			t.Fatalf("trial %d: got %d items want %d", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: got %v want %v", trial, got, want)
			}
		}
	}
}

func TestWithinEarlyStop(t *testing.T) {
	g, _ := NewGrid(bounds10km(), 1000)
	for i := ItemID(0); i < 50; i++ {
		g.Insert(i, geo.Point{X: 5000, Y: 5000})
	}
	count := 0
	g.Within(geo.Point{X: 5000, Y: 5000}, 100, func(id ItemID, pos geo.Point) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestWithinNegativeRadius(t *testing.T) {
	g, _ := NewGrid(bounds10km(), 1000)
	g.Insert(1, geo.Point{X: 10, Y: 10})
	called := false
	g.Within(geo.Point{X: 10, Y: 10}, -1, func(ItemID, geo.Point) bool {
		called = true
		return true
	})
	if called {
		t.Fatal("negative radius should match nothing")
	}
}

func TestAll(t *testing.T) {
	g, _ := NewGrid(bounds10km(), 1000)
	for i := ItemID(0); i < 20; i++ {
		g.Insert(i, geo.Point{X: float64(i) * 400, Y: float64(i) * 300})
	}
	seen := map[ItemID]bool{}
	g.All(func(id ItemID, pos geo.Point) bool {
		seen[id] = true
		return true
	})
	if len(seen) != 20 {
		t.Fatalf("All visited %d", len(seen))
	}
	n := 0
	g.All(func(ItemID, geo.Point) bool { n++; return false })
	if n != 1 {
		t.Fatalf("All early stop visited %d", n)
	}
}

func TestOutOfBoundsClamped(t *testing.T) {
	g, _ := NewGrid(bounds10km(), 1000)
	g.Insert(1, geo.Point{X: -5000, Y: 25000}) // clamped into corner cells
	found := false
	g.Within(geo.Point{X: -5000, Y: 25000}, 1, func(id ItemID, pos geo.Point) bool {
		found = id == 1
		return true
	})
	if !found {
		t.Fatal("clamped item not found near its true position")
	}
}

func TestMemoryGrowsWithItems(t *testing.T) {
	g, _ := NewGrid(bounds10km(), 1000)
	m0 := g.MemoryBytes()
	for i := ItemID(0); i < 100; i++ {
		g.Insert(i, geo.Point{X: float64(i) * 90, Y: float64(i) * 90})
	}
	if g.MemoryBytes() <= m0 {
		t.Fatal("memory estimate did not grow")
	}
}

func TestTShareGridSortedLists(t *testing.T) {
	tg, err := NewTShareGrid(bounds10km(), 2000)
	if err != nil {
		t.Fatal(err)
	}
	p := geo.Point{X: 500, Y: 500}
	lst := tg.CellsByDistance(p)
	if len(lst) != tg.NumCells() {
		t.Fatalf("list covers %d cells want %d", len(lst), tg.NumCells())
	}
	// First cell must be the one containing p; distances must be
	// non-decreasing.
	if lst[0] != int32(tg.cellOf(p)) {
		t.Fatalf("first cell=%d want %d", lst[0], tg.cellOf(p))
	}
	pc := tg.CellCenter(tg.cellOf(p))
	prev := -1.0
	for _, c := range lst {
		d := pc.Dist(tg.CellCenter(int(c)))
		if d < prev-1e-9 {
			t.Fatal("cell list not sorted by distance")
		}
		prev = d
	}
}

func TestTShareGridItemsInCell(t *testing.T) {
	tg, _ := NewTShareGrid(bounds10km(), 2000)
	tg.Insert(3, geo.Point{X: 100, Y: 100})
	tg.Insert(4, geo.Point{X: 9900, Y: 9900})
	cell := int(tg.CellsByDistance(geo.Point{X: 100, Y: 100})[0])
	var got []ItemID
	tg.ItemsInCell(cell, func(id ItemID, pos geo.Point) bool {
		got = append(got, id)
		return true
	})
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("items in cell=%v", got)
	}
}

func TestTShareGridMemoryDominatesPlainGrid(t *testing.T) {
	plain, _ := NewGrid(bounds10km(), 1000)
	tshare, err := NewTShareGrid(bounds10km(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if tshare.MemoryBytes() <= plain.MemoryBytes() {
		t.Fatalf("tshare grid memory %d should exceed plain %d",
			tshare.MemoryBytes(), plain.MemoryBytes())
	}
	if tshare.CellRadius() <= 0 {
		t.Fatal("cell radius")
	}
}

// TestTShareMemoryDecreasesWithLargerCells reproduces the shape of the
// paper's Fig. 5 memory result: tshare's index shrinks drastically as g
// grows (609 MB → 5 MB in NYC), because the sorted lists are O(C²).
func TestTShareMemoryDecreasesWithLargerCells(t *testing.T) {
	m1, err := NewTShareGrid(bounds10km(), 500)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewTShareGrid(bounds10km(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	if m1.MemoryBytes() <= m2.MemoryBytes()*10 {
		t.Fatalf("expected steep memory drop: g=500m→%d bytes, g=2500m→%d bytes",
			m1.MemoryBytes(), m2.MemoryBytes())
	}
}
