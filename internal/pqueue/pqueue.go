// Package pqueue implements an indexed binary min-heap keyed by float64
// priorities over dense int32 item IDs. It is the priority queue behind all
// Dijkstra-family searches in this repository: items are vertex IDs, and
// DecreaseKey is O(log n) thanks to the position index.
//
// The zero value is not usable; construct with New. A single heap is meant
// to be reused across many searches via Reset, which is O(#pushed items)
// rather than O(capacity).
package pqueue

// Heap is an indexed min-heap. Item IDs must be in [0, capacity).
type Heap struct {
	ids  []int32   // heap order -> item id
	prio []float64 // heap order -> priority
	pos  []int32   // item id -> heap position, -1 if absent
}

// New returns a heap able to hold item IDs in [0, capacity).
func New(capacity int) *Heap {
	pos := make([]int32, capacity)
	for i := range pos {
		pos[i] = -1
	}
	return &Heap{pos: pos}
}

// Len returns the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.ids) }

// Capacity returns the maximum item ID plus one.
func (h *Heap) Capacity() int { return len(h.pos) }

// Contains reports whether item id is currently enqueued.
func (h *Heap) Contains(id int32) bool { return h.pos[id] >= 0 }

// Priority returns the current priority of item id. It must be enqueued.
func (h *Heap) Priority(id int32) float64 { return h.prio[h.pos[id]] }

// Reset empties the heap, clearing only the slots that were used.
func (h *Heap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = -1
	}
	h.ids = h.ids[:0]
	h.prio = h.prio[:0]
}

// Push inserts item id with priority p, or decreases/updates its priority
// if already present. Standard Dijkstra uses it as "push or decrease-key".
func (h *Heap) Push(id int32, p float64) {
	if i := h.pos[id]; i >= 0 {
		old := h.prio[i]
		h.prio[i] = p
		if p < old {
			h.up(int(i))
		} else if p > old {
			h.down(int(i))
		}
		return
	}
	h.ids = append(h.ids, id)
	h.prio = append(h.prio, p)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// Pop removes and returns the item with the minimum priority.
// It panics if the heap is empty.
func (h *Heap) Pop() (id int32, p float64) {
	n := len(h.ids)
	if n == 0 {
		panic("pqueue: Pop on empty heap")
	}
	id, p = h.ids[0], h.prio[0]
	h.pos[id] = -1
	last := n - 1
	if last > 0 {
		h.ids[0] = h.ids[last]
		h.prio[0] = h.prio[last]
		h.pos[h.ids[0]] = 0
	}
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	if last > 1 {
		h.down(0)
	}
	return id, p
}

// Min returns the minimum item without removing it.
// It panics if the heap is empty.
func (h *Heap) Min() (id int32, p float64) {
	if len(h.ids) == 0 {
		panic("pqueue: Min on empty heap")
	}
	return h.ids[0], h.prio[0]
}

func (h *Heap) up(i int) {
	id, p := h.ids[i], h.prio[i]
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= p {
			break
		}
		h.ids[i] = h.ids[parent]
		h.prio[i] = h.prio[parent]
		h.pos[h.ids[i]] = int32(i)
		i = parent
	}
	h.ids[i] = id
	h.prio[i] = p
	h.pos[id] = int32(i)
}

func (h *Heap) down(i int) {
	n := len(h.ids)
	id, p := h.ids[i], h.prio[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && h.prio[r] < h.prio[l] {
			best = r
		}
		if h.prio[best] >= p {
			break
		}
		h.ids[i] = h.ids[best]
		h.prio[i] = h.prio[best]
		h.pos[h.ids[i]] = int32(i)
		i = best
	}
	h.ids[i] = id
	h.prio[i] = p
	h.pos[id] = int32(i)
}
