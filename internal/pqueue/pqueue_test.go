package pqueue

import (
	"math/rand"
	"sort"
	"testing"
)

func TestPushPopSorted(t *testing.T) {
	h := New(10)
	prios := []float64{5, 1, 4, 2, 3}
	for i, p := range prios {
		h.Push(int32(i), p)
	}
	want := []int32{1, 3, 4, 2, 0}
	for _, w := range want {
		id, _ := h.Pop()
		if id != w {
			t.Fatalf("pop order wrong: got %d want %d", id, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len=%d want 0", h.Len())
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(2, 5) // decrease
	id, p := h.Pop()
	if id != 2 || p != 5 {
		t.Fatalf("got (%d,%v) want (2,5)", id, p)
	}
}

func TestIncreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Push(0, 10) // increase
	id, p := h.Pop()
	if id != 1 || p != 2 {
		t.Fatalf("got (%d,%v) want (1,2)", id, p)
	}
	id, p = h.Pop()
	if id != 0 || p != 10 {
		t.Fatalf("got (%d,%v) want (0,10)", id, p)
	}
}

func TestContainsAndPriority(t *testing.T) {
	h := New(3)
	h.Push(1, 7)
	if !h.Contains(1) || h.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if h.Priority(1) != 7 {
		t.Fatalf("Priority=%v", h.Priority(1))
	}
	h.Pop()
	if h.Contains(1) {
		t.Fatal("popped item should not be contained")
	}
}

func TestMin(t *testing.T) {
	h := New(3)
	h.Push(0, 3)
	h.Push(1, 1)
	id, p := h.Min()
	if id != 1 || p != 1 {
		t.Fatalf("Min=(%d,%v)", id, p)
	}
	if h.Len() != 2 {
		t.Fatal("Min must not remove")
	}
}

func TestReset(t *testing.T) {
	h := New(8)
	for i := int32(0); i < 8; i++ {
		h.Push(i, float64(i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("len after reset=%d", h.Len())
	}
	for i := int32(0); i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d contained after reset", i)
		}
	}
	// Heap must be fully reusable.
	h.Push(3, 1)
	h.Push(5, 0.5)
	if id, _ := h.Pop(); id != 5 {
		t.Fatal("reuse after reset broken")
	}
}

func TestEmptyPopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty heap should panic")
		}
	}()
	New(1).Pop()
}

func TestEmptyMinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min on empty heap should panic")
		}
	}()
	New(1).Min()
}

func TestCapacity(t *testing.T) {
	if New(17).Capacity() != 17 {
		t.Fatal("Capacity wrong")
	}
}

// TestRandomAgainstSort pushes random priorities (with random decrease-key
// updates) and checks that pops come out in the final sorted order.
func TestRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		h := New(n)
		final := make(map[int32]float64)
		for i := 0; i < 3*n; i++ {
			id := int32(rng.Intn(n))
			p := rng.Float64() * 1000
			h.Push(id, p)
			final[id] = p
		}
		type kv struct {
			id int32
			p  float64
		}
		var want []kv
		for id, p := range final {
			want = append(want, kv{id, p})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].p != want[j].p {
				return want[i].p < want[j].p
			}
			return want[i].id < want[j].id
		})
		if h.Len() != len(want) {
			t.Fatalf("len=%d want %d", h.Len(), len(want))
		}
		var prev float64 = -1
		seen := make(map[int32]bool)
		for h.Len() > 0 {
			id, p := h.Pop()
			if p < prev {
				t.Fatalf("non-monotone pop: %v after %v", p, prev)
			}
			if final[id] != p {
				t.Fatalf("item %d popped with %v want %v", id, p, final[id])
			}
			if seen[id] {
				t.Fatalf("item %d popped twice", id)
			}
			seen[id] = true
			prev = p
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	const n = 1024
	h := New(n)
	rng := rand.New(rand.NewSource(1))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for j := 0; j < n; j++ {
			h.Push(int32(j), prios[j])
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
