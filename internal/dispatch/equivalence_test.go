package dispatch_test

// Determinism-equivalence harness: the parallel dispatcher is only
// trustworthy because this suite machine-checks that its output is
// bit-identical to the serial planner's. Two complementary checks:
//
//  1. End-to-end: serial Greedy and ParallelGreedy each drive a full
//     simulation of the same randomized workload on independently built
//     (identical) fleets; served sets, per-request worker assignments,
//     Δ* values and final routes must match exactly.
//
//  2. Lockstep: a combined planner asks both planners for their decision
//     on the *same* fleet state before every application, catching any
//     divergence at the exact request where it first appears.
//
// Scenarios randomize α, worker capacity, deadlines, penalties, fleet
// size and pool sizes 1–16.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scenario is one randomized equivalence configuration.
type scenario struct {
	params workload.Params
	alpha  float64
	prune  bool
	pool   int
}

// makeScenario derives a deterministic scenario from its index.
func makeScenario(i int) scenario {
	rng := rand.New(rand.NewSource(int64(i)*2654435761 + 17))
	side := 7 + rng.Intn(6)
	p := workload.Params{
		Name: fmt.Sprintf("scen%03d", i),
		Net: roadnet.GenConfig{
			Rows: side, Cols: side,
			Spacing:       110 + 60*rng.Float64(),
			Jitter:        0.3 * rng.Float64(),
			ArterialEvery: 3 + rng.Intn(3),
			MotorwayRing:  rng.Intn(2) == 0,
			RemoveFrac:    0.15 * rng.Float64(),
			DetourMin:     1.02,
			DetourMax:     1.25,
			Seed:          int64(i)*31 + 7,
		},
		NumRequests:   30 + rng.Intn(50),
		NumWorkers:    5 + rng.Intn(30),
		DurationSec:   900 + 900*rng.Float64(),
		DeadlineSec:   240 + 600*rng.Float64(),
		PenaltyFactor: []float64{1, 2, 5, 10, 30}[rng.Intn(5)],
		CapacityMean:  []float64{1, 2, 4, 6}[rng.Intn(4)],
		Hotspots:      rng.Intn(4),
		HotspotSigma:  500,
		HotspotWeight: 0.5 * rng.Float64(),
		RushHours:     rng.Intn(2) == 0,
		Seed:          int64(i)*101 + 3,
	}
	return scenario{
		params: p,
		alpha:  []float64{0.5, 1, 1, 2}[rng.Intn(4)],
		prune:  rng.Intn(4) != 0, // mostly pruneGreedyDP, sometimes GreedyDP
		pool:   1 + rng.Intn(16), // pool sizes 1–16
	}
}

// build materializes one scenario: graph, oracle, instance, fleet.
func (s scenario) build(t *testing.T, sharded bool) (*core.Fleet, []*core.Request, *roadnet.Graph) {
	t.Helper()
	g, err := roadnet.Generate(s.params.Net)
	if err != nil {
		t.Fatal(err)
	}
	hub := shortest.BuildHubLabels(g)
	var dist core.DistFunc
	if sharded {
		dist = shortest.NewShardedCached(hub, 1<<14, 16).Dist
	} else {
		dist = shortest.NewCached(shortest.NewCounting(hub), 1<<14).Dist
	}
	inst, err := workload.BuildOn(s.params, g, dist)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := core.NewFleet(g, dist, inst.Workers, 1500)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, inst.Requests, g
}

func (s scenario) serialPlanner(fleet *core.Fleet) *core.Greedy {
	return core.NewGreedy(fleet, core.Config{
		Alpha: s.alpha, Prune: s.prune, PostCheck: true,
	}, "serial")
}

func (s scenario) parallelPlanner(fleet *core.Fleet) *dispatch.ParallelGreedy {
	return dispatch.NewParallelGreedy(fleet, dispatch.Config{
		Plan:         core.Config{Alpha: s.alpha, Prune: s.prune, PostCheck: true},
		Pool:         s.pool,
		SerialCutoff: 1, // force the parallel path even on tiny candidate sets
	}, "parallel")
}

// recorder wraps a planner and captures every per-request Result.
type recorder struct {
	inner   core.Planner
	results map[core.RequestID]core.Result
}

func record(inner core.Planner) *recorder {
	return &recorder{inner: inner, results: map[core.RequestID]core.Result{}}
}

func (r *recorder) Name() string { return r.inner.Name() }

func (r *recorder) OnRequest(now float64, req *core.Request) core.Result {
	res := r.inner.OnRequest(now, req)
	r.results[req.ID] = res
	return res
}

// TestSerialParallelEquivalence is the end-to-end check over ≥ 100
// randomized scenarios (24 under -short, e.g. in the race suite).
func TestSerialParallelEquivalence(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 24
	}
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("scen%03d", i), func(t *testing.T) {
			t.Parallel()
			s := makeScenario(i)

			fleetA, reqsA, gA := s.build(t, false)
			fleetB, reqsB, gB := s.build(t, true)

			serial := record(s.serialPlanner(fleetA))
			parallel := record(s.parallelPlanner(fleetB))

			engA := sim.NewEngine(fleetA, serial, shortest.NewBiDijkstra(gA), s.alpha)
			engB := sim.NewEngine(fleetB, parallel, shortest.NewBiDijkstra(gB), s.alpha)
			mA, err := engA.Run(reqsA)
			if err != nil {
				t.Fatal(err)
			}
			mB, err := engB.Run(reqsB)
			if err != nil {
				t.Fatal(err)
			}

			if mA.Served != mB.Served {
				t.Fatalf("served count: serial %d parallel %d (pool %d)", mA.Served, mB.Served, s.pool)
			}
			if mA.TotalDistance != mB.TotalDistance {
				t.Fatalf("total distance: serial %v parallel %v", mA.TotalDistance, mB.TotalDistance)
			}
			if len(serial.results) != len(parallel.results) {
				t.Fatalf("result count: serial %d parallel %d", len(serial.results), len(parallel.results))
			}
			for id, ra := range serial.results {
				rb, ok := parallel.results[id]
				if !ok {
					t.Fatalf("request %d missing from parallel results", id)
				}
				if ra.Served != rb.Served || ra.Worker != rb.Worker || ra.Delta != rb.Delta {
					t.Fatalf("request %d: serial %+v parallel %+v (pool %d)", id, ra, rb, s.pool)
				}
			}
			for i, wa := range fleetA.Workers {
				wb := fleetB.Workers[i]
				if len(wa.Route.Stops) != len(wb.Route.Stops) {
					t.Fatalf("worker %d: route length %d vs %d", i, len(wa.Route.Stops), len(wb.Route.Stops))
				}
				for k, sa := range wa.Route.Stops {
					sb := wb.Route.Stops[k]
					if sa != sb || wa.Route.Arr[k] != wb.Route.Arr[k] {
						t.Fatalf("worker %d stop %d: %+v@%v vs %+v@%v",
							i, k, sa, wa.Route.Arr[k], sb, wb.Route.Arr[k])
					}
				}
			}
		})
	}
}

// lockstep is a planner that runs serial and parallel planning on the
// identical fleet state before every application, failing the test at the
// first divergence.
type lockstep struct {
	t        *testing.T
	fleet    *core.Fleet
	serial   *core.Greedy
	parallel *dispatch.ParallelGreedy
}

func (l *lockstep) Name() string { return "lockstep" }

func (l *lockstep) OnRequest(now float64, req *core.Request) core.Result {
	wa, ia, L := l.serial.Plan(now, req)
	wb, ib, _ := l.parallel.Plan(now, req)
	if (wa == nil) != (wb == nil) {
		l.t.Fatalf("request %d: serial served=%v parallel served=%v", req.ID, wa != nil, wb != nil)
	}
	if wa == nil {
		return core.Result{}
	}
	if wa.ID != wb.ID || ia.Delta != ib.Delta || ia.I != ib.I || ia.J != ib.J {
		l.t.Fatalf("request %d: serial worker %d ins %+v; parallel worker %d ins %+v",
			req.ID, wa.ID, ia, wb.ID, ib)
	}
	if err := core.Apply(&wa.Route, wa.Capacity, req, ia, L, l.fleet.Dist); err != nil {
		l.t.Fatal(err)
	}
	return core.Result{Served: true, Worker: wa.ID, Delta: ia.Delta}
}

// TestLockstepPlanEquivalence checks plan-level identity on shared,
// evolving fleet state across a spread of pool sizes.
func TestLockstepPlanEquivalence(t *testing.T) {
	pools := []int{2, 3, 5, 8, 13, 16}
	if testing.Short() {
		pools = []int{2, 8}
	}
	for _, pool := range pools {
		pool := pool
		t.Run(fmt.Sprintf("pool%d", pool), func(t *testing.T) {
			t.Parallel()
			s := makeScenario(1000 + pool)
			s.pool = pool
			s.prune = true
			fleet, reqs, g := s.build(t, true)
			ls := &lockstep{
				t:        t,
				fleet:    fleet,
				serial:   s.serialPlanner(fleet),
				parallel: s.parallelPlanner(fleet),
			}
			eng := sim.NewEngine(fleet, ls, shortest.NewBiDijkstra(g), s.alpha)
			if _, err := eng.Run(reqs); err != nil {
				t.Fatal(err)
			}
			if err := eng.FastForward(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPoolSizeInvariance fixes one scenario and sweeps every pool size
// 1–16: all runs must produce the identical served set and assignments.
func TestPoolSizeInvariance(t *testing.T) {
	s := makeScenario(4242)
	s.prune = true

	var ref map[core.RequestID]core.Result
	for pool := 1; pool <= 16; pool++ {
		s.pool = pool
		fleet, reqs, g := s.build(t, true)
		rec := record(s.parallelPlanner(fleet))
		eng := sim.NewEngine(fleet, rec, shortest.NewBiDijkstra(g), s.alpha)
		if _, err := eng.Run(reqs); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = rec.results
			continue
		}
		if len(rec.results) != len(ref) {
			t.Fatalf("pool %d: %d results, want %d", pool, len(rec.results), len(ref))
		}
		for id, want := range ref {
			if got := rec.results[id]; got != want {
				t.Fatalf("pool %d request %d: %+v, want %+v", pool, id, got, want)
			}
		}
	}
}
