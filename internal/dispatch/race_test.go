package dispatch_test

// Race-detector coverage (run with `go test -race -short ./...`): the
// dispatcher under a real simulated load, concurrent Fleet.Candidates
// retrieval against grid updates, and concurrent Plan calls. The
// concurrent shortest-path cache has its own race suite in
// internal/shortest.

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/shortest"
	"repro/internal/sim"
)

// TestDispatcherUnderSimulatedLoad drives a full simulation with the
// parallel planner at pool 8; under -race this exercises the shared
// bound, the shared cursor, the sharded cache and the grid's read path.
func TestDispatcherUnderSimulatedLoad(t *testing.T) {
	s := makeScenario(77)
	s.pool = 8
	s.prune = true
	fleet, reqs, g := s.build(t, true)
	eng := sim.NewEngine(fleet, s.parallelPlanner(fleet), shortest.NewBiDijkstra(g), s.alpha)
	if _, err := eng.Run(reqs); err != nil {
		t.Fatal(err)
	}
	if err := eng.FastForward(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCandidates hammers Fleet.Candidates from many goroutines
// while another goroutine keeps moving workers through the grid index —
// the exact interleaving a future pipelined dispatcher would produce.
func TestConcurrentCandidates(t *testing.T) {
	s := makeScenario(78)
	fleet, reqs, _ := s.build(t, true)
	if len(reqs) == 0 {
		t.Fatal("scenario has no requests")
	}

	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() { // writer: churn worker positions
		defer writer.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := fleet.Workers[i%len(fleet.Workers)]
			w.Route.Loc = reqs[i%len(reqs)].Origin
			fleet.UpdateWorkerPosition(w)
			i++
		}
	}()
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(seed int) { // readers: candidate retrieval under load
			defer readers.Done()
			for i := 0; i < 200; i++ {
				r := reqs[(seed*31+i)%len(reqs)]
				L := fleet.Dist(r.Origin, r.Dest)
				cands := fleet.Candidates(r, 0, L)
				for _, w := range cands {
					if w == nil {
						t.Error("nil candidate")
						return
					}
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() { // readers: whole-grid scans
			defer readers.Done()
			for i := 0; i < 100; i++ {
				fleet.Grid.Len()
				fleet.Grid.MemoryBytes()
			}
		}()
	}
	// Readers run against the live writer; only stop it once they finish.
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestConcurrentPlanScratchIsolation pins the scratch-arena ownership
// contract: concurrent Plan calls on ONE ParallelGreedy draw their arenas
// from a pool, so no insertion context is ever shared across scans —
// core.Scratch panics (and -race flags the buffer writes) if that breaks.
// Decisions must also stay bit-identical to a sequential pass over the
// same frozen fleet, proving the arenas carry no cross-request state.
func TestConcurrentPlanScratchIsolation(t *testing.T) {
	s := makeScenario(81)
	s.pool = 4
	s.prune = true
	fleet, reqs, _ := s.build(t, true)
	planner := s.parallelPlanner(fleet)
	if len(reqs) > 64 {
		reqs = reqs[:64]
	}

	// Sequential reference pass (planning is read-only on the fleet).
	type outcome struct {
		w     core.WorkerID
		ok    bool
		delta float64
	}
	want := make([]outcome, len(reqs))
	for i, r := range reqs {
		w, ins, _ := planner.Plan(r.Release, r)
		if w != nil {
			want[i] = outcome{w: w.ID, ok: true, delta: ins.Delta}
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := range reqs {
				k := (seed*13 + i) % len(reqs)
				r := reqs[k]
				w, ins, _ := planner.Plan(r.Release, r)
				got := outcome{}
				if w != nil {
					got = outcome{w: w.ID, ok: true, delta: ins.Delta}
				}
				if got != want[k] {
					t.Errorf("request %d: concurrent plan %+v != sequential %+v", r.ID, got, want[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentPlanCalls runs many read-only Plan calls on one frozen
// fleet state concurrently — planning never mutates routes, so this must
// be race-free by construction.
func TestConcurrentPlanCalls(t *testing.T) {
	s := makeScenario(79)
	s.pool = 4
	fleet, reqs, _ := s.build(t, true)
	planner := s.parallelPlanner(fleet)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r := reqs[(seed*17+i)%len(reqs)]
				planner.Plan(r.Release, r)
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelDeltaNonNegative guards the Lemma 8 invariant the shared
// bound relies on: no feasible parallel plan may report a negative Δ*.
func TestParallelDeltaNonNegative(t *testing.T) {
	s := makeScenario(80)
	s.pool = 8
	fleet, reqs, _ := s.build(t, true)
	planner := s.parallelPlanner(fleet)
	for _, r := range reqs {
		if w, ins, _ := planner.Plan(r.Release, r); w != nil && ins.Delta < 0 {
			t.Fatalf("request %d: negative delta %v", r.ID, ins.Delta)
		}
	}
}

var _ core.Planner = (*recorder)(nil)
