package dispatch_test

// Shared-table equivalence: serve's flush builds ONE DistTable per
// admission batch and lets every planner shard read it concurrently.
// This suite checks the dispatch half of that contract — a
// ParallelGreedy whose fleet DistFunc is a batch-prefetched DistTable
// must be bit-identical to a serial Greedy running pure point queries,
// across pool sizes, with routes mutating between batches.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// buildTableScenario materializes two identical fleets over one graph
// and a bitwise-symmetric hub oracle: fleet A plans with point queries,
// fleet B gets a batch-prefetched table swapped in front of the same
// point chain.
func buildTableScenario(t *testing.T, i int) (fleetA, fleetB *core.Fleet, reqs []*core.Request, hub *shortest.HubLabels) {
	t.Helper()
	s := makeScenario(i)
	g, err := roadnet.Generate(s.params.Net)
	if err != nil {
		t.Fatal(err)
	}
	hub = shortest.BuildHubLabels(g)
	inst, err := workload.BuildOn(s.params, g, hub.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleetA, err = core.NewFleet(g, hub.Dist, inst.Workers, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// BuildOn is deterministic: a second build yields an identical fleet.
	instB, err := workload.BuildOn(s.params, g, hub.Dist)
	if err != nil {
		t.Fatal(err)
	}
	fleetB, err = core.NewFleet(g, hub.Dist, instB.Workers, 1500)
	if err != nil {
		t.Fatal(err)
	}
	return fleetA, fleetB, inst.Requests, hub
}

func TestParallelGreedySharedTableEquivalence(t *testing.T) {
	pools := []int{2, 4, 8}
	if testing.Short() {
		pools = []int{4}
	}
	for pi, pool := range pools {
		pool := pool
		t.Run(fmt.Sprintf("pool%d", pool), func(t *testing.T) {
			t.Parallel()
			fleetA, fleetB, reqs, hub := buildTableScenario(t, 2024+pi)
			pointDist := fleetB.Dist
			mtm := shortest.ManyToManyFor(hub)
			arena := shortest.NewTableArena()
			table := core.NewDistTable(fleetB.Graph.NumVertices(), pointDist)

			serial := core.NewGreedy(fleetA, core.Config{
				Alpha: 1, Prune: true, PostCheck: true,
			}, "serial-point")
			par := dispatch.NewParallelGreedy(fleetB, dispatch.Config{
				Plan:         core.Config{Alpha: 1, Prune: true, PostCheck: true},
				Pool:         pool,
				SerialCutoff: 1,
			}, "parallel-table")

			var cands []*core.Worker
			const batchSize = 6
			for start := 0; start < len(reqs); start += batchSize {
				batch := reqs[start:min(start+batchSize, len(reqs))]
				now := batch[0].Release

				// Prefetch one table for the batch: request endpoints as
				// columns, candidate workers' route vertices as rows.
				table.Reset()
				cands = cands[:0]
				for _, r := range batch {
					table.AddRequest(r)
					cands = fleetB.CandidatesAppend(cands, r, now, 0)
				}
				for _, w := range cands {
					table.AddWorker(w)
				}
				table.Install(mtm.Table(arena, table.Rows(), table.Cols()))

				fleetB.Dist = table.Dist
				for _, r := range batch {
					rA, rB := *r, *r
					ra := serial.OnRequest(r.Release, &rA)
					rb := par.OnRequest(r.Release, &rB)
					if ra.Served != rb.Served || ra.Worker != rb.Worker ||
						math.Float64bits(ra.Delta) != math.Float64bits(rb.Delta) {
						t.Fatalf("pool %d request %d: point %+v table %+v", pool, r.ID, ra, rb)
					}
				}
				fleetB.Dist = pointDist
			}

			hits, _ := table.Stats()
			if hits == 0 {
				t.Fatal("parallel shards never read a table cell")
			}
			for i := range fleetA.Workers {
				ra, rb := &fleetA.Workers[i].Route, &fleetB.Workers[i].Route
				if len(ra.Stops) != len(rb.Stops) {
					t.Fatalf("worker %d: route length %d vs %d", i, len(ra.Stops), len(rb.Stops))
				}
				for k := range ra.Stops {
					if ra.Stops[k] != rb.Stops[k] ||
						math.Float64bits(ra.Arr[k]) != math.Float64bits(rb.Arr[k]) {
						t.Fatalf("worker %d stop %d diverges", i, k)
					}
				}
			}
		})
	}
}
