// Package dispatch is the parallel planning engine: it fans the two
// phases of Algorithm 5 (Tong et al., VLDB'18) out across a bounded
// goroutine pool while producing bit-identical results to the serial
// core.Greedy planner.
//
// Both phases parallelize because their per-worker work is independent:
//
//   - Decision (Algorithm 4): LBΔ* for each candidate worker touches only
//     that worker's route and the road network's coordinates, so the
//     lower bounds are computed concurrently into a position-indexed
//     slice and compacted in candidate order afterwards — the resulting
//     WorkerBound slice is exactly the one core.Decide builds.
//
//   - Planning (Algorithm 5): exact insertions for different workers are
//     independent. The LB-sorted candidate list is consumed through a
//     shared atomic cursor, so goroutines cooperatively scan it in the
//     serial order; every feasible Δ* shrinks a shared AtomicBound, and a
//     goroutine stops at the first candidate whose LB strictly exceeds
//     the bound (Lemma 8). Because the bound never drops below the final
//     best Δ*, a pruned candidate's exact Δ is strictly worse than the
//     winner's — it could not even tie — so merging the per-goroutine
//     local bests with the serial (Δ*, WorkerID) tie-break selects
//     exactly the worker the serial scan selects.
//
// Determinism therefore does not depend on scheduling: only response
// times vary across runs, never decisions, assignments or Δ* values.
// The property-based suite in equivalence_test.go machine-checks this
// against core.Greedy over randomized workloads.
//
// The planner requires a concurrency-safe distance oracle behind
// Fleet.Dist (e.g. shortest.ShardedCached over hub labels, with
// shortest.Locked around non-reentrant oracles) and relies on the
// read-write-locked spatial grid for candidate retrieval.
package dispatch

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Config parameterizes the parallel planner.
type Config struct {
	// Plan is the planning configuration shared with the serial planner
	// (α, pruning, post-check, insertion operator).
	Plan core.Config
	// Pool is the number of planning goroutines (≤ 1 plans serially).
	Pool int
	// SerialCutoff is the candidate count below which the request is
	// planned serially — goroutine fan-out costs more than it saves on
	// tiny candidate sets. ≤ 0 selects DefaultSerialCutoff.
	SerialCutoff int
}

// DefaultSerialCutoff is the candidate count below which fan-out is not
// worth its overhead; measured on the insertion microbenchmarks.
const DefaultSerialCutoff = 16

// ParallelGreedy is the parallel pruneGreedyDP/GreedyDP planner. It
// implements core.Planner and is a drop-in replacement for core.Greedy
// with identical outputs.
//
// Unlike core.Greedy — which owns a single scratch arena and is therefore
// strictly single-threaded — ParallelGreedy draws its planning arenas
// from a sync.Pool, so read-only Plan calls on one instance are safe from
// any number of goroutines (OnRequest still mutates routes and needs
// external ordering, as always).
type ParallelGreedy struct {
	fleet  *core.Fleet
	cfg    core.Config
	pool   int
	cutoff int
	name   string
	arenas sync.Pool // of *planArena
	// obs is the introspection hook; each Plan call populates the trace
	// record of its own pooled arena, so concurrent observed Plans never
	// share a PlanTrace (the observer itself must be concurrency-safe,
	// which internal/trace.Recorder is).
	obs core.PlanObserver
}

// planArena bundles every reusable buffer one Plan call needs: the
// coordinator scratch (candidate retrieval, serial fallback), the
// decision-phase bound arrays, one insertion Scratch per planning
// goroutine — NEVER shared across concurrent scans; core.Scratch asserts
// that — and the merge slots for the per-goroutine local bests. Arenas
// are pooled, grown on demand and never shrunk.
type planArena struct {
	sc     core.Scratch
	bounds []float64
	lbs    []core.WorkerBound
	evals  []*core.Scratch
	locals []localBest
	bound  core.AtomicBound
	// tr is this arena's introspection record and stats its per-goroutine
	// work counters (one slot per scan, summed after the merge) — both
	// reused across requests so an attached observer allocates nothing.
	tr    core.PlanTrace
	stats []core.PlanStats
}

// localBest is one goroutine's scan result before the deterministic merge.
type localBest struct {
	w   *core.Worker
	ins core.Insertion
}

// evalScratches returns nw insertion arenas, allocating lazily so a
// planner that never fans that wide never pays for them.
func (a *planArena) evalScratches(nw int) []*core.Scratch {
	for len(a.evals) < nw {
		a.evals = append(a.evals, new(core.Scratch))
	}
	return a.evals[:nw]
}

// grown returns s with length n, reusing capacity and over-allocating on
// growth (same policy as core's scratch buffers) so a slowly creeping
// candidate count stops triggering per-request reallocation.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n, n+n/2+8)
	}
	return s[:n]
}

// NewParallelGreedy returns a parallel greedy planner with full
// configuration control. A nil insertion operator selects
// core.LinearDPInsertion, like core.NewGreedy.
func NewParallelGreedy(fleet *core.Fleet, cfg Config, name string) *ParallelGreedy {
	if cfg.Plan.Insertion == nil {
		cfg.Plan.Insertion = (*core.Scratch).LinearDP
	}
	if cfg.Pool < 1 {
		cfg.Pool = 1
	}
	if cfg.SerialCutoff <= 0 {
		cfg.SerialCutoff = DefaultSerialCutoff
	}
	p := &ParallelGreedy{
		fleet:  fleet,
		cfg:    cfg.Plan,
		pool:   cfg.Pool,
		cutoff: cfg.SerialCutoff,
		name:   name,
	}
	p.arenas.New = func() any { return new(planArena) }
	return p
}

// NewParallelPruneGreedyDP returns the parallel counterpart of the
// paper's pruneGreedyDP planner with the given pool size.
func NewParallelPruneGreedyDP(fleet *core.Fleet, alpha float64, pool int) *ParallelGreedy {
	return NewParallelGreedy(fleet, Config{
		Plan: core.Config{Alpha: alpha, Prune: true, PostCheck: true},
		Pool: pool,
	}, fmt.Sprintf("pruneGreedyDP-p%d", pool))
}

// NewParallelGreedyDP returns the parallel GreedyDP ablation (no Lemma 8
// pruning) with the given pool size.
func NewParallelGreedyDP(fleet *core.Fleet, alpha float64, pool int) *ParallelGreedy {
	return NewParallelGreedy(fleet, Config{
		Plan: core.Config{Alpha: alpha, PostCheck: true},
		Pool: pool,
	}, fmt.Sprintf("GreedyDP-p%d", pool))
}

// Name implements core.Planner.
func (p *ParallelGreedy) Name() string { return p.name }

// SetObserver implements core.Observable: attach (or with nil, detach) a
// plan observer. It must not race with in-flight Plan calls.
func (p *ParallelGreedy) SetObserver(o core.PlanObserver) { p.obs = o }

// Pool returns the configured number of planning goroutines.
func (p *ParallelGreedy) Pool() int { return p.pool }

// OnRequest implements core.Planner: plan in parallel, apply serially.
// Route mutation stays on the caller's goroutine, so the planner never
// writes shared state concurrently.
func (p *ParallelGreedy) OnRequest(now float64, req *core.Request) core.Result {
	bestW, bestIns, L := p.Plan(now, req)
	if bestW == nil {
		return core.Result{}
	}
	if err := core.Apply(&bestW.Route, bestW.Capacity, req, bestIns, L, p.fleet.Dist); err != nil {
		// An insertion reported feasible must apply cleanly; failure here
		// is a programming error, not a runtime condition.
		panic(err)
	}
	return core.Result{Served: true, Worker: bestW.ID, Delta: bestIns.Delta}
}

// Plan runs both phases of Algorithm 5 without mutating any route. Its
// return value is bit-identical to core.Greedy.Plan on the same fleet
// state, for any pool size. With an observer attached it emits the
// PlanStart/PlanDone callbacks on the pooled arena's trace record; the
// decision stays bit-identical, but the work counters (Evaluated,
// DPCells) may vary run to run with goroutine timing — Lemma 8 prunes
// whatever the cooperative bound has not yet excluded.
func (p *ParallelGreedy) Plan(now float64, req *core.Request) (*core.Worker, core.Insertion, float64) {
	if p.obs == nil {
		return p.plan(now, req, nil)
	}
	a := p.arenas.Get().(*planArena)
	defer p.arenas.Put(a)
	p.obs.PlanStart(now, req)
	start := time.Now()
	tr := &a.tr
	*tr = core.PlanTrace{Req: req, Now: now, Chosen: -1, MinLB: math.Inf(1)}
	w, ins, L := p.planOn(a, now, req, tr)
	tr.L = L
	if w != nil {
		tr.Ins = ins
		tr.Chosen = w.ID
		tr.Reason = core.ReasonServed
	}
	tr.Pruned = tr.Feasible - int(tr.Stats.Evaluated)
	tr.PlanNs = time.Since(start).Nanoseconds()
	p.obs.PlanDone(tr)
	return w, ins, L
}

// plan draws an arena and runs the uninstrumented path.
func (p *ParallelGreedy) plan(now float64, req *core.Request, tr *core.PlanTrace) (*core.Worker, core.Insertion, float64) {
	a := p.arenas.Get().(*planArena)
	defer p.arenas.Put(a)
	return p.planOn(a, now, req, tr)
}

// planOn is the Plan body on a caller-held arena; tr is nil on the
// uninstrumented hot path and collects phase facts otherwise.
func (p *ParallelGreedy) planOn(a *planArena, now float64, req *core.Request, tr *core.PlanTrace) (*core.Worker, core.Insertion, float64) {
	f := p.fleet
	L := f.Dist(req.Origin, req.Dest) // the decision phase's one query

	cands := a.sc.Candidates(f, req, now, L)
	if tr != nil {
		tr.Candidates = len(cands)
	}
	if len(cands) == 0 {
		if tr != nil {
			tr.Reason = core.ReasonNoCandidates
		}
		return nil, core.Infeasible, L
	}
	parallel := p.pool > 1 && len(cands) >= p.cutoff

	// Phase 1: decision (Algorithm 4).
	var (
		lbs    []core.WorkerBound
		reject bool
	)
	if parallel {
		lbs, reject = p.parallelDecide(a, cands, req, L)
	} else {
		lbs, reject = a.sc.Decide(p.cfg.Alpha, cands, req, f.Graph, L)
	}
	if tr != nil {
		tr.Parallel = parallel
		tr.Feasible = len(lbs)
		for _, wb := range lbs {
			if wb.LB < tr.MinLB {
				tr.MinLB = wb.LB
			}
		}
	}
	if reject {
		if tr != nil {
			tr.LBs = lbs
			tr.Reason = core.ReasonDecisionBound
		}
		return nil, core.Infeasible, L
	}

	// Phase 2: planning.
	if p.cfg.Prune {
		core.SortWorkerBounds(lbs)
	}
	var st *core.PlanStats
	if tr != nil {
		tr.LBs = lbs
		st = &tr.Stats
	}
	var (
		bestW   *core.Worker
		bestIns core.Insertion
	)
	if parallel && len(lbs) > 1 {
		bestW, bestIns = p.parallelEval(a, lbs, req, L, st)
	} else {
		bestW, bestIns = core.EvalCandidatesSerial(&a.sc, p.cfg.Insertion, p.cfg.Prune, lbs, req, L, f.Dist, st)
	}
	if bestW == nil {
		if tr != nil {
			tr.Reason = core.ReasonNoFeasibleInsertion
		}
		return nil, core.Infeasible, L
	}
	if p.cfg.PostCheck && p.cfg.Alpha*bestIns.Delta > req.Penalty {
		if tr != nil {
			tr.Reason = core.ReasonPostCheck
			tr.Ins = bestIns // the infeasible-by-economics plan, for the record
		}
		return nil, core.Infeasible, L
	}
	return bestW, bestIns, L
}

// parallelDecide computes LBΔ* for every candidate concurrently and
// compacts the feasible ones in candidate order, replicating core.Decide
// exactly: same slice order, same minimum, same reject decision. Each
// goroutine computes bounds on its own arena scratch.
func (p *ParallelGreedy) parallelDecide(a *planArena, cands []*core.Worker, req *core.Request, L float64) ([]core.WorkerBound, bool) {
	a.bounds = grown(a.bounds, len(cands))
	bounds := a.bounds
	scratches := a.evalScratches(p.workersFor(len(cands)))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < len(scratches); g++ {
		wg.Add(1)
		go func(sc *core.Scratch) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(cands) {
					return
				}
				w := cands[i]
				bounds[i] = sc.LowerBound(&w.Route, w.Capacity, req, p.fleet.Graph, L)
			}
		}(scratches[g])
	}
	wg.Wait()

	lbs := a.lbs[:0]
	minLB := math.Inf(1)
	for i, lb := range bounds {
		if math.IsInf(lb, 1) {
			continue // provably infeasible for this worker
		}
		lbs = append(lbs, core.WorkerBound{LB: lb, Worker: cands[i]})
		if lb < minLB {
			minLB = lb
		}
	}
	a.lbs = lbs // retain growth across requests
	if len(lbs) == 0 {
		return nil, true
	}
	// Reject when p_r < α·min LB (Algorithm 4 line 5).
	return lbs, req.Penalty < p.cfg.Alpha*minLB
}

// parallelEval scans the (sorted, when pruning) candidate list through a
// shared cursor with a cooperatively shrunk Lemma 8 bound, then merges
// the per-goroutine local bests deterministically. The scans share lbs,
// the bound and the cursor — but each one runs on its own arena scratch
// (sharing one would corrupt the insertion contexts; core.Scratch panics
// on the attempt). st, when non-nil, receives the summed per-goroutine
// work counters after the merge.
func (p *ParallelGreedy) parallelEval(a *planArena, lbs []core.WorkerBound, req *core.Request, L float64, st *core.PlanStats) (*core.Worker, core.Insertion) {
	nw := p.workersFor(len(lbs))
	a.locals = grown(a.locals, nw)
	locals := a.locals
	scratches := a.evalScratches(nw)
	var stats []core.PlanStats
	if st != nil {
		a.stats = grown(a.stats, nw)
		stats = a.stats
	}
	bound := &a.bound
	bound.Reset()
	var cursor atomic.Int64
	next := func() int { return int(cursor.Add(1) - 1) }
	var wg sync.WaitGroup
	for g := 0; g < nw; g++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			var gst *core.PlanStats
			if stats != nil {
				stats[slot] = core.PlanStats{}
				gst = &stats[slot]
			}
			w, ins := core.EvalCandidates(scratches[slot], p.cfg.Insertion, p.cfg.Prune, lbs, req, L, p.fleet.Dist, bound, next, gst)
			locals[slot] = localBest{w: w, ins: ins}
		}(g)
	}
	wg.Wait()

	var bestW *core.Worker
	bestIns := core.Infeasible
	for _, lb := range locals {
		if core.BetterCandidate(bestW, bestIns, lb.w, lb.ins) {
			bestW = lb.w
			bestIns = lb.ins
		}
	}
	if st != nil {
		for i := range stats {
			st.Add(stats[i])
		}
	}
	return bestW, bestIns
}

// workersFor bounds the fan-out by both the pool and the work items.
func (p *ParallelGreedy) workersFor(items int) int {
	if items < p.pool {
		return items
	}
	return p.pool
}
