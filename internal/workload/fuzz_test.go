package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Fuzz targets for the two workload parsers. The contract matches the
// roadnet parsers': malformed input returns an error, never a panic, and
// never an allocation driven by a lying header count. `go test` replays
// the seed corpus; run `go test -fuzz FuzzReadStream ./internal/workload`
// to explore.

// fuzzGraph is a tiny fixed graph the fuzzed payloads are validated
// against (vertex range checks need one).
func fuzzGraph(tb testing.TB) *roadnet.Graph {
	tb.Helper()
	g, err := roadnet.LineGraph(8, 10)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func FuzzReadStream(f *testing.F) {
	g := fuzzGraph(f)
	inst := &Instance{
		Graph: g,
		Workers: []*core.Worker{
			{ID: 0, Capacity: 3, Route: core.Route{Loc: 0}},
			{ID: 1, Capacity: 2, Route: core.Route{Loc: 5}},
		},
		Requests: []*core.Request{
			{ID: 0, Origin: 1, Dest: 6, Release: 0, Deadline: 300, Penalty: 10, Capacity: 1},
		},
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, inst); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("urpsm-workload 1\nw 99999999999\n"))
	f.Add([]byte("urpsm-workload 1\nw 1\n0 1\nr 1\n1 6 0 NaN 10 1\n"))
	f.Add([]byte("urpsm-workload 1\nw 1\n0 1\nr 1\n1 99 0 300 10 1\n"))
	f.Add([]byte("urpsm-workload 1\nw 1\n0 0\nr 0\n"))
	f.Add([]byte("not a workload\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadStream(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		if inst == nil {
			t.Fatal("nil instance without error")
		}
		nv := g.NumVertices()
		for _, w := range inst.Workers {
			if int(w.Route.Loc) >= nv || w.Route.Loc < 0 || w.Capacity < 1 {
				t.Fatalf("invalid worker accepted: %+v", w)
			}
		}
		for _, r := range inst.Requests {
			if int(r.Origin) >= nv || int(r.Dest) >= nv || r.Origin < 0 || r.Dest < 0 {
				t.Fatalf("out-of-range request accepted: %+v", r)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("invalid request accepted: %v", err)
			}
		}
	})
}

func FuzzReadTripCSV(f *testing.F) {
	f.Add("time,plon,plat,dlon,dlat,pass\n10,10,0,60,0,1\n20,30,0,70,0,2\n")
	f.Add("10,10,0,60,0,1\n")
	f.Add("2016-11-18 08:00:00,10,0,60,0,1\n")
	f.Add("10,NaN,0,60,0,1\n")
	f.Add("10,10,0\n")
	f.Add("\"unclosed,10,0,60,0,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		g := fuzzGraph(t)
		dist := func(u, v roadnet.VertexID) float64 { return 1 }
		cfg := DefaultTripConfig(geo.PlanarProjection())
		cfg.MaxTrips = 64
		inst, _, err := ReadTripCSV(strings.NewReader(data), g, dist, cfg)
		if err != nil {
			return
		}
		for _, r := range inst.Requests {
			if err := r.Validate(); err != nil {
				t.Fatalf("invalid request accepted: %v", err)
			}
		}
	})
}
