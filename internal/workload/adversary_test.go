package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

func TestAdversaryRejectsBadSizes(t *testing.T) {
	for _, nv := range []int{0, 2, 3, 5, 7, -4} {
		if _, err := NewAdversarialInstance(AdvServedCount, nv, 1); err == nil {
			t.Errorf("|V|=%d: expected error, got none", nv)
		}
	}
	if _, err := NewAdversarialInstance(AdvServedCount, 4, 1); err != nil {
		t.Fatalf("|V|=4 should be valid: %v", err)
	}
}

func TestAdversaryVariantNames(t *testing.T) {
	cases := map[AdversaryVariant]string{
		AdvServedCount:      "served-count",
		AdvRevenue:          "revenue",
		AdvDistance:         "distance",
		AdversaryVariant(9): "unknown",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("variant %d: %q, want %q", v, got, want)
		}
	}
}

func TestAdversaryDeterministicBySeed(t *testing.T) {
	a, err := NewAdversarialInstance(AdvRevenue, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAdversarialInstance(AdvRevenue, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	if *a.Request != *b.Request {
		t.Fatalf("same seed produced different requests: %+v vs %+v", a.Request, b.Request)
	}
	c, err := NewAdversarialInstance(AdvRevenue, 16, 43)
	if err != nil {
		t.Fatal(err)
	}
	// The origin is the only random draw; over one draw a collision is
	// possible, so only check the structure still validates.
	if err := c.Request.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAdversaryConstructionInvariants checks each variant against the
// structure of its proof (Lemmas 1–3): worker placement, request shape,
// penalties and deadlines.
func TestAdversaryConstructionInvariants(t *testing.T) {
	const nv = 12
	for _, v := range []AdversaryVariant{AdvServedCount, AdvRevenue, AdvDistance} {
		inst, err := NewAdversarialInstance(v, nv, 7)
		if err != nil {
			t.Fatal(err)
		}
		r, w := inst.Request, inst.Worker
		if err := r.Validate(); err != nil {
			t.Fatalf("%v: invalid request: %v", v, err)
		}
		if w.ID != 0 || w.Capacity != 2 || w.Route.Loc != 0 {
			t.Fatalf("%v: worker %+v, want id 0, capacity 2 at vertex 0", v, w)
		}
		if got := inst.Graph.NumVertices(); got != nv {
			t.Fatalf("%v: cycle has %d vertices, want %d", v, got, nv)
		}
		if r.Release != float64(nv) {
			t.Fatalf("%v: release %v, want %v", v, r.Release, float64(nv))
		}
		if int(r.Origin) < 0 || int(r.Origin) >= nv {
			t.Fatalf("%v: origin %d outside the cycle", v, r.Origin)
		}
		if inst.Epsilon <= 0 || inst.Epsilon >= 1 {
			t.Fatalf("%v: epsilon %v must be within one unit edge", v, inst.Epsilon)
		}
		switch v {
		case AdvServedCount:
			if r.Dest != r.Origin || r.Penalty != 1 {
				t.Fatalf("Lemma 1 shape violated: %+v", r)
			}
			if r.Deadline != r.Release+inst.Epsilon {
				t.Fatalf("Lemma 1 deadline: %v", r.Deadline)
			}
			if inst.OptCost != 0 {
				t.Fatalf("Lemma 1 offline optimum must be free, got %v", inst.OptCost)
			}
		case AdvRevenue:
			want := roadnet.VertexID((int(r.Origin) + nv/2) % nv)
			if r.Dest != want {
				t.Fatalf("Lemma 2: dest %d, want antipode %d", r.Dest, want)
			}
			if r.Penalty != 3*float64(nv/2) {
				t.Fatalf("Lemma 2: penalty %v, want c_r·|V|/2 = %v", r.Penalty, 3*float64(nv/2))
			}
			if inst.OptCost != float64(nv) {
				t.Fatalf("Lemma 2: offline optimum %v, want %v", inst.OptCost, float64(nv))
			}
		case AdvDistance:
			if r.Dest != r.Origin || r.Penalty < 1e17 {
				t.Fatalf("Lemma 3 shape violated: %+v", r)
			}
		}
	}
}

// TestAdversaryOnlineFailsOffPosition plays the construction's punchline:
// the online planner serves the request iff the random origin happens to
// be the worker's vertex; an offline algorithm that pre-moves the worker
// always serves it.
func TestAdversaryOnlineFailsOffPosition(t *testing.T) {
	const nv = 8
	for seed := int64(0); seed < 24; seed++ {
		inst, err := NewAdversarialInstance(AdvServedCount, nv, seed)
		if err != nil {
			t.Fatal(err)
		}
		m := shortest.NewMatrix(inst.Graph)

		online := serveOne(t, inst.Graph, m, inst.Worker.Route.Loc, inst.Request)
		if want := inst.Request.Origin == inst.Worker.Route.Loc; online != want {
			t.Fatalf("seed %d: online served=%v with origin %d, worker at %d",
				seed, online, inst.Request.Origin, inst.Worker.Route.Loc)
		}
		// Offline: the omniscient solution has the worker already at o_r.
		if !serveOne(t, inst.Graph, m, inst.Request.Origin, inst.Request) {
			t.Fatalf("seed %d: offline optimum failed to serve", seed)
		}
	}
}

// serveOne asks pruneGreedyDP (α = 0, the served-count objective) to plan
// the adversarial request with the single worker at loc.
func serveOne(t *testing.T, g *roadnet.Graph, m *shortest.Matrix, loc roadnet.VertexID, req *core.Request) bool {
	t.Helper()
	w := &core.Worker{ID: 0, Capacity: 2, Route: core.Route{Loc: loc, Now: req.Release}}
	fleet, err := core.NewFleet(g, m.Dist, []*core.Worker{w}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	res := core.NewPruneGreedyDP(fleet, 0).OnRequest(req.Release, req)
	return res.Served
}

func TestAdversaryRevenueDeadlineReachable(t *testing.T) {
	// Lemma 2's deadline must leave exactly enough time for the offline
	// optimum: |V|/2 from o_r to the antipodal d_r plus the slack ε.
	inst, err := NewAdversarialInstance(AdvRevenue, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := shortest.NewMatrix(inst.Graph)
	L := m.Dist(inst.Request.Origin, inst.Request.Dest)
	if L != 5 {
		t.Fatalf("cycle antipode distance %v, want 5", L)
	}
	if got, want := inst.Request.Deadline, inst.Request.Release+L+inst.Epsilon; math.Abs(got-want) > 1e-12 {
		t.Fatalf("deadline %v, want release+L+eps = %v", got, want)
	}
}
