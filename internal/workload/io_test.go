package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	inst := buildSmall(t)
	var buf bytes.Buffer
	if err := WriteStream(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStream(&buf, inst.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Workers) != len(inst.Workers) || len(back.Requests) != len(inst.Requests) {
		t.Fatalf("sizes changed: w %d->%d r %d->%d",
			len(inst.Workers), len(back.Workers), len(inst.Requests), len(back.Requests))
	}
	for i, w := range inst.Workers {
		b := back.Workers[i]
		if b.Route.Loc != w.Route.Loc || b.Capacity != w.Capacity {
			t.Fatalf("worker %d changed: %+v vs %+v", i, b, w)
		}
	}
	for i, r := range inst.Requests {
		b := back.Requests[i]
		if b.Origin != r.Origin || b.Dest != r.Dest || b.Capacity != r.Capacity {
			t.Fatalf("request %d endpoints changed", i)
		}
		if math.Abs(b.Release-r.Release) > 1e-3 || math.Abs(b.Deadline-r.Deadline) > 1e-3 ||
			math.Abs(b.Penalty-r.Penalty) > 1e-3 {
			t.Fatalf("request %d timing/penalty changed", i)
		}
	}
}

func TestReadStreamRejectsGarbage(t *testing.T) {
	inst := buildSmall(t)
	g := inst.Graph
	cases := []string{
		"",
		"wrong-header\nw 0\nr 0\n",
		"urpsm-workload 1\nw -1\n",
		"urpsm-workload 1\nw 1\n99999999 4\nr 0\n",         // loc out of range
		"urpsm-workload 1\nw 1\n0 0\nr 0\n",                // zero capacity
		"urpsm-workload 1\nw 0\nr 1\n0 1 0 -5 1 1\n",       // deadline < release
		"urpsm-workload 1\nw 0\nr 1\n0 99999999 0 9 1 1\n", // dest out of range
		"urpsm-workload 1\nw 0\nr 2\n0 1 0 9 1 1\n",        // truncated
		"urpsm-workload 1\nw 0\nr 1\n0 1 0 9 1\n",          // missing field
		"urpsm-workload 1\nw 0\nr 1\n0 1 x 9 1 1\n",        // non-numeric
	}
	for i, s := range cases {
		if _, err := ReadStream(strings.NewReader(s), g); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
