package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/shortest"
)

// fixtureGraph loads the DIMACS fixture shared with internal/roadnet: a 4x4
// grid near Chengdu coordinates (vertex (r,c) has dense ID r*4+c).
func fixtureGraph(t *testing.T) (*roadnet.Graph, geo.Projection) {
	t.Helper()
	open := func(name string) *os.File {
		f, err := os.Open(filepath.Join("..", "roadnet", "testdata", name))
		if err != nil {
			t.Fatalf("open fixture: %v", err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	g, stats, err := roadnet.LoadDIMACS(open("sample.gr"), open("sample.co"), roadnet.DefaultDIMACSOptions())
	if err != nil {
		t.Fatalf("LoadDIMACS: %v", err)
	}
	return g, stats.Proj
}

func TestReadTripCSVFixture(t *testing.T) {
	g, proj := fixtureGraph(t)
	oracle := shortest.NewBiDijkstra(g)
	f, err := os.Open(filepath.Join("testdata", "trips.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cfg := DefaultTripConfig(proj)
	cfg.NumWorkers = 4
	cfg.Seed = 7
	inst, stats, err := ReadTripCSV(f, g, oracle.Dist, cfg)
	if err != nil {
		t.Fatalf("ReadTripCSV: %v", err)
	}

	// 13 data rows: 10 good, 1 unparseable lat, 1 beyond the match radius,
	// 1 collapsing onto a single vertex.
	if stats.Rows != 13 || stats.Trips != 10 {
		t.Fatalf("stats = %+v, want 13 rows / 10 trips", stats)
	}
	if stats.SkippedParse != 1 || stats.SkippedUnmatched != 1 || stats.SkippedSameStop != 1 {
		t.Fatalf("skip stats = %+v, want 1/1/1", stats)
	}
	if stats.WorstMatchMeters <= 0 || stats.WorstMatchMeters > cfg.MaxMatchMeters {
		t.Fatalf("worst match %v outside (0, %v]", stats.WorstMatchMeters, cfg.MaxMatchMeters)
	}
	if len(inst.Workers) != 4 {
		t.Fatalf("workers = %d, want 4", len(inst.Workers))
	}

	// Row 1 (08:00:05) runs along the bottom grid row: vertex 0 → vertex 3.
	r0 := inst.Requests[0]
	if r0.Origin != 0 || r0.Dest != 3 {
		t.Errorf("request 0 matched (%d,%d), want (0,3)", r0.Origin, r0.Dest)
	}
	// Row 2 released at 08:00:00 is the time base: its normalized release is
	// 0 and row 1's is 5 seconds.
	if inst.Requests[1].Release != 0 {
		t.Errorf("request 1 release = %v, want 0", inst.Requests[1].Release)
	}
	if r0.Release != 5 {
		t.Errorf("request 0 release = %v, want 5", r0.Release)
	}
	for i, r := range inst.Requests {
		if r.Deadline != r.Release+cfg.DeadlineSec {
			t.Fatalf("request %d deadline %v, want release+%v", i, r.Deadline, cfg.DeadlineSec)
		}
		if r.Penalty <= 0 {
			t.Fatalf("request %d penalty %v not positive", i, r.Penalty)
		}
		if r.Capacity < 1 || r.Capacity > len(NYCCapacityDist) {
			t.Fatalf("request %d capacity %d outside [1,%d]", i, r.Capacity, len(NYCCapacityDist))
		}
	}
	// Passenger clamping: row 5 declares 0 passengers, row 6 declares 9.
	if inst.Requests[4].Capacity != 1 || inst.Requests[5].Capacity != len(NYCCapacityDist) {
		t.Errorf("capacity clamping got %d,%d", inst.Requests[4].Capacity, inst.Requests[5].Capacity)
	}

	// The adapter's output must survive the stream round trip.
	var buf bytes.Buffer
	if err := WriteStream(&buf, inst); err != nil {
		t.Fatalf("WriteStream: %v", err)
	}
	back, err := ReadStream(&buf, g)
	if err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	if len(back.Requests) != len(inst.Requests) || len(back.Workers) != len(inst.Workers) {
		t.Fatal("stream round trip lost records")
	}
}

func TestReadTripCSVNumericTimes(t *testing.T) {
	g, proj := fixtureGraph(t)
	oracle := shortest.NewBiDijkstra(g)
	csvData := "120.5,104.0001,30.6001,104.0149,30.6001,2\n" +
		"100,104.0051,30.6044,104.0101,30.6134,1\n"
	cfg := DefaultTripConfig(proj)
	inst, stats, err := ReadTripCSV(strings.NewReader(csvData), g, oracle.Dist, cfg)
	if err != nil {
		t.Fatalf("ReadTripCSV: %v", err)
	}
	if stats.Trips != 2 {
		t.Fatalf("trips = %d, want 2", stats.Trips)
	}
	if inst.Requests[0].Release != 20.5 || inst.Requests[1].Release != 0 {
		t.Fatalf("releases = %v, %v; want 20.5, 0",
			inst.Requests[0].Release, inst.Requests[1].Release)
	}
	// NumWorkers unset: one worker per 10 trips, minimum 1.
	if len(inst.Workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(inst.Workers))
	}
}

func TestReadTripCSVMaxTrips(t *testing.T) {
	g, proj := fixtureGraph(t)
	oracle := shortest.NewBiDijkstra(g)
	f, err := os.Open(filepath.Join("testdata", "trips.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg := DefaultTripConfig(proj)
	cfg.MaxTrips = 3
	inst, stats, err := ReadTripCSV(f, g, oracle.Dist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Trips != 3 || len(inst.Requests) != 3 {
		t.Fatalf("trips = %d/%d, want 3", stats.Trips, len(inst.Requests))
	}
}

// TestReadTripCSVUnreachableTrips loads the fixture with all components
// kept and feeds a trip whose endpoints match different components: it
// must be skipped (a +Inf penalty would otherwise poison the stream).
func TestReadTripCSVUnreachableTrips(t *testing.T) {
	open := func(name string) *os.File {
		f, err := os.Open(filepath.Join("..", "roadnet", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}
	opts := roadnet.DefaultDIMACSOptions()
	opts.KeepAllComponents = true
	g, stats, err := roadnet.LoadDIMACS(open("sample.gr"), open("sample.co"), opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := shortest.NewBiDijkstra(g)
	// Trip 1: inside the grid (usable). Trip 2: grid → detached pair.
	csvData := "0,104.0001,30.6001,104.0149,30.6001,1\n" +
		"10,104.0001,30.6001,104.050000,30.650000,1\n"
	inst, tstats, err := ReadTripCSV(strings.NewReader(csvData), g, oracle.Dist, DefaultTripConfig(stats.Proj))
	if err != nil {
		t.Fatal(err)
	}
	if tstats.Trips != 1 || tstats.SkippedUnreachable != 1 {
		t.Fatalf("stats = %+v, want 1 trip / 1 unreachable", tstats)
	}
	// Everything accepted must serialize and load back.
	var buf bytes.Buffer
	if err := WriteStream(&buf, inst); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStream(&buf, g); err != nil {
		t.Fatalf("round trip of accepted trips failed: %v", err)
	}
}

func TestReadTripCSVErrors(t *testing.T) {
	g, proj := fixtureGraph(t)
	oracle := shortest.NewBiDijkstra(g)
	cases := []struct {
		name string
		csv  string
		cfg  func(TripConfig) TripConfig
	}{
		{"empty", "", func(c TripConfig) TripConfig { return c }},
		{"header only", "a,b,c,d,e,f\n", func(c TripConfig) TripConfig { return c }},
		{"all unmatched", "0,50.0,10.0,51.0,11.0,1\n", func(c TripConfig) TripConfig { return c }},
		{"missing columns config", "0,104.0,30.6,104.01,30.6,1\n", func(c TripConfig) TripConfig {
			c.PickupLonCol = -1
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadTripCSV(strings.NewReader(tc.csv), g, oracle.Dist, tc.cfg(DefaultTripConfig(proj)))
			if err == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}

// TestVertexMatcherExact cross-checks the grid-based matcher against the
// linear-scan NearestVertex on random probes.
func TestVertexMatcherExact(t *testing.T) {
	g, _ := fixtureGraph(t)
	m, err := newVertexMatcher(g)
	if err != nil {
		t.Fatal(err)
	}
	b := g.Bounds()
	for i := 0; i < 200; i++ {
		p := geo.Point{
			X: b.Min.X + b.Width()*float64(i%20)/19,
			Y: b.Min.Y + b.Height()*float64(i/20)/9,
		}
		got, _, ok := m.match(p, 1e9)
		if !ok {
			t.Fatalf("no match for %v", p)
		}
		want := g.NearestVertex(p)
		if p.DistSq(g.Point(got)) != p.DistSq(g.Point(want)) {
			t.Fatalf("matcher returned %d (d=%v), nearest is %d (d=%v)",
				got, p.Dist(g.Point(got)), want, p.Dist(g.Point(want)))
		}
	}
}
