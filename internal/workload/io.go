package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/roadnet"
)

// The stream format is line-oriented, mirroring the shape of the paper's
// trip records (pickup, drop-off, release time) plus the URPSM fields:
//
//	urpsm-workload 1
//	w <numWorkers>
//	<loc> <capacity>                                  (numWorkers lines)
//	r <numRequests>
//	<origin> <dest> <release> <deadline> <penalty> <capacity>
//
// It lets cmd/netgen and cmd/urpsm-import persist workloads (synthetic or
// map-matched from real trip records, trips.go) so experiments replay
// identical inputs. The full specification lives in FORMATS.md §1.

const workloadHeader = "urpsm-workload 1"

// WriteStream serializes the instance's workers and requests.
func WriteStream(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, workloadHeader)
	fmt.Fprintf(bw, "w %d\n", len(inst.Workers))
	for _, wk := range inst.Workers {
		fmt.Fprintf(bw, "%d %d\n", wk.Route.Loc, wk.Capacity)
	}
	fmt.Fprintf(bw, "r %d\n", len(inst.Requests))
	for _, r := range inst.Requests {
		fmt.Fprintf(bw, "%d %d %.3f %.3f %.3f %d\n",
			r.Origin, r.Dest, r.Release, r.Deadline, r.Penalty, r.Capacity)
	}
	return bw.Flush()
}

// ReadStream parses a workload previously produced by WriteStream and
// attaches it to graph g (validating vertex ranges).
func ReadStream(rd io.Reader, g *roadnet.Graph) (*Instance, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := func() (string, error) {
		for sc.Scan() {
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	hdr, err := line()
	if err != nil {
		return nil, err
	}
	if hdr != workloadHeader {
		return nil, fmt.Errorf("workload: bad header %q", hdr)
	}

	wline, err := line()
	if err != nil {
		return nil, err
	}
	var nw int
	if _, err := fmt.Sscanf(wline, "w %d", &nw); err != nil || nw < 0 {
		return nil, fmt.Errorf("workload: bad worker count %q", wline)
	}
	nv := int64(g.NumVertices())
	inst := &Instance{Graph: g}
	for i := 0; i < nw; i++ {
		s, err := line()
		if err != nil {
			return nil, fmt.Errorf("workload: worker %d: %w", i, err)
		}
		f := strings.Fields(s)
		if len(f) != 2 {
			return nil, fmt.Errorf("workload: worker %d: bad line %q", i, s)
		}
		loc, err1 := strconv.ParseInt(f[0], 10, 32)
		cap64, err2 := strconv.ParseInt(f[1], 10, 32)
		if err1 != nil || err2 != nil || loc < 0 || loc >= nv || cap64 < 1 {
			return nil, fmt.Errorf("workload: worker %d: bad fields %q", i, s)
		}
		inst.Workers = append(inst.Workers, &core.Worker{
			ID:       core.WorkerID(i),
			Capacity: int(cap64),
			Route:    core.Route{Loc: roadnet.VertexID(loc)},
		})
	}

	rline, err := line()
	if err != nil {
		return nil, err
	}
	var nr int
	if _, err := fmt.Sscanf(rline, "r %d", &nr); err != nil || nr < 0 {
		return nil, fmt.Errorf("workload: bad request count %q", rline)
	}
	for i := 0; i < nr; i++ {
		s, err := line()
		if err != nil {
			return nil, fmt.Errorf("workload: request %d: %w", i, err)
		}
		f := strings.Fields(s)
		if len(f) != 6 {
			return nil, fmt.Errorf("workload: request %d: bad line %q", i, s)
		}
		o, err1 := strconv.ParseInt(f[0], 10, 32)
		d, err2 := strconv.ParseInt(f[1], 10, 32)
		tr, err3 := strconv.ParseFloat(f[2], 64)
		er, err4 := strconv.ParseFloat(f[3], 64)
		pr, err5 := strconv.ParseFloat(f[4], 64)
		kr, err6 := strconv.ParseInt(f[5], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil ||
			math.IsNaN(tr) || math.IsInf(tr, 0) || math.IsNaN(er) || math.IsInf(er, 0) ||
			math.IsNaN(pr) || math.IsInf(pr, 0) {
			return nil, fmt.Errorf("workload: request %d: bad fields %q", i, s)
		}
		if o < 0 || o >= nv || d < 0 || d >= nv {
			return nil, fmt.Errorf("workload: request %d: vertex out of range", i)
		}
		req := &core.Request{
			ID:       core.RequestID(i),
			Origin:   roadnet.VertexID(o),
			Dest:     roadnet.VertexID(d),
			Release:  tr,
			Deadline: er,
			Penalty:  pr,
			Capacity: int(kr),
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("workload: request %d: %w", i, err)
		}
		inst.Requests = append(inst.Requests, req)
	}
	return inst, nil
}
