package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/spatial"
)

// This file adapts real trip-record streams (the shape of the paper's Didi
// GAIA and NYC TLC datasets: a CSV row per trip with pickup/drop-off
// coordinates, a request time and a passenger count) onto an imported road
// network. Coordinates are projected into the graph's planar frame and
// map-matched to the nearest road vertex through a spatial.Grid vertex
// index; the result is a regular Instance that WriteStream can persist as a
// `urpsm-workload 1` stream (FORMATS.md §1).

// TripConfig controls ReadTripCSV. Column indices are 0-based; set an
// optional column to -1 to disable it. The zero value is not useful — start
// from DefaultTripConfig.
type TripConfig struct {
	// Proj maps the CSV's (lat, lon) coordinates into the graph's planar
	// frame; use the projection returned by roadnet.LoadDIMACS for the
	// graph being matched against.
	Proj geo.Projection

	// TimeCol is the request/pickup time column: either seconds (float) or
	// a "2006-01-02 15:04:05" / RFC 3339 timestamp. Release times are
	// normalized so the earliest trip starts at 0.
	TimeCol int
	// PickupLonCol/PickupLatCol locate the pickup coordinate columns.
	PickupLonCol, PickupLatCol int
	// DropoffLonCol/DropoffLatCol locate the drop-off coordinate columns.
	DropoffLonCol, DropoffLatCol int
	// PassengerCol is the passenger-count column for K_r, clamped into
	// [1, 6] like the paper's NYC distribution; -1 makes every K_r = 1.
	PassengerCol int

	// MaxMatchMeters drops trips whose pickup or drop-off lies farther than
	// this from every road vertex (0 = 500).
	MaxMatchMeters float64
	// DeadlineSec sets e_r = t_r + DeadlineSec (0 = 600, the paper's 10min).
	DeadlineSec float64
	// PenaltyFactor sets p_r = PenaltyFactor · dis(o_r, d_r) (0 = 10).
	PenaltyFactor float64
	// MaxTrips stops after this many accepted trips (0 = all).
	MaxTrips int

	// NumWorkers synthesizes this many workers at uniformly random vertices
	// (trip records carry no fleet; 0 = one worker per 10 trips, min 1).
	NumWorkers int
	// WorkerCapacityMean draws K_w ~ round(N(mean,1)) clamped ≥ 1, the
	// paper's §6.1 fleet model (values < 1 become 4).
	WorkerCapacityMean float64
	// Seed drives worker placement and capacities.
	Seed int64
}

// DefaultTripConfig returns the column layout of the checked-in sample
// (time, pickup lon/lat, drop-off lon/lat, passengers) and the paper-like
// deadline/penalty defaults, bound to the given projection.
func DefaultTripConfig(proj geo.Projection) TripConfig {
	return TripConfig{
		Proj:    proj,
		TimeCol: 0, PickupLonCol: 1, PickupLatCol: 2,
		DropoffLonCol: 3, DropoffLatCol: 4, PassengerCol: 5,
		MaxMatchMeters: 500, DeadlineSec: 600, PenaltyFactor: 10,
		WorkerCapacityMean: 4,
	}
}

// TripStats reports what ReadTripCSV accepted and why rows were skipped.
type TripStats struct {
	Rows               int // data rows read (excluding a detected header)
	Trips              int // rows converted into requests
	SkippedParse       int // rows with unparseable fields
	SkippedUnmatched   int // rows beyond MaxMatchMeters from the network
	SkippedSameStop    int // rows whose endpoints matched the same vertex
	SkippedUnreachable int // rows whose endpoints lie in different components
	MaxMatchMeters     float64
	// WorstMatchMeters is the largest accepted pickup/drop-off snap
	// distance — a quick map-matching quality check.
	WorstMatchMeters float64
}

// vertexMatcher answers nearest-road-vertex queries through a spatial.Grid
// holding every graph vertex. Within(r) enumerates all vertices inside r,
// so the first non-empty radius of the doubling search already contains the
// exact nearest vertex. It deliberately builds on the concurrent
// spatial.Grid rather than roadnet.VertexLocator: matching is a one-shot
// ingest cost, and the RW-locked index keeps the adapter usable from a
// future concurrent ingest path for the price of a little map overhead.
type vertexMatcher struct {
	grid *spatial.Grid
	cell float64
}

func newVertexMatcher(g *roadnet.Graph) (*vertexMatcher, error) {
	b := g.Bounds()
	area := math.Max(b.Width()*b.Height(), 1)
	cell := math.Max(10, math.Sqrt(area/float64(g.NumVertices()+1))*2)
	grid, err := spatial.NewGrid(b, cell)
	if err != nil {
		return nil, err
	}
	for v := 0; v < g.NumVertices(); v++ {
		grid.Insert(spatial.ItemID(v), g.Point(roadnet.VertexID(v)))
	}
	return &vertexMatcher{grid: grid, cell: cell}, nil
}

// match returns the vertex nearest to p and its distance, or ok=false when
// nothing lies within maxMeters.
func (m *vertexMatcher) match(p geo.Point, maxMeters float64) (roadnet.VertexID, float64, bool) {
	for r := m.cell; ; r *= 2 {
		if r > maxMeters {
			r = maxMeters
		}
		best := roadnet.VertexID(-1)
		bestD := math.Inf(1)
		m.grid.Within(p, r, func(id spatial.ItemID, pos geo.Point) bool {
			if d := p.DistSq(pos); d < bestD {
				bestD = d
				best = roadnet.VertexID(id)
			}
			return true
		})
		if best >= 0 {
			return best, math.Sqrt(bestD), true
		}
		if r >= maxMeters {
			return -1, 0, false
		}
	}
}

// parseTripTime accepts seconds-as-float or common timestamp layouts.
func parseTripTime(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return 0, fmt.Errorf("workload: non-finite time %q", s)
		}
		return v, nil
	}
	for _, layout := range []string{"2006-01-02 15:04:05", time.RFC3339} {
		if ts, err := time.Parse(layout, s); err == nil {
			return float64(ts.Unix()), nil
		}
	}
	return 0, fmt.Errorf("workload: unparseable time %q", s)
}

// ReadTripCSV converts a trip-record CSV into a workload Instance on graph
// g. A header row is detected (its time column does not parse) and
// skipped. The dist oracle prices each request's penalty, exactly as in
// BuildOn. Rows that cannot be parsed, matched within MaxMatchMeters, or
// that collapse onto a single vertex are skipped and counted in the stats —
// real trip data is dirty, and dropping a row is the correct response to
// all three conditions.
func ReadTripCSV(r io.Reader, g *roadnet.Graph, dist core.DistFunc, cfg TripConfig) (*Instance, *TripStats, error) {
	maxCol := cfg.TimeCol
	for _, c := range []int{cfg.PickupLonCol, cfg.PickupLatCol, cfg.DropoffLonCol, cfg.DropoffLatCol, cfg.PassengerCol} {
		if c > maxCol {
			maxCol = c
		}
	}
	if cfg.TimeCol < 0 || cfg.PickupLonCol < 0 || cfg.PickupLatCol < 0 ||
		cfg.DropoffLonCol < 0 || cfg.DropoffLatCol < 0 {
		return nil, nil, fmt.Errorf("workload: trip time and coordinate columns are required")
	}
	if cfg.MaxMatchMeters <= 0 {
		cfg.MaxMatchMeters = 500
	}
	if cfg.DeadlineSec <= 0 {
		cfg.DeadlineSec = 600
	}
	if cfg.PenaltyFactor <= 0 {
		cfg.PenaltyFactor = 10
	}
	if cfg.WorkerCapacityMean < 1 {
		cfg.WorkerCapacityMean = 4
	}

	matcher, err := newVertexMatcher(g)
	if err != nil {
		return nil, nil, err
	}
	stats := &TripStats{MaxMatchMeters: cfg.MaxMatchMeters}

	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row width validated against maxCol below
	cr.TrimLeadingSpace = true

	type trip struct {
		o, d    roadnet.VertexID
		release float64
		dis     float64 // shortest travel time o→d, prices the penalty
		cap     int
	}
	var trips []trip
	minRelease := math.Inf(1)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("workload: trips csv: %w", err)
		}
		if len(rec) <= maxCol {
			if first {
				first = false
				continue // short header line
			}
			stats.Rows++
			stats.SkippedParse++
			continue
		}
		release, terr := parseTripTime(rec[cfg.TimeCol])
		if first {
			first = false
			if terr != nil {
				continue // header row
			}
		}
		stats.Rows++
		plon, err1 := strconv.ParseFloat(rec[cfg.PickupLonCol], 64)
		plat, err2 := strconv.ParseFloat(rec[cfg.PickupLatCol], 64)
		dlon, err3 := strconv.ParseFloat(rec[cfg.DropoffLonCol], 64)
		dlat, err4 := strconv.ParseFloat(rec[cfg.DropoffLatCol], 64)
		if terr != nil || err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			stats.SkippedParse++
			continue
		}
		kr := 1
		if cfg.PassengerCol >= 0 {
			v, err := strconv.Atoi(rec[cfg.PassengerCol])
			if err != nil {
				stats.SkippedParse++
				continue
			}
			kr = min(max(v, 1), len(NYCCapacityDist))
		}
		o, od, okO := matcher.match(cfg.Proj.Point(plat, plon), cfg.MaxMatchMeters)
		d, dd, okD := matcher.match(cfg.Proj.Point(dlat, dlon), cfg.MaxMatchMeters)
		if !okO || !okD {
			stats.SkippedUnmatched++
			continue
		}
		if o == d {
			stats.SkippedSameStop++
			continue
		}
		// A trip across components (possible with KeepAllComponents imports)
		// has no finite shortest distance: no penalty can be priced and no
		// worker could ever serve it, so it is dropped like an unmatched row.
		dis := dist(o, d)
		if math.IsInf(dis, 0) || math.IsNaN(dis) {
			stats.SkippedUnreachable++
			continue
		}
		stats.WorstMatchMeters = math.Max(stats.WorstMatchMeters, math.Max(od, dd))
		trips = append(trips, trip{o: o, d: d, release: release, dis: dis, cap: kr})
		minRelease = math.Min(minRelease, release)
		stats.Trips++
		if cfg.MaxTrips > 0 && stats.Trips >= cfg.MaxTrips {
			break
		}
	}
	if len(trips) == 0 {
		return nil, nil, fmt.Errorf("workload: no usable trips (rows=%d, parse=%d, unmatched=%d, unreachable=%d)",
			stats.Rows, stats.SkippedParse, stats.SkippedUnmatched, stats.SkippedUnreachable)
	}

	inst := &Instance{Graph: g}
	for i, tr := range trips {
		req := &core.Request{
			ID:       core.RequestID(i),
			Origin:   tr.o,
			Dest:     tr.d,
			Release:  tr.release - minRelease,
			Deadline: tr.release - minRelease + cfg.DeadlineSec,
			Penalty:  cfg.PenaltyFactor * tr.dis,
			Capacity: tr.cap,
		}
		if err := req.Validate(); err != nil {
			return nil, nil, fmt.Errorf("workload: trip %d: %w", i, err)
		}
		inst.Requests = append(inst.Requests, req)
	}

	nw := cfg.NumWorkers
	if nw <= 0 {
		nw = max(1, len(trips)/10)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < nw; i++ {
		kw := int(math.Round(cfg.WorkerCapacityMean + rng.NormFloat64()))
		if kw < 1 {
			kw = 1
		}
		inst.Workers = append(inst.Workers, &core.Worker{
			ID:       core.WorkerID(i),
			Capacity: kw,
			Route:    core.Route{Loc: roadnet.VertexID(rng.Intn(g.NumVertices()))},
		})
	}
	return inst, stats, nil
}
