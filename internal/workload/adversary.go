package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/roadnet"
)

// AdversaryVariant selects which hardness construction of §3.3 to build.
type AdversaryVariant int

const (
	// AdvServedCount is Lemma 1 (α = 0, p_r = 1): maximize served count.
	AdvServedCount AdversaryVariant = iota
	// AdvRevenue is Lemma 2 (α = c_w, p_r = c_r·dis): maximize revenue.
	AdvRevenue
	// AdvDistance is Lemma 3 (α = 1, p_r = ∞ modeled as a huge penalty):
	// minimize distance while serving all requests.
	AdvDistance
)

// String names the variant.
func (v AdversaryVariant) String() string {
	switch v {
	case AdvServedCount:
		return "served-count"
	case AdvRevenue:
		return "revenue"
	case AdvDistance:
		return "distance"
	default:
		return "unknown"
	}
}

// AdversarialInstance is one draw from the lower-bound distribution χ of
// the competitive-hardness proofs: an undirected cycle of nVertices unit
// edges, a single worker of capacity 2 at vertex 0, and one request
// released at time |V| whose origin is uniform over the vertices. An
// omniscient (offline) algorithm always serves the request with minimal
// cost; any online algorithm fails with probability → 1 as |V| grows,
// which is exactly the unbounded-ratio phenomenon of Theorem 1.
type AdversarialInstance struct {
	Variant AdversaryVariant
	Graph   *roadnet.Graph
	Worker  *core.Worker
	Request *core.Request
	// OptCost is the offline optimum's unified cost: the adversary-aware
	// solution moves the worker to o_r during [0, |V|] and serves it.
	OptCost float64
	// Epsilon is the deadline slack ε of the construction.
	Epsilon float64
}

// NewAdversarialInstance draws one instance. nVertices must be ≥ 4 and
// even, matching the proof's setup.
func NewAdversarialInstance(v AdversaryVariant, nVertices int, seed int64) (*AdversarialInstance, error) {
	if nVertices < 4 || nVertices%2 != 0 {
		return nil, fmt.Errorf("workload: adversary needs an even |V| ≥ 4, got %d", nVertices)
	}
	g, err := roadnet.CycleGraph(nVertices)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	const eps = 0.5 // ε: less than one unit edge, so only exact position serves

	origin := roadnet.VertexID(rng.Intn(nVertices))
	release := float64(nVertices)
	req := &core.Request{
		ID:       0,
		Origin:   origin,
		Dest:     origin, // Lemma 1/3: d_r = o_r
		Release:  release,
		Deadline: release + eps,
		Penalty:  1, // Lemma 1's p_r = K_r = 1
		Capacity: 1,
	}
	opt := 0.0 // serving a zero-length trip from o_r costs nothing extra

	switch v {
	case AdvRevenue:
		// Lemma 2: d_r at cycle distance |V|/2, c_r > 2·c_w with c_w = 1.
		req.Dest = roadnet.VertexID((int(origin) + nVertices/2) % nVertices)
		cr := 3.0
		req.Penalty = cr * float64(nVertices/2)
		req.Deadline = release + float64(nVertices/2) + eps
		// Offline: drive ≤ |V|/2 to o_r in time, then |V|/2 to d_r.
		opt = float64(nVertices)
	case AdvDistance:
		// Lemma 3: p_r = ∞; any rejection blows the objective up.
		req.Penalty = 1e18
	}

	w := &core.Worker{ID: 0, Capacity: 2, Route: core.Route{Loc: 0}}
	return &AdversarialInstance{
		Variant: v, Graph: g, Worker: w, Request: req,
		OptCost: opt, Epsilon: eps,
	}, nil
}
