package workload

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/roadnet"
	"repro/internal/shortest"
)

func smallParams() Params {
	p := ChengduLike(0.02)
	p.Net.Rows, p.Net.Cols = 20, 20
	return p
}

func buildSmall(t *testing.T) *Instance {
	t.Helper()
	p := smallParams()
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		t.Fatal(err)
	}
	d := shortest.NewBiDijkstra(g)
	inst, err := BuildOn(p, g, d.Dist)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBuildBasicShape(t *testing.T) {
	inst := buildSmall(t)
	p := inst.Params
	if len(inst.Requests) < p.NumRequests*9/10 {
		t.Fatalf("too few requests: %d of %d", len(inst.Requests), p.NumRequests)
	}
	if len(inst.Workers) != p.NumWorkers {
		t.Fatalf("workers=%d want %d", len(inst.Workers), p.NumWorkers)
	}
	n := inst.Graph.NumVertices()
	for _, r := range inst.Requests {
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if int(r.Origin) >= n || int(r.Dest) >= n || r.Origin == r.Dest {
			t.Fatalf("bad endpoints: %d %d", r.Origin, r.Dest)
		}
		if r.Release < 0 || r.Release >= p.DurationSec {
			t.Fatalf("release %v outside horizon", r.Release)
		}
		if math.Abs(r.Deadline-r.Release-p.DeadlineSec) > 1e-9 {
			t.Fatalf("deadline not release+param")
		}
		if r.Capacity < 1 || r.Capacity > len(NYCCapacityDist) {
			t.Fatalf("capacity %d out of range", r.Capacity)
		}
		if r.Penalty <= 0 {
			t.Fatalf("penalty %v not positive", r.Penalty)
		}
	}
	for i, w := range inst.Workers {
		if int(w.ID) != i {
			t.Fatal("worker IDs must be dense")
		}
		if w.Capacity < 1 {
			t.Fatalf("worker capacity %d", w.Capacity)
		}
		if int(w.Route.Loc) >= n {
			t.Fatal("worker location out of range")
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := buildSmall(t)
	b := buildSmall(t)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("same seed, different request count")
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.Origin != rb.Origin || ra.Dest != rb.Dest || ra.Release != rb.Release {
			t.Fatalf("request %d differs between identical builds", i)
		}
	}
}

func TestPenaltyProportionalToDistance(t *testing.T) {
	inst := buildSmall(t)
	d := shortest.NewBiDijkstra(inst.Graph)
	for _, r := range inst.Requests[:50] {
		want := inst.Params.PenaltyFactor * d.Dist(r.Origin, r.Dest)
		if math.Abs(r.Penalty-want) > 1e-6*(1+want) {
			t.Fatalf("penalty %v want %v", r.Penalty, want)
		}
	}
}

func TestCapacityDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, len(NYCCapacityDist)+1)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[sampleCapacity(rng)]++
	}
	for k := 1; k <= len(NYCCapacityDist); k++ {
		got := float64(counts[k]) / n
		want := NYCCapacityDist[k-1]
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("P(K=%d)=%v want %v", k, got, want)
		}
	}
}

func TestScalePreset(t *testing.T) {
	full := NYCLike(1)
	small := NYCLike(0.1)
	if small.NumRequests >= full.NumRequests || small.NumWorkers >= full.NumWorkers {
		t.Fatal("scaling did not shrink workload")
	}
	if small.Net.Rows >= full.Net.Rows {
		t.Fatal("scaling did not shrink network")
	}
	// Request/worker ratio approximately preserved.
	fr := float64(full.NumRequests) / float64(full.NumWorkers)
	sr := float64(small.NumRequests) / float64(small.NumWorkers)
	if sr < fr/2 || sr > fr*2 {
		t.Fatalf("ratio drifted: %v vs %v", sr, fr)
	}
	// Invalid scales fall back to 1.
	if NYCLike(-3).NumRequests != full.NumRequests {
		t.Fatal("negative scale not handled")
	}
}

func TestParamsValidate(t *testing.T) {
	ok := smallParams()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	mut := func(f func(*Params)) Params {
		p := smallParams()
		f(&p)
		return p
	}
	bad := []Params{
		mut(func(p *Params) { p.NumRequests = -1 }),
		mut(func(p *Params) { p.NumWorkers = -1 }),
		mut(func(p *Params) { p.DurationSec = 0 }),
		mut(func(p *Params) { p.DeadlineSec = 0 }),
		mut(func(p *Params) { p.PenaltyFactor = -1 }),
		mut(func(p *Params) { p.CapacityMean = 0 }),
		mut(func(p *Params) { p.HotspotWeight = 1.5 }),
		mut(func(p *Params) { p.Net.Rows = 0 }),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestRushHourShape(t *testing.T) {
	p := smallParams()
	p.RushHours = true
	rng := rand.New(rand.NewSource(2))
	// Count arrivals near the two peaks vs the middle trough.
	peak, trough := 0, 0
	const n = 20000
	w := p.DurationSec / 10
	for i := 0; i < n; i++ {
		tr := sampleArrival(rng, p)
		if tr < 0 || tr >= p.DurationSec {
			t.Fatalf("arrival %v outside horizon", tr)
		}
		if math.Abs(tr-p.DurationSec/4) < w/2 || math.Abs(tr-3*p.DurationSec/4) < w/2 {
			peak++
		}
		if math.Abs(tr-p.DurationSec/2) < w/2 {
			trough++
		}
	}
	if peak <= trough {
		t.Fatalf("rush hours missing: peak=%d trough=%d", peak, trough)
	}
}

func TestAdversarialInstance(t *testing.T) {
	for _, v := range []AdversaryVariant{AdvServedCount, AdvRevenue, AdvDistance} {
		inst, err := NewAdversarialInstance(v, 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		if inst.Graph.NumVertices() != 16 {
			t.Fatal("wrong cycle size")
		}
		if inst.Worker.Capacity != 2 || inst.Worker.Route.Loc != 0 {
			t.Fatal("worker setup wrong")
		}
		r := inst.Request
		if r.Release != 16 {
			t.Fatalf("release=%v want |V|", r.Release)
		}
		if v == AdvRevenue {
			d := shortest.NewDijkstra(inst.Graph)
			if got := d.Dist(r.Origin, r.Dest); math.Abs(got-8) > 1e-9 {
				t.Fatalf("revenue variant trip length=%v want |V|/2", got)
			}
		} else if r.Origin != r.Dest {
			t.Fatal("o_r must equal d_r")
		}
		if v.String() == "unknown" {
			t.Fatal("variant string")
		}
	}
	if _, err := NewAdversarialInstance(AdvServedCount, 7, 1); err == nil {
		t.Fatal("odd |V| accepted")
	}
	if _, err := NewAdversarialInstance(AdvServedCount, 2, 1); err == nil {
		t.Fatal("tiny |V| accepted")
	}
}

// TestAdversaryOriginUniform draws many instances and checks the origin is
// spread over the cycle (the construction's key property).
func TestAdversaryOriginUniform(t *testing.T) {
	const nV = 10
	seen := map[roadnet.VertexID]int{}
	for s := int64(0); s < 400; s++ {
		inst, err := NewAdversarialInstance(AdvServedCount, nV, s)
		if err != nil {
			t.Fatal(err)
		}
		seen[inst.Request.Origin]++
	}
	for v := roadnet.VertexID(0); v < nV; v++ {
		if seen[v] == 0 {
			t.Fatalf("origin never hit vertex %d", v)
		}
	}
}
