// Package workload generates the simulation inputs of the paper's §6: a
// city road network, a fleet of workers and a stream of dynamically
// arriving requests. The real datasets (Didi GAIA Chengdu 2016-11-18 and
// NYC TLC 2016-04-09) are not available offline, so presets synthesize
// streams with the properties the algorithms are sensitive to: hotspot
// origin/destination mixtures, rush-hour arrival intensity, the NYC
// passenger-count distribution for K_r (which the paper itself reuses for
// Chengdu), Gaussian worker capacities, and penalties proportional to the
// trip's shortest distance. See DESIGN.md §4 for the substitution
// rationale.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/roadnet"
)

// Params fully describes a workload.
type Params struct {
	Name string
	Net  roadnet.GenConfig

	NumRequests   int
	NumWorkers    int
	DurationSec   float64 // request arrivals span [0, DurationSec)
	DeadlineSec   float64 // e_r = t_r + DeadlineSec (paper Table 5: 5..25 min)
	PenaltyFactor float64 // p_r = PenaltyFactor · dis(o_r, d_r)
	CapacityMean  float64 // K_w ~ round(N(mean,1)), clamped ≥ 1 (paper §6.1)

	Hotspots      int     // number of demand hotspots
	HotspotSigma  float64 // hotspot spread in meters
	HotspotWeight float64 // fraction of endpoints drawn from hotspots
	RushHours     bool    // overlay two rush-hour intensity peaks
	Seed          int64
}

// Validate reports the first invalid field.
func (p Params) Validate() error {
	switch {
	case p.NumRequests < 0:
		return fmt.Errorf("workload: negative request count")
	case p.NumWorkers < 0:
		return fmt.Errorf("workload: negative worker count")
	case p.DurationSec <= 0:
		return fmt.Errorf("workload: duration must be positive")
	case p.DeadlineSec <= 0:
		return fmt.Errorf("workload: deadline must be positive")
	case p.PenaltyFactor < 0:
		return fmt.Errorf("workload: negative penalty factor")
	case p.CapacityMean < 1:
		return fmt.Errorf("workload: capacity mean below 1")
	case p.HotspotWeight < 0 || p.HotspotWeight > 1:
		return fmt.Errorf("workload: hotspot weight outside [0,1]")
	}
	return p.Net.Validate()
}

// NYCCapacityDist is the request-capacity (passenger count) distribution
// of the NYC TLC data, which the paper uses for both datasets. Index i
// holds P(K_r = i+1).
var NYCCapacityDist = []float64{0.70, 0.15, 0.05, 0.04, 0.03, 0.03}

// sampleCapacity draws K_r from NYCCapacityDist.
func sampleCapacity(rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range NYCCapacityDist {
		acc += p
		if u < acc {
			return i + 1
		}
	}
	return len(NYCCapacityDist)
}

// NYCLike returns a preset shaped after the NYC experiment, shrunk by
// scale ∈ (0, 1]: scale = 1 is the largest configuration meant for this
// repository (≈26k vertices, 30k requests, 1.5k workers), not the paper's
// full 807k-vertex dataset.
func NYCLike(scale float64) Params {
	return scalePreset(Params{
		Name: "NYC",
		Net: roadnet.GenConfig{
			Rows: 160, Cols: 160, Spacing: 130, Jitter: 0.25,
			ArterialEvery: 8, MotorwayRing: true, RemoveFrac: 0.10,
			DetourMin: 1.05, DetourMax: 1.35, Seed: 4009,
		},
		NumRequests:   30000,
		NumWorkers:    1500,
		DurationSec:   6 * 3600,
		DeadlineSec:   10 * 60,
		PenaltyFactor: 10,
		CapacityMean:  4,
		Hotspots:      12,
		HotspotSigma:  900,
		HotspotWeight: 0.75,
		RushHours:     true,
		Seed:          409,
	}, scale)
}

// ChengduLike returns the Chengdu-shaped preset (smaller network, denser
// demand relative to fleet, lower penalties — paper Table 5).
func ChengduLike(scale float64) Params {
	return scalePreset(Params{
		Name: "Chengdu",
		Net: roadnet.GenConfig{
			Rows: 110, Cols: 110, Spacing: 150, Jitter: 0.3,
			ArterialEvery: 7, MotorwayRing: true, RemoveFrac: 0.12,
			DetourMin: 1.05, DetourMax: 1.4, Seed: 1118,
		},
		NumRequests:   15000,
		NumWorkers:    600,
		DurationSec:   6 * 3600,
		DeadlineSec:   10 * 60,
		PenaltyFactor: 10,
		CapacityMean:  4,
		Hotspots:      8,
		HotspotSigma:  800,
		HotspotWeight: 0.7,
		RushHours:     true,
		Seed:          1811,
	}, scale)
}

func scalePreset(p Params, scale float64) Params {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	lin := math.Sqrt(scale) // network side scales with sqrt to keep density
	p.Net.Rows = max2(8, int(float64(p.Net.Rows)*lin))
	p.Net.Cols = max2(8, int(float64(p.Net.Cols)*lin))
	p.NumRequests = max2(50, int(float64(p.NumRequests)*scale))
	p.NumWorkers = max2(5, int(float64(p.NumWorkers)*scale))
	return p
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Instance is a fully materialized workload.
type Instance struct {
	Params   Params
	Graph    *roadnet.Graph
	Requests []*core.Request
	Workers  []*core.Worker
}

// Build materializes the workload. The dist oracle is used once per
// request to set the distance-proportional penalty (and nothing else).
func Build(p Params, dist core.DistFunc) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g, err := roadnet.Generate(p.Net)
	if err != nil {
		return nil, err
	}
	return BuildOn(p, g, dist)
}

// BuildOn materializes the workload on an existing graph (so sweeps can
// share one graph and its distance oracle across parameter settings).
func BuildOn(p Params, g *roadnet.Graph, dist core.DistFunc) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	loc := roadnet.NewVertexLocator(g, 0)
	b := g.Bounds()

	hotspots := make([]geo.Point, p.Hotspots)
	for i := range hotspots {
		hotspots[i] = geo.Point{
			X: b.Min.X + rng.Float64()*b.Width(),
			Y: b.Min.Y + rng.Float64()*b.Height(),
		}
	}
	samplePoint := func() geo.Point {
		if len(hotspots) > 0 && rng.Float64() < p.HotspotWeight {
			h := hotspots[rng.Intn(len(hotspots))]
			return geo.Point{
				X: h.X + rng.NormFloat64()*p.HotspotSigma,
				Y: h.Y + rng.NormFloat64()*p.HotspotSigma,
			}
		}
		return geo.Point{
			X: b.Min.X + rng.Float64()*b.Width(),
			Y: b.Min.Y + rng.Float64()*b.Height(),
		}
	}

	reqs := make([]*core.Request, 0, p.NumRequests)
	for i := 0; i < p.NumRequests; i++ {
		o := loc.Nearest(samplePoint())
		d := loc.Nearest(samplePoint())
		for tries := 0; d == o && tries < 8; tries++ {
			d = loc.Nearest(samplePoint())
		}
		if d == o {
			continue
		}
		tr := sampleArrival(rng, p)
		r := &core.Request{
			ID:       core.RequestID(i),
			Origin:   o,
			Dest:     d,
			Release:  tr,
			Deadline: tr + p.DeadlineSec,
			Penalty:  p.PenaltyFactor * dist(o, d),
			Capacity: sampleCapacity(rng),
		}
		reqs = append(reqs, r)
	}

	workers := make([]*core.Worker, p.NumWorkers)
	for i := range workers {
		kw := int(math.Round(p.CapacityMean + rng.NormFloat64()))
		if kw < 1 {
			kw = 1
		}
		workers[i] = &core.Worker{
			ID:       core.WorkerID(i),
			Capacity: kw,
			Route: core.Route{
				Loc: roadnet.VertexID(rng.Intn(g.NumVertices())),
			},
		}
	}
	return &Instance{Params: p, Graph: g, Requests: reqs, Workers: workers}, nil
}

// sampleArrival draws a release time in [0, DurationSec): uniform
// background plus, when RushHours is set, two Gaussian peaks at 1/4 and
// 3/4 of the horizon (morning and evening rush).
func sampleArrival(rng *rand.Rand, p Params) float64 {
	if p.RushHours && rng.Float64() < 0.5 {
		c := p.DurationSec / 4
		if rng.Float64() < 0.5 {
			c = 3 * p.DurationSec / 4
		}
		t := c + rng.NormFloat64()*p.DurationSec/14
		if t >= 0 && t < p.DurationSec {
			return t
		}
	}
	return rng.Float64() * p.DurationSec
}
