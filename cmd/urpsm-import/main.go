// Command urpsm-import converts real road-network and trip-record data
// into the repository's native formats: a DIMACS `.gr`/`.co` pair becomes
// a `urpsm-roadnet 1` network file, and an optional trip CSV is
// map-matched onto the network and written as a `urpsm-workload 1` stream.
// The outputs run directly under urpsm-sim / urpsm-bench. See FORMATS.md
// for all three formats and README.md for a walkthrough.
//
// Usage:
//
//	urpsm-import -gr USA-road-d.NY.gr -co USA-road-d.NY.co -net ny.net
//	urpsm-import -gr city.gr -co city.co -max-nodes 50000 -net city.net \
//	    -trips trips.csv -load city.load -import-workers 200
//	urpsm-import -gr city.gr -co city.co -box "104.0,30.6,104.1,30.7" -net sub.net
//
// The printed summary includes which distance-oracle tier shortest.Auto
// would pick for the imported graph (see DESIGN.md §8.3), so the cost of a
// later simulation run is visible before it starts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/geo"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

func main() {
	var (
		grFile   = flag.String("gr", "", "DIMACS graph file (.gr), required")
		coFile   = flag.String("co", "", "DIMACS coordinate file (.co), required")
		netOut   = flag.String("net", "", "write the imported network here (urpsm-roadnet format), required")
		maxNodes = flag.Int("max-nodes", 0, "keep only DIMACS node IDs 1..N (0 = all)")
		box      = flag.String("box", "", "keep only nodes inside \"minLon,minLat,maxLon,maxLat\" (degrees; meters for planar files)")
		class    = flag.String("class", "arterial", "road class for unannotated edges: motorway|arterial|collector|residential")
		scale    = flag.Float64("scale", 0, "arc weight → meters multiplier (0 = 1, or cm for urpsm planar files)")
		keepAll  = flag.Bool("keep-all-components", false, "skip largest-connected-component extraction")

		trips    = flag.String("trips", "", "also map-match this trip CSV onto the network")
		loadOut  = flag.String("load", "", "write the matched workload here (urpsm-workload format; requires -trips)")
		workers  = flag.Int("import-workers", 0, "workers to synthesize for the trip workload (0 = one per 10 trips)")
		deadline = flag.Float64("deadline", 10, "trip deadline in minutes")
		penalty  = flag.Float64("penalty", 10, "penalty factor over trip shortest distance")
		maxMatch = flag.Float64("max-match", 500, "drop trips farther than this many meters from the network")
		maxTrips = flag.Int("max-trips", 0, "stop after this many accepted trips (0 = all)")
		seed     = flag.Int64("seed", 1, "seed for synthesized workers")
	)
	flag.Parse()
	if err := run(*grFile, *coFile, *netOut, *maxNodes, *box, *class, *scale, *keepAll,
		*trips, *loadOut, *workers, *deadline, *penalty, *maxMatch, *maxTrips, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-import:", err)
		os.Exit(1)
	}
}

// parseClass maps a road-class name to its geo constant.
func parseClass(s string) (geo.RoadClass, error) {
	for c := geo.RoadClass(0); c < geo.NumRoadClasses; c++ {
		if s == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown road class %q", s)
}

// parseBox parses "minLon,minLat,maxLon,maxLat".
func parseBox(s string) (*roadnet.DIMACSBox, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("box needs 4 comma-separated numbers, got %q", s)
	}
	vals := make([]float64, 4)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad box value %q", p)
		}
		vals[i] = v
	}
	if vals[0] >= vals[2] || vals[1] >= vals[3] {
		return nil, fmt.Errorf("empty box %q", s)
	}
	return &roadnet.DIMACSBox{MinLon: vals[0], MinLat: vals[1], MaxLon: vals[2], MaxLat: vals[3]}, nil
}

func run(grFile, coFile, netOut string, maxNodes int, box, class string, scale float64,
	keepAll bool, trips, loadOut string, workers int, deadlineMin, penalty, maxMatch float64,
	maxTrips int, seed int64) error {
	if grFile == "" || coFile == "" {
		return fmt.Errorf("-gr and -co are required")
	}
	if netOut == "" {
		return fmt.Errorf("-net output file is required")
	}
	if (trips == "") != (loadOut == "") {
		return fmt.Errorf("-trips and -load must be given together")
	}

	opts := roadnet.DefaultDIMACSOptions()
	opts.MaxNodes = maxNodes
	opts.ScaleMeters = scale
	opts.KeepAllComponents = keepAll
	var err error
	if opts.Class, err = parseClass(class); err != nil {
		return err
	}
	if box != "" {
		if opts.Box, err = parseBox(box); err != nil {
			return err
		}
	}

	grF, err := os.Open(grFile)
	if err != nil {
		return err
	}
	defer grF.Close()
	coF, err := os.Open(coFile)
	if err != nil {
		return err
	}
	defer coF.Close()
	g, stats, err := roadnet.LoadDIMACS(grF, coF, opts)
	if err != nil {
		return err
	}

	budget := shortest.DefaultAutoBudget()
	fmt.Printf("dimacs: %d nodes, %d arcs declared; kept %d nodes, %d edges (%d components)\n",
		stats.NodesDeclared, stats.ArcsDeclared, stats.NodesKept, stats.EdgesKept, stats.Components)
	fmt.Printf("graph: |V|=%d |E|=%d (self-loops %d, filtered arcs %d, clamped to Euclid %d)\n",
		g.NumVertices(), g.NumEdges(), stats.SelfLoops, stats.DroppedArcs, stats.Clamped)
	if stats.Proj.Planar {
		fmt.Println("coordinates: planar (urpsm DIMACS export)")
	} else {
		fmt.Printf("coordinates: geographic, projected around lat %.4f lon %.4f\n",
			stats.Proj.Lat0, stats.Proj.Lon0)
	}
	fmt.Printf("oracle tier (auto): %s\n", budget.Choose(g.NumVertices()))

	nf, err := os.Create(netOut)
	if err != nil {
		return err
	}
	defer nf.Close()
	if err := roadnet.Write(nf, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", netOut)

	if trips == "" {
		return nil
	}
	oracle, kind := shortest.Auto(g, budget)
	// Popular pickup/drop-off spots snap to the same vertex pairs; the
	// cache keeps penalty pricing cheap even on the bidijkstra tier.
	cached := shortest.NewCached(oracle, 1<<16)
	cfg := workload.DefaultTripConfig(stats.Proj)
	cfg.NumWorkers = workers
	cfg.DeadlineSec = deadlineMin * 60
	cfg.PenaltyFactor = penalty
	cfg.MaxMatchMeters = maxMatch
	cfg.MaxTrips = maxTrips
	cfg.Seed = seed

	tf, err := os.Open(trips)
	if err != nil {
		return err
	}
	defer tf.Close()
	inst, tstats, err := workload.ReadTripCSV(tf, g, cached.Dist, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("trips: %d rows → %d requests (parse %d, unmatched %d, same-stop %d, unreachable %d skipped; worst snap %.0fm; penalties via %s oracle)\n",
		tstats.Rows, tstats.Trips, tstats.SkippedParse, tstats.SkippedUnmatched,
		tstats.SkippedSameStop, tstats.SkippedUnreachable, tstats.WorstMatchMeters, kind)

	lf, err := os.Create(loadOut)
	if err != nil {
		return err
	}
	defer lf.Close()
	if err := workload.WriteStream(lf, inst); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workers, %d requests)\n", loadOut, len(inst.Workers), len(inst.Requests))
	return nil
}
