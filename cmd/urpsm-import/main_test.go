package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expt"
	"repro/internal/roadnet"
	"repro/internal/shortest"
	"repro/internal/workload"
)

// TestImportEndToEnd drives the full acceptance path: the checked-in DIMACS
// fixture plus a sample trip CSV are converted into network and workload
// files, loaded back, and simulated to completion with the scale-aware
// oracle, which must resolve to the documented tier for a graph this size.
func TestImportEndToEnd(t *testing.T) {
	dir := t.TempDir()
	netOut := filepath.Join(dir, "city.net")
	loadOut := filepath.Join(dir, "city.load")

	err := run(
		filepath.Join("testdata", "sample.gr"),
		filepath.Join("testdata", "sample.co"),
		netOut,
		0, "", "arterial", 0, false,
		filepath.Join("testdata", "trips.csv"),
		loadOut,
		4,   // workers
		10,  // deadline minutes
		10,  // penalty factor
		500, // max match meters
		0,   // max trips
		1,   // seed
	)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	nf, err := os.Open(netOut)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	g, err := roadnet.Read(nf)
	if err != nil {
		t.Fatalf("read network: %v", err)
	}
	if g.NumVertices() != 16 || g.NumEdges() != 24 {
		t.Fatalf("imported graph |V|=%d |E|=%d, want 16/24", g.NumVertices(), g.NumEdges())
	}

	lf, err := os.Open(loadOut)
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	inst, err := workload.ReadStream(lf, g)
	if err != nil {
		t.Fatalf("read workload: %v", err)
	}
	if len(inst.Requests) != 10 || len(inst.Workers) != 4 {
		t.Fatalf("workload %d requests / %d workers, want 10/4", len(inst.Requests), len(inst.Workers))
	}

	// The documented budget sends a 16-vertex graph to the hub tier.
	if kind := shortest.DefaultAutoBudget().Choose(g.NumVertices()); kind != shortest.AutoHub {
		t.Fatalf("auto tier = %q, want %q", kind, shortest.AutoHub)
	}

	runner := expt.NewRunnerOn(g, workload.Params{Name: "import-test"}, 1)
	runner.OracleKind = "auto"
	desc, err := runner.OracleDescription()
	if err != nil {
		t.Fatal(err)
	}
	if want := "auto→hub"; len(desc) < len(want) || desc[:len(want)] != want {
		t.Fatalf("oracle description %q, want %q prefix", desc, want)
	}
	m, err := runner.RunInstance(inst, "pruneGreedyDP")
	if err != nil {
		t.Fatalf("RunInstance: %v", err)
	}
	if m.Requests != len(inst.Requests) {
		t.Fatalf("simulated %d requests, want %d", m.Requests, len(inst.Requests))
	}
	if m.Served <= 0 {
		t.Fatalf("no requests served: %+v", m)
	}
	// The run must not mutate the caller's instance: a second run over the
	// same instance starts from the same fleet placement and reproduces
	// the metrics exactly (urpsm-sim -algo all relies on this).
	m2, err := runner.RunInstance(inst, "pruneGreedyDP")
	if err != nil {
		t.Fatalf("RunInstance (second): %v", err)
	}
	if m2.Served != m.Served || m2.UnifiedCost != m.UnifiedCost {
		t.Fatalf("second run diverged: served %d/%d, unified cost %v/%v",
			m2.Served, m.Served, m2.UnifiedCost, m.UnifiedCost)
	}
	for _, w := range inst.Workers {
		if len(w.Route.Stops) != 0 || w.Traveled != 0 {
			t.Fatalf("caller's worker %d mutated by RunInstance: %+v", w.ID, w)
		}
	}
}

// TestImportSubsetFlags exercises -max-nodes and -box through run.
func TestImportSubsetFlags(t *testing.T) {
	dir := t.TempDir()
	netOut := filepath.Join(dir, "sub.net")
	if err := run(
		filepath.Join("testdata", "sample.gr"),
		filepath.Join("testdata", "sample.co"),
		netOut,
		8, "", "residential", 0, false,
		"", "", 0, 10, 10, 500, 0, 1,
	); err != nil {
		t.Fatalf("run: %v", err)
	}
	nf, err := os.Open(netOut)
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	g, err := roadnet.Read(nf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 || g.NumEdges() != 10 {
		t.Fatalf("subset |V|=%d |E|=%d, want 8/10", g.NumVertices(), g.NumEdges())
	}
}

func TestImportFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing inputs", func() error {
			return run("", "", "x.net", 0, "", "arterial", 0, false, "", "", 0, 10, 10, 500, 0, 1)
		}},
		{"missing net", func() error {
			return run("a.gr", "a.co", "", 0, "", "arterial", 0, false, "", "", 0, 10, 10, 500, 0, 1)
		}},
		{"trips without load", func() error {
			return run("testdata/sample.gr", "testdata/sample.co", "x.net",
				0, "", "arterial", 0, false, "t.csv", "", 0, 10, 10, 500, 0, 1)
		}},
		{"bad class", func() error {
			return run("testdata/sample.gr", "testdata/sample.co", "x.net",
				0, "", "autobahn", 0, false, "", "", 0, 10, 10, 500, 0, 1)
		}},
		{"bad box", func() error {
			return run("testdata/sample.gr", "testdata/sample.co", "x.net",
				0, "1,2,3", "arterial", 0, false, "", "", 0, 10, 10, 500, 0, 1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.fn() == nil {
				t.Fatal("want error, got nil")
			}
		})
	}
}
