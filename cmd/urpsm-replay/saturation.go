package main

// Open-loop saturation mode (-rate): instead of replaying the trace on
// its own schedule, the client generates a synthetic arrival process at
// a fixed offered load and sweeps a list of rates to locate the
// server's throughput knee. Open loop means arrivals never wait for
// completions — exactly the regime where an unbounded queue melts down
// and bounded admission (urpsm-serve -max-queue) starts shedding — so
// the curve exposes offered load vs goodput, shed rate and latency
// percentiles per rate. The output is a JSON document (FORMATS.md §10,
// urpsm-saturation/1) consumable by cmd/benchjson -saturation.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
)

// satFormat and satVersion pin the curve document's schema.
const (
	satFormat  = "urpsm-saturation"
	satVersion = 1
)

// satLatency carries client-observed round-trip percentiles of the
// decided (non-shed) requests at one rate.
type satLatency struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// satPoint is one swept rate.
type satPoint struct {
	// RateRPS is the offered load the arrival process targeted.
	RateRPS float64 `json:"rate_rps"`
	// Offered counts arrivals fired; Decided those answered 200 (planned,
	// accepted or rejected); Accepted the accepted subset; Shed the 429
	// verdicts; Failed transport or server errors.
	Offered  int `json:"offered"`
	Decided  int `json:"decided"`
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Failed   int `json:"failed"`
	// GoodputRPS is decided work per wall second; ShedRate the shed
	// fraction of offered load.
	GoodputRPS float64    `json:"goodput_rps"`
	ShedRate   float64    `json:"shed_rate"`
	LatencyMs  satLatency `json:"latency_ms"`
}

// satCurve is the whole sweep.
type satCurve struct {
	Format    string     `json:"format"`
	Version   int        `json:"version"`
	Arrivals  string     `json:"arrivals"`
	DurationS float64    `json:"duration_s"`
	Seed      int64      `json:"seed"`
	Points    []satPoint `json:"points"`
	// KneeRPS is the highest swept rate the server still kept up with
	// (goodput ≥ 95% of offered load); 0 when even the lowest rate
	// saturated.
	KneeRPS float64 `json:"knee_rps"`
}

// runSaturation sweeps the offered-load list and writes the curve to
// outFile ("" = stdout).
func runSaturation(client *http.Client, base string, reqs []*core.Request,
	rates []float64, duration time.Duration, arrivals string, seed int64, outFile string) error {
	if arrivals != "poisson" && arrivals != "constant" {
		return fmt.Errorf("-arrivals must be poisson or constant, got %q", arrivals)
	}
	curve := satCurve{
		Format:    satFormat,
		Version:   satVersion,
		Arrivals:  arrivals,
		DurationS: duration.Seconds(),
		Seed:      seed,
	}
	for i, rate := range rates {
		if rate <= 0 {
			return fmt.Errorf("rate %g must be positive", rate)
		}
		p, err := measureRate(client, base, reqs, rate, duration, arrivals, seed+int64(i))
		if err != nil {
			return err
		}
		curve.Points = append(curve.Points, p)
		fmt.Fprintf(os.Stderr,
			"rate %g: offered %d decided %d shed %d failed %d goodput %.1f req/s p95=%.2fms\n",
			rate, p.Offered, p.Decided, p.Shed, p.Failed, p.GoodputRPS, p.LatencyMs.P95)
	}
	for _, p := range curve.Points {
		if p.GoodputRPS >= 0.95*p.RateRPS && p.RateRPS > curve.KneeRPS {
			curve.KneeRPS = p.RateRPS
		}
	}
	fmt.Fprintf(os.Stderr, "throughput knee: %g req/s (highest rate with goodput >= 95%% of offered)\n",
		curve.KneeRPS)

	out := os.Stdout
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(curve)
}

// measureRate drives one open-loop point: arrivals are scheduled up
// front from the seeded process, each fired at its instant regardless of
// how many are still in flight, and every response is classified.
func measureRate(client *http.Client, base string, reqs []*core.Request,
	rate float64, duration time.Duration, arrivals string, seed int64) (satPoint, error) {
	st, err := fetchStats(client, base)
	if err != nil {
		return satPoint{}, err
	}
	simNow := st.SimTime

	rng := rand.New(rand.NewSource(seed))
	var offsets []time.Duration
	for t := 0.0; ; {
		dt := 1.0 / rate
		if arrivals == "poisson" {
			dt = rng.ExpFloat64() / rate
		}
		t += dt
		if t >= duration.Seconds() {
			break
		}
		offsets = append(offsets, time.Duration(t*float64(time.Second)))
	}
	if len(offsets) == 0 {
		return satPoint{}, fmt.Errorf("rate %g over %s yields no arrivals", rate, duration)
	}

	type result struct {
		status int
		rttMs  float64
		d      serve.Decision
		err    error
	}
	results := make([]result, len(offsets))
	var wg sync.WaitGroup
	start := time.Now()
	for i, off := range offsets {
		if d := time.Until(start.Add(off)); d > 0 {
			time.Sleep(d)
		}
		// Recycle the trace's requests with server-assigned IDs and
		// defaulted releases ("now" on the server's event clock); the
		// original deadline slack is preserved relative to the clock at
		// sweep start so feasibility does not decay across points.
		r := reqs[i%len(reqs)]
		body := serve.Request{
			Origin: int64(r.Origin), Dest: int64(r.Dest),
			Deadline: simNow + (r.Deadline - r.Release) + duration.Seconds(),
			Penalty:  r.Penalty, Capacity: r.Capacity,
		}
		wg.Add(1)
		go func(i int, body serve.Request) {
			defer wg.Done()
			t0 := time.Now()
			d, status, _, err := postDecision(client, base, body)
			results[i] = result{status: status, rttMs: float64(time.Since(t0).Nanoseconds()) / 1e6, d: d, err: err}
		}(i, body)
	}
	wg.Wait()
	elapsed := time.Since(start)

	p := satPoint{RateRPS: rate, Offered: len(offsets)}
	var lat []float64
	for _, res := range results {
		switch {
		case res.err != nil:
			p.Failed++
		case res.status == http.StatusTooManyRequests:
			p.Shed++
		case res.status == http.StatusOK:
			p.Decided++
			lat = append(lat, res.rttMs)
			if res.d.Accepted {
				p.Accepted++
			}
		default:
			p.Failed++
		}
	}
	p.GoodputRPS = float64(p.Decided) / elapsed.Seconds()
	p.ShedRate = float64(p.Shed) / float64(p.Offered)
	p.LatencyMs = satLatency{
		P50: sim.Percentile(lat, 0.50),
		P95: sim.Percentile(lat, 0.95),
		P99: sim.Percentile(lat, 0.99),
	}
	return p, nil
}

// fetchStats reads GET /v1/stats.
func fetchStats(client *http.Client, base string) (serve.Stats, error) {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return serve.Stats{}, err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return serve.Stats{}, err
	}
	return st, nil
}
