// Command urpsm-replay streams a workload file against a running
// urpsm-serve daemon, measuring client-observed request latency — and, in
// -lockstep mode, proving that the served decisions are bit-identical to
// an offline sim.Engine run of the same instance (DESIGN.md §9.3).
//
//	urpsm-replay -net city.net -load city.load -addr :8650 -lockstep
//	urpsm-replay -net city.net -load city.load -addr :8650 -speedup 60
//
// Modes:
//
//   - -lockstep: requests are sent strictly sequentially in release order
//     (each waits for its decision), which pins the server's processing
//     order to the offline engine's; afterwards every accept/reject
//     decision, worker assignment and Δ* is compared bit-for-bit against
//     the offline reference. Exit status 1 on any mismatch.
//
//   - -speedup S: requests are fired concurrently on the workload's own
//     release schedule compressed by S (e.g. 60 = an hour of trace per
//     minute), exercising the batching window under load. S = 0 streams
//     as fast as the server admits. No equivalence claim is made —
//     concurrent delivery may reorder arrivals (see DESIGN.md §9.3).
//
// Both modes report accepted/rejected counts and p50/p95/p99 latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/roadnet"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		netFile  = flag.String("net", "", "road-network file (required)")
		loadFile = flag.String("load", "", "workload file with the requests to replay (required)")
		traffic  = flag.String("traffic", "", "traffic profile (urpsm-traffic format) injected via POST /v1/traffic on the trace's schedule")
		addr     = flag.String("addr", "127.0.0.1:8650", "server address (host:port or URL)")
		oracle   = cliutil.OracleFlag("auto")
		speedup  = flag.Float64("speedup", 0, "replay speed: 0 = as fast as possible, S = trace time compressed by S")
		lockstep = flag.Bool("lockstep", false, "sequential replay + bit-identical comparison against an offline sim.Engine run")
		n        = flag.Int("n", 0, "replay only the first n requests (0 = all)")
		parallel = flag.Int("parallel", 0, "pool size of the offline reference planner (must match the server's -parallel; ≤1 = serial)")
		alpha    = flag.Float64("alpha", 1, "unified-cost weight α of the offline reference (must match the server)")
		wait     = flag.Duration("wait", 10*time.Second, "how long to wait for the server to come up")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		explain  = flag.Int64("explain", -1, "after the replay, fetch GET /v1/decisions/{id}/explain for this request id and print it (requires server tracing; -1 = off)")
	)
	flag.Parse()
	if err := run(*netFile, *loadFile, *traffic, *addr, *oracle, *speedup, *n, *parallel,
		*alpha, *wait, *timeout, *lockstep, *explain); err != nil {
		fmt.Fprintln(os.Stderr, "urpsm-replay:", err)
		os.Exit(1)
	}
}

// outcome pairs a decision with its client-observed latency.
type outcome struct {
	d       serve.Decision
	rttMs   float64
	httpErr error
}

func run(netFile, loadFile, trafficFile, addr, oracleKind string, speedup float64, n, parallel int,
	alpha float64, wait, timeout time.Duration, lockstep bool, explainID int64) error {
	if netFile == "" || loadFile == "" {
		return fmt.Errorf("-net and -load are required")
	}
	if err := cliutil.CheckOracle(oracleKind); err != nil {
		return err
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	nf, err := os.Open(netFile)
	if err != nil {
		return err
	}
	g, err := roadnet.Read(nf)
	nf.Close()
	if err != nil {
		return err
	}
	lf, err := os.Open(loadFile)
	if err != nil {
		return err
	}
	inst, err := workload.ReadStream(lf, g)
	lf.Close()
	if err != nil {
		return err
	}

	// Replay in the engine's processing order: stable by release. With a
	// -n cap the offline reference sees the same truncated instance.
	reqs := append([]*core.Request(nil), inst.Requests...)
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Release < reqs[j].Release })
	if n > 0 && n < len(reqs) {
		reqs = reqs[:n]
	}
	if len(reqs) == 0 {
		return fmt.Errorf("no requests to replay")
	}

	// An injected traffic profile follows the engine's timeline rule: an
	// event fires before the first request released at or after its time.
	// Events dated after the last request could not influence any
	// decision, so they are dropped from both sides of the comparison.
	var profile *roadnet.TrafficProfile
	if trafficFile != "" {
		tf, err := os.Open(trafficFile)
		if err != nil {
			return err
		}
		profile, err = roadnet.ReadTrafficProfile(tf, g)
		tf.Close()
		if err != nil {
			return err
		}
		lastRelease := reqs[len(reqs)-1].Release
		kept := profile.Events[:0]
		for _, e := range profile.Events {
			if e.At <= lastRelease {
				kept = append(kept, e)
			}
		}
		if dropped := len(profile.Events) - len(kept); dropped > 0 {
			fmt.Printf("traffic: dropping %d event(s) dated after the last request\n", dropped)
		}
		profile.Events = kept
	}

	client := &http.Client{Timeout: timeout}
	if err := waitReady(client, base, wait); err != nil {
		return err
	}
	fmt.Printf("replaying %d requests from %s to %s (mode: %s)\n",
		len(reqs), loadFile, base, mode(lockstep, speedup))

	start := time.Now()
	var outcomes []outcome
	if lockstep {
		outcomes, err = replaySequential(client, base, reqs, profile)
	} else {
		outcomes, err = replayPaced(client, base, reqs, profile, speedup)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	accepted, rejected, failed := 0, 0, 0
	var lat []float64
	for _, o := range outcomes {
		if o.httpErr != nil {
			failed++
			continue
		}
		lat = append(lat, o.rttMs)
		if o.d.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	fmt.Printf("done in %.2fs: %d accepted, %d rejected, %d failed (%.0f req/s)\n",
		elapsed.Seconds(), accepted, rejected, failed,
		float64(len(outcomes))/elapsed.Seconds())
	fmt.Printf("latency ms: p50=%.3f p95=%.3f p99=%.3f\n",
		sim.Percentile(lat, 0.50), sim.Percentile(lat, 0.95), sim.Percentile(lat, 0.99))
	if failed > 0 {
		return fmt.Errorf("%d requests failed", failed)
	}
	if explainID >= 0 {
		if err := fetchExplain(client, base, explainID); err != nil {
			return err
		}
	}

	if !lockstep {
		return nil
	}
	oracle, resolved, err := cliutil.BuildOracle(oracleKind, g)
	if err != nil {
		return err
	}
	offInst := &workload.Instance{Graph: g, Workers: inst.Workers, Requests: reqs}
	want, _, err := serve.OfflineDecisions(g, offInst, oracle, resolved, alpha, parallel, profile)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, o := range outcomes {
		w, ok := want[o.d.ID]
		if !ok {
			mismatches++
			if mismatches <= 5 {
				fmt.Fprintf(os.Stderr, "request %d: no offline decision\n", o.d.ID)
			}
			continue
		}
		if o.d.Accepted != w.Accepted || o.d.Worker != w.Worker || o.d.Delta != w.Delta {
			mismatches++
			if mismatches <= 5 {
				fmt.Fprintf(os.Stderr,
					"request %d: served (accepted=%v worker=%d delta=%v) != offline (accepted=%v worker=%d delta=%v)\n",
					o.d.ID, o.d.Accepted, o.d.Worker, o.d.Delta, w.Accepted, w.Worker, w.Delta)
			}
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("lockstep FAILED: %d/%d decisions differ from the offline engine", mismatches, len(outcomes))
	}
	fmt.Printf("lockstep OK: %d decisions bit-identical to the offline engine (oracle=%s)\n",
		len(outcomes), resolved)
	return nil
}

func mode(lockstep bool, speedup float64) string {
	if lockstep {
		return "lockstep"
	}
	if speedup > 0 {
		return fmt.Sprintf("paced, speedup %gx", speedup)
	}
	return "paced, full speed"
}

// fetchExplain prints the server's decision introspection for one
// request (GET /v1/decisions/{id}/explain, FORMATS.md §9) — candidate
// counts, Lemma 8 prunes, the chosen insertion and the Eq. 2 marginal
// economics, or the rejection reason.
func fetchExplain(client *http.Client, base string, id int64) error {
	resp, err := client.Get(fmt.Sprintf("%s/v1/decisions/%d/explain", base, id))
	if err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("explain %d: status %d: %s", id, resp.StatusCode, bytes.TrimSpace(body))
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, body, "", "  "); err != nil {
		return fmt.Errorf("explain %d: %w", id, err)
	}
	fmt.Printf("explain %d:\n%s\n", id, buf.String())
	return nil
}

// waitReady polls /v1/stats until the server answers.
func waitReady(client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/v1/stats")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", base, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// send posts one request and decodes its decision.
func send(client *http.Client, base string, r *core.Request) outcome {
	id := int32(r.ID)
	rel := r.Release
	body, _ := json.Marshal(serve.Request{
		ID: &id, Origin: int64(r.Origin), Dest: int64(r.Dest),
		Release: &rel, Deadline: r.Deadline, Penalty: r.Penalty, Capacity: r.Capacity,
	})
	start := time.Now()
	resp, err := client.Post(base+"/v1/requests", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{httpErr: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return outcome{httpErr: fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))}
	}
	var d serve.Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return outcome{httpErr: err}
	}
	return outcome{d: d, rttMs: float64(time.Since(start).Nanoseconds()) / 1e6}
}

// sendTraffic posts one traffic event (at its trace time) and fails hard
// on rejection: a half-injected profile would silently void the
// equivalence comparison.
func sendTraffic(client *http.Client, base string, e roadnet.TrafficEvent) error {
	at := e.At
	body, _ := json.Marshal(serve.TrafficRequest{At: &at, Updates: e.Updates})
	resp, err := client.Post(base+"/v1/traffic", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("traffic event at %v: %w", e.At, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("traffic event at %v: status %d: %s", e.At, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var tr serve.TrafficResult
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		return fmt.Errorf("traffic event at %v: %w", e.At, err)
	}
	fmt.Printf("traffic: epoch %d at t=%g (%d edges changed, %d stops infeasible)\n",
		tr.Epoch, tr.SimTime, tr.ChangedEdges, tr.InfeasibleStops)
	return nil
}

// replaySequential sends each request only after the previous decision
// arrived, pinning the server's processing order for -lockstep. Traffic
// events are injected before the first request released at or after
// their time — exactly when the offline engine's timeline applies them.
func replaySequential(client *http.Client, base string, reqs []*core.Request, profile *roadnet.TrafficProfile) ([]outcome, error) {
	outcomes := make([]outcome, 0, len(reqs))
	next := 0
	var events []roadnet.TrafficEvent
	if profile != nil {
		events = profile.Events
	}
	for _, r := range reqs {
		for next < len(events) && events[next].At <= r.Release {
			if err := sendTraffic(client, base, events[next]); err != nil {
				return nil, err
			}
			next++
		}
		o := send(client, base, r)
		if o.httpErr != nil {
			// Sequential replay aborts on the first failure: every later
			// decision would diverge from the offline reference anyway.
			return nil, fmt.Errorf("request %d: %w", r.ID, o.httpErr)
		}
		outcomes = append(outcomes, o)
	}
	return outcomes, nil
}

// replayPaced fires requests on the trace's release schedule compressed
// by speedup (0 = no pacing), each from its own goroutine. Traffic events
// are injected inline on the same schedule (no equivalence claim in this
// mode; see DESIGN.md §9.3).
func replayPaced(client *http.Client, base string, reqs []*core.Request, profile *roadnet.TrafficProfile, speedup float64) ([]outcome, error) {
	outcomes := make([]outcome, len(reqs))
	sem := make(chan struct{}, 256) // bound in-flight requests
	var wg sync.WaitGroup
	start := time.Now()
	t0 := reqs[0].Release
	next := 0
	var events []roadnet.TrafficEvent
	if profile != nil {
		events = profile.Events
	}
	for i, r := range reqs {
		for next < len(events) && events[next].At <= r.Release {
			if err := sendTraffic(client, base, events[next]); err != nil {
				return nil, err
			}
			next++
		}
		if speedup > 0 {
			due := start.Add(time.Duration((r.Release - t0) / speedup * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, r *core.Request) {
			defer wg.Done()
			outcomes[i] = send(client, base, r)
			<-sem
		}(i, r)
	}
	wg.Wait()
	return outcomes, nil
}
